module insure

go 1.22

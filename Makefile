GO ?= go

.PHONY: all build test race race-faults smoke-faults vet check bench bench-json experiments clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# race-faults runs just the concurrency-heavy fault-injection and fieldbus
# suites under the race detector (dropped connections, retry/backoff, and
# server drains all cross goroutines).
race-faults:
	$(GO) test -race -count=1 ./internal/faults ./internal/modbus

# smoke-faults runs one simulated day with a battery unit and a discharge
# relay faulted mid-day and fails if the plant loses availability.
smoke-faults:
	$(GO) test -race -count=1 -run 'TestBatteryFailureIsQuarantinedMidday|TestStuckOpenRelayIsQuarantined' ./internal/core

# check is the CI gate: static analysis, a clean build, the full test suite
# under the race detector (the parallel experiment engine and campaign
# runner are exercised concurrently there), and the injected-fault smoke
# simulation.
check: vet build race race-faults smoke-faults

# bench runs the simulation hot-path and experiment benchmarks.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkSystemTick|BenchmarkFullDaySimulation|BenchmarkBattery' -benchmem .

# bench-json writes the machine-readable performance report.
bench-json:
	$(GO) run ./cmd/insure-bench -bench-json BENCH.json

# experiments regenerates every table/figure of the paper on the parallel
# engine (byte-identical to the serial engine).
experiments:
	$(GO) run ./cmd/insure-bench -exp all

clean:
	rm -f BENCH.json

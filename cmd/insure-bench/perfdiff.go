package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// perf-diff compares a freshly generated BENCH.json against a committed
// baseline and reports per-benchmark ns/op regressions beyond a threshold.
// It is a review aid, not a CI gate: wall-clock numbers shift with the host,
// so the verdict is advisory and printed, while structural regressions
// (allocs/op increases) are always flagged.

// perfDiffThreshold is the relative ns/op slowdown that counts as a
// regression.
const perfDiffThreshold = 0.05

// perfDiffCases are the benchmarks compared; these are the stable hot-path
// names present in every BENCH.json since the suite existed.
var perfDiffCases = []string{"system_tick", "plc_scan", "full_day_insure"}

func loadBenchReport(path string) (*benchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

func (r *benchReport) benchCase(name string) *benchCase {
	for i := range r.Benchmarks {
		if r.Benchmarks[i].Name == name {
			return &r.Benchmarks[i]
		}
	}
	return nil
}

// runPerfDiff prints a comparison of newPath against basePath and returns
// the number of regressions found (ns/op beyond the threshold, or any
// allocs/op increase).
func runPerfDiff(basePath, newPath string) (int, error) {
	base, err := loadBenchReport(basePath)
	if err != nil {
		return 0, err
	}
	cur, err := loadBenchReport(newPath)
	if err != nil {
		return 0, err
	}

	fmt.Printf("perf-diff: %s (base) vs %s (new)\n", basePath, newPath)
	fmt.Printf("%-18s %12s %12s %8s\n", "benchmark", "base ns/op", "new ns/op", "delta")
	regressions := 0
	for _, name := range perfDiffCases {
		b, c := base.benchCase(name), cur.benchCase(name)
		if b == nil || c == nil {
			fmt.Printf("%-18s missing from %s\n", name, map[bool]string{true: basePath, false: newPath}[c != nil])
			continue
		}
		delta := 0.0
		if b.NsPerOp > 0 {
			delta = (c.NsPerOp - b.NsPerOp) / b.NsPerOp
		}
		mark := ""
		if delta > perfDiffThreshold {
			mark = "  REGRESSION"
			regressions++
		}
		fmt.Printf("%-18s %12.0f %12.0f %+7.1f%%%s\n", name, b.NsPerOp, c.NsPerOp, delta*100, mark)
		if c.AllocsPerOp > b.AllocsPerOp {
			fmt.Printf("%-18s allocs/op rose %d -> %d  REGRESSION\n", name, b.AllocsPerOp, c.AllocsPerOp)
			regressions++
		}
	}
	if cur.PlantYearsPerSec > 0 && base.PlantYearsPerSec > 0 {
		fmt.Printf("%-18s %12.4f %12.4f %+7.1f%%\n", "plant-years/sec",
			base.PlantYearsPerSec, cur.PlantYearsPerSec,
			(cur.PlantYearsPerSec-base.PlantYearsPerSec)/base.PlantYearsPerSec*100)
	}
	if regressions == 0 {
		fmt.Printf("no regressions beyond %.0f%%\n", perfDiffThreshold*100)
	} else {
		fmt.Printf("%d regression(s) beyond %.0f%%\n", regressions, perfDiffThreshold*100)
	}
	return regressions, nil
}

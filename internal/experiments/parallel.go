package experiments

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// RunAllParallel executes every registered experiment on a bounded worker
// pool and returns the Tables in sorted-ID order — the same order, and the
// same table contents, as RunAll. workers <= 0 means GOMAXPROCS.
//
// This is safe because the registry is read-only after package init, every
// runner builds its own simulations from scratch (per-instance RNG, no
// shared mutable package state — see the audit note on Run), and each call
// returns a freshly-built Table. A runner that panics is converted into an
// error carrying the experiment ID and stack; the first failing ID (in
// sorted order) is reported after the pool drains. Cancelling ctx marks the
// not-yet-started experiments failed without abandoning in-flight ones.
func RunAllParallel(ctx context.Context, workers int) ([]*Table, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ids := IDs()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(ids) {
		workers = len(ids)
	}
	out := make([]*Table, len(ids))
	errs := make([]error, len(ids))

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	jobs := make(chan int, len(ids))
	for i := range ids {
		jobs <- i
	}
	close(jobs)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if err := ctx.Err(); err != nil {
					errs[i] = fmt.Errorf("experiments: %s: %w", ids[i], err)
					continue
				}
				out[i], errs[i] = runOne(ids[i])
				if errs[i] != nil {
					cancel()
				}
			}
		}()
	}
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// runOne executes a single registered runner, converting a panic into an
// error so one broken experiment fails the batch instead of the process.
func runOne(id string) (t *Table, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("experiments: %s panicked: %v\n%s", id, r, debug.Stack())
		}
	}()
	return registry[id](), nil
}

// Package metrics provides the statistics used throughout the evaluation:
// running aggregates, standard deviation (Table 6 reports battery-voltage
// σ), percentiles, and the improvement calculus of Figs 17–21.
package metrics

import (
	"math"
	"sort"
)

// Series is a streaming accumulator over float64 observations.
type Series struct {
	n          int
	sum, sumSq float64
	min, max   float64
	values     []float64 // retained for percentiles
	// sorted caches the sort of values for Percentile; experiments query
	// several percentiles per figure and must not re-sort for each.
	sorted []float64
	dirty  bool
	keep   bool
}

// NewSeries returns an accumulator that retains values for percentiles.
func NewSeries() *Series { return &Series{keep: true} }

// NewStreamingSeries returns an accumulator that keeps only aggregates
// (constant memory, no percentiles) for long simulations.
func NewStreamingSeries() *Series { return &Series{} }

// Add records one observation.
func (s *Series) Add(v float64) {
	if s.n == 0 || v < s.min {
		s.min = v
	}
	if s.n == 0 || v > s.max {
		s.max = v
	}
	s.n++
	s.sum += v
	s.sumSq += v * v
	if s.keep {
		s.values = append(s.values, v)
		s.dirty = true
	}
}

// Count returns the number of observations.
func (s *Series) Count() int { return s.n }

// Mean returns the average (0 for an empty series).
func (s *Series) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Min returns the smallest observation. ok is false for an empty series,
// which previously reported an indistinguishable zero value.
func (s *Series) Min() (v float64, ok bool) { return s.min, s.n > 0 }

// Max returns the largest observation. ok is false for an empty series.
func (s *Series) Max() (v float64, ok bool) { return s.max, s.n > 0 }

// StdDev returns the population standard deviation.
func (s *Series) StdDev() float64 {
	if s.n == 0 {
		return 0
	}
	m := s.Mean()
	v := s.sumSq/float64(s.n) - m*m
	if v < 0 {
		v = 0 // numerical guard
	}
	return math.Sqrt(v)
}

// Percentile returns the p-th percentile (0–100) by nearest-rank on the
// retained values. It panics if the series was created streaming-only.
func (s *Series) Percentile(p float64) float64 {
	if !s.keep {
		panic("metrics: percentile on streaming series")
	}
	if len(s.values) == 0 {
		return 0
	}
	if s.dirty {
		s.sorted = append(s.sorted[:0], s.values...)
		sort.Float64s(s.sorted)
		s.dirty = false
	}
	sorted := s.sorted
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// Improvement is the relative gain of optimised over baseline for a
// higher-is-better metric, as plotted in Figs 17–21: (opt−base)/base.
func Improvement(opt, base float64) float64 {
	if base == 0 {
		if opt == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (opt - base) / base
}

// ReductionImprovement is the relative gain for a lower-is-better metric
// (latency): (base−opt)/base.
func ReductionImprovement(opt, base float64) float64 {
	if base == 0 {
		if opt == 0 {
			return 0
		}
		return math.Inf(-1)
	}
	return (base - opt) / base
}

package core

import (
	"testing"
	"time"

	"insure/internal/sim"
	"insure/internal/telemetry"
	"insure/internal/trace"
)

// TestOutlookSurface exercises the energy-outlook view the serving gateway
// admits against: MeanSoC matches the controller's own per-unit estimates,
// the forecast falls back to the fixed cloud margin when disabled, and the
// Outlook snapshot assembles all of it coherently.
func TestOutlookSurface(t *testing.T) {
	cfg := sim.DefaultConfig(trace.LowGeneration())
	sys, err := sim.New(cfg, sim.NewSeismicSink())
	if err != nil {
		t.Fatal(err)
	}
	m := New(DefaultConfig(), cfg.BatteryCount) // forecast off
	start, _ := sys.Span()
	for tod := start; tod < start+30*time.Minute; tod += time.Second {
		sys.Tick(tod, m)
	}
	now := start + 30*time.Minute

	soc := m.MeanSoC(sys)
	if soc <= 0 || soc > 1 {
		t.Fatalf("MeanSoC = %v, want (0, 1]", soc)
	}
	var sum float64
	for i := 0; i < cfg.BatteryCount; i++ {
		sum += EstimatedSoC(sys, i)
	}
	if want := sum / float64(cfg.BatteryCount); soc != want {
		t.Fatalf("MeanSoC %v != mean of per-unit estimates %v", soc, want)
	}

	// Forecast disabled: the conservative fallback is the fixed 25% cloud
	// margin on the present supply.
	if got, want := m.ForecastSupplyW(sys, now), 0.75*float64(sys.SolarNow()); got != want {
		t.Fatalf("fallback forecast %v, want %v", got, want)
	}

	o := m.Outlook(sys, now)
	if o.Mode != ModeNormal || o.SoC != soc {
		t.Fatalf("outlook %+v inconsistent with mode %v / soc %v", o, m.Mode(), soc)
	}

	// Forecast enabled: after observing the morning, the estimator must
	// produce a finite, non-negative prediction.
	mf := New(survivalManagerConfig(), cfg.BatteryCount)
	sysf, err := sim.New(cfg, sim.NewSeismicSink())
	if err != nil {
		t.Fatal(err)
	}
	for tod := start; tod < start+30*time.Minute; tod += time.Second {
		sysf.Tick(tod, mf)
	}
	if got := mf.ForecastSupplyW(sysf, now+time.Hour); got < 0 {
		t.Fatalf("estimator forecast %v, want >= 0", got)
	}
}

// TestLadderPublishesOpModeToHealthz drives the overcast survival day and
// checks every ladder transition lands in the registry's operating-mode
// surface — the /healthz coupling: mode name always current, draining
// exactly while the plant is at Blackout.
func TestLadderPublishesOpModeToHealthz(t *testing.T) {
	cfg := sim.DefaultConfig(trace.LowGeneration())
	cfg.InitialSoC = 0.30
	sys, err := sim.New(cfg, sim.NewVideoSink())
	if err != nil {
		t.Fatal(err)
	}
	m := New(survivalManagerConfig(), cfg.BatteryCount)
	reg := telemetry.NewRegistry()
	m.AttachTelemetry(reg)

	if mode, draining := reg.OpMode(); mode != "normal" || draining {
		t.Fatalf("initial published mode %q draining=%v, want normal/false", mode, draining)
	}
	sawDraining := false
	start, end := sys.Span()
	for tod := start; tod < end; tod += time.Second {
		sys.Tick(tod, m)
		mode, draining := reg.OpMode()
		if want := m.Mode().String(); mode != want {
			t.Fatalf("at %v: published mode %q, manager says %q", tod, mode, want)
		}
		if wantDrain := m.Mode() == ModeBlackout; draining != wantDrain {
			t.Fatalf("at %v: draining=%v in mode %s", tod, draining, m.Mode())
		}
		sawDraining = sawDraining || draining
	}
	sys.Finish(m)
	if m.ModeTransitions() == 0 {
		t.Fatal("fixture never engaged the ladder; the test proved nothing")
	}
	if !sawDraining {
		t.Log("note: day ended without reaching Blackout; draining path covered elsewhere")
	}
}

package main

import (
	"context"
	"io"
	"net"
	"net/http"
	"testing"
	"time"

	"insure/internal/core"
	"insure/internal/gateway"
	"insure/internal/sim"
	"insure/internal/solar"
	"insure/internal/trace"
)

// testGateway builds the minimal serving plane main wires: one simulated
// plant behind an admission gateway.
func testGateway(t *testing.T) *gateway.Gateway {
	t.Helper()
	scfg := sim.DefaultConfig(trace.Synthesize(solar.Sunny, 1, time.Second))
	sys, err := sim.New(scfg, sim.NewSeismicSink())
	if err != nil {
		t.Fatal(err)
	}
	mgr := core.New(core.DefaultConfig(), scfg.BatteryCount)
	return gateway.New(gateway.DefaultConfig(), gateway.SimPlant{Sys: sys, Mgr: mgr})
}

// TestServeGatewayGracefulShutdown drives the daemon's shutdown path: after
// the signal context is cancelled, new queries must get 503 + Retry-After
// while an in-flight request is allowed to finish, and once the grace window
// closes the listener must be gone.
func TestServeGatewayGracefulShutdown(t *testing.T) {
	gw := testGateway(t)

	arrived := make(chan struct{})
	release := make(chan struct{})
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/slow" {
			close(arrived)
			<-release
		}
		w.WriteHeader(http.StatusOK)
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + ln.Addr().String()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- serveGateway(ctx, ln, handler, gw, func() time.Duration { return 0 }, time.Second)
	}()

	// Park one request in flight, then deliver the "signal".
	slowDone := make(chan int, 1)
	go func() {
		resp, err := http.Get(base + "/slow")
		if err != nil {
			slowDone <- 0
			return
		}
		resp.Body.Close()
		slowDone <- resp.StatusCode
	}()
	<-arrived
	cancel()

	// Inside the grace window new queries are refused softly: 503 with a
	// Retry-After hint, not a connection error.
	var sawDrain bool
	deadline := time.Now().Add(900 * time.Millisecond)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/query")
		if err != nil {
			break // listener already closed; grace window missed
		}
		io.Copy(io.Discard, resp.Body)
		retry := resp.Header.Get("Retry-After")
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable && retry != "" {
			sawDrain = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !sawDrain {
		t.Error("draining gateway never answered /query with 503 + Retry-After")
	}

	// The in-flight request must still complete.
	close(release)
	if code := <-slowDone; code != http.StatusOK {
		t.Errorf("in-flight request got %d, want 200", code)
	}

	if err := <-done; err != nil {
		t.Fatalf("serveGateway: %v", err)
	}
	if _, err := http.Get(base + "/query"); err == nil {
		t.Error("listener still accepting after shutdown completed")
	}
}

package faults

import (
	"sync"
	"testing"
	"time"

	"insure/internal/modbus"
	"insure/internal/plc"
)

// TestProxyConcurrentClientsUnderChaos hammers a FlakyProxy with several
// Modbus clients while another goroutine toggles delay and severs sessions.
// Run under -race (make race-faults) it proves the proxy's shared state —
// the connection set, the delay, the dropped counter — is safe while
// sessions are being created and destroyed concurrently. Individual
// requests may fail (the proxy is built to break them); the assertions are
// about safety and liveness, not success.
func TestProxyConcurrentClientsUnderChaos(t *testing.T) {
	regs := plc.NewRegisterFile(64, 4, 16, 16)
	srv := modbus.NewServer(regs)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	p, err := NewFlakyProxy(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	const (
		clients  = 6
		requests = 40
	)
	var clientWG, chaosWG sync.WaitGroup
	stop := make(chan struct{})

	// The chaos goroutine: flip the delay and sever everything, repeatedly,
	// while traffic is in flight.
	chaosWG.Add(1)
	go func() {
		defer chaosWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			switch i % 3 {
			case 0:
				p.SetDelay(time.Millisecond)
			case 1:
				p.SetDelay(0)
			case 2:
				p.DropAll()
				_ = p.Dropped()
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	for g := 0; g < clients; g++ {
		clientWG.Add(1)
		go func(g int) {
			defer clientWG.Done()
			c, err := modbus.Dial(p.Addr())
			if err != nil {
				return // proxy may be mid-drop; that's the point
			}
			defer c.Close()
			c.Timeout = 200 * time.Millisecond
			c.RetryBackoff = time.Millisecond
			for i := 0; i < requests; i++ {
				coil := uint16(g*8 + i%8)
				if err := c.WriteCoil(coil, i%2 == 0); err != nil {
					continue // chaos-induced failure: tolerated
				}
				_, _ = c.ReadCoils(coil, 1)
			}
		}(g)
	}

	// Liveness: the whole brawl must finish. A deadlock between pipe
	// teardown and DropAll would hang here, not fail an assertion.
	done := make(chan struct{})
	go func() {
		clientWG.Wait()
		close(stop)
		chaosWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("proxy chaos test wedged: likely deadlock in FlakyProxy")
	}
	if err := p.Close(); err != nil {
		t.Fatalf("proxy close after chaos: %v", err)
	}
}

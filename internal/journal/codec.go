package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"
)

// Encoder serializes control-plane state into a reusable byte buffer.
// Every value is fixed-width little-endian; float64 round-trips through
// math.Float64bits, so encode→decode is bit-exact — the property the
// kill/resume equivalence tests lean on. After the buffer has grown to
// its steady-state size Append* never allocates, which is what lets the
// journaling path ride inside the simulation tick without breaking the
// zero-alloc invariant.
type Encoder struct {
	buf []byte
}

// Reset truncates the buffer, keeping its capacity.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// Bytes returns the encoded payload. The slice aliases the encoder's
// buffer and is invalidated by the next Reset.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the current payload length.
func (e *Encoder) Len() int { return len(e.buf) }

// U8 appends one byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// U16 appends a uint16.
func (e *Encoder) U16(v uint16) {
	e.buf = binary.LittleEndian.AppendUint16(e.buf, v)
}

// U64 appends a uint64.
func (e *Encoder) U64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}

// I64 appends an int64.
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// Int appends an int as int64.
func (e *Encoder) Int(v int) { e.I64(int64(v)) }

// F64 appends a float64 bit-exactly.
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// Bool appends a bool as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// Dur appends a time.Duration.
func (e *Encoder) Dur(v time.Duration) { e.I64(int64(v)) }

// String appends a length-prefixed string.
func (e *Encoder) String(v string) {
	e.Int(len(v))
	e.buf = append(e.buf, v...)
}

// ErrShort is returned when a decoder runs past the end of its payload —
// the record was truncated or the layout versions disagree.
var ErrShort = errors.New("journal: truncated payload")

// Decoder reads values back in the order the Encoder appended them. The
// error is sticky: after the first failure every read returns the zero
// value, so callers can decode a whole struct and check Err once.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder wraps a payload for reading.
func NewDecoder(b []byte) *Decoder { return &Decoder{buf: b} }

// Err returns the first decoding error, or nil.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.buf) {
		d.err = ErrShort
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 reads a uint16.
func (d *Decoder) U16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U64 reads a uint64.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads an int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// Int reads an int.
func (d *Decoder) Int() int { return int(d.I64()) }

// F64 reads a float64 bit-exactly.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// Bool reads a bool.
func (d *Decoder) Bool() bool { return d.U8() != 0 }

// Dur reads a time.Duration.
func (d *Decoder) Dur() time.Duration { return time.Duration(d.I64()) }

// String reads a length-prefixed string. Decoding allocates; it only
// runs on the recovery path, never in the tick loop.
func (d *Decoder) String() string {
	n := d.Int()
	if d.err != nil {
		return ""
	}
	if n < 0 || n > d.Remaining() {
		d.err = ErrShort
		return ""
	}
	return string(d.take(n))
}

// ExpectVersion reads a one-byte layout version and fails the decoder if
// it does not match want.
func (d *Decoder) ExpectVersion(want uint8) {
	got := d.U8()
	if d.err == nil && got != want {
		d.err = fmt.Errorf("journal: layout version %d, want %d", got, want)
	}
}

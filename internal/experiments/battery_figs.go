package experiments

import (
	"context"

	"fmt"
	"time"

	"insure/internal/baseline"
	"insure/internal/battery"
	"insure/internal/core"
	"insure/internal/relay"
	"insure/internal/sim"
	"insure/internal/trace"
	"insure/internal/units"
)

func init() {
	register("fig4a", Fig4a)
	register("fig4b", Fig4b)
	register("fig5", Fig5)
	register("fig14a", Fig14a)
	register("fig14b", Fig14b)
	register("fig15", Fig15)
	register("fig16", Fig16)
}

// Fig4a reproduces the individual-vs-batch charging measurement: charging
// the units one by one under a fixed power budget cuts total charge time.
func Fig4a(ctx context.Context) *Table {
	const (
		n      = 3
		budget = units.Watt(150)
		target = 0.9
		maxSec = 400 * 3600
	)
	run := func(sequential bool) float64 {
		bank := battery.MustNewBank(battery.DefaultParams(), n, 0.2)
		for sec := 0; sec < maxSec; sec++ {
			var pending []int
			for i := 0; i < n; i++ {
				if bank.Unit(i).SoC() < target {
					pending = append(pending, i)
				}
			}
			if len(pending) == 0 {
				return float64(sec) / 3600
			}
			active := pending
			if sequential {
				active = pending[:1]
			}
			bank.ChargeSet(active, budget, time.Second)
			for _, i := range pending[boolToInt(sequential):] {
				if sequential {
					bank.Unit(i).Rest(time.Second)
				}
			}
		}
		return float64(maxSec) / 3600
	}
	seq := run(true)
	batch := run(false)
	t := &Table{
		ID:     "fig4a",
		Title:  "Individual vs batch charging (3 units, 150 W budget, to 90%)",
		Header: []string{"strategy", "hours to full"},
		Rows: [][]string{
			{"one-by-one (individual)", f1(seq)},
			{"all-at-once (batch)", f1(batch)},
		},
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("individual charging is %.0f%% faster (paper: ~50%%)", (1-seq/batch)*100))
	return t
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Fig4b reproduces the high-load vs low-load discharge measurement with the
// capacity-recovery effect.
func Fig4b(ctx context.Context) *Table {
	high := battery.MustNew(battery.DefaultParams(), 1.0)
	low := battery.MustNew(battery.DefaultParams(), 1.0)
	for i := 0; i < 45*60; i++ {
		high.Discharge(20, time.Second) // high load power
		low.Discharge(3, time.Second)   // low load power
	}
	vHigh, vLow := high.TerminalVoltage(), low.TerminalVoltage()
	availAtSwitch := high.AvailableSoC()
	for i := 0; i < 30*60; i++ {
		high.Rest(time.Second)
		low.Rest(time.Second)
	}
	t := &Table{
		ID:     "fig4b",
		Title:  "High vs low load discharge and capacity recovery (45 min load, 30 min rest)",
		Header: []string{"unit", "V at switch-out", "avail SoC at switch-out", "avail SoC after rest"},
		Rows: [][]string{
			{"Battery-1 (high load, 20 A)", f2(float64(vHigh)), f2(availAtSwitch), f2(high.AvailableSoC())},
			{"Battery-2 (low load, 3 A)", f2(float64(vLow)), f2(low.AvailableSoC()), f2(low.AvailableSoC())},
		},
	}
	t.Notes = append(t.Notes, "high-current discharge collapses the available well; rest recovers it (recovery effect)")
	return t
}

// Fig5 reproduces the 2-hour seismic snapshot on the conventional unified
// buffer: the whole battery pack gets switched out under load.
func Fig5(ctx context.Context) *Table {
	cfg := sim.DefaultConfig(trace.FullSystemLow())
	cfg.InitialSoC = 0.45
	sys, err := sim.New(cfg, sim.NewSeismicSink())
	if err != nil {
		panic(err)
	}
	m := baseline.New(baseline.DefaultConfig())
	var switchOut time.Duration
	for tod := 7 * time.Hour; tod < 20*time.Hour; tod += time.Second {
		sys.Tick(tod, m)
		if switchOut == 0 && m.InLockout() {
			switchOut = tod
		}
	}
	t := &Table{
		ID:     "fig5",
		Title:  "Unified-buffer snapshot under seismic load (baseline manager)",
		Header: []string{"event", "value"},
		Rows: [][]string{
			{"batteries switched out at", fmtTod(switchOut)},
			{"brownouts over the day", fmt.Sprintf("%d", sys.Brownouts())},
			{"server on/off cycles", fmt.Sprintf("%d", sys.Cluster.OnOffCycles())},
		},
	}
	t.Notes = append(t.Notes, "the unified buffer disconnects entirely at the protection threshold; InS shuts down (§2.3)")
	return t
}

func fmtTod(d time.Duration) string {
	if d == 0 {
		return "never"
	}
	return fmt.Sprintf("%02d:%02d", int(d.Hours()), int(d.Minutes())%60)
}

// Fig14a demonstrates fast charging: the SPM prioritises low-SoC units and
// concentrates the budget on a subset.
func Fig14a(ctx context.Context) *Table {
	cfg := sim.DefaultConfig(trace.FullSystemHigh())
	sys, err := sim.New(cfg, sim.NewSeismicSink())
	if err != nil {
		panic(err)
	}
	// Unbalance the bank: units 0 and 1 low, unit 2.. higher.
	sys.Bank.Unit(0).SetSoC(0.35)
	sys.Bank.Unit(1).SetSoC(0.40)
	m := core.New(core.DefaultConfig(), cfg.BatteryCount)
	firstCharge := make([]time.Duration, cfg.BatteryCount)
	for tod := 7 * time.Hour; tod < 12*time.Hour; tod += time.Second {
		sys.Tick(tod, m)
		for _, i := range sys.Fabric.UnitsIn(relay.Charging) {
			if firstCharge[i] == 0 {
				firstCharge[i] = tod
			}
		}
	}
	t := &Table{
		ID:     "fig14a",
		Title:  "Fast charging: low-SoC units are charged first, with a concentrated budget",
		Header: []string{"unit", "initial SoC", "first charged at", "SoC at noon"},
	}
	for i := 0; i < cfg.BatteryCount; i++ {
		init := 0.5
		if i == 0 {
			init = 0.35
		} else if i == 1 {
			init = 0.40
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("battery #%d", i+1), f2(init), fmtTod(firstCharge[i]), f2(sys.Bank.Unit(i).SoC()),
		})
	}
	return t
}

// Fig14b demonstrates discharge balancing: per-unit aggregated discharge
// ends the day nearly equal.
func Fig14b(ctx context.Context) *Table {
	cfg := sim.DefaultConfig(trace.FullSystemLow())
	sys, err := sim.New(cfg, sim.NewVideoSink())
	if err != nil {
		panic(err)
	}
	m := core.New(core.DefaultConfig(), cfg.BatteryCount)
	sys.Run(m)
	t := &Table{
		ID:     "fig14b",
		Title:  "Discharge balancing: per-unit aggregated discharge after one day",
		Header: []string{"unit", "raw discharge (Ah)", "wear-weighted (Ah)"},
	}
	for i := 0; i < cfg.BatteryCount; i++ {
		u := sys.Bank.Unit(i)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("battery #%d", i+1),
			f2(float64(u.RawOut())),
			f2(float64(u.Throughput())),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("max-min spread: %.2f Ah", float64(sys.Bank.ThroughputSpread())))
	return t
}

// Fig15 regenerates the two evaluation solar traces.
func Fig15(ctx context.Context) *Table {
	hi, lo := trace.HighGeneration(), trace.LowGeneration()
	t := &Table{
		ID:     "fig15",
		Title:  "Solar traces for micro-benchmark evaluation",
		Header: []string{"trace", "avg W", "peak W", "total kWh", "window"},
		Rows: [][]string{
			{"high generation", f0(float64(hi.Average())), f0(float64(hi.Peak())), f1(hi.TotalEnergy().KWh()), "7:00-20:00"},
			{"low generation", f0(float64(lo.Average())), f0(float64(lo.Peak())), f1(lo.TotalEnergy().KWh()), "7:00-20:00"},
		},
		Notes: []string{"paper averages: 1114 W (high), 427 W (low)"},
	}
	return t
}

// Fig16 regenerates the full-day operation trace as an hourly summary with
// the paper's characteristic regions.
func Fig16(ctx context.Context) *Table {
	cfg := sim.DefaultConfig(trace.FullSystemHigh())
	cfg.RecordEvery = time.Minute
	sys, err := sim.New(cfg, sim.NewSeismicSink())
	if err != nil {
		panic(err)
	}
	m := core.New(core.DefaultConfig(), cfg.BatteryCount)
	sys.Run(m)
	t := &Table{
		ID:     "fig16",
		Title:  "Full-day InSURE operation (hourly summary)",
		Header: []string{"hour", "solar W", "load W", "charging", "discharging", "min V", "VMs"},
	}
	frames := sys.Recorder().Frames()
	byHour := map[int][]sim.Frame{}
	for _, f := range frames {
		byHour[int(f.At.Hours())] = append(byHour[int(f.At.Hours())], f)
	}
	for h := 6; h <= 20; h++ {
		fs := byHour[h]
		if len(fs) == 0 {
			continue
		}
		var solar, load float64
		var charging, discharging int
		minV := 99.0
		vms := 0
		for _, f := range fs {
			solar += float64(f.Solar)
			load += float64(f.Load)
			for i := range f.Modes {
				switch f.Modes[i] {
				case relay.Charging:
					charging++
				case relay.Discharging:
					discharging++
				}
				if float64(f.Volts[i]) < minV {
					minV = float64(f.Volts[i])
				}
			}
			if f.RunningVM > vms {
				vms = f.RunningVM
			}
		}
		n := float64(len(fs))
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%02d:00", h),
			f0(solar / n), f0(load / n),
			f1(float64(charging) / n), f1(float64(discharging) / n),
			f2(minV), fmt.Sprintf("%d", vms),
		})
	}
	t.Notes = append(t.Notes,
		"region A: morning battery charging; B: power tracking; C: temporal control; D: supply-demand match; E: fluctuating budget")
	return t
}

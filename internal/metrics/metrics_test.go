package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSeriesBasics(t *testing.T) {
	s := NewSeries()
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.Count() != 8 {
		t.Errorf("count = %d", s.Count())
	}
	if got := s.Mean(); got != 5 {
		t.Errorf("mean = %v", got)
	}
	if got := s.StdDev(); math.Abs(got-2) > 1e-12 {
		t.Errorf("stddev = %v, want 2", got)
	}
	if mn, ok := s.Min(); !ok || mn != 2 {
		t.Errorf("min = %v (ok=%v)", mn, ok)
	}
	if mx, ok := s.Max(); !ok || mx != 9 {
		t.Errorf("max = %v (ok=%v)", mx, ok)
	}
}

func TestEmptySeries(t *testing.T) {
	s := NewSeries()
	if s.Mean() != 0 || s.StdDev() != 0 || s.Percentile(50) != 0 {
		t.Error("empty series aggregates should be zero")
	}
	if _, ok := s.Min(); ok {
		t.Error("Min on an empty series must report ok=false")
	}
	if _, ok := s.Max(); ok {
		t.Error("Max on an empty series must report ok=false")
	}
	// A genuine zero observation is distinguishable from emptiness.
	s.Add(0)
	if mn, ok := s.Min(); !ok || mn != 0 {
		t.Errorf("min after Add(0) = %v (ok=%v), want 0 (true)", mn, ok)
	}
}

func TestPercentile(t *testing.T) {
	s := NewSeries()
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if got := s.Percentile(50); got != 50 {
		t.Errorf("p50 = %v", got)
	}
	if got := s.Percentile(99); got != 99 {
		t.Errorf("p99 = %v", got)
	}
	if got := s.Percentile(0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if got := s.Percentile(100); got != 100 {
		t.Errorf("p100 = %v", got)
	}
}

func TestStreamingSeriesPanicsOnPercentile(t *testing.T) {
	s := NewStreamingSeries()
	s.Add(1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	s.Percentile(50)
}

func TestStdDevNonNegativeProperty(t *testing.T) {
	f := func(vals []float64) bool {
		s := NewStreamingSeries()
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e9 {
				continue
			}
			s.Add(v)
		}
		sd := s.StdDev()
		return sd >= 0 && !math.IsNaN(sd)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanBoundedByMinMax(t *testing.T) {
	f := func(vals []float64) bool {
		s := NewStreamingSeries()
		any := false
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e9 {
				continue
			}
			s.Add(v)
			any = true
		}
		if !any {
			return true
		}
		m := s.Mean()
		mn, _ := s.Min()
		mx, _ := s.Max()
		return m >= mn-1e-9 && m <= mx+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestImprovement(t *testing.T) {
	if got := Improvement(150, 100); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("improvement = %v, want 0.5", got)
	}
	if got := Improvement(80, 100); math.Abs(got+0.2) > 1e-12 {
		t.Errorf("regression = %v, want -0.2", got)
	}
	if got := Improvement(0, 0); got != 0 {
		t.Errorf("0/0 improvement = %v", got)
	}
	if !math.IsInf(Improvement(1, 0), 1) {
		t.Error("x/0 should be +Inf")
	}
}

func TestReductionImprovement(t *testing.T) {
	if got := ReductionImprovement(50, 100); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("latency reduction = %v, want 0.5", got)
	}
	if got := ReductionImprovement(0, 0); got != 0 {
		t.Errorf("0/0 reduction = %v", got)
	}
}

// TestImprovementEdgeCases pins the base=0, opt=0, and negative-value
// behaviour of the Figs 17–21 improvement calculus.
func TestImprovementEdgeCases(t *testing.T) {
	// opt=0 with a real baseline: total regression.
	if got := Improvement(0, 100); got != -1 {
		t.Errorf("Improvement(0, 100) = %v, want -1", got)
	}
	// Negative values (e.g. net energy balance going from deficit to
	// surplus): the sign convention follows the raw formula.
	if got := Improvement(-50, -100); math.Abs(got-(-0.5)) > 1e-12 {
		t.Errorf("Improvement(-50, -100) = %v, want -0.5", got)
	}
	if got := Improvement(50, -100); math.Abs(got-(-1.5)) > 1e-12 {
		t.Errorf("Improvement(50, -100) = %v, want -1.5", got)
	}
	// base=0 is the documented Inf escape, never NaN.
	if !math.IsInf(Improvement(-1, 0), 1) {
		t.Error("Improvement(-1, 0) should be +Inf, not NaN")
	}
}

func TestReductionImprovementEdgeCases(t *testing.T) {
	// Latency grew: negative improvement.
	if got := ReductionImprovement(200, 100); math.Abs(got-(-1)) > 1e-12 {
		t.Errorf("ReductionImprovement(200, 100) = %v, want -1", got)
	}
	// opt=0 with real baseline: 100% reduction.
	if got := ReductionImprovement(0, 100); got != 1 {
		t.Errorf("ReductionImprovement(0, 100) = %v, want 1", got)
	}
	// base=0, opt>0 surfaces as -Inf (a regression from nothing), not NaN.
	if !math.IsInf(ReductionImprovement(5, 0), -1) {
		t.Error("ReductionImprovement(5, 0) should be -Inf")
	}
	if got := ReductionImprovement(-20, -10); math.Abs(got-(-1)) > 1e-12 {
		t.Errorf("ReductionImprovement(-20, -10) = %v, want -1", got)
	}
}

// TestPercentileCacheInvalidation proves the cached sort is refreshed by
// Add and not rebuilt between reads.
func TestPercentileCacheInvalidation(t *testing.T) {
	s := NewSeries()
	for i := 1; i <= 10; i++ {
		s.Add(float64(i))
	}
	if got := s.Percentile(100); got != 10 {
		t.Fatalf("p100 = %v", got)
	}
	s.Add(99) // must invalidate the cached sort
	if got := s.Percentile(100); got != 99 {
		t.Fatalf("p100 after Add = %v, want 99", got)
	}
	// A second read with no intervening Add reuses the cache: no
	// allocation, no re-sort.
	if n := testing.AllocsPerRun(100, func() {
		if got := s.Percentile(50); got == 0 {
			t.Fatal("p50 = 0")
		}
	}); n != 0 {
		t.Errorf("cached Percentile allocates %.2f times per call, want 0", n)
	}
	// The cache must be a copy: percentile order must not disturb the
	// insertion-ordered retained values (Add-after-Percentile keeps min/max
	// coherent).
	s.Add(0)
	if mn, ok := s.Min(); !ok || mn != 0 {
		t.Errorf("min = %v (ok=%v)", mn, ok)
	}
	if got := s.Percentile(0); got != 0 {
		t.Errorf("p0 = %v, want 0", got)
	}
}

// Surveillance case study: 24 remote cameras stream 0.21 GB/min of video
// for wildlife/volcano/epidemic monitoring (§2.1, §5). The stream is
// delay-tolerant but continuous, so the power manager adjusts the VM count
// between stream windows instead of throttling frequency mid-job.
//
// The example sweeps the solar budget (the paper's over-subscription study,
// §6.4) and shows how service degrades under each power manager.
package main

import (
	"fmt"
	"log"

	"insure"
)

func main() {
	fmt.Println("24-camera video surveillance under shrinking solar budgets")
	fmt.Println()
	fmt.Printf("%-10s %-9s %8s %9s %11s %11s\n",
		"solar peak", "policy", "uptime", "GB done", "delay (min)", "perf/Ah")

	for _, peak := range []float64{1000, 750, 500} {
		opt, base, err := insure.Compare(insure.Config{
			Day:      insure.Day{Weather: insure.Sunny, PeakWatts: peak},
			Workload: insure.SurveillanceWorkload(),
		})
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range []insure.Report{opt, base} {
			fmt.Printf("%7.0f W  %-9s %7.1f%% %9.1f %11.1f %11.2f\n",
				peak, r.Policy, r.UptimeFrac*100, r.ProcessedGB, r.DelayMinutes, r.PerfPerAh)
		}
		fmt.Println()
	}

	fmt.Println("Even with the solar budget cut in half, InSURE maintains its advantage —")
	fmt.Println("the paper's observation that optimisation effectiveness holds under")
	fmt.Println("power over-subscription (§6.4).")
}

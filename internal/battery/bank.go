package battery

import (
	"fmt"
	"time"

	"insure/internal/units"
)

// Bank is the distributed battery array: an indexed set of units that the
// relay fabric connects to the charge or discharge bus individually.
type Bank struct {
	units []*Unit
}

// NewBank builds a bank of n identical units at the given initial SoC.
func NewBank(p Params, n int, soc float64) (*Bank, error) {
	if n <= 0 {
		return nil, fmt.Errorf("battery: bank size %d must be positive", n)
	}
	b := &Bank{units: make([]*Unit, n)}
	for i := range b.units {
		u, err := New(p, soc)
		if err != nil {
			return nil, err
		}
		b.units[i] = u
	}
	return b, nil
}

// MustNewBank is NewBank for known-good parameters; it panics on error.
func MustNewBank(p Params, n int, soc float64) *Bank {
	b, err := NewBank(p, n, soc)
	if err != nil {
		panic(err)
	}
	return b
}

// Size returns the number of units in the bank.
func (b *Bank) Size() int { return len(b.units) }

// Unit returns unit i.
func (b *Bank) Unit(i int) *Unit { return b.units[i] }

// Units returns the underlying units slice (shared, not copied).
func (b *Bank) Units() []*Unit { return b.units }

// StoredEnergy totals the energy held across all units.
func (b *Bank) StoredEnergy() units.WattHour {
	var e units.WattHour
	for _, u := range b.units {
		e += u.StoredEnergy()
	}
	return e
}

// MeanSoC is the capacity-weighted average state of charge.
func (b *Bank) MeanSoC() float64 {
	var s, c float64
	for _, u := range b.units {
		s += u.SoC() * float64(u.p.CapacityAh)
		c += float64(u.p.CapacityAh)
	}
	if c == 0 {
		return 0
	}
	return s / c
}

// TotalThroughput sums wear-weighted throughput across units.
func (b *Bank) TotalThroughput() units.AmpHour {
	var t units.AmpHour
	for _, u := range b.units {
		t += u.Throughput()
	}
	return t
}

// ThroughputSpread returns max−min per-unit throughput, a direct measure of
// how well SPM balances wear across the array.
func (b *Bank) ThroughputSpread() units.AmpHour {
	if len(b.units) == 0 {
		return 0
	}
	min, max := b.units[0].Throughput(), b.units[0].Throughput()
	for _, u := range b.units[1:] {
		if t := u.Throughput(); t < min {
			min = t
		} else if t > max {
			max = t
		}
	}
	return max - min
}

// RestAll advances every unit with no current flowing.
func (b *Bank) RestAll(dt time.Duration) {
	for _, u := range b.units {
		u.Rest(dt)
	}
}

// DischargeSet draws total power p split evenly across the given unit
// indices for dt, and returns the energy actually delivered. Units whose
// available well empties deliver less; the caller sees the shortfall.
func (b *Bank) DischargeSet(idx []int, p units.Watt, dt time.Duration) units.WattHour {
	if len(idx) == 0 || p <= 0 {
		return 0
	}
	var delivered units.WattHour
	share := p / units.Watt(len(idx))
	for _, i := range idx {
		u := b.units[i]
		v := u.TerminalVoltage()
		if v <= 0 {
			continue
		}
		cur := units.Current(share, v)
		got := u.Discharge(cur, dt)
		delivered += units.WattHour(float64(got) * float64(v))
	}
	return delivered
}

// ChargeSet pushes budget power into the given unit indices, splitting
// evenly, and returns the power actually consumed.
func (b *Bank) ChargeSet(idx []int, budget units.Watt, dt time.Duration) units.Watt {
	if len(idx) == 0 || budget <= 0 {
		return 0
	}
	var used units.Watt
	share := budget / units.Watt(len(idx))
	for _, i := range idx {
		used += b.units[i].ChargeAtPower(share, dt)
	}
	return used
}

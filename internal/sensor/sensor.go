// Package sensor models the real-time monitoring hardware of the InSURE
// prototype (§4): per-battery voltage and current transducers whose analog
// outputs are sampled by PLC analog-input modules.
//
// Quantisation and range limits matter: the paper's threshold-based control
// (voltage cutoffs, discharge-current caps) acts on transduced readings, not
// ground truth, so we reproduce the measurement chain — a CR Magnetics
// CR5310 voltage transducer (0–50 V in, ±5 V out), an HCS 20-10 current
// transducer (±10 A in, ±4 V out), and a 12-bit analog input module.
package sensor

import (
	"fmt"

	"insure/internal/units"
)

// Transducer converts a physical quantity into an analog signal voltage and
// back. Readings outside the input range saturate, as real hardware does.
type Transducer struct {
	name string
	// InLo..InHi is the measurable input range (in the quantity's unit).
	InLo, InHi float64
	// OutLo..OutHi is the analog output swing in volts.
	OutLo, OutHi float64
}

// VoltageTransducer models the CR5310 (0–50 V DC in, ±5 V out).
func VoltageTransducer(name string) *Transducer {
	return &Transducer{name: name, InLo: 0, InHi: 50, OutLo: -5, OutHi: 5}
}

// CurrentTransducer models the HCS 20-10-AP-CL (±10 A in, ±4 V out).
func CurrentTransducer(name string) *Transducer {
	return &Transducer{name: name, InLo: -10, InHi: 10, OutLo: -4, OutHi: 4}
}

// Name returns the transducer's identifier.
func (t *Transducer) Name() string { return t.name }

// Analog converts the physical input into the analog output voltage,
// saturating at the range limits.
func (t *Transducer) Analog(in float64) float64 {
	in = units.Clamp(in, t.InLo, t.InHi)
	frac := (in - t.InLo) / (t.InHi - t.InLo)
	return t.OutLo + frac*(t.OutHi-t.OutLo)
}

// Physical inverts Analog: analog signal voltage back to the physical unit.
func (t *Transducer) Physical(analog float64) float64 {
	analog = units.Clamp(analog, t.OutLo, t.OutHi)
	frac := (analog - t.OutLo) / (t.OutHi - t.OutLo)
	return t.InLo + frac*(t.InHi-t.InLo)
}

// ADC models one channel of the PLC analog-input extension module
// (S7-200 6ES7-231: 12-bit conversion over the signal range).
type ADC struct {
	Bits       int
	SigLo, Sig float64 // signal range low/high in volts
}

// NewADC returns a 12-bit channel spanning the given signal range.
func NewADC(lo, hi float64) *ADC { return &ADC{Bits: 12, SigLo: lo, Sig: hi} }

// Levels is the number of quantisation steps.
func (a *ADC) Levels() int { return 1 << a.Bits }

// Convert quantises an analog voltage to a raw register code.
func (a *ADC) Convert(v float64) uint16 {
	v = units.Clamp(v, a.SigLo, a.Sig)
	frac := (v - a.SigLo) / (a.Sig - a.SigLo)
	code := int(frac*float64(a.Levels()-1) + 0.5)
	return uint16(code)
}

// Voltage reconstructs the analog voltage from a register code.
func (a *ADC) Voltage(code uint16) float64 {
	frac := float64(code) / float64(a.Levels()-1)
	return a.SigLo + frac*(a.Sig-a.SigLo)
}

// Channel is a complete measurement chain: transducer → ADC → register.
type Channel struct {
	T   *Transducer
	A   *ADC
	raw uint16

	// Fault state: a stuck channel freezes its last register code; drift
	// offsets the analog signal (in volts) before quantisation. Real
	// transducers fail exactly these two ways — a dead output stage holds
	// the last sampled level, a degraded one walks off calibration.
	stuck  bool
	driftV float64
}

// NewVoltageChannel builds the chain for one battery terminal voltage.
func NewVoltageChannel(name string) *Channel {
	t := VoltageTransducer(name)
	return &Channel{T: t, A: NewADC(t.OutLo, t.OutHi)}
}

// NewCurrentChannel builds the chain for one battery current.
func NewCurrentChannel(name string) *Channel {
	t := CurrentTransducer(name)
	return &Channel{T: t, A: NewADC(t.OutLo, t.OutHi)}
}

// Sample measures the physical value and stores the register code. A stuck
// channel keeps its frozen code; a drifting one quantises the offset signal.
func (c *Channel) Sample(physical float64) {
	if c.stuck {
		return
	}
	c.raw = c.A.Convert(c.T.Analog(physical) + c.driftV)
}

// InjectStick freezes the channel at its current register code.
func (c *Channel) InjectStick() { c.stuck = true }

// InjectDrift adds a calibration drift of dv volts to the analog signal.
func (c *Channel) InjectDrift(dv float64) { c.driftV += dv }

// ClearFaults repairs the channel.
func (c *Channel) ClearFaults() { c.stuck = false; c.driftV = 0 }

// Faulted reports whether a fault is injected.
func (c *Channel) Faulted() bool { return c.stuck || c.driftV != 0 }

// Raw returns the last register code, as the PLC stores it.
func (c *Channel) Raw() uint16 { return c.raw }

// Value reconstructs the physical measurement from the stored code.
func (c *Channel) Value() float64 { return c.T.Physical(c.A.Voltage(c.raw)) }

// SetRaw installs a register code directly (used when readings arrive over
// the fieldbus rather than from a local sample).
func (c *Channel) SetRaw(code uint16) { c.raw = code }

// BatteryProbe is the per-unit instrumentation: one voltage and one current
// channel, as wired in the prototype.
type BatteryProbe struct {
	Volt    *Channel
	Current *Channel
}

// NewBatteryProbe instruments battery unit i.
func NewBatteryProbe(i int) *BatteryProbe {
	return &BatteryProbe{
		Volt:    NewVoltageChannel(fmt.Sprintf("bat%d-V", i)),
		Current: NewCurrentChannel(fmt.Sprintf("bat%d-I", i)),
	}
}

// Sample measures the unit's terminal voltage and signed current
// (+discharge, −charge).
func (p *BatteryProbe) Sample(v units.Volt, i units.Amp) {
	p.Volt.Sample(float64(v))
	p.Current.Sample(float64(i))
}

// Readings returns the transduced measurements.
func (p *BatteryProbe) Readings() (units.Volt, units.Amp) {
	return units.Volt(p.Volt.Value()), units.Amp(p.Current.Value())
}

package main

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"insure/internal/plc"
	"insure/internal/relay"
	"insure/internal/telemetry/promtest"
)

// TestPanelMetricsEndpoint drives the daemon's exact wiring at simulated
// speed and validates the scrape with the strict exposition parser — the
// acceptance test that insure-plcd serves well-formed Prometheus text.
func TestPanelMetricsEndpoint(t *testing.T) {
	const n = 4
	p, err := newPanel(n, 0.5, 400, 300)
	if err != nil {
		t.Fatal(err)
	}

	// Command unit 0 to charge so the relay fabric switches and the settle
	// histogram sees at least one observation.
	if err := p.controller.Regs.WriteCoil(plc.CoilCharge(0), true); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		elapsed := time.Duration(i+1) * time.Second
		p.tick(time.Second, elapsed)
	}

	addr, stop, err := p.reg.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	samples := promtest.Scrape(t, "http://"+addr.String()+"/metrics")
	found := map[string]float64{}
	for _, s := range samples {
		found[s.Name+promtest.LabelSig(s.Labels)] = s.Value
	}

	if got := found["insure_sim_clock_seconds"]; got != 10 {
		t.Errorf("clock = %v, want 10", got)
	}
	for i := 0; i < n; i++ {
		key := "insure_battery_soc{unit=" + string(rune('0'+i)) + "}"
		soc, ok := found[key]
		if !ok {
			t.Fatalf("missing %s in scrape", key)
		}
		if soc <= 0 || soc > 1 {
			t.Errorf("%s = %v, want (0,1]", key, soc)
		}
	}
	if found["insure_relay_cycles"] < 1 {
		t.Errorf("relay cycles = %v, want >= 1", found["insure_relay_cycles"])
	}
	if found["insure_plc_scan_duration_seconds_count"] < 1 {
		t.Errorf("scan histogram count = %v, want >= 1",
			found["insure_plc_scan_duration_seconds_count"])
	}
	if found["insure_relay_settle_seconds_count"] < 1 {
		t.Errorf("settle histogram count = %v, want >= 1",
			found["insure_relay_settle_seconds_count"])
	}
	if found["insure_relay_failed"] != 0 {
		t.Errorf("failed relays = %v, want 0", found["insure_relay_failed"])
	}
}

// TestPanelHealthz checks the relay-fabric health check flips the endpoint
// from ok to degraded when a pair faults.
func TestPanelHealthz(t *testing.T) {
	p, err := newPanel(2, 0.5, 400, 300)
	if err != nil {
		t.Fatal(err)
	}
	p.tick(time.Second, time.Second)

	addr, stop, err := p.reg.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	url := "http://" + addr.String() + "/healthz"

	get := func() (int, map[string]any) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}

	code, body := get()
	if code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthy panel: code=%d body=%v", code, body)
	}

	p.fabric.Pair(1).Charge.Fail(relay.FailWeldClosed)
	p.tick(time.Second, 2*time.Second)

	code, body = get()
	if code != http.StatusServiceUnavailable || body["status"] != "degraded" {
		t.Fatalf("faulted panel: code=%d body=%v", code, body)
	}
}

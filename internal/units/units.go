// Package units defines the physical quantity types shared by every InSURE
// subsystem. Power-system models are riddled with unit mistakes when raw
// float64s travel across package boundaries; distinct named types let the
// compiler catch a watt being handed to an amp-hour parameter while keeping
// arithmetic as cheap as plain floats.
package units

import (
	"fmt"
	"time"
)

// Watt is electrical power in watts.
type Watt float64

// WattHour is electrical energy in watt-hours.
type WattHour float64

// Amp is electrical current in amperes.
type Amp float64

// AmpHour is electric charge in ampere-hours, the natural unit for battery
// throughput and wear accounting.
type AmpHour float64

// Volt is electric potential in volts.
type Volt float64

// KiloWattHour converts a kWh quantity into WattHour.
func KiloWattHour(kwh float64) WattHour { return WattHour(kwh * 1000) }

// KWh reports the energy in kilowatt-hours.
func (e WattHour) KWh() float64 { return float64(e) / 1000 }

// Energy returns the energy transferred by power p flowing for d.
func Energy(p Watt, d time.Duration) WattHour {
	return WattHour(float64(p) * d.Hours())
}

// Charge returns the charge moved by current i flowing for d.
func Charge(i Amp, d time.Duration) AmpHour {
	return AmpHour(float64(i) * d.Hours())
}

// Power returns the power implied by current i at potential v.
func Power(i Amp, v Volt) Watt { return Watt(float64(i) * float64(v)) }

// Current returns the current implied by power p at potential v.
// It returns 0 when v is 0 to avoid propagating Inf through the models.
func Current(p Watt, v Volt) Amp {
	if v == 0 {
		return 0
	}
	return Amp(float64(p) / float64(v))
}

// Over returns the average power that delivers energy e over duration d.
func (e WattHour) Over(d time.Duration) Watt {
	h := d.Hours()
	if h == 0 {
		return 0
	}
	return Watt(float64(e) / h)
}

func (p Watt) String() string     { return fmt.Sprintf("%.1fW", float64(p)) }
func (e WattHour) String() string { return fmt.Sprintf("%.1fWh", float64(e)) }
func (i Amp) String() string      { return fmt.Sprintf("%.2fA", float64(i)) }
func (q AmpHour) String() string  { return fmt.Sprintf("%.2fAh", float64(q)) }
func (v Volt) String() string     { return fmt.Sprintf("%.2fV", float64(v)) }

// Clamp limits x to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Lerp linearly interpolates between a and b by t in [0,1].
func Lerp(a, b, t float64) float64 { return a + (b-a)*Clamp(t, 0, 1) }

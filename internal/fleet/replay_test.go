package fleet

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"insure/internal/journal"
	"insure/internal/sim"
)

// stubManager is a do-nothing manager for tests that never tick a plant.
type stubManager struct{}

func (stubManager) Name() string                          { return "stub" }
func (stubManager) Period() time.Duration                 { return time.Minute }
func (stubManager) Control(_ *sim.System, _ time.Duration) {}

// wanLogFixture appends a migration-log sequence exercising every v2 record
// kind plus the legacy kinds, returning the records with their journal
// sequence numbers. The shape: transfer 1 moves two jobs with drops and a
// retransmission, transfer 2 ships two checkpoint images and re-routes
// mid-stream, transfer 3 aborts with its source site, and a v1-era
// job/checkpoint/restore triple rides along.
func wanLogFixture(t *testing.T, dir string) ([]Record, []uint64) {
	t.Helper()
	log, existing, _, err := openLog(journal.Disk, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(existing) != 0 {
		t.Fatalf("fixture dir not empty: %d records", len(existing))
	}
	manifest := []JobRef{
		{ID: 1<<32 | 1, Size: 2, Remaining: 1.5, Arrived: time.Hour, Origin: 0},
		{ID: 1<<32 | 2, Size: 1.5, Remaining: 1.5, Arrived: 2 * time.Hour, Origin: 0},
	}
	records := []Record{
		{Day: 0, At: 8 * time.Hour, Kind: RecXferStart, From: 0, To: 1,
			Jobs: 2, GB: 3, Xfer: 1, Manifest: manifest},
		{Day: 0, At: 8*time.Hour + 5*time.Minute, Kind: RecXferProgress, From: 0, To: 1,
			Xfer: 1, Offset: 2e9, Attempted: 2.5e9, Drops: 1, Corrupts: 1},
		{Day: 0, At: 9 * time.Hour, Kind: RecXferStart, From: 0, To: 1,
			GB: 8, Images: 2, Xfer: 2},
		{Day: 0, At: 9*time.Hour + 5*time.Minute, Kind: RecXferProgress, From: 0, To: 1,
			Xfer: 2, Offset: 1e9, Attempted: 1e9},
		{Day: 0, At: 9*time.Hour + 30*time.Minute, Kind: RecXferReroute, From: 0, To: 2,
			GB: 1, Xfer: 2, Offset: 1e9},
		{Day: 0, At: 10 * time.Hour, Kind: RecXferDone, From: 0, To: 1,
			Jobs: 2, GB: 3, Xfer: 1},
		{Day: 0, At: 10*time.Hour + 5*time.Minute, Kind: RecXferProgress, From: 0, To: 2,
			Xfer: 2, Offset: 8e9, Attempted: 8e9},
		{Day: 0, At: 10*time.Hour + 10*time.Minute, Kind: RecXferDone, From: 0, To: 2,
			GB: 8, Images: 2, Xfer: 2},
		{Day: 0, At: 11 * time.Hour, Kind: RecXferStart, From: 1, To: 2,
			Jobs: 1, GB: 1, Xfer: 3,
			Manifest: []JobRef{{ID: 2<<32 | 1, Size: 1, Remaining: 1, Origin: 1}}},
		{Day: 0, At: 12 * time.Hour, Kind: RecSiteLoss, From: 1, To: -1},
		{Day: 0, At: 12*time.Hour + 5*time.Minute, Kind: RecXferAbort, From: 1, To: 2,
			Jobs: 1, GB: 1, Xfer: 3},
		{Day: 0, At: 13 * time.Hour, Kind: RecJob, From: 2, To: 0, Jobs: 3, GB: 5},
		{Day: 0, At: 13 * time.Hour, Kind: RecCheckpoint, From: 2, To: 0, Images: 1, GB: 4},
		{Day: 0, At: 14 * time.Hour, Kind: RecRestore, From: 2, To: 0, Images: 1, GB: 4},
	}
	seqs := make([]uint64, len(records))
	for i, r := range records {
		seq, err := log.append(r)
		if err != nil {
			t.Fatal(err)
		}
		seqs[i] = seq
	}
	if err := log.close(); err != nil {
		t.Fatal(err)
	}
	return records, seqs
}

func stubSites(n int) []Site {
	sites := make([]Site, n)
	for i := range sites {
		sites[i] = Site{Sink: &stubSink{}, Manager: stubManager{}}
	}
	return sites
}

// TestMigrationLogReplayIdempotent is the replay property test: applying the
// same log twice — every record re-replayed with its original sequence
// number over an already-recovered coordinator — must change nothing, and
// two independent recoveries from the same log must agree exactly.
func TestMigrationLogReplayIdempotent(t *testing.T) {
	dir := t.TempDir()
	records, seqs := wanLogFixture(t, dir)

	c, err := New(Config{LogDir: dir}, stubSites(3))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if !c.Recovered() {
		t.Fatal("coordinator did not replay the fixture log")
	}
	tot := c.Totals()

	// Sanity-pin the fixture accounting before testing idempotence.
	if tot.JobsMoved != 2+1+3 || tot.Migrations != 3 {
		t.Fatalf("fixture jobs accounting off: %+v", tot)
	}
	if tot.ImagesShipped != 2+1 || tot.RestoredVMs != 2+1 {
		t.Fatalf("fixture checkpoint accounting off: %+v", tot)
	}
	if tot.Reroutes != 1 || tot.ChunkDrops != 1 || tot.ChunkCorrupts != 1 || tot.SitesLost != 1 {
		t.Fatalf("fixture WAN accounting off: %+v", tot)
	}
	if tot.JobsDoubleRun != 0 || tot.SplitBrain != 0 {
		t.Fatalf("guard counters nonzero on a clean log: %+v", tot)
	}
	if tot.RetransmitGB <= 0 {
		t.Fatalf("drops and a reroute must show as retransmitted bytes: %+v", tot)
	}
	rep := c.Report()
	if rep.Sites[1].JobsIn != 2 || rep.Sites[2].ImagesIn != 2 {
		t.Fatalf("per-site accounting off: %+v", rep.Sites)
	}
	if rep.Sites[1].LostPendingGB != 1 {
		t.Fatalf("aborted transfer's GB not charged to the dead source: %+v", rep.Sites[1])
	}

	// Replay the whole log again, in order, with the original sequence
	// numbers: the seq gate must make every record a no-op.
	for i, r := range records {
		c.replay(r, seqs[i])
	}
	if got := c.Totals(); !reflect.DeepEqual(got, tot) {
		t.Errorf("double replay changed totals:\n got: %+v\nwant: %+v", got, tot)
	}
	if got := c.Report(); !reflect.DeepEqual(got, rep) {
		t.Errorf("double replay changed the report:\n got: %+v\nwant: %+v", got, rep)
	}

	// A second recovery from the same directory must land on the identical
	// accounting (close the first handle before reopening the store).
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	c2, err := New(Config{LogDir: dir}, stubSites(3))
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if got := c2.Totals(); !reflect.DeepEqual(got, tot) {
		t.Errorf("second recovery diverged:\n got: %+v\nwant: %+v", got, tot)
	}
}

// TestMigrationLogReplayTornTail appends a torn half-record to the journal
// file: the journal layer truncates it on load, and the coordinator's
// accounting must be exactly what the intact prefix says — a crash mid-append
// never invents or loses a whole record.
func TestMigrationLogReplayTornTail(t *testing.T) {
	dir := t.TempDir()
	wanLogFixture(t, dir)

	clean, err := New(Config{LogDir: dir}, stubSites(3))
	if err != nil {
		t.Fatal(err)
	}
	want := clean.Totals()
	if err := clean.Close(); err != nil {
		t.Fatal(err)
	}

	jpath := filepath.Join(dir, "journal.log")
	f, err := os.OpenFile(jpath, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A plausible frame header promising far more bytes than follow.
	if _, err := f.Write([]byte{0xff, 0x00, 0x00, 0x00, 0x01, 0x02, 0x03}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	torn, err := New(Config{LogDir: dir}, stubSites(3))
	if err != nil {
		t.Fatalf("torn tail must truncate, not fail recovery: %v", err)
	}
	defer torn.Close()
	if got := torn.Totals(); !reflect.DeepEqual(got, want) {
		t.Errorf("torn-tail recovery diverged:\n got: %+v\nwant: %+v", got, want)
	}
}

package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// RenderCSV writes the table as CSV: a comment row with the title, the
// header, then the data rows. Notes become trailing comment rows.
func (t *Table) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"# " + t.ID + ": " + t.Title}); err != nil {
		return err
	}
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if err := cw.Write([]string{"# note: " + n}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// RenderMarkdown writes the table as a GitHub-flavoured markdown section.
func (t *Table) RenderMarkdown(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "## %s — %s\n\n", strings.ToUpper(t.ID), t.Title); err != nil {
		return err
	}
	esc := func(s string) string { return strings.ReplaceAll(s, "|", "\\|") }
	cells := make([]string, len(t.Header))
	for i, h := range t.Header {
		cells[i] = esc(h)
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(cells, " | ")); err != nil {
		return err
	}
	seps := make([]string, len(t.Header))
	for i := range seps {
		seps[i] = "---"
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | ")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		cells := make([]string, len(row))
		for i, c := range row {
			cells[i] = esc(c)
		}
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(cells, " | ")); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "\n> %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// RenderAs dispatches on format: "text" (default), "csv", or "markdown".
func (t *Table) RenderAs(w io.Writer, format string) error {
	switch strings.ToLower(format) {
	case "", "text":
		return t.Render(w)
	case "csv":
		return t.RenderCSV(w)
	case "markdown", "md":
		return t.RenderMarkdown(w)
	default:
		return fmt.Errorf("experiments: unknown format %q (want text, csv, markdown)", format)
	}
}

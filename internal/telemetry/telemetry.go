// Package telemetry is the live observability plane of the reproduction:
// a concurrency-safe registry of counters, gauges, and fixed-bucket
// histograms that the plant, the control plane, and the daemons publish
// into while running — the counterpart of the prototype's management
// platform, which "collects various log data automatically" (§5) and
// feeds §6.2's longevity analysis.
//
// The hot-path operations (Counter.Inc/Add, Gauge.Set, Histogram.Observe)
// are single atomic instructions and never allocate, so instrumentation
// can live inside the simulation tick without breaking the zero-alloc
// steady-state invariant (see DESIGN.md "Performance" and the alloc
// regression tests). Exposition — Prometheus text format over HTTP, or a
// JSON snapshot embedded next to BENCH.json — is the slow path and may
// allocate freely.
//
// Correlation model: the registry carries a monotonic simulation clock
// (SetClock), advanced by whoever drives the plant. Logbook events are
// stamped with the same clock, so a quarantine line in the logbook is
// directly correlatable with the counter increment observed at the same
// sim-time in a snapshot or scrape.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one name="value" pair attached to a metric at registration.
type Label struct {
	Key, Value string
}

// metric is the registry's view of an instrument.
type metric interface {
	// meta returns the metric's identity: base name, exposition type
	// ("counter", "gauge", "histogram"), help string, and labels.
	meta() *metricMeta
}

type metricMeta struct {
	name   string
	help   string
	typ    string
	labels []Label
	id     string // name plus rendered label set, unique per registry
}

// labelSuffix renders {k="v",...} or "" for an unlabelled metric. Values
// are escaped per the Prometheus text exposition rules.
func labelSuffix(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func escapeHelp(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

func newMeta(name, typ, help string, labels []Label) *metricMeta {
	return &metricMeta{
		name:   name,
		help:   help,
		typ:    typ,
		labels: append([]Label(nil), labels...),
		id:     name + labelSuffix(labels),
	}
}

// Counter is a monotonically increasing count. Inc and Add are lock-free
// and allocation-free.
type Counter struct {
	m metricMeta
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) meta() *metricMeta { return &c.m }

// Gauge is an instantaneous value. Set is a single atomic store.
type Gauge struct {
	m metricMeta
	v atomic.Uint64 // math.Float64bits
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.v.Store(math.Float64bits(v)) }

// Value returns the stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.v.Load()) }

func (g *Gauge) meta() *metricMeta { return &g.m }

// FuncGauge reads its value from a callback at exposition time — the
// bridge for components that already keep their own atomic counters
// (e.g. the Modbus client's retry/timeout/reconnect counts).
type FuncGauge struct {
	m  metricMeta
	fn func() float64
}

// Value invokes the callback.
func (g *FuncGauge) Value() float64 { return g.fn() }

func (g *FuncGauge) meta() *metricMeta { return &g.m }

// Histogram is a fixed-bucket cumulative histogram. Observe is lock-free
// and allocation-free: a linear scan over the (small, fixed) bucket list
// plus three atomic updates.
//
// Snapshot-consistency contract: Observe publishes the bucket and sum
// first and the total count last; readers that load the count first and
// the buckets afterwards therefore always see bucketTotal >= count.
type Histogram struct {
	m      metricMeta
	uppers []float64 // ascending upper bounds; +Inf bucket is implicit
	counts []atomic.Int64
	inf    atomic.Int64
	sum    atomic.Uint64 // math.Float64bits, CAS-accumulated
	count  atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	placed := false
	for i, ub := range h.uppers {
		if v <= ub {
			h.counts[i].Add(1)
			placed = true
			break
		}
	}
	if !placed {
		h.inf.Add(1)
	}
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			break
		}
	}
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

func (h *Histogram) meta() *metricMeta { return &h.m }

// buckets returns the cumulative per-bucket counts including +Inf,
// loading the total count first (see the consistency contract above).
func (h *Histogram) snapshotCounts() (count int64, cumulative []int64) {
	count = h.count.Load()
	cumulative = make([]int64, len(h.uppers)+1)
	var run int64
	for i := range h.uppers {
		run += h.counts[i].Load()
		cumulative[i] = run
	}
	run += h.inf.Load()
	cumulative[len(h.uppers)] = run
	return count, cumulative
}

// DefTimeBuckets are the default duration buckets (seconds), spanning a
// PLC scan (~10 ms nominal) down to microseconds and up to multi-second
// Modbus timeouts.
var DefTimeBuckets = []float64{
	1e-6, 1e-5, 1e-4, 1e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 5,
}

// HealthCheck reports one component's liveness. A nil error means healthy;
// the error text is surfaced in the /healthz body otherwise.
type HealthCheck struct {
	Name  string
	Check func() error
}

// Registry holds the instruments of one process. The zero value is not
// usable; call NewRegistry.
type Registry struct {
	mu      sync.RWMutex
	byID    map[string]metric
	order   []metric // registration order; exposition sorts by name/id
	clock   atomic.Int64
	healthM sync.RWMutex
	health  []HealthCheck

	// Operating-mode surface (SetOpMode): the plant's survivability rung,
	// mirrored into /healthz so load balancers can see a site degrade and
	// drain a dying one instead of routing into a blackout.
	opMu       sync.RWMutex
	opMode     string
	opDraining bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byID: map[string]metric{}}
}

// SetClock publishes the current simulation time. The plant drives it
// once per tick; everything that scrapes or snapshots the registry reads
// the same clock, which is what makes logbook/telemetry correlation work.
func (r *Registry) SetClock(t time.Duration) { r.clock.Store(int64(t)) }

// Clock returns the last published simulation time.
func (r *Registry) Clock() time.Duration { return time.Duration(r.clock.Load()) }

// register installs m or returns the already-registered metric with the
// same id. A re-registration with a different type panics: two components
// disagreeing about an instrument is a programming error.
func (r *Registry) register(m metric) metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	id := m.meta().id
	if prev, ok := r.byID[id]; ok {
		if prev.meta().typ != m.meta().typ {
			panic(fmt.Sprintf("telemetry: %s re-registered as %s (was %s)",
				id, m.meta().typ, prev.meta().typ))
		}
		return prev
	}
	r.byID[id] = m
	r.order = append(r.order, m)
	return m
}

// Counter registers (or fetches) a counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{m: *newMeta(name, "counter", help, labels)}
	return r.register(c).(*Counter)
}

// Gauge registers (or fetches) a gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{m: *newMeta(name, "gauge", help, labels)}
	return r.register(g).(*Gauge)
}

// FuncGauge registers a callback-backed gauge. Re-registering the same id
// keeps the first callback.
func (r *Registry) FuncGauge(name, help string, fn func() float64, labels ...Label) *FuncGauge {
	g := &FuncGauge{m: *newMeta(name, "gauge", help, labels), fn: fn}
	return r.register(g).(*FuncGauge)
}

// Histogram registers (or fetches) a histogram with the given ascending
// bucket upper bounds (the +Inf bucket is implicit). Unsorted or empty
// bucket lists panic at registration, never at Observe time.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if len(buckets) == 0 {
		panic("telemetry: histogram needs at least one bucket")
	}
	if !sort.Float64sAreSorted(buckets) {
		panic("telemetry: histogram buckets must be ascending")
	}
	h := &Histogram{
		m:      *newMeta(name, "histogram", help, labels),
		uppers: append([]float64(nil), buckets...),
		counts: make([]atomic.Int64, len(buckets)),
	}
	return r.register(h).(*Histogram)
}

// SetOpMode publishes the plant's current operating mode (the PR 5
// survivability rung) into the /healthz report. With draining set the
// endpoint answers 503 regardless of the individual health checks — the
// signal a load balancer uses to take the site out of rotation while the
// plant is dark. The control plane calls this on every ladder transition.
func (r *Registry) SetOpMode(mode string, draining bool) {
	r.opMu.Lock()
	r.opMode, r.opDraining = mode, draining
	r.opMu.Unlock()
}

// OpMode returns the last published operating mode ("" before the first
// SetOpMode) and whether the process asked to be drained.
func (r *Registry) OpMode() (mode string, draining bool) {
	r.opMu.RLock()
	defer r.opMu.RUnlock()
	return r.opMode, r.opDraining
}

// AddHealthCheck installs a named liveness check surfaced by /healthz.
func (r *Registry) AddHealthCheck(name string, check func() error) {
	r.healthM.Lock()
	defer r.healthM.Unlock()
	r.health = append(r.health, HealthCheck{Name: name, Check: check})
}

// healthChecks returns a copy of the installed checks.
func (r *Registry) healthChecks() []HealthCheck {
	r.healthM.RLock()
	defer r.healthM.RUnlock()
	return append([]HealthCheck(nil), r.health...)
}

// sortedMetrics returns the metrics grouped by name (help/type emitted
// once per name) and ordered by id within a name.
func (r *Registry) sortedMetrics() []metric {
	r.mu.RLock()
	out := append([]metric(nil), r.order...)
	r.mu.RUnlock()
	sort.SliceStable(out, func(i, j int) bool {
		mi, mj := out[i].meta(), out[j].meta()
		if mi.name != mj.name {
			return mi.name < mj.name
		}
		return mi.id < mj.id
	})
	return out
}

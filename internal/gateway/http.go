package gateway

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// Server exposes a Gateway over HTTP:
//
//	GET /query?class=critical|standard|besteffort
//	    200 — served (JSON body: class, degraded, latency, energy, cost)
//	    503 — shed (Retry-After header + JSON reason/mode/soc), or the
//	          request's context was cancelled while queued
//	GET /stats
//	    cumulative Stats as JSON
//
// Now maps wall time to the simulation clock (the live daemon's
// accelerated clock); queued requests block until the ticket resolves.
type Server struct {
	GW *Gateway
	// Now returns the current simulation time. Required.
	Now func() time.Duration
}

// Mux returns the gateway's HTTP mux (/query and /stats).
func (s *Server) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/stats", s.handleStats)
	return mux
}

// queryReply is the /query response body.
type queryReply struct {
	Decision   string  `json:"decision"`
	Class      string  `json:"class"`
	Degraded   bool    `json:"degraded,omitempty"`
	Reason     string  `json:"reason,omitempty"`
	LatencyMs  float64 `json:"latency_ms,omitempty"`
	WaitMs     float64 `json:"wait_ms,omitempty"`
	RetryAfter float64 `json:"retry_after_s,omitempty"`
	EnergyWh   float64 `json:"energy_wh,omitempty"`
	CostUSD    float64 `json:"cost_usd,omitempty"`
	Mode       string  `json:"mode"`
	SoC        float64 `json:"soc"`
}

func replyOf(out Outcome) queryReply {
	rep := queryReply{
		Decision:  out.Decision.String(),
		Class:     out.Class.String(),
		Degraded:  out.Degraded,
		LatencyMs: out.LatencyMs,
		WaitMs:    out.WaitMs,
		EnergyWh:  out.EnergyWh,
		CostUSD:   out.CostUSD,
		Mode:      out.Mode.String(),
		SoC:       out.SoC,
	}
	if out.Decision == Shed {
		rep.Reason = out.Reason.String()
		rep.RetryAfter = out.RetryAfter.Seconds()
	}
	return rep
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	class, err := ParseClass(r.URL.Query().Get("class"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	out, ticket := s.GW.Admit(s.Now(), class)
	if out.Decision == Queued {
		// Block until the plant dispatches or sheds us — or the client
		// gives up. An abandoned ticket still resolves inside the gateway
		// (buffered channel), so the accounting stays balanced.
		select {
		case out = <-ticket.C:
		case <-r.Context().Done():
			http.Error(w, "client cancelled while queued", http.StatusServiceUnavailable)
			return
		}
	}
	writeQueryReply(w, out)
}

func writeQueryReply(w http.ResponseWriter, out Outcome) {
	code := http.StatusOK
	if out.Decision == Shed {
		code = http.StatusServiceUnavailable
		secs := int(out.RetryAfter.Seconds() + 0.5)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(replyOf(out))
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := s.GW.Stats()
	type classRow struct {
		Admitted   int `json:"admitted"`
		QueuedEver int `json:"queued_ever"`
		Shed       int `json:"shed"`
	}
	rep := struct {
		Requests        int                  `json:"requests"`
		QueueDepth      int                  `json:"queue_depth"`
		Degraded        int                  `json:"degraded"`
		AdmittedDropped int                  `json:"admitted_dropped"`
		EnergyWh        float64              `json:"energy_wh"`
		CostUSD         float64              `json:"cost_usd"`
		Classes         map[string]classRow  `json:"classes"`
		ShedReasons     map[string]int       `json:"shed_reasons"`
		SimClockSeconds float64              `json:"sim_clock_seconds"`
	}{
		Requests:        st.Requests,
		QueueDepth:      st.QueueDepth,
		Degraded:        st.Degraded,
		AdmittedDropped: st.AdmittedDropped,
		EnergyWh:        st.EnergyWh,
		CostUSD:         st.CostUSD,
		Classes:         map[string]classRow{},
		ShedReasons:     map[string]int{},
		SimClockSeconds: s.Now().Seconds(),
	}
	for c := Class(0); c < NumClasses; c++ {
		rep.Classes[c.String()] = classRow{
			Admitted:   st.Admitted[c],
			QueuedEver: st.QueuedEver[c],
			Shed:       st.Shed[c],
		}
	}
	for why := ShedNone + 1; why < numShedReasons; why++ {
		if n := st.ShedReason[why]; n > 0 {
			rep.ShedReasons[why.String()] = n
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(rep)
}

package journal

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestCodecRoundTrip(t *testing.T) {
	var e Encoder
	e.U8(7)
	e.U16(65535)
	e.U64(1<<63 + 12345)
	e.I64(-42)
	e.Int(-7)
	e.F64(3.141592653589793)
	e.F64(math.Copysign(0, -1))
	e.Bool(true)
	e.Bool(false)
	e.Dur(90 * time.Minute)
	e.String("quarantine: ghost current")
	e.String("")

	d := NewDecoder(e.Bytes())
	if got := d.U8(); got != 7 {
		t.Errorf("U8 = %d", got)
	}
	if got := d.U16(); got != 65535 {
		t.Errorf("U16 = %d", got)
	}
	if got := d.U64(); got != 1<<63+12345 {
		t.Errorf("U64 = %d", got)
	}
	if got := d.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := d.Int(); got != -7 {
		t.Errorf("Int = %d", got)
	}
	if got := d.F64(); got != 3.141592653589793 {
		t.Errorf("F64 = %v", got)
	}
	if got := d.U64(); got != 1<<63 { // -0.0 must round-trip bit-exactly
		t.Errorf("-0.0 bits = %x", got)
	}
	if !d.Bool() || d.Bool() {
		t.Error("Bool round-trip failed")
	}
	if got := d.Dur(); got != 90*time.Minute {
		t.Errorf("Dur = %v", got)
	}
	if got := d.String(); got != "quarantine: ghost current" {
		t.Errorf("String = %q", got)
	}
	if got := d.String(); got != "" {
		t.Errorf("empty String = %q", got)
	}
	if d.Remaining() != 0 {
		t.Errorf("%d bytes left over", d.Remaining())
	}
	if d.Err() != nil {
		t.Fatal(d.Err())
	}
}

func TestDecoderStickyError(t *testing.T) {
	d := NewDecoder([]byte{1, 2})
	_ = d.U64() // too short
	if d.Err() == nil {
		t.Fatal("want error on short read")
	}
	if got := d.F64(); got != 0 {
		t.Errorf("read after error = %v, want 0", got)
	}
}

func TestEncoderAppendDoesNotAllocateAfterWarmup(t *testing.T) {
	var e Encoder
	fill := func() {
		e.Reset()
		for i := 0; i < 64; i++ {
			e.F64(float64(i) * 1.5)
			e.Bool(i%2 == 0)
			e.Int(i)
		}
	}
	fill() // warm the buffer to steady-state capacity
	allocs := testing.AllocsPerRun(100, fill)
	if allocs != 0 {
		t.Errorf("encoder reuse allocates %.1f/op, want 0", allocs)
	}
}

func TestStoreAppendLoad(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := s.Append([]byte{byte(i), byte(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	res, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if res.Snapshot != nil {
		t.Error("unexpected snapshot")
	}
	if len(res.Entries) != 5 {
		t.Fatalf("entries = %d, want 5", len(res.Entries))
	}
	for i, e := range res.Entries {
		if !bytes.Equal(e, []byte{byte(i), byte(i + 1)}) {
			t.Errorf("entry %d = %v", i, e)
		}
		if res.EntrySeqs[i] != uint64(i+1) {
			t.Errorf("seq %d = %d", i, res.EntrySeqs[i])
		}
	}
	if res.LastSeq != 5 {
		t.Errorf("LastSeq = %d", res.LastSeq)
	}
}

func TestStoreSnapshotGatesJournal(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append([]byte("old-1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot([]byte("snap")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append([]byte("new-1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	res, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Snapshot) != "snap" {
		t.Errorf("snapshot = %q", res.Snapshot)
	}
	if len(res.Entries) != 1 || string(res.Entries[0]) != "new-1" {
		t.Errorf("entries = %q, want [new-1]", res.Entries)
	}

	// Crash between snapshot rename and journal truncate: simulate by
	// re-appending a record with a stale seq — covered structurally by
	// seq-gating, asserted here via the snapshot seq ordering.
	if res.EntrySeqs[0] <= res.SnapshotSeq {
		t.Error("journal entry not sequenced after snapshot")
	}
}

func TestStoreTornTailIsDropped(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append([]byte("good-record")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append([]byte("torn-record")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := TruncateTail(dir, 3); err != nil {
		t.Fatal(err)
	}

	res, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 1 || string(res.Entries[0]) != "good-record" {
		t.Fatalf("entries after torn tail = %q, want [good-record]", res.Entries)
	}

	// Reopen must truncate the torn bytes and continue the seq chain.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := s2.Append([]byte("after-crash"))
	if err != nil {
		t.Fatal(err)
	}
	// The torn record's seq is reused: its bytes were truncated away, so
	// the on-disk chain stays gapless.
	if seq != 2 {
		t.Errorf("post-crash seq = %d, want 2", seq)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	res, err = Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 2 || string(res.Entries[1]) != "after-crash" {
		t.Fatalf("entries after reopen = %q", res.Entries)
	}
}

func TestStoreCorruptRecordStopsReplay(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Append([]byte{0xAA, byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip a payload byte in the middle record: it and everything after
	// must be dropped (a corrupt middle means the tail is untrustworthy).
	jpath := filepath.Join(dir, journalName)
	raw, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	rec := recordHeader + 2
	raw[rec+recordHeader] ^= 0xFF
	if err := os.WriteFile(jpath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	res, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 1 {
		t.Fatalf("entries = %d, want 1 (replay stops at corruption)", len(res.Entries))
	}
}

func TestStoreCorruptSnapshotIsAnError(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot([]byte("snapshot-payload")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	spath := filepath.Join(dir, snapshotName)
	raw, err := os.ReadFile(spath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(spath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Fatal("want error loading corrupt snapshot")
	}
}

func TestStoreEmptyDirectory(t *testing.T) {
	res, err := Load(filepath.Join(t.TempDir(), "never-created"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Snapshot != nil || len(res.Entries) != 0 || res.LastSeq != 0 {
		t.Errorf("empty load = %+v", res)
	}
}

func TestStoreAppendDoesNotAllocate(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Sync = false // measure the framing path, not the kernel
	payload := make([]byte, 256)
	if _, err := s.Append(payload); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := s.Append(payload); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Append allocates %.1f/op, want 0", allocs)
	}
}

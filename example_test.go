package insure_test

import (
	"fmt"
	"log"
	"os"

	"insure"
)

// ExampleRun simulates a single day and reads the operating report.
func ExampleRun() {
	report, err := insure.Run(insure.Config{
		Day:      insure.Day{Weather: insure.Sunny, PeakWatts: 1000},
		Workload: insure.SeismicWorkload(),
		Policy:   insure.PolicyInSURE,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("processed %.0f GB at %.0f%% uptime\n", report.ProcessedGB, report.UptimeFrac*100)
}

// ExampleCompare runs the paper's paired-trace methodology: both managers
// see the identical day and workload.
func ExampleCompare() {
	opt, base, err := insure.Compare(insure.Config{
		Day:      insure.Day{Weather: Rainy()},
		Workload: insure.SurveillanceWorkload(),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("InSURE %.1f GB vs baseline %.1f GB\n", opt.ProcessedGB, base.ProcessedGB)
}

// Rainy exists so the example reads naturally.
func Rainy() insure.Weather { return insure.Rainy }

// ExampleExperiment regenerates one of the paper's tables.
func ExampleExperiment() {
	if err := insure.Experiment("table2", os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// ExampleConfig_backup fits the optional secondary generator of Fig 6.
func ExampleConfig_backup() {
	report, err := insure.Run(insure.Config{
		Day:      insure.Day{Weather: insure.Rainy, PeakWatts: 200},
		Workload: insure.SurveillanceWorkload(),
		Backup:   insure.BackupDiesel,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generator bridged %.1f kWh for $%.2f of fuel\n", report.GenKWh, report.GenFuelCost)
}

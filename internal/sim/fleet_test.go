package sim_test

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"insure/internal/baseline"
	"insure/internal/core"
	"insure/internal/sim"
	"insure/internal/trace"
)

// fleetSpecs builds n plants with per-plant variation (trace and manager
// alternate) over a trimmed window so the test stays fast.
func fleetSpecs(n int) []sim.FleetSpec {
	traces := []*trace.Trace{trace.FullSystemHigh(), trace.FullSystemLow()}
	specs := make([]sim.FleetSpec, n)
	for i := range specs {
		cfg := sim.DefaultConfig(traces[i%len(traces)])
		cfg.WindowStart = 9 * time.Hour
		cfg.WindowEnd = 11 * time.Hour
		var mgr sim.Manager
		if i%2 == 0 {
			mgr = core.New(core.DefaultConfig(), cfg.BatteryCount)
		} else {
			mgr = baseline.New(baseline.DefaultConfig())
		}
		specs[i] = sim.FleetSpec{Config: cfg, Sink: sim.NewSeismicSink(), Manager: mgr}
	}
	return specs
}

// TestFleetMatchesSerialRuns is the Fleet determinism oracle: the batch
// tick over shared SoA stores must reproduce, result for result, what each
// plant produces when run alone on its own stores.
func TestFleetMatchesSerialRuns(t *testing.T) {
	const n = 4

	want := make([]sim.Result, n)
	for i, spec := range fleetSpecs(n) {
		sys, err := sim.New(spec.Config, spec.Sink)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = sys.Run(spec.Manager)
	}

	fleet, err := sim.NewFleet(fleetSpecs(n))
	if err != nil {
		t.Fatal(err)
	}
	// The homogeneous specs must actually land on a shared bank store.
	if s0, s1 := fleet.System(0).Bank.SoA(), fleet.System(1).Bank.SoA(); s0 != s1 {
		t.Fatal("fleet plants did not share a bank store")
	}
	got := fleet.Run()

	if len(got) != n {
		t.Fatalf("fleet returned %d results, want %d", len(got), n)
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("plant %d: fleet result differs from solo run\n got: %+v\nwant: %+v", i, got[i], want[i])
		}
	}
}

// TestFleetHeterogeneousFallsBackToPrivateStores checks a mixed fleet still
// runs correctly on per-plant stores.
func TestFleetHeterogeneousFallsBackToPrivateStores(t *testing.T) {
	specs := fleetSpecs(2)
	specs[1].Config.BatteryCount = 4 // breaks homogeneity

	want := make([]sim.Result, len(specs))
	for i, spec := range specs {
		sys, err := sim.New(spec.Config, spec.Sink)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = sys.Run(spec.Manager)
	}

	specs = fleetSpecs(2)
	specs[1].Config.BatteryCount = 4
	fleet, err := sim.NewFleet(specs)
	if err != nil {
		t.Fatal(err)
	}
	if s0, s1 := fleet.System(0).Bank.SoA(), fleet.System(1).Bank.SoA(); s0 == s1 {
		t.Fatal("heterogeneous plants must not share a store")
	}
	for i, r := range fleet.Run() {
		if !reflect.DeepEqual(r, want[i]) {
			t.Errorf("plant %d: fleet result differs from solo run", i)
		}
	}
}

func TestFleetSimulatedTime(t *testing.T) {
	fleet, err := sim.NewFleet(fleetSpecs(3))
	if err != nil {
		t.Fatal(err)
	}
	start, end := fleet.System(0).Span()
	if got, want := fleet.SimulatedTime(), 3*(end-start); got != want {
		t.Fatalf("SimulatedTime = %v, want %v", got, want)
	}
}

func TestFleetRejectsMismatchedSteps(t *testing.T) {
	specs := fleetSpecs(2)
	specs[1].Config.Step = 2 * time.Second
	_, err := sim.NewFleet(specs)
	if err == nil {
		t.Fatal("want error for mismatched steps")
	}
	// The message must name both steps so a caller assembling N specs can
	// see which value is the odd one out.
	if want := "disagree on step (2s vs 1s)"; !strings.Contains(err.Error(), want) {
		t.Errorf("step-mismatch error %q does not contain %q", err, want)
	}
}

// TestFleetRejectsNilSpecs covers the per-index Sink and Manager
// validation: a nil Sink would panic deep inside sim.New, and a nil
// Manager would silently run the plant unmanaged; both must be named by
// plant index.
func TestFleetRejectsNilSpecs(t *testing.T) {
	specs := fleetSpecs(3)
	specs[2].Sink = nil
	_, err := sim.NewFleet(specs)
	if err == nil {
		t.Fatal("want error for nil Sink")
	}
	if want := "plant 2 has a nil Sink"; !strings.Contains(err.Error(), want) {
		t.Errorf("nil-sink error %q does not contain %q", err, want)
	}

	specs = fleetSpecs(3)
	specs[1].Manager = nil
	_, err = sim.NewFleet(specs)
	if err == nil {
		t.Fatal("want error for nil Manager")
	}
	if want := "plant 1 has a nil Manager"; !strings.Contains(err.Error(), want) {
		t.Errorf("nil-manager error %q does not contain %q", err, want)
	}
}

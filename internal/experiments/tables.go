package experiments

import (
	"context"
	"fmt"
	"time"

	"insure/internal/baseline"
	"insure/internal/core"
	"insure/internal/server"
	"insure/internal/sim"
	"insure/internal/solar"
	"insure/internal/trace"
	"insure/internal/units"
	"insure/internal/workload"
)

func init() {
	register("table2", Table2)
	register("table3", Table3)
	register("table6", Table6)
	register("table7", Table7)
}

// estClusterPower evaluates the server model's draw at n VMs (2 VMs/node).
func estClusterPower(prof server.Profile, util float64, n int) units.Watt {
	node := server.NewNode(prof)
	node.PowerOn()
	for i := 0; i < 20; i++ {
		node.Step(time.Minute)
	}
	node.SetUtil(util)
	full := n / prof.VMSlots
	rem := n % prof.VMSlots
	node.SetActiveVMs(prof.VMSlots)
	p := units.Watt(float64(full) * float64(node.Power()))
	if rem > 0 {
		node.SetActiveVMs(rem)
		p += node.Power()
	}
	return p
}

// Table2 reproduces the seismic VM-scaling study: both configurations get
// the same 2 kWh energy budget inside a fixed experiment window; the large
// configuration exhausts its budget early (57% availability) and ends up
// with lower delivered throughput.
func Table2(ctx context.Context) *Table {
	const budgetKWh = 2.0
	const windowH = 2.5
	spec := workload.Seismic()
	prof := server.Xeon()
	t := &Table{
		ID:     "table2",
		Title:  "Seismic data analysis throughput at equal 2 kWh energy budget",
		Header: []string{"compute capability", "avg pwr (W)", "availability", "throughput (GB/h)"},
	}
	for _, n := range []int{8, 4} {
		p := float64(estClusterPower(prof, spec.Util, n))
		runHours := budgetKWh * 1000 / p
		avail := runHours / windowH
		if avail > 1 {
			avail = 1
		}
		thpt := spec.Rate(n, 1) * avail
		label := fmt.Sprintf("%dVM", n)
		if n == 8 {
			label += " (High)"
		} else {
			label += " (Low)"
		}
		availStr := fmt.Sprintf("%.0f%%", avail*100)
		if avail >= 1 {
			availStr += " (Better)"
		}
		t.Rows = append(t.Rows, []string{label, f0(p), availStr, f1(thpt)})
	}
	t.Notes = append(t.Notes, "paper: 8VM 1397 W / 57% / 14.0 GB/h; 4VM 696 W / 100% / 16.5 GB/h")
	return t
}

// Table3 reproduces the video VM-scaling study: throughput and service
// delay per one-minute job window at each VM count.
func Table3(ctx context.Context) *Table {
	spec := workload.Video()
	prof := server.Xeon()
	t := &Table{
		ID:     "table3",
		Title:  "Hadoop video analysis at equal 2 kWh energy budget",
		Header: []string{"compute capability", "avg pwr (W)", "delay (minute)", "throughput (GB/min)"},
	}
	full := spec.Rate(8, 1) / 60 // GB/min at full strength
	for _, n := range []int{8, 6, 4, 2} {
		p := float64(estClusterPower(prof, spec.Util, n))
		rate := spec.Rate(n, 1) / 60
		delay := 0.0
		if rate > 0 && rate < full {
			// A one-minute window of data takes window·full/rate minutes
			// to process; the excess is the per-job delay.
			delay = full/rate - 1
		}
		label := fmt.Sprintf("%dVM", n)
		switch n {
		case 8:
			label += " (High)"
		case 2:
			label += " (Low)"
		}
		delayStr := f2(delay)
		if delay == 0 {
			delayStr = "0 (Better)"
		}
		t.Rows = append(t.Rows, []string{label, f0(p), delayStr, f2(rate)})
	}
	t.Notes = append(t.Notes, "paper: 8VM 1411 W/0 min/0.21; 6VM 1050/0.25/0.17; 4VM 686/0.5/0.10; 2VM 335/1.5/0.07")
	return t
}

// Table6 reproduces the day-long operating-log statistics for the
// spatio-temporal optimisation (Opt) versus aggressive buffer use (No-Opt)
// across the three weather scenarios.
func Table6(ctx context.Context) *Table {
	t := &Table{
		ID:    "table6",
		Title: "Day-long log statistics, Opt (InSURE) vs No-Opt (baseline)",
		Header: []string{"day", "scheme", "load kWh", "eff kWh", "pwr ctrl", "on/off", "VM ctrl",
			"min V", "end V", "V stddev"},
	}
	days := []struct {
		name string
		cond solar.Condition
	}{
		{"Sunny (7.9 kWh)", solar.Sunny},
		{"Cloudy (5.9 kWh)", solar.Cloudy},
		{"Rainy (3.0 kWh)", solar.Rainy},
	}
	// All six day-long runs (3 weather days × 2 schemes) go through one
	// campaign; rows are assembled from the positional results in the same
	// day-major, Non-Opt-first order the serial loop used.
	var runs []sim.CampaignRun
	for _, d := range days {
		tr := trace.Table6Day(d.cond, 77)
		for _, opt := range []bool{false, true} {
			opt := opt
			runs = append(runs, sim.CampaignRun{
				Name:      fmt.Sprintf("table6/%s/opt=%v", d.name, opt),
				Transient: true,
				Setup: func(a *sim.Arena) (*sim.System, sim.Manager, error) {
					cfg := sim.DefaultConfig(tr)
					cfg.Arena = a
					sys, err := sim.New(cfg, sim.NewSeismicSink())
					if err != nil {
						return nil, nil, err
					}
					if opt {
						return sys, core.New(core.DefaultConfig(), cfg.BatteryCount), nil
					}
					return sys, baseline.New(baseline.DefaultConfig()), nil
				},
			})
		}
	}
	results, err := sim.RunCampaign(ctx, 0, runs)
	if err != nil {
		panic(err)
	}
	for di, d := range days {
		for oi, opt := range []bool{false, true} {
			res := results[di*2+oi]
			scheme := "Non-Opt."
			if opt {
				scheme = "Opt."
			}
			t.Rows = append(t.Rows, []string{
				d.name, scheme,
				f1(res.LoadKWh), f1(res.EffectiveKWh),
				fmt.Sprintf("%d", res.PowerOps),
				fmt.Sprintf("%d", res.OnOffCycles),
				fmt.Sprintf("%d", res.VMOps),
				f1(float64(res.MinVolt)), f1(float64(res.EndVolt)),
				f2(res.VoltStdDev),
			})
		}
	}
	t.Notes = append(t.Notes,
		"the paper reports per-12V-pair voltages around 23-25 V; we report per-unit (12 V) statistics",
		"paper's key contrast: Opt runs far more control actions and keeps battery-voltage stddev ~12% lower")
	return t
}

// Table7 reproduces the legacy-vs-low-power server comparison.
func Table7(ctx context.Context) *Table {
	t := &Table{
		ID:     "table7",
		Title:  "Legacy high-performance node vs low-power node",
		Header: []string{"workload", "data size", "server type", "exe. time", "avg power", "data per kWh"},
	}
	for _, p := range workload.Table7Profiles() {
		size := fmt.Sprintf("%.1fG", p.InputGB)
		if p.InputGB < 0.1 {
			size = fmt.Sprintf("%.1fM", p.InputGB*1000)
		}
		perKWh := fmt.Sprintf("%.0fG/kWh", p.DataPerKWh())
		if p.DataPerKWh() > 1000 {
			perKWh = fmt.Sprintf("%.1fT/kWh", p.DataPerKWh()/1000)
		}
		t.Rows = append(t.Rows, []string{
			p.Workload, size, p.Server,
			fmt.Sprintf("%.1fs", p.ExecTime.Seconds()),
			fmt.Sprintf("%.0fW", float64(p.AvgPower)),
			perKWh,
		})
	}
	t.Notes = append(t.Notes, "paper: low-power nodes improve data-per-energy by 5x~15x")
	return t
}

package sim_test

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"insure/internal/core"
	"insure/internal/sim"
	"insure/internal/trace"
)

// waitGoroutines polls until the goroutine count drops back to at most
// base, failing the test if it does not within the deadline — the pool must
// not leak workers however a batch ends.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d running, baseline %d", n, base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestRunCellsExecutesAllInOrderSlots(t *testing.T) {
	const n = 64
	got := make([]int, n)
	err := sim.RunCells(context.Background(), 4, n, func(_ context.Context, i int, a *sim.Arena) error {
		if a == nil {
			return errors.New("nil arena")
		}
		got[i] = i + 1 // positional slot: only cell i writes index i
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("cell %d not executed (slot=%d)", i, v)
		}
	}
}

// TestRunCellsNestedBatch pins the help-first join: cells that fan out into
// nested batches on the same pool must complete without deadlock, with every
// leaf executed exactly once.
func TestRunCellsNestedBatch(t *testing.T) {
	const outer, inner = 6, 5
	var leaves atomic.Int64
	err := sim.RunCells(context.Background(), 3, outer, func(ctx context.Context, i int, _ *sim.Arena) error {
		// The workers argument must be ignored on the nested path — the
		// enclosing pool schedules these cells.
		return sim.RunCells(ctx, 1, inner, func(_ context.Context, j int, _ *sim.Arena) error {
			leaves.Add(1)
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := leaves.Load(); got != outer*inner {
		t.Fatalf("executed %d leaves, want %d", got, outer*inner)
	}
}

func TestRunCellsFirstErrorInInputOrderWins(t *testing.T) {
	errA := errors.New("cell 3 failed")
	errB := errors.New("cell 9 failed")
	err := sim.RunCells(context.Background(), 4, 12, func(_ context.Context, i int, _ *sim.Arena) error {
		switch i {
		case 3:
			return errA
		case 9:
			return errB
		}
		return nil
	})
	if !errors.Is(err, errA) {
		t.Fatalf("want first-by-index error %v, got %v", errA, err)
	}
}

// shortRuns builds n fast campaign runs (trimmed operating window) so the
// scheduler tests exercise real Systems without full-day cost. onSetup, when
// non-nil, observes each cell start.
func shortRuns(n int, onSetup func(i int)) []sim.CampaignRun {
	runs := make([]sim.CampaignRun, n)
	for i := range runs {
		i := i
		runs[i] = sim.CampaignRun{
			Name:      fmt.Sprintf("cell%02d", i),
			Transient: true,
			Setup: func(a *sim.Arena) (*sim.System, sim.Manager, error) {
				if onSetup != nil {
					onSetup(i)
				}
				cfg := sim.DefaultConfig(trace.FullSystemHigh())
				cfg.Arena = a
				cfg.WindowStart = 10 * time.Hour
				cfg.WindowEnd = 10*time.Hour + 30*time.Minute
				sys, err := sim.New(cfg, sim.NewSeismicSink())
				if err != nil {
					return nil, nil, err
				}
				return sys, core.New(core.DefaultConfig(), cfg.BatteryCount), nil
			},
		}
	}
	return runs
}

// TestRunCampaignCancelMidCampaign cancels the context from inside an early
// cell: in-flight runs finish, unstarted runs are discarded with the context
// error, the partial results are dropped deterministically (nil slice), and
// the pool's workers exit.
func TestRunCampaignCancelMidCampaign(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var started atomic.Int64
	runs := shortRuns(12, func(i int) {
		if started.Add(1) == 3 {
			cancel() // mid-campaign: some cells done/running, most queued
		}
	})
	res, err := sim.RunCampaign(ctx, 2, runs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if res != nil {
		t.Fatalf("partial results must be discarded on cancellation, got %d results", len(res))
	}
	if n := started.Load(); n >= 12 {
		t.Fatalf("cancellation did not stop the campaign: all %d cells started", n)
	}
	waitGoroutines(t, base)
}

// TestRunCampaignPanicUnderStealing propagates a panic from a cell while
// other cells are being stolen by concurrent workers: the error carries the
// run name and stack, the campaign drains, and no workers leak.
func TestRunCampaignPanicUnderStealing(t *testing.T) {
	base := runtime.NumGoroutine()
	runs := shortRuns(8, nil)
	runs[5].Name = "exploder"
	runs[5].Setup = func(*sim.Arena) (*sim.System, sim.Manager, error) {
		panic("mid-campaign explosion")
	}
	res, err := sim.RunCampaign(context.Background(), 4, runs)
	if err == nil {
		t.Fatal("want error from panicking cell")
	}
	for _, want := range []string{"exploder", "mid-campaign explosion"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error should contain %q, got: %v", want, err)
		}
	}
	if res != nil {
		t.Fatalf("results must be discarded on error, got %d", len(res))
	}
	waitGoroutines(t, base)
}

// TestRunCampaignNestedInsideCell runs campaigns from within pool cells —
// the RunAllParallel shape, where an experiment's inner campaign joins the
// outer pool — and checks results stay positionally correct.
func TestRunCampaignNestedInsideCell(t *testing.T) {
	base := runtime.NumGoroutine()
	uptimes := make([][]float64, 3)
	err := sim.RunCells(context.Background(), 3, len(uptimes), func(ctx context.Context, i int, _ *sim.Arena) error {
		res, err := sim.RunCampaign(ctx, 0, shortRuns(4, nil))
		if err != nil {
			return err
		}
		u := make([]float64, len(res))
		for j, r := range res {
			u[j] = r.UptimeFrac
		}
		uptimes[i] = u
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Identical runs must yield identical results wherever they executed.
	for i := 1; i < len(uptimes); i++ {
		for j := range uptimes[i] {
			if uptimes[i][j] != uptimes[0][j] {
				t.Fatalf("cell %d run %d uptime %v != cell 0's %v", i, j, uptimes[i][j], uptimes[0][j])
			}
		}
	}
	waitGoroutines(t, base)
}

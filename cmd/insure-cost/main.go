// Command insure-cost explores the paper's techno-economic models: the
// transmission/TCO comparisons, depreciation breakdowns, scale-out
// economics, and the in-situ/cloud crossover.
//
// Usage:
//
//	insure-cost                       # all cost tables
//	insure-cost -crossover            # sweep the break-even data rate
//	insure-cost -rate 50 -sunshine 80 # evaluate one deployment point
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"insure/internal/cost"
	"insure/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("insure-cost: ")
	crossover := flag.Bool("crossover", false, "sweep the in-situ/cloud break-even data rate")
	rate := flag.Float64("rate", 0, "evaluate one data rate (GB/day)")
	sunshine := flag.Float64("sunshine", 100, "sunshine fraction in percent")
	flag.Parse()

	a := cost.Default()
	if *crossover {
		fmt.Println("sunshine%  crossover GB/day")
		for _, s := range []float64{1.0, 0.8, 0.6, 0.4} {
			fmt.Printf("%8.0f  %.2f\n", s*100, a.Crossover(s))
		}
		return
	}
	if *rate > 0 {
		s := *sunshine / 100
		insitu := a.InSituTCO(*rate, s)
		cloud := a.CloudTCO(*rate)
		fmt.Printf("data rate %.1f GB/day at %.0f%% sunshine (5-yr TCO):\n", *rate, *sunshine)
		fmt.Printf("  in-situ  $%.0f\n", float64(insitu))
		fmt.Printf("  cloud    $%.0f\n", float64(cloud))
		if insitu < cloud {
			fmt.Printf("  in-situ saves %.0f%%\n", (1-float64(insitu)/float64(cloud))*100)
		} else {
			fmt.Printf("  cloud saves %.0f%%\n", (1-float64(cloud)/float64(insitu))*100)
		}
		return
	}
	for _, id := range []string{"fig1a", "fig1b", "table1", "fig3a", "fig3b", "fig22", "fig23", "fig24", "fig25"} {
		tbl, err := experiments.Run(id)
		if err != nil {
			log.Fatal(err)
		}
		if err := tbl.Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}

package battery

import (
	"testing"
	"time"

	"insure/internal/units"
)

// The KiBaM step functions sit inside the simulation's per-tick loop; these
// pins keep them allocation-free so the zero-alloc tick invariant (see
// DESIGN.md's performance notes) cannot silently regress.

func TestDischargeAllocFree(t *testing.T) {
	u := MustNew(DefaultParams(), 1.0)
	if n := testing.AllocsPerRun(1000, func() {
		u.Discharge(4, time.Second)
		if u.SoC() < 0.2 {
			u.SetSoC(1.0)
		}
	}); n != 0 {
		t.Fatalf("Unit.Discharge allocates %.1f times per call, want 0", n)
	}
}

func TestChargeAllocFree(t *testing.T) {
	u := MustNew(DefaultParams(), 0.2)
	if n := testing.AllocsPerRun(1000, func() {
		u.Charge(8, time.Second)
		if u.SoC() > 0.95 {
			u.SetSoC(0.2)
		}
	}); n != 0 {
		t.Fatalf("Unit.Charge allocates %.1f times per call, want 0", n)
	}
}

func TestRestAllocFree(t *testing.T) {
	u := MustNew(DefaultParams(), 0.6)
	u.Discharge(8, time.Minute)
	if n := testing.AllocsPerRun(1000, func() {
		u.Rest(time.Second)
	}); n != 0 {
		t.Fatalf("Unit.Rest allocates %.1f times per call, want 0", n)
	}
}

func TestBankSetStepsAllocFree(t *testing.T) {
	b := MustNewBank(DefaultParams(), 6, 0.7)
	dis := []int{0, 1, 2}
	chg := []int{3, 4}
	if n := testing.AllocsPerRun(1000, func() {
		b.DischargeSet(dis, 300, time.Second)
		b.ChargeSet(chg, units.Watt(400), time.Second)
	}); n != 0 {
		t.Fatalf("Bank charge/discharge step allocates %.1f times per call, want 0", n)
	}
}

// Command insure-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	insure-bench -exp all          # every experiment
//	insure-bench -exp fig17        # one experiment
//	insure-bench -list             # list experiment IDs
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"insure/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("insure-bench: ")
	exp := flag.String("exp", "all", "experiment ID to run, or 'all'")
	list := flag.Bool("list", false, "list available experiment IDs")
	format := flag.String("format", "text", "output format: text, csv, markdown")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	if strings.EqualFold(*exp, "all") {
		for _, tbl := range experiments.RunAll() {
			if err := tbl.RenderAs(os.Stdout, *format); err != nil {
				log.Fatal(err)
			}
		}
		return
	}
	tbl, err := experiments.Run(*exp)
	if err != nil {
		log.Fatal(err)
	}
	if err := tbl.RenderAs(os.Stdout, *format); err != nil {
		log.Fatal(err)
	}
}

package battery

import (
	"testing"
	"time"

	"insure/internal/journal"
)

// workBank drives the bank through a deterministic charge/discharge/rest
// mixture so its wells, diffusion state, and coulomb counters are all
// non-trivial.
func workBank(b *Bank, steps int) {
	for s := 0; s < steps; s++ {
		switch s % 3 {
		case 0:
			b.DischargeSet([]int{0, 1}, 120, time.Second)
			b.Unit(2).Rest(time.Second)
			b.Unit(3).Charge(2, time.Second)
		case 1:
			b.ChargeSet([]int{2, 3}, 300, time.Second)
			b.Unit(0).Rest(time.Second)
			b.Unit(1).Discharge(4, time.Second)
		case 2:
			b.RestAll(time.Second)
		}
	}
}

// TestBankStateRoundTrip proves capture → restore → N steps is
// bit-identical to N uninterrupted steps, for every unit field the codec
// carries (wells, diffusion memory, lifetime counters, fault derating).
func TestBankStateRoundTrip(t *testing.T) {
	live := MustNewBank(DefaultParams(), 4, 0.7)
	workBank(live, 50)
	live.Unit(1).InjectCapacityLoss(0.3)

	var e journal.Encoder
	live.AppendState(&e)

	restored := MustNewBank(DefaultParams(), 4, 0.1) // deliberately different start
	d := journal.NewDecoder(e.Bytes())
	if err := restored.RestoreState(d); err != nil {
		t.Fatal(err)
	}
	if d.Remaining() != 0 {
		t.Fatalf("%d bytes left after restore", d.Remaining())
	}

	for s := 0; s < 200; s++ {
		workBank(live, 1)
		workBank(restored, 1)
	}
	var a, b journal.Encoder
	live.AppendState(&a)
	restored.AppendState(&b)
	if string(a.Bytes()) != string(b.Bytes()) {
		for i := 0; i < live.Size(); i++ {
			if live.Unit(i).State() != restored.Unit(i).State() {
				t.Errorf("unit %d diverged:\n live     %+v\n restored %+v",
					i, live.Unit(i).State(), restored.Unit(i).State())
			}
		}
		t.Fatal("restored bank diverged from uninterrupted bank")
	}
	// The injected fault must survive the trip: effective capacity derated
	// identically on both sides.
	if live.Unit(1).EffectiveCapacity() != restored.Unit(1).EffectiveCapacity() {
		t.Error("fault derating lost in round trip")
	}
}

// TestUnitStateObservablesSurviveRestore checks restore reproduces the
// external view (SoC, voltage, wear), not just raw fields.
func TestUnitStateObservablesSurviveRestore(t *testing.T) {
	u := MustNew(DefaultParams(), 0.8)
	u.Discharge(5, 90*time.Second)
	u.Charge(3, 30*time.Second)
	u.Discharge(2, 10*time.Second)

	v := MustNew(DefaultParams(), 0.2)
	v.Restore(u.State())
	if u.SoC() != v.SoC() || u.TerminalVoltage() != v.TerminalVoltage() {
		t.Fatalf("observables diverged: SoC %v vs %v, V %v vs %v",
			u.SoC(), v.SoC(), u.TerminalVoltage(), v.TerminalVoltage())
	}
	if u.Throughput() != v.Throughput() || u.EquivalentCycles() != v.EquivalentCycles() {
		t.Fatalf("wear counters diverged")
	}
	// And the next step from the shared state is bit-identical.
	gu := u.Discharge(4, time.Second)
	gv := v.Discharge(4, time.Second)
	if gu != gv || u.State() != v.State() {
		t.Fatal("first post-restore step diverged")
	}
}

// TestBankRestoreSizeMismatch rejects state blobs for the wrong fleet size
// on both the struct and codec paths.
func TestBankRestoreSizeMismatch(t *testing.T) {
	small := MustNewBank(DefaultParams(), 2, 0.5)
	big := MustNewBank(DefaultParams(), 6, 0.5)
	if err := big.Restore(small.State()); err == nil {
		t.Error("struct restore accepted wrong unit count")
	}
	var e journal.Encoder
	small.AppendState(&e)
	if err := big.RestoreState(journal.NewDecoder(e.Bytes())); err == nil {
		t.Error("codec restore accepted wrong unit count")
	}
}

// Command synccheck is the storage-integrity vet step: it flags bare
// statement-level calls to .Sync() and .Close() whose error result is
// silently discarded.
//
// The durability argument of internal/journal rests on every fsync
// verdict being observed — a Sync error is the *only* signal that a
// commit never reached the platter, and the journal turns it into a
// poisoned store rather than losing it. A `f.Sync()` written as a bare
// statement defeats that: the write appears durable and the daemon
// happily acks state that a power cut will erase. Close matters for the
// same reason on writeback filesystems, where the flush error often
// surfaces only at close time.
//
// The check is purely syntactic (go/ast, no type information), which is
// the point: inside the storage packages *every* Sync/Close result is
// load-bearing no matter the receiver type, so the rule is enforceable
// without build context. Two idioms are exempt:
//
//   - `defer f.Close()` — the deferred cleanup path, where the error has
//     no caller left to return to and the preceding explicit
//     Close/Sync already carried the verdict;
//   - `_ = f.Close()` — an assignment, not an ExprStmt, marking a
//     *deliberate* discard (e.g. closing an already-poisoned store whose
//     error was captured earlier). The underscore is the audit trail.
//
// Usage:
//
//	go run ./internal/tools/synccheck ./internal/journal ./internal/fleet
//
// Exits 1 and prints file:line for every violation; exits 0 when the
// audited packages are clean.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// checked are the method names whose statement-level bare calls we flag.
var checked = map[string]bool{
	"Sync":  true,
	"Close": true,
}

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		fmt.Fprintln(os.Stderr, "usage: synccheck dir [dir...]")
		os.Exit(2)
	}
	var violations []string
	for _, dir := range dirs {
		v, err := checkDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "synccheck: %v\n", err)
			os.Exit(2)
		}
		violations = append(violations, v...)
	}
	sort.Strings(violations)
	for _, v := range violations {
		fmt.Println(v)
	}
	if len(violations) > 0 {
		fmt.Fprintf(os.Stderr, "synccheck: %d unchecked Sync/Close call(s)\n", len(violations))
		os.Exit(1)
	}
}

// checkDir parses every non-test and test .go file directly in dir and
// returns one "file:line: message" string per bare Sync/Close statement.
func checkDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var violations []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, ok := bareSyncOrClose(call); ok {
				pos := fset.Position(call.Pos())
				violations = append(violations, fmt.Sprintf(
					"%s:%d: result of %s() discarded; handle the error or mark the discard with `_ =`",
					pos.Filename, pos.Line, name))
			}
			return true
		})
	}
	return violations, nil
}

// bareSyncOrClose reports whether call is a zero-argument method call
// named Sync or Close — the shape of the fsync/close verdicts we audit.
// Argument-taking calls (e.g. ch.Close(reason)) are someone else's API.
func bareSyncOrClose(call *ast.CallExpr) (string, bool) {
	if len(call.Args) != 0 {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if !checked[sel.Sel.Name] {
		return "", false
	}
	return sel.Sel.Name, true
}

package faults

import (
	"testing"
	"time"

	"insure/internal/battery"
	"insure/internal/relay"
	"insure/internal/sensor"
)

func testTarget(n int) Target {
	probes := make([]*sensor.BatteryProbe, n)
	for i := range probes {
		probes[i] = sensor.NewBatteryProbe(i)
	}
	return Target{
		Bank:   battery.MustNewBank(battery.DefaultParams(), n, 0.8),
		Fabric: relay.NewFabric(n),
		Probes: probes,
	}
}

func TestParse(t *testing.T) {
	plan, err := Parse("bat:2@12h30m,relay-open:4@13h,stick:0@10h,drift:1@11h:0.25,drop@14h")
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 5 {
		t.Fatalf("parsed %d events, want 5", len(plan))
	}
	// Sorted by time.
	for i := 1; i < len(plan); i++ {
		if plan[i].At < plan[i-1].At {
			t.Fatalf("plan not sorted: %v", plan)
		}
	}
	if plan[0].Kind != SensorStick || plan[0].Unit != 0 || plan[0].At != 10*time.Hour {
		t.Errorf("first event = %v", plan[0])
	}
	if plan[1].Kind != SensorDrift || plan[1].Magnitude != 0.25 {
		t.Errorf("drift event = %v", plan[1])
	}
	// Defaults fill in.
	if plan[2].Kind != BatteryFail || plan[2].Magnitude != 0.6 {
		t.Errorf("bat event = %v, want default 0.6 loss", plan[2])
	}
	if plan[4].Kind != PanelDrop {
		t.Errorf("last event = %v", plan[4])
	}
}

func TestParseEmpty(t *testing.T) {
	for _, spec := range []string{"", "  ", ","} {
		plan, err := Parse(spec)
		if err != nil || len(plan) != 0 {
			t.Errorf("Parse(%q) = %v, %v", spec, plan, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"unknown kind":   "explode:0@12h",
		"missing time":   "bat:2",
		"missing unit":   "bat@12h",
		"bad unit":       "bat:x@12h",
		"negative unit":  "bat:-1@12h",
		"bad time":       "bat:0@noon",
		"negative time":  "bat:0@-1h",
		"bad magnitude":  "bat:0@12h:lots",
		"zero magnitude": "bat:0@12h:0",
		"loss above one": "bat:0@12h:1.5",
		"drop with unit": "drop:2@12h",
	}
	for name, spec := range cases {
		if _, err := Parse(spec); err == nil {
			t.Errorf("%s: Parse(%q) accepted", name, spec)
		}
	}
}

func TestInjectorAppliesOnSchedule(t *testing.T) {
	tgt := testTarget(6)
	plan, err := Parse("bat:2@12h:0.5,relay-open:4@13h,stick:0@10h,drift:1@11h")
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(plan, tgt)

	if n := in.Tick(9 * time.Hour); n != 0 {
		t.Fatalf("%d events landed before schedule", n)
	}
	if tgt.Probes[0].Current.Faulted() {
		t.Fatal("stick applied early")
	}
	if n := in.Tick(10 * time.Hour); n != 1 {
		t.Fatalf("tick at 10h injected %d events, want 1", n)
	}
	if !tgt.Probes[0].Current.Faulted() {
		t.Error("stick not applied at its time")
	}
	// A big jump injects everything due, in order.
	if n := in.Tick(13 * time.Hour); n != 3 {
		t.Fatalf("tick at 13h injected %d events, want 3", n)
	}
	if !tgt.Probes[1].Volt.Faulted() {
		t.Error("drift not applied")
	}
	if !tgt.Bank.Unit(2).Failed() {
		t.Error("battery fault not applied")
	}
	if got := tgt.Fabric.Pair(4).Discharge.FailState(); got != relay.FailStuckOpen {
		t.Errorf("discharge relay fail state = %v", got)
	}
	if !in.Done() {
		t.Error("injector not done after all events")
	}
	// Re-ticking injects nothing and stays allocation-free.
	if n := in.Tick(20 * time.Hour); n != 0 {
		t.Errorf("re-tick injected %d events", n)
	}
	if got := len(in.Applied()); got != 4 {
		t.Errorf("applied = %d events, want 4", got)
	}
}

func TestInjectorOutOfRangeUnitsAreNoOps(t *testing.T) {
	tgt := testTarget(2)
	in := NewInjector(Plan{
		{At: time.Hour, Kind: BatteryFail, Unit: 9},
		{At: time.Hour, Kind: RelayWeldClosed, Unit: 9},
		{At: time.Hour, Kind: SensorStick, Unit: 9},
		{At: time.Hour, Kind: PanelDrop}, // nil panel
	}, tgt)
	if n := in.Tick(2 * time.Hour); n != 4 {
		t.Fatalf("injected %d, want 4 (as no-ops)", n)
	}
	for i := 0; i < 2; i++ {
		if tgt.Bank.Unit(i).Failed() || tgt.Fabric.Pair(i).Failed() {
			t.Error("out-of-range fault hit a real unit")
		}
	}
}

type dropCounter struct{ n int }

func (d *dropCounter) DropConnections() { d.n++ }

func TestInjectorPanelDrop(t *testing.T) {
	tgt := testTarget(1)
	panel := &dropCounter{}
	tgt.Panel = panel
	in := NewInjector(Plan{{At: time.Hour, Kind: PanelDrop}}, tgt)
	in.Tick(time.Hour)
	if panel.n != 1 {
		t.Errorf("panel dropped %d times, want 1", panel.n)
	}
}

func TestInjectorDeterministic(t *testing.T) {
	plan, err := Parse("bat:1@12h,relay-open:0@13h")
	if err != nil {
		t.Fatal(err)
	}
	run := func() []Event {
		in := NewInjector(plan, testTarget(2))
		for tod := time.Duration(0); tod < 24*time.Hour; tod += time.Minute {
			in.Tick(tod)
		}
		return in.Applied()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("different event counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("event %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestEventString(t *testing.T) {
	e := Event{At: 12 * time.Hour, Kind: BatteryFail, Unit: 2, Magnitude: 0.6}
	if got := e.String(); got != "bat:2@12h0m0s:0.6" {
		t.Errorf("event string = %q", got)
	}
	if got := (Event{At: time.Hour, Kind: PanelDrop}).String(); got != "drop@1h0m0s" {
		t.Errorf("drop string = %q", got)
	}
}

package plc

import (
	"fmt"

	"insure/internal/journal"
)

// regStateVersion guards the binary layout of a serialized RegisterFile.
const regStateVersion = 1

// RegisterState is the commanded state of the register file: coils and
// holding registers. Discrete and input banks are deliberately excluded —
// they mirror the plant and are refreshed by the first scan after a
// restart, so persisting them would only let stale sensor codes mask live
// readings during recovery.
type RegisterState struct {
	Coils   []bool
	Holding []uint16
}

// State captures the coil and holding banks.
func (r *RegisterFile) State() RegisterState {
	r.mu.RLock()
	defer r.mu.RUnlock()
	st := RegisterState{
		Coils:   make([]bool, len(r.coils)),
		Holding: make([]uint16, len(r.holding)),
	}
	copy(st.Coils, r.coils)
	copy(st.Holding, r.holding)
	return st
}

// Restore overwrites the coil and holding banks. Bank sizes must match.
func (r *RegisterFile) Restore(st RegisterState) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(st.Coils) != len(r.coils) || len(st.Holding) != len(r.holding) {
		return fmt.Errorf("plc: restoring %d coils/%d holding into banks of %d/%d",
			len(st.Coils), len(st.Holding), len(r.coils), len(r.holding))
	}
	copy(r.coils, st.Coils)
	copy(r.holding, st.Holding)
	return nil
}

// AppendState serializes the coil and holding banks into e.
func (r *RegisterFile) AppendState(e *journal.Encoder) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e.U8(regStateVersion)
	e.Int(len(r.coils))
	for _, c := range r.coils {
		e.Bool(c)
	}
	e.Int(len(r.holding))
	for _, h := range r.holding {
		e.U16(h)
	}
}

// RestoreState decodes banks serialized by AppendState into r.
func (r *RegisterFile) RestoreState(d *journal.Decoder) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	d.ExpectVersion(regStateVersion)
	nc := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if nc != len(r.coils) {
		return fmt.Errorf("plc: restoring %d coils into bank of %d", nc, len(r.coils))
	}
	for i := range r.coils {
		r.coils[i] = d.Bool()
	}
	nh := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if nh != len(r.holding) {
		return fmt.Errorf("plc: restoring %d holding regs into bank of %d", nh, len(r.holding))
	}
	for i := range r.holding {
		r.holding[i] = d.U16()
	}
	return d.Err()
}

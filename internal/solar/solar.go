// Package solar models the standalone power supply of InSURE: a synthetic
// sky, a PV panel, and a Perturb-and-Observe maximum power point tracker.
//
// The paper's prototype uses roof-mounted Grape Solar panels (1.6 kW
// installed) with an MPPT charge controller (§4, §5). We have no physical
// panel, so the sky model synthesises irradiance with the same structure as
// the paper's measured traces (Fig 15): a diurnal bell between 7:00 and
// 20:00 modulated by weather processes, giving a high-generation profile
// (~1114 W average) and a low-generation profile (~427 W average).
package solar

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"insure/internal/units"
)

// Condition is the day's weather class, matching the paper's sunny, cloudy
// and rainy operating logs (Table 6).
type Condition int

const (
	Sunny Condition = iota
	Cloudy
	Rainy
)

func (c Condition) String() string {
	switch c {
	case Sunny:
		return "sunny"
	case Cloudy:
		return "cloudy"
	case Rainy:
		return "rainy"
	default:
		return fmt.Sprintf("Condition(%d)", int(c))
	}
}

// Day describes the solar window. The paper's traces span 7:00–20:00.
const (
	Sunrise = 7 * time.Hour
	Sunset  = 20 * time.Hour
)

// Elevation returns the clear-sky irradiance fraction in [0,1] at
// time-of-day tod: zero outside the solar window, a smooth bell inside it.
func Elevation(tod time.Duration) float64 {
	if tod <= Sunrise || tod >= Sunset {
		return 0
	}
	frac := float64(tod-Sunrise) / float64(Sunset-Sunrise)
	return math.Pow(math.Sin(math.Pi*frac), 0.55)
}

// Sky synthesises an irradiance-fraction process for one day. It is a
// stateful generator: call Step once per simulation tick.
type Sky struct {
	cond Condition
	rng  *rand.Rand

	cloud     float64 // current cloud attenuation multiplier in (0,1]
	cloudLeft time.Duration
	target    float64
}

// NewSky returns a sky for the given condition. The seed makes traces
// reproducible; the paper's methodology (§5) replays identical recorded
// traces across experiment pairs, which we achieve with equal seeds.
func NewSky(cond Condition, seed int64) *Sky {
	return &Sky{cond: cond, rng: rand.New(rand.NewSource(seed)), cloud: 1, target: 1}
}

// Condition returns the sky's weather class.
func (s *Sky) Condition() Condition { return s.cond }

// Step advances the sky by dt and returns the irradiance fraction at
// time-of-day tod (0 = midnight).
func (s *Sky) Step(tod, dt time.Duration) float64 {
	clear := Elevation(tod)
	if clear == 0 {
		return 0
	}

	// Weather attenuation: occasional deep cloud events (cloudy), or a
	// persistently dark, jittery overcast (rainy).
	var base, eventRate, depthLo, depthHi float64
	var durLo, durHi time.Duration
	switch s.cond {
	case Sunny:
		base, eventRate = 1.0, 1.0/(45*60) // rare thin clouds
		depthLo, depthHi = 0.75, 0.95
		durLo, durHi = 1*time.Minute, 4*time.Minute
	case Cloudy:
		base, eventRate = 0.85, 1.0/(6*60) // frequent deep clouds
		depthLo, depthHi = 0.15, 0.7
		durLo, durHi = 30*time.Second, 5*time.Minute
	case Rainy:
		base, eventRate = 0.32, 1.0/(3*60)
		depthLo, depthHi = 0.4, 0.9
		durLo, durHi = 20*time.Second, 3*time.Minute
	}

	if s.cloudLeft <= 0 {
		if s.rng.Float64() < eventRate*dt.Seconds() {
			s.target = depthLo + s.rng.Float64()*(depthHi-depthLo)
			s.cloudLeft = durLo + time.Duration(s.rng.Int63n(int64(durHi-durLo)))
		} else {
			s.target = 1
		}
	} else {
		s.cloudLeft -= dt
	}
	// First-order relaxation toward the target attenuation: clouds arrive
	// and leave over tens of seconds, not instantaneously.
	const tau = 20.0 // seconds
	alpha := 1 - math.Exp(-dt.Seconds()/tau)
	s.cloud += (s.target - s.cloud) * alpha

	return units.Clamp(clear*base*s.cloud, 0, 1)
}

// Panel converts irradiance fraction to DC power.
type Panel struct {
	// Rated is the installed capacity (1.6 kW for the prototype).
	Rated units.Watt
	// Derate covers wiring, soiling, and temperature losses.
	Derate float64
}

// DefaultPanel matches the prototype's 1.6 kW installation.
func DefaultPanel() Panel { return Panel{Rated: 1600, Derate: 0.95} }

// Output is the maximum extractable power at the given irradiance fraction
// — the true maximum power point the MPPT hunts for.
func (p Panel) Output(irr float64) units.Watt {
	return units.Watt(float64(p.Rated) * p.Derate * units.Clamp(irr, 0, 1))
}

// MPPT implements Perturb-and-Observe maximum power point tracking (§6.1,
// [63]). The tracker perturbs its operating point each step and keeps the
// perturbation direction while power increases. Around a steady optimum it
// oscillates slightly; under fast-moving irradiance it lags — both effects
// appear in the paper's Region-B "solar usage surges".
type MPPT struct {
	// StepSize is the per-tick perturbation of the normalised operating
	// point (0..1 of panel voltage range).
	StepSize float64
	// Width is the sharpness of the power curve around the optimum.
	Width float64

	op        float64 // normalised operating point
	dir       float64
	lastPower units.Watt
}

// NewMPPT returns a tracker with the prototype controller's behaviour.
func NewMPPT() *MPPT {
	return &MPPT{StepSize: 0.015, Width: 0.35, op: 0.5, dir: 1}
}

// Step advances the tracker one tick. mpp is the true maximum power point
// (panel output); the return value is the power actually harvested at the
// tracker's current operating point.
func (m *MPPT) Step(mpp units.Watt) units.Watt {
	if mpp <= 0 {
		m.lastPower = 0
		return 0
	}
	// Power curve: a concave bump around the optimum operating point. The
	// optimum itself shifts slightly with irradiance, which is what forces
	// continuous re-tracking.
	opt := 0.68 + 0.1*float64(mpp)/1600
	harvest := func(op float64) units.Watt {
		d := (op - opt) / m.Width
		return units.Watt(float64(mpp) * math.Max(0, 1-d*d))
	}

	p := harvest(m.op)
	if p < m.lastPower {
		m.dir = -m.dir
	}
	m.lastPower = p
	m.op = units.Clamp(m.op+m.dir*m.StepSize, 0, 1)
	return p
}

// Supply couples a sky, a panel, and an MPPT into the standalone power
// source the energy manager sees.
type Supply struct {
	Sky   *Sky
	Panel Panel
	Mppt  *MPPT

	harvested units.WattHour
	potential units.WattHour
}

// NewSupply assembles the default prototype supply for one day.
func NewSupply(cond Condition, seed int64) *Supply {
	return &Supply{Sky: NewSky(cond, seed), Panel: DefaultPanel(), Mppt: NewMPPT()}
}

// Step returns the harvested power budget for this tick.
func (s *Supply) Step(tod, dt time.Duration) units.Watt {
	irr := s.Sky.Step(tod, dt)
	mpp := s.Panel.Output(irr)
	got := s.Mppt.Step(mpp)
	s.potential += units.Energy(mpp, dt)
	s.harvested += units.Energy(got, dt)
	return got
}

// Harvested is the cumulative energy actually captured.
func (s *Supply) Harvested() units.WattHour { return s.harvested }

// Potential is the cumulative energy available at perfect tracking.
func (s *Supply) Potential() units.WattHour { return s.potential }

// TrackingEfficiency is harvested/potential over the run so far.
func (s *Supply) TrackingEfficiency() float64 {
	if s.potential == 0 {
		return 1
	}
	return float64(s.harvested) / float64(s.potential)
}

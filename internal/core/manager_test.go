package core

import (
	"testing"
	"time"

	"insure/internal/baseline"
	"insure/internal/relay"
	"insure/internal/sim"
	"insure/internal/trace"
	"insure/internal/workload"
)

func newSystem(t *testing.T, tr *trace.Trace, sink sim.Sink) *sim.System {
	t.Helper()
	cfg := sim.DefaultConfig(tr)
	cfg.RecordEvery = time.Minute
	sys, err := sim.New(cfg, sink)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestManagerImplementsInterface(t *testing.T) {
	m := New(DefaultConfig(), 6)
	if m.Name() != "InSURE" {
		t.Errorf("name = %q", m.Name())
	}
	if m.Period() != 30*time.Second {
		t.Errorf("period = %v", m.Period())
	}
}

func TestMorningChargingSelectsSubset(t *testing.T) {
	// §6.1 Region A: in the morning InSURE charges a selected subset, not
	// the whole pack (Fig 10's N = P_G / P_PC).
	sys := newSystem(t, trace.FullSystemHigh(), sim.NewSeismicSink())
	m := New(DefaultConfig(), 6)
	for tod := 7 * time.Hour; tod < 8*time.Hour; tod += time.Second {
		sys.Tick(tod, m)
	}
	charging := sys.Fabric.UnitsIn(relay.Charging)
	if len(charging) == 0 {
		t.Fatal("no unit charging in the morning sun")
	}
	if len(charging) == 6 {
		t.Error("batch-charging the whole pack — SPM should concentrate the budget")
	}
}

func TestChargedUnitsReachTargetAndStop(t *testing.T) {
	cfg := sim.DefaultConfig(trace.FullSystemHigh())
	cfg.InitialSoC = 0.85 // nearly full already
	sys, err := sim.New(cfg, sim.NewSeismicSink())
	if err != nil {
		t.Fatal(err)
	}
	m := New(DefaultConfig(), 6)
	for tod := 7 * time.Hour; tod < 12*time.Hour; tod += time.Second {
		sys.Tick(tod, m)
	}
	// All units should have hit the 90% target and left the charge bus
	// (standby/discharging), not be held at absorption forever.
	for i, g := range m.Groups() {
		if g == GroupCharging && sys.Bank.Unit(i).SoC() > 0.93 {
			t.Errorf("unit %d still charging at SoC %.2f", i, sys.Bank.Unit(i).SoC())
		}
	}
}

func TestBatchSweetSpotIsFourVMs(t *testing.T) {
	// Table 2: the seismic batch runs best at 4 VMs under InSURE.
	sys := newSystem(t, trace.FullSystemHigh(), sim.NewSeismicSink())
	if got := pickBestBatchVMs(sys); got != 4 {
		t.Errorf("batch sweet spot = %d VMs, want 4 (Table 2)", got)
	}
}

func TestFullDayRunIsStable(t *testing.T) {
	sys := newSystem(t, trace.FullSystemHigh(), sim.NewSeismicSink())
	m := New(DefaultConfig(), 6)
	res := sys.Run(m)
	if res.Brownouts != 0 {
		t.Errorf("InSURE suffered %d brownouts on a high-solar day", res.Brownouts)
	}
	if res.UptimeFrac < 0.9 {
		t.Errorf("uptime %.2f, want near-continuous service", res.UptimeFrac)
	}
	if res.ProcessedGB < 100 {
		t.Errorf("processed only %.1f GB", res.ProcessedGB)
	}
	if m.Screenings() == 0 {
		t.Error("SPM screening never ran")
	}
}

func TestDischargeBalancing(t *testing.T) {
	// Fig 14b: wear is balanced across units.
	sys := newSystem(t, trace.FullSystemLow(), sim.NewSeismicSink())
	m := New(DefaultConfig(), 6)
	res := sys.Run(m)
	if res.WearAhPerUnit <= 0 {
		t.Skip("day produced no battery discharge")
	}
	// The spread should be a modest fraction of the mean per-unit wear.
	if float64(res.WearSpreadAh) > 3*float64(res.WearAhPerUnit) {
		t.Errorf("wear spread %.2f Ah vs mean %.2f Ah — balancing ineffective",
			float64(res.WearSpreadAh), float64(res.WearAhPerUnit))
	}
}

func TestTPMCapsDischargeCurrent(t *testing.T) {
	// Run a low-solar day and verify no transduced discharge current ever
	// stays above the per-unit cap for more than a couple of periods.
	cfg := sim.DefaultConfig(trace.FullSystemLow())
	sys, err := sim.New(cfg, sim.NewVideoSink())
	if err != nil {
		t.Fatal(err)
	}
	mc := DefaultConfig()
	m := New(mc, 6)
	violations, samples := 0, 0
	for tod := 7 * time.Hour; tod < 19*time.Hour; tod += time.Second {
		sys.Tick(tod, m)
		if tod%time.Minute == 0 {
			for i := 0; i < 6; i++ {
				_, cur := sys.UnitReading(i)
				samples++
				if float64(cur) > 2.5*float64(mc.UnitDischargeCap) {
					violations++
				}
			}
		}
	}
	if frac := float64(violations) / float64(samples); frac > 0.02 {
		t.Errorf("discharge current grossly above cap in %.1f%% of samples", frac*100)
	}
}

func TestEmergencyShutdownSavesVMs(t *testing.T) {
	// Start with a nearly-empty buffer and almost no sun: the manager must
	// shut the cluster down (checkpointing) rather than crash it.
	tr := trace.FullSystemLow().Scale(0.1)
	cfg := sim.DefaultConfig(tr)
	cfg.InitialSoC = 0.25
	sys, err := sim.New(cfg, sim.NewVideoSink())
	if err != nil {
		t.Fatal(err)
	}
	m := New(DefaultConfig(), 6)
	res := sys.Run(m)
	// With ~no energy at all the manager should mostly refuse to serve.
	if res.UptimeFrac > 0.4 {
		t.Errorf("uptime %.2f on a dead day — manager overcommitting", res.UptimeFrac)
	}
}

func TestGroupString(t *testing.T) {
	names := map[Group]string{
		GroupOffline: "offline", GroupCharging: "charging",
		GroupStandby: "standby", GroupDischarging: "discharging",
	}
	for g, want := range names {
		if g.String() != want {
			t.Errorf("group %d = %q", g, g.String())
		}
	}
	if Group(9).String() == "" {
		t.Error("unknown group should format")
	}
}

// TestInSUREBeatsBaselineEverywhere is the headline reproduction check:
// across both workloads and both solar budgets, InSURE improves uptime,
// throughput, and buffer wear over the unified-buffer baseline (Figs 20/21:
// "20% to over 60%" improvements).
func TestInSUREBeatsBaselineEverywhere(t *testing.T) {
	if testing.Short() {
		t.Skip("full-day comparisons are slow")
	}
	traces := map[string]*trace.Trace{
		"high": trace.FullSystemHigh(),
		"low":  trace.FullSystemLow(),
	}
	sinks := map[string]func() sim.Sink{
		"seismic": func() sim.Sink { return sim.NewSeismicSink() },
		"video":   func() sim.Sink { return sim.NewVideoSink() },
	}
	for tn, tr := range traces {
		for sn, mk := range sinks {
			sysA := newSystem(t, tr, mk())
			a := sysA.Run(New(DefaultConfig(), 6))
			sysB := newSystem(t, tr, mk())
			b := sysB.Run(baseline.New(baseline.DefaultConfig()))

			if a.UptimeFrac <= b.UptimeFrac {
				t.Errorf("%s/%s: uptime %.2f not above baseline %.2f", tn, sn, a.UptimeFrac, b.UptimeFrac)
			}
			if a.Throughput <= b.Throughput {
				t.Errorf("%s/%s: throughput %.2f not above baseline %.2f", tn, sn, a.Throughput, b.Throughput)
			}
			if a.WearAhPerUnit >= b.WearAhPerUnit {
				t.Errorf("%s/%s: wear %.2f Ah not below baseline %.2f Ah", tn, sn,
					float64(a.WearAhPerUnit), float64(b.WearAhPerUnit))
			}
			if a.PerfPerAh <= b.PerfPerAh {
				t.Errorf("%s/%s: perf/Ah %.2f not above baseline %.2f", tn, sn, a.PerfPerAh, b.PerfPerAh)
			}
			if a.Brownouts >= b.Brownouts && b.Brownouts > 0 {
				t.Errorf("%s/%s: brownouts %d not below baseline %d", tn, sn, a.Brownouts, b.Brownouts)
			}
		}
	}
}

func TestStreamVMAdjustment(t *testing.T) {
	// §3.4: for stream loads the manager adjusts VM counts, not duty.
	sys := newSystem(t, trace.FullSystemHigh(), sim.NewVideoSink())
	m := New(DefaultConfig(), 6)
	seen := map[int]bool{}
	for tod := 7 * time.Hour; tod < 19*time.Hour; tod += time.Second {
		sys.Tick(tod, m)
		seen[sys.Cluster.TargetVMs()] = true
	}
	if len(seen) < 3 {
		t.Errorf("stream VM target took only %d distinct values — no supply tracking", len(seen))
	}
}

func TestBatchDutyScaling(t *testing.T) {
	// §3.4: for batch loads the manager scales duty cycles under stress.
	// The high trace locks the batch at 4 VMs midday; the evening sag then
	// forces DVFS throttling rather than a VM reallocation.
	sys := newSystem(t, trace.FullSystemHigh(), sim.NewSeismicSink())
	m := New(DefaultConfig(), 6)
	minDuty := 1.0
	for tod := 7 * time.Hour; tod < 19*time.Hour; tod += time.Second {
		sys.Tick(tod, m)
		for _, n := range sys.Cluster.Nodes() {
			if n.Duty() < minDuty {
				minDuty = n.Duty()
			}
		}
	}
	if minDuty >= 1 {
		t.Error("duty never scaled below 1 on a constrained day")
	}
	if minDuty < DefaultConfig().MinDuty-1e-9 {
		t.Errorf("duty %v fell below the configured floor", minDuty)
	}
}

func TestWorkloadKindDrivesPolicy(t *testing.T) {
	batch := sim.NewSeismicSink()
	if batch.Spec().Kind != workload.Batch {
		t.Fatal("seismic sink is not batch")
	}
	stream := sim.NewVideoSink()
	if stream.Spec().Kind != workload.Stream {
		t.Fatal("video sink is not stream")
	}
}

func TestForecastLookaheadDoesNotRegress(t *testing.T) {
	if testing.Short() {
		t.Skip("paired full-day runs")
	}
	run := func(useForecast bool) sim.Result {
		sys := newSystem(t, trace.FullSystemHigh(), sim.NewSeismicSink())
		cfg := DefaultConfig()
		cfg.UseForecast = useForecast
		return sys.Run(New(cfg, 6))
	}
	plain := run(false)
	look := run(true)
	// The lookahead planner must keep the plant stable and stay within a
	// few percent of the fixed-margin planner on a benign day.
	if look.Brownouts > plain.Brownouts {
		t.Errorf("forecasting added brownouts: %d vs %d", look.Brownouts, plain.Brownouts)
	}
	if look.ProcessedGB < 0.9*plain.ProcessedGB {
		t.Errorf("forecasting lost throughput: %.1f vs %.1f GB", look.ProcessedGB, plain.ProcessedGB)
	}
}

package battery

import (
	"fmt"

	"insure/internal/journal"
	"insure/internal/units"
)

// unitStateVersion guards the binary layout of a serialized Unit.
const unitStateVersion = 1

// UnitState is the complete mutable state of one battery unit — the KiBaM
// wells, the last observed current, and the lifetime coulomb counters. It
// deliberately excludes Params: configuration is reconstructed by the
// caller, not persisted, so a config change cannot be masked by stale
// state on disk.
type UnitState struct {
	AvailAh    float64 // available well, amp-hours
	BoundAh    float64 // bound well, amp-hours
	LastI      units.Amp
	Throughput units.AmpHour
	RawOut     units.AmpHour
	RawIn      units.AmpHour
	Cycles     float64
	FaultLoss  float64
}

// State captures the unit's full mutable state.
func (u *Unit) State() UnitState {
	s, i := u.s, u.i
	return UnitState{
		AvailAh:    s.avail[i],
		BoundAh:    s.bound[i],
		LastI:      s.lastI[i],
		Throughput: s.throughput[i],
		RawOut:     s.rawOut[i],
		RawIn:      s.rawIn[i],
		Cycles:     s.cycles[i],
		FaultLoss:  s.faultLoss[i],
	}
}

// Restore overwrites the unit's mutable state. Params are untouched.
func (u *Unit) Restore(st UnitState) {
	s, i := u.s, u.i
	s.avail[i] = st.AvailAh
	s.bound[i] = st.BoundAh
	s.lastI[i] = st.LastI
	s.throughput[i] = st.Throughput
	s.rawOut[i] = st.RawOut
	s.rawIn[i] = st.RawIn
	s.cycles[i] = st.Cycles
	s.faultLoss[i] = st.FaultLoss
}

// AppendTo serializes the state bit-exactly into e.
func (st UnitState) AppendTo(e *journal.Encoder) {
	e.U8(unitStateVersion)
	e.F64(st.AvailAh)
	e.F64(st.BoundAh)
	e.F64(float64(st.LastI))
	e.F64(float64(st.Throughput))
	e.F64(float64(st.RawOut))
	e.F64(float64(st.RawIn))
	e.F64(st.Cycles)
	e.F64(st.FaultLoss)
}

// ReadUnitState decodes one UnitState written by AppendTo.
func ReadUnitState(d *journal.Decoder) UnitState {
	d.ExpectVersion(unitStateVersion)
	return UnitState{
		AvailAh:    d.F64(),
		BoundAh:    d.F64(),
		LastI:      units.Amp(d.F64()),
		Throughput: units.AmpHour(d.F64()),
		RawOut:     units.AmpHour(d.F64()),
		RawIn:      units.AmpHour(d.F64()),
		Cycles:     d.F64(),
		FaultLoss:  d.F64(),
	}
}

// State captures the full mutable state of every unit in the bank.
func (b *Bank) State() []UnitState {
	out := make([]UnitState, len(b.units))
	for i, u := range b.units {
		out[i] = u.State()
	}
	return out
}

// Restore overwrites every unit's state. The bank size must match.
func (b *Bank) Restore(st []UnitState) error {
	if len(st) != len(b.units) {
		return fmt.Errorf("battery: restoring %d unit states into bank of %d", len(st), len(b.units))
	}
	for i, u := range b.units {
		u.Restore(st[i])
	}
	return nil
}

// AppendState serializes the whole bank into e.
func (b *Bank) AppendState(e *journal.Encoder) {
	e.Int(len(b.units))
	for _, u := range b.units {
		u.State().AppendTo(e)
	}
}

// RestoreState decodes a bank serialized by AppendState into b.
func (b *Bank) RestoreState(d *journal.Decoder) error {
	n := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if n != len(b.units) {
		return fmt.Errorf("battery: restoring %d unit states into bank of %d", n, len(b.units))
	}
	for _, u := range b.units {
		u.Restore(ReadUnitState(d))
	}
	return d.Err()
}

package relay

import (
	"testing"
	"time"
)

// Pins for the structure-of-arrays contact store: fabrics sharing a fleet
// store must behave bit-identically to independent fabrics, and the batch
// tick must preserve the documented relay ordering.

// exerciseFleet drives a fabric through a deterministic schedule of mode
// changes, faults, and ticks keyed by phase.
func exerciseFleet(f *Fabric, phase int) {
	for s := 0; s < 40; s++ {
		for i := 0; i < f.Size(); i++ {
			switch (s + i + phase) % 5 {
			case 0:
				f.Pair(i).SetMode(Charging)
			case 1:
				f.Pair(i).SetMode(Discharging)
			case 2:
				f.Pair(i).SetMode(Open)
			case 3:
				// Mid-flight reversal: exercises abort accounting.
				f.Pair(i).SetMode(Charging)
				f.Pair(i).SetMode(Open)
			}
		}
		if (s+phase)%7 == 0 {
			f.SetSeries()
		} else if (s+phase)%7 == 3 {
			f.SetParallel()
		}
		if s == 11 {
			f.Pair(phase % f.Size()).Charge.Fail(FailWeldClosed)
		}
		if s == 23 {
			f.Pair(phase % f.Size()).Charge.Fail(FailNone)
		}
		f.Tick(10 * time.Millisecond)
	}
}

func fabricStatesEqual(t *testing.T, got, want FabricState, label string) {
	t.Helper()
	if len(got.Pairs) != len(want.Pairs) {
		t.Fatalf("%s: %d pairs, want %d", label, len(got.Pairs), len(want.Pairs))
	}
	for i := range got.Pairs {
		if got.Pairs[i] != want.Pairs[i] {
			t.Fatalf("%s: pair %d diverged:\n got  %+v\n want %+v", label, i, got.Pairs[i], want.Pairs[i])
		}
	}
	if got.P1 != want.P1 || got.P2 != want.P2 || got.P3 != want.P3 {
		t.Fatalf("%s: topology relays diverged", label)
	}
}

func TestFabricFleetMatchesIndependentFabrics(t *testing.T) {
	const plants, unitsPer = 3, 4
	fleet := NewFabricFleet(plants, unitsPer)
	if len(fleet) != plants {
		t.Fatalf("fleet has %d fabrics, want %d", len(fleet), plants)
	}
	for pl := 0; pl < plants; pl++ {
		solo := NewFabric(unitsPer)
		exerciseFleet(fleet[pl], pl)
		exerciseFleet(solo, pl)
		fabricStatesEqual(t, fleet[pl].State(), solo.State(), "fleet fabric vs solo")
	}
}

func TestFleetFabricsAreIndependent(t *testing.T) {
	fleet := NewFabricFleet(2, 3)
	before := fleet[1].State()
	exerciseFleet(fleet[0], 0)
	fabricStatesEqual(t, fleet[1].State(), before, "neighbour fabric untouched")
}

func TestFabricTickSettleOrderUnchanged(t *testing.T) {
	f := NewFabric(2)
	// Drain the initial parallel-topology settles.
	f.Tick(SwitchTime)

	var order []string
	hook := func(r *Relay) {
		r.OnSettle = func(time.Duration) { order = append(order, r.Name()) }
	}
	for i := 0; i < f.Size(); i++ {
		hook(f.Pair(i).Charge)
		hook(f.Pair(i).Discharge)
	}
	hook(f.P1)
	hook(f.P2)
	hook(f.P3)

	f.Pair(0).SetMode(Charging)
	f.Pair(1).SetMode(Discharging)
	f.SetSeries()
	f.Tick(SwitchTime)

	want := []string{"bat0-CR", "bat1-DR", "P1", "P2", "P3"}
	if len(order) != len(want) {
		t.Fatalf("settle order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("settle order %v, want %v", order, want)
		}
	}
}

func TestFabricTickAllocFree(t *testing.T) {
	f := NewFabric(8)
	f.Pair(0).SetMode(Charging)
	if n := testing.AllocsPerRun(1000, func() {
		f.Tick(time.Second)
	}); n != 0 {
		t.Fatalf("Fabric.Tick allocates %.1f times per call, want 0", n)
	}
}

// Benchmarks regenerating every table and figure of the paper, plus
// ablation benches for the design choices called out in DESIGN.md. Each
// experiment bench reports domain metrics (uptime, GB, wear) alongside
// wall-clock cost, so `go test -bench` doubles as the reproduction harness.
package insure

import (
	"context"
	"sync"
	"testing"
	"time"

	"insure/internal/baseline"
	"insure/internal/battery"
	"insure/internal/blink"
	"insure/internal/core"
	"insure/internal/experiments"
	"insure/internal/journal"
	"insure/internal/sim"
	"insure/internal/telemetry"
	"insure/internal/trace"
	"insure/internal/units"
)

// benchExperiment runs one registered experiment per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run(id); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig01aTransferTime(b *testing.B)     { benchExperiment(b, "fig1a") }
func BenchmarkFig01bAWSEgress(b *testing.B)        { benchExperiment(b, "fig1b") }
func BenchmarkFig03aITTCO(b *testing.B)            { benchExperiment(b, "fig3a") }
func BenchmarkFig03bEnergyTCO(b *testing.B)        { benchExperiment(b, "fig3b") }
func BenchmarkFig04aChargingModes(b *testing.B)    { benchExperiment(b, "fig4a") }
func BenchmarkFig04bRecoveryEffect(b *testing.B)   { benchExperiment(b, "fig4b") }
func BenchmarkFig05UnifiedBufferTrip(b *testing.B) { benchExperiment(b, "fig5") }
func BenchmarkFig14aFastCharging(b *testing.B)     { benchExperiment(b, "fig14a") }
func BenchmarkFig14bBalancing(b *testing.B)        { benchExperiment(b, "fig14b") }
func BenchmarkFig15SolarTraces(b *testing.B)       { benchExperiment(b, "fig15") }
func BenchmarkFig16FullDayTrace(b *testing.B)      { benchExperiment(b, "fig16") }
func BenchmarkFig17Availability(b *testing.B)      { benchExperiment(b, "fig17") }
func BenchmarkFig18EnergyAvail(b *testing.B)       { benchExperiment(b, "fig18") }
func BenchmarkFig19ServiceLife(b *testing.B)       { benchExperiment(b, "fig19") }
func BenchmarkFig20BatchFullSystem(b *testing.B)   { benchExperiment(b, "fig20") }
func BenchmarkFig21StreamFullSystem(b *testing.B)  { benchExperiment(b, "fig21") }
func BenchmarkFig22Depreciation(b *testing.B)      { benchExperiment(b, "fig22") }
func BenchmarkFig23ScaleOut(b *testing.B)          { benchExperiment(b, "fig23") }
func BenchmarkFig24Crossover(b *testing.B)         { benchExperiment(b, "fig24") }
func BenchmarkFig25Scenarios(b *testing.B)         { benchExperiment(b, "fig25") }
func BenchmarkTable01Parameters(b *testing.B)      { benchExperiment(b, "table1") }
func BenchmarkTable02SeismicScaling(b *testing.B)  { benchExperiment(b, "table2") }
func BenchmarkTable03VideoScaling(b *testing.B)    { benchExperiment(b, "table3") }
func BenchmarkTable06DayLogs(b *testing.B)         { benchExperiment(b, "table6") }
func BenchmarkTable07Heterogeneous(b *testing.B)   { benchExperiment(b, "table7") }
func BenchmarkExtFaultsAvailability(b *testing.B)  { benchExperiment(b, "extfaults") }

// --- simulation-core micro benchmarks ---------------------------------------

func BenchmarkBatteryDischargeTick(b *testing.B) {
	u := battery.MustNew(battery.DefaultParams(), 1.0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		u.Discharge(4, time.Second)
		if u.SoC() < 0.2 {
			u.SetSoC(1.0)
		}
	}
}

func BenchmarkBatteryChargeTick(b *testing.B) {
	u := battery.MustNew(battery.DefaultParams(), 0.2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		u.Charge(8, time.Second)
		if u.SoC() > 0.95 {
			u.SetSoC(0.2)
		}
	}
}

// BenchmarkSystemTick measures the instrumented hot path: the telemetry
// plane and the survivability mode machine are both attached, so this
// doubles as the proof that live /metrics and the emergency ladder cost
// the tick loop nothing (0 allocs/op, atomic stores only).
func BenchmarkSystemTick(b *testing.B) {
	cfg := sim.DefaultConfig(trace.FullSystemHigh())
	sys, err := sim.New(cfg, sim.NewSeismicSink())
	if err != nil {
		b.Fatal(err)
	}
	mcfg := core.DefaultConfig()
	mcfg.Survival = core.DefaultSurvivalConfig()
	mgr := core.New(mcfg, cfg.BatteryCount)
	reg := telemetry.NewRegistry()
	sys.AttachTelemetry(reg)
	mgr.AttachTelemetry(reg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tod := 8*time.Hour + time.Duration(i%40000)*time.Second
		if tod == 8*time.Hour {
			// Day wrap: drop the previous "day's" frames. Without this the
			// recorder grows past its one-day pre-size forever, and the
			// amortized slice growth shows up as ~41 B/op at 0 allocs/op.
			sys.Recorder().Reset()
		}
		sys.Tick(tod, mgr)
	}
}

// BenchmarkSystemTickJournaled is BenchmarkSystemTick with the crash-safe
// control plane attached: every control pass serializes the full manager
// state into the write-ahead journal (fsync disabled so the benchmark
// measures the CPU cost of journaling, not the disk), while a background
// scrubber CRC-sweeps the store directory exactly as the daemons run it.
// Compare with BenchmarkSystemTick to see the durability overhead on the
// hot path; the scrubber must stay invisible (still 0 allocs/op).
func BenchmarkSystemTickJournaled(b *testing.B) {
	cfg := sim.DefaultConfig(trace.FullSystemHigh())
	sys, err := sim.New(cfg, sim.NewSeismicSink())
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	store, err := journal.Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	store.Sync = false
	mcfg := core.DefaultConfig()
	mcfg.Survival = core.DefaultSurvivalConfig()
	mgr := core.NewJournaled(core.New(mcfg, cfg.BatteryCount), store)
	reg := telemetry.NewRegistry()
	sys.AttachTelemetry(reg)
	mgr.AttachTelemetry(reg)
	// The scrubber shares a lock with the tick loop exactly as the daemons
	// share the store mutex: sweeps serialize with commits, and the
	// uncontended lock per tick is part of the cost being measured. The
	// cadence is compressed from the daemons' minutes to land a few sweeps
	// inside the longest bench run; each sweep CRC-reads the whole journal,
	// so going much faster measures the scrubber, not the tick.
	var mu sync.Mutex
	scrub := journal.NewScrubber(journal.Target{Name: "bench", Dir: dir, Lock: &mu})
	scrub.Interval = 500 * time.Millisecond
	scrub.AttachTelemetry(reg)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if _, err := scrub.RunOnce(); err != nil {
		b.Fatal(err)
	}
	go scrub.Run(ctx)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tod := 8*time.Hour + time.Duration(i%40000)*time.Second
		if tod == 8*time.Hour {
			// Day wrap: drop the previous "day's" frames. Without this the
			// recorder grows past its one-day pre-size forever, and the
			// amortized slice growth shows up as ~41 B/op at 0 allocs/op.
			sys.Recorder().Reset()
		}
		mu.Lock()
		sys.Tick(tod, mgr)
		mu.Unlock()
	}
	b.StopTimer()
	if err := mgr.Err(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkFullDaySimulation(b *testing.B) {
	tr := trace.FullSystemHigh()
	for i := 0; i < b.N; i++ {
		cfg := sim.DefaultConfig(tr)
		sys, err := sim.New(cfg, sim.NewSeismicSink())
		if err != nil {
			b.Fatal(err)
		}
		res := sys.Run(core.New(core.DefaultConfig(), cfg.BatteryCount))
		b.ReportMetric(res.UptimeFrac*100, "uptime%")
		b.ReportMetric(res.ProcessedGB, "GB/day")
	}
}

// --- ablation benches (DESIGN.md) --------------------------------------------

// runAblation executes one full seismic day with the given manager and
// reports the domain metrics.
func runAblation(b *testing.B, mkMgr func(n int) sim.Manager) {
	b.Helper()
	tr := trace.FullSystemHigh()
	for i := 0; i < b.N; i++ {
		cfg := sim.DefaultConfig(tr)
		sys, err := sim.New(cfg, sim.NewSeismicSink())
		if err != nil {
			b.Fatal(err)
		}
		res := sys.Run(mkMgr(cfg.BatteryCount))
		b.ReportMetric(res.UptimeFrac*100, "uptime%")
		b.ReportMetric(res.ProcessedGB, "GB/day")
		b.ReportMetric(float64(res.WearAhPerUnit), "wearAh/unit")
		b.ReportMetric(float64(res.Brownouts), "brownouts")
	}
}

// BenchmarkAblationFullInSURE is the reference point: SPM + TPM together.
func BenchmarkAblationFullInSURE(b *testing.B) {
	runAblation(b, func(n int) sim.Manager { return core.New(core.DefaultConfig(), n) })
}

// BenchmarkAblationNoDischargeCap disables TPM's current capping: the
// buffer is discharged as hard as the load demands.
func BenchmarkAblationNoDischargeCap(b *testing.B) {
	runAblation(b, func(n int) sim.Manager {
		cfg := core.DefaultConfig()
		cfg.UnitDischargeCap = units.Amp(100) // effectively uncapped
		return core.New(cfg, n)
	})
}

// BenchmarkAblationNoScreening disables SPM's Eq-1 wear screening by making
// the coarse interval longer than the day.
func BenchmarkAblationNoScreening(b *testing.B) {
	runAblation(b, func(n int) sim.Manager {
		cfg := core.DefaultConfig()
		cfg.CoarsePeriod = 20 * time.Hour
		return core.New(cfg, n)
	})
}

// BenchmarkAblationNoDVFS disables duty scaling: batch loads run at full
// frequency or not at all.
func BenchmarkAblationNoDVFS(b *testing.B) {
	runAblation(b, func(n int) sim.Manager {
		cfg := core.DefaultConfig()
		cfg.MinDuty = 1.0
		return core.New(cfg, n)
	})
}

// BenchmarkAblationUnifiedBuffer replaces the reconfigurable distributed
// buffer with the baseline's unified pack — the headline comparison.
func BenchmarkAblationUnifiedBuffer(b *testing.B) {
	runAblation(b, func(int) sim.Manager { return baseline.New(baseline.DefaultConfig()) })
}

// BenchmarkAblationForecastLookahead swaps the fixed 25% cloud margin for
// the clear-sky-ratio forecaster (the paper's future-work direction).
func BenchmarkAblationForecastLookahead(b *testing.B) {
	runAblation(b, func(n int) sim.Manager {
		cfg := core.DefaultConfig()
		cfg.UseForecast = true
		return core.New(cfg, n)
	})
}

// BenchmarkAblationBlinkTracking swaps in the Blink-style fast power-state
// tracker of reference [88].
func BenchmarkAblationBlinkTracking(b *testing.B) {
	runAblation(b, func(int) sim.Manager { return blink.New(blink.DefaultConfig()) })
}

package fleet

import (
	"fmt"
	"time"

	"insure/internal/journal"
)

// The migration log is the coordinator's durable state, built on the same
// append-only journal layer the per-site control planes use (PR 4): one
// CRC-framed record per migration event. The plants and sinks own the
// physical consequences; the log owns the accounting, so a replacement
// coordinator replays it and knows exactly what has been shipped where.
// Restore records for shipments still in flight at a crash are simply
// absent — the log then shows a checkpoint as shipped but not yet restored,
// which is the truth.
//
// The v2 records (RecXfer*) are the chunked WAN engine's journal: a
// transfer's start carries its full job manifest (IDs, sizes, remaining
// work), every control pass that moved bytes appends the new contiguous
// offset plus the bytes *attempted* (retransmissions are billed too), and
// completion/reroute/abort close it out. Replaying Start→Progress→… records
// rebuilds the in-flight transfer table byte-for-byte, which is how a
// resumed coordinator picks a 4 GB image back up mid-stream instead of
// restarting it. Replay is idempotent: records are seq-gated (a record
// already applied is skipped) and job landings deduplicate by job ID, so
// replaying the same log twice — or a healed log over a live coordinator —
// changes nothing.

// RecordKind tags a migration-log record.
type RecordKind uint8

const (
	// RecJob is a bundle of deferred batch jobs migrating between sites
	// (legacy single-shot path, WAN model absent).
	RecJob RecordKind = iota + 1
	// RecCheckpoint is a bundle of VM checkpoint images leaving a site
	// (including a re-route away from a dead destination).
	RecCheckpoint
	// RecRestore is a checkpoint bundle landing at its destination.
	RecRestore
	// RecSiteLoss marks a site dying with its in-flight resources. Under
	// the WAN failure detector it is written at lease expiry — when the
	// coordinator *declares* the site dead — not at the physical failure
	// the coordinator cannot observe.
	RecSiteLoss
	// RecXferStart opens a chunked WAN transfer: jobs (with manifest) or
	// checkpoint images, GB total, assigned a transfer ID.
	RecXferStart
	// RecXferProgress advances a transfer: Offset is the new contiguous
	// delivered byte count, Attempted the bytes spent on the link this
	// pass (delivered + dropped + corrupted), Drops/Corrupts the per-pass
	// chunk failures.
	RecXferProgress
	// RecXferDone lands a transfer at its destination.
	RecXferDone
	// RecXferReroute retargets a transfer to a new donor after repeated
	// failure; delivered bytes at the old destination (Offset) are wasted
	// and the transfer restarts from byte zero.
	RecXferReroute
	// RecXferAbort cancels a transfer whose source site died mid-stream —
	// the unsent bytes died with the site.
	RecXferAbort
)

func (k RecordKind) String() string {
	switch k {
	case RecJob:
		return "job"
	case RecCheckpoint:
		return "checkpoint"
	case RecRestore:
		return "restore"
	case RecSiteLoss:
		return "site-loss"
	case RecXferStart:
		return "xfer-start"
	case RecXferProgress:
		return "xfer-progress"
	case RecXferDone:
		return "xfer-done"
	case RecXferReroute:
		return "xfer-reroute"
	case RecXferAbort:
		return "xfer-abort"
	default:
		return fmt.Sprintf("RecordKind(%d)", int(k))
	}
}

// JobRef is one job's entry in a transfer manifest: enough identity and
// progress state to rebuild the job at the destination (or re-route it)
// without the original pointer. Remaining rides the manifest because work
// done before migration travels inside the shipped VM checkpoint.
type JobRef struct {
	ID        uint64
	Size      float64 // GB
	Remaining float64 // GB
	Arrived   time.Duration
	Origin    int
}

// Record is one migration-log entry. The Xfer/Offset/Attempted/Manifest
// fields are zero for the legacy kinds.
type Record struct {
	Day    int
	At     time.Duration
	Kind   RecordKind
	From   int // source site index (the dead site for RecSiteLoss)
	To     int // destination site index (-1 when not applicable)
	Jobs   int
	GB     float64
	Images int

	// Chunked-transfer fields (v2).
	Xfer      uint64 // transfer ID
	Offset    int64  // contiguous delivered bytes (wasted bytes for reroute)
	Attempted int64  // bytes attempted this pass, for retry billing
	Drops     int    // chunk attempts lost in transit this pass
	Corrupts  int    // chunk attempts failing CRC this pass
	Manifest  []JobRef
}

// recordVersion is the codec version of encoded records. Version 2 added
// the chunked-transfer fields; v1 records (PR 7 logs) still decode.
const recordVersion = 2

func encodeRecord(enc *journal.Encoder, r Record) {
	enc.Reset()
	enc.U8(recordVersion)
	enc.U8(uint8(r.Kind))
	enc.Int(r.Day)
	enc.Dur(r.At)
	enc.Int(r.From)
	enc.Int(r.To)
	enc.Int(r.Jobs)
	enc.F64(r.GB)
	enc.Int(r.Images)
	enc.U64(r.Xfer)
	enc.I64(r.Offset)
	enc.I64(r.Attempted)
	enc.Int(r.Drops)
	enc.Int(r.Corrupts)
	enc.Int(len(r.Manifest))
	for _, j := range r.Manifest {
		enc.U64(j.ID)
		enc.F64(j.Size)
		enc.F64(j.Remaining)
		enc.Dur(j.Arrived)
		enc.Int(j.Origin)
	}
}

func decodeRecord(b []byte) (Record, error) {
	d := journal.NewDecoder(b)
	version := d.U8()
	if version != 1 && version != recordVersion {
		return Record{}, fmt.Errorf("fleet: migration record version %d, want 1 or %d", version, recordVersion)
	}
	r := Record{
		Kind: RecordKind(d.U8()),
		Day:  d.Int(),
		At:   d.Dur(),
		From: d.Int(),
		To:   d.Int(),
		Jobs: d.Int(),
		GB:   d.F64(),
	}
	r.Images = d.Int()
	if version >= 2 {
		r.Xfer = d.U64()
		r.Offset = d.I64()
		r.Attempted = d.I64()
		r.Drops = d.Int()
		r.Corrupts = d.Int()
		n := d.Int()
		if err := d.Err(); err != nil {
			return Record{}, fmt.Errorf("fleet: corrupt migration record: %w", err)
		}
		for i := 0; i < n; i++ {
			r.Manifest = append(r.Manifest, JobRef{
				ID:        d.U64(),
				Size:      d.F64(),
				Remaining: d.F64(),
				Arrived:   d.Dur(),
				Origin:    d.Int(),
			})
		}
	}
	if err := d.Err(); err != nil {
		return Record{}, fmt.Errorf("fleet: corrupt migration record: %w", err)
	}
	return r, nil
}

// migLog is the journal-backed migration log.
type migLog struct {
	store *journal.Store
	enc   journal.Encoder
}

// openLog opens (or creates) the migration log in dir on fsys and returns
// every record already present with its journal sequence number — the
// replay set (seq-gating makes replay idempotent).
func openLog(fsys journal.FS, dir string) (*migLog, []Record, []uint64, error) {
	res, err := journal.LoadFS(fsys, dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var records []Record
	for _, payload := range res.Entries {
		r, err := decodeRecord(payload)
		if err != nil {
			return nil, nil, nil, err
		}
		records = append(records, r)
	}
	store, err := journal.OpenFS(fsys, dir)
	if err != nil {
		return nil, nil, nil, err
	}
	return &migLog{store: store}, records, res.EntrySeqs, nil
}

func (l *migLog) append(r Record) (uint64, error) {
	encodeRecord(&l.enc, r)
	return l.store.Append(l.enc.Bytes())
}

func (l *migLog) close() error { return l.store.Close() }

// ReplayLog reads the migration log in dir without opening it for writing —
// the forensic view of what a (possibly dead) coordinator shipped.
func ReplayLog(dir string) ([]Record, error) {
	res, err := journal.Load(dir)
	if err != nil {
		return nil, err
	}
	records := make([]Record, 0, len(res.Entries))
	for _, payload := range res.Entries {
		r, err := decodeRecord(payload)
		if err != nil {
			return nil, err
		}
		records = append(records, r)
	}
	return records, nil
}

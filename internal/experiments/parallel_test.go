package experiments

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
)

// renderAll renders a table batch the way cmd/insure-bench does, giving a
// byte-exact artefact to compare engines with.
func renderAll(t *testing.T, tables []*Table) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, tbl := range tables {
		if tbl == nil {
			t.Fatal("nil table in batch")
		}
		if err := tbl.Render(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestRunAllParallelMatchesRunAll is the determinism oracle for the parallel
// engine: the rendered output of the worker pool must be byte-identical to
// the serial engine's, for every registered experiment.
func TestRunAllParallelMatchesRunAll(t *testing.T) {
	if raceEnabled {
		// Both engines run the full 30-experiment evaluation; doing that
		// twice under the race detector pushes the package past its test
		// timeout. Race coverage of the pool comes from the cheaper tests
		// and the sim campaign tests.
		t.Skip("full double evaluation is too slow under -race")
	}
	serial := renderAll(t, RunAll())

	tables, err := RunAllParallel(context.Background(), 0)
	if err != nil {
		t.Fatalf("RunAllParallel: %v", err)
	}
	parallel := renderAll(t, tables)

	if !bytes.Equal(serial, parallel) {
		t.Fatalf("parallel output differs from serial output\nserial %d bytes, parallel %d bytes",
			len(serial), len(parallel))
	}
}

// TestRunAllParallelPanicPropagation checks a panicking runner surfaces as
// an error naming the experiment instead of crashing the process. The probe
// runner's ID sorts first so, with one worker, the pool fails fast and the
// real experiments are skipped via context cancellation.
func TestRunAllParallelPanicPropagation(t *testing.T) {
	const id = "_panic-probe"
	register(id, func(context.Context) *Table { panic("probe explosion") })
	defer delete(registry, id)

	_, err := RunAllParallel(context.Background(), 1)
	if err == nil {
		t.Fatal("want error from panicking runner")
	}
	for _, want := range []string{id, "probe explosion"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q should contain %q", err, want)
		}
	}
}

func TestRunAllParallelCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunAllParallel(ctx, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

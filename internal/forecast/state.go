package forecast

// EstimatorState is the learned sky state — everything Observe has
// accumulated. Capacity and Tau are configuration and stay with the
// caller.
type EstimatorState struct {
	Ratio    float64
	HaveObs  bool
	Variance float64
}

// State captures the estimator's learned state.
func (e *Estimator) State() EstimatorState {
	return EstimatorState{Ratio: e.ratio, HaveObs: e.haveObs, Variance: e.variance}
}

// Restore overwrites the estimator's learned state.
func (e *Estimator) Restore(st EstimatorState) {
	e.ratio = st.Ratio
	e.haveObs = st.HaveObs
	e.variance = st.Variance
}

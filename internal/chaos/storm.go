package chaos

import (
	"fmt"
	"time"

	"insure/internal/battery"
	"insure/internal/core"
	"insure/internal/faults"
	"insure/internal/genset"
	"insure/internal/journal"
	"insure/internal/sim"
	"insure/internal/solar"
	"insure/internal/telemetry"
	"insure/internal/trace"
	"insure/internal/units"
)

// The storm campaign is the survivability layer's proving ground: a seeded
// multi-day stretch of low-generation weather (the paper's 427 W overcast
// day and worse), one battery bank and one control plane carried across all
// of it. With survivability enabled the campaign asserts the emergency
// contract per tick — zero VMs lost uncheckpointed, zero crash-brownouts,
// every ladder move between adjacent rungs — and optionally hard-kills the
// controller mid-emergency to prove recovery lands in the same rung and
// continues bit-identically. With survivability disabled the same storm
// records what the baseline loses, giving the on/off comparison.

// StormConfig shapes a multi-day low-generation storm campaign.
type StormConfig struct {
	// Seed drives the per-day trace synthesis; the same seed reproduces
	// the storm bit-for-bit.
	Seed int64
	// Days is the storm length (the acceptance bar is >= 3).
	Days int
	// Batteries and Servers size the plant.
	Batteries int
	Servers   int
	// Survival attaches the survivability mode machine; off runs the
	// baseline InSURE manager through the same weather.
	Survival bool
	// Genset fits a diesel backup generator for last-resort dispatch.
	Genset bool
	// KillDay, when >= 0, hard-kills the controller on that day at the
	// first control pass spent at Conservative or deeper — a kill in the
	// middle of the emergency — and recovers it from StateDir. The
	// campaign then runs an uninterrupted twin first and asserts the
	// interrupted run recovers into the same ladder rung and finishes
	// with an identical trajectory.
	KillDay int
	// StateDir is where the interrupted run journals its control state
	// (required when KillDay >= 0).
	StateDir string
}

// DefaultStormConfig is the acceptance storm: three days, prototype plant.
func DefaultStormConfig(seed int64) StormConfig {
	return StormConfig{
		Seed:      seed,
		Days:      3,
		Batteries: 6,
		Servers:   4,
		KillDay:   -1,
	}
}

// StormReport is the outcome of one storm campaign.
type StormReport struct {
	Seed     int64
	Days     int
	Survival bool

	// Aggregate outcomes across all days.
	Brownouts   int
	VMsLost     int
	VMsSaved    int
	ProcessedGB float64
	MeanUptime  float64

	// Mode-machine accounting (zero when Survival is off).
	ModeTransitions int
	FinalMode       core.OpMode
	Recoveries      int

	// Generator accounting (zero when no genset is fitted).
	GenStarts    int
	GenRunHours  float64
	GenKWh       float64
	GenFuelCost  float64
	GenWastedKWh float64

	// TrajectoryHash folds every day's recorded frames; two storms agree
	// only if the plant moved identically through all days.
	TrajectoryHash uint64

	ViolationCount int
	Violations     []string
}

func (r *StormReport) violate(format string, args ...any) {
	r.ViolationCount++
	if len(r.Violations) < maxViolationDetail {
		r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
	}
}

// String is the one-line summary a failing test prints with the seed.
func (r *StormReport) String() string {
	return fmt.Sprintf("storm seed %d: %d days (survival %v), brownouts %d, VMs lost %d / saved %d, %d mode transitions ending %s, %d recoveries, genset %d starts %.2f h $%.2f, %d violations",
		r.Seed, r.Days, r.Survival, r.Brownouts, r.VMsLost, r.VMsSaved,
		r.ModeTransitions, r.FinalMode, r.Recoveries,
		r.GenStarts, r.GenRunHours, r.GenFuelCost, r.ViolationCount)
}

// stormDayTrace synthesizes one storm day. The storm centres on the
// paper's low-generation figure (427 W average, Fig 15b) and drops every
// third day to a deeper trough, so a multi-day stretch cannot be bridged
// by the buffer alone.
func stormDayTrace(seed int64, day int) *trace.Trace {
	avg := 427.0
	if day%3 == 1 {
		avg = 190.0
	}
	tr := trace.Synthesize(solar.Rainy, seed+int64(day), time.Second)
	return tr.ScaleToEnergy(units.WattHour(avg * tr.Duration().Hours()))
}

// stormDayFaults is the storm's surge damage: on each trough day the storm
// front takes out most of the bank's capacity in quick succession — shorted
// cells from lightning surges — right while the buffer is carrying the
// midday load. The weather alone is survivable by riding the buffer; the
// surge is what turns the trough into an emergency.
func stormDayFaults(day, batteries int) faults.Plan {
	if day%3 != 1 {
		return nil
	}
	n := batteries - 2 // leave a remnant so recovery is possible at all
	if n < 1 {
		n = 1
	}
	plan := make(faults.Plan, 0, n)
	for i := 0; i < n; i++ {
		plan = append(plan, faults.Event{
			At:        13*time.Hour + time.Duration(i)*10*time.Minute,
			Kind:      faults.BatteryFail,
			Unit:      i,
			Magnitude: 0.75,
		})
	}
	return plan
}

// RunStorm executes the storm campaign described by cfg. Error returns are
// harness failures only; invariant breaks are reported in the StormReport
// so a test can print it with its seed.
func RunStorm(cfg StormConfig) (*StormReport, error) {
	if cfg.Days < 1 {
		return nil, fmt.Errorf("chaos: storm needs at least one day")
	}
	if cfg.KillDay >= 0 {
		if cfg.StateDir == "" {
			return nil, fmt.Errorf("chaos: KillDay requires StateDir")
		}
		if cfg.KillDay >= cfg.Days {
			return nil, fmt.Errorf("chaos: KillDay %d outside the %d-day storm", cfg.KillDay, cfg.Days)
		}
		// Uninterrupted twin first, then the interrupted run; the kill must
		// be invisible in the trajectory.
		ref, err := runStorm(cfg, false)
		if err != nil {
			return nil, err
		}
		rep, err := runStorm(cfg, true)
		if err != nil {
			return nil, err
		}
		if rep.Recoveries == 0 {
			rep.violate("kill day %d produced no recovery (emergency never reached?)", cfg.KillDay)
		}
		if rep.TrajectoryHash != ref.TrajectoryHash {
			rep.violate("interrupted storm trajectory %x diverged from uninterrupted %x",
				rep.TrajectoryHash, ref.TrajectoryHash)
		}
		if rep.FinalMode != ref.FinalMode {
			rep.violate("interrupted storm ended in rung %s, uninterrupted in %s", rep.FinalMode, ref.FinalMode)
		}
		if rep.ModeTransitions != ref.ModeTransitions {
			rep.violate("interrupted storm made %d ladder moves, uninterrupted %d",
				rep.ModeTransitions, ref.ModeTransitions)
		}
		rep.ViolationCount += ref.ViolationCount
		rep.Violations = append(rep.Violations, ref.Violations...)
		return rep, nil
	}
	return runStorm(cfg, false)
}

// runStorm is one pass over the storm. With kill set, the controller is
// hard-stopped on cfg.KillDay at the first control pass spent in an
// emergency rung and recovered from the journal in cfg.StateDir.
func runStorm(cfg StormConfig, kill bool) (*StormReport, error) {
	mcfg := core.DefaultConfig()
	if cfg.Survival {
		mcfg.Survival = core.DefaultSurvivalConfig()
	}
	mgr := core.New(mcfg, cfg.Batteries)
	// The storm arrives mid-drought: the bank has already been run down to
	// the dispatch floor, so the first dark morning genuinely forces the
	// ladder (and, when fitted, the last-resort generator) into play.
	bank, err := battery.NewBank(battery.DefaultParams(), cfg.Batteries, 0.30)
	if err != nil {
		return nil, err
	}
	var gen *genset.Generator
	if cfg.Genset {
		gen = genset.New(genset.DieselParams())
	}
	reg := telemetry.NewRegistry()
	mgr.AttachTelemetry(reg)

	var store *journal.Store
	var drive sim.Manager = mgr
	if kill {
		store, err = journal.Open(cfg.StateDir)
		if err != nil {
			return nil, err
		}
		defer func() { store.Close() }()
		drive = core.NewJournaled(mgr, store)
	}

	rep := &StormReport{Seed: cfg.Seed, Days: cfg.Days, Survival: cfg.Survival}
	const fnvPrime = 1099511628211
	period := mgr.Period()
	killed := false

	for day := 0; day < cfg.Days; day++ {
		scfg := sim.DefaultConfig(stormDayTrace(cfg.Seed, day))
		scfg.BatteryCount = cfg.Batteries
		scfg.ServerCount = cfg.Servers
		scfg.RecordEvery = time.Minute
		scfg.Bank = bank
		scfg.Secondary = gen
		sys, err := sim.New(scfg, sim.NewVideoSink())
		if err != nil {
			return nil, err
		}
		sys.AttachTelemetry(reg)
		inj := faults.NewInjector(stormDayFaults(day, cfg.Batteries), faults.Target{
			Bank: sys.Bank, Fabric: sys.Fabric, Probes: sys.Probes,
		})
		sys.SetTickHook(func(tod time.Duration) { inj.Tick(tod) })

		start, end := sys.Span()
		prevMode := mgr.Mode()
		lostSeen := 0
		killNext := false
		for tod := start; tod < end; tod += time.Second {
			if killNext && !killed {
				// The controller process dies one second after committing a
				// pass mid-emergency. Only the journal survives; the plant
				// keeps running on physics.
				killNext = false
				killed = true
				modeBefore := mgr.Mode()
				if err := store.Close(); err != nil {
					return nil, err
				}
				m2, s2, err := core.Recover(mcfg, cfg.Batteries, cfg.StateDir)
				if err != nil {
					return nil, fmt.Errorf("chaos: storm recovery on day %d at %v: %w", day, tod, err)
				}
				if m2.Mode() != modeBefore {
					rep.violate("recovery landed in rung %s, controller died in %s", m2.Mode(), modeBefore)
				}
				m2.AttachTelemetry(reg)
				m2.Reconcile(sys, tod)
				mgr, store = m2, s2
				drive = core.NewJournaled(mgr, store)
				prevMode = mgr.Mode()
			}

			sys.Tick(tod, drive)

			// Ladder adjacency: transitions only happen inside a control
			// pass, so sampling every tick observes each one.
			if cur := mgr.Mode(); cur != prevMode {
				if !core.LadderAdjacent(prevMode, cur) {
					rep.violate("day %d: illegal ladder move %s -> %s at %v", day, prevMode, cur, tod)
				}
				prevMode = cur
			}
			// The emergency contract: no VM state is ever lost to a power
			// cut while the survivability layer is on duty.
			if cfg.Survival {
				if l := sys.Cluster.VMsLost(); l > lostSeen {
					rep.violate("day %d: %d VMs lost uncheckpointed at %v", day, l-lostSeen, tod)
					lostSeen = l
				}
			}

			if kill && !killed && day == cfg.KillDay &&
				mgr.Mode() >= core.ModeConservative && tod%period == 0 {
				killNext = true
			}
		}

		res := sys.Finish(drive)
		if jm, ok := drive.(*core.JournaledManager); ok {
			if err := jm.Err(); err != nil {
				return nil, fmt.Errorf("chaos: storm journal commit on day %d: %w", day, err)
			}
		}
		rep.Brownouts += res.Brownouts
		rep.VMsLost += res.VMsLost
		rep.VMsSaved += res.VMsSaved
		rep.ProcessedGB += res.ProcessedGB
		rep.MeanUptime += res.UptimeFrac / float64(cfg.Days)
		rep.TrajectoryHash = rep.TrajectoryHash*fnvPrime ^ hashFrames(sys.Recorder().Frames())
	}

	rep.ModeTransitions = mgr.ModeTransitions()
	rep.FinalMode = mgr.Mode()
	rep.Recoveries = mgr.Recoveries()
	if gen != nil {
		rep.GenStarts = gen.Starts()
		rep.GenRunHours = gen.RunTime().Hours()
		rep.GenKWh = gen.Delivered().KWh()
		rep.GenFuelCost = gen.FuelCost()
		rep.GenWastedKWh = gen.Wasted().KWh()
	}
	if cfg.Survival {
		if rep.Brownouts > 0 {
			rep.violate("survival-managed storm crash-browned out %d times", rep.Brownouts)
		}
		if rep.VMsLost > 0 {
			rep.violate("survival-managed storm lost %d VMs uncheckpointed", rep.VMsLost)
		}
	}
	return rep, nil
}

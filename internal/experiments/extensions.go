package experiments

import (
	"context"

	"fmt"
	"time"

	"insure/internal/baseline"
	"insure/internal/blink"
	"insure/internal/core"
	"insure/internal/endurance"
	"insure/internal/faults"
	"insure/internal/genset"
	"insure/internal/sim"
	"insure/internal/solar"
	"insure/internal/trace"
	"insure/internal/units"
	"insure/internal/wind"
)

// The ext* experiments go beyond the paper's evaluation into the design
// space it describes but did not prototype: the secondary power feed of
// Fig 6, the wind/solar hybrid of §2.2, forecast-based lookahead planning
// (the stated future work), and multi-day endurance validation of the
// service-life model.

func init() {
	register("extbackup", ExtBackup)
	register("exthybrid", ExtHybrid)
	register("extforecast", ExtForecast)
	register("extendurance", ExtEndurance)
	register("extpriorart", ExtPriorArt)
	register("extfaults", ExtFaults)
	register("extsurvival", ExtSurvival)
}

// ExtBackup quantifies the secondary power feed: a dark rainy day with no
// backup, a diesel backup, and a fuel-cell backup.
func ExtBackup(ctx context.Context) *Table {
	t := &Table{
		ID:     "extbackup",
		Title:  "Secondary power feed on a dark rainy day (video workload)",
		Header: []string{"backup", "uptime", "GB done", "gen kWh", "fuel $", "starts"},
	}
	dark := trace.Synthesize(solar.Rainy, 2015, time.Second).ScaleToPeak(200)
	cases := []struct {
		name string
		gen  func() *genset.Generator
	}{
		{"none", func() *genset.Generator { return nil }},
		{"diesel", func() *genset.Generator { return genset.New(genset.DieselParams()) }},
		{"fuel cell", func() *genset.Generator { return genset.New(genset.FuelCellParams()) }},
	}
	for _, c := range cases {
		cfg := sim.DefaultConfig(dark)
		cfg.Secondary = c.gen()
		sys, err := sim.New(cfg, sim.NewVideoSink())
		if err != nil {
			panic(err)
		}
		res := sys.Run(core.New(core.DefaultConfig(), cfg.BatteryCount))
		t.Rows = append(t.Rows, []string{
			c.name,
			fmt.Sprintf("%.0f%%", res.UptimeFrac*100),
			f1(res.ProcessedGB),
			f1(res.GenKWh),
			f2(res.GenFuelCost),
			fmt.Sprintf("%d", res.GenStarts),
		})
	}
	t.Notes = append(t.Notes, "renewables stay primary: the generator only bridges droughts (Fig 7's S flows)")
	return t
}

// ExtHybrid quantifies the wind/solar hybrid of §2.2 across wind regimes
// on a rainy (solar-poor) day.
func ExtHybrid(ctx context.Context) *Table {
	t := &Table{
		ID:     "exthybrid",
		Title:  "Wind/solar hybrid on a rainy day (video workload)",
		Header: []string{"wind site", "uptime", "GB done", "wind kWh", "wear Ah/unit"},
	}
	day := trace.Synthesize(solar.Rainy, 2015, time.Second)
	regimes := []struct {
		name string
		aux  sim.AuxSupply
	}{
		{"none", nil},
		{"calm", wind.NewSupply(wind.Calm, 2015)},
		{"moderate", wind.NewSupply(wind.Moderate, 2015)},
		{"windy", wind.NewSupply(wind.Windy, 2015)},
	}
	for _, r := range regimes {
		cfg := sim.DefaultConfig(day)
		cfg.Aux = r.aux
		sys, err := sim.New(cfg, sim.NewVideoSink())
		if err != nil {
			panic(err)
		}
		res := sys.Run(core.New(core.DefaultConfig(), cfg.BatteryCount))
		t.Rows = append(t.Rows, []string{
			r.name,
			fmt.Sprintf("%.0f%%", res.UptimeFrac*100),
			f1(res.ProcessedGB),
			f1(res.AuxKWh),
			f2(float64(res.WearAhPerUnit)),
		})
	}
	return t
}

// ExtForecast compares the fixed 25% cloud margin against the
// clear-sky-ratio lookahead planner on a cloudy day.
func ExtForecast(ctx context.Context) *Table {
	t := &Table{
		ID:     "extforecast",
		Title:  "Lookahead planning vs fixed cloud margin (cloudy day, seismic)",
		Header: []string{"planner", "uptime", "GB done", "brownouts", "wear Ah/unit"},
	}
	day := trace.Synthesize(solar.Cloudy, 2015, time.Second).ScaleToPeak(units.Watt(1000))
	for _, useForecast := range []bool{false, true} {
		cfg := sim.DefaultConfig(day)
		sys, err := sim.New(cfg, sim.NewSeismicSink())
		if err != nil {
			panic(err)
		}
		mc := core.DefaultConfig()
		mc.UseForecast = useForecast
		res := sys.Run(core.New(mc, cfg.BatteryCount))
		name := "fixed 25% margin"
		if useForecast {
			name = "clear-sky-ratio forecast"
		}
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%.0f%%", res.UptimeFrac*100),
			f1(res.ProcessedGB),
			fmt.Sprintf("%d", res.Brownouts),
			f2(float64(res.WearAhPerUnit)),
		})
	}
	t.Notes = append(t.Notes, "the paper's stated future work (§6.3): trading battery budget against performance with better supply knowledge")
	return t
}

// ExtEndurance runs a two-week mixed-weather campaign and validates the
// service-life projection against Table 1's 4-year battery design life.
func ExtEndurance(ctx context.Context) *Table {
	t := &Table{
		ID:     "extendurance",
		Title:  "14-day mixed-weather campaign (seismic workload)",
		Header: []string{"manager", "total GB", "wear Ah/unit", "projected life (yr)", "brownouts"},
	}
	for _, name := range []string{"InSURE"} {
		sum, err := endurance.Run(endurance.Campaign{
			Days:      14,
			Seed:      2015,
			PeakWatts: 1000,
			NewSink:   func() sim.Sink { return sim.NewSeismicSink() },
			Manager:   core.New(core.DefaultConfig(), 6),
		})
		if err != nil {
			panic(err)
		}
		t.Rows = append(t.Rows, []string{
			name,
			f0(sum.TotalGB),
			f1(float64(sum.FinalWearAh)),
			f1(sum.ProjectedLifeYears),
			fmt.Sprintf("%d", sum.TotalBrown),
		})
	}
	t.Notes = append(t.Notes, "Table 1 assumes a 4-year battery life; InSURE's management should meet or beat it")
	return t
}

// ExtFaults injects the same mid-day fault storm — a battery unit losing
// 60% of its plates at 12h30m and a discharge relay stuck open at 13h —
// into an InSURE-managed plant and the unified-buffer baseline, and reports
// the availability each keeps. InSURE's fault screens quarantine the
// casualties (Fig 8's Offline state) and re-balance the remaining bank; the
// baseline has no per-unit visibility and just rides whatever the plant
// gives it.
func ExtFaults(ctx context.Context) *Table {
	t := &Table{
		ID:     "extfaults",
		Title:  "Availability under injected faults (high-solar day, seismic)",
		Header: []string{"manager", "uptime", "GB done", "brownouts", "quarantined"},
	}
	const storm = "bat:2@12h30m:0.6,relay-open:4@13h"
	managers := []struct {
		name string
		mk   func(n int) sim.Manager
	}{
		{"InSURE", func(n int) sim.Manager { return core.New(core.DefaultConfig(), n) }},
		{"baseline (unified buffer)", func(n int) sim.Manager { return baseline.New(baseline.DefaultConfig()) }},
	}
	for _, m := range managers {
		cfg := sim.DefaultConfig(trace.FullSystemHigh())
		sys, err := sim.New(cfg, sim.NewSeismicSink())
		if err != nil {
			panic(err)
		}
		plan, err := faults.Parse(storm)
		if err != nil {
			panic(err)
		}
		in := faults.NewInjector(plan, faults.Target{
			Bank:   sys.Bank,
			Fabric: sys.Fabric,
			Probes: sys.Probes,
		})
		sys.SetTickHook(func(tod time.Duration) { in.Tick(tod) })
		mgr := m.mk(cfg.BatteryCount)
		res := sys.Run(mgr)
		quarantined := "-"
		if c, ok := mgr.(*core.Manager); ok {
			quarantined = fmt.Sprintf("%d", c.QuarantinedCount())
		}
		t.Rows = append(t.Rows, []string{
			m.name,
			fmt.Sprintf("%.0f%%", res.UptimeFrac*100),
			f1(res.ProcessedGB),
			fmt.Sprintf("%d", res.Brownouts),
			quarantined,
		})
	}
	t.Notes = append(t.Notes, "graceful degradation: the faulted units are quarantined and the remaining bank re-balanced within one control period")
	return t
}

// ExtSurvival quantifies the energy-emergency mode ladder on the paper's
// 427 W low-generation day with a storm surge taking out most of the bank's
// capacity at midday — the emergency the reactive manager cannot see
// coming. With survivability off the plant crash-browns out and loses VM
// state; the ladder sheds load, checkpoints ahead of depletion, and (with a
// genset fitted) bridges the checkpoint window on diesel.
func ExtSurvival(ctx context.Context) *Table {
	t := &Table{
		ID:     "extsurvival",
		Title:  "Energy-emergency survivability (427 W low-generation day + midday surge, video)",
		Header: []string{"manager", "uptime", "GB done", "brownouts", "VMs lost", "VMs saved", "ladder moves", "fuel $"},
	}
	const surge = "bat:0@15h:0.85,bat:1@15h10m:0.85,bat:2@15h20m:0.85,bat:3@15h30m:0.85,bat:4@15h40m:0.85"
	cases := []struct {
		name     string
		survival bool
		gen      func() *genset.Generator
	}{
		{"reactive (survival off)", false, func() *genset.Generator { return nil }},
		{"survival ladder", true, func() *genset.Generator { return nil }},
		{"survival ladder + diesel", true, func() *genset.Generator { return genset.New(genset.DieselParams()) }},
	}
	for _, c := range cases {
		cfg := sim.DefaultConfig(trace.LowGeneration())
		// Mid-drought posture: the preceding storm days have already pulled
		// the buffer down to its floor region when this day begins.
		cfg.InitialSoC = 0.30
		cfg.Secondary = c.gen()
		sys, err := sim.New(cfg, sim.NewVideoSink())
		if err != nil {
			panic(err)
		}
		plan, err := faults.Parse(surge)
		if err != nil {
			panic(err)
		}
		in := faults.NewInjector(plan, faults.Target{
			Bank:   sys.Bank,
			Fabric: sys.Fabric,
			Probes: sys.Probes,
		})
		sys.SetTickHook(func(tod time.Duration) { in.Tick(tod) })
		mcfg := core.DefaultConfig()
		if c.survival {
			mcfg.Survival = core.DefaultSurvivalConfig()
		}
		mgr := core.New(mcfg, cfg.BatteryCount)
		res := sys.Run(mgr)
		t.Rows = append(t.Rows, []string{
			c.name,
			fmt.Sprintf("%.0f%%", res.UptimeFrac*100),
			f1(res.ProcessedGB),
			fmt.Sprintf("%d", res.Brownouts),
			fmt.Sprintf("%d", res.VMsLost),
			fmt.Sprintf("%d", res.VMsSaved),
			fmt.Sprintf("%d", mgr.ModeTransitions()),
			f2(res.GenFuelCost),
		})
	}
	t.Notes = append(t.Notes, "zero uncheckpointed loss is the survivability contract: the ladder checkpoints before projected depletion instead of reacting to it")
	return t
}

// ExtPriorArt compares InSURE against both prior-art management styles the
// paper discusses: the Parasol/GreenSwitch-style baseline (§6.4) and a
// Blink-style fast power-state tracker ([88]).
func ExtPriorArt(ctx context.Context) *Table {
	t := &Table{
		ID:     "extpriorart",
		Title:  "Prior-art comparison on the constrained budget (500 W, video)",
		Header: []string{"manager", "uptime", "GB done", "GB per kWh", "wear Ah/unit", "brownouts"},
	}
	day := trace.FullSystemLow()
	managers := []struct {
		name string
		mk   func() sim.Manager
	}{
		{"InSURE", func() sim.Manager { return core.New(core.DefaultConfig(), 6) }},
		{"baseline (unified buffer)", func() sim.Manager { return baseline.New(baseline.DefaultConfig()) }},
		{"blink (power-state tracking)", func() sim.Manager { return blink.New(blink.DefaultConfig()) }},
	}
	for _, m := range managers {
		cfg := sim.DefaultConfig(day)
		sys, err := sim.New(cfg, sim.NewVideoSink())
		if err != nil {
			panic(err)
		}
		res := sys.Run(m.mk())
		perKWh := 0.0
		if res.LoadKWh > 0 {
			perKWh = res.ProcessedGB / res.LoadKWh
		}
		t.Rows = append(t.Rows, []string{
			m.name,
			fmt.Sprintf("%.0f%%", res.UptimeFrac*100),
			f1(res.ProcessedGB),
			f1(perKWh),
			f2(float64(res.WearAhPerUnit)),
			fmt.Sprintf("%d", res.Brownouts),
		})
	}
	t.Notes = append(t.Notes, "the paper's related-work claims made concrete: Blink wastes the idle floor; the unified buffer trips protection")
	return t
}

package solar

import (
	"math"
	"testing"
	"time"

	"insure/internal/units"
)

func TestElevationWindow(t *testing.T) {
	if Elevation(3*time.Hour) != 0 {
		t.Error("irradiance before sunrise")
	}
	if Elevation(21*time.Hour) != 0 {
		t.Error("irradiance after sunset")
	}
	noon := Elevation(13*time.Hour + 30*time.Minute)
	if noon < 0.95 {
		t.Errorf("solar-noon elevation = %.3f, want near 1", noon)
	}
	morning := Elevation(8 * time.Hour)
	if morning <= 0 || morning >= noon {
		t.Errorf("morning elevation %.3f should be between 0 and noon %.3f", morning, noon)
	}
}

func TestElevationSymmetry(t *testing.T) {
	mid := Sunrise + (Sunset-Sunrise)/2
	for _, off := range []time.Duration{time.Hour, 2 * time.Hour, 4 * time.Hour} {
		a, b := Elevation(mid-off), Elevation(mid+off)
		if math.Abs(a-b) > 1e-9 {
			t.Errorf("elevation not symmetric at ±%v: %.4f vs %.4f", off, a, b)
		}
	}
}

func dayAverage(cond Condition, seed int64) units.Watt {
	s := NewSupply(cond, seed)
	var total units.WattHour
	ticks := 0
	for tod := Sunrise; tod < Sunset; tod += time.Second {
		p := s.Step(tod, time.Second)
		total += units.Energy(p, time.Second)
		ticks++
	}
	return total.Over(time.Duration(ticks) * time.Second)
}

func TestConditionOrdering(t *testing.T) {
	sunny := dayAverage(Sunny, 1)
	cloudy := dayAverage(Cloudy, 1)
	rainy := dayAverage(Rainy, 1)
	if !(sunny > cloudy && cloudy > rainy) {
		t.Errorf("ordering violated: sunny=%v cloudy=%v rainy=%v", sunny, cloudy, rainy)
	}
}

func TestHighGenerationLevel(t *testing.T) {
	// The paper's high-generation trace averages 1114 W over the daytime
	// window; our sunny day should land in the same regime (±20%).
	avg := float64(dayAverage(Sunny, 7))
	if avg < 1114*0.8 || avg > 1114*1.2 {
		t.Errorf("sunny average %v W outside paper's high-generation regime (~1114 W)", avg)
	}
}

func TestLowGenerationLevel(t *testing.T) {
	// The low-generation trace averages 427 W.
	avg := float64(dayAverage(Rainy, 7))
	if avg < 427*0.5 || avg > 427*1.6 {
		t.Errorf("rainy average %v W far from paper's low-generation regime (~427 W)", avg)
	}
}

func TestSkyDeterminism(t *testing.T) {
	a, b := NewSky(Cloudy, 42), NewSky(Cloudy, 42)
	for tod := Sunrise; tod < Sunrise+time.Hour; tod += time.Second {
		if a.Step(tod, time.Second) != b.Step(tod, time.Second) {
			t.Fatal("equal seeds diverged")
		}
	}
	c := NewSky(Cloudy, 43)
	diverged := false
	a2 := NewSky(Cloudy, 42)
	for tod := Sunrise; tod < Sunrise+2*time.Hour; tod += time.Second {
		if a2.Step(tod, time.Second) != c.Step(tod, time.Second) {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Error("different seeds produced identical traces")
	}
}

func TestCloudyVariability(t *testing.T) {
	// Cloudy days must fluctuate more than sunny days (Fig 15 contrast).
	variability := func(cond Condition) float64 {
		sky := NewSky(cond, 99)
		var prev, sum float64
		n := 0
		for tod := 10 * time.Hour; tod < 16*time.Hour; tod += time.Second {
			v := sky.Step(tod, time.Second)
			if n > 0 {
				sum += math.Abs(v - prev)
			}
			prev = v
			n++
		}
		return sum
	}
	if cv, sv := variability(Cloudy), variability(Sunny); cv <= sv {
		t.Errorf("cloudy variability %.2f not above sunny %.2f", cv, sv)
	}
}

func TestPanelOutput(t *testing.T) {
	p := DefaultPanel()
	if got := p.Output(0); got != 0 {
		t.Errorf("zero irradiance output = %v", got)
	}
	full := p.Output(1)
	if full <= 0 || full > p.Rated {
		t.Errorf("full output %v outside (0, rated]", full)
	}
	if p.Output(2) != full {
		t.Error("irradiance not clamped")
	}
}

func TestMPPTTracksSteadyOptimum(t *testing.T) {
	m := NewMPPT()
	const mpp = 1000
	var got units.Watt
	for i := 0; i < 600; i++ {
		got = m.Step(mpp)
	}
	if float64(got) < 0.95*mpp {
		t.Errorf("steady-state tracking reached only %v of %v W", got, mpp)
	}
}

func TestMPPTZeroInput(t *testing.T) {
	m := NewMPPT()
	if m.Step(0) != 0 {
		t.Error("harvest without irradiance")
	}
}

func TestMPPTNeverExceedsAvailable(t *testing.T) {
	m := NewMPPT()
	for i := 0; i < 1000; i++ {
		mpp := units.Watt(200 + 100*math.Sin(float64(i)/50))
		if got := m.Step(mpp); got > mpp {
			t.Fatalf("harvested %v above available %v", got, mpp)
		}
	}
}

func TestSupplyAccounting(t *testing.T) {
	s := NewSupply(Sunny, 5)
	for tod := Sunrise; tod < Sunset; tod += time.Minute {
		s.Step(tod, time.Minute)
	}
	if s.Harvested() <= 0 {
		t.Fatal("nothing harvested on a sunny day")
	}
	if s.Harvested() > s.Potential() {
		t.Error("harvested exceeds potential")
	}
	eff := s.TrackingEfficiency()
	if eff < 0.7 || eff > 1 {
		t.Errorf("tracking efficiency %.3f implausible", eff)
	}
}

func TestConditionString(t *testing.T) {
	if Sunny.String() != "sunny" || Cloudy.String() != "cloudy" || Rainy.String() != "rainy" {
		t.Error("condition names wrong")
	}
	if Condition(9).String() == "" {
		t.Error("unknown condition should still format")
	}
}

func TestMPPTReactsToStepChange(t *testing.T) {
	m := NewMPPT()
	for i := 0; i < 600; i++ {
		m.Step(1000)
	}
	settled := float64(m.Step(1000))
	// Halve the available power: the tracker must re-converge near the
	// new optimum within a few minutes of perturbation steps.
	var after float64
	for i := 0; i < 600; i++ {
		after = float64(m.Step(500))
	}
	if after < 0.93*500 {
		t.Errorf("tracking after step change = %.0f W of 500", after)
	}
	if settled < 0.95*1000 {
		t.Errorf("initial settle = %.0f W of 1000", settled)
	}
}

func TestSupplyZeroAtNight(t *testing.T) {
	s := NewSupply(Sunny, 4)
	if p := s.Step(2*time.Hour, time.Second); p != 0 {
		t.Errorf("night harvest %v", p)
	}
	if s.TrackingEfficiency() != 1 {
		t.Error("efficiency with no potential should report 1")
	}
}

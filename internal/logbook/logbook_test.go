package logbook

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestAddAndQuery(t *testing.T) {
	b := New(0)
	b.Add(8*time.Hour, Power, "battery#1", "charging relay closed")
	b.Addf(9*time.Hour, Load, "cluster", "target %d VMs", 4)
	b.Add(10*time.Hour, Emergency, "bus", "brownout")
	if b.Len() != 3 {
		t.Fatalf("len = %d", b.Len())
	}
	counts := b.CountByClass()
	if counts[Power] != 1 || counts[Load] != 1 || counts[Emergency] != 1 {
		t.Errorf("counts = %v", counts)
	}
	if got := b.Filter(Emergency); len(got) != 1 || got[0].Subject != "bus" {
		t.Errorf("filter = %v", got)
	}
	subjects := b.Subjects()
	if len(subjects) != 3 || subjects[0] != "battery#1" {
		t.Errorf("subjects = %v", subjects)
	}
}

func TestCapDropsOldest(t *testing.T) {
	b := New(3)
	for i := 0; i < 5; i++ {
		b.Addf(time.Duration(i)*time.Minute, Info, "x", "event %d", i)
	}
	evs := b.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d events, want 3", len(evs))
	}
	if !strings.Contains(evs[0].Detail, "2") {
		t.Errorf("oldest retained = %q, want event 2", evs[0].Detail)
	}
}

func TestWriteText(t *testing.T) {
	b := New(0)
	b.Add(13*time.Hour+5*time.Minute+9*time.Second, Power, "battery#2", "discharge relay closed")
	var buf bytes.Buffer
	if err := b.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "13:05:09") || !strings.Contains(out, "battery#2") {
		t.Errorf("text output %q", out)
	}
}

func TestWriteCSV(t *testing.T) {
	b := New(0)
	b.Add(time.Hour, Load, "cluster", "duty 0.8")
	var buf bytes.Buffer
	if err := b.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	if lines[0] != "seconds,class,subject,detail" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "3600,load,cluster") {
		t.Errorf("row = %q", lines[1])
	}
}

func TestConcurrentLogging(t *testing.T) {
	b := New(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				b.Addf(time.Duration(i)*time.Second, Class(g%4), "worker", "n=%d", i)
			}
		}(g)
	}
	wg.Wait()
	if b.Len() != 1600 {
		t.Errorf("len = %d, want 1600", b.Len())
	}
}

func TestClassString(t *testing.T) {
	for c, want := range map[Class]string{Info: "info", Power: "power", Load: "load", Emergency: "emergency"} {
		if c.String() != want {
			t.Errorf("class %d = %q", c, c.String())
		}
	}
	if Class(9).String() == "" {
		t.Error("unknown class should format")
	}
}

package genset

import (
	"testing"
	"time"

	"insure/internal/units"
)

func TestKindString(t *testing.T) {
	if Diesel.String() != "diesel" || FuelCell.String() != "fuel-cell" {
		t.Error("kind names wrong")
	}
	if Kind(7).String() == "" {
		t.Error("unknown kind should format")
	}
}

func TestStoppedDeliversNothing(t *testing.T) {
	g := New(DieselParams())
	if got := g.Step(500, time.Second); got != 0 {
		t.Errorf("stopped generator delivered %v", got)
	}
	if g.FuelCost() != 0 {
		t.Error("stopped generator burned fuel")
	}
}

func TestStartDelay(t *testing.T) {
	g := New(DieselParams())
	g.Start()
	if g.Available() {
		t.Error("diesel available instantly")
	}
	if got := g.Step(500, 5*time.Second); got != 0 {
		t.Errorf("delivered %v while warming", got)
	}
	g.Step(500, 15*time.Second)
	if got := g.Step(500, time.Second); got != 500 {
		t.Errorf("post-warmup delivery = %v, want 500", got)
	}
	if !g.Available() {
		t.Error("not available after warmup")
	}
}

func TestDoubleStartIsOneStart(t *testing.T) {
	g := New(DieselParams())
	g.Start()
	g.Start()
	if g.Starts() != 1 {
		t.Errorf("starts = %d", g.Starts())
	}
	g.Stop()
	g.Start()
	if g.Starts() != 2 {
		t.Errorf("starts after restart = %d", g.Starts())
	}
}

func TestOutputCappedAtRated(t *testing.T) {
	g := New(DieselParams())
	g.Start()
	g.Step(0, time.Minute) // warm up
	if got := g.Step(99999, time.Second); got != g.Params().Rated {
		t.Errorf("output %v, want rated %v", got, g.Params().Rated)
	}
	if got := g.Step(-5, time.Second); got != 0 {
		t.Errorf("negative demand delivered %v", got)
	}
}

func TestMinLoadFuelBurn(t *testing.T) {
	// Running a diesel at 5% load must burn fuel as if at 30% (wet
	// stacking floor), so $/kWh-delivered degrades at light load.
	g := New(DieselParams())
	g.Start()
	g.Step(0, time.Minute)
	baseFuel := g.FuelCost()
	light := units.Watt(0.05 * float64(g.Params().Rated))
	for i := 0; i < 3600; i++ {
		g.Step(light, time.Second)
	}
	fuel := g.FuelCost() - baseFuel
	delivered := units.Energy(light, time.Hour)
	perKWh := fuel / delivered.KWh()
	if perKWh < 2*g.Params().FuelPerKWh {
		t.Errorf("light-load $/kWh = %.2f, want well above the rated %.2f", perKWh, g.Params().FuelPerKWh)
	}
}

func TestFuelCellCheaperPerKWh(t *testing.T) {
	run := func(p Params) float64 {
		g := New(p)
		g.Start()
		g.Step(0, 10*time.Minute) // cover both warmups
		for i := 0; i < 3600; i++ {
			g.Step(1000, time.Second)
		}
		return g.FuelCost() / g.Delivered().KWh()
	}
	if d, fc := run(DieselParams()), run(FuelCellParams()); fc >= d {
		t.Errorf("fuel cell $/kWh (%.2f) not below diesel (%.2f) — Table 1 contrast", fc, d)
	}
}

func TestRunTimeAndService(t *testing.T) {
	p := DieselParams()
	p.MaintenanceInterval = time.Hour
	g := New(p)
	g.Start()
	for i := 0; i < 3601; i++ {
		g.Step(500, time.Second)
	}
	if !g.ServiceDue() {
		t.Error("service not due after exceeding the interval")
	}
	if g.RunTime() < time.Hour {
		t.Errorf("run time = %v", g.RunTime())
	}
}

// TestRampInEnergyTickInvariant pins the start-delay accounting across tick
// boundaries: however the simulation slices time, a start delivers exactly
// (total − StartDelay) × demand of energy — a partial-tick start must not
// emit free energy during warm-up, nor swallow the post-warm-up remainder
// of its tick.
func TestRampInEnergyTickInvariant(t *testing.T) {
	const demand = units.Watt(1000) // 50% load: above the min-load floor
	cases := []struct {
		name  string
		tick  time.Duration
		ticks int
	}{
		{"fine 1s", time.Second, 60},
		{"3s", 3 * time.Second, 20},
		{"5s", 5 * time.Second, 12},
		{"delay-aligned 15s", 15 * time.Second, 4},
		{"control-period 30s", 30 * time.Second, 2},
		{"single coarse 60s", time.Minute, 1},
		{"non-divisor 7s", 7 * time.Second, 9}, // 63 s total
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g := New(DieselParams())
			g.Start()
			var integrated units.WattHour
			for i := 0; i < c.ticks; i++ {
				got := g.Step(demand, c.tick)
				integrated += units.Energy(got, c.tick)
			}
			total := time.Duration(c.ticks) * c.tick
			want := units.Energy(demand, total-g.Params().StartDelay)
			if diff := float64(g.Delivered() - want); diff > 1e-9 || diff < -1e-9 {
				t.Errorf("delivered %.6f Wh over %v in %v ticks, want %.6f",
					float64(g.Delivered()), total, c.tick, float64(want))
			}
			// The tick-averaged return values must integrate to the same
			// energy the generator accounts internally.
			if diff := float64(integrated - g.Delivered()); diff > 1e-9 || diff < -1e-9 {
				t.Errorf("integrated return %.6f Wh, internal accounting %.6f",
					float64(integrated), float64(g.Delivered()))
			}
			// Fuel is idle burn (same total run time) plus per-kWh burn on
			// the same energy, so it must agree across tick sizes too.
			wantFuel := g.Params().IdleFuelPerHour*total.Hours() +
				g.Params().FuelPerKWh*want.KWh()
			if diff := g.FuelCost() - wantFuel; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("fuel $%.6f, want $%.6f", g.FuelCost(), wantFuel)
			}
		})
	}
}

func TestMinLoadWasteIsTracked(t *testing.T) {
	g := New(DieselParams())
	g.Start()
	g.Step(0, g.Params().StartDelay) // exactly consume the warm-up
	for i := 0; i < 3600; i++ {
		g.Step(0, time.Second)
	}
	// Zero demand for an hour at a 30% min-load floor on 2 kW: 600 Wh dumped.
	want := units.Energy(units.Watt(0.3*float64(g.Params().Rated)), time.Hour)
	if diff := float64(g.Wasted() - want); diff > 1e-6 || diff < -1e-6 {
		t.Errorf("wasted %.3f Wh, want %.3f", float64(g.Wasted()), float64(want))
	}
	if g.Delivered() != 0 {
		t.Errorf("delivered %.3f Wh with zero demand", float64(g.Delivered()))
	}
}

func TestStopCutsOutput(t *testing.T) {
	g := New(FuelCellParams())
	g.Start()
	g.Step(0, 10*time.Minute)
	if g.Step(800, time.Second) != 800 {
		t.Fatal("warm fuel cell should deliver")
	}
	g.Stop()
	if g.Step(800, time.Second) != 0 {
		t.Error("stopped generator still delivering")
	}
}

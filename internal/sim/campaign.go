package sim

import (
	"context"
	"fmt"
	"runtime/debug"
)

// CampaignRun is one independent simulation in a campaign: a named factory
// that builds a fully-wired System plus the Manager to drive it. The factory
// runs inside a pool worker, so every run gets its own plant, RNG, recorder,
// and logbook state — nothing is shared between runs except whatever
// immutable inputs (e.g. a replayed trace.Trace) the caller closes over.
//
// The factory receives the executing worker's Arena. Passing it into
// Config.Arena lets the run reuse the worker's cached solar LUTs and
// recycled recorders; ignoring it (or a nil arena) is always valid.
type CampaignRun struct {
	Name  string
	Setup func(a *Arena) (*System, Manager, error)

	// Transient marks a run whose System does not outlive its campaign
	// cell — the caller consumes only the returned Result. The engine then
	// recycles the System's recorder into the worker's arena for the next
	// run. Leave it false when Setup lets the *System escape (pointer
	// capture, recorded frames read after the campaign).
	Transient bool
}

// RunCampaign executes the runs on the work-stealing cell pool and returns
// their Results in input order. workers <= 0 means GOMAXPROCS; workers == 1
// runs serially inline. When called from inside another campaign cell, the
// runs join the enclosing pool so idle workers steal them (see RunCells).
//
// Each run is deterministic in isolation, so the positional result slice is
// byte-for-byte identical to running the campaign serially — the paper's
// paired-trace methodology (§5) depends on that. A run that panics is
// converted into an error carrying the run name and stack; the first error
// (in input order) cancels the campaign and is returned after every cell
// has either finished or been marked cancelled. On error the partial
// results are discarded — the caller gets (nil, err), never a mix of real
// and zero Results.
func RunCampaign(ctx context.Context, workers int, runs []CampaignRun) ([]Result, error) {
	results := make([]Result, len(runs))
	err := RunCells(ctx, workers, len(runs), func(_ context.Context, i int, a *Arena) error {
		return runCampaignOne(&runs[i], &results[i], a)
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// runCampaignOne executes one run on worker arena a, converting a panic
// into an error so a misconfigured experiment fails its campaign instead of
// killing the process.
func runCampaignOne(run *CampaignRun, res *Result, a *Arena) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sim: campaign run %q panicked: %v\n%s", run.Name, r, debug.Stack())
		}
	}()
	sys, mgr, err := run.Setup(a)
	if err != nil {
		return fmt.Errorf("sim: campaign run %q: %w", run.Name, err)
	}
	*res = sys.Run(mgr)
	if run.Transient {
		a.recycleSystem(sys)
	}
	return nil
}

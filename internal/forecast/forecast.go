// Package forecast provides short-horizon solar power forecasting for
// lookahead power planning — the paper's stated future work ("By setting a
// more restrictive budget, one can further extend battery lifetime but may
// incur slight performance degradation. Exploring this tradeoff is our
// future work", §6.3).
//
// The estimator is a clear-sky-ratio model, the standard baseline in solar
// forecasting: it learns the current attenuation of the deterministic
// clear-sky curve from recent observations and projects that ratio
// forward. It needs no future knowledge, so managers can use it without
// breaking causality.
package forecast

import (
	"math"
	"time"

	"insure/internal/solar"
	"insure/internal/units"
)

// Estimator learns the sky state online from power observations.
type Estimator struct {
	// Capacity is the installed clear-sky peak (panel rated × derate).
	Capacity units.Watt
	// Tau is the smoothing time constant for the clear-sky ratio.
	Tau time.Duration

	ratio    float64 // smoothed observed/clear-sky ratio
	haveObs  bool
	variance float64 // smoothed squared deviation of the ratio
}

// NewEstimator returns an estimator for the given installed capacity.
func NewEstimator(capacity units.Watt) *Estimator {
	return &Estimator{Capacity: capacity, Tau: 10 * time.Minute, ratio: 1}
}

// clearSky is the deterministic expected power at time-of-day tod.
func (e *Estimator) clearSky(tod time.Duration) units.Watt {
	return units.Watt(float64(e.Capacity) * solar.Elevation(tod))
}

// Observe feeds one measurement taken at time-of-day tod over interval dt.
func (e *Estimator) Observe(tod time.Duration, observed units.Watt, dt time.Duration) {
	cs := e.clearSky(tod)
	if cs < 20 {
		return // dawn/dusk readings carry no sky information
	}
	r := units.Clamp(float64(observed)/float64(cs), 0, 1.2)
	if !e.haveObs {
		e.ratio = r
		e.haveObs = true
		return
	}
	alpha := 1 - math.Exp(-dt.Seconds()/e.Tau.Seconds())
	dev := r - e.ratio
	e.ratio += dev * alpha
	e.variance += (dev*dev - e.variance) * alpha
}

// Ratio returns the current clear-sky ratio estimate in [0, 1.2].
func (e *Estimator) Ratio() float64 { return e.ratio }

// Uncertainty returns the ratio's recent standard deviation — a direct
// measure of how fluctuating the sky is (the paper's Region-E detector).
func (e *Estimator) Uncertainty() float64 { return math.Sqrt(math.Max(0, e.variance)) }

// Predict returns the expected power at time-of-day tod (possibly in the
// future) under the current sky state.
func (e *Estimator) Predict(tod time.Duration) units.Watt {
	return units.Watt(float64(e.clearSky(tod)) * e.ratio)
}

// PredictWindow integrates the forecast over [from, from+horizon).
func (e *Estimator) PredictWindow(from, horizon time.Duration) units.WattHour {
	var total units.WattHour
	const step = time.Minute
	for t := from; t < from+horizon; t += step {
		total += units.Energy(e.Predict(t), step)
	}
	return total
}

// ConservativePredict discounts the forecast by k standard deviations of
// the observed ratio, floored at a 10% ratio. Lookahead planners use this
// to avoid committing load against an unstable sky.
func (e *Estimator) ConservativePredict(tod time.Duration, k float64) units.Watt {
	r := math.Max(0.1, e.ratio-k*e.Uncertainty())
	return units.Watt(float64(e.clearSky(tod)) * r)
}

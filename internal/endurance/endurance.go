// Package endurance runs multi-day deployment campaigns: the same battery
// bank and power manager operate through a sequence of weather days, so
// wear accumulates exactly as it would in the field. This is how the
// paper's service-life claims (Fig 19, Table 1's 4-year battery life) are
// validated beyond single-day extrapolation.
package endurance

import (
	"fmt"
	"math/rand"
	"time"

	"insure/internal/battery"
	"insure/internal/sim"
	"insure/internal/solar"
	"insure/internal/trace"
	"insure/internal/units"
)

// Climate generates a weather sequence for a site.
type Climate struct {
	// SunnyFrac, CloudyFrac give the long-run day-type mix; the remainder
	// is rainy. Typical temperate site: 0.5/0.3/0.2.
	SunnyFrac, CloudyFrac float64
	rng                   *rand.Rand
}

// NewClimate returns a reproducible climate.
func NewClimate(sunny, cloudy float64, seed int64) *Climate {
	return &Climate{SunnyFrac: sunny, CloudyFrac: cloudy, rng: rand.New(rand.NewSource(seed))}
}

// Day draws the weather for one day.
func (c *Climate) Day() solar.Condition {
	r := c.rng.Float64()
	switch {
	case r < c.SunnyFrac:
		return solar.Sunny
	case r < c.SunnyFrac+c.CloudyFrac:
		return solar.Cloudy
	default:
		return solar.Rainy
	}
}

// DayOutcome summarises one campaign day.
type DayOutcome struct {
	Day       int
	Weather   solar.Condition
	Result    sim.Result
	WearAh    units.AmpHour // cumulative per-unit wear at end of day
	MeanSoC   float64       // bank state at end of day
	Processed float64       // GB this day
}

// Campaign is a multi-day run configuration.
type Campaign struct {
	// Days is the campaign length.
	Days int
	// Climate draws each day's weather.
	Climate *Climate
	// Seed anchors per-day trace synthesis.
	Seed int64
	// PeakWatts scales each day's trace (0 = natural).
	PeakWatts float64
	// NewSink builds a fresh workload for each day (data arrives daily).
	NewSink func() sim.Sink
	// Manager persists across the whole campaign.
	Manager sim.Manager
}

// Summary aggregates a finished campaign.
type Summary struct {
	Days        []DayOutcome
	TotalGB     float64
	TotalBrown  int
	FinalWearAh units.AmpHour // per-unit, wear-weighted
	// ProjectedLifeYears extrapolates the campaign's daily wear rate
	// against the units' lifetime throughput.
	ProjectedLifeYears float64
}

// Run executes the campaign and returns per-day outcomes plus aggregates.
func Run(c Campaign) (*Summary, error) {
	if c.Days <= 0 {
		return nil, fmt.Errorf("endurance: campaign length %d must be positive", c.Days)
	}
	if c.NewSink == nil || c.Manager == nil {
		return nil, fmt.Errorf("endurance: campaign needs a sink factory and a manager")
	}
	if c.Climate == nil {
		c.Climate = NewClimate(0.5, 0.3, c.Seed)
	}

	params := battery.DefaultParams()
	bank, err := battery.NewBank(params, 6, 0.5)
	if err != nil {
		return nil, err
	}

	s := &Summary{}
	var prevProcessed float64
	for day := 0; day < c.Days; day++ {
		cond := c.Climate.Day()
		tr := trace.Synthesize(cond, c.Seed+int64(day), time.Second)
		if c.PeakWatts > 0 {
			tr = tr.ScaleToPeak(units.Watt(c.PeakWatts))
		}
		cfg := sim.DefaultConfig(tr)
		cfg.Bank = bank
		sys, err := sim.New(cfg, c.NewSink())
		if err != nil {
			return nil, err
		}
		res := sys.Run(c.Manager)

		wear := bank.TotalThroughput() / units.AmpHour(bank.Size())
		out := DayOutcome{
			Day:       day,
			Weather:   cond,
			Result:    res,
			WearAh:    wear,
			MeanSoC:   bank.MeanSoC(),
			Processed: res.ProcessedGB,
		}
		_ = prevProcessed
		s.Days = append(s.Days, out)
		s.TotalGB += res.ProcessedGB
		s.TotalBrown += res.Brownouts
	}
	s.FinalWearAh = bank.TotalThroughput() / units.AmpHour(bank.Size())
	if daily := float64(s.FinalWearAh) / float64(c.Days); daily > 0 {
		s.ProjectedLifeYears = float64(params.LifetimeAh) / daily / 365
	}
	return s, nil
}

// Hybrid site study: the paper motivates standalone *wind/solar* systems
// (§2.2) and sketches an optional secondary power feed (Fig 6). This
// example plans a difficult site — frequent rain, weak sun — by comparing
// solar-only, wind-assisted, and generator-backed deployments on identical
// days.
package main

import (
	"fmt"
	"log"

	"insure"
)

func main() {
	fmt.Println("Deployment options for a rain-prone site (video surveillance)")
	fmt.Println()
	fmt.Printf("%-22s %8s %9s %11s %10s %10s\n",
		"configuration", "uptime", "GB done", "delay (min)", "fuel $", "wind kWh")

	configs := []struct {
		name string
		cfg  insure.Config
	}{
		{"solar only", insure.Config{}},
		{"solar + wind (windy)", insure.Config{Wind: insure.WindWindy}},
		{"solar + diesel backup", insure.Config{Backup: insure.BackupDiesel}},
		{"solar + fuel cell", insure.Config{Backup: insure.BackupFuelCell}},
		{"wind + fuel cell", insure.Config{Wind: insure.WindModerate, Backup: insure.BackupFuelCell}},
	}
	for _, c := range configs {
		c.cfg.Day = insure.Day{Weather: insure.Rainy, PeakWatts: 400}
		c.cfg.Workload = insure.SurveillanceWorkload()
		r, err := insure.Run(c.cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %7.1f%% %9.1f %11.1f %10.2f %10.2f\n",
			c.name, r.UptimeFrac*100, r.ProcessedGB, r.DelayMinutes, r.GenFuelCost, r.WindKWh)
	}

	fmt.Println()
	fmt.Println("Wind fills solar droughts for free once installed; the generator buys")
	fmt.Println("certainty at fuel cost. The InSURE manager keeps renewables primary in")
	fmt.Println("every configuration (Fig 7's energy-flow modes).")
}

package genset

import (
	"strings"
	"testing"
	"time"

	"insure/internal/telemetry"
)

func TestTelemetryMirrorsGeneratorState(t *testing.T) {
	reg := telemetry.NewRegistry()
	g := New(DieselParams())
	g.AttachTelemetry(reg)

	g.Start()
	g.Step(0, g.Params().StartDelay)
	for i := 0; i < 60; i++ {
		g.Step(1000, time.Second)
	}

	if got := g.tel.starts.Value(); got != int64(g.Starts()) {
		t.Errorf("starts counter %d, generator reports %d", got, g.Starts())
	}
	if got := g.tel.delivered.Value(); got != float64(g.Delivered()) {
		t.Errorf("delivered gauge %v, generator reports %v", got, float64(g.Delivered()))
	}
	if got := g.tel.fuel.Value(); got != g.FuelCost() {
		t.Errorf("fuel gauge %v, generator reports %v", got, g.FuelCost())
	}
	if got := g.tel.running.Value(); got != 1 {
		t.Errorf("running gauge %v while running", got)
	}
	g.Stop()
	g.Step(1000, time.Second)
	if got := g.tel.running.Value(); got != 0 {
		t.Errorf("running gauge %v after stop", got)
	}
	if got := g.tel.output.Value(); got != 0 {
		t.Errorf("output gauge %v after stop", got)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{
		"insure_genset_starts_total",
		"insure_genset_running",
		"insure_genset_output_watts",
		"insure_genset_run_hours",
		"insure_genset_fuel_dollars",
		"insure_genset_delivered_watt_hours",
		"insure_genset_wasted_watt_hours",
	} {
		if !strings.Contains(sb.String(), series) {
			t.Errorf("exposition is missing %s", series)
		}
	}
}

// TestAttachAfterStartsReplaysCounter covers recovery ordering: a generator
// that already started (state restored before telemetry attached) must not
// report zero lifetime starts.
func TestAttachAfterStartsReplaysCounter(t *testing.T) {
	g := New(DieselParams())
	g.Start()
	g.Stop()
	g.Start()
	reg := telemetry.NewRegistry()
	g.AttachTelemetry(reg)
	if got := g.tel.starts.Value(); got != 2 {
		t.Errorf("starts counter %d after late attach, want 2", got)
	}
}

package genset

import (
	"insure/internal/telemetry"
	"insure/internal/units"
)

// gensetTelemetry holds the pre-registered instruments Step writes. All
// instruments are resolved once in AttachTelemetry so the per-tick publish
// is pure atomic stores — the zero-alloc tick invariant covers a telemetered
// generator too.
type gensetTelemetry struct {
	starts    *telemetry.Counter
	running   *telemetry.Gauge
	output    *telemetry.Gauge
	runHours  *telemetry.Gauge
	fuel      *telemetry.Gauge
	delivered *telemetry.Gauge
	wasted    *telemetry.Gauge
}

// AttachTelemetry registers the generator's instruments on reg. Call it
// once, before the first Step; the gauges are published by whichever
// goroutine steps the generator, with atomic stores, so a concurrent
// /metrics scrape never races with the simulation.
func (g *Generator) AttachTelemetry(reg *telemetry.Registry) {
	t := &gensetTelemetry{
		starts: reg.Counter("insure_genset_starts_total",
			"Generator start commands issued (each start stresses the machine)."),
		running: reg.Gauge("insure_genset_running",
			"1 while the generator is commanded on (including warm-up), else 0."),
		output: reg.Gauge("insure_genset_output_watts",
			"Power the generator delivered this tick, tick-averaged, watts."),
		runHours: reg.Gauge("insure_genset_run_hours",
			"Cumulative generator run time, hours (drives the maintenance budget)."),
		fuel: reg.Gauge("insure_genset_fuel_dollars",
			"Cumulative fuel spend, dollars (idle burn plus per-kWh burn)."),
		delivered: reg.Gauge("insure_genset_delivered_watt_hours",
			"Cumulative energy the generator delivered to the load bus, watt-hours."),
		wasted: reg.Gauge("insure_genset_wasted_watt_hours",
			"Cumulative energy dumped to hold the governor's minimum load, watt-hours."),
	}
	// Bring the registry up to the generator's lifetime count. The delta
	// form keeps re-attachment (multi-day campaigns register each day's
	// plant on one registry) from double counting.
	if d := int64(g.starts) - t.starts.Value(); d > 0 {
		t.starts.Add(d)
	}
	g.tel = t
}

// publish mirrors the generator state into the gauges at the end of a Step.
func (t *gensetTelemetry) publish(g *Generator, out units.Watt) {
	run := 0.0
	if g.running {
		run = 1
	}
	t.running.Set(run)
	t.output.Set(float64(out))
	t.runHours.Set(g.runTime.Hours())
	t.fuel.Set(g.fuelCost)
	t.delivered.Set(float64(g.delivered))
	t.wasted.Set(float64(g.wasted))
}

package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("insure_test_total", "a counter")
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters only go up
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("insure_test_gauge", "a gauge")
	g.Set(3.25)
	if got := g.Value(); got != 3.25 {
		t.Fatalf("gauge = %v, want 3.25", got)
	}
	f := r.FuncGauge("insure_test_func", "a func gauge", func() float64 { return 42 })
	if got := f.Value(); got != 42 {
		t.Fatalf("func gauge = %v, want 42", got)
	}
}

func TestRegistryDeduplicatesById(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("insure_dup_total", "dup", Label{"unit", "1"})
	b := r.Counter("insure_dup_total", "dup", Label{"unit", "1"})
	if a != b {
		t.Fatal("same id should return the same counter")
	}
	other := r.Counter("insure_dup_total", "dup", Label{"unit", "2"})
	if a == other {
		t.Fatal("different label set should be a different counter")
	}
}

func TestRegistryTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("insure_conflict", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on type conflict")
		}
	}()
	r.Gauge("insure_conflict", "x")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("insure_lat_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	count, cum := h.snapshotCounts()
	if count != 4 {
		t.Fatalf("count = %d, want 4", count)
	}
	want := []int64{1, 2, 3, 4}
	for i, w := range want {
		if cum[i] != w {
			t.Fatalf("cumulative[%d] = %d, want %d (all %v)", i, cum[i], w, cum)
		}
	}
	if got := h.Sum(); math.Abs(got-5.555) > 1e-12 {
		t.Fatalf("sum = %v, want 5.555", got)
	}
}

func TestHistogramRejectsBadBuckets(t *testing.T) {
	r := NewRegistry()
	for _, buckets := range [][]float64{nil, {}, {1, 0.5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("buckets %v should panic", buckets)
				}
			}()
			r.Histogram("insure_bad_seconds", "bad", buckets)
		}()
	}
}

// TestConcurrentIncObserve hammers every instrument from many goroutines;
// run under -race this is the registry's data-race proof, and the final
// totals prove no increment was lost.
func TestConcurrentIncObserve(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("insure_conc_total", "c")
	g := r.Gauge("insure_conc_gauge", "g")
	h := r.Histogram("insure_conc_seconds", "h", []float64{0.5})
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Set(float64(i))
				h.Observe(float64(i%2) * 0.9)
				r.SetClock(time.Duration(i) * time.Second)
			}
		}(w)
	}
	// Concurrent readers: scrape and snapshot while writers run.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			_ = r.WritePrometheus(&strings.Builder{})
			s := r.Snapshot()
			hs := s.Histograms["insure_conc_seconds"]
			// Consistency contract: count is loaded first, buckets after,
			// so the +Inf cumulative total can never be behind the count.
			if len(hs.Cumulative) > 0 && hs.Cumulative[len(hs.Cumulative)-1] < hs.Count {
				t.Errorf("histogram +Inf %d < count %d mid-flight",
					hs.Cumulative[len(hs.Cumulative)-1], hs.Count)
			}
		}
	}()
	wg.Wait()
	<-done
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got := h.Count(); got != workers*per {
		t.Fatalf("histogram count = %d, want %d", got, workers*per)
	}
	count, cum := h.snapshotCounts()
	if cum[len(cum)-1] != count {
		t.Fatalf("quiesced histogram buckets %v != count %d", cum, count)
	}
}

// TestHotPathAllocFree pins the instrumentation primitives at zero
// allocations — the property that lets them live inside the simulation's
// zero-alloc steady-state tick.
func TestHotPathAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("insure_alloc_total", "c")
	g := r.Gauge("insure_alloc_gauge", "g")
	h := r.Histogram("insure_alloc_seconds", "h", DefTimeBuckets)
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(1.5)
		h.Observe(0.003)
		r.SetClock(time.Second)
	}); n != 0 {
		t.Fatalf("hot path allocates %.2f times per op, want 0", n)
	}
}

func TestSnapshotValues(t *testing.T) {
	r := NewRegistry()
	r.SetClock(90 * time.Second)
	r.Counter("insure_snap_total", "c", Label{"unit", "3"}).Add(7)
	r.Gauge("insure_snap_gauge", "g").Set(-2.5)
	h := r.Histogram("insure_snap_seconds", "h", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(3)
	s := r.Snapshot()
	if s.SimClockSeconds != 90 {
		t.Errorf("clock = %v", s.SimClockSeconds)
	}
	if s.Counters[`insure_snap_total{unit="3"}`] != 7 {
		t.Errorf("counters = %v", s.Counters)
	}
	if s.Gauges["insure_snap_gauge"] != -2.5 {
		t.Errorf("gauges = %v", s.Gauges)
	}
	hs := s.Histograms["insure_snap_seconds"]
	if hs.Count != 2 || hs.Sum != 3.5 || len(hs.Cumulative) != 3 ||
		hs.Cumulative[0] != 1 || hs.Cumulative[2] != 2 {
		t.Errorf("histogram snapshot = %+v", hs)
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	r := NewRegistry()
	r.Counter("insure_json_total", "c").Inc()
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"insure_json_total": 1`) {
		t.Errorf("json = %s", b.String())
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Gauge("insure_esc_gauge", "g", Label{"path", `a"b\c` + "\n"}).Set(1)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `insure_esc_gauge{path="a\"b\\c\n"} 1`) {
		t.Errorf("exposition = %s", b.String())
	}
}

// TestExpositionGolden pins the exact text format for a small registry,
// so accidental format drift is caught.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.SetClock(30 * time.Second)
	r.Counter("insure_golden_total", "Golden counter.", Label{"unit", "0"}).Add(3)
	r.Gauge("insure_golden_soc", "Golden gauge.").Set(0.75)
	h := r.Histogram("insure_golden_seconds", "Golden histogram.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP insure_sim_clock_seconds Monotonic simulation clock shared with the logbook.
# TYPE insure_sim_clock_seconds gauge
insure_sim_clock_seconds 30
# HELP insure_golden_seconds Golden histogram.
# TYPE insure_golden_seconds histogram
insure_golden_seconds_bucket{le="0.1"} 1
insure_golden_seconds_bucket{le="1"} 2
insure_golden_seconds_bucket{le="+Inf"} 2
insure_golden_seconds_sum 0.55
insure_golden_seconds_count 2
# HELP insure_golden_soc Golden gauge.
# TYPE insure_golden_soc gauge
insure_golden_soc 0.75
# HELP insure_golden_total Golden counter.
# TYPE insure_golden_total counter
insure_golden_total{unit="0"} 3
`
	if b.String() != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", b.String(), want)
	}
}

// Package faults is the deterministic fault-injection layer for the InSURE
// control plane.
//
// The paper's reliability argument (§2.3, Fig 8's Offline state) rests on
// the coordinator noticing a misbehaving battery position and taking it out
// of rotation. This package supplies the misbehaviour: scheduled, exactly
// reproducible hardware faults — transducers that stick or drift, relays
// that weld closed or seize open, battery units that lose capacity mid-day,
// and a control panel whose Modbus sessions drop. A fault plan is a plain
// list of (time, kind, unit, magnitude) events, so two runs with the same
// plan see bit-identical fault timing; there is no randomness to seed away.
package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"insure/internal/battery"
	"insure/internal/relay"
	"insure/internal/sensor"
)

// Kind classifies an injectable fault.
type Kind int

const (
	// SensorStick freezes the unit's current transducer at its last
	// register code (a dead output stage).
	SensorStick Kind = iota
	// SensorDrift walks the unit's voltage transducer off calibration by
	// Magnitude volts of analog offset.
	SensorDrift
	// RelayStuckOpen seizes the unit's discharge relay armature: it never
	// closes again, so the unit silently stops serving load.
	RelayStuckOpen
	// RelayWeldClosed welds the unit's discharge relay contact: it can no
	// longer open, so the unit stays on the bus against commands.
	RelayWeldClosed
	// BatteryFail removes Magnitude (fraction) of the unit's capacity at
	// once — a shorted cell or sudden plate failure mid-day.
	BatteryFail
	// PanelDrop severs every live Modbus session on the control panel,
	// forcing clients to reconnect.
	PanelDrop
)

func (k Kind) String() string {
	switch k {
	case SensorStick:
		return "stick"
	case SensorDrift:
		return "drift"
	case RelayStuckOpen:
		return "relay-open"
	case RelayWeldClosed:
		return "relay-weld"
	case BatteryFail:
		return "bat"
	case PanelDrop:
		return "drop"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one scheduled fault.
type Event struct {
	// At is the time-of-day the fault lands.
	At time.Duration
	// Kind selects the failure mechanism.
	Kind Kind
	// Unit is the battery position the fault hits (ignored by PanelDrop).
	Unit int
	// Magnitude parameterises the fault: capacity-loss fraction for
	// BatteryFail, analog offset volts for SensorDrift. Zero picks the
	// kind's default (0.6 loss, 0.5 V).
	Magnitude float64
}

func (e Event) String() string {
	switch e.Kind {
	case PanelDrop:
		return fmt.Sprintf("%v@%v", e.Kind, e.At)
	case BatteryFail, SensorDrift:
		return fmt.Sprintf("%v:%d@%v:%g", e.Kind, e.Unit, e.At, e.Magnitude)
	default:
		return fmt.Sprintf("%v:%d@%v", e.Kind, e.Unit, e.At)
	}
}

// Plan is a fault schedule, ordered by time.
type Plan []Event

// Sorted returns a copy of the plan in injection order (stable by At).
func (p Plan) Sorted() Plan {
	out := append(Plan(nil), p...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// defaults fills zero magnitudes with the kind's default severity.
func (e Event) withDefaults() Event {
	if e.Magnitude == 0 {
		switch e.Kind {
		case BatteryFail:
			e.Magnitude = 0.6
		case SensorDrift:
			e.Magnitude = 0.5
		}
	}
	return e
}

// Parse decodes a fault plan from its command-line form: comma-separated
// events of the shape kind[:unit]@time[:magnitude], e.g.
//
//	bat:2@12h30m,relay-open:4@13h,stick:0@10h,drift:1@11h:0.25,drop@14h
//
// Times are Go durations measured from midnight. PanelDrop takes no unit;
// every other kind requires one. Magnitude defaults to 0.6 for bat (fraction
// of capacity lost) and 0.5 for drift (analog volts).
func Parse(spec string) (Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var plan Plan
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		head, tail, ok := strings.Cut(part, "@")
		if !ok {
			return nil, fmt.Errorf("faults: %q: missing @time", part)
		}
		var e Event
		kindName, unitStr, hasUnit := strings.Cut(head, ":")
		switch kindName {
		case "stick":
			e.Kind = SensorStick
		case "drift":
			e.Kind = SensorDrift
		case "relay-open":
			e.Kind = RelayStuckOpen
		case "relay-weld":
			e.Kind = RelayWeldClosed
		case "bat":
			e.Kind = BatteryFail
		case "drop":
			e.Kind = PanelDrop
		default:
			return nil, fmt.Errorf("faults: %q: unknown kind %q", part, kindName)
		}
		if e.Kind == PanelDrop {
			if hasUnit {
				return nil, fmt.Errorf("faults: %q: drop takes no unit", part)
			}
		} else {
			if !hasUnit {
				return nil, fmt.Errorf("faults: %q: missing unit", part)
			}
			u, err := strconv.Atoi(unitStr)
			if err != nil || u < 0 {
				return nil, fmt.Errorf("faults: %q: bad unit %q", part, unitStr)
			}
			e.Unit = u
		}
		atStr, magStr, hasMag := strings.Cut(tail, ":")
		at, err := time.ParseDuration(atStr)
		if err != nil || at < 0 {
			return nil, fmt.Errorf("faults: %q: bad time %q", part, atStr)
		}
		e.At = at
		if hasMag {
			m, err := strconv.ParseFloat(magStr, 64)
			if err != nil || m <= 0 {
				return nil, fmt.Errorf("faults: %q: bad magnitude %q", part, magStr)
			}
			if e.Kind == BatteryFail && m >= 1 {
				return nil, fmt.Errorf("faults: %q: capacity loss must be below 1", part)
			}
			e.Magnitude = m
		}
		plan = append(plan, e.withDefaults())
	}
	return plan.Sorted(), nil
}

// ConnDropper is the slice of the Modbus server the injector needs to flap
// the control panel.
type ConnDropper interface{ DropConnections() }

// Target is the plant surface faults are injected into. Any nil field makes
// the corresponding fault kinds no-ops, so a bare PLC deployment (no panel)
// and a full simulation share one injector.
type Target struct {
	Bank   *battery.Bank
	Fabric *relay.Fabric
	Probes []*sensor.BatteryProbe
	Panel  ConnDropper
}

// Injector walks a plan against a target as the plant clock advances.
type Injector struct {
	plan    Plan
	tgt     Target
	next    int
	applied []Event

	// Logf, when set, receives one line per injected fault.
	Logf func(format string, args ...any)
}

// NewInjector binds a plan (sorted internally) to a target.
func NewInjector(plan Plan, tgt Target) *Injector {
	sorted := plan.Sorted()
	for i, e := range sorted {
		sorted[i] = e.withDefaults()
	}
	return &Injector{plan: sorted, tgt: tgt, applied: make([]Event, 0, len(sorted))}
}

// Tick injects every event due at or before tod and returns how many landed
// this call. It is allocation-free once all events have fired, so it can sit
// on the simulation hot path.
func (in *Injector) Tick(tod time.Duration) int {
	n := 0
	for in.next < len(in.plan) && in.plan[in.next].At <= tod {
		e := in.plan[in.next]
		in.next++
		in.apply(e)
		in.applied = append(in.applied, e)
		n++
		if in.Logf != nil {
			in.Logf("fault injected: %v", e)
		}
	}
	return n
}

// Applied returns the events injected so far, in order.
func (in *Injector) Applied() []Event { return in.applied }

// Done reports whether the whole plan has been injected.
func (in *Injector) Done() bool { return in.next >= len(in.plan) }

func (in *Injector) apply(e Event) {
	switch e.Kind {
	case SensorStick:
		if e.Unit < len(in.tgt.Probes) {
			in.tgt.Probes[e.Unit].Current.InjectStick()
		}
	case SensorDrift:
		if e.Unit < len(in.tgt.Probes) {
			in.tgt.Probes[e.Unit].Volt.InjectDrift(e.Magnitude)
		}
	case RelayStuckOpen:
		if in.tgt.Fabric != nil && e.Unit < in.tgt.Fabric.Size() {
			in.tgt.Fabric.Pair(e.Unit).Discharge.Fail(relay.FailStuckOpen)
		}
	case RelayWeldClosed:
		if in.tgt.Fabric != nil && e.Unit < in.tgt.Fabric.Size() {
			in.tgt.Fabric.Pair(e.Unit).Discharge.Fail(relay.FailWeldClosed)
		}
	case BatteryFail:
		if in.tgt.Bank != nil && e.Unit < in.tgt.Bank.Size() {
			in.tgt.Bank.Unit(e.Unit).InjectCapacityLoss(e.Magnitude)
		}
	case PanelDrop:
		if in.tgt.Panel != nil {
			in.tgt.Panel.DropConnections()
		}
	}
}

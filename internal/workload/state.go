package workload

import (
	"fmt"

	"insure/internal/journal"
)

// Batch-queue state serialization, used by the fleet daemon's day-boundary
// snapshots: a killed daemon restores every site's backlog, completion
// history, and job-ID cursor bit-exactly, which is what makes its resumed
// day byte-identical to the run that never died.

const batchQueueStateVersion = 1

// AppendJobState serializes one job; DecodeJobState reads it back. The
// fleet layer also uses the pair for in-flight migrated jobs riding sink
// snapshots.
func AppendJobState(e *journal.Encoder, j *Job) { appendJob(e, j) }

// DecodeJobState reads one job written by AppendJobState.
func DecodeJobState(d *journal.Decoder) *Job { return decodeJob(d) }

func appendJob(e *journal.Encoder, j *Job) {
	e.U64(j.ID)
	e.F64(j.Size)
	e.F64(j.Remaining)
	e.Dur(j.Arrived)
	e.Dur(j.Done)
	e.Bool(j.Migrated)
	e.Int(j.Origin)
}

func decodeJob(d *journal.Decoder) *Job {
	return &Job{
		ID:        d.U64(),
		Size:      d.F64(),
		Remaining: d.F64(),
		Arrived:   d.Dur(),
		Done:      d.Dur(),
		Migrated:  d.Bool(),
		Origin:    d.Int(),
	}
}

// AppendState serializes the queue — pending and completed jobs, the
// processed total, and the ID cursor — onto enc.
func (q *BatchQueue) AppendState(e *journal.Encoder) {
	e.U8(batchQueueStateVersion)
	e.U64(q.idBase)
	e.U64(q.idSeq)
	e.F64(q.processed)
	e.Int(len(q.pending))
	for _, j := range q.pending {
		appendJob(e, j)
	}
	e.Int(len(q.completed))
	for _, j := range q.completed {
		appendJob(e, j)
	}
}

// RestoreState overwrites the queue from a payload written by AppendState.
func (q *BatchQueue) RestoreState(d *journal.Decoder) error {
	d.ExpectVersion(batchQueueStateVersion)
	q.idBase = d.U64()
	q.idSeq = d.U64()
	q.processed = d.F64()
	n := d.Int()
	if err := d.Err(); err != nil {
		return fmt.Errorf("workload: corrupt batch queue state: %w", err)
	}
	q.pending = q.pending[:0]
	for i := 0; i < n; i++ {
		q.pending = append(q.pending, decodeJob(d))
	}
	n = d.Int()
	if err := d.Err(); err != nil {
		return fmt.Errorf("workload: corrupt batch queue state: %w", err)
	}
	q.completed = q.completed[:0]
	for i := 0; i < n; i++ {
		q.completed = append(q.completed, decodeJob(d))
	}
	if err := d.Err(); err != nil {
		return fmt.Errorf("workload: corrupt batch queue state: %w", err)
	}
	return nil
}

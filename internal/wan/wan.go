// Package wan models the backhaul network between federated in-situ
// sites — the slow, lossy, partition-prone links the paper's deployments
// actually ride (§2.1's T1/cellular/satellite classes, not a data-center
// fabric). It is the cross-site twin of internal/faults: a deterministic,
// seeded fault layer driven entirely by the simulation clock, so a chaos
// campaign reproduces every drop, collapse, and partition bit-for-bit
// from its seed.
//
// The model is one uplink per site. A site whose uplink is inside a
// scheduled outage window is partitioned from everything — the
// coordinator cannot sample it, no chunk addressed to or from it moves,
// and its heartbeats go unanswered — while the site itself keeps running:
// it is a complete InSURE plant and needs nothing from the WAN to operate
// solo. A transfer between two sites sees the worse of its endpoints'
// links.
//
// Determinism contract (shared with internal/chaos — see that package's
// "Seeding contract" section):
//
//   - All *scheduled* randomness (outage windows, bandwidth-collapse
//     windows) is drawn up front by PlanOutages (collapse windows use the
//     same planner on their own seed lane) from
//     rand.New(rand.NewSource(seed)), with a fixed number of draws per
//     window so the stream layout never depends on earlier outcomes.
//   - All *per-event* randomness (whether one chunk attempt is delivered,
//     dropped, or corrupted) is a pure stateless hash of
//     (seed, from, to, transfer, chunk, attempt). No generator state
//     exists at query time, so a coordinator killed mid-transfer and
//     resumed from its journal re-derives exactly the fates the dead one
//     saw — the property the fleet daemon's bit-identical resume rests on.
package wan

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Fate is the outcome of one chunk transmission attempt.
type Fate uint8

const (
	// Delivered: the chunk arrived and its CRC verified.
	Delivered Fate = iota
	// Dropped: the chunk vanished in transit (congestion loss, radio
	// fade); the sender times out and retries.
	Dropped
	// Corrupted: the chunk arrived but failed the receiver's CRC frame
	// check (the journal layer's framing); it is discarded and retried
	// like a drop, but counted separately — bit errors are a different
	// pathology than loss.
	Corrupted
)

func (f Fate) String() string {
	switch f {
	case Delivered:
		return "delivered"
	case Dropped:
		return "dropped"
	case Corrupted:
		return "corrupted"
	default:
		return fmt.Sprintf("Fate(%d)", int(f))
	}
}

// Outage is one scheduled uplink partition: site's backhaul is dead for
// [From, To) on Day. The same shape describes a bandwidth collapse (see
// Config.Collapses), where the link survives but its throughput falls to
// CollapseFrac of nominal.
type Outage struct {
	Site int
	Day  int
	From time.Duration
	To   time.Duration
}

// Covers reports whether the outage is active at (day, tod).
func (o Outage) Covers(site, day int, tod time.Duration) bool {
	return o.Site == site && o.Day == day && tod >= o.From && tod < o.To
}

func (o Outage) String() string {
	return fmt.Sprintf("site %d day %d %v-%v", o.Site, o.Day, o.From, o.To)
}

// Config shapes a Network.
type Config struct {
	// Seed drives every random choice: scheduled windows through the
	// up-front planners, per-chunk fates through the stateless hash.
	Seed int64
	// Sites is the fleet size (uplink count).
	Sites int
	// Mbps is the nominal per-uplink bandwidth (default 100, the PR 7
	// tariff link).
	Mbps float64
	// LatencyMs is the one-way link latency per chunk; it delays chunk
	// delivery but not bandwidth accounting (default 50 ms — long-haul
	// microwave/cellular class).
	LatencyMs float64
	// DropRate is the per-chunk-attempt probability of silent loss.
	DropRate float64
	// CorruptRate is the per-chunk-attempt probability of a CRC-failed
	// frame.
	CorruptRate float64
	// CollapseFrac is the bandwidth multiplier inside a collapse window
	// (default 0.1 — the link degrades to a tenth of nominal).
	CollapseFrac float64
	// Outages are the scheduled uplink partitions; Collapses the
	// scheduled bandwidth-collapse windows. Both are typically built by
	// the planners below, but campaigns may pin windows explicitly.
	Outages   []Outage
	Collapses []Outage
}

// Network is the fault-injectable WAN between sites. All methods are
// read-only and safe for concurrent use; the model holds no mutable
// state, which is what makes it resumable.
type Network struct {
	cfg Config
}

// New validates cfg and builds the network.
func New(cfg Config) (*Network, error) {
	if cfg.Sites < 1 {
		return nil, fmt.Errorf("wan: network needs at least one site")
	}
	if cfg.Mbps <= 0 {
		cfg.Mbps = 100
	}
	if cfg.CollapseFrac <= 0 {
		cfg.CollapseFrac = 0.1
	}
	if cfg.DropRate < 0 || cfg.DropRate >= 1 {
		return nil, fmt.Errorf("wan: drop rate %v outside [0,1)", cfg.DropRate)
	}
	if cfg.CorruptRate < 0 || cfg.DropRate+cfg.CorruptRate >= 1 {
		return nil, fmt.Errorf("wan: drop %v + corrupt %v must stay below 1", cfg.DropRate, cfg.CorruptRate)
	}
	for _, o := range append(append([]Outage(nil), cfg.Outages...), cfg.Collapses...) {
		if o.Site < 0 || o.Site >= cfg.Sites {
			return nil, fmt.Errorf("wan: window %v names a site outside the %d-site fleet", o, cfg.Sites)
		}
		if o.To <= o.From {
			return nil, fmt.Errorf("wan: window %v is empty or inverted", o)
		}
	}
	return &Network{cfg: cfg}, nil
}

// Sites returns the uplink count.
func (n *Network) Sites() int { return n.cfg.Sites }

// NominalMbps returns the configured per-uplink bandwidth.
func (n *Network) NominalMbps() float64 { return n.cfg.Mbps }

// Latency returns the one-way per-chunk latency.
func (n *Network) Latency() time.Duration {
	return time.Duration(n.cfg.LatencyMs * float64(time.Millisecond))
}

// Partitioned reports whether site's uplink is inside an outage window at
// (day, tod).
func (n *Network) Partitioned(site, day int, tod time.Duration) bool {
	for _, o := range n.cfg.Outages {
		if o.Covers(site, day, tod) {
			return true
		}
	}
	return false
}

// Reachable reports whether sites a and b can exchange traffic at
// (day, tod): both uplinks must be outside their outage windows.
func (n *Network) Reachable(a, b, day int, tod time.Duration) bool {
	return !n.Partitioned(a, day, tod) && !n.Partitioned(b, day, tod)
}

// EffectiveMbps is the usable bandwidth between a and b at (day, tod):
// zero across a partition, the collapsed rate when either endpoint is
// inside a collapse window, nominal otherwise.
func (n *Network) EffectiveMbps(a, b, day int, tod time.Duration) float64 {
	if !n.Reachable(a, b, day, tod) {
		return 0
	}
	mbps := n.cfg.Mbps
	for _, c := range n.cfg.Collapses {
		if c.Covers(a, day, tod) || c.Covers(b, day, tod) {
			return mbps * n.cfg.CollapseFrac
		}
	}
	return mbps
}

// ChunkFate decides the outcome of one chunk attempt on the a→b link.
// It is a pure function of the seed and its arguments — no state, no
// ordering dependence — so replaying a transfer after a crash re-derives
// the same fate sequence the first incarnation saw.
func (n *Network) ChunkFate(a, b int, xfer uint64, chunk, attempt int) Fate {
	if n.cfg.DropRate <= 0 && n.cfg.CorruptRate <= 0 {
		return Delivered
	}
	h := mix64(uint64(n.cfg.Seed))
	h = mix64(h ^ uint64(a)<<32 ^ uint64(b))
	h = mix64(h ^ xfer)
	h = mix64(h ^ uint64(chunk)<<20 ^ uint64(attempt))
	// 53-bit mantissa → uniform in [0,1).
	u := float64(h>>11) / (1 << 53)
	switch {
	case u < n.cfg.DropRate:
		return Dropped
	case u < n.cfg.DropRate+n.cfg.CorruptRate:
		return Corrupted
	default:
		return Delivered
	}
}

// mix64 is the SplitMix64 finalizer — a cheap, well-distributed 64-bit
// mixer, the same construction the stdlib uses to seed PRNG streams.
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// PlanOutages draws perDay outage windows per day across the fleet from
// a PRNG seeded with seed, each lasting between minDur and maxDur, placed
// inside [from, to). Every window consumes exactly three draws (site,
// start, duration) whatever its values, so the stream layout is fixed —
// the same convention internal/chaos.Plan uses for its event schedule.
// Windows are sorted (day, site, from) so the plan is order-independent
// of map iteration or caller assembly.
func PlanOutages(seed int64, days, sites, perDay int, from, to, minDur, maxDur time.Duration) []Outage {
	rnd := rand.New(rand.NewSource(seed))
	span := to - from
	if maxDur < minDur {
		maxDur = minDur
	}
	var out []Outage
	for day := 0; day < days; day++ {
		for k := 0; k < perDay; k++ {
			site := rnd.Intn(sites)
			start := from + time.Duration(rnd.Int63n(int64(span)))
			dur := minDur
			if maxDur > minDur {
				dur += time.Duration(rnd.Int63n(int64(maxDur - minDur)))
			}
			end := start + dur
			if end > to {
				end = to
			}
			if end <= start {
				continue
			}
			out = append(out, Outage{Site: site, Day: day, From: start, To: end})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Day != b.Day {
			return a.Day < b.Day
		}
		if a.Site != b.Site {
			return a.Site < b.Site
		}
		return a.From < b.From
	})
	return out
}

// Command insure-plcd runs the battery-array control panel as a standalone
// Modbus TCP server — the same control plane the prototype exposes between
// its PLC and the coordination node (§4).
//
// The daemon simulates the battery array, relay fabric, and transducers in
// real time. Any Modbus TCP client can read per-unit voltage/current input
// registers and drive the charge/discharge coils; the register map is
// documented in insure/internal/plc. SIGINT/SIGTERM shut the panel down
// cleanly, draining live Modbus sessions.
//
// The daemon also serves an observability plane on -metrics-addr:
// GET /metrics is Prometheus text exposition (per-unit SoC and throughput,
// relay cycles and settle latency, PLC scan duration), GET /healthz reports
// ok/degraded from the relay-fabric fault check. -debug-addr optionally
// exposes net/http/pprof on a second listener.
//
// Usage:
//
//	insure-plcd -listen 127.0.0.1:1502 -units 6
//	insure-plcd -faults 'bat:2@2m:0.6,drop@5m'
//	curl http://127.0.0.1:9620/metrics
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"insure/internal/battery"
	"insure/internal/faults"
	"insure/internal/journal"
	"insure/internal/modbus"
	"insure/internal/plc"
	"insure/internal/relay"
	"insure/internal/sensor"
	"insure/internal/telemetry"
	"insure/internal/units"
)

// panel is the assembled plant plus its observability plane. It is built by
// newPanel and advanced by tick; main only adds the Modbus listener, the
// fault injector, and the real-time loop, so tests can drive the identical
// wiring at simulated speed.
type panel struct {
	n             int
	solarW, loadW units.Watt
	bank          *battery.Bank
	fabric        *relay.Fabric
	probes        []*sensor.BatteryProbe
	controller    *plc.PLC
	reg           *telemetry.Registry
	socGauges     []*telemetry.Gauge
	tputGauges    []*telemetry.Gauge
	relayCycles   *telemetry.Gauge
	failedRelays  *telemetry.Gauge
}

// newPanel wires the plant and registers its telemetry. The plant loop
// publishes into the registry with atomic stores, so the HTTP goroutines
// never race with the physics.
func newPanel(n int, soc, solarW, loadW float64) (*panel, error) {
	bank, err := battery.NewBank(battery.DefaultParams(), n, soc)
	if err != nil {
		return nil, err
	}
	p := &panel{
		n:      n,
		solarW: units.Watt(solarW),
		loadW:  units.Watt(loadW),
		bank:   bank,
		fabric: relay.NewFabric(n),
		probes: make([]*sensor.BatteryProbe, n),
	}
	for i := range p.probes {
		p.probes[i] = sensor.NewBatteryProbe(i)
	}

	p.controller = plc.New(n)
	p.controller.Sample = func(r *plc.RegisterFile) {
		for i, u := range p.bank.Units() {
			snap := u.Snapshot()
			p.probes[i].Sample(snap.Terminal, snap.LastCurrent)
			_ = r.SetInput(plc.InputVolt(i), p.probes[i].Volt.Raw())
			_ = r.SetInput(plc.InputCurrent(i), p.probes[i].Current.Raw())
		}
		_ = r.SetInput(plc.InputSolarPower, uint16(p.solarW))
		_ = r.SetInput(plc.InputLoadPower, uint16(p.loadW))
	}
	p.controller.Actuate = func(r *plc.RegisterFile) {
		for i := 0; i < n; i++ {
			cr, err1 := r.ReadCoils(plc.CoilCharge(i), 1)
			dr, err2 := r.ReadCoils(plc.CoilDischarge(i), 1)
			if err1 != nil || err2 != nil {
				continue
			}
			pair := p.fabric.Pair(i)
			switch {
			case cr[0] && dr[0]:
				pair.SetMode(relay.Open) // interlock
			case cr[0]:
				pair.SetMode(relay.Charging)
			case dr[0]:
				pair.SetMode(relay.Discharging)
			default:
				pair.SetMode(relay.Open)
			}
		}
	}

	reg := telemetry.NewRegistry()
	p.reg = reg
	p.socGauges = make([]*telemetry.Gauge, n)
	p.tputGauges = make([]*telemetry.Gauge, n)
	for i := range p.socGauges {
		lbl := telemetry.Label{Key: "unit", Value: strconv.Itoa(i)}
		p.socGauges[i] = reg.Gauge("insure_battery_soc",
			"State of charge of one battery unit (0-1).", lbl)
		p.tputGauges[i] = reg.Gauge("insure_battery_throughput_ah",
			"Cumulative wear-weighted discharge throughput of one battery unit, amp-hours.", lbl)
	}
	p.relayCycles = reg.Gauge("insure_relay_cycles",
		"Total mechanical switching cycles consumed across the relay fabric.")
	p.failedRelays = reg.Gauge("insure_relay_failed",
		"Relay pairs with an injected or detected hardware fault.")
	scanHist := reg.Histogram("insure_plc_scan_duration_seconds",
		"Wall-clock duration of one PLC scan cycle.", telemetry.DefTimeBuckets)
	settleHist := reg.Histogram("insure_relay_settle_seconds",
		"Time between a relay coil command and the contact settling.", telemetry.DefTimeBuckets)
	p.controller.OnScan = func(d time.Duration) { scanHist.Observe(d.Seconds()) }
	onSettle := func(w time.Duration) { settleHist.Observe(w.Seconds()) }
	for i := 0; i < n; i++ {
		p.fabric.Pair(i).Charge.OnSettle = onSettle
		p.fabric.Pair(i).Discharge.OnSettle = onSettle
	}
	p.fabric.P1.OnSettle = onSettle
	p.fabric.P2.OnSettle = onSettle
	p.fabric.P3.OnSettle = onSettle
	reg.AddHealthCheck("relay-fabric", func() error {
		if f := p.failedRelays.Value(); f > 0 {
			return fmt.Errorf("%.0f relay pairs faulted", f)
		}
		return nil
	})
	return p, nil
}

// tick advances the plant by dt at time-since-start elapsed and publishes
// the cycle's telemetry.
func (p *panel) tick(dt, elapsed time.Duration) {
	charging := p.fabric.UnitsIn(relay.Charging)
	discharging := p.fabric.UnitsIn(relay.Discharging)
	p.bank.ChargeSet(charging, p.solarW, dt)
	p.bank.DischargeSet(discharging, p.loadW, dt)
	for _, i := range p.fabric.UnitsIn(relay.Open) {
		p.bank.Unit(i).Rest(dt)
	}
	p.fabric.Tick(dt)
	p.controller.Tick(dt)

	p.reg.SetClock(elapsed)
	p.relayCycles.Set(float64(p.fabric.TotalCycles()))
	failed := 0
	for i := 0; i < p.n; i++ {
		if p.fabric.Pair(i).Failed() {
			failed++
		}
	}
	p.failedRelays.Set(float64(failed))
	for i, u := range p.bank.Units() {
		p.socGauges[i].Set(u.SoC())
		p.tputGauges[i].Set(float64(u.Throughput()))
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("insure-plcd: ")
	listen := flag.String("listen", "127.0.0.1:1502", "Modbus TCP listen address")
	n := flag.Int("units", 6, "battery units")
	soc := flag.Float64("soc", 0.5, "initial state of charge")
	solarW := flag.Float64("solar", 400, "charge-bus power budget (W)")
	loadW := flag.Float64("load", 300, "discharge-bus load (W)")
	faultSpec := flag.String("faults", "", "inject faults at time-since-start: comma-separated kind[:unit]@time[:magnitude] events, e.g. bat:2@2m:0.6,drop@5m (kinds: stick, drift, relay-open, relay-weld, bat, drop)")
	metricsAddr := flag.String("metrics-addr", "127.0.0.1:9620", "HTTP listen address for /metrics and /healthz (empty disables)")
	debugAddr := flag.String("debug-addr", "", "HTTP listen address for net/http/pprof (empty disables)")
	stateDir := flag.String("state-dir", "", "journal panel state to this directory; a restarted daemon resumes SoC, wear, relay and register state")
	scrubEvery := flag.Duration("scrub-interval", time.Minute, "background CRC scrub cadence for the state directory (0 disables)")
	sessionTimeout := flag.Duration("session-timeout", 30*time.Second, "idle limit before a silent Modbus session is reaped (0 disables)")
	flag.Parse()

	faultPlan, err := faults.Parse(*faultSpec)
	if err != nil {
		log.Fatal(err)
	}

	p, err := newPanel(*n, *soc, *solarW, *loadW)
	if err != nil {
		log.Fatal(err)
	}

	// Durable state: open the journal and, if a previous incarnation left
	// state behind, resume from it — the batteries do not forget their
	// charge because the daemon restarted.
	var ps *panelStore
	var resumeAt time.Duration
	if *stateDir != "" {
		ps, err = openPanelStore(*stateDir)
		if err != nil {
			log.Fatal(err)
		}
		defer ps.Close()
		elapsed, restored, err := ps.restoreInto(p)
		if err != nil {
			log.Fatal(err)
		}
		if restored {
			resumeAt = elapsed
			p.controller.ScanNow() // re-drive the fabric from restored coils
			fmt.Printf("resumed panel state from %s (elapsed %v)\n", *stateDir, elapsed)
		}
	}

	srv := modbus.NewServer(p.controller.Regs)
	srv.Logf = log.Printf
	srv.SessionTimeout = *sessionTimeout
	srv.RegisterTelemetry(p.reg)
	addr, err := srv.Listen(*listen)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("battery control panel on modbus-tcp://%s (%d units)\n", addr, *n)
	fmt.Println("coils: 2i=charge relay, 2i+1=discharge relay; inputs: 2i=voltage code, 2i+1=current code")

	if *metricsAddr != "" {
		maddr, stopMetrics, err := p.reg.Serve(*metricsAddr)
		if err != nil {
			log.Fatal(err)
		}
		defer stopMetrics()
		fmt.Printf("telemetry on http://%s/metrics and /healthz\n", maddr)
	}
	if *debugAddr != "" {
		daddr, stopDebug, err := telemetry.ServeDebug(*debugAddr)
		if err != nil {
			log.Fatal(err)
		}
		defer stopDebug()
		fmt.Printf("pprof on http://%s/debug/pprof/\n", daddr)
	}

	injector := faults.NewInjector(faultPlan, faults.Target{
		Bank:   p.bank,
		Fabric: p.fabric,
		Probes: p.probes,
		Panel:  srv,
	})
	injector.Logf = log.Printf

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Storage integrity plane: a background scrubber CRC-walks the state
	// directory, repairs damaged mirror copies, and backs the "storage"
	// health check (dir writable, mirrors in sync, last sweep fresh). A
	// poisoned journal (failed fsync) degrades /healthz through the
	// state-journal check.
	if ps != nil {
		p.reg.AddHealthCheck("state-journal", ps.Err)
		if *scrubEvery > 0 {
			scrub := journal.NewScrubber(ps.scrubTarget())
			scrub.Interval = *scrubEvery
			scrub.AttachTelemetry(p.reg)
			go scrub.Run(ctx)
		}
	}

	// Real-time plant loop: 1 s physics ticks under the watchdog. A
	// panicked or wedged loop is replaced in-process, re-synced from the
	// journal, and its relay intent re-driven; a killed process resumes
	// from the same journal at next boot.
	sup := newSupervisor(p, ps)
	sup.setElapsed(resumeAt)
	sup.onTick = func(elapsed time.Duration) { injector.Tick(elapsed) }
	sup.registerTelemetry(p.reg)
	sup.Run(ctx)
	log.Print("signal received, draining connections")
	if ps != nil {
		if err := ps.Err(); err != nil {
			log.Printf("warning: state journal degraded during run: %v", err)
		}
	}
}

package blink

import (
	"testing"
	"time"

	"insure/internal/core"
	"insure/internal/sim"
	"insure/internal/trace"
)

func TestManagerBasics(t *testing.T) {
	m := New(DefaultConfig())
	if m.Name() != "blink" {
		t.Errorf("name = %q", m.Name())
	}
	if m.Period() != 10*time.Second {
		t.Errorf("period = %v", m.Period())
	}
}

func TestBlinkRunsFullWidth(t *testing.T) {
	cfg := sim.DefaultConfig(trace.FullSystemHigh())
	sys, err := sim.New(cfg, sim.NewVideoSink())
	if err != nil {
		t.Fatal(err)
	}
	m := New(DefaultConfig())
	maxSeen := 0
	for tod := 8 * time.Hour; tod < 14*time.Hour; tod += time.Second {
		sys.Tick(tod, m)
		if v := sys.Cluster.TargetVMs(); v > maxSeen {
			maxSeen = v
		}
	}
	if maxSeen != 8 {
		t.Errorf("blink peaked at %d VMs, want the full 8", maxSeen)
	}
}

func TestBlinkDutyTracksBudget(t *testing.T) {
	cfg := sim.DefaultConfig(trace.FullSystemLow())
	sys, err := sim.New(cfg, sim.NewVideoSink())
	if err != nil {
		t.Fatal(err)
	}
	m := New(DefaultConfig())
	minDuty := 1.0
	for tod := 8 * time.Hour; tod < 18*time.Hour; tod += time.Second {
		sys.Tick(tod, m)
		for _, n := range sys.Cluster.Nodes() {
			if n.Running() && n.Duty() < minDuty {
				minDuty = n.Duty()
			}
		}
	}
	if minDuty >= 1 {
		t.Error("blink never throttled on a weak budget")
	}
}

// TestInSUREBeatsBlink makes the paper's prior-art comparison concrete: on
// a constrained budget Blink's always-on idle floor and unified buffer lose
// to InSURE's reconfigurable buffer and right-sized allocation.
func TestInSUREBeatsBlink(t *testing.T) {
	if testing.Short() {
		t.Skip("paired full-day runs")
	}
	tr := trace.FullSystemLow()
	run := func(mgr sim.Manager) sim.Result {
		cfg := sim.DefaultConfig(tr)
		sys, err := sim.New(cfg, sim.NewVideoSink())
		if err != nil {
			t.Fatal(err)
		}
		return sys.Run(mgr)
	}
	opt := run(core.New(core.DefaultConfig(), 6))
	blk := run(New(DefaultConfig()))
	if opt.ProcessedGB <= blk.ProcessedGB {
		t.Errorf("InSURE %.1f GB not above blink %.1f GB", opt.ProcessedGB, blk.ProcessedGB)
	}
	if opt.WearAhPerUnit >= blk.WearAhPerUnit {
		t.Errorf("InSURE wear %.2f not below blink %.2f",
			float64(opt.WearAhPerUnit), float64(blk.WearAhPerUnit))
	}
	// Blink's defining inefficiency: energy spent per GB is higher because
	// the idle floor runs all day.
	if opt.ProcessedGB/opt.LoadKWh <= blk.ProcessedGB/blk.LoadKWh {
		t.Errorf("InSURE GB/kWh %.1f not above blink %.1f",
			opt.ProcessedGB/opt.LoadKWh, blk.ProcessedGB/blk.LoadKWh)
	}
}

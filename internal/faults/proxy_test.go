package faults

import (
	"testing"
	"time"

	"insure/internal/modbus"
	"insure/internal/plc"
)

// proxyPair stands up server <- proxy <- client over loopback.
func proxyPair(t *testing.T) (*FlakyProxy, *modbus.Client) {
	t.Helper()
	regs := plc.NewRegisterFile(16, 4, 16, 16)
	srv := modbus.NewServer(regs)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	p, err := NewFlakyProxy(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	c, err := modbus.Dial(p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	c.RetryBackoff = time.Millisecond
	return p, c
}

func TestProxyTransparentForwarding(t *testing.T) {
	_, c := proxyPair(t)
	if err := c.WriteCoil(3, true); err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadCoils(3, 1)
	if err != nil || !got[0] {
		t.Fatalf("read through proxy = %v, %v", got, err)
	}
}

func TestProxyDelayStillDelivers(t *testing.T) {
	p, c := proxyPair(t)
	p.SetDelay(5 * time.Millisecond)
	start := time.Now()
	if _, err := c.ReadCoils(0, 4); err != nil {
		t.Fatalf("delayed read failed: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Errorf("round trip took %v, expected at least one 5 ms delay", elapsed)
	}
}

func TestProxyDropForcesClientReconnect(t *testing.T) {
	p, c := proxyPair(t)
	if err := c.WriteCoil(1, true); err != nil {
		t.Fatal(err)
	}
	p.DropAll()
	if p.Dropped() == 0 {
		t.Error("drop counter did not advance")
	}
	got, err := c.ReadCoils(1, 1)
	if err != nil {
		t.Fatalf("read after drop failed despite retry: %v", err)
	}
	if !got[0] {
		t.Error("state lost across proxy drop")
	}
	if c.Reconnects() == 0 {
		t.Error("client did not reconnect through the proxy")
	}
}

func TestProxyPartitionSeversAndHeals(t *testing.T) {
	p, c := proxyPair(t)
	c.Timeout = 250 * time.Millisecond
	c.MaxRetries = 1
	if err := c.WriteCoil(2, true); err != nil {
		t.Fatal(err)
	}
	p.SetPartition(true)
	if !p.Partitioned() {
		t.Fatal("Partitioned() = false after SetPartition(true)")
	}
	if _, err := c.ReadCoils(2, 1); err == nil {
		t.Fatal("read succeeded across a partition")
	}
	p.SetPartition(false)
	got, err := c.ReadCoils(2, 1)
	if err != nil {
		t.Fatalf("read after heal failed: %v", err)
	}
	if !got[0] {
		t.Error("state lost across partition")
	}
}

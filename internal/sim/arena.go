package sim

import (
	"time"

	"insure/internal/trace"
	"insure/internal/units"
)

// Arena is per-worker scratch memory for the campaign path. Each pool worker
// owns exactly one Arena, so nothing in it is ever shared between goroutines
// and nothing on the campaign hot path allocates against the shared heap
// more than once per worker:
//
//   - Solar LUTs (≈850 KB per trace at a 1 s step — the dominant
//     campaign-path allocation) are built once per (trace, step, span) and
//     handed out read-only to every System the worker constructs.
//   - Recorders from runs marked Transient are reset and reissued to the
//     worker's next run instead of being re-grown from zero.
//
// Reuse is a memory optimisation only: a LUT is a pure function of its key
// and a reset recorder is indistinguishable from a fresh one, so results
// stay bit-identical to arena-free construction. A nil *Arena is valid and
// simply allocates fresh everywhere, so callers never need to guard.
type Arena struct {
	luts map[lutKey][]units.Watt
	recs []*Recorder
}

type lutKey struct {
	trace *trace.Trace
	step  time.Duration
	end   time.Duration
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// solarLUT returns the trace resampled onto step covering [0, end], cached
// per key. The slice is read-only after construction; Systems index it but
// never write it, so handing the same backing array to many Systems is safe.
func (a *Arena) solarLUT(tr *trace.Trace, step, end time.Duration) []units.Watt {
	if tr == nil || step <= 0 {
		return nil
	}
	if t := tr.End(); t > end {
		end = t
	}
	k := lutKey{trace: tr, step: step, end: end}
	if a != nil {
		if lut, ok := a.luts[k]; ok {
			return lut
		}
	}
	n := int(end/step) + 1
	lut := make([]units.Watt, n)
	for i := range lut {
		lut[i] = tr.At(time.Duration(i) * step)
	}
	if a != nil {
		if a.luts == nil {
			a.luts = make(map[lutKey][]units.Watt)
		}
		a.luts[k] = lut
	}
	return lut
}

// getRecorder returns a recorder pre-sized for frames×nUnits, reusing a
// recycled one whose capacity fits if available.
func (a *Arena) getRecorder(frames, nUnits int) *Recorder {
	if a != nil {
		for i, r := range a.recs {
			if cap(r.frames) >= frames && cap(r.volts) >= frames*nUnits {
				a.recs[i] = a.recs[len(a.recs)-1]
				a.recs[len(a.recs)-1] = nil
				a.recs = a.recs[:len(a.recs)-1]
				r.Reset()
				return r
			}
		}
	}
	return NewRecorderSized(frames, nUnits)
}

// recycleSystem reclaims the reusable guts of a finished System. Only call
// it for runs whose System does not escape the campaign cell
// (CampaignRun.Transient): after recycling, the System's recorded frames
// alias memory the next run will overwrite.
func (a *Arena) recycleSystem(sys *System) {
	if a == nil || sys == nil || sys.recorder == nil {
		return
	}
	a.recs = append(a.recs, sys.recorder)
	sys.recorder = nil
}

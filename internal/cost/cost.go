// Package cost implements the paper's techno-economic models: bulk data
// movement overhead (Fig 1), IT- and energy-related TCO of in-situ
// processing versus transmission and fuel-based generation (Fig 3,
// Table 1), depreciation breakdowns (Fig 22), scale-out economics under
// varying sunshine (Fig 23), the in-situ/cloud crossover (Fig 24), and the
// application scenarios of Fig 25.
//
// All dollar figures are calibrated to the sources the paper cites
// (2014-era prices): AWS egress tiers, Globus/satellite/cellular service
// rates, and the generator cost parameters of Table 1.
package cost

import (
	"math"
)

// Dollars is a cost in US dollars.
type Dollars float64

// K returns the value in thousands of dollars.
func (d Dollars) K() float64 { return float64(d) / 1000 }

// --- Fig 1a: transfer time -------------------------------------------------

// Link is a network link class with its effective throughput.
type Link struct {
	Name string
	Mbps float64
}

// TypicalLinks are the link classes of Fig 1a, slowest to fastest.
func TypicalLinks() []Link {
	return []Link{
		{"T1 (1.5 Mbps)", 1.5},
		{"10 Mbps", 10},
		{"100 Mbps", 100},
		{"1 GbE", 1000},
		{"10 GbE", 10000},
	}
}

// HoursPerTB is the time to move one terabyte over the link at 80% goodput.
func (l Link) HoursPerTB() float64 {
	bits := 1e12 * 8 // one decimal terabyte
	seconds := bits / (l.Mbps * 1e6 * 0.8)
	return seconds / 3600
}

// --- Fig 1b: AWS egress ----------------------------------------------------

// egressTier is one AWS data-transfer-out pricing tier (Jan 2014).
type egressTier struct {
	uptoTB float64 // upper bound of the tier in TB
	perGB  float64
}

var egressTiers = []egressTier{
	{10, 0.120},
	{50, 0.090},
	{150, 0.070},
	{500, 0.050},
	{math.Inf(1), 0.030},
}

// AWSEgress returns the total cost of transferring tb terabytes out of AWS.
func AWSEgress(tb float64) Dollars {
	var total, prev float64
	for _, t := range egressTiers {
		if tb <= prev {
			break
		}
		span := math.Min(tb, t.uptoTB) - prev
		total += span * 1000 * t.perGB
		prev = t.uptoTB
	}
	return Dollars(total)
}

// AWSEgressPerTB is the average $/TB at the given volume (Fig 1b's y-axis).
func AWSEgressPerTB(tb float64) Dollars {
	if tb <= 0 {
		return 0
	}
	return AWSEgress(tb) / Dollars(tb)
}

// --- Fleet federation: cross-site migration accounting -----------------------

// MigrationTariff prices moving work between federated in-situ sites: the
// inter-site backhaul link, the radio/switching energy spent per shipped
// gigabyte, and the carrier's per-GB service charge. The energy figure is
// bookkeeping against the migration decision (is shipping the job cheaper
// than shedding it?) — the backhaul radio is not modelled inside the plant
// power simulation.
type MigrationTariff struct {
	Link Link
	// WhPerGB is the end-to-end transmission energy per gigabyte.
	WhPerGB float64
	// PerGB is the backhaul service cost per gigabyte.
	PerGB Dollars
	// VMImageGB sizes one shipped VM checkpoint image.
	VMImageGB float64
}

// DefaultMigrationTariff models a dedicated 100 Mbps point-to-point
// backhaul between sites: ~3 Wh/GB of radio energy (long-range microwave
// class) and a $0.10/GB service rate — far below the $10/GB cellular rate
// because federated sites own the link.
func DefaultMigrationTariff() MigrationTariff {
	return MigrationTariff{
		Link:      Link{"fleet backhaul (100 Mbps)", 100},
		WhPerGB:   3.0,
		PerGB:     0.10,
		VMImageGB: 4,
	}
}

// ShipHours is the transfer time for gb gigabytes over the tariff's link.
func (t MigrationTariff) ShipHours(gb float64) float64 {
	return t.Link.HoursPerTB() * gb / 1000
}

// EnergyWh is the transmission energy spent shipping gb gigabytes.
func (t MigrationTariff) EnergyWh(gb float64) float64 { return t.WhPerGB * gb }

// Cost is the backhaul service charge for shipping gb gigabytes.
func (t MigrationTariff) Cost(gb float64) Dollars { return Dollars(float64(t.PerGB) * gb) }

// BytesPerGB converts between the tariff's decimal-gigabyte pricing and
// the chunked transfer engine's byte offsets.
const BytesPerGB = 1e9

// EnergyWhBytes is the transmission energy for a byte count — including
// retransmitted bytes: on a lossy backhaul every attempt spends radio
// energy whether or not the chunk survives, so retries are metered at the
// same rate as goodput.
func (t MigrationTariff) EnergyWhBytes(b int64) float64 {
	return t.EnergyWh(float64(b) / BytesPerGB)
}

// CostBytes is the backhaul service charge for a byte count (carriers
// bill attempted traffic, not delivered traffic).
func (t MigrationTariff) CostBytes(b int64) Dollars {
	return t.Cost(float64(b) / BytesPerGB)
}

// --- Serving plane: the energy price of a request ----------------------------

// ServingTariff prices one interactive request served by the in-situ
// cluster: a fixed per-request energy floor (request parsing, scheduling,
// network interrupt load) plus a per-kilobyte term for materialising and
// transmitting the response, valued at the plant's marginal cost of a
// delivered watt-hour. The gateway (internal/gateway) meters every admitted
// request through this, so the serving plane's energy account is in the
// same dollars as the paper's TCO models.
type ServingTariff struct {
	// BaseWh is the fixed energy floor per request.
	BaseWh float64
	// WhPerKB is the marginal energy per kilobyte of response.
	WhPerKB float64
	// PerKWh is the marginal cost of one delivered kilowatt-hour of plant
	// energy (see Assumptions.MarginalEnergyPrice).
	PerKWh Dollars
}

// DefaultServingTariff prices requests against the paper-calibrated plant:
// ~0.2 mWh per request (a few hundred ms of one core's share of a Xeon
// node's dynamic power) plus 0.01 mWh/KB of response, at the prototype's
// marginal solar+battery energy price.
func DefaultServingTariff() ServingTariff {
	return ServingTariff{
		BaseWh:  0.0002,
		WhPerKB: 0.00001,
		PerKWh:  Default().MarginalEnergyPrice(),
	}
}

// RequestWh is the energy one request with a respKB-kilobyte response costs.
func (t ServingTariff) RequestWh(respKB float64) float64 {
	if respKB < 0 {
		respKB = 0
	}
	return t.BaseWh + t.WhPerKB*respKB
}

// RequestCost is the marginal dollar cost of one request.
func (t ServingTariff) RequestCost(respKB float64) Dollars {
	return Dollars(float64(t.PerKWh) * t.RequestWh(respKB) / 1000)
}

// MarginalEnergyPrice is the amortised cost of one delivered kWh from the
// standalone solar+battery system over the battery's service life — the
// $/kWh the serving tariff values a request's energy at.
func (a Assumptions) MarginalEnergyPrice() Dollars {
	years := a.BatteryLifeYears
	kWh := a.DailyLoadKWh * 365 * years
	if kWh <= 0 {
		return 0
	}
	return Dollars(float64(a.EnergyTCO(SolarBattery, years)) / kWh)
}

// --- Table 1 / §2.1 / §6.5 assumptions --------------------------------------

// Assumptions collects every calibrated price. Callers may adjust fields
// before running the models; Default() matches the paper's sources.
type Assumptions struct {
	// IT equipment (the four-server prototype, §4).
	ServerUnitCost  Dollars
	ServerCount     int
	NetworkSwitch   Dollars
	PDU             Dollars
	HVAC            Dollars
	ITLifeYears     float64
	MaintenancePerY Dollars

	// Standalone solar system (Table 1).
	SolarPerW        Dollars // $2/W
	SolarW           float64 // installed watts (1.6 kW prototype)
	BatteryPerAh     Dollars // $2/Ah
	BatteryAh        float64 // 210 Ah prototype buffer
	BatteryLifeYears float64 // 4 yr
	InverterCost     Dollars
	SolarLifeYears   float64

	// Diesel generator (Table 1).
	DieselPerKW     Dollars // $370/kW
	DieselLifeYears float64 // 5 yr
	DieselPerKWh    Dollars // $0.40/kWh

	// Fuel cell (Table 1).
	FuelCellPerW      Dollars // $5/W
	FCStackLifeYears  float64 // 5 yr
	FCSystemLifeYears float64 // 10 yr
	FuelCellPerKWh    Dollars // $0.16/kWh

	// Communication (§2.1 and [45–47]).
	SatelliteHW       Dollars // dish receiver ≈ $11.5K
	SatellitePerMonth Dollars // full service ≈ $30K/month
	SatelliteBackup   Dollars // reduced backup plan per month
	CellularHW        Dollars // 4G gateway ≈ $1K
	CellularPerGB     Dollars // ≈ $10/GB

	// Workload/site characteristics.
	RawGBPerDay     float64 // raw data produced at the site
	ResidualFrac    float64 // fraction still shipped after pre-processing
	DailyLoadKWh    float64 // cluster energy demand per day
	SiteCapacityGBD float64 // data the prototype can process per day
	CloudPerGB      Dollars // cloud-side processing + storage per raw GB
}

// Default returns the paper-calibrated assumptions.
func Default() Assumptions {
	return Assumptions{
		ServerUnitCost:  3000,
		ServerCount:     4,
		NetworkSwitch:   500,
		PDU:             600,
		HVAC:            2000,
		ITLifeYears:     5,
		MaintenancePerY: 508, // ≈12% of annual depreciation (§6.5)

		SolarPerW:        2,
		SolarW:           1600,
		BatteryPerAh:     2,
		BatteryAh:        210,
		BatteryLifeYears: 4,
		InverterCost:     800,
		SolarLifeYears:   10,

		DieselPerKW:     370,
		DieselLifeYears: 5,
		DieselPerKWh:    0.40,

		FuelCellPerW:      5,
		FCStackLifeYears:  5,
		FCSystemLifeYears: 10,
		FuelCellPerKWh:    0.16,

		SatelliteHW:       11500,
		SatellitePerMonth: 30000,
		SatelliteBackup:   12800,
		CellularHW:        1000,
		CellularPerGB:     10,

		RawGBPerDay:     25,
		ResidualFrac:    0.04,
		DailyLoadKWh:    8,
		SiteCapacityGBD: 230,
		CloudPerGB:      0.25,
	}
}

// itCapEx is the one-time in-situ IT hardware cost.
func (a Assumptions) itCapEx() Dollars {
	return Dollars(float64(a.ServerUnitCost)*float64(a.ServerCount)) +
		a.NetworkSwitch + a.PDU + a.HVAC
}

// powerCapEx is the one-time standalone power-system cost.
func (a Assumptions) powerCapEx() Dollars {
	return Dollars(float64(a.SolarPerW)*a.SolarW) +
		Dollars(float64(a.BatteryPerAh)*a.BatteryAh) + a.InverterCost
}

// --- Fig 3a: IT-related TCO --------------------------------------------------

// ITOption identifies a data-handling strategy of Fig 3a.
type ITOption int

const (
	SatelliteOnly ITOption = iota
	CellularOnly
	InSituPlusSatellite
	InSituPlusCellular
)

func (o ITOption) String() string {
	switch o {
	case SatelliteOnly:
		return "Satellite(SA)"
	case CellularOnly:
		return "Cellular(4G)"
	case InSituPlusSatellite:
		return "In Situ + SA"
	case InSituPlusCellular:
		return "In Situ + 4G"
	default:
		return "unknown"
	}
}

// ITOptions lists Fig 3a's four strategies in paper order.
func ITOptions() []ITOption {
	return []ITOption{SatelliteOnly, CellularOnly, InSituPlusSatellite, InSituPlusCellular}
}

// ITTCO returns the cumulative cost (CapEx + OpEx) of the strategy after
// the given number of years.
func (a Assumptions) ITTCO(o ITOption, years float64) Dollars {
	months := years * 12
	days := years * 365
	switch o {
	case SatelliteOnly:
		return a.SatelliteHW + Dollars(float64(a.SatellitePerMonth)*months)
	case CellularOnly:
		return a.CellularHW + Dollars(float64(a.CellularPerGB)*a.RawGBPerDay*days)
	case InSituPlusSatellite:
		insitu := a.itCapEx() + a.powerCapEx() + a.batteryReplacement(years) +
			Dollars(float64(a.MaintenancePerY)*years)
		return insitu + a.SatelliteHW + Dollars(float64(a.SatelliteBackup)*months)
	case InSituPlusCellular:
		insitu := a.itCapEx() + a.powerCapEx() + a.batteryReplacement(years) +
			Dollars(float64(a.MaintenancePerY)*years)
		return insitu + a.CellularHW +
			Dollars(float64(a.CellularPerGB)*a.RawGBPerDay*a.ResidualFrac*days)
	}
	return 0
}

// batteryReplacement is the cost of battery refreshes over the horizon.
func (a Assumptions) batteryReplacement(years float64) Dollars {
	replacements := math.Max(0, math.Ceil(years/a.BatteryLifeYears)-1)
	return Dollars(replacements * float64(a.BatteryPerAh) * a.BatteryAh)
}

// --- Fig 3b / Table 1: energy-related TCO -----------------------------------

// Generator identifies an on-site generation option.
type Generator int

const (
	SolarBattery Generator = iota
	FuelCell
	Diesel
)

func (g Generator) String() string {
	switch g {
	case SolarBattery:
		return "In-Situ (solar+battery)"
	case FuelCell:
		return "Fuel Cell"
	case Diesel:
		return "Diesel"
	default:
		return "unknown"
	}
}

// Generators lists Fig 3b's options in paper order.
func Generators() []Generator { return []Generator{SolarBattery, FuelCell, Diesel} }

// EnergyTCO returns the cumulative cost of powering the site for the given
// number of years with the chosen generator, sized at the prototype's
// 1.6 kW / DailyLoadKWh demand.
func (a Assumptions) EnergyTCO(g Generator, years float64) Dollars {
	kWh := a.DailyLoadKWh * 365 * years
	switch g {
	case SolarBattery:
		solar := Dollars(float64(a.SolarPerW) * a.SolarW)
		batt := Dollars(float64(a.BatteryPerAh) * a.BatteryAh)
		// Panel refresh at end of solar life, battery refresh every 4 yr.
		solarReplacements := math.Max(0, math.Ceil(years/a.SolarLifeYears)-1)
		return solar + a.InverterCost + batt + a.batteryReplacement(years) +
			Dollars(solarReplacements*float64(solar))
	case FuelCell:
		sysCost := Dollars(float64(a.FuelCellPerW) * a.SolarW)
		stackReplacements := math.Max(0, math.Ceil(years/a.FCStackLifeYears)-1)
		sysReplacements := math.Max(0, math.Ceil(years/a.FCSystemLifeYears)-1)
		stack := 0.4 * float64(sysCost) // stack is ~40% of system cost
		return sysCost + Dollars(stackReplacements*stack) +
			Dollars(sysReplacements*float64(sysCost)) +
			Dollars(float64(a.FuelCellPerKWh)*kWh)
	case Diesel:
		gen := Dollars(float64(a.DieselPerKW) * a.SolarW / 1000)
		replacements := math.Max(0, math.Ceil(years/a.DieselLifeYears)-1)
		return gen + Dollars(replacements*float64(gen)) +
			Dollars(float64(a.DieselPerKWh)*kWh)
	}
	return 0
}

// --- Fig 22: annual depreciation breakdown ----------------------------------

// Component is one bar segment of Fig 22.
type Component struct {
	Name   string
	Annual Dollars
}

// Depreciation returns the annual depreciation breakdown for an in-situ
// system powered by the given generator.
func (a Assumptions) Depreciation(g Generator) []Component {
	base := []Component{
		{"Server", Dollars(float64(a.ServerUnitCost) * float64(a.ServerCount) / a.ITLifeYears)},
		{"Cellular", Dollars(float64(a.CellularHW) / a.ITLifeYears)},
		{"HVAC", Dollars(float64(a.HVAC) / a.ITLifeYears)},
		{"PDU", Dollars(float64(a.PDU) / a.ITLifeYears)},
		{"Switch", Dollars(float64(a.NetworkSwitch) / a.ITLifeYears)},
		{"Maintenance", a.MaintenancePerY},
	}
	switch g {
	case SolarBattery:
		base = append(base,
			Component{"Battery", Dollars(float64(a.BatteryPerAh) * a.BatteryAh / a.BatteryLifeYears)},
			Component{"PV Panels", Dollars(float64(a.SolarPerW) * a.SolarW / a.SolarLifeYears)},
			Component{"Inverter", Dollars(float64(a.InverterCost) / a.SolarLifeYears)},
		)
	case Diesel:
		gen := float64(a.DieselPerKW) * a.SolarW / 1000
		fuel := float64(a.DieselPerKWh) * a.DailyLoadKWh * 365
		base = append(base,
			Component{"Generator", Dollars(gen / a.DieselLifeYears)},
			Component{"Fuel", Dollars(fuel)},
		)
	case FuelCell:
		sys := float64(a.FuelCellPerW) * a.SolarW
		fuel := float64(a.FuelCellPerKWh) * a.DailyLoadKWh * 365
		base = append(base,
			Component{"Generator", Dollars(sys / a.FCSystemLifeYears * 1.4)}, // system + stack refresh
			Component{"Fuel", Dollars(fuel)},
		)
	}
	return base
}

// TotalAnnual sums a depreciation breakdown.
func TotalAnnual(parts []Component) Dollars {
	var total Dollars
	for _, p := range parts {
		total += p.Annual
	}
	return total
}

// --- Fig 23: scale-out vs cloud ----------------------------------------------

// ScaleOutCost is the amortised annual cost of scaling the in-situ system
// out to meet the site's processing demand at the given sunshine fraction
// (§6.5: lower sunshine → lower per-system throughput → more systems).
func (a Assumptions) ScaleOutCost(sunshine float64) Dollars {
	if sunshine <= 0 {
		return Dollars(math.Inf(1))
	}
	systems := 1.0 / sunshine // capacity scales with harvested energy
	annualIT := float64(a.itCapEx()) / a.ITLifeYears
	annualPower := float64(a.powerCapEx())/a.SolarLifeYears +
		float64(a.BatteryPerAh)*a.BatteryAh/a.BatteryLifeYears
	annual := (annualIT+annualPower)*systems + float64(a.MaintenancePerY) +
		float64(a.CellularPerGB)*a.RawGBPerDay*a.ResidualFrac*365
	return Dollars(annual)
}

// CloudRelianceCost is the amortised annual cost of shipping everything to
// the cloud instead (cellular transmission + cloud processing).
func (a Assumptions) CloudRelianceCost() Dollars {
	return Dollars((float64(a.CellularPerGB)+float64(a.CloudPerGB))*a.RawGBPerDay*365 +
		float64(a.CellularHW)/a.ITLifeYears)
}

// --- Fig 24: TCO vs data rate -------------------------------------------------

// CloudTCO is the five-year cost of cloud-based remote processing at the
// given raw data rate.
func (a Assumptions) CloudTCO(gbPerDay float64) Dollars {
	const years = 5.0
	return a.CellularHW +
		Dollars((float64(a.CellularPerGB)+float64(a.CloudPerGB))*gbPerDay*365*years)
}

// InSituTCO is the five-year cost of local processing at the given raw
// data rate and sunshine fraction: enough replicated systems to cover the
// demand, plus residual transmission.
func (a Assumptions) InSituTCO(gbPerDay, sunshine float64) Dollars {
	const years = 5.0
	if sunshine <= 0 {
		return Dollars(math.Inf(1))
	}
	capacity := a.SiteCapacityGBD * sunshine
	systems := math.Max(1, math.Ceil(gbPerDay/capacity))
	// Lower sunshine also means a bigger power system (panels + buffer)
	// per unit of compute, not just more systems.
	perSystem := float64(a.itCapEx()) + float64(a.powerCapEx())/sunshine +
		float64(a.batteryReplacement(years))
	residual := float64(a.CellularPerGB) * gbPerDay * a.ResidualFrac * 365 * years
	return Dollars(systems*perSystem + float64(a.MaintenancePerY)*years + residual + float64(a.CellularHW))
}

// Crossover finds the data rate (GB/day) above which in-situ processing at
// the given sunshine fraction becomes cheaper than the cloud (Fig 24's
// "cost-effective zone" boundary, ~0.9 GB/day for the prototype).
func (a Assumptions) Crossover(sunshine float64) float64 {
	lo, hi := 0.01, 1000.0
	if a.InSituTCO(lo, sunshine) <= a.CloudTCO(lo) {
		return lo
	}
	for i := 0; i < 60; i++ {
		mid := math.Sqrt(lo * hi) // bisect in log space
		if a.InSituTCO(mid, sunshine) <= a.CloudTCO(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}

// --- Fig 25: application scenarios --------------------------------------------

// Scenario is one bubble of Fig 25.
type Scenario struct {
	Key       string
	Name      string
	GBPerDay  float64
	Days      float64
	ReplaceHW bool // long deployments replace hardware
}

// Scenarios returns the paper's five in-situ big-data applications.
func Scenarios() []Scenario {
	return []Scenario{
		{"A", "Seismic Analysis", 228, 30, false},
		{"B", "Post-Earthquake Disaster Monitoring", 36, 60, false},
		{"C", "Wildlife Behavior Study", 30, 365, false},
		{"D", "Coastal Monitoring", 80, 730, true},
		{"E", "Volcano Surveillance", 120, 1000, true},
	}
}

// ScenarioSaving returns the fractional cost saving of in-situ processing
// versus cloud reliance for the scenario.
func (a Assumptions) ScenarioSaving(s Scenario) float64 {
	years := s.Days / 365
	cloud := float64(a.CellularHW) +
		(float64(a.CellularPerGB)+float64(a.CloudPerGB))*s.GBPerDay*s.Days
	capacityNeeded := math.Max(1, math.Ceil(s.GBPerDay/a.SiteCapacityGBD))
	perSystem := float64(a.itCapEx() + a.powerCapEx())
	if s.ReplaceHW {
		perSystem *= 1 + math.Max(0, years-a.ITLifeYears)/a.ITLifeYears
	}
	insitu := capacityNeeded*perSystem +
		float64(a.batteryReplacement(years))*capacityNeeded +
		float64(a.MaintenancePerY)*years +
		float64(a.CellularPerGB)*s.GBPerDay*a.ResidualFrac*s.Days +
		float64(a.CellularHW)
	if cloud <= 0 {
		return 0
	}
	return 1 - insitu/cloud
}

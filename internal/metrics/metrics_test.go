package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSeriesBasics(t *testing.T) {
	s := NewSeries()
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.Count() != 8 {
		t.Errorf("count = %d", s.Count())
	}
	if got := s.Mean(); got != 5 {
		t.Errorf("mean = %v", got)
	}
	if got := s.StdDev(); math.Abs(got-2) > 1e-12 {
		t.Errorf("stddev = %v, want 2", got)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
}

func TestEmptySeries(t *testing.T) {
	s := NewSeries()
	if s.Mean() != 0 || s.StdDev() != 0 || s.Percentile(50) != 0 {
		t.Error("empty series aggregates should be zero")
	}
}

func TestPercentile(t *testing.T) {
	s := NewSeries()
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if got := s.Percentile(50); got != 50 {
		t.Errorf("p50 = %v", got)
	}
	if got := s.Percentile(99); got != 99 {
		t.Errorf("p99 = %v", got)
	}
	if got := s.Percentile(0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if got := s.Percentile(100); got != 100 {
		t.Errorf("p100 = %v", got)
	}
}

func TestStreamingSeriesPanicsOnPercentile(t *testing.T) {
	s := NewStreamingSeries()
	s.Add(1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	s.Percentile(50)
}

func TestStdDevNonNegativeProperty(t *testing.T) {
	f := func(vals []float64) bool {
		s := NewStreamingSeries()
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e9 {
				continue
			}
			s.Add(v)
		}
		sd := s.StdDev()
		return sd >= 0 && !math.IsNaN(sd)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanBoundedByMinMax(t *testing.T) {
	f := func(vals []float64) bool {
		s := NewStreamingSeries()
		any := false
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e9 {
				continue
			}
			s.Add(v)
			any = true
		}
		if !any {
			return true
		}
		m := s.Mean()
		return m >= s.Min()-1e-9 && m <= s.Max()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestImprovement(t *testing.T) {
	if got := Improvement(150, 100); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("improvement = %v, want 0.5", got)
	}
	if got := Improvement(80, 100); math.Abs(got+0.2) > 1e-12 {
		t.Errorf("regression = %v, want -0.2", got)
	}
	if got := Improvement(0, 0); got != 0 {
		t.Errorf("0/0 improvement = %v", got)
	}
	if !math.IsInf(Improvement(1, 0), 1) {
		t.Error("x/0 should be +Inf")
	}
}

func TestReductionImprovement(t *testing.T) {
	if got := ReductionImprovement(50, 100); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("latency reduction = %v, want 0.5", got)
	}
	if got := ReductionImprovement(0, 0); got != 0 {
		t.Errorf("0/0 reduction = %v", got)
	}
}

package main

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"time"

	"insure/internal/battery"
	"insure/internal/core"
	"insure/internal/fleet"
	"insure/internal/journal"
	"insure/internal/sim"
	"insure/internal/solar"
	"insure/internal/telemetry"
	"insure/internal/trace"
	"insure/internal/wan"
	"insure/internal/workload"
)

// worldConfig shapes the daemon's federated scenario. Everything is derived
// from Seed: the per-site weather lanes, the WAN partition plan, and every
// chunk fate — two daemons with the same config walk identical campaigns,
// which is what makes kill/resume provably bit-identical.
type worldConfig struct {
	Seed      int64
	Sites     int
	Days      int
	Batteries int
	Servers   int
	JobGB     float64
	Migration bool

	// Degraded-backhaul shape.
	Drop, Corrupt    float64
	PartitionsPerDay int
	partitions       []wan.Outage // test override; nil plans from Seed

	// StateDir, when set, makes the world durable: the migration log lives
	// in StateDir/miglog, landed checkpoint images in StateDir/images, and
	// a day-boundary snapshot of every site's batteries, control state, and
	// work queues lives in StateDir itself.
	StateDir string
	// FS mounts the durable state on an alternative filesystem — the
	// disk-fault storm injects storage failures through it. Nil means the
	// real disk.
	FS journal.FS
}

// snapStateVersion guards the fleetd snapshot layout.
const snapStateVersion = 1

// world is the assembled fleet: persistent per-site state, the coordinator,
// and the snapshot store. It is built by newWorld — cold or resumed — and
// advanced by run.
type world struct {
	cfg   worldConfig
	banks []*battery.Bank
	sinks []*sim.BatchSink
	mgrs  []*core.Manager
	coord *fleet.Coordinator
	net   *wan.Network
	snap  *journal.Store // nil without StateDir
	scrub *journal.Scrubber
	reg   *telemetry.Registry

	day     int // completed days
	resumed bool

	// abort is consulted by the coordinator at every tick; the runner
	// swaps it in before each day so signals and the kill hook reach the
	// simulation loop.
	abort func(day int, tod time.Duration) bool
}

// errKilled distinguishes the -kill-at test hook from a signal abort.
var errKilled = errors.New("insure-fleetd: killed by -kill-at")

// darkSite is the scenario's storm-parked site index.
const darkSite = 0

// dayTrace is site i's weather for one day. Seed lanes follow the chaos
// package's seeding contract: per-site lanes at seed+1000*(site+1)+day so
// no two sites (and no two days) ever share a solar stream.
func dayTrace(seed int64, site, day int) *trace.Trace {
	if site == darkSite {
		return trace.Synthesize(solar.Rainy, seed+31*int64(day), time.Second)
	}
	return trace.Synthesize(solar.Sunny, seed+1000*int64(site+1)+int64(day), time.Second)
}

// dayConfigs builds the per-site sim configs for one day, carrying the
// persistent banks across.
func (w *world) dayConfigs(day int) []sim.Config {
	cfgs := make([]sim.Config, w.cfg.Sites)
	for i := range cfgs {
		scfg := sim.DefaultConfig(dayTrace(w.cfg.Seed, i, day))
		scfg.BatteryCount = w.cfg.Batteries
		scfg.ServerCount = w.cfg.Servers
		scfg.RecordEvery = time.Minute
		scfg.Bank = w.banks[i]
		cfgs[i] = scfg
	}
	return cfgs
}

// newWorld assembles the fleet. With a StateDir holding a prior snapshot it
// resumes: the migration log is rolled back to the snapshot's sequence
// number, the coordinator replays it, and every site's batteries, control
// state, and queues are restored — the resumed world re-runs the partial
// day and produces the byte-identical log the undisturbed run would have.
func newWorld(cfg worldConfig) (*world, error) {
	if cfg.Sites < 2 {
		return nil, fmt.Errorf("insure-fleetd: need at least two sites")
	}
	if cfg.Days < 1 {
		return nil, fmt.Errorf("insure-fleetd: need at least one day")
	}

	w := &world{cfg: cfg}
	sites := make([]fleet.Site, cfg.Sites)
	w.banks = make([]*battery.Bank, cfg.Sites)
	w.sinks = make([]*sim.BatchSink, cfg.Sites)
	w.mgrs = make([]*core.Manager, cfg.Sites)
	for i := range sites {
		soc := 0.50
		if i == darkSite {
			soc = 0.30
		}
		bank, err := battery.NewBank(battery.DefaultParams(), cfg.Batteries, soc)
		if err != nil {
			return nil, err
		}
		w.banks[i] = bank
		mcfg := core.DefaultConfig()
		if cfg.Migration {
			mcfg.Survival = core.DefaultSurvivalConfig()
		}
		w.mgrs[i] = core.New(mcfg, cfg.Batteries)
		arrivals := []time.Duration{7 * time.Hour}
		if i == darkSite {
			arrivals = []time.Duration{7 * time.Hour, 13 * time.Hour}
		}
		w.sinks[i] = &sim.BatchSink{
			Queue:    workload.NewBatchQueue(workload.Seismic()),
			Arrivals: arrivals,
			JobGB:    cfg.JobGB,
		}
		sites[i] = fleet.Site{
			Name:    fmt.Sprintf("site%d", i),
			Sink:    w.sinks[i],
			Manager: w.mgrs[i],
		}
	}

	partitions := cfg.partitions
	if partitions == nil && cfg.PartitionsPerDay > 0 {
		partitions = wan.PlanOutages(cfg.Seed+77, cfg.Days, cfg.Sites,
			cfg.PartitionsPerDay, 9*time.Hour, 21*time.Hour, 2*time.Hour, 6*time.Hour)
	}
	net, err := wan.New(wan.Config{
		Seed: cfg.Seed, Sites: cfg.Sites,
		DropRate: cfg.Drop, CorruptRate: cfg.Corrupt,
		Outages: partitions,
	})
	if err != nil {
		return nil, err
	}
	w.net = net

	// Durable state: load the snapshot (if any) BEFORE the coordinator
	// opens the migration log, because resuming means rolling the log back
	// to the snapshot's moment first — records the dead incarnation wrote
	// during its final partial day are crash-consistent garbage.
	fsys := cfg.FS
	if fsys == nil {
		fsys = journal.Disk
	}
	var miglogDir string
	var images *fleet.ImageStore
	var snapDec *journal.Decoder
	if cfg.StateDir != "" {
		miglogDir = filepath.Join(cfg.StateDir, "miglog")
		if err := fsys.MkdirAll(miglogDir); err != nil {
			return nil, err
		}
		images, err = fleet.NewImageStore(fsys, filepath.Join(cfg.StateDir, "images"))
		if err != nil {
			return nil, err
		}
		res, err := journal.LoadFS(fsys, cfg.StateDir)
		if err != nil {
			return nil, err
		}
		if res.Snapshot != nil {
			d := journal.NewDecoder(res.Snapshot)
			d.ExpectVersion(snapStateVersion)
			w.day = d.Int()
			miglogSeq := d.U64()
			if err := d.Err(); err != nil {
				return nil, fmt.Errorf("insure-fleetd: corrupt snapshot: %w", err)
			}
			if err := journal.TruncateAfterSeqFS(fsys, miglogDir, miglogSeq); err != nil {
				return nil, err
			}
			snapDec = d
			w.resumed = true
		} else {
			// No snapshot: the prior incarnation (if any) died inside day
			// 0. Cold-start — wipe its partial records so the re-run day
			// appends onto an empty log.
			if err := journal.TruncateAfterSeqFS(fsys, miglogDir, 0); err != nil {
				return nil, err
			}
		}
		// Storage integrity plane: the scrubber patrols all three stores —
		// snapshots, migration log, landed images — repairing damaged
		// mirror copies. The run loop sweeps at every day boundary; the
		// "storage" health check reports writability, mirror sync, and
		// sweep freshness.
		w.scrub = journal.NewScrubber(
			journal.Target{Name: "snapshots", Dir: cfg.StateDir, FS: fsys},
			journal.Target{Name: "miglog", Dir: miglogDir, FS: fsys},
			journal.Target{Name: "images", Dir: images.Dir(), FS: fsys},
		)
		w.scrub.Interval = 24 * time.Hour // swept at day boundaries, not on a wall clock
	}

	w.coord, err = fleet.New(fleet.Config{
		Migration: cfg.Migration,
		WAN:       net,
		LogDir:    miglogDir,
		LogFS:     cfg.FS,
		Images:    images,
		Abort: func(day int, tod time.Duration) bool {
			return w.abort != nil && w.abort(day, tod)
		},
	}, sites)
	if err != nil {
		return nil, err
	}

	// Restore on top of the replayed log: the coordinator's detector view
	// and every site's physical state land exactly on the day boundary.
	if snapDec != nil {
		if err := w.coord.RestoreState(snapDec); err != nil {
			return nil, err
		}
		for i := range sites {
			if err := w.banks[i].RestoreState(snapDec); err != nil {
				return nil, err
			}
			blob := snapDec.String()
			if err := snapDec.Err(); err != nil {
				return nil, fmt.Errorf("insure-fleetd: corrupt snapshot: %w", err)
			}
			if err := w.mgrs[i].Restore([]byte(blob)); err != nil {
				return nil, err
			}
			if err := w.sinks[i].RestoreState(snapDec); err != nil {
				return nil, err
			}
		}
		if err := snapDec.Err(); err != nil {
			return nil, fmt.Errorf("insure-fleetd: corrupt snapshot: %w", err)
		}
	}

	if cfg.StateDir != "" {
		w.snap, err = journal.OpenFS(fsys, cfg.StateDir)
		if err != nil {
			return nil, err
		}
	}
	return w, nil
}

// snapshot persists the day-boundary state: the completed-day count, the
// migration log's applied sequence, the coordinator's detector view, and
// every site's batteries, control state, and queues.
func (w *world) snapshot() error {
	if w.snap == nil {
		return nil
	}
	var enc journal.Encoder
	enc.U8(snapStateVersion)
	enc.Int(w.day)
	enc.U64(w.coord.LogSeq())
	w.coord.AppendState(&enc)
	var scratch journal.Encoder
	for i := range w.banks {
		w.banks[i].AppendState(&enc)
		scratch.Reset()
		w.mgrs[i].AppendState(&scratch)
		enc.String(string(scratch.Bytes()))
		w.sinks[i].AppendState(&enc)
	}
	return w.snap.Snapshot(enc.Bytes())
}

// attachTelemetry publishes the coordinator series and installs per-site
// link health checks: /healthz degrades while any site's heartbeat is cut.
func (w *world) attachTelemetry() *telemetry.Registry {
	reg := telemetry.NewRegistry()
	w.coord.AttachTelemetry(reg)
	if w.scrub != nil {
		w.scrub.AttachTelemetry(reg)
	}
	for i := 0; i < w.cfg.Sites; i++ {
		name := fmt.Sprintf("site%d", i)
		lbl := telemetry.Label{Key: "site", Value: name}
		reach := reg.Gauge("insure_fleet_site_reachable", "", lbl)
		up := reg.Gauge("insure_fleet_site_up", "", lbl)
		reg.AddHealthCheck(name+"-link", func() error {
			if up.Value() < 1 {
				return fmt.Errorf("%s lost", name)
			}
			if reach.Value() < 1 {
				return fmt.Errorf("%s unreachable", name)
			}
			return nil
		})
	}
	w.reg = reg
	return reg
}

// run drives the remaining days. A context cancellation (signal) or the
// kill hook aborts mid-day with the state dir intact at the last boundary;
// the next incarnation resumes from there.
func (w *world) run(ctx context.Context, killAt func(day int, tod time.Duration) bool) error {
	w.abort = func(day int, tod time.Duration) bool {
		select {
		case <-ctx.Done():
			return true
		default:
		}
		return killAt != nil && killAt(day, tod)
	}
	for w.day < w.cfg.Days {
		if _, err := w.coord.RunDay(w.dayConfigs(w.day)); err != nil {
			if errors.Is(err, fleet.ErrAborted) {
				if ctx.Err() != nil {
					return ctx.Err()
				}
				return errKilled
			}
			return err
		}
		w.day++
		if err := w.snapshot(); err != nil {
			return err
		}
		// Day-boundary scrub: repair any decay before the next day's
		// commits land on top of it.
		if w.scrub != nil {
			if _, err := w.scrub.RunOnce(); err != nil {
				return err
			}
		}
	}
	return nil
}

// close releases the coordinator's log and the snapshot store.
func (w *world) close() error {
	err := w.coord.Close()
	if w.snap != nil {
		if cerr := w.snap.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

package fleet_test

import (
	"reflect"
	"testing"
	"time"

	"insure/internal/fleet"
	"insure/internal/sim"
	"insure/internal/wan"
)

// lossyWAN builds a network for n sites with heavy chunk loss and the given
// scheduled outage windows.
func lossyWAN(t *testing.T, n int, outages []wan.Outage) *wan.Network {
	t.Helper()
	net, err := wan.New(wan.Config{
		Seed: 71, Sites: n,
		DropRate: 0.30, CorruptRate: 0.05,
		Outages: outages,
	})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// TestWANObserverMatchesSoloRuns extends the calibration bar to the WAN
// path: with migration off, attaching a degraded network — drops, corruption,
// a partition that makes the detector suspect and then heal a site — must
// leave every site's day byte-identical to its solo run. The WAN may only
// change what the coordinator believes, never what the plants do.
func TestWANObserverMatchesSoloRuns(t *testing.T) {
	const n = 3

	sites, cfgs := soloSites(n)
	want := make([]sim.Result, n)
	for i := range sites {
		sys, err := sim.New(cfgs[i], sites[i].Sink)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = sys.Run(sites[i].Manager)
	}

	// Site 1 is cut off for 30 minutes inside the 9-11h window: long
	// enough to be suspected (SuspectAfter=2 passes), far short of the
	// lease (96 passes), so it must heal, not die.
	outages := []wan.Outage{{Site: 1, Day: 0, From: 9*time.Hour + 30*time.Minute, To: 10 * time.Hour}}
	sites, cfgs = soloSites(n)
	c, err := fleet.New(fleet.Config{Migration: false, WAN: lossyWAN(t, n, outages)}, sites)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.RunDay(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("site %d: WAN observer run differs from solo run\n got: %+v\nwant: %+v", i, got[i], want[i])
		}
	}
	rep := c.Report()
	if tot := c.Totals(); !reflect.DeepEqual(tot, fleet.Totals{}) {
		t.Errorf("WAN observer accumulated migration totals: %+v", tot)
	}
	if rep.Heals < 1 {
		t.Errorf("partitioned site never healed: heals=%d", rep.Heals)
	}
	if rep.Totals.SitesLost != 0 {
		t.Errorf("a 30-minute partition must not expire an 8-hour lease: %+v", rep.Totals)
	}
	if !rep.Sites[1].Reachable {
		t.Errorf("site 1 still unreachable after the outage window closed: %+v", rep.Sites[1])
	}
}

// TestWANMigrationExactlyOnceUnderLoss runs the storm-darkened migration
// scenario across a 30%-drop backhaul: work still moves to the sunny sites,
// every chunk loss shows up as retransmitted (and billed) bytes, no job is
// lost or double-run, and the same seed reproduces the day exactly.
func TestWANMigrationExactlyOnceUnderLoss(t *testing.T) {
	run := func() *fleet.Report {
		sites, cfgs := migrationScenario(3, true)
		c, err := fleet.New(fleet.Config{Migration: true, WAN: lossyWAN(t, 3, nil)}, sites)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.RunDay(cfgs); err != nil {
			t.Fatal(err)
		}
		return c.Report()
	}

	rep := run()
	tot := rep.Totals
	if tot.MigratedGB <= 0 || tot.JobsMoved == 0 {
		t.Fatalf("no work migrated across the lossy WAN: %s", rep)
	}
	if tot.ChunkDrops == 0 {
		t.Errorf("a 30%% drop rate produced zero chunk drops: %+v", tot)
	}
	if tot.RetransmitGB <= 0 {
		t.Errorf("chunk drops must surface as retransmitted bytes: %+v", tot)
	}
	if tot.EnergyWh <= 0 || tot.Cost <= 0 {
		t.Errorf("attempted bytes were not billed: %+v", tot)
	}
	if tot.JobsDoubleRun != 0 || tot.SplitBrain != 0 {
		t.Fatalf("exactly-once guards tripped: %+v", tot)
	}
	landed := rep.Sites[1].JobsIn + rep.Sites[2].JobsIn
	if landed == 0 {
		t.Errorf("no migrated jobs landed at the sunny sites: %s", rep)
	}
	if landed > tot.JobsMoved {
		t.Errorf("more jobs landed (%d) than were ever moved (%d)", landed, tot.JobsMoved)
	}

	if rep2 := run(); !reflect.DeepEqual(rep, rep2) {
		t.Errorf("same-seed WAN runs diverged:\n 1st: %s\n 2nd: %s", rep, rep2)
	}
}

// TestWANLeaseExpiryDeclaresDeath kills a donor site physically and shrinks
// the lease so the failure detector — which only sees missed heartbeats —
// declares the loss within the day and journals it, while the other sites
// keep working.
func TestWANLeaseExpiryDeclaresDeath(t *testing.T) {
	sites, cfgs := migrationScenario(3, true)
	c, err := fleet.New(fleet.Config{
		Migration: true, WAN: lossyWAN(t, 3, nil),
		SuspectAfter: 2, LeasePasses: 6, // 30 min at the 5-minute period
	}, sites)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.ScheduleSiteFailure(0, 10*time.Hour, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunDay(cfgs); err != nil {
		t.Fatal(err)
	}
	rep := c.Report()
	if !rep.Sites[1].Dead {
		t.Fatalf("scheduled failure did not kill site 1: %s", rep)
	}
	if rep.Totals.SitesLost != 1 {
		t.Errorf("lease expiry did not declare the dead site: SitesLost=%d", rep.Totals.SitesLost)
	}
	if rep.Sites[1].Reachable {
		t.Errorf("dead site still reported reachable: %+v", rep.Sites[1])
	}
	if rep.Sites[2].Dead {
		t.Errorf("survivor site 2 was disturbed: %+v", rep.Sites[2])
	}
	if rep.Totals.JobsDoubleRun != 0 || rep.Totals.SplitBrain != 0 {
		t.Fatalf("exactly-once guards tripped around the site loss: %+v", rep.Totals)
	}
}

// TestWANConfigValidation pins the WAN/fleet size check.
func TestWANConfigValidation(t *testing.T) {
	sites, _ := soloSites(2)
	if _, err := fleet.New(fleet.Config{WAN: lossyWAN(t, 3, nil)}, sites); err == nil {
		t.Error("want error when WAN size disagrees with site count")
	}
}

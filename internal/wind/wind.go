// Package wind models a small wind turbine as an alternative or complement
// to the solar array. The paper motivates standalone *wind/solar* systems
// with batteries as the right power source for in-situ servers (§1, §2.2:
// "standalone power supplies such as solar/wind system ... are often more
// suitable for data processing in field"); the prototype used solar only,
// so this package is the wind half of that design space.
//
// The wind speed process is a mean-reverting random walk shaped to a
// Rayleigh-like long-run distribution — the standard small-site assumption
// — and the turbine applies a cut-in/rated/cut-out power curve.
package wind

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"insure/internal/units"
)

// Regime classifies a site's wind resource.
type Regime int

const (
	// Calm sites average ~3.5 m/s — marginal for generation.
	Calm Regime = iota
	// Moderate sites average ~6 m/s — typical inland deployment.
	Moderate
	// Windy sites average ~9 m/s — coastal/ridge deployments.
	Windy
)

func (r Regime) String() string {
	switch r {
	case Calm:
		return "calm"
	case Moderate:
		return "moderate"
	case Windy:
		return "windy"
	default:
		return fmt.Sprintf("Regime(%d)", int(r))
	}
}

// meanSpeed returns the regime's long-run mean wind speed in m/s.
func (r Regime) meanSpeed() float64 {
	switch r {
	case Calm:
		return 3.5
	case Windy:
		return 9.0
	default:
		return 6.0
	}
}

// Field is the stochastic wind-speed process for one site.
type Field struct {
	regime Regime
	rng    *rand.Rand
	speed  float64 // current wind speed, m/s
}

// NewField returns a reproducible wind process for the site.
func NewField(regime Regime, seed int64) *Field {
	return &Field{
		regime: regime,
		rng:    rand.New(rand.NewSource(seed)),
		speed:  regime.meanSpeed(),
	}
}

// Regime returns the site's resource class.
func (f *Field) Regime() Regime { return f.regime }

// Step advances the process by dt and returns the wind speed in m/s.
// Mean reversion with a ~10-minute time constant plus gust noise gives the
// autocorrelation structure real anemometer traces show.
func (f *Field) Step(dt time.Duration) float64 {
	const tau = 600.0 // seconds
	mean := f.regime.meanSpeed()
	dtSec := dt.Seconds()
	alpha := 1 - math.Exp(-dtSec/tau)
	f.speed += (mean - f.speed) * alpha
	// Gust noise scales with the mean (turbulence intensity ~15%).
	f.speed += f.rng.NormFloat64() * 0.15 * mean * math.Sqrt(dtSec/tau)
	if f.speed < 0 {
		f.speed = 0
	}
	return f.speed
}

// Turbine is a small horizontal-axis wind turbine's power curve.
type Turbine struct {
	// Rated is the nameplate output at RatedSpeed.
	Rated units.Watt
	// CutIn, RatedSpeed, CutOut bound the power curve (m/s).
	CutIn      float64
	RatedSpeed float64
	CutOut     float64
}

// DefaultTurbine is a 1 kW small turbine, a plausible companion to the
// prototype's 1.6 kW solar array.
func DefaultTurbine() Turbine {
	return Turbine{Rated: 1000, CutIn: 3, RatedSpeed: 11, CutOut: 22}
}

// Output returns the electrical power at wind speed v (m/s): zero below
// cut-in and above cut-out, cubic between cut-in and rated, flat at rated.
func (t Turbine) Output(v float64) units.Watt {
	switch {
	case v < t.CutIn || v >= t.CutOut:
		return 0
	case v >= t.RatedSpeed:
		return t.Rated
	default:
		// Power grows with v³, normalised to hit Rated at RatedSpeed.
		frac := (math.Pow(v, 3) - math.Pow(t.CutIn, 3)) /
			(math.Pow(t.RatedSpeed, 3) - math.Pow(t.CutIn, 3))
		return units.Watt(float64(t.Rated) * frac)
	}
}

// Supply couples a wind field and turbine into a power source with the
// same Step contract as solar.Supply.
type Supply struct {
	Field   *Field
	Turbine Turbine

	harvested units.WattHour
}

// NewSupply assembles the default 1 kW turbine at the given site.
func NewSupply(regime Regime, seed int64) *Supply {
	return &Supply{Field: NewField(regime, seed), Turbine: DefaultTurbine()}
}

// Step returns the harvested wind power for this tick. Wind, unlike solar,
// blows around the clock, so tod is unused — the parameter keeps the
// signature interchangeable with the solar supply.
func (s *Supply) Step(tod, dt time.Duration) units.Watt {
	p := s.Turbine.Output(s.Field.Step(dt))
	s.harvested += units.Energy(p, dt)
	return p
}

// Harvested is the cumulative energy captured.
func (s *Supply) Harvested() units.WattHour { return s.harvested }

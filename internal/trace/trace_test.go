package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"insure/internal/solar"
	"insure/internal/units"
)

func TestSynthesizeWindow(t *testing.T) {
	tr := Synthesize(solar.Sunny, 1, time.Minute)
	if tr.Start != solar.Sunrise {
		t.Errorf("start = %v", tr.Start)
	}
	wantLen := int((solar.Sunset - solar.Sunrise) / time.Minute)
	if tr.Len() != wantLen {
		t.Errorf("len = %d, want %d", tr.Len(), wantLen)
	}
	if tr.End() != solar.Sunset {
		t.Errorf("end = %v", tr.End())
	}
}

func TestAtLookup(t *testing.T) {
	tr := Synthesize(solar.Sunny, 1, time.Minute)
	if tr.At(3*time.Hour) != 0 {
		t.Error("power before sunrise")
	}
	if tr.At(22*time.Hour) != 0 {
		t.Error("power after sunset")
	}
	if tr.At(13*time.Hour) <= 0 {
		t.Error("no power at midday on a sunny trace")
	}
}

func TestScale(t *testing.T) {
	tr := Synthesize(solar.Sunny, 1, time.Minute)
	half := tr.Scale(0.5)
	if math.Abs(float64(half.TotalEnergy())-0.5*float64(tr.TotalEnergy())) > 1 {
		t.Error("Scale(0.5) did not halve energy")
	}
	if half.Len() != tr.Len() {
		t.Error("scale changed length")
	}
}

func TestScaleToEnergy(t *testing.T) {
	tr := Synthesize(solar.Cloudy, 3, time.Minute)
	target := units.KiloWattHour(5.9)
	got := tr.ScaleToEnergy(target).TotalEnergy()
	if math.Abs(float64(got-target)) > 1 {
		t.Errorf("scaled energy = %v, want %v", got, target)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := Synthesize(solar.Cloudy, 9, time.Minute)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tr.Len() || back.Start != tr.Start || back.Step != tr.Step {
		t.Fatalf("shape mismatch: %d/%v/%v vs %d/%v/%v",
			back.Len(), back.Start, back.Step, tr.Len(), tr.Start, tr.Step)
	}
	for i := range tr.Samples {
		if math.Abs(float64(back.Samples[i]-tr.Samples[i])) > 0.001 {
			t.Fatalf("sample %d: %v vs %v", i, back.Samples[i], tr.Samples[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"too short":      "seconds,watts\n0,1.0\n",
		"bad timestamp":  "seconds,watts\nx,1.0\n60,2.0\n120,3.0\n",
		"bad power":      "seconds,watts\n0,abc\n60,2.0\n120,3.0\n",
		"nonuniform":     "seconds,watts\n0,1.0\n60,2.0\n200,3.0\n",
		"non-increasing": "seconds,watts\n60,1.0\n60,2.0\n60,3.0\n",
	}
	for name, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestHighLowGenerationLevels(t *testing.T) {
	hi := HighGeneration()
	lo := LowGeneration()
	if avg := float64(hi.Average()); math.Abs(avg-1114) > 15 {
		t.Errorf("high trace average = %.0f W, want ~1114 (Fig 15a)", avg)
	}
	if avg := float64(lo.Average()); math.Abs(avg-427) > 10 {
		t.Errorf("low trace average = %.0f W, want ~427 (Fig 15b)", avg)
	}
	if hi.Peak() <= lo.Peak() {
		t.Error("high trace should peak above low trace")
	}
}

func TestTable6DayBudgets(t *testing.T) {
	for _, c := range []struct {
		cond solar.Condition
		kwh  float64
	}{{solar.Sunny, 7.9}, {solar.Cloudy, 5.9}, {solar.Rainy, 3.0}} {
		tr := Table6Day(c.cond, 1)
		if got := tr.TotalEnergy().KWh(); math.Abs(got-c.kwh) > 0.01 {
			t.Errorf("%v day energy = %.2f kWh, want %.1f", c.cond, got, c.kwh)
		}
	}
}

func TestEmptyTrace(t *testing.T) {
	var tr Trace
	if tr.Average() != 0 || tr.Peak() != 0 || tr.TotalEnergy() != 0 {
		t.Error("empty trace aggregates should be zero")
	}
	if tr.At(12*time.Hour) != 0 {
		t.Error("empty trace lookup should be zero")
	}
}

func TestAtDegenerateStep(t *testing.T) {
	// Regression: a hand-built trace with Step == 0 used to panic At with an
	// integer divide by zero. It must now return zero like any other
	// degenerate lookup.
	tr := &Trace{Start: 0, Step: 0, Samples: []units.Watt{100}}
	if got := tr.At(0); got != 0 {
		t.Errorf("degenerate trace At = %v, want 0", got)
	}
	if got := tr.At(5 * time.Hour); got != 0 {
		t.Errorf("degenerate trace At = %v, want 0", got)
	}
}

func TestValidate(t *testing.T) {
	good := Synthesize(solar.Sunny, 1, time.Minute)
	if err := good.Validate(); err != nil {
		t.Fatalf("synthesised trace invalid: %v", err)
	}
	cases := map[string]*Trace{
		"zero step":     {Step: 0, Samples: []units.Watt{1}},
		"negative step": {Step: -time.Second, Samples: []units.Watt{1}},
		"no samples":    {Step: time.Second},
	}
	for name, tr := range cases {
		if err := tr.Validate(); err == nil {
			t.Errorf("%s: Validate accepted", name)
		}
	}
}

func TestReadCSVMalformed(t *testing.T) {
	cases := map[string]string{
		"duplicate timestamps": "seconds,watts\n0,1.0\n0,2.0\n0,3.0\n",
		"decreasing":           "seconds,watts\n120,1.0\n60,2.0\n0,3.0\n",
		"second row bad":       "seconds,watts\n0,1.0\nx,2.0\n120,3.0\n",
		"wrong field count":    "seconds,watts\n0,1.0,extra\n60,2.0\n120,3.0\n",
		"empty input":          "",
		"header only":          "seconds,watts\n",
	}
	for name, in := range cases {
		tr, err := ReadCSV(strings.NewReader(in))
		if err == nil {
			t.Errorf("%s: accepted (step=%v, len=%d)", name, tr.Step, tr.Len())
		}
	}
}

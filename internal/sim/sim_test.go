package sim

import (
	"math"
	"testing"
	"time"

	"insure/internal/relay"
	"insure/internal/trace"
	"insure/internal/units"
	"insure/internal/workload"
)

// idleManager leaves everything alone — useful for plant-only physics.
type idleManager struct{}

func (idleManager) Name() string          { return "idle" }
func (idleManager) Period() time.Duration { return 30 * time.Second }
func (idleManager) Control(*System, time.Duration) {
}

// chargeAllManager closes every charging relay and never starts servers.
type chargeAllManager struct{}

func (chargeAllManager) Name() string          { return "charge-all" }
func (chargeAllManager) Period() time.Duration { return 30 * time.Second }
func (chargeAllManager) Control(s *System, _ time.Duration) {
	for i := 0; i < s.Bank.Size(); i++ {
		s.SetUnitMode(i, relay.Charging)
	}
	s.PLC.ScanNow()
}

func newTestSystem(t *testing.T, tr *trace.Trace) *System {
	t.Helper()
	cfg := DefaultConfig(tr)
	cfg.RecordEvery = 5 * time.Minute
	sys, err := New(cfg, NewSeismicSink())
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestNewRejectsBadBattery(t *testing.T) {
	cfg := DefaultConfig(trace.FullSystemHigh())
	cfg.BatteryCount = 0
	if _, err := New(cfg, NewSeismicSink()); err == nil {
		t.Error("zero batteries accepted")
	}
}

func TestPLCPrimedAtConstruction(t *testing.T) {
	sys := newTestSystem(t, trace.FullSystemHigh())
	v, _ := sys.UnitReading(0)
	if v < 11 || v > 14 {
		t.Errorf("first reading %v implausible — registers not primed", v)
	}
}

func TestSolarChargesBatteriesUnderChargeAll(t *testing.T) {
	sys := newTestSystem(t, trace.FullSystemHigh())
	before := sys.Bank.MeanSoC()
	for tod := 9 * time.Hour; tod < 12*time.Hour; tod += time.Second {
		sys.Tick(tod, chargeAllManager{})
	}
	if after := sys.Bank.MeanSoC(); after <= before+0.1 {
		t.Errorf("midday sun barely charged the bank: %.2f -> %.2f", before, after)
	}
}

func TestIdleManagerCurtailsEverything(t *testing.T) {
	sys := newTestSystem(t, trace.FullSystemHigh())
	for tod := 9 * time.Hour; tod < 11*time.Hour; tod += time.Second {
		sys.Tick(tod, idleManager{})
	}
	res := sys.result(idleManager{})
	if res.CurtailedKWh <= 0 {
		t.Error("no curtailment with all relays open and no load")
	}
	if res.HarvestedKWh > 0.001 {
		t.Errorf("harvested %v kWh with nowhere for it to go", res.HarvestedKWh)
	}
}

// loadOnlyManager runs servers with no battery backing: deficits must trip
// the brownout path once the hold-up expires.
type loadOnlyManager struct{ started bool }

func (m *loadOnlyManager) Name() string          { return "load-only" }
func (m *loadOnlyManager) Period() time.Duration { return 30 * time.Second }
func (m *loadOnlyManager) Control(s *System, _ time.Duration) {
	if !m.started {
		m.started = true
		s.Cluster.SetTargetVMs(8)
	} else if s.Cluster.TargetVMs() == 0 {
		s.Cluster.SetTargetVMs(8) // stubbornly restart after shutdown
	}
}

func TestBrownoutOnUnbackedDeficit(t *testing.T) {
	// Evening trace: almost no solar, 8 VMs demanded, no batteries online.
	sys := newTestSystem(t, trace.FullSystemLow())
	mgr := &loadOnlyManager{}
	for tod := 18 * time.Hour; tod < 19*time.Hour+30*time.Minute; tod += time.Second {
		sys.Tick(tod, mgr)
	}
	if sys.Brownouts() == 0 {
		t.Error("no brownout despite sustained unbacked deficit")
	}
}

func TestHoldUpRidesThroughShortDips(t *testing.T) {
	cfg := DefaultConfig(trace.FullSystemHigh())
	cfg.HoldUp = 2 * time.Minute
	sys, err := New(cfg, NewSeismicSink())
	if err != nil {
		t.Fatal(err)
	}
	mgr := &loadOnlyManager{}
	// One minute of deficit < 2 min hold-up: no brownout.
	for tod := 18 * time.Hour; tod < 18*time.Hour+time.Minute; tod += time.Second {
		sys.Tick(tod, mgr)
	}
	if sys.Brownouts() != 0 {
		t.Errorf("brownout fired inside hold-up window: %d", sys.Brownouts())
	}
}

func TestRecorderCaptures(t *testing.T) {
	sys := newTestSystem(t, trace.FullSystemHigh())
	for tod := 9 * time.Hour; tod < 10*time.Hour; tod += time.Second {
		sys.Tick(tod, chargeAllManager{})
	}
	frames := sys.Recorder().Frames()
	if len(frames) < 10 {
		t.Fatalf("only %d frames after an hour at 5-minute sampling", len(frames))
	}
	f := frames[len(frames)-1]
	if len(f.Volts) != 6 || len(f.SoCs) != 6 || len(f.Modes) != 6 {
		t.Error("frame missing per-unit series")
	}
	if f.Solar <= 0 {
		t.Error("frame missing solar sample")
	}
	if f.Modes[0] != relay.Charging {
		t.Errorf("mode = %v, want charging", f.Modes[0])
	}
}

func TestSetUnitModeThroughPLC(t *testing.T) {
	sys := newTestSystem(t, trace.FullSystemHigh())
	sys.SetUnitMode(2, relay.Discharging)
	sys.PLC.ScanNow()
	if got := sys.Fabric.Pair(2).Mode(); got != relay.Discharging {
		t.Errorf("fabric mode = %v after coil write + scan", got)
	}
	sys.SetUnitMode(2, relay.Open)
	sys.PLC.ScanNow()
	if got := sys.Fabric.Pair(2).Mode(); got != relay.Open {
		t.Errorf("fabric mode = %v, want open", got)
	}
}

func TestInterlockRefusesDoubleClose(t *testing.T) {
	sys := newTestSystem(t, trace.FullSystemHigh())
	// Write both coils directly (a buggy/hostile coordinator).
	_ = sys.PLC.Regs.WriteCoil(0, true)
	_ = sys.PLC.Regs.WriteCoil(1, true)
	sys.PLC.ScanNow()
	if got := sys.Fabric.Pair(0).Mode(); got != relay.Open {
		t.Errorf("interlock failed: mode = %v", got)
	}
}

func TestInWindow(t *testing.T) {
	sys := newTestSystem(t, trace.FullSystemHigh())
	if sys.InWindow(7 * time.Hour) {
		t.Error("7:00 inside the 8:00 window")
	}
	if !sys.InWindow(12 * time.Hour) {
		t.Error("noon outside window")
	}
	if sys.InWindow(19*time.Hour + 45*time.Minute) {
		t.Error("19:45 inside the 19:30-ending window")
	}
}

func TestResultAccounting(t *testing.T) {
	sys := newTestSystem(t, trace.FullSystemHigh())
	res := sys.Run(chargeAllManager{})
	if res.Manager != "charge-all" {
		t.Errorf("manager name = %q", res.Manager)
	}
	if res.Workload != "seismic" {
		t.Errorf("workload = %q", res.Workload)
	}
	if res.UptimeFrac != 0 {
		t.Errorf("uptime %v with servers never started", res.UptimeFrac)
	}
	if res.LoadKWh != 0 {
		t.Errorf("load energy %v with no servers", res.LoadKWh)
	}
	if res.HarvestedKWh <= 0 {
		t.Error("charge-all harvested nothing")
	}
	if res.EnergyAvail <= 0 {
		t.Error("no average stored energy")
	}
	if res.ServiceLifeYear <= 0 {
		t.Error("service life not projected")
	}
	if res.MinVolt < 10 || res.MinVolt > 15 {
		t.Errorf("min voltage %v implausible", res.MinVolt)
	}
}

func TestSeismicSinkArrivals(t *testing.T) {
	s := NewSeismicSink()
	if s.HasWork(6 * time.Hour) {
		t.Error("work before first arrival")
	}
	s.Tick(7*time.Hour+time.Second, time.Second, 0, 0)
	if !s.HasWork(7*time.Hour + time.Second) {
		t.Error("no work after first arrival")
	}
	// Process everything with plenty of VM-hours.
	s.Tick(14*time.Hour, time.Second, 1000, 4)
	if s.ProcessedGB() < 2*workload.SeismicJobGB-1 {
		t.Errorf("processed %v GB, want both 114 GB jobs", s.ProcessedGB())
	}
}

func TestBatchSinkDelayCountsPending(t *testing.T) {
	s := NewSeismicSink()
	s.Tick(7*time.Hour, time.Second, 0, 0)  // first arrival, nothing processed
	s.Tick(17*time.Hour, time.Second, 0, 0) // both jobs now pending
	// Job 1 has waited 600 min (since 7:00), job 2 240 min (since 13:00).
	if d := s.DelayMinutes(); math.Abs(d-420) > 1 {
		t.Errorf("pending-job delay = %.0f min, want 420", d)
	}
}

func TestVideoSinkRecordingWindow(t *testing.T) {
	s := NewVideoSink()
	before := s.Queue.ArrivedGB()
	s.Tick(3*time.Hour, time.Minute, 0, 0) // cameras off at 3:00
	if s.Queue.ArrivedGB() != before {
		t.Error("data arrived outside the recording window")
	}
	s.Tick(10*time.Hour, time.Minute, 0, 0)
	if s.Queue.ArrivedGB() <= before {
		t.Error("no data arrived during recording")
	}
	if s.Queue.ArrivalGBPerMin != workload.VideoArrivalGBPerMin {
		t.Error("arrival rate not restored after gating")
	}
}

func TestMicroSinkAlwaysHasWork(t *testing.T) {
	m := NewMicroSink(workload.Dedup())
	if !m.HasWork(3 * time.Hour) {
		t.Error("micro kernel out of work")
	}
	if m.DelayMinutes() != 0 {
		t.Error("micro kernel reporting delay")
	}
	got := m.Tick(0, time.Second, 2, 4)
	if got <= 0 {
		t.Error("no processing")
	}
}

func TestEffectiveEnergyBelowLoadEnergy(t *testing.T) {
	sys := newTestSystem(t, trace.FullSystemHigh())
	mgr := &loadOnlyManager{}
	for tod := 10 * time.Hour; tod < 12*time.Hour; tod += time.Second {
		sys.Tick(tod, mgr)
	}
	res := sys.result(mgr)
	if res.EffectiveKWh > res.LoadKWh+1e-9 {
		t.Errorf("effective %v kWh exceeds load %v kWh", res.EffectiveKWh, res.LoadKWh)
	}
	if res.LoadKWh <= 0 {
		t.Error("no load energy recorded")
	}
}

func TestUnitsChargingAtZeroSurplusStillRecover(t *testing.T) {
	// Regression: units left on a dead charge bus must still diffuse.
	cfg := DefaultConfig(trace.FullSystemHigh())
	sys, err := New(cfg, NewSeismicSink())
	if err != nil {
		t.Fatal(err)
	}
	// Deplete unit 0's available well.
	u := sys.Bank.Unit(0)
	for i := 0; i < 3600; i++ {
		u.Discharge(20, time.Second)
	}
	depleted := u.AvailableSoC()
	// Park it on the charge bus at night (no solar).
	for tod := 2 * time.Hour; tod < 3*time.Hour; tod += time.Second {
		sys.Tick(tod, chargeAllManager{})
	}
	if got := u.AvailableSoC(); got <= depleted {
		t.Errorf("no recovery on idle charge bus: %.3f -> %.3f", depleted, got)
	}
}

func TestDefaultConfigShape(t *testing.T) {
	cfg := DefaultConfig(trace.FullSystemHigh())
	if cfg.BatteryCount != 6 || cfg.ServerCount != 4 {
		t.Error("prototype shape wrong (6 batteries, 4 servers)")
	}
	if cfg.BatteryParams.CapacityAh != 35 {
		t.Error("prototype battery capacity wrong")
	}
	if units.Watt(0) >= cfg.ServerProfile.PeakPower {
		t.Error("server profile missing")
	}
}

func TestRemoteControlPlane(t *testing.T) {
	if testing.Short() {
		t.Skip("full-day run over loopback Modbus")
	}
	sys := newTestSystem(t, trace.FullSystemHigh())
	done, err := sys.AttachRemotePanel()
	if err != nil {
		t.Fatal(err)
	}
	defer done()
	if !sys.RemoteAttached() {
		t.Fatal("panel not attached")
	}
	if _, err := sys.AttachRemotePanel(); err == nil {
		t.Error("double attach accepted")
	}

	// Drive relay actuation and telemetry over the fieldbus.
	sys.SetUnitMode(3, relay.Charging)
	sys.PLC.ScanNow()
	if got := sys.Fabric.Pair(3).Mode(); got != relay.Charging {
		t.Errorf("remote coil write did not reach the fabric: %v", got)
	}
	v, _ := sys.UnitReading(3)
	if v < 11 || v > 14 {
		t.Errorf("remote telemetry read %v implausible", v)
	}
	sys.SetUnitMode(3, relay.Open)
}

// TestRemoteControlPlaneFullDay proves the InSURE manager runs unchanged
// when every control action crosses a real Modbus TCP connection.
func TestRemoteControlPlaneFullDay(t *testing.T) {
	if testing.Short() {
		t.Skip("full-day run over loopback Modbus")
	}
	local := newTestSystem(t, trace.FullSystemHigh())
	localRes := local.Run(&replayManager{})

	remote := newTestSystem(t, trace.FullSystemHigh())
	done, err := remote.AttachRemotePanel()
	if err != nil {
		t.Fatal(err)
	}
	defer done()
	remoteRes := remote.Run(&replayManager{})

	// The fieldbus is transparent: identical policy, identical plant,
	// near-identical outcome (quantisation via the shared transducers).
	if d := remoteRes.ProcessedGB - localRes.ProcessedGB; d > 1 || d < -1 {
		t.Errorf("remote plane diverged: %.2f vs %.2f GB", remoteRes.ProcessedGB, localRes.ProcessedGB)
	}
	if remoteRes.Brownouts != localRes.Brownouts {
		t.Errorf("brownouts diverged: %d vs %d", remoteRes.Brownouts, localRes.Brownouts)
	}
}

// replayManager is a minimal deterministic policy used to compare local
// and remote control planes: charge everything before 10:00, then serve
// with two units discharging.
type replayManager struct{ started bool }

func (m *replayManager) Name() string          { return "replay" }
func (m *replayManager) Period() time.Duration { return 30 * time.Second }
func (m *replayManager) Control(s *System, now time.Duration) {
	if now < 10*time.Hour {
		for i := 0; i < s.Bank.Size(); i++ {
			s.SetUnitMode(i, relay.Charging)
		}
		if s.Cluster.TargetVMs() != 0 {
			s.Cluster.Shutdown()
		}
	} else if s.InWindow(now) {
		for i := 0; i < s.Bank.Size(); i++ {
			if i < 2 {
				s.SetUnitMode(i, relay.Discharging)
			} else {
				s.SetUnitMode(i, relay.Charging)
			}
		}
		if s.Cluster.TargetVMs() != 4 {
			s.Cluster.SetTargetVMs(4)
		}
	} else if s.Cluster.TargetVMs() != 0 {
		s.Cluster.Shutdown()
	}
	s.PLC.ScanNow()
}

// Seismic case study: an oil-exploration site generates 114 GB of
// micro-seismic survey data twice a day (§2.1, §5 of the paper). The
// standalone cluster must process it under whatever the sky provides.
//
// The example runs the paired-trace comparison of the paper's full-system
// evaluation (Fig 20): identical solar days, InSURE vs the grid-style
// unified-buffer baseline, across three weather conditions.
package main

import (
	"fmt"
	"log"

	"insure"
)

func main() {
	fmt.Println("Oil-exploration seismic analysis: InSURE vs baseline on identical days")
	fmt.Println()
	fmt.Printf("%-8s %-9s %8s %10s %10s %10s %9s\n",
		"day", "policy", "uptime", "GB done", "buffer Wh", "wear Ah/u", "brownouts")

	for _, weather := range []insure.Weather{insure.Sunny, insure.Cloudy, insure.Rainy} {
		opt, base, err := insure.Compare(insure.Config{
			Day:      insure.Day{Weather: weather, PeakWatts: 1000},
			Workload: insure.SeismicWorkload(),
		})
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range []insure.Report{opt, base} {
			fmt.Printf("%-8s %-9s %7.1f%% %10.1f %10.0f %10.2f %9d\n",
				weather, r.Policy, r.UptimeFrac*100, r.ProcessedGB,
				r.EnergyAvailWh, r.WearAhPerUnit, r.Brownouts)
		}
		fmt.Println()
	}

	fmt.Println("The reconfigurable buffer + spatio-temporal management keeps the site")
	fmt.Println("processing through weather the unified-buffer baseline cannot ride out.")
}

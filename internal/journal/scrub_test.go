package journal

import (
	"bytes"
	"os"
	"testing"
	"time"

	"insure/internal/telemetry"
)

// buildStore writes a store with one sealed segment, a snapshot
// generation in each slot, and a live journal tail.
func buildStore(t *testing.T, dir string) {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Append([]byte{0xA0, byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Snapshot([]byte("gen-1")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Append([]byte{0xB0, byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Snapshot([]byte("gen-2")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append([]byte("tail")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestScrubRepairsSnapshotMirror(t *testing.T) {
	dir := t.TempDir()
	buildStore(t, dir)
	corruptByte(t, dir, -1, slotMirror(0))

	rep, err := ScrubDir(Disk, dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Detected != 1 || rep.Repaired != 1 || rep.Unrepairable != 0 {
		t.Fatalf("report = %+v, want 1 detected / 1 repaired / 0 unrepairable", rep)
	}
	p := mustRead(t, dir, slotName(0))
	m := mustRead(t, dir, slotMirror(0))
	if !bytes.Equal(p, m) {
		t.Error("mirror not rebuilt from primary")
	}
}

func TestScrubRepairsSegmentFromUnion(t *testing.T) {
	dir := t.TempDir()
	buildStore(t, dir)

	// Find the surviving sealed segment and damage a DIFFERENT record in
	// each copy: neither copy is intact, but their union is complete.
	names, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var seq uint64
	found := false
	for _, e := range names {
		if s, ok := segSeq(e.Name()); ok {
			seq, found = s, true
		}
	}
	if !found {
		t.Fatal("no sealed segment on disk")
	}
	p, m := segName(seq)
	corruptByte(t, dir, recordHeader, p)              // first record's payload
	corruptByte(t, dir, 2*(recordHeader+2)-1, m)      // second record's payload

	rep, err := ScrubDir(Disk, dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Repaired < 2 || rep.Unrepairable != 0 {
		t.Fatalf("report = %+v, want union repair of both copies", rep)
	}
	if !bytes.Equal(mustRead(t, dir, p), mustRead(t, dir, m)) {
		t.Error("segment pair differs after union repair")
	}
	sc := scanJournal(mustRead(t, dir, p), false)
	if sc.torn || sc.midstream != 0 || !segmentComplete(sc.recs, seq) {
		t.Errorf("repaired segment not intact: %+v", sc)
	}
}

func TestScrubCountsUnrepairableSlot(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot([]byte("only-gen")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	corruptByte(t, dir, -1, slotName(0), slotMirror(0))
	rep, err := ScrubDir(Disk, dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Unrepairable != 1 {
		t.Fatalf("report = %+v, want 1 unrepairable", rep)
	}
}

func TestScrubReportsActiveMidstream(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Append([]byte{0xAA, byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	corruptByte(t, dir, recordHeader+2+recordHeader, journalName, journalMirror)
	rep, err := ScrubDir(Disk, dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Midstream != 2 {
		t.Fatalf("report = %+v, want midstream damage in both copies reported", rep)
	}
}

func TestCheckDirHealth(t *testing.T) {
	dir := t.TempDir()
	buildStore(t, dir)
	if err := CheckDirHealth(Disk, dir); err != nil {
		t.Fatalf("healthy dir reported unhealthy: %v", err)
	}
	corruptByte(t, dir, -1, slotMirror(0))
	if err := CheckDirHealth(Disk, dir); err == nil {
		t.Fatal("out-of-sync mirror not reported")
	}
}

func TestScrubberHealthAndTelemetry(t *testing.T) {
	dir := t.TempDir()
	buildStore(t, dir)
	corruptByte(t, dir, -1, slotMirror(1))

	sc := NewScrubber(Target{Name: "state", Dir: dir})
	now := time.Unix(1000, 0)
	sc.now = func() time.Time { return now }
	sc.Interval = time.Minute
	reg := telemetry.NewRegistry()
	sc.AttachTelemetry(reg)

	if err := sc.healthy(); err == nil {
		t.Fatal("healthy before any pass")
	}
	if _, err := sc.RunOnce(); err != nil {
		t.Fatal(err)
	}
	if err := sc.healthy(); err != nil {
		t.Fatalf("unhealthy after repairing pass: %v", err)
	}
	tot := sc.Totals()
	if tot.Detected != 1 || tot.Repaired != 1 {
		t.Errorf("totals = %+v, want the slot-b mirror repair counted", tot)
	}

	// Stale pass: age past the threshold must degrade /healthz.
	now = now.Add(time.Hour)
	if err := sc.healthy(); err == nil {
		t.Fatal("stale scrub age not reported")
	}
}

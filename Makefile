GO ?= go

.PHONY: all build test race vet check bench bench-json experiments clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check is the CI gate: static analysis, a clean build, and the full test
# suite under the race detector (the parallel experiment engine and campaign
# runner are exercised concurrently there).
check: vet build race

# bench runs the simulation hot-path and experiment benchmarks.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkSystemTick|BenchmarkFullDaySimulation|BenchmarkBattery' -benchmem .

# bench-json writes the machine-readable performance report.
bench-json:
	$(GO) run ./cmd/insure-bench -bench-json BENCH.json

# experiments regenerates every table/figure of the paper on the parallel
# engine (byte-identical to the serial engine).
experiments:
	$(GO) run ./cmd/insure-bench -exp all

clean:
	rm -f BENCH.json

package sim

import (
	"fmt"

	"insure/internal/modbus"
	"insure/internal/plc"
	"insure/internal/relay"
	"insure/internal/units"
)

// AttachRemotePanel switches the system's control plane from in-process
// register access to the prototype's real path (§4): the PLC register file
// is served over Modbus TCP on loopback, and every manager actuation
// (SetUnitMode) and telemetry read (UnitReading) travels through a Modbus
// client connection. The returned function tears the panel down.
//
// This is how the deployment actually runs when the coordination node and
// the battery control panel are separate machines; tests use it to prove
// the manager works unchanged across the fieldbus.
func (s *System) AttachRemotePanel() (func() error, error) {
	addr, stopServer, err := s.ServePanel()
	if err != nil {
		return nil, err
	}
	cli, stopClient, err := s.ConnectRemote(addr)
	if err != nil {
		stopServer()
		return nil, err
	}
	_ = cli
	return func() error {
		err := stopClient()
		if e := stopServer(); err == nil {
			err = e
		}
		return err
	}, nil
}

// ServePanel exposes the PLC register file over Modbus TCP on loopback
// and returns the listen address plus a teardown function. It is half of
// AttachRemotePanel, split out so a harness can interpose something —
// e.g. a faults.FlakyProxy — between the panel and the manager's client
// connection.
func (s *System) ServePanel() (string, func() error, error) {
	if s.remoteServer != nil {
		return "", nil, fmt.Errorf("sim: panel already served")
	}
	srv := modbus.NewServer(s.PLC.Regs)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return "", nil, fmt.Errorf("sim: panel listen: %w", err)
	}
	s.remoteServer = srv
	return addr.String(), func() error {
		s.remoteServer = nil
		return srv.Close()
	}, nil
}

// ConnectRemote routes the control plane's actuations and telemetry reads
// through a Modbus client dialed at addr (normally ServePanel's address,
// or a proxy in front of it). The returned client is exposed so callers
// can tune its timeout/retry policy before the run.
func (s *System) ConnectRemote(addr string) (*modbus.Client, func() error, error) {
	if s.remote != nil {
		return nil, nil, fmt.Errorf("sim: remote panel already attached")
	}
	cli, err := modbus.Dial(addr)
	if err != nil {
		return nil, nil, fmt.Errorf("sim: panel dial: %w", err)
	}
	s.remote = cli
	return cli, func() error {
		s.remote = nil
		return cli.Close()
	}, nil
}

// RemoteAttached reports whether the control plane runs over Modbus.
func (s *System) RemoteAttached() bool { return s.remote != nil }

// remoteSetUnitMode writes the relay pair atomically over the fieldbus.
func (s *System) remoteSetUnitMode(i int, m relay.Mode) error {
	pair := []bool{m == relay.Charging, m == relay.Discharging}
	return s.remote.WriteCoils(plc.CoilCharge(i), pair)
}

// remoteUnitReading fetches and decodes unit telemetry over the fieldbus.
func (s *System) remoteUnitReading(i int) (units.Volt, units.Amp, error) {
	codes, err := s.remote.ReadInput(plc.InputVolt(i), 2)
	if err != nil {
		return 0, 0, err
	}
	probe := s.Probes[i]
	probe.Volt.SetRaw(codes[0])
	probe.Current.SetRaw(codes[1])
	v, cur := probe.Readings()
	return v, cur, nil
}

GO ?= go

.PHONY: all build test race race-faults smoke-faults smoke-metrics smoke-chaos race-chaos smoke-survival race-survival smoke-fleet race-fleet smoke-gateway race-gateway smoke-wan race-wan smoke-bitrot race-bitrot vet vet-storage check bench bench-json bench-scaling perf-diff experiments clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# race-faults runs just the concurrency-heavy fault-injection and fieldbus
# suites under the race detector (dropped connections, retry/backoff, and
# server drains all cross goroutines).
race-faults:
	$(GO) test -race -count=1 ./internal/faults ./internal/modbus

# smoke-faults runs one simulated day with a battery unit and a discharge
# relay faulted mid-day and fails if the plant loses availability.
smoke-faults:
	$(GO) test -race -count=1 -run 'TestBatteryFailureIsQuarantinedMidday|TestStuckOpenRelayIsQuarantined' ./internal/core

# smoke-metrics boots the daemons' telemetry plane in-process and runs the
# scrape through the strict Prometheus exposition parser: plcd's /metrics
# and /healthz wiring, the registry's own HTTP tests, and the zero-alloc
# instrumented-tick guard.
smoke-metrics:
	$(GO) test -race -count=1 -run 'TestPanelMetricsEndpoint|TestPanelHealthz' ./cmd/insure-plcd
	$(GO) test -race -count=1 ./internal/telemetry/...
	$(GO) test -count=1 -run 'TestTickWithTelemetryAllocFree' ./internal/sim

# smoke-chaos runs the quick seeded crash campaign: controller kills (clean
# and torn-tail) plus plant faults against the journal/recovery path, with
# every per-tick safety invariant checked. A failing campaign prints its
# seed; rerun it with `go test -run TestCampaign ./internal/chaos -v`.
smoke-chaos:
	$(GO) test -count=1 -run 'TestCampaignSmoke' -v ./internal/chaos

# race-chaos runs the full fieldbus campaign — 200+ seeded events including
# Modbus partitions through the flaky proxy, then a bit-identical replay —
# under the race detector.
race-chaos:
	$(GO) test -race -count=1 -run 'TestCampaignFieldbusAndReplay|TestProxyConcurrentClientsUnderChaos' ./internal/chaos ./internal/faults

# smoke-survival runs the quick survivability gates: ladder legality, a
# single storm day of orderly degradation, the survival state round trip,
# and the exposition contract for every emergency telemetry series.
smoke-survival:
	$(GO) test -count=1 -run 'TestLadderAdjacency|TestSurvivalStormDayOrderlyDegradation|TestSurvivalStateRoundTripContinuation' ./internal/core
	$(GO) test -count=1 -run 'TestSurvivalSeriesExposition|TestTickWithSurvivalAllocBound' ./internal/sim

# race-survival runs the full three-day storm campaign — surge faults, genset
# dispatch, the baseline damage comparison, and the mid-emergency kill with
# bit-identical recovery — under the race detector. A failing storm prints
# its seed; rerun with `go test -run TestStorm ./internal/chaos -v`.
race-survival:
	$(GO) test -race -count=1 -run 'TestStorm' -v ./internal/chaos

# smoke-fleet runs the quick federation gates: a deterministic 2-site storm
# handoff through the insure-sim entry point (seeded, so the line below is
# reproducible), plus the coordinator's byte-identity and
# migration-toward-surplus tests.
smoke-fleet:
	$(GO) run ./cmd/insure-sim -fleet 2 -storm-days 2 -storm-site 0 -migrate
	$(GO) test -count=1 -run 'TestCoordinatorDisabledMatchesSoloRuns|TestCoordinatorMigratesTowardSurplus' ./internal/fleet

# race-fleet runs the full federation suite — coordinator migration, log
# recovery, site-loss disposability, the heterogeneous kill/resume replay,
# and the multi-day site-loss campaign — under the race detector. A failing
# campaign prints its seed; rerun with `go test -run TestSiteLoss
# ./internal/chaos -v`.
race-fleet:
	$(GO) test -race -count=1 ./internal/fleet
	$(GO) test -race -count=1 -run 'TestSiteLoss' -v ./internal/chaos

# smoke-gateway runs the serving-plane gates: admission/ladder/deadline
# unit tests plus a single-site load replay through the insure-gateway
# entry point (seeded; exits nonzero on any admitted-then-dropped
# request).
smoke-gateway:
	$(GO) test -count=1 -run 'TestLadderSheddingByClass|TestRetriageOnMidFlightDowngrade|TestModeChurnNeverDropsAdmitted|TestLoadTestSmoke' ./internal/gateway
	$(GO) run ./cmd/insure-gateway -loadtest -loadtest-sites 1 -loadtest-qps 5

# race-gateway runs the full gateway suite — concurrent admits against a
# ticking simulated plant, HTTP handlers, and the load harness — under
# the race detector.
race-gateway:
	$(GO) test -race -count=1 ./internal/gateway

# smoke-wan runs the quick degraded-backhaul gates: the seeded link model
# itself, the WAN-attached observer's byte-identity to solo runs, and
# exactly-once shipping across a 30%-drop link.
smoke-wan:
	$(GO) test -count=1 ./internal/wan
	$(GO) test -count=1 -run 'TestWANObserverMatchesSoloRuns|TestWANMigrationExactlyOnceUnderLoss|TestWANStormObserverIsByteIdentical' ./internal/fleet ./internal/chaos

# race-wan runs the full degraded-WAN storm campaign — partitions, chunk
# loss, reroutes, heals, and the same-seed rerun-twice bit-identity check —
# plus the fleetd kill/resume drills, all under the race detector. A failing
# campaign prints its seed; rerun with `go test -run TestWANStorm
# ./internal/chaos -v`.
race-wan:
	$(GO) test -race -count=1 -run 'TestWANStorm' -v ./internal/chaos
	$(GO) test -race -count=1 ./cmd/insure-fleetd

# smoke-bitrot runs the quick self-healing storage gates: the seeded
# disk-fault filesystem's own suite, the mirrored-journal and scrubber
# tests, and the clean-disk harness pin of the bit-rot storm. A failing
# storm prints its seed; rerun with `go test -run TestBitrotStorm
# ./internal/chaos -v`.
smoke-bitrot:
	$(GO) test -count=1 ./internal/diskfault
	$(GO) test -count=1 -run 'TestBitrotStormCleanDiskIsQuiet' -v ./internal/chaos

# race-bitrot runs the full three-day bit-rot storm — torn writes, failed
# fsyncs, sick-disk windows, at-rest decay under both the state journal
# and the fleet's migration log and checkpoint images, plus the same-seed
# bit-identity rerun — under the race detector.
race-bitrot:
	$(GO) test -race -count=1 -run 'TestBitrotStorm' -v ./internal/chaos

# vet-storage is the storage-integrity vet step: it rejects any bare
# statement-level Sync()/Close() call in the durability packages, where
# a silently discarded fsync verdict would fake durability (see
# internal/tools/synccheck).
vet-storage:
	$(GO) run ./internal/tools/synccheck ./internal/journal ./internal/fleet

# bench-scaling measures the plant-years/sec workers-scaling curve on a
# short campaign and enforces the speedup gate: on N >= 2 cores, speedup at
# N workers must reach 0.7*N or the target fails. On a single-core machine
# the gate is reported as skipped (it cannot pass vacuously).
bench-scaling:
	$(GO) run ./cmd/insure-bench -scaling -gate -scaling-cells 8

# check is the CI gate: static analysis, a clean build, the full test suite
# under the race detector (the parallel experiment engine and campaign
# runner are exercised concurrently there), the injected-fault smoke
# simulation, the telemetry-plane smoke test, the crash-recovery chaos
# campaigns, the energy-emergency survivability gates, the fleet-federation
# gates, the serving-plane gates, the degraded-WAN gates, the self-healing
# storage gates, and the multicore scaling gate.
check: vet vet-storage build race race-faults smoke-faults smoke-metrics smoke-chaos race-chaos smoke-survival race-survival smoke-fleet race-fleet smoke-gateway race-gateway smoke-wan race-wan smoke-bitrot race-bitrot bench-scaling

# bench runs the simulation hot-path and experiment benchmarks.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkSystemTick|BenchmarkFullDaySimulation|BenchmarkBattery' -benchmem .

# bench-json writes the machine-readable performance report.
bench-json:
	$(GO) run ./cmd/insure-bench -bench-json BENCH.json

# perf-diff regenerates the performance report into BENCH.new.json and
# compares it against the committed BENCH.json, printing ns/op regressions
# beyond 5% on the hot-path benchmarks.
perf-diff:
	$(GO) run ./cmd/insure-bench -bench-json BENCH.new.json
	$(GO) run ./cmd/insure-bench -perf-diff BENCH.new.json -perf-base BENCH.json

# experiments regenerates every table/figure of the paper on the parallel
# engine (byte-identical to the serial engine).
experiments:
	$(GO) run ./cmd/insure-bench -exp all

clean:
	rm -f BENCH.json BENCH.new.json

package logbook

import (
	"bytes"
	"encoding/csv"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestAddAndQuery(t *testing.T) {
	b := New(0)
	b.Add(8*time.Hour, Power, "battery#1", "charging relay closed")
	b.Addf(9*time.Hour, Load, "cluster", "target %d VMs", 4)
	b.Add(10*time.Hour, Emergency, "bus", "brownout")
	if b.Len() != 3 {
		t.Fatalf("len = %d", b.Len())
	}
	counts := b.CountByClass()
	if counts[Power] != 1 || counts[Load] != 1 || counts[Emergency] != 1 {
		t.Errorf("counts = %v", counts)
	}
	if got := b.Filter(Emergency); len(got) != 1 || got[0].Subject != "bus" {
		t.Errorf("filter = %v", got)
	}
	subjects := b.Subjects()
	if len(subjects) != 3 || subjects[0] != "battery#1" {
		t.Errorf("subjects = %v", subjects)
	}
}

func TestCapDropsOldest(t *testing.T) {
	b := New(3)
	for i := 0; i < 5; i++ {
		b.Addf(time.Duration(i)*time.Minute, Info, "x", "event %d", i)
	}
	evs := b.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d events, want 3", len(evs))
	}
	if !strings.Contains(evs[0].Detail, "2") {
		t.Errorf("oldest retained = %q, want event 2", evs[0].Detail)
	}
}

func TestWriteText(t *testing.T) {
	b := New(0)
	b.Add(13*time.Hour+5*time.Minute+9*time.Second, Power, "battery#2", "discharge relay closed")
	var buf bytes.Buffer
	if err := b.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "13:05:09") || !strings.Contains(out, "battery#2") {
		t.Errorf("text output %q", out)
	}
}

func TestWriteCSV(t *testing.T) {
	b := New(0)
	b.Add(time.Hour, Load, "cluster", "duty 0.8")
	var buf bytes.Buffer
	if err := b.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	if lines[0] != "seconds,seq,class,subject,detail" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "3600,1,load,cluster") {
		t.Errorf("row = %q", lines[1])
	}
}

// TestWriteCSVHostileStrings proves event messages containing commas,
// quotes, and newlines survive a round trip through a standard CSV
// reader — the §5 log data must stay machine-readable whatever the
// control plane prints into it.
func TestWriteCSVHostileStrings(t *testing.T) {
	b := New(0)
	hostile := []string{
		`plain`,
		`comma, separated, detail`,
		`quoted "detail" here`,
		"multi\nline\ndetail",
		`mixed, "everything"` + "\nat once",
	}
	for i, d := range hostile {
		b.Add(time.Duration(i)*time.Second, Emergency, "unit,with\"chars", d)
	}
	var buf bytes.Buffer
	if err := b.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("rendered CSV does not parse: %v", err)
	}
	if len(rows) != len(hostile)+1 {
		t.Fatalf("rows = %d, want %d", len(rows), len(hostile)+1)
	}
	for i, d := range hostile {
		row := rows[i+1]
		if row[3] != "unit,with\"chars" {
			t.Errorf("row %d subject = %q", i, row[3])
		}
		if row[4] != d {
			t.Errorf("row %d detail = %q, want %q", i, row[4], d)
		}
	}
}

// TestEventsStableOrderOnEqualTimestamps proves events sharing a
// timestamp come back in arrival order, deterministically.
func TestEventsStableOrderOnEqualTimestamps(t *testing.T) {
	b := New(0)
	at := 9 * time.Hour
	for i := 0; i < 10; i++ {
		b.Addf(at, Power, "battery#1", "action %d", i)
	}
	// An earlier-timestamped event logged late must still sort first.
	b.Add(8*time.Hour, Info, "late", "logged out of order")
	evs := b.Events()
	if evs[0].Subject != "late" {
		t.Fatalf("first event = %+v, want the 8h event", evs[0])
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].At == evs[i-1].At && evs[i].Seq < evs[i-1].Seq {
			t.Fatalf("events %d/%d out of arrival order: %+v %+v", i-1, i, evs[i-1], evs[i])
		}
	}
	for i := 0; i < 10; i++ {
		want := "action " + string(rune('0'+i))
		if evs[i+1].Detail != want {
			t.Fatalf("event %d = %q, want %q", i+1, evs[i+1].Detail, want)
		}
	}
}

// TestWriteTextEscapesNewlines keeps the text renderer one line per event.
func TestWriteTextEscapesNewlines(t *testing.T) {
	b := New(0)
	b.Add(time.Hour, Emergency, "bus", "first\nsecond\r\nthird")
	var buf bytes.Buffer
	if err := b.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := strings.TrimRight(buf.String(), "\n")
	if strings.Count(out, "\n") != 0 {
		t.Fatalf("event rendered across multiple lines: %q", out)
	}
	if !strings.Contains(out, `first\nsecond\nthird`) {
		t.Errorf("escaped detail missing: %q", out)
	}
}

func TestConcurrentLogging(t *testing.T) {
	b := New(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				b.Addf(time.Duration(i)*time.Second, Class(g%4), "worker", "n=%d", i)
			}
		}(g)
	}
	wg.Wait()
	if b.Len() != 1600 {
		t.Errorf("len = %d, want 1600", b.Len())
	}
}

func TestClassString(t *testing.T) {
	for c, want := range map[Class]string{Info: "info", Power: "power", Load: "load", Emergency: "emergency"} {
		if c.String() != want {
			t.Errorf("class %d = %q", c, c.String())
		}
	}
	if Class(9).String() == "" {
		t.Error("unknown class should format")
	}
}

func TestWriteFilesAreDurable(t *testing.T) {
	b := New(0)
	b.Add(time.Hour, Power, "battery#1", "open -> discharging")
	b.Add(2*time.Hour, Emergency, "faultwatch", "unit 3 quarantined")

	dir := t.TempDir()
	txt := filepath.Join(dir, "log.txt")
	csvPath := filepath.Join(dir, "log.csv")
	if err := b.WriteTextFile(txt); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteCSVFile(csvPath); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{txt, csvPath} {
		raw, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(raw), "quarantined") {
			t.Errorf("%s missing event content", p)
		}
	}

	// The write path must propagate errors instead of swallowing them:
	// writing into a missing directory fails loudly.
	if err := b.WriteCSVFile(filepath.Join(dir, "no-such-dir", "log.csv")); err == nil {
		t.Error("want error writing into missing directory")
	}
}

package baseline

import (
	"testing"
	"time"

	"insure/internal/relay"
	"insure/internal/sim"
	"insure/internal/trace"
)

func newSystem(t *testing.T, tr *trace.Trace, sink sim.Sink) *sim.System {
	t.Helper()
	cfg := sim.DefaultConfig(tr)
	cfg.RecordEvery = time.Minute
	sys, err := sim.New(cfg, sink)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestManagerBasics(t *testing.T) {
	m := New(DefaultConfig())
	if m.Name() != "baseline" {
		t.Errorf("name = %q", m.Name())
	}
	if m.Period() <= 0 {
		t.Error("period must be positive")
	}
}

func TestUnifiedBufferMovesTogether(t *testing.T) {
	// §2.3: the conventional unified buffer is in either charging or
	// discharging mode as a whole — never mixed.
	sys := newSystem(t, trace.FullSystemHigh(), sim.NewSeismicSink())
	m := New(DefaultConfig())
	for tod := 7 * time.Hour; tod < 18*time.Hour; tod += time.Second {
		sys.Tick(tod, m)
		if tod%(5*time.Minute) != 0 {
			continue
		}
		charging := len(sys.Fabric.UnitsIn(relay.Charging))
		discharging := len(sys.Fabric.UnitsIn(relay.Discharging))
		if charging > 0 && discharging > 0 {
			t.Fatalf("mixed buffer modes at %v: %d charging, %d discharging", tod, charging, discharging)
		}
		if n := charging + discharging; n != 0 && n != 6 {
			t.Fatalf("partial pack engagement at %v: %d units", tod, n)
		}
	}
}

func TestLockoutAfterDeepDischarge(t *testing.T) {
	// Fig 5: under sustained seismic load on a weak supply, the pack
	// voltage trips and the batteries are switched out.
	cfg := sim.DefaultConfig(trace.FullSystemLow())
	cfg.InitialSoC = 0.35
	sys, err := sim.New(cfg, sim.NewSeismicSink())
	if err != nil {
		t.Fatal(err)
	}
	m := New(DefaultConfig())
	tripped := false
	for tod := 7 * time.Hour; tod < 19*time.Hour; tod += time.Second {
		sys.Tick(tod, m)
		if m.InLockout() {
			tripped = true
			break
		}
	}
	if !tripped {
		t.Error("unified buffer never tripped protection on a weak day")
	}
}

func TestLockoutRecoversAfterRecharge(t *testing.T) {
	cfg := sim.DefaultConfig(trace.FullSystemHigh())
	cfg.InitialSoC = 0.2
	sys, err := sim.New(cfg, sim.NewVideoSink())
	if err != nil {
		t.Fatal(err)
	}
	m := New(DefaultConfig())
	var states []bool
	for tod := 7 * time.Hour; tod < 18*time.Hour; tod += time.Second {
		sys.Tick(tod, m)
		if tod%time.Minute == 0 {
			states = append(states, m.InLockout())
		}
	}
	// If the pack ever locked out, it must also have recovered by midday
	// sun (reconnect at 60% SoC).
	saw, recovered := false, false
	for _, locked := range states {
		if locked {
			saw = true
		}
		if saw && !locked {
			recovered = true
		}
	}
	if saw && !recovered {
		t.Error("pack locked out and never reconnected despite a sunny day")
	}
}

func TestBaselineRunsAggressiveVMCounts(t *testing.T) {
	// §6.4: the baseline deploys as many instances as the instantaneous
	// budget allows — 8 VMs under good sun — instead of InSURE's
	// efficiency-driven 4.
	sys := newSystem(t, trace.FullSystemHigh(), sim.NewSeismicSink())
	m := New(DefaultConfig())
	max := 0
	for tod := 7 * time.Hour; tod < 18*time.Hour; tod += time.Second {
		sys.Tick(tod, m)
		if v := sys.Cluster.TargetVMs(); v > max {
			max = v
		}
	}
	if max < 6 {
		t.Errorf("baseline peaked at %d VMs; expected aggressive allocation", max)
	}
}

func TestBaselineFullDayCompletes(t *testing.T) {
	sys := newSystem(t, trace.FullSystemHigh(), sim.NewVideoSink())
	res := sys.Run(New(DefaultConfig()))
	if res.Manager != "baseline" {
		t.Errorf("manager = %q", res.Manager)
	}
	if res.ProcessedGB <= 0 {
		t.Error("baseline processed nothing on a good day")
	}
}

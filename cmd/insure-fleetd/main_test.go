package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"insure/internal/wan"
)

// fleetdFixture is the resume-drill campaign: three sites, three days, a
// lossy WAN, and two fixed six-hour partitions so tests can aim the kill
// inside a known window. Explicit partitions override the seeded planner.
func fleetdFixture(seed int64, dir string) daemonOpts {
	return daemonOpts{worldConfig: worldConfig{
		Seed: seed, Sites: 3, Days: 3,
		Batteries: 6, Servers: 4, JobGB: 40,
		Migration: true, Drop: 0.30, Corrupt: 0.05,
		partitions: []wan.Outage{
			{Site: 1, Day: 0, From: 9 * time.Hour, To: 15 * time.Hour},
			{Site: 0, Day: 1, From: 10 * time.Hour, To: 16 * time.Hour},
		},
		StateDir: dir,
	}}
}

// miglogBytes reads the raw migration-log file under a state dir.
func miglogBytes(t *testing.T, dir string) []byte {
	t.Helper()
	b, err := os.ReadFile(filepath.Join(dir, "miglog", "journal.log"))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestFleetdKillResumeBitIdentical is the daemon's acceptance drill: kill
// the campaign at day 1, 12h — in the middle of the day-1 partition, with
// transfers in flight and a site unreachable — then boot a fresh incarnation
// on the same state dir. The resumed run must finish with the byte-identical
// migration log and the identical final report the undisturbed run produces.
func TestFleetdKillResumeBitIdentical(t *testing.T) {
	ctx := context.Background()

	refDir := t.TempDir()
	refRep, err := runDaemon(ctx, new(bytes.Buffer), fleetdFixture(901, refDir))
	if err != nil {
		t.Fatal(err)
	}
	refLog := miglogBytes(t, refDir)
	if len(refLog) == 0 {
		t.Fatal("reference run wrote an empty migration log")
	}

	killDir := t.TempDir()
	killOpts := fleetdFixture(901, killDir)
	killOpts.KillAt = "1:12h"
	if _, err := runDaemon(ctx, new(bytes.Buffer), killOpts); err != errKilled {
		t.Fatalf("kill-at run: want errKilled, got %v", err)
	}

	var out bytes.Buffer
	gotRep, err := runDaemon(ctx, &out, fleetdFixture(901, killDir))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "resumed fleet state") {
		t.Errorf("resumed run did not announce the resume:\n%s", out.String())
	}
	if got, want := gotRep.String(), refRep.String(); got != want {
		t.Errorf("resumed report differs from undisturbed run\n got: %s\nwant: %s", got, want)
	}
	if !bytes.Equal(miglogBytes(t, killDir), refLog) {
		t.Errorf("resumed migration log is not byte-identical to the undisturbed run (%d vs %d bytes)",
			len(miglogBytes(t, killDir)), len(refLog))
	}
	tot := gotRep.Totals
	if tot.JobsDoubleRun != 0 || tot.SplitBrain != 0 {
		t.Fatalf("exactly-once guards tripped across the resume: %+v", tot)
	}
}

// TestFleetdKillBeforeFirstSnapshotColdStarts kills during day 0, before any
// day-boundary snapshot exists: the next boot must cold-start — truncating
// the partial day-0 records — and still converge on the reference run.
func TestFleetdKillBeforeFirstSnapshotColdStarts(t *testing.T) {
	if testing.Short() {
		t.Skip("cold-start drill skipped in -short")
	}
	ctx := context.Background()

	refDir := t.TempDir()
	refRep, err := runDaemon(ctx, new(bytes.Buffer), fleetdFixture(902, refDir))
	if err != nil {
		t.Fatal(err)
	}

	killDir := t.TempDir()
	killOpts := fleetdFixture(902, killDir)
	killOpts.KillAt = "0:14h"
	if _, err := runDaemon(ctx, new(bytes.Buffer), killOpts); err != errKilled {
		t.Fatalf("kill-at run: want errKilled, got %v", err)
	}

	gotRep, err := runDaemon(ctx, new(bytes.Buffer), fleetdFixture(902, killDir))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := gotRep.String(), refRep.String(); got != want {
		t.Errorf("cold-started report differs from undisturbed run\n got: %s\nwant: %s", got, want)
	}
	if !bytes.Equal(miglogBytes(t, killDir), miglogBytes(t, refDir)) {
		t.Error("cold-started migration log is not byte-identical to the undisturbed run")
	}
}

// TestFleetdWatchdogRecoversFromPanic panics the day loop mid-partition via
// the injected kill hook; the watchdog must rebuild the world from the state
// dir in-process and finish the campaign identical to the reference.
func TestFleetdWatchdogRecoversFromPanic(t *testing.T) {
	if testing.Short() {
		t.Skip("watchdog drill skipped in -short")
	}
	ctx := context.Background()

	refDir := t.TempDir()
	refRep, err := runDaemon(ctx, new(bytes.Buffer), fleetdFixture(903, refDir))
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	opts := fleetdFixture(903, dir)
	opts.MaxRestarts = 1
	fired := false
	opts.killFn = func(day int, tod time.Duration) bool {
		if !fired && day == 1 && tod >= 12*time.Hour {
			fired = true
			panic("injected day-loop fault")
		}
		return false
	}
	var out bytes.Buffer
	gotRep, err := runDaemon(ctx, &out, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "watchdog:") {
		t.Errorf("watchdog never reported the rebuild:\n%s", out.String())
	}
	if got, want := gotRep.String(), refRep.String(); got != want {
		t.Errorf("post-panic report differs from undisturbed run\n got: %s\nwant: %s", got, want)
	}
	if !bytes.Equal(miglogBytes(t, dir), miglogBytes(t, refDir)) {
		t.Error("post-panic migration log is not byte-identical to the undisturbed run")
	}
}

// TestFleetdSignalAbortPreservesState cancels the context mid-day — the
// signal path — and checks the daemon comes back from the state dir.
func TestFleetdSignalAbortPreservesState(t *testing.T) {
	if testing.Short() {
		t.Skip("signal drill skipped in -short")
	}
	dir := t.TempDir()
	opts := fleetdFixture(904, dir)

	ctx, cancel := context.WithCancel(context.Background())
	opts.killFn = func(day int, tod time.Duration) bool {
		if day == 1 && tod >= 11*time.Hour {
			cancel()
		}
		return false
	}
	_, err := runDaemon(ctx, new(bytes.Buffer), opts)
	if err != context.Canceled {
		t.Fatalf("cancelled run: want context.Canceled, got %v", err)
	}

	opts = fleetdFixture(904, dir)
	rep, err := runDaemon(context.Background(), new(bytes.Buffer), opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Totals.JobsDoubleRun != 0 || rep.Totals.SplitBrain != 0 {
		t.Fatalf("guards tripped across a signal abort: %+v", rep.Totals)
	}
}

// TestParseKillAt pins the flag grammar.
func TestParseKillAt(t *testing.T) {
	if fn, err := parseKillAt(""); err != nil || fn != nil {
		t.Errorf("empty spec: want nil predicate and nil error, got err=%v", err)
	}
	fn, err := parseKillAt("1:15h")
	if err != nil {
		t.Fatal(err)
	}
	if fn(0, 20*time.Hour) || fn(1, 14*time.Hour) || !fn(1, 15*time.Hour) {
		t.Error("kill predicate fired at the wrong moment")
	}
	for _, bad := range []string{"15h", "x:15h", "1:xyz"} {
		if _, err := parseKillAt(bad); err == nil {
			t.Errorf("parseKillAt(%q): want error", bad)
		}
	}
}

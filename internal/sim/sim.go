// Package sim is the discrete-time engine that couples the InSURE plant
// models — solar supply, battery bank, relay fabric, PLC, sensors, server
// cluster, and workload — and advances them under the control of a power
// manager.
//
// The engine reproduces the prototype's physical topology (Fig 6): solar
// power feeds the load directly; surplus flows through the charge bus into
// whichever battery units have their charging relays closed; deficits are
// drawn from units on the discharge bus. The PLC samples the per-unit
// transducers into its register file each scan and drives the relays from
// its coils, so managers act on transduced readings, exactly like the
// prototype's coordination node.
package sim

import (
	"fmt"
	"time"

	"insure/internal/battery"
	"insure/internal/genset"
	"insure/internal/logbook"
	"insure/internal/metrics"
	"insure/internal/plc"
	"insure/internal/relay"
	"insure/internal/sensor"
	"insure/internal/server"
	"insure/internal/trace"
	"insure/internal/units"
	"insure/internal/workload"
)

// Manager is a supply/load power-management policy. Control runs once per
// control period with full access to the plant.
type Manager interface {
	Name() string
	// Period is the manager's control interval.
	Period() time.Duration
	// Control observes the plant (through PLC registers) and actuates
	// relays (through PLC coils) and the server cluster.
	Control(sys *System, now time.Duration)
}

// Sink consumes cluster work on behalf of a workload.
type Sink interface {
	Spec() workload.Spec
	// Tick feeds workVMh full-speed VM-hours done at nVMs into the
	// workload and returns GB processed.
	Tick(now, dt time.Duration, workVMh float64, nVMs int) float64
	// HasWork reports whether the workload wants service now.
	HasWork(now time.Duration) bool
	// ProcessedGB is cumulative output.
	ProcessedGB() float64
	// DelayMinutes is the workload's current service-delay estimate.
	DelayMinutes() float64
}

// Config assembles a System.
type Config struct {
	// Trace is the solar budget for the day.
	Trace *trace.Trace
	// BatteryParams and BatteryCount shape the energy buffer (6 units on
	// the prototype).
	BatteryParams battery.Params
	BatteryCount  int
	// InitialSoC is each unit's starting state of charge.
	InitialSoC float64
	// ServerProfile and ServerCount shape the cluster (4 Xeons).
	ServerProfile server.Profile
	ServerCount   int
	// Step is the simulation tick (default 1 s).
	Step time.Duration
	// WindowStart/WindowEnd bound the operating day (Table 6: ~11 h).
	WindowStart time.Duration
	WindowEnd   time.Duration
	// RecordEvery controls recorder down-sampling (default 30 s).
	RecordEvery time.Duration
	// HoldUp is how long the plant rides through a supply shortfall before
	// the inverter trips. The prototype's PLC reacts at scan speed
	// (10 ms) and its relays switch in 25 ms, so any coordinator decision
	// within one control period arrives in time; the default (35 s) gives
	// a 30 s-period manager exactly one chance to react, after which the
	// bus collapses (§2.3's service disruption).
	HoldUp time.Duration
	// CalendarLifeYears caps the e-Buffer service-life projection: VRLA
	// batteries age out chemically even when lightly cycled (~6 years).
	CalendarLifeYears float64
	// Secondary, when non-nil, is the optional backup generator of Fig 6.
	// It feeds the load bus after the battery, under manager control.
	Secondary *genset.Generator
	// Aux, when non-nil, is an additional renewable source feeding the
	// same bus as the solar array (§2.2 motivates wind/solar systems; see
	// insure/internal/wind).
	Aux AuxSupply
	// Bank, when non-nil, is an existing battery bank to operate instead
	// of creating a fresh one — multi-day campaigns carry charge state and
	// wear across days this way.
	Bank *battery.Bank
	// Fabric, when non-nil, is an existing relay fabric to operate instead
	// of creating a fresh one — Fleet wires plants onto shared
	// structure-of-arrays stores this way.
	Fabric *relay.Fabric
	// Arena, when non-nil, supplies worker-local scratch memory (solar LUT
	// cache, recycled recorders) for campaign construction. Purely a memory
	// optimisation: results are bit-identical with or without it.
	Arena *Arena
}

// AuxSupply is an additional renewable generator with the solar supply's
// Step contract.
type AuxSupply interface {
	Step(tod, dt time.Duration) units.Watt
}

// DefaultConfig mirrors the paper's prototype.
func DefaultConfig(tr *trace.Trace) Config {
	return Config{
		Trace:         tr,
		BatteryParams: battery.DefaultParams(),
		BatteryCount:  6,
		InitialSoC:    0.5,
		ServerProfile: server.Xeon(),
		ServerCount:   4,
		Step:          time.Second,
		WindowStart:   8 * time.Hour,
		WindowEnd:     19*time.Hour + 30*time.Minute,
		RecordEvery:   30 * time.Second,
		HoldUp:        35 * time.Second,

		CalendarLifeYears: 6,
	}
}

// System is the assembled plant.
type System struct {
	cfg Config

	Bank    *battery.Bank
	Fabric  *relay.Fabric
	Probes  []*sensor.BatteryProbe
	PLC     *plc.PLC
	Cluster *server.Cluster
	Sink    Sink

	solarNow units.Watt
	auxNow   units.Watt
	loadNow  units.Watt

	// Secondary is the optional backup generator (nil when absent).
	Secondary *genset.Generator

	// Log is the deployment's operational event log (§5's automatically
	// collected log data). Managers and the plant both write to it.
	Log *logbook.Book

	// remote, when set, routes control-plane traffic over Modbus TCP.
	remote       remoteClient
	remoteServer remoteCloser

	// onTick, when set, runs at the top of every Tick with the plant clock —
	// the fault-injection layer's entry point (internal/faults). It must not
	// allocate in the steady state: the zero-alloc tick invariant covers it.
	onTick func(tod time.Duration)

	// tel, when set by AttachTelemetry, mirrors plant state into the live
	// telemetry registry at the end of every tick (telemetry.go).
	tel *telemetryHooks

	auxEnergy units.WattHour

	// solarLUT is the trace resampled onto the simulation step, built once
	// in New: solarLUT[i] is the supply at time-of-day i·Step. Tick reads it
	// with one index instead of walking the trace, falling back to Trace.At
	// for off-step queries so results stay bit-identical.
	solarLUT []units.Watt

	// Scratch buffers reused every tick so the steady-state hot path stays
	// allocation-free (the zero-alloc tick invariant, see DESIGN.md).
	scratchCharging    []int
	scratchDischarging []int
	scratchOpen        []int

	// Accounting.
	harvested     units.WattHour // solar energy actually used (load+charge)
	curtailed     units.WattHour // solar energy with nowhere to go
	loadEnergy    units.WattHour
	effEnergy     units.WattHour // load energy spent while progressing
	brownouts     int
	shortfallFor  time.Duration
	upTicks       int
	windowTicks   int
	dischargeAh   units.AmpHour
	storedSeries  *metrics.Series
	voltSeries    *metrics.Series
	minVolt       units.Volt
	endVolt       units.Volt
	recorder      *Recorder
	recordCounter time.Duration
}

// New assembles a System; the sink supplies the workload.
func New(cfg Config, sink Sink) (*System, error) {
	if cfg.Step <= 0 {
		cfg.Step = time.Second
	}
	if cfg.RecordEvery <= 0 {
		cfg.RecordEvery = 30 * time.Second
	}
	if cfg.HoldUp <= 0 {
		cfg.HoldUp = 35 * time.Second
	}
	bank := cfg.Bank
	if bank == nil {
		var err error
		bank, err = battery.NewBank(cfg.BatteryParams, cfg.BatteryCount, cfg.InitialSoC)
		if err != nil {
			return nil, err
		}
	} else if bank.Size() != cfg.BatteryCount {
		return nil, fmt.Errorf("sim: supplied bank has %d units, config wants %d", bank.Size(), cfg.BatteryCount)
	}
	fabric := cfg.Fabric
	if fabric == nil {
		fabric = relay.NewFabric(cfg.BatteryCount)
	} else if fabric.Size() != cfg.BatteryCount {
		return nil, fmt.Errorf("sim: supplied fabric has %d positions, config wants %d", fabric.Size(), cfg.BatteryCount)
	}
	start, end := runSpan(cfg)
	estFrames := int((end-start)/cfg.RecordEvery) + 4
	s := &System{
		cfg:                cfg,
		Bank:               bank,
		Fabric:             fabric,
		PLC:                plc.New(cfg.BatteryCount),
		Cluster:            server.NewCluster(cfg.ServerProfile, cfg.ServerCount),
		Sink:               sink,
		storedSeries:       metrics.NewStreamingSeries(),
		voltSeries:         metrics.NewStreamingSeries(),
		minVolt:            99,
		recorder:           cfg.Arena.getRecorder(estFrames, cfg.BatteryCount),
		scratchCharging:    make([]int, 0, cfg.BatteryCount),
		scratchDischarging: make([]int, 0, cfg.BatteryCount),
		scratchOpen:        make([]int, 0, cfg.BatteryCount),
	}
	s.buildSolarLUT(end)
	s.Secondary = cfg.Secondary
	s.Log = logbook.New(200_000)
	for i := 0; i < cfg.BatteryCount; i++ {
		s.Probes = append(s.Probes, sensor.NewBatteryProbe(i))
	}
	s.Cluster.SetUtil(sink.Spec().Util)
	s.wirePLC()
	// Prime the register file so the first control pass sees real sensor
	// samples rather than zeroed registers.
	s.PLC.ScanNow()
	return s, nil
}

// runSpan is the [start, end) window a full-day Run covers: from two hours
// before the operating window (or one hour before the trace starts,
// whichever is earlier) to one hour past the operating window.
func runSpan(cfg Config) (start, end time.Duration) {
	start = cfg.WindowStart - 2*time.Hour
	if cfg.Trace != nil {
		if t := cfg.Trace.Start - time.Hour; t < start {
			start = t
		}
	}
	return start, cfg.WindowEnd + time.Hour
}

// buildSolarLUT resamples the trace onto the simulation step once, covering
// time-of-day zero through end, so the per-tick supply query is one bounds
// check and one load. With an Arena configured the LUT comes from the
// worker's cache — same values, built at most once per (trace, step, span).
func (s *System) buildSolarLUT(end time.Duration) {
	s.solarLUT = s.cfg.Arena.solarLUT(s.cfg.Trace, s.cfg.Step, end)
}

// solarAt is the step-indexed supply lookup. Off-step or out-of-range
// queries fall back to the trace so the answer is always bit-identical to
// Trace.At.
func (s *System) solarAt(tod time.Duration) units.Watt {
	if tod >= 0 && tod%s.cfg.Step == 0 {
		if i := int(tod / s.cfg.Step); i < len(s.solarLUT) {
			return s.solarLUT[i]
		}
	}
	return s.cfg.Trace.At(tod)
}

// Config returns the system's configuration.
func (s *System) Config() Config { return s.cfg }

// Recorder returns the time-series recorder.
func (s *System) Recorder() *Recorder { return s.recorder }

// SolarNow is the total harvested renewable power this tick (solar plus
// any auxiliary source on the same bus) — the green power budget managers
// plan against.
func (s *System) SolarNow() units.Watt { return s.solarNow + s.auxNow }

// AuxNow is the auxiliary renewable contribution alone.
func (s *System) AuxNow() units.Watt { return s.auxNow }

// LoadNow is the cluster draw this tick.
func (s *System) LoadNow() units.Watt { return s.loadNow }

// Brownouts counts forced shutdowns from supply collapse.
func (s *System) Brownouts() int { return s.brownouts }

// wirePLC binds the analog sampling and coil actuation hooks.
func (s *System) wirePLC() {
	s.PLC.Sample = func(r *plc.RegisterFile) {
		for i, u := range s.Bank.Units() {
			snap := u.Snapshot()
			s.Probes[i].Sample(snap.Terminal, snap.LastCurrent)
			_ = r.SetInput(plc.InputVolt(i), s.Probes[i].Volt.Raw())
			_ = r.SetInput(plc.InputCurrent(i), s.Probes[i].Current.Raw())
		}
		_ = r.SetInput(plc.InputSolarPower, uint16(units.Clamp(float64(s.solarNow), 0, 65535)))
		_ = r.SetInput(plc.InputLoadPower, uint16(units.Clamp(float64(s.loadNow), 0, 65535)))
	}
	s.PLC.Actuate = func(r *plc.RegisterFile) {
		for i := 0; i < s.Bank.Size(); i++ {
			cr, err := r.Coil(plc.CoilCharge(i))
			if err != nil {
				continue
			}
			dr, err := r.Coil(plc.CoilDischarge(i))
			if err != nil {
				continue
			}
			pair := s.Fabric.Pair(i)
			switch {
			case cr && dr:
				// Interlock: refuse the double-closed command.
				pair.SetMode(relay.Open)
			case cr:
				pair.SetMode(relay.Charging)
			case dr:
				pair.SetMode(relay.Discharging)
			default:
				pair.SetMode(relay.Open)
			}
		}
	}
}

// remoteClient is the Modbus surface the control plane needs.
type remoteClient interface {
	WriteCoils(addr uint16, vals []bool) error
	ReadInput(addr, count uint16) ([]uint16, error)
}

// remoteCloser tears down the served panel.
type remoteCloser interface{ Close() error }

// SetUnitMode writes the PLC coils that realise the requested relay mode
// for unit i — the path a manager uses (locally or over Modbus).
func (s *System) SetUnitMode(i int, m relay.Mode) {
	if s.remote != nil {
		if err := s.remoteSetUnitMode(i, m); err == nil {
			return
		}
		// Fieldbus failure: fall through to the local path so the plant
		// stays controllable, and leave a trace in the logbook.
		s.Log.Addf(0, logbook.Emergency, "fieldbus", "write failed for unit %d; local fallback", i)
	}
	switch m {
	case relay.Charging:
		_ = s.PLC.Regs.WriteCoil(plc.CoilDischarge(i), false)
		_ = s.PLC.Regs.WriteCoil(plc.CoilCharge(i), true)
	case relay.Discharging:
		_ = s.PLC.Regs.WriteCoil(plc.CoilCharge(i), false)
		_ = s.PLC.Regs.WriteCoil(plc.CoilDischarge(i), true)
	default:
		_ = s.PLC.Regs.WriteCoil(plc.CoilCharge(i), false)
		_ = s.PLC.Regs.WriteCoil(plc.CoilDischarge(i), false)
	}
}

// UnitReading returns unit i's transduced voltage and current as sampled by
// the PLC (what the prototype's coordinator actually sees).
func (s *System) UnitReading(i int) (units.Volt, units.Amp) {
	if s.remote != nil {
		if v, cur, err := s.remoteUnitReading(i); err == nil {
			return v, cur
		}
	}
	return s.Probes[i].Readings()
}

// InWindow reports whether tod is inside the operating day.
func (s *System) InWindow(tod time.Duration) bool {
	return tod >= s.cfg.WindowStart && tod < s.cfg.WindowEnd
}

// SetTickHook installs fn to run at the top of every Tick, before manager
// control — so a fault landing on a control-period boundary is already in
// effect when the controller reads the plant. Pass nil to remove it.
func (s *System) SetTickHook(fn func(tod time.Duration)) { s.onTick = fn }

// Tick advances the plant one step at time-of-day tod.
func (s *System) Tick(tod time.Duration, mgr Manager) {
	dt := s.cfg.Step

	if s.onTick != nil {
		s.onTick(tod)
	}

	// 1. Renewable budget for this tick.
	s.solarNow = s.solarAt(tod)
	if s.cfg.Aux != nil {
		s.auxNow = s.cfg.Aux.Step(tod, dt)
		s.auxEnergy += units.Energy(s.auxNow, dt)
	}

	// 2. Manager control at its period boundary.
	if mgr != nil && int64(tod/dt)%int64(mgr.Period()/dt) == 0 {
		mgr.Control(s, tod)
	}

	// 3. Resolve power flow.
	s.loadNow = s.Cluster.Power()
	supply := s.solarNow + s.auxNow
	solarToLoad := supply
	if solarToLoad > s.loadNow {
		solarToLoad = s.loadNow
	}
	surplus := supply - solarToLoad
	deficit := s.loadNow - solarToLoad

	s.scratchCharging = s.Fabric.AppendUnitsIn(s.scratchCharging[:0], relay.Charging)
	s.scratchDischarging = s.Fabric.AppendUnitsIn(s.scratchDischarging[:0], relay.Discharging)
	charging := s.scratchCharging
	discharging := s.scratchDischarging

	// Dispatch order for a deficit: the secondary feed (Fig 6/Fig 7 "S")
	// forms the backup bus and takes the base of the shortfall; the
	// battery trims whatever remains. Running the battery first would let
	// a generator-sized load plan crush the buffer at uncapped current.
	var deliveredWh units.WattHour
	remaining := deficit
	if s.Secondary != nil {
		got := s.Secondary.Step(remaining, dt)
		deliveredWh += units.Energy(got, dt)
		remaining -= got
		if remaining < 0 {
			remaining = 0
		}
	}
	if remaining > 0 && len(discharging) > 0 {
		deliveredWh += s.Bank.DischargeSet(discharging, remaining, dt)
		for _, i := range discharging {
			v := s.Bank.Unit(i).TerminalVoltage()
			cur := units.Current(remaining/units.Watt(max(len(discharging), 1)), v)
			s.dischargeAh += units.Charge(cur, dt)
		}
	} else {
		// Connected but idle discharge units still diffuse/recover.
		for _, i := range discharging {
			s.Bank.Unit(i).Rest(dt)
		}
	}
	if deficit > 0 {
		needWh := units.Energy(deficit, dt)
		if deliveredWh < needWh*0.95 {
			// The power panel's hold-up capacitance rides through brief
			// shortfalls; a sustained one trips the inverter and the
			// cluster loses power mid-operation (§2.3's disruption).
			s.shortfallFor += dt
			if s.tel != nil {
				s.tel.deficitTicks.Inc()
			}
			if s.shortfallFor >= s.cfg.HoldUp {
				s.brownouts++
				if s.tel != nil {
					s.tel.brownouts.Inc()
				}
				// The inverter trips: this is a power cut, not a control
				// action. Nodes caught running or mid-checkpoint lose their
				// uncheckpointed VM state (§2.3's service disruption) — the
				// survivability layer exists to shed load and checkpoint
				// *before* this instant arrives.
				s.Cluster.Crash()
				s.shortfallFor = 0
				s.Log.Addf(tod, logbook.Emergency, "bus",
					"brownout: %.0f W deficit unserved, cluster crashed", float64(deficit))
			}
		} else {
			s.shortfallFor = 0
		}
	} else {
		s.shortfallFor = 0
	}
	var chargedW units.Watt
	if surplus > 0 && len(charging) > 0 {
		chargedW = s.Bank.ChargeSet(charging, surplus, dt)
	} else {
		for _, i := range charging {
			s.Bank.Unit(i).Rest(dt)
		}
	}
	s.curtailed += units.Energy(surplus-chargedW, dt)
	s.harvested += units.Energy(solarToLoad+chargedW, dt)

	// Units not on either bus rest and recover.
	s.scratchOpen = s.Fabric.AppendUnitsIn(s.scratchOpen[:0], relay.Open)
	for _, i := range s.scratchOpen {
		s.Bank.Unit(i).Rest(dt)
	}

	// 4. Control plane sampling/actuation.
	s.Fabric.Tick(dt)
	s.PLC.Tick(dt)

	// 5. Cluster progress into the workload.
	work := s.Cluster.Step(dt)
	gb := 0.0
	if s.Sink != nil {
		gb = s.Sink.Tick(tod, dt, work, s.Cluster.RunningVMs())
	}

	// 6. Accounting.
	loadE := units.Energy(s.loadNow, dt)
	s.loadEnergy += loadE
	if work > 0 && gb >= 0 {
		s.effEnergy += loadE
	}
	if s.InWindow(tod) {
		s.windowTicks++
		if s.Cluster.AnyRunning() {
			s.upTicks++
		}
	}
	s.storedSeries.Add(float64(s.Bank.StoredEnergy()))
	for _, u := range s.Bank.Units() {
		v := u.TerminalVoltage()
		s.voltSeries.Add(float64(v))
		if v < s.minVolt {
			s.minVolt = v
		}
	}

	if s.tel != nil {
		s.tel.publish(s, tod)
	}

	// 7. Trace recording (down-sampled).
	s.recordCounter += dt
	if s.recordCounter >= s.cfg.RecordEvery {
		s.recordCounter = 0
		s.recorder.capture(tod, s)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Run simulates one full day (from one hour before the solar window to one
// hour past the operating window) under the manager.
func (s *System) Run(mgr Manager) Result {
	start, end := s.Span()
	for tod := start; tod < end; tod += s.cfg.Step {
		s.Tick(tod, mgr)
	}
	return s.Finish(mgr)
}

// Span returns the [start, end) time-of-day window a full-day Run covers.
// Harnesses that drive Tick themselves — the sim's kill/resume mode and
// the chaos campaigns — loop over this span and call Finish at the end.
func (s *System) Span() (start, end time.Duration) { return runSpan(s.cfg) }

// Finish seals a caller-driven tick loop and computes the day's Result,
// exactly as Run does after its own loop.
func (s *System) Finish(mgr Manager) Result {
	s.endVolt = s.Bank.Unit(0).TerminalVoltage()
	return s.result(mgr)
}

// Result summarises a run with the paper's measurement metrics.
type Result struct {
	Manager  string
	Workload string

	// Service-related metrics (Figs 20/21 left half).
	UptimeFrac  float64 // fraction of the operating window with servers up
	ProcessedGB float64
	Throughput  float64 // GB per operating-window hour
	DelayMin    float64 // mean service delay, minutes

	// System-related metrics (Figs 20/21 right half).
	EnergyAvail     units.WattHour // mean stored energy in the e-Buffer
	ServiceLifeYear float64        // projected e-Buffer service life
	PerfPerAh       float64        // GB processed per discharge Ah

	// Table 6 log statistics.
	LoadKWh      float64
	EffectiveKWh float64
	PowerOps     int
	OnOffCycles  int
	VMOps        int
	MinVolt      units.Volt
	EndVolt      units.Volt
	VoltStdDev   float64
	Brownouts    int

	// Survivability accounting: VM images whose checkpoint completed, and
	// VMs destroyed by power loss before their state was safe (the paper's
	// in-flight data loss a brownout causes).
	VMsSaved int
	VMsLost  int

	// Energy-flow accounting.
	HarvestedKWh float64
	CurtailedKWh float64
	WearSpreadAh units.AmpHour
	// WearAhPerUnit is the day's wear-weighted discharge throughput per
	// battery unit — the direct driver of buffer service life.
	WearAhPerUnit units.AmpHour

	// Secondary-power accounting (zero when no backup is fitted).
	GenStarts    int
	GenRunHours  float64
	GenKWh       float64
	GenFuelCost  float64
	GenWastedKWh float64 // energy dumped holding the min-load floor

	// AuxKWh is the auxiliary renewable (wind) generation over the run.
	AuxKWh float64
}

func (s *System) result(mgr Manager) Result {
	window := s.cfg.WindowEnd - s.cfg.WindowStart
	r := Result{
		Workload:     s.Sink.Spec().Name,
		ProcessedGB:  s.Sink.ProcessedGB(),
		DelayMin:     s.Sink.DelayMinutes(),
		EnergyAvail:  units.WattHour(s.storedSeries.Mean()),
		LoadKWh:      s.loadEnergy.KWh(),
		EffectiveKWh: s.effEnergy.KWh(),
		PowerOps:     s.Cluster.PowerOps(),
		OnOffCycles:  s.Cluster.OnOffCycles(),
		VMOps:        s.Cluster.VMOps(),
		MinVolt:      s.minVolt,
		EndVolt:      s.endVolt,
		VoltStdDev:   s.voltSeries.StdDev(),
		Brownouts:    s.brownouts,
		VMsSaved:     s.Cluster.VMsSaved(),
		VMsLost:      s.Cluster.VMsLost(),
		HarvestedKWh: s.harvested.KWh(),
		CurtailedKWh: s.curtailed.KWh(),
		WearSpreadAh: s.Bank.ThroughputSpread(),
	}
	if mgr != nil {
		r.Manager = mgr.Name()
	}
	if s.windowTicks > 0 {
		r.UptimeFrac = float64(s.upTicks) / float64(s.windowTicks)
	}
	if h := window.Hours(); h > 0 {
		r.Throughput = r.ProcessedGB / h
	}
	// Perf per Ah uses the wear-weighted throughput through the buffer, so
	// deep discharges (which consume disproportionate battery life) count
	// at their true cost.
	daily := s.Bank.TotalThroughput()
	if daily > 0 {
		r.PerfPerAh = r.ProcessedGB / float64(daily)
	}
	r.WearAhPerUnit = daily / units.AmpHour(s.cfg.BatteryCount)
	if s.Secondary != nil {
		r.GenStarts = s.Secondary.Starts()
		r.GenRunHours = s.Secondary.RunTime().Hours()
		r.GenKWh = s.Secondary.Delivered().KWh()
		r.GenFuelCost = s.Secondary.FuelCost()
		r.GenWastedKWh = s.Secondary.Wasted().KWh()
	}
	r.AuxKWh = s.auxEnergy.KWh()
	r.ServiceLifeYear = s.cfg.CalendarLifeYears
	if daily > 0 {
		total := float64(s.cfg.BatteryParams.LifetimeAh) * float64(s.cfg.BatteryCount)
		if cyc := total / float64(daily) / 365; cyc < r.ServiceLifeYear || s.cfg.CalendarLifeYears <= 0 {
			r.ServiceLifeYear = cyc
		}
	}
	return r
}

package genset

import (
	"testing"
	"time"

	"insure/internal/units"
)

func TestKindString(t *testing.T) {
	if Diesel.String() != "diesel" || FuelCell.String() != "fuel-cell" {
		t.Error("kind names wrong")
	}
	if Kind(7).String() == "" {
		t.Error("unknown kind should format")
	}
}

func TestStoppedDeliversNothing(t *testing.T) {
	g := New(DieselParams())
	if got := g.Step(500, time.Second); got != 0 {
		t.Errorf("stopped generator delivered %v", got)
	}
	if g.FuelCost() != 0 {
		t.Error("stopped generator burned fuel")
	}
}

func TestStartDelay(t *testing.T) {
	g := New(DieselParams())
	g.Start()
	if g.Available() {
		t.Error("diesel available instantly")
	}
	if got := g.Step(500, 5*time.Second); got != 0 {
		t.Errorf("delivered %v while warming", got)
	}
	g.Step(500, 15*time.Second)
	if got := g.Step(500, time.Second); got != 500 {
		t.Errorf("post-warmup delivery = %v, want 500", got)
	}
	if !g.Available() {
		t.Error("not available after warmup")
	}
}

func TestDoubleStartIsOneStart(t *testing.T) {
	g := New(DieselParams())
	g.Start()
	g.Start()
	if g.Starts() != 1 {
		t.Errorf("starts = %d", g.Starts())
	}
	g.Stop()
	g.Start()
	if g.Starts() != 2 {
		t.Errorf("starts after restart = %d", g.Starts())
	}
}

func TestOutputCappedAtRated(t *testing.T) {
	g := New(DieselParams())
	g.Start()
	g.Step(0, time.Minute) // warm up
	if got := g.Step(99999, time.Second); got != g.Params().Rated {
		t.Errorf("output %v, want rated %v", got, g.Params().Rated)
	}
	if got := g.Step(-5, time.Second); got != 0 {
		t.Errorf("negative demand delivered %v", got)
	}
}

func TestMinLoadFuelBurn(t *testing.T) {
	// Running a diesel at 5% load must burn fuel as if at 30% (wet
	// stacking floor), so $/kWh-delivered degrades at light load.
	g := New(DieselParams())
	g.Start()
	g.Step(0, time.Minute)
	baseFuel := g.FuelCost()
	light := units.Watt(0.05 * float64(g.Params().Rated))
	for i := 0; i < 3600; i++ {
		g.Step(light, time.Second)
	}
	fuel := g.FuelCost() - baseFuel
	delivered := units.Energy(light, time.Hour)
	perKWh := fuel / delivered.KWh()
	if perKWh < 2*g.Params().FuelPerKWh {
		t.Errorf("light-load $/kWh = %.2f, want well above the rated %.2f", perKWh, g.Params().FuelPerKWh)
	}
}

func TestFuelCellCheaperPerKWh(t *testing.T) {
	run := func(p Params) float64 {
		g := New(p)
		g.Start()
		g.Step(0, 10*time.Minute) // cover both warmups
		for i := 0; i < 3600; i++ {
			g.Step(1000, time.Second)
		}
		return g.FuelCost() / g.Delivered().KWh()
	}
	if d, fc := run(DieselParams()), run(FuelCellParams()); fc >= d {
		t.Errorf("fuel cell $/kWh (%.2f) not below diesel (%.2f) — Table 1 contrast", fc, d)
	}
}

func TestRunTimeAndService(t *testing.T) {
	p := DieselParams()
	p.MaintenanceInterval = time.Hour
	g := New(p)
	g.Start()
	for i := 0; i < 3601; i++ {
		g.Step(500, time.Second)
	}
	if !g.ServiceDue() {
		t.Error("service not due after exceeding the interval")
	}
	if g.RunTime() < time.Hour {
		t.Errorf("run time = %v", g.RunTime())
	}
}

func TestStopCutsOutput(t *testing.T) {
	g := New(FuelCellParams())
	g.Start()
	g.Step(0, 10*time.Minute)
	if g.Step(800, time.Second) != 800 {
		t.Fatal("warm fuel cell should deliver")
	}
	g.Stop()
	if g.Step(800, time.Second) != 0 {
		t.Error("stopped generator still delivering")
	}
}

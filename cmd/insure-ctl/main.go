// Command insure-ctl is a Modbus TCP client for the battery control panel
// served by insure-plcd (or the real prototype's Weintek panel). It reads
// per-unit telemetry and drives the charge/discharge relays.
//
// Usage:
//
//	insure-ctl -addr 127.0.0.1:1502 status           # per-unit telemetry
//	insure-ctl -addr 127.0.0.1:1502 charge 2         # unit 2 -> charge bus
//	insure-ctl -addr 127.0.0.1:1502 discharge 2      # unit 2 -> load bus
//	insure-ctl -addr 127.0.0.1:1502 open 2           # unit 2 -> open
//	insure-ctl -addr 127.0.0.1:1502 coils            # raw coil states
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"

	"insure/internal/modbus"
	"insure/internal/plc"
	"insure/internal/sensor"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("insure-ctl: ")
	addr := flag.String("addr", "127.0.0.1:1502", "control panel address")
	units := flag.Int("units", 6, "battery units on the panel")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		args = []string{"status"}
	}

	c, err := modbus.Dial(*addr)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	switch args[0] {
	case "status":
		status(c, *units)
	case "coils":
		coils(c, *units)
	case "charge", "discharge", "open":
		if len(args) < 2 {
			log.Fatalf("%s needs a unit index", args[0])
		}
		unit, err := strconv.Atoi(args[1])
		if err != nil || unit < 0 || unit >= *units {
			log.Fatalf("bad unit %q", args[1])
		}
		setMode(c, unit, args[0])
	default:
		log.Fatalf("unknown command %q (want status, coils, charge, discharge, open)", args[0])
	}
}

// status decodes the voltage/current input registers through the same
// transducer models the panel encodes with.
func status(c *modbus.Client, n int) {
	regs, err := c.ReadInput(0, uint16(2*n))
	if err != nil {
		log.Fatal(err)
	}
	sys, err := c.ReadInput(plc.InputSolarPower, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("solar %d W, load %d W\n", sys[0], sys[1])
	for i := 0; i < n; i++ {
		probe := sensor.NewBatteryProbe(i)
		probe.Volt.SetRaw(regs[2*i])
		probe.Current.SetRaw(regs[2*i+1])
		v, cur := probe.Readings()
		state := "idle"
		switch {
		case cur > 0.2:
			state = "discharging"
		case cur < -0.2:
			state = "charging"
		}
		fmt.Printf("battery #%d: %6.2f V %6.2f A  %s\n", i+1, float64(v), float64(cur), state)
	}
}

func coils(c *modbus.Client, n int) {
	bits, err := c.ReadCoils(0, uint16(2*n))
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < n; i++ {
		fmt.Printf("battery #%d: charge=%v discharge=%v\n", i+1, bits[2*i], bits[2*i+1])
	}
}

// setMode swings the unit's relay pair atomically with a multi-coil write,
// preserving the charge/discharge interlock.
func setMode(c *modbus.Client, unit int, mode string) {
	var pair []bool
	switch mode {
	case "charge":
		pair = []bool{true, false}
	case "discharge":
		pair = []bool{false, true}
	default:
		pair = []bool{false, false}
	}
	if err := c.WriteCoils(plc.CoilCharge(unit), pair); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("battery #%d -> %s\n", unit+1, mode)
}

package sim

import (
	"strconv"
	"time"

	"insure/internal/modbus"
	"insure/internal/telemetry"
	"insure/internal/workload"
)

// telemetryHooks holds the pre-registered instruments the tick path writes.
// Everything is resolved once in AttachTelemetry so the per-tick publish is
// pure atomic stores — the zero-alloc tick invariant covers an instrumented
// system too (see TestTickWithTelemetryAllocFree).
type telemetryHooks struct {
	reg *telemetry.Registry

	soc  []*telemetry.Gauge // per-unit state of charge
	tput []*telemetry.Gauge // per-unit wear-weighted discharge throughput

	solar       *telemetry.Gauge
	load        *telemetry.Gauge
	stored      *telemetry.Gauge
	relayCycles *telemetry.Gauge

	vmsSaved *telemetry.Gauge
	vmsLost  *telemetry.Gauge

	// Workload-queue visibility: the shedding decisions the survivability
	// layer takes are only observable if the queues they starve are too.
	// Exactly one pair is non-nil, matching the sink the system runs.
	streamBacklog *telemetry.Gauge
	streamDropped *telemetry.Gauge
	batchBacklog  *telemetry.Gauge
	batchLatency  *telemetry.Gauge

	streamQ *workload.StreamQueue
	batchQ  *workload.BatchQueue

	brownouts    *telemetry.Counter
	deficitTicks *telemetry.Counter

	settle *telemetry.Histogram
	scan   *telemetry.Histogram
}

// AttachTelemetry registers the plant's instruments on reg and installs the
// PLC scan-duration and relay settle-latency hooks. Gauges are published by
// the tick goroutine with atomic stores, so a concurrent /metrics scrape
// never races with the simulation; counters advance at the event sites in
// Tick. Call it once, before the first Tick.
func (s *System) AttachTelemetry(reg *telemetry.Registry) {
	t := &telemetryHooks{reg: reg}
	for i := 0; i < s.Bank.Size(); i++ {
		lbl := telemetry.Label{Key: "unit", Value: strconv.Itoa(i)}
		t.soc = append(t.soc, reg.Gauge("insure_battery_soc",
			"State of charge of one battery unit (0-1).", lbl))
		t.tput = append(t.tput, reg.Gauge("insure_battery_throughput_ah",
			"Cumulative wear-weighted discharge throughput of one battery unit, amp-hours.", lbl))
	}
	t.solar = reg.Gauge("insure_supply_watts",
		"Renewable supply this tick (solar plus auxiliary), watts.")
	t.load = reg.Gauge("insure_load_watts",
		"Cluster draw this tick, watts.")
	t.stored = reg.Gauge("insure_stored_watt_hours",
		"Energy held in the battery bank, watt-hours.")
	t.relayCycles = reg.Gauge("insure_relay_cycles",
		"Total mechanical switching cycles consumed across the relay fabric.")
	t.vmsSaved = reg.Gauge("insure_vm_checkpoints_completed",
		"VM images whose checkpoint completed before power-off, lifetime total.")
	t.vmsLost = reg.Gauge("insure_vms_lost",
		"VMs destroyed by power loss before their state was checkpointed, lifetime total.")
	switch sink := s.Sink.(type) {
	case *StreamSink:
		t.streamQ = sink.Queue
		t.streamBacklog = reg.Gauge("insure_stream_backlog_gb",
			"Stream data waiting for service, gigabytes.")
		t.streamDropped = reg.Gauge("insure_stream_dropped_gb",
			"Stream data lost to buffer overflow, gigabytes, lifetime total.")
	case *BatchSink:
		t.batchQ = sink.Queue
		t.batchBacklog = reg.Gauge("insure_batch_backlog_gb",
			"Unprocessed batch job data, gigabytes.")
		t.batchLatency = reg.Gauge("insure_batch_latency_minutes",
			"Mean arrival-to-completion latency of finished batch jobs, minutes.")
	}
	t.brownouts = reg.Counter("insure_brownouts_total",
		"Forced cluster shutdowns from sustained supply collapse.")
	t.deficitTicks = reg.Counter("insure_power_deficit_ticks_total",
		"Ticks in which the deficit went at least 5% unserved (hold-up riding).")
	t.scan = reg.Histogram("insure_plc_scan_duration_seconds",
		"Wall-clock duration of one PLC scan cycle.", telemetry.DefTimeBuckets)
	t.settle = reg.Histogram("insure_relay_settle_seconds",
		"Sim-time between a relay coil command and the contact settling, as the control plane observes it.",
		telemetry.DefTimeBuckets)

	s.PLC.OnScan = func(d time.Duration) { t.scan.Observe(d.Seconds()) }
	onSettle := func(w time.Duration) { t.settle.Observe(w.Seconds()) }
	for i := 0; i < s.Fabric.Size(); i++ {
		p := s.Fabric.Pair(i)
		p.Charge.OnSettle = onSettle
		p.Discharge.OnSettle = onSettle
	}
	s.Fabric.P1.OnSettle = onSettle
	s.Fabric.P2.OnSettle = onSettle
	s.Fabric.P3.OnSettle = onSettle

	// A fieldbus control plane brings the Modbus client's fault counters
	// along. Attach the remote panel before the telemetry for these to
	// appear.
	if c, ok := s.remote.(*modbus.Client); ok {
		c.RegisterTelemetry(reg)
	}

	// A fitted backup generator brings its own instruments (genset package).
	if s.Secondary != nil {
		s.Secondary.AttachTelemetry(reg)
	}

	s.tel = t
}

// publish mirrors the plant state into the gauges at the end of a tick. The
// registry clock follows sim time, so a scrape (or an end-of-run snapshot)
// can be correlated with logbook timestamps.
func (t *telemetryHooks) publish(s *System, tod time.Duration) {
	t.reg.SetClock(tod)
	t.solar.Set(float64(s.solarNow + s.auxNow))
	t.load.Set(float64(s.loadNow))
	t.stored.Set(float64(s.Bank.StoredEnergy()))
	t.relayCycles.Set(float64(s.Fabric.TotalCycles()))
	t.vmsSaved.Set(float64(s.Cluster.VMsSaved()))
	t.vmsLost.Set(float64(s.Cluster.VMsLost()))
	if t.streamQ != nil {
		t.streamBacklog.Set(t.streamQ.Backlog())
		t.streamDropped.Set(t.streamQ.DroppedGB())
	}
	if t.batchQ != nil {
		t.batchBacklog.Set(t.batchQ.PendingGB())
		t.batchLatency.Set(t.batchQ.MeanLatency().Minutes())
	}
	for i, g := range t.soc {
		u := s.Bank.Unit(i)
		g.Set(u.SoC())
		t.tput[i].Set(float64(u.Throughput()))
	}
}

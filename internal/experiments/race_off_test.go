//go:build !race

package experiments

// raceEnabled reports whether the race detector is compiled in; some
// full-evaluation tests are too slow to run twice under it.
const raceEnabled = false

package journal

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestCodecRoundTrip(t *testing.T) {
	var e Encoder
	e.U8(7)
	e.U16(65535)
	e.U64(1<<63 + 12345)
	e.I64(-42)
	e.Int(-7)
	e.F64(3.141592653589793)
	e.F64(math.Copysign(0, -1))
	e.Bool(true)
	e.Bool(false)
	e.Dur(90 * time.Minute)
	e.String("quarantine: ghost current")
	e.String("")

	d := NewDecoder(e.Bytes())
	if got := d.U8(); got != 7 {
		t.Errorf("U8 = %d", got)
	}
	if got := d.U16(); got != 65535 {
		t.Errorf("U16 = %d", got)
	}
	if got := d.U64(); got != 1<<63+12345 {
		t.Errorf("U64 = %d", got)
	}
	if got := d.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := d.Int(); got != -7 {
		t.Errorf("Int = %d", got)
	}
	if got := d.F64(); got != 3.141592653589793 {
		t.Errorf("F64 = %v", got)
	}
	if got := d.U64(); got != 1<<63 { // -0.0 must round-trip bit-exactly
		t.Errorf("-0.0 bits = %x", got)
	}
	if !d.Bool() || d.Bool() {
		t.Error("Bool round-trip failed")
	}
	if got := d.Dur(); got != 90*time.Minute {
		t.Errorf("Dur = %v", got)
	}
	if got := d.String(); got != "quarantine: ghost current" {
		t.Errorf("String = %q", got)
	}
	if got := d.String(); got != "" {
		t.Errorf("empty String = %q", got)
	}
	if d.Remaining() != 0 {
		t.Errorf("%d bytes left over", d.Remaining())
	}
	if d.Err() != nil {
		t.Fatal(d.Err())
	}
}

func TestDecoderStickyError(t *testing.T) {
	d := NewDecoder([]byte{1, 2})
	_ = d.U64() // too short
	if d.Err() == nil {
		t.Fatal("want error on short read")
	}
	if got := d.F64(); got != 0 {
		t.Errorf("read after error = %v, want 0", got)
	}
}

func TestEncoderAppendDoesNotAllocateAfterWarmup(t *testing.T) {
	var e Encoder
	fill := func() {
		e.Reset()
		for i := 0; i < 64; i++ {
			e.F64(float64(i) * 1.5)
			e.Bool(i%2 == 0)
			e.Int(i)
		}
	}
	fill() // warm the buffer to steady-state capacity
	allocs := testing.AllocsPerRun(100, fill)
	if allocs != 0 {
		t.Errorf("encoder reuse allocates %.1f/op, want 0", allocs)
	}
}

func TestStoreAppendLoad(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := s.Append([]byte{byte(i), byte(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	res, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if res.Snapshot != nil {
		t.Error("unexpected snapshot")
	}
	if len(res.Entries) != 5 {
		t.Fatalf("entries = %d, want 5", len(res.Entries))
	}
	for i, e := range res.Entries {
		if !bytes.Equal(e, []byte{byte(i), byte(i + 1)}) {
			t.Errorf("entry %d = %v", i, e)
		}
		if res.EntrySeqs[i] != uint64(i+1) {
			t.Errorf("seq %d = %d", i, res.EntrySeqs[i])
		}
	}
	if res.LastSeq != 5 {
		t.Errorf("LastSeq = %d", res.LastSeq)
	}
}

func TestStoreSnapshotGatesJournal(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append([]byte("old-1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot([]byte("snap")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append([]byte("new-1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	res, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Snapshot) != "snap" {
		t.Errorf("snapshot = %q", res.Snapshot)
	}
	if len(res.Entries) != 1 || string(res.Entries[0]) != "new-1" {
		t.Errorf("entries = %q, want [new-1]", res.Entries)
	}

	// Crash between snapshot rename and journal truncate: simulate by
	// re-appending a record with a stale seq — covered structurally by
	// seq-gating, asserted here via the snapshot seq ordering.
	if res.EntrySeqs[0] <= res.SnapshotSeq {
		t.Error("journal entry not sequenced after snapshot")
	}
}

func TestStoreTornTailIsDropped(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append([]byte("good-record")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append([]byte("torn-record")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := TruncateTail(dir, 3); err != nil {
		t.Fatal(err)
	}

	res, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 1 || string(res.Entries[0]) != "good-record" {
		t.Fatalf("entries after torn tail = %q, want [good-record]", res.Entries)
	}

	// Reopen must truncate the torn bytes and continue the seq chain.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := s2.Append([]byte("after-crash"))
	if err != nil {
		t.Fatal(err)
	}
	// The torn record's seq is reused: its bytes were truncated away, so
	// the on-disk chain stays gapless.
	if seq != 2 {
		t.Errorf("post-crash seq = %d, want 2", seq)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	res, err = Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 2 || string(res.Entries[1]) != "after-crash" {
		t.Fatalf("entries after reopen = %q", res.Entries)
	}
}

// corruptByte flips one byte in every named file that exists.
func corruptByte(t *testing.T, dir string, offset int, names ...string) {
	t.Helper()
	for _, name := range names {
		path := filepath.Join(dir, name)
		raw, err := os.ReadFile(path)
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		off := offset
		if off < 0 {
			off += len(raw)
		}
		raw[off] ^= 0xFF
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestStoreMidstreamCorruptionResyncs(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Append([]byte{0xAA, byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip a payload byte in the middle record of BOTH copies: the damaged
	// record is lost, but — unlike a torn tail — replay must resynchronize
	// and keep the good record after it, and must say so.
	rec := recordHeader + 2
	corruptByte(t, dir, rec+recordHeader, journalName, journalMirror)

	res, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 2 {
		t.Fatalf("entries = %d, want 2 (replay resyncs past corruption)", len(res.Entries))
	}
	if res.EntrySeqs[0] != 1 || res.EntrySeqs[1] != 3 {
		t.Errorf("seqs = %v, want [1 3]", res.EntrySeqs)
	}
	if res.Midstream == 0 {
		t.Error("midstream corruption not reported")
	}
	if res.Tail != TailClean {
		t.Errorf("tail = %v, want clean (damage was mid-stream, not a crash)", res.Tail)
	}
}

func TestStoreMirrorMasksCorruptRecord(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Append([]byte{0xAA, byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Damage only the primary: the mirror must supply the lost record and
	// the load must report the masking.
	rec := recordHeader + 2
	corruptByte(t, dir, rec+recordHeader, journalName)

	res, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 3 {
		t.Fatalf("entries = %d, want 3 (mirror masks the damage)", len(res.Entries))
	}
	if res.Masked == 0 {
		t.Error("masked recovery not reported")
	}
	if res.Midstream == 0 || res.CorruptCopies == 0 {
		t.Errorf("Midstream=%d CorruptCopies=%d, want both > 0", res.Midstream, res.CorruptCopies)
	}

	// Reopen normalizes the pair back to the full record set.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	res, err = Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 3 || res.Midstream != 0 || res.Masked != 0 {
		t.Errorf("after reopen: entries=%d Midstream=%d Masked=%d, want 3/0/0",
			len(res.Entries), res.Midstream, res.Masked)
	}
}

func TestStoreCorruptSnapshotIsAnError(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot([]byte("snapshot-payload")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt every copy of the only generation: nothing intact remains
	// and the load must fail loudly rather than boot from zero.
	corruptByte(t, dir, -1, slotName(0), slotMirror(0), slotName(1), slotMirror(1), legacySnapshotName)
	if _, err := Load(dir); err == nil {
		t.Fatal("want error loading corrupt snapshot")
	}
}

func TestStoreSnapshotMirrorCoversCorruptPrimary(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot([]byte("snapshot-payload")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	corruptByte(t, dir, -1, slotName(0))
	res, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Snapshot) != "snapshot-payload" {
		t.Fatalf("snapshot = %q, want mirror copy to cover", res.Snapshot)
	}
	if res.CorruptCopies == 0 {
		t.Error("corrupt primary not counted")
	}
}

func TestStoreFallsBackToOlderGeneration(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append([]byte("rec-1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot([]byte("gen-1")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append([]byte("rec-2")); err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot([]byte("gen-2")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append([]byte("rec-3")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Destroy both copies of the newest generation (slot B holds gen-2:
	// gen-1 went to slot A, gen-2 to the older empty slot B). Recovery
	// must fall back to gen-1 and replay the sealed segment after it.
	res, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Snapshot) != "gen-2" {
		t.Fatalf("pre-damage snapshot = %q, want gen-2", res.Snapshot)
	}
	newest := slotName(1)
	newestMir := slotMirror(1)
	if string(mustRead(t, dir, slotName(0))[blobHeader:]) == "gen-2" {
		newest, newestMir = slotName(0), slotMirror(0)
	}
	corruptByte(t, dir, -1, newest, newestMir)

	res, err = Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Snapshot) != "gen-1" {
		t.Fatalf("snapshot = %q, want fallback to gen-1", res.Snapshot)
	}
	if !res.SnapshotFallback {
		t.Error("fallback not reported")
	}
	// The longer replay must carry every record after gen-1: rec-2 from
	// the sealed segment and rec-3 from the active journal.
	var got []string
	for _, e := range res.Entries {
		got = append(got, string(e))
	}
	if len(got) != 2 || got[0] != "rec-2" || got[1] != "rec-3" {
		t.Fatalf("fallback replay = %q, want [rec-2 rec-3]", got)
	}
}

func mustRead(t *testing.T, dir, name string) []byte {
	t.Helper()
	b, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestStoreSealedSegmentsPruned(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := s.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		if err := s.Snapshot([]byte{0x50, byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	names, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	segs := 0
	for _, e := range names {
		if _, ok := segSeq(e.Name()); ok {
			segs++
		}
	}
	// Only history newer than the older surviving generation may remain:
	// with a snapshot after every record that is exactly one segment.
	if segs != 1 {
		t.Errorf("sealed segments = %d, want 1 (older history pruned)", segs)
	}
}

func TestStorePoisonedByFailedSync(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	// Simulate fsyncgate: force the next sync to fail by swapping the
	// handle for one that errors.
	s.f = failingFile{File: s.f}
	if _, err := s.Append([]byte("doomed")); err == nil {
		t.Fatal("want error from failing sync")
	}
	if s.Failed() == nil {
		t.Fatal("store not poisoned after failed sync")
	}
	if _, err := s.Append([]byte("after")); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("append after poison = %v, want ErrPoisoned", err)
	}
	if err := s.Snapshot([]byte("after")); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("snapshot after poison = %v, want ErrPoisoned", err)
	}
	if err := s.Close(); err == nil {
		t.Fatal("close of poisoned store must surface the failure")
	}
}

type failingFile struct{ File }

func (f failingFile) Sync() error { return errors.New("injected: fsync failed") }

func TestStoreEmptyDirectory(t *testing.T) {
	res, err := Load(filepath.Join(t.TempDir(), "never-created"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Snapshot != nil || len(res.Entries) != 0 || res.LastSeq != 0 {
		t.Errorf("empty load = %+v", res)
	}
}

func TestStoreAppendDoesNotAllocate(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Sync = false // measure the framing path, not the kernel
	payload := make([]byte, 256)
	if _, err := s.Append(payload); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := s.Append(payload); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Append allocates %.1f/op, want 0", allocs)
	}
}

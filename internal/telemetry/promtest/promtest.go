// Package promtest is a strict validating parser for the Prometheus text
// exposition format (version 0.0.4), shared by the telemetry package's own
// tests and the daemons' endpoint tests: the acceptance bar for /metrics is
// "valid Prometheus text format, verified by a parser test", so the parser
// refuses anything a real scraper would.
//
// Like net/http/httptest, this package exists only to be imported from
// tests; it takes testing.TB so parse failures read as test failures at the
// offending line.
package promtest

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
	sampleRe     = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})? (\S+)$`)
	labelPairRe  = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$`)
)

// Sample is one parsed series sample.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Parse validates the full document and returns the samples. It enforces:
// HELP/TYPE precede their samples, TYPE is a known kind, sample names match
// their TYPE block (modulo histogram suffixes), no duplicate series,
// histogram buckets are cumulative and agree with _count, and every value
// parses as a float.
func Parse(t testing.TB, r io.Reader) []Sample {
	t.Helper()
	types := map[string]string{}
	seen := map[string]bool{}
	var samples []Sample
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "# HELP ") {
			parts := strings.SplitN(strings.TrimPrefix(text, "# HELP "), " ", 2)
			if len(parts) < 1 || !metricNameRe.MatchString(parts[0]) {
				t.Fatalf("line %d: malformed HELP: %q", line, text)
			}
			continue
		}
		if strings.HasPrefix(text, "# TYPE ") {
			parts := strings.Fields(strings.TrimPrefix(text, "# TYPE "))
			if len(parts) != 2 || !metricNameRe.MatchString(parts[0]) {
				t.Fatalf("line %d: malformed TYPE: %q", line, text)
			}
			switch parts[1] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("line %d: unknown TYPE %q", line, parts[1])
			}
			types[parts[0]] = parts[1]
			continue
		}
		if strings.HasPrefix(text, "#") {
			continue // free-form comment
		}
		m := sampleRe.FindStringSubmatch(text)
		if m == nil {
			t.Fatalf("line %d: malformed sample: %q", line, text)
		}
		name, labelBody, valText := m[1], m[3], m[4]
		labels := map[string]string{}
		if labelBody != "" {
			for _, pair := range splitLabelPairs(t, line, labelBody) {
				lm := labelPairRe.FindStringSubmatch(pair)
				if lm == nil || !labelNameRe.MatchString(lm[1]) {
					t.Fatalf("line %d: malformed label pair %q", line, pair)
				}
				if _, dup := labels[lm[1]]; dup {
					t.Fatalf("line %d: duplicate label %q", line, lm[1])
				}
				labels[lm[1]] = lm[2]
			}
		}
		var v float64
		switch valText {
		case "+Inf", "Inf":
			v = math.Inf(1)
		case "-Inf":
			v = math.Inf(-1)
		case "NaN":
			v = math.NaN()
		default:
			var err error
			v, err = strconv.ParseFloat(valText, 64)
			if err != nil {
				t.Fatalf("line %d: bad value %q: %v", line, valText, err)
			}
		}
		base := histogramBase(name)
		if _, ok := types[name]; !ok {
			if _, ok := types[base]; !ok {
				t.Fatalf("line %d: sample %q has no preceding TYPE", line, name)
			} else if types[base] != "histogram" && types[base] != "summary" {
				t.Fatalf("line %d: suffixed sample %q under non-histogram TYPE %q", line, name, types[base])
			}
		}
		key := m[1] + "{" + labelBody + "}"
		if seen[key] {
			t.Fatalf("line %d: duplicate series %q", line, key)
		}
		seen[key] = true
		samples = append(samples, Sample{Name: name, Labels: labels, Value: v})
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	checkHistogramInvariants(t, types, samples)
	return samples
}

// splitLabelPairs splits k="v",k2="v2" at top-level commas (commas inside
// quoted values don't split).
func splitLabelPairs(t testing.TB, line int, body string) []string {
	t.Helper()
	var out []string
	var cur strings.Builder
	inQuote, escaped := false, false
	for _, c := range body {
		switch {
		case escaped:
			escaped = false
			cur.WriteRune(c)
		case c == '\\' && inQuote:
			escaped = true
			cur.WriteRune(c)
		case c == '"':
			inQuote = !inQuote
			cur.WriteRune(c)
		case c == ',' && !inQuote:
			out = append(out, cur.String())
			cur.Reset()
		default:
			cur.WriteRune(c)
		}
	}
	if inQuote {
		t.Fatalf("line %d: unterminated quote in label body %q", line, body)
	}
	if cur.Len() > 0 {
		out = append(out, cur.String())
	}
	return out
}

func histogramBase(name string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suffix) {
			return strings.TrimSuffix(name, suffix)
		}
	}
	return name
}

// checkHistogramInvariants verifies every histogram's bucket series is
// cumulative, ends in +Inf, and agrees with its _count.
func checkHistogramInvariants(t testing.TB, types map[string]string, samples []Sample) {
	t.Helper()
	for name, typ := range types {
		if typ != "histogram" {
			continue
		}
		// Group buckets by their non-le label signature.
		bucketsBySig := map[string][]Sample{}
		countBySig := map[string]float64{}
		for _, s := range samples {
			sig := LabelSig(s.Labels)
			switch s.Name {
			case name + "_bucket":
				bucketsBySig[sig] = append(bucketsBySig[sig], s)
			case name + "_count":
				countBySig[sig] = s.Value
			}
		}
		for sig, buckets := range bucketsBySig {
			var prev float64
			var last Sample
			for _, b := range buckets { // exposition order is ascending le
				if b.Value < prev {
					t.Errorf("histogram %s%s: bucket counts not cumulative", name, sig)
				}
				prev = b.Value
				last = b
			}
			if last.Labels["le"] != "+Inf" {
				t.Errorf("histogram %s%s: final bucket le=%q, want +Inf", name, sig, last.Labels["le"])
			}
			if c, ok := countBySig[sig]; ok && last.Value != c {
				t.Errorf("histogram %s%s: +Inf bucket %v != count %v", name, sig, last.Value, c)
			}
		}
	}
}

// LabelSig renders the labels minus le, for grouping histogram series and
// building lookup keys.
func LabelSig(labels map[string]string) string {
	var parts []string
	for k, v := range labels {
		if k == "le" {
			continue
		}
		parts = append(parts, fmt.Sprintf("%s=%s", k, v))
	}
	if len(parts) == 0 {
		return ""
	}
	// Deterministic order.
	for i := 0; i < len(parts); i++ {
		for j := i + 1; j < len(parts); j++ {
			if parts[j] < parts[i] {
				parts[i], parts[j] = parts[j], parts[i]
			}
		}
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Scrape fetches url and parses the body as a Prometheus exposition,
// checking the status code and content type on the way.
func Scrape(t testing.TB, url string) []Sample {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	return Parse(t, resp.Body)
}

package sim_test

import (
	"testing"
	"time"

	"insure/internal/baseline"
	"insure/internal/core"
	"insure/internal/genset"
	"insure/internal/sim"
	"insure/internal/trace"
	"insure/internal/units"
)

// TestEnergyConservation checks the plant-wide energy balance over a full
// day: everything the cluster consumed must be accounted for by harvested
// renewable energy plus the net energy drawn from the battery bank (losses
// only ever reduce what is available, never create energy).
func TestEnergyConservation(t *testing.T) {
	if testing.Short() {
		t.Skip("full-day runs")
	}
	mks := map[string]func(n int) sim.Manager{
		"insure":   func(n int) sim.Manager { return mgrAdapter{core.New(core.DefaultConfig(), n)} },
		"baseline": func(n int) sim.Manager { return mgrAdapter{baseline.New(baseline.DefaultConfig())} },
	}
	for name, mk := range mks {
		for _, tr := range []*trace.Trace{trace.FullSystemHigh(), trace.FullSystemLow()} {
			cfg := sim.DefaultConfig(tr)
			sys, err := sim.New(cfg, sim.NewSeismicSink())
			if err != nil {
				t.Fatal(err)
			}
			bankBefore := sys.Bank.StoredEnergy()
			res := sys.Run(mk(cfg.BatteryCount))
			bankAfter := sys.Bank.StoredEnergy()

			bankDelta := (bankBefore - bankAfter).KWh() // positive = net drain
			available := res.HarvestedKWh + bankDelta
			if res.LoadKWh > available+0.05 {
				t.Errorf("%s: load %.2f kWh exceeds harvested %.2f + bank drain %.2f",
					name, res.LoadKWh, res.HarvestedKWh, bankDelta)
			}
			// Harvest accounting must not exceed what the trace offered.
			offered := tr.TotalEnergy().KWh()
			if res.HarvestedKWh > offered+0.05 {
				t.Errorf("%s: harvested %.2f kWh exceeds trace total %.2f", name, res.HarvestedKWh, offered)
			}
			if res.CurtailedKWh < -0.001 {
				t.Errorf("%s: negative curtailment %.3f", name, res.CurtailedKWh)
			}
			if res.HarvestedKWh+res.CurtailedKWh > offered+0.05 {
				t.Errorf("%s: harvested+curtailed %.2f exceeds offered %.2f",
					name, res.HarvestedKWh+res.CurtailedKWh, offered)
			}
		}
	}
}

// mgrAdapter lets the test accept both manager types uniformly.
type mgrAdapter struct{ sim.Manager }

// TestEnergyConservationWithGeneratorAndWind extends the balance to the
// secondary feed and auxiliary renewable source.
func TestEnergyConservationWithGeneratorAndWind(t *testing.T) {
	if testing.Short() {
		t.Skip("full-day run")
	}
	tr := trace.FullSystemLow().Scale(0.4)
	cfg := sim.DefaultConfig(tr)
	cfg.Secondary = newTestGenset()
	cfg.Aux = constAux(120)
	sys, err := sim.New(cfg, sim.NewVideoSink())
	if err != nil {
		t.Fatal(err)
	}
	bankBefore := sys.Bank.StoredEnergy()
	res := sys.Run(mgrAdapter{core.New(core.DefaultConfig(), cfg.BatteryCount)})
	bankDelta := (bankBefore - sys.Bank.StoredEnergy()).KWh()
	available := res.HarvestedKWh + res.GenKWh + bankDelta
	if res.LoadKWh > available+0.05 {
		t.Errorf("load %.2f kWh exceeds all sources %.2f", res.LoadKWh, available)
	}
	if res.AuxKWh <= 0 {
		t.Error("aux source not accounted")
	}
}

// constAux is a fixed-output auxiliary source for conservation tests.
type constAux units.Watt

func (c constAux) Step(tod, dt time.Duration) units.Watt { return units.Watt(c) }

// newTestGenset builds a small diesel for conservation tests without
// importing genset in multiple places.
func newTestGenset() *genset.Generator { return genset.New(genset.DieselParams()) }

package core

import (
	"math"
	"testing"
	"time"

	"insure/internal/journal"
	"insure/internal/sim"
	"insure/internal/telemetry"
	"insure/internal/trace"
)

// tickRange drives sys with mgr from start (inclusive) to end (exclusive).
func tickRange(sys *sim.System, mgr sim.Manager, start, end, step time.Duration) {
	for tod := start; tod < end; tod += step {
		sys.Tick(tod, mgr)
	}
}

// TestManagerStateRoundTripContinuation is the property test at the heart
// of crash recovery: capture State() mid-run, Restore() into a fresh
// manager, run both managers N more ticks on identical plants — the two
// control planes must stay byte-identical the whole way.
func TestManagerStateRoundTripContinuation(t *testing.T) {
	mk := func() (*sim.System, *Manager) {
		cfg := sim.DefaultConfig(trace.FullSystemHigh())
		cfg.RecordEvery = time.Minute
		sys, err := sim.New(cfg, sim.NewSeismicSink())
		if err != nil {
			t.Fatal(err)
		}
		return sys, New(DefaultConfig(), cfg.BatteryCount)
	}
	sysA, mA := mk()
	sysB, mB := mk()
	start, _ := sysA.Span()
	step := time.Second
	mid := start + 3*time.Hour

	// Drive both identical worlds to the capture point (determinism gives
	// identical manager state), then replace B's manager with a fresh one
	// rebuilt purely from A's serialized state.
	tickRange(sysA, mA, start, mid, step)
	tickRange(sysB, mB, start, mid, step)

	mC := New(DefaultConfig(), 6)
	if err := mC.Restore(mA.State()); err != nil {
		t.Fatal(err)
	}
	if string(mC.State()) != string(mA.State()) {
		t.Fatal("State→Restore→State not byte-identical at capture point")
	}

	// Continue: A with the original manager, B with the restored clone.
	for h := 0; h < 4; h++ {
		from := mid + time.Duration(h)*time.Hour
		to := from + time.Hour
		tickRange(sysA, mA, from, to, step)
		tickRange(sysB, mC, from, to, step)
		if string(mA.State()) != string(mC.State()) {
			t.Fatalf("restored manager diverged from original %v into the continuation", to-mid)
		}
	}
	// The plants saw identical control decisions throughout.
	if sysA.Brownouts() != sysB.Brownouts() {
		t.Errorf("brownouts diverged: %d vs %d", sysA.Brownouts(), sysB.Brownouts())
	}
}

// TestManagerRestoreRejectsWrongFleet locks the unit-count guard.
func TestManagerRestoreRejectsWrongFleet(t *testing.T) {
	m := New(DefaultConfig(), 6)
	other := New(DefaultConfig(), 4)
	if err := other.Restore(m.State()); err == nil {
		t.Fatal("restore accepted a 6-unit state into a 4-unit manager")
	}
	if err := m.Restore([]byte{0xFF, 0x00}); err == nil {
		t.Fatal("restore accepted garbage bytes")
	}
}

// killResumeRun runs a full day with journaling, hard-stopping the control
// plane at killAt and recovering it from dir. tornBytes > 0 additionally
// truncates that many bytes off the journal tail before recovery,
// simulating a crash mid-write.
// snapshotEvery overrides the wrapper's snapshot cadence when > 0; the
// torn-tail test disables rotation so the tail record is guaranteed to be
// an appended delta rather than a just-rotated snapshot.
func killResumeRun(t *testing.T, dir string, killAt time.Duration, tornBytes int64, snapshotEvery int) (sim.Result, *sim.System, *Manager, *telemetry.Registry) {
	t.Helper()
	cfg := sim.DefaultConfig(trace.FullSystemHigh())
	cfg.RecordEvery = time.Minute
	sys, err := sim.New(cfg, sim.NewSeismicSink())
	if err != nil {
		t.Fatal(err)
	}
	store, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	jm := NewJournaled(New(DefaultConfig(), cfg.BatteryCount), store)
	if snapshotEvery > 0 {
		jm.SnapshotEvery = snapshotEvery
	}
	start, end := sys.Span()
	step := time.Second

	tickRange(sys, jm, start, killAt, step)
	// Hard stop: the controller process dies. Only what the journal holds
	// survives; the plant (sys) is physical and keeps its state.
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	if tornBytes > 0 {
		if err := journal.TruncateTail(dir, tornBytes); err != nil {
			t.Fatal(err)
		}
	}

	m2, store2, err := Recover(DefaultConfig(), cfg.BatteryCount, dir)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Recoveries() != 1 {
		t.Fatalf("recoveries = %d, want 1", m2.Recoveries())
	}
	reg := telemetry.NewRegistry()
	m2.AttachTelemetry(reg)
	m2.Reconcile(sys, killAt)
	jm2 := NewJournaled(m2, store2)
	tickRange(sys, jm2, killAt, end, step)
	if err := jm2.Err(); err != nil {
		t.Fatalf("journal commit error after resume: %v", err)
	}
	res := sys.Finish(jm2)
	store2.Close()
	return res, sys, m2, reg
}

// referenceRun is the uninterrupted twin of killResumeRun.
func referenceRun(t *testing.T, dir string) (sim.Result, *sim.System) {
	t.Helper()
	cfg := sim.DefaultConfig(trace.FullSystemHigh())
	cfg.RecordEvery = time.Minute
	sys, err := sim.New(cfg, sim.NewSeismicSink())
	if err != nil {
		t.Fatal(err)
	}
	store, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	jm := NewJournaled(New(DefaultConfig(), cfg.BatteryCount), store)
	res := sys.Run(jm)
	if err := jm.Err(); err != nil {
		t.Fatalf("journal commit error: %v", err)
	}
	return res, sys
}

// TestKillResumeCleanIsBitIdentical: a controller killed right after a
// committed control pass and recovered from the journal continues the day
// exactly as if it had never died — frame-for-frame.
func TestKillResumeCleanIsBitIdentical(t *testing.T) {
	refRes, refSys := referenceRun(t, t.TempDir())
	// Kill at noon, on a control-period boundary + 1s so the last pass's
	// commit is durable and no pass is lost.
	killAt := 12*time.Hour + time.Second
	res, sys, m2, reg := killResumeRun(t, t.TempDir(), killAt, 0, 0)

	refFrames := refSys.Recorder().Frames()
	frames := sys.Recorder().Frames()
	if len(refFrames) != len(frames) {
		t.Fatalf("frame counts differ: %d vs %d", len(refFrames), len(frames))
	}
	for i := range frames {
		a, b := refFrames[i], frames[i]
		if a.At != b.At || a.StoredWh != b.StoredWh || a.RunningVM != b.RunningVM {
			t.Fatalf("frame %d (t=%v) diverged after clean kill/resume", i, b.At)
		}
		for u := range a.SoCs {
			if a.SoCs[u] != b.SoCs[u] || a.Modes[u] != b.Modes[u] {
				t.Fatalf("frame %d unit %d diverged: SoC %v vs %v, mode %v vs %v",
					i, u, a.SoCs[u], b.SoCs[u], a.Modes[u], b.Modes[u])
			}
		}
	}
	if res.Brownouts != refRes.Brownouts {
		t.Errorf("recovery induced brownouts: %d vs reference %d", res.Brownouts, refRes.Brownouts)
	}
	if res.ProcessedGB != refRes.ProcessedGB {
		t.Errorf("throughput diverged: %.3f vs %.3f GB", res.ProcessedGB, refRes.ProcessedGB)
	}
	// A clean kill needs no reconciliation, but the recovery itself is
	// visible in telemetry.
	if m2.Reconciliations() != 0 {
		t.Errorf("clean kill reconciled %d pairs, want 0", m2.Reconciliations())
	}
	snap := reg.Snapshot()
	if got := snap.Counters["insure_recoveries_total"]; got != 1 {
		t.Errorf("insure_recoveries_total = %d, want 1", got)
	}
}

// TestKillResumeTornTailConverges: when the crash tears the final journal
// record, recovery restores a one-pass-stale intent, reconciliation
// re-drives the plant, and the trajectory reconverges — without any
// recovery-induced brownout.
func TestKillResumeTornTailConverges(t *testing.T) {
	refRes, refSys := referenceRun(t, t.TempDir())
	// Kill mid-afternoon, one second after a control pass, then tear half
	// of the tail record so recovery lands one pass behind the plant.
	killAt := 14*time.Hour + time.Second
	res, sys, m2, reg := killResumeRun(t, t.TempDir(), killAt, 40, 1<<30)

	if res.Brownouts > refRes.Brownouts {
		t.Errorf("recovery induced brownouts: %d vs reference %d", res.Brownouts, refRes.Brownouts)
	}
	// Trajectory convergence: by end of day the stored energy and SoC
	// profile must be back within a tight band of the uninterrupted run.
	refEnd := refSys.Bank.MeanSoC()
	end := sys.Bank.MeanSoC()
	if math.Abs(refEnd-end) > 0.02 {
		t.Errorf("end-of-day mean SoC diverged: %.4f vs %.4f", end, refEnd)
	}
	if math.Abs(res.UptimeFrac-refRes.UptimeFrac) > 0.01 {
		t.Errorf("uptime diverged: %.4f vs %.4f", res.UptimeFrac, refRes.UptimeFrac)
	}
	// Every re-driven pair is visible in telemetry; the counts agree.
	snap := reg.Snapshot()
	if got := snap.Counters["insure_recovery_reconciliations_total"]; got != int64(m2.Reconciliations()) {
		t.Errorf("telemetry reconciliations = %d, manager says %d", got, m2.Reconciliations())
	}
	if got := snap.Counters["insure_recoveries_total"]; got != 1 {
		t.Errorf("insure_recoveries_total = %d, want 1", got)
	}
}

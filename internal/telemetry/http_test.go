package telemetry

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"insure/internal/telemetry/promtest"
)

// TestMetricsEndpoint serves a populated registry over HTTP and runs the
// scrape through the strict format parser — the /metrics acceptance test.
func TestMetricsEndpoint(t *testing.T) {
	r := NewRegistry()
	r.SetClock(12 * time.Hour)
	for i := 0; i < 3; i++ {
		r.Gauge("insure_battery_soc", "Per-unit state of charge.",
			Label{"unit", fmt.Sprint(i)}).Set(0.5 + float64(i)*0.1)
	}
	r.Counter("insure_brownouts_total", "Brownouts.").Inc()
	h := r.Histogram("insure_plc_scan_seconds", "Scan durations.", DefTimeBuckets)
	for i := 0; i < 10; i++ {
		h.Observe(float64(i) * 1e-3)
	}
	addr, stop, err := r.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	samples := promtest.Scrape(t, "http://"+addr.String()+"/metrics")
	found := map[string]float64{}
	for _, s := range samples {
		found[s.Name+promtest.LabelSig(s.Labels)] = s.Value
	}
	if found["insure_sim_clock_seconds"] != (12 * time.Hour).Seconds() {
		t.Errorf("sim clock = %v", found["insure_sim_clock_seconds"])
	}
	if found["insure_battery_soc{unit=2}"] != 0.7 {
		t.Errorf("soc gauge missing or wrong: %v", found)
	}
	if found["insure_brownouts_total"] != 1 {
		t.Errorf("brownout counter = %v", found["insure_brownouts_total"])
	}
	if found["insure_plc_scan_seconds_count"] != 10 {
		t.Errorf("scan histogram count = %v", found["insure_plc_scan_seconds_count"])
	}
}

func TestHealthzEndpoint(t *testing.T) {
	r := NewRegistry()
	degraded := false
	r.AddHealthCheck("faultwatch", func() error {
		if degraded {
			return errors.New("2 units quarantined")
		}
		return nil
	})
	addr, stop, err := r.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	url := "http://" + addr.String() + "/healthz"

	get := func() (int, map[string]any) {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}

	code, body := get()
	if code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthy: code=%d body=%v", code, body)
	}
	degraded = true
	code, body = get()
	if code != http.StatusServiceUnavailable || body["status"] != "degraded" {
		t.Fatalf("degraded: code=%d body=%v", code, body)
	}
	checks := body["checks"].(map[string]any)
	if !strings.Contains(checks["faultwatch"].(string), "quarantined") {
		t.Errorf("checks = %v", checks)
	}
}

func TestDebugMuxServesPprof(t *testing.T) {
	addr, stop, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	resp, err := http.Get("http://" + addr.String() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index: %s", resp.Status)
	}
}

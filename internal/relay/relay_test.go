package relay

import (
	"testing"
	"time"
)

func TestRelaySetCounting(t *testing.T) {
	r := New("test")
	if r.Closed() {
		t.Fatal("new relay should be open")
	}
	r.Set(true)
	r.Set(true) // no-op
	r.Tick(SwitchTime)
	r.Set(false)
	if got := r.Cycles(); got != 2 {
		t.Errorf("cycles = %d, want 2", got)
	}
}

func TestRelaySettling(t *testing.T) {
	r := New("test")
	r.Set(true)
	if r.Settled() {
		t.Error("relay settled instantly")
	}
	r.Tick(SwitchTime)
	if !r.Settled() {
		t.Error("relay not settled after switch time")
	}
}

func TestRelayWearFraction(t *testing.T) {
	r := New("test")
	for i := 0; i < 100; i++ {
		r.Set(i%2 == 0)
	}
	if w := r.WearFraction(); w <= 0 || w >= 1e-3 {
		t.Errorf("wear fraction = %v", w)
	}
}

func TestPairInterlock(t *testing.T) {
	p := NewPair(0)
	p.SetMode(Charging)
	if p.Mode() != Charging {
		t.Fatalf("mode = %v, want charging", p.Mode())
	}
	p.SetMode(Discharging)
	if p.Charge.Closed() {
		t.Error("charge relay still closed while discharging")
	}
	if p.Mode() != Discharging {
		t.Errorf("mode = %v, want discharging", p.Mode())
	}
	p.SetMode(Open)
	if p.Charge.Closed() || p.Discharge.Closed() {
		t.Error("open mode left a relay closed")
	}
}

func TestPairDoubleClosedFailsSafe(t *testing.T) {
	p := NewPair(0)
	p.Charge.Set(true)
	p.Discharge.Set(true) // fault injection: wedged fabric
	if p.Mode() != Open {
		t.Errorf("double-closed pair reported %v, want fail-safe open", p.Mode())
	}
}

func TestFabricTopology(t *testing.T) {
	f := NewFabric(6)
	if !f.Parallel() {
		t.Fatal("new fabric should start parallel")
	}
	f.SetSeries()
	if f.Parallel() {
		t.Error("series topology reported parallel")
	}
	if !f.P2.Closed() || f.P1.Closed() || f.P3.Closed() {
		t.Error("series relay states wrong")
	}
	f.SetParallel()
	if !f.Parallel() {
		t.Error("parallel restore failed")
	}
}

func TestFabricUnitsIn(t *testing.T) {
	f := NewFabric(4)
	f.Pair(0).SetMode(Charging)
	f.Pair(2).SetMode(Discharging)
	f.Pair(3).SetMode(Discharging)
	if got := f.UnitsIn(Charging); len(got) != 1 || got[0] != 0 {
		t.Errorf("charging units = %v", got)
	}
	if got := f.UnitsIn(Discharging); len(got) != 2 {
		t.Errorf("discharging units = %v", got)
	}
	if got := f.UnitsIn(Open); len(got) != 1 || got[0] != 1 {
		t.Errorf("open units = %v", got)
	}
}

func TestFabricCycleAccounting(t *testing.T) {
	f := NewFabric(3)
	base := f.TotalCycles() // topology setup cycles
	f.Pair(0).SetMode(Charging)
	f.Tick(time.Second) // settle before the next command
	f.Pair(0).SetMode(Open)
	if got := f.TotalCycles() - base; got != 2 {
		t.Errorf("cycles delta = %d, want 2", got)
	}
}

func TestFabricTick(t *testing.T) {
	f := NewFabric(2)
	f.Pair(1).SetMode(Discharging)
	f.Tick(time.Second)
	if !f.Pair(1).Discharge.Settled() {
		t.Error("relay did not settle after tick")
	}
}

func TestTickClampsPendingAtZero(t *testing.T) {
	r := New("test")
	r.Set(true)
	r.Tick(time.Second) // far past the 25 ms switch time
	if !r.Settled() {
		t.Fatal("relay not settled after a full second")
	}
	if got := r.SettleRemaining(); got != 0 {
		t.Errorf("pending drifted to %v after overshoot tick, want exactly 0", got)
	}
	// Repeated ticks must not accumulate negative balance either.
	r.Tick(time.Second)
	r.Tick(time.Second)
	if got := r.SettleRemaining(); got != 0 {
		t.Errorf("pending = %v after repeated ticks, want 0", got)
	}
}

func TestAbortedSwitchCountsTowardWear(t *testing.T) {
	r := New("test")
	r.Set(true)
	r.Tick(10 * time.Millisecond) // still in flight (25 ms switch time)
	r.Set(false)                  // reverses mid-travel: aborts the transition
	if got := r.Aborted(); got != 1 {
		t.Errorf("aborted = %d, want 1", got)
	}
	// The aborted transition consumed a mechanical cycle on top of the two
	// commanded ones.
	if got := r.Cycles(); got != 3 {
		t.Errorf("cycles = %d, want 3 (two commands + one abort)", got)
	}
	// A settled switch followed by a reversal is not an abort.
	r.Tick(SwitchTime)
	r.Set(true)
	if got := r.Aborted(); got != 1 {
		t.Errorf("settled reversal counted as abort: %d", got)
	}
}

func TestRelayFailWeldClosed(t *testing.T) {
	r := New("test")
	r.Set(true)
	r.Tick(SwitchTime)
	r.Fail(FailWeldClosed)
	if !r.Failed() || r.FailState() != FailWeldClosed {
		t.Fatal("fault not recorded")
	}
	r.Set(false)
	if !r.Closed() {
		t.Error("welded contact opened on command")
	}
	r.Fail(FailNone)
	r.Set(false)
	if r.Closed() {
		t.Error("repaired relay ignored open command")
	}
}

func TestRelayFailStuckOpen(t *testing.T) {
	r := New("test")
	r.Fail(FailStuckOpen)
	r.Set(true)
	if r.Closed() {
		t.Error("stuck armature closed on command")
	}
	if !r.Settled() {
		t.Error("stuck-open relay should not report an in-flight switch")
	}
	if FailWeldClosed.String() == "" || FailStuckOpen.String() == "" || FailNone.String() != "none" {
		t.Error("fail mode names wrong")
	}
}

func TestPairFailed(t *testing.T) {
	p := NewPair(0)
	if p.Failed() {
		t.Fatal("healthy pair reports failed")
	}
	p.Discharge.Fail(FailStuckOpen)
	if !p.Failed() {
		t.Error("pair with a faulted relay reports healthy")
	}
}

func TestModeString(t *testing.T) {
	if Open.String() != "open" || Charging.String() != "charging" || Discharging.String() != "discharging" {
		t.Error("mode names wrong")
	}
	if Mode(42).String() == "" {
		t.Error("unknown mode should format")
	}
}

package relay

import (
	"testing"
	"time"

	"insure/internal/journal"
)

// TestWeldedDischargeBlocksChargeClose locks in the interlock hardening:
// commanding Charging while the discharge contact is welded closed must
// NOT close the charge contact — the unit would bridge the charge and
// discharge buses and backfeed the PV string.
func TestWeldedDischargeBlocksChargeClose(t *testing.T) {
	p := NewPair(0)
	p.SetMode(Discharging)
	p.Tick(SwitchTime)
	p.Discharge.Fail(FailWeldClosed)

	p.SetMode(Charging)
	if p.Charge.Closed() {
		t.Fatal("charge contact closed while welded discharge contact is still closed")
	}
	if !p.Discharge.Closed() {
		t.Fatal("welded discharge contact should report closed")
	}
	// Mirror case: welded charge contact blocks the discharge close.
	q := NewPair(1)
	q.SetMode(Charging)
	q.Tick(SwitchTime)
	q.Charge.Fail(FailWeldClosed)
	q.SetMode(Discharging)
	if q.Discharge.Closed() {
		t.Fatal("discharge contact closed while welded charge contact is still closed")
	}
}

// exercise drives the fabric through a deterministic mode schedule so the
// round-trip tests have non-trivial wear counters and in-flight settles.
func exercise(f *Fabric, steps int) {
	modes := []Mode{Charging, Open, Discharging, Open}
	for s := 0; s < steps; s++ {
		for i := 0; i < f.Size(); i++ {
			f.Pair(i).SetMode(modes[(s+i)%len(modes)])
		}
		if s%3 == 0 {
			f.SetSeries()
		} else {
			f.SetParallel()
		}
		// Odd tick size: some switches stay in flight across captures.
		f.Tick(10 * time.Millisecond)
	}
}

// TestFabricStateRoundTrip proves capture → restore → continue is
// byte-identical to never having stopped, including mid-settle switches
// and injected faults.
func TestFabricStateRoundTrip(t *testing.T) {
	live := NewFabric(4)
	exercise(live, 7)
	live.Pair(2).Discharge.Fail(FailWeldClosed)
	live.Pair(3).Charge.Fail(FailStuckOpen)

	var e journal.Encoder
	live.AppendState(&e)

	restored := NewFabric(4)
	d := journal.NewDecoder(e.Bytes())
	if err := restored.RestoreState(d); err != nil {
		t.Fatal(err)
	}
	if d.Remaining() != 0 {
		t.Fatalf("%d bytes left after restore", d.Remaining())
	}

	// Continue both fabrics through the same schedule; their serialized
	// states must stay byte-identical at every step.
	for s := 0; s < 12; s++ {
		exercise(live, 1)
		exercise(restored, 1)
		var a, b journal.Encoder
		live.AppendState(&a)
		restored.AppendState(&b)
		if string(a.Bytes()) != string(b.Bytes()) {
			t.Fatalf("step %d: restored fabric diverged from live fabric", s)
		}
	}
	if live.Pair(2).Discharge.FailState() != FailWeldClosed {
		t.Error("weld fault lost in round trip")
	}
}

// TestFabricRestoreSizeMismatch proves a state blob for the wrong fleet
// size is rejected both via the struct and the codec path.
func TestFabricRestoreSizeMismatch(t *testing.T) {
	small := NewFabric(2)
	big := NewFabric(5)
	if err := big.Restore(small.State()); err == nil {
		t.Error("struct restore accepted wrong pair count")
	}
	var e journal.Encoder
	small.AppendState(&e)
	if err := big.RestoreState(journal.NewDecoder(e.Bytes())); err == nil {
		t.Error("codec restore accepted wrong pair count")
	}
}

// TestRelayStateRoundTripMidSettle captures a relay mid-switch and checks
// the settle completes after restore exactly as it would have live.
func TestRelayStateRoundTripMidSettle(t *testing.T) {
	r := New("bat0-CR")
	r.Set(true)
	r.Tick(10 * time.Millisecond) // 15 ms of settle left

	clone := New("bat0-CR")
	clone.Restore(r.State())
	if clone.Settled() {
		t.Fatal("restored relay lost its in-flight switch")
	}
	var settled time.Duration
	clone.OnSettle = func(w time.Duration) { settled = w }
	clone.Tick(15 * time.Millisecond)
	if !clone.Settled() || settled != 25*time.Millisecond {
		t.Fatalf("restored relay settled=%v waited=%v, want settle after 25ms total",
			clone.Settled(), settled)
	}
}

// Package blink implements a Blink-style power manager (Sharma et al.,
// ASPLOS 2011 — reference [88] of the paper): servers track the intermittent
// power budget directly by fast duty-cycle modulation, with the battery as a
// small unified ride-through buffer.
//
// The paper positions Blink as prior art that "mainly focuses on internet
// workloads and lacks the ability to optimize energy flow efficiency" —
// this implementation exists to make that comparison concrete: Blink keeps
// the whole cluster powered and blinks it against the supply, which wastes
// the idle-power floor under weak budgets and ignores battery health
// entirely.
package blink

import (
	"time"

	"insure/internal/relay"
	"insure/internal/sim"
	"insure/internal/units"
)

// Config tunes the manager.
type Config struct {
	// Period is the control interval. Blink's defining feature is a fast
	// loop (its namesake blinking interval).
	Period time.Duration
	// MinDuty bounds the blinking duty cycle.
	MinDuty float64
}

// DefaultConfig matches the published system's behaviour at our control
// granularity.
func DefaultConfig() Config {
	return Config{Period: 10 * time.Second, MinDuty: 0.1}
}

// Manager blinks the full cluster against the instantaneous budget.
type Manager struct {
	cfg     Config
	started bool
	duty    float64

	seenBrownouts int
	holdDownUntil time.Duration
	lastNow       time.Duration
}

var _ sim.Manager = (*Manager)(nil)

// New returns a Blink-style manager.
func New(cfg Config) *Manager { return &Manager{cfg: cfg, duty: 1} }

// Name implements sim.Manager.
func (m *Manager) Name() string { return "blink" }

// Period implements sim.Manager.
func (m *Manager) Period() time.Duration { return m.cfg.Period }

// estFullPower is the cluster draw at full width and the given duty.
func estFullPower(sys *sim.System, duty float64) units.Watt {
	prof := sys.Config().ServerProfile
	span := float64(prof.PeakPower-prof.IdlePower) * sys.Sink.Spec().Util * duty
	perNode := float64(prof.IdlePower) + span
	return units.Watt(perNode * float64(sys.Config().ServerCount))
}

// Control implements sim.Manager.
func (m *Manager) Control(sys *sim.System, now time.Duration) {
	m.started = true
	if now < m.lastNow {
		m.holdDownUntil = 0
	}
	m.lastNow = now
	if b := sys.Brownouts(); b < m.seenBrownouts {
		m.seenBrownouts = b
	} else if b > m.seenBrownouts {
		m.seenBrownouts = b
		m.holdDownUntil = now + 10*time.Minute
	}

	maxVMs := sys.Config().ServerProfile.VMSlots * sys.Config().ServerCount
	serving := sys.InWindow(now) && sys.Sink.HasWork(now) && now >= m.holdDownUntil

	if !serving {
		if sys.Cluster.TargetVMs() != 0 {
			sys.Cluster.Shutdown()
		}
	} else {
		if sys.Cluster.TargetVMs() != maxVMs {
			sys.Cluster.SetTargetVMs(maxVMs)
		}
		// Blink: modulate the whole cluster's duty so demand tracks the
		// budget. The idle floor cannot be blinked away — exactly the
		// weakness the paper calls out.
		budget := sys.SolarNow()
		duty := 1.0
		for d := 1.0; d >= m.cfg.MinDuty; d -= 0.05 {
			duty = d
			if estFullPower(sys, d) <= budget {
				break
			}
		}
		if duty != m.duty {
			m.duty = duty
			sys.Cluster.SetDuty(duty)
		}
	}

	// Unified ride-through buffer: all units discharge under deficit,
	// otherwise all charge. No health management.
	deficit := sys.Cluster.Power() > sys.SolarNow()
	for i := 0; i < sys.Bank.Size(); i++ {
		if deficit {
			sys.SetUnitMode(i, relay.Discharging)
		} else {
			sys.SetUnitMode(i, relay.Charging)
		}
	}
	sys.PLC.ScanNow()
}

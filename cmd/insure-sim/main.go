// Command insure-sim runs one simulated day of the InSURE prototype and
// prints the operating report — optionally for both power managers side by
// side, and optionally dumping the solar trace or the recorder series as
// CSV.
//
// Usage:
//
//	insure-sim -weather sunny -workload seismic -policy insure
//	insure-sim -weather rainy -workload video -compare
//	insure-sim -peak 1000 -dump-trace solar.csv
//	insure-sim -weather rainy -workload video -survival -genset
//	insure-sim -storm-days 3 -survival -genset
//	insure-sim -fleet 3 -storm-days 3 -storm-site 0 -migrate
package main

import (
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"insure/internal/baseline"
	"insure/internal/chaos"
	"insure/internal/core"
	"insure/internal/faults"
	"insure/internal/genset"
	"insure/internal/journal"
	"insure/internal/sim"
	"insure/internal/solar"
	"insure/internal/telemetry"
	"insure/internal/trace"
	"insure/internal/units"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("insure-sim: ")

	weather := flag.String("weather", "sunny", "sky model: sunny, cloudy, rainy")
	wl := flag.String("workload", "seismic", "workload: seismic, video")
	policy := flag.String("policy", "insure", "power manager: insure, baseline")
	compare := flag.Bool("compare", false, "run both managers on the identical trace")
	parallel := flag.Bool("parallel", true, "run -compare's two managers concurrently (results are identical to serial)")
	seed := flag.Int64("seed", 2015, "trace seed")
	peak := flag.Float64("peak", 0, "scale trace to this peak power (W); 0 = natural")
	energy := flag.Float64("energy", 0, "scale trace to this total energy (kWh); 0 = natural")
	batteries := flag.Int("batteries", 6, "battery units in the e-Buffer")
	servers := flag.Int("servers", 4, "server nodes in the cluster")
	dumpTrace := flag.String("dump-trace", "", "write the solar trace CSV to this path and exit")
	fromTrace := flag.String("trace", "", "replay a recorded solar trace CSV instead of synthesising one")
	dumpFrames := flag.String("dump-frames", "", "write the recorder series CSV to this path")
	dumpLog := flag.String("dump-log", "", "write the operational event log to this path")
	faultSpec := flag.String("faults", "", "inject faults: comma-separated kind[:unit]@time[:magnitude] events, e.g. bat:2@12h30m:0.6,relay-open:4@13h (kinds: stick, drift, relay-open, relay-weld, bat)")
	telemetryAddr := flag.String("telemetry-addr", "", "serve live /metrics and /healthz on this address during the run (single-policy runs only)")
	dumpTelemetry := flag.String("dump-telemetry", "", "write the end-of-run telemetry snapshot JSON to this path")
	stateDir := flag.String("state-dir", "", "journal the control-plane state to this directory (insure policy only); enables crash recovery")
	killSpec := flag.String("kill-at", "", "comma-separated sim times (e.g. 12h,15h30m) at which to hard-kill the controller and recover it from -state-dir")
	tornKill := flag.Bool("torn-kill", false, "tear the journal tail at each -kill-at point, simulating a crash mid-commit")
	survival := flag.Bool("survival", false, "arm the energy-emergency survivability ladder (insure policy only)")
	gensetFit := flag.Bool("genset", false, "fit a diesel backup generator for last-resort dispatch")
	stormDays := flag.Int("storm-days", 0, "run an N-day chaos storm campaign instead of a single day and print its report")
	fleetSize := flag.Int("fleet", 0, "federate N sites under one coordinator and park the storm over -storm-site (requires N >= 2)")
	stormSite := flag.Int("storm-site", 0, "fleet site index the storm sits over")
	migrate := flag.Bool("migrate", false, "arm surplus-driven job migration and checkpoint shipping across the fleet (implies per-site survival ladders)")
	fleetLog := flag.String("fleet-log", "", "journal the coordinator's migration log to this directory")
	flag.Parse()

	// Validate flag combinations before doing any work: the three run
	// shapes (single day, storm campaign, federated fleet) each consume a
	// different flag subset, and a flag the chosen shape ignores is a user
	// error worth naming, not something to drop silently.
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if *fleetSize == 0 {
		delete(set, "fleet") // explicit -fleet 0 means "no fleet"
	}
	if *stormDays == 0 {
		delete(set, "storm-days")
	}
	if err := validateFlags(set); err != nil {
		log.Fatal(err)
	}

	faultPlan, ferr := faults.Parse(*faultSpec)
	if ferr != nil {
		log.Fatal(ferr)
	}
	if *telemetryAddr != "" && *compare {
		log.Fatal("-telemetry-addr serves one registry; use it without -compare")
	}
	kills, kerr := parseKills(*killSpec)
	if kerr != nil {
		log.Fatal(kerr)
	}
	if len(kills) > 0 && *stateDir == "" {
		log.Fatal("-kill-at requires -state-dir: recovery needs the journal")
	}
	if *stateDir != "" && (*compare || *policy != "insure") {
		log.Fatal("-state-dir journals the insure control plane; use -policy insure without -compare")
	}
	if *survival && (*compare || *policy != "insure") {
		log.Fatal("-survival arms the insure control plane; use -policy insure without -compare")
	}

	if *fleetSize > 0 {
		days := *stormDays
		if days == 0 {
			days = 1
		}
		fcfg := chaos.DefaultSiteLossConfig(*seed)
		fcfg.Days = days
		fcfg.Sites = *fleetSize
		fcfg.StormSite = *stormSite
		fcfg.Batteries = *batteries
		fcfg.Servers = *servers
		fcfg.Migration = *migrate
		fcfg.LogDir = *fleetLog
		rep, err := chaos.RunSiteLoss(fcfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(rep)
		return
	}

	if *stormDays > 0 {
		scfg := chaos.DefaultStormConfig(*seed)
		scfg.Days = *stormDays
		scfg.Batteries = *batteries
		scfg.Servers = *servers
		scfg.Survival = *survival
		scfg.Genset = *gensetFit
		rep, err := chaos.RunStorm(scfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(rep)
		return
	}

	cond := solar.Sunny
	switch *weather {
	case "sunny":
	case "cloudy":
		cond = solar.Cloudy
	case "rainy":
		cond = solar.Rainy
	default:
		log.Fatalf("unknown weather %q", *weather)
	}
	var tr *trace.Trace
	if *fromTrace != "" {
		f, err := os.Open(*fromTrace)
		if err != nil {
			log.Fatal(err)
		}
		tr, err = trace.ReadCSV(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	} else {
		tr = trace.Synthesize(cond, *seed, time.Second)
	}
	if *peak > 0 {
		tr = tr.ScaleToPeak(units.Watt(*peak))
	} else if *energy > 0 {
		tr = tr.ScaleToEnergy(units.KiloWattHour(*energy))
	}

	if *dumpTrace != "" {
		f, err := os.Create(*dumpTrace)
		if err != nil {
			log.Fatal(err)
		}
		if err := tr.WriteCSV(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d samples (avg %v, %.1f kWh) to %s\n",
			tr.Len(), tr.Average(), tr.TotalEnergy().KWh(), *dumpTrace)
		return
	}

	mkSink := func() sim.Sink {
		switch *wl {
		case "seismic":
			return sim.NewSeismicSink()
		case "video":
			return sim.NewVideoSink()
		default:
			log.Fatalf("unknown workload %q", *wl)
			return nil
		}
	}
	// setup builds one fully-wired run; the returned System and Manager are
	// also recorded in *out/*outMgr so the dump flags and the fault report
	// can read them afterwards.
	// The Systems deliberately escape the campaign cells (dump/report read
	// them afterwards), so these runs are NOT Transient and ignore the
	// worker arena.
	setup := func(name string, out **sim.System, outMgr *sim.Manager, outReg **telemetry.Registry) func(*sim.Arena) (*sim.System, sim.Manager, error) {
		return func(*sim.Arena) (*sim.System, sim.Manager, error) {
			cfg := sim.DefaultConfig(tr)
			cfg.BatteryCount = *batteries
			cfg.ServerCount = *servers
			if *gensetFit {
				cfg.Secondary = genset.New(genset.DieselParams())
			}
			sys, err := sim.New(cfg, mkSink())
			if err != nil {
				return nil, nil, err
			}
			*out = sys
			if len(faultPlan) > 0 {
				in := faults.NewInjector(faultPlan, faults.Target{
					Bank:   sys.Bank,
					Fabric: sys.Fabric,
					Probes: sys.Probes,
				})
				sys.SetTickHook(func(tod time.Duration) { in.Tick(tod) })
			}
			var mgr sim.Manager = core.New(mgrConfig(*survival), cfg.BatteryCount)
			if name == "baseline" {
				mgr = baseline.New(baseline.DefaultConfig())
			}
			*outMgr = mgr
			if *telemetryAddr != "" || *dumpTelemetry != "" {
				reg := telemetry.NewRegistry()
				sys.AttachTelemetry(reg)
				if c, ok := mgr.(*core.Manager); ok {
					c.AttachTelemetry(reg)
				}
				*outReg = reg
			}
			return sys, mgr, nil
		}
	}
	dump := func(name string, sys *sim.System, reg *telemetry.Registry) {
		if *dumpFrames != "" {
			path := *dumpFrames
			if *compare {
				path = name + "-" + path
			}
			if err := writeFrames(path, sys); err != nil {
				log.Fatal(err)
			}
		}
		if *dumpLog != "" {
			path := *dumpLog
			if *compare {
				path = name + "-" + path
			}
			// Durable write: the log is the forensic record, so it is
			// fsynced before close and close errors are fatal.
			if err := sys.Log.WriteTextFile(path); err != nil {
				log.Fatal(err)
			}
		}
		if *dumpTelemetry != "" && reg != nil {
			path := *dumpTelemetry
			if *compare {
				path = name + "-" + path
			}
			f, err := os.Create(path)
			if err != nil {
				log.Fatal(err)
			}
			if err := reg.WriteJSON(f); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}
	}
	run := func(name string) (sim.Result, sim.Manager) {
		var sys *sim.System
		var mgr sim.Manager
		var reg *telemetry.Registry
		s, m, err := setup(name, &sys, &mgr, &reg)(nil)
		if err != nil {
			log.Fatal(err)
		}
		if reg != nil && *telemetryAddr != "" {
			taddr, stop, err := reg.Serve(*telemetryAddr)
			if err != nil {
				log.Fatal(err)
			}
			defer stop()
			fmt.Printf("telemetry on http://%s/metrics and /healthz\n", taddr)
		}
		var res sim.Result
		if *stateDir != "" {
			res, m = runJournaled(s, m.(*core.Manager), mgrConfig(*survival), reg, kills, *stateDir, *tornKill)
		} else {
			res = s.Run(m)
		}
		dump(name, sys, reg)
		return res, m
	}

	report := func(r sim.Result, mgr sim.Manager) {
		fmt.Printf("%-10s %s day, %s workload\n", r.Manager, *weather, r.Workload)
		fmt.Printf("  uptime           %.1f%%\n", r.UptimeFrac*100)
		fmt.Printf("  processed        %.1f GB (%.2f GB/h)\n", r.ProcessedGB, r.Throughput)
		fmt.Printf("  mean delay       %.1f min\n", r.DelayMin)
		fmt.Printf("  e-buffer avail   %.0f Wh (mean stored)\n", float64(r.EnergyAvail))
		fmt.Printf("  service life     %.1f yr projected\n", r.ServiceLifeYear)
		fmt.Printf("  perf per Ah      %.2f GB/Ah\n", r.PerfPerAh)
		fmt.Printf("  energy           load %.2f kWh, effective %.2f kWh, harvested %.2f kWh, curtailed %.2f kWh\n",
			r.LoadKWh, r.EffectiveKWh, r.HarvestedKWh, r.CurtailedKWh)
		fmt.Printf("  events           %d power ops, %d on/off cycles, %d VM ops, %d brownouts\n",
			r.PowerOps, r.OnOffCycles, r.VMOps, r.Brownouts)
		fmt.Printf("  vm state         %d checkpointed (saved), %d lost\n", r.VMsSaved, r.VMsLost)
		fmt.Printf("  battery          min %.2f V, end %.2f V, stddev %.2f, wear %.2f Ah/unit\n",
			float64(r.MinVolt), float64(r.EndVolt), r.VoltStdDev, float64(r.WearAhPerUnit))
		if r.GenStarts > 0 || *gensetFit {
			fmt.Printf("  genset           %d starts, %.2f run-hours, %.2f kWh delivered (%.2f kWh wasted), fuel $%.2f\n",
				r.GenStarts, r.GenRunHours, r.GenKWh, r.GenWastedKWh, r.GenFuelCost)
		}
		// The journaled wrapper embeds the manager, so a plain type switch on
		// *core.Manager would miss it; this interface catches both.
		if c, ok := mgr.(interface {
			FaultEvents() []core.FaultEvent
			SurvivalEnabled() bool
			Mode() core.OpMode
			ModeTransitions() int
		}); ok {
			if c.SurvivalEnabled() {
				fmt.Printf("  survival         %d ladder transitions, final mode %s\n",
					c.ModeTransitions(), c.Mode())
			}
			for _, ev := range c.FaultEvents() {
				fmt.Printf("  quarantined      unit %d at %v: %s\n", ev.Unit, ev.At, ev.Reason)
			}
		}
		fmt.Println()
	}

	if *compare {
		if *parallel {
			names := []string{"insure", "baseline"}
			systems := make([]*sim.System, len(names))
			managers := make([]sim.Manager, len(names))
			registries := make([]*telemetry.Registry, len(names))
			runs := make([]sim.CampaignRun, len(names))
			for i, name := range names {
				runs[i] = sim.CampaignRun{Name: name, Setup: setup(name, &systems[i], &managers[i], &registries[i])}
			}
			results, err := sim.RunCampaign(context.Background(), 0, runs)
			if err != nil {
				log.Fatal(err)
			}
			for i, name := range names {
				dump(name, systems[i], registries[i])
				report(results[i], managers[i])
			}
		} else {
			report(run("insure"))
			report(run("baseline"))
		}
		return
	}
	report(run(*policy))
}

// fleetIgnores are the flags the federated -fleet campaign silently
// dropped before validation: it synthesizes its own per-site traces and
// drives the chaos site-loss harness, so the single-day plumbing does not
// apply. (-survival is implied per site, not optional.)
var fleetIgnores = []string{
	"kill-at", "torn-kill", "state-dir", "compare", "parallel", "faults",
	"survival", "genset", "telemetry-addr", "dump-frames", "dump-log",
	"dump-telemetry", "dump-trace", "trace", "policy", "weather",
	"workload", "peak", "energy",
}

// stormIgnores are the flags the single-site -storm-days campaign ignores.
// Unlike the fleet path it does honor -survival and -genset (the ladder
// and backup generator are the campaign's subject).
var stormIgnores = []string{
	"kill-at", "torn-kill", "state-dir", "compare", "parallel", "faults",
	"telemetry-addr", "dump-frames", "dump-log", "dump-telemetry",
	"dump-trace", "trace", "policy", "weather", "workload", "peak", "energy",
}

// fleetRequires are the flags that only mean something under -fleet.
var fleetRequires = []string{"storm-site", "migrate", "fleet-log"}

// validateFlags rejects flag combinations the selected run shape would
// silently ignore. set holds the names of explicitly provided flags, with
// "fleet" and "storm-days" removed when explicitly zero.
func validateFlags(set map[string]bool) error {
	if set["fleet"] {
		for _, bad := range fleetIgnores {
			if set[bad] {
				return fmt.Errorf("-fleet runs the federated site-loss campaign, which ignores -%s; drop -%s or run without -fleet", bad, bad)
			}
		}
		return nil
	}
	for _, f := range fleetRequires {
		if set[f] {
			return fmt.Errorf("-%s only applies to a federated run; add -fleet N (N >= 2) or drop -%s", f, f)
		}
	}
	if set["storm-days"] {
		for _, bad := range stormIgnores {
			if set[bad] {
				return fmt.Errorf("-storm-days runs the chaos storm campaign, which ignores -%s; drop -%s or run a single day without -storm-days", bad, bad)
			}
		}
	}
	return nil
}

// mgrConfig builds the insure control-plane config, arming the
// survivability ladder when asked. Both initial setup and journal
// recovery go through here so a recovered controller keeps the ladder.
func mgrConfig(survival bool) core.Config {
	cfg := core.DefaultConfig()
	if survival {
		cfg.Survival = core.DefaultSurvivalConfig()
	}
	return cfg
}

// parseKills parses the -kill-at list into sorted sim times.
func parseKills(spec string) ([]time.Duration, error) {
	if spec == "" {
		return nil, nil
	}
	var out []time.Duration
	for _, part := range strings.Split(spec, ",") {
		d, err := time.ParseDuration(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("-kill-at %q: %w", part, err)
		}
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// runJournaled runs the day with the crash-safe control plane: every
// control pass commits to the state journal in dir, and at each kill point
// the controller is hard-stopped and rebuilt purely from disk — the plant
// keeps its physical state, recovery reconciles the restored relay intent
// against it, and the run continues. It returns the result and the final
// (possibly recovered) manager so the report can read its fault events.
func runJournaled(sys *sim.System, mgr *core.Manager, mcfg core.Config, reg *telemetry.Registry, kills []time.Duration, dir string, torn bool) (sim.Result, sim.Manager) {
	store, err := journal.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	jm := core.NewJournaled(mgr, store)
	start, end := sys.Span()
	step := sys.Config().Step
	next := 0
	for tod := start; tod < end; tod += step {
		if next < len(kills) && tod >= kills[next] {
			// Hard stop: only the journal survives the controller.
			if err := store.Close(); err != nil {
				log.Fatal(err)
			}
			if torn {
				if err := journal.TruncateTail(dir, 40); err != nil {
					log.Fatal(err)
				}
			}
			// Recovery must rebuild the controller under the same config the
			// original ran with — a survival-armed plant that came back
			// without its ladder would silently lose the emergency posture.
			m2, store2, err := core.Recover(mcfg, sys.Bank.Size(), dir)
			if err != nil {
				log.Fatal(err)
			}
			if reg != nil {
				m2.AttachTelemetry(reg)
			}
			fixed := m2.Reconcile(sys, tod)
			fmt.Printf("controller killed at %v: recovered from journal (recovery #%d), %d relay pairs reconciled\n",
				kills[next], m2.Recoveries(), fixed)
			store = store2
			jm = core.NewJournaled(m2, store)
			next++
		}
		sys.Tick(tod, jm)
	}
	res := sys.Finish(jm)
	if err := jm.Err(); err != nil {
		log.Printf("warning: journal commit error during run: %v", err)
	}
	if err := store.Close(); err != nil {
		log.Printf("warning: journal close: %v", err)
	}
	if jm.Recoveries() > 0 {
		fmt.Printf("recoveries %d, reconciliations %d\n", jm.Recoveries(), jm.Reconciliations())
	}
	return res, jm
}

func writeFrames(path string, sys *sim.System) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	header := []string{"seconds", "solar_w", "load_w", "stored_wh", "running_vms"}
	for i := 0; i < sys.Bank.Size(); i++ {
		header = append(header,
			fmt.Sprintf("v%d", i), fmt.Sprintf("soc%d", i), fmt.Sprintf("mode%d", i))
	}
	if err := w.Write(header); err != nil {
		return err
	}
	for _, fr := range sys.Recorder().Frames() {
		row := []string{
			strconv.FormatInt(int64(fr.At/time.Second), 10),
			fmt.Sprintf("%.1f", float64(fr.Solar)),
			fmt.Sprintf("%.1f", float64(fr.Load)),
			fmt.Sprintf("%.1f", float64(fr.StoredWh)),
			strconv.Itoa(fr.RunningVM),
		}
		for i := range fr.Volts {
			row = append(row,
				fmt.Sprintf("%.3f", float64(fr.Volts[i])),
				fmt.Sprintf("%.3f", fr.SoCs[i]),
				fr.Modes[i].String())
		}
		if err := w.Write(row); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

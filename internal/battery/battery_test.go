package battery

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"insure/internal/units"
)

func newUnit(t *testing.T, soc float64) *Unit {
	t.Helper()
	u, err := New(DefaultParams(), soc)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestValidate(t *testing.T) {
	good := DefaultParams()
	if err := good.Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	bad := []func(*Params){
		func(p *Params) { p.CapacityAh = 0 },
		func(p *Params) { p.CapacityRatio = 0 },
		func(p *Params) { p.CapacityRatio = 1 },
		func(p *Params) { p.RateConst = -1 },
		func(p *Params) { p.OCVFull = p.OCVEmpty },
		func(p *Params) { p.MaxChargeA = p.FloatA },
		func(p *Params) { p.TaperKnee = 1.2 },
		func(p *Params) { p.CoulombicEff = 0 },
		func(p *Params) { p.LifetimeAh = 0 },
	}
	for i, mutate := range bad {
		p := DefaultParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestNewRejectsBadSoC(t *testing.T) {
	if _, err := New(DefaultParams(), -0.1); err == nil {
		t.Error("negative SoC accepted")
	}
	if _, err := New(DefaultParams(), 1.1); err == nil {
		t.Error("SoC > 1 accepted")
	}
}

func TestInitialState(t *testing.T) {
	u := newUnit(t, 0.5)
	if got := u.SoC(); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("SoC = %v, want 0.5", got)
	}
	if got := u.AvailableSoC(); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("AvailableSoC = %v, want 0.5 at equilibrium", got)
	}
	if v := u.TerminalVoltage(); v <= u.Params().OCVEmpty || v >= u.Params().OCVFull {
		t.Errorf("terminal voltage %v outside OCV band at rest", v)
	}
}

func TestDischargeConservesCharge(t *testing.T) {
	u := newUnit(t, 1.0)
	before := u.SoC() * float64(u.Params().CapacityAh)
	var out units.AmpHour
	for i := 0; i < 3600; i++ {
		out += u.Discharge(5, time.Second)
	}
	after := u.SoC() * float64(u.Params().CapacityAh)
	if math.Abs((before-after)-float64(out)) > 0.05 {
		t.Errorf("charge not conserved: drop %.3f Ah, delivered %.3f Ah", before-after, float64(out))
	}
}

func TestRateCapacityEffect(t *testing.T) {
	// Discharging at high current must deplete the available well much
	// faster than total SoC — the apparent capacity collapse of Fig 4b.
	u := newUnit(t, 1.0)
	for i := 0; i < 1800; i++ { // 30 min at 20 A (0.57 C)
		u.Discharge(20, time.Second)
	}
	gap := u.SoC() - u.AvailableSoC()
	if gap < 0.05 {
		t.Errorf("expected available-well depletion under high current, gap = %.3f", gap)
	}
	// At low current the gap stays small.
	u2 := newUnit(t, 1.0)
	for i := 0; i < 1800; i++ {
		u2.Discharge(2, time.Second)
	}
	gap2 := u2.SoC() - u2.AvailableSoC()
	if gap2 >= gap/2 {
		t.Errorf("low-current gap %.3f should be well below high-current gap %.3f", gap2, gap)
	}
}

func TestRecoveryEffect(t *testing.T) {
	u := newUnit(t, 1.0)
	for i := 0; i < 1800; i++ {
		u.Discharge(20, time.Second)
	}
	vSagged := u.TerminalVoltage()
	depleted := u.AvailableSoC()
	// Rest 30 minutes: bound charge diffuses back (capacity recovery).
	for i := 0; i < 1800; i++ {
		u.Rest(time.Second)
	}
	if got := u.AvailableSoC(); got <= depleted+0.02 {
		t.Errorf("no recovery: available SoC %.3f -> %.3f", depleted, got)
	}
	if v := u.TerminalVoltage(); v <= vSagged {
		t.Errorf("voltage did not rebound after rest: %v -> %v", vSagged, v)
	}
}

func TestDeliveryStopsWhenAvailableWellEmpty(t *testing.T) {
	u := newUnit(t, 0.1)
	var total units.AmpHour
	for i := 0; i < 7200; i++ {
		total += u.Discharge(30, time.Second)
	}
	capAh := float64(u.Params().CapacityAh)
	if float64(total) > 0.11*capAh+1 {
		t.Errorf("delivered %.2f Ah from a 10%% battery of %.0f Ah", float64(total), capAh)
	}
}

func TestChargeAcceptanceTaper(t *testing.T) {
	p := DefaultParams()
	if a := p.Acceptance(0.5); a != p.MaxChargeA {
		t.Errorf("bulk acceptance = %v, want %v", a, p.MaxChargeA)
	}
	if a := p.Acceptance(1.0); math.Abs(float64(a-p.FloatA)) > 1e-9 {
		t.Errorf("full acceptance = %v, want %v", a, p.FloatA)
	}
	mid := p.Acceptance(0.9)
	if mid >= p.MaxChargeA || mid <= p.FloatA {
		t.Errorf("taper acceptance %v not between float and max", mid)
	}
}

func TestChargeRaisesSoC(t *testing.T) {
	u := newUnit(t, 0.2)
	for i := 0; i < 3600; i++ {
		u.Charge(8, time.Second)
	}
	if got := u.SoC(); got < 0.35 {
		t.Errorf("1 h at 8 A raised SoC only to %.3f", got)
	}
	if u.SoC() > 1 {
		t.Errorf("SoC exceeded 1: %v", u.SoC())
	}
}

func TestChargeNeverExceedsFull(t *testing.T) {
	u := newUnit(t, 0.95)
	for i := 0; i < 4*3600; i++ {
		u.Charge(10, time.Second)
	}
	if got := u.SoC(); got > 1.0+1e-9 {
		t.Errorf("overcharged to SoC %v", got)
	}
}

func TestGassingOverheadDrawnEvenWhenFull(t *testing.T) {
	u := newUnit(t, 1.0)
	drawn := u.Charge(5, time.Second)
	if float64(drawn) < float64(u.Params().GassingA) {
		t.Errorf("full battery drew %v, expected at least gassing %v", drawn, u.Params().GassingA)
	}
}

// TestSequentialBeatsBatchCharging reproduces Fig 4a: with a limited power
// budget, charging units one by one completes substantially sooner than
// charging all simultaneously, because each connected unit pays the gassing
// overhead for as long as it sits on the charge bus.
func TestSequentialBeatsBatchCharging(t *testing.T) {
	const (
		n      = 3
		budget = units.Watt(150)
		target = 0.9
		maxSec = 200 * 3600
	)
	run := func(sequential bool) int {
		bank := MustNewBank(DefaultParams(), n, 0.2)
		for sec := 0; sec < maxSec; sec++ {
			var pending []int
			for i := 0; i < n; i++ {
				if bank.Unit(i).SoC() < target {
					pending = append(pending, i)
				}
			}
			if len(pending) == 0 {
				return sec
			}
			if sequential {
				pending = pending[:1]
			}
			bank.ChargeSet(pending, budget, time.Second)
			for i := 0; i < n; i++ {
				charged := false
				for _, j := range pending {
					if j == i {
						charged = true
					}
				}
				if !charged {
					bank.Unit(i).Rest(time.Second)
				}
			}
		}
		return maxSec
	}
	seq := run(true)
	batch := run(false)
	if seq >= batch {
		t.Fatalf("sequential (%d s) not faster than batch (%d s)", seq, batch)
	}
	saving := 1 - float64(seq)/float64(batch)
	if saving < 0.2 {
		t.Errorf("sequential saving %.1f%% below the paper's reported range", saving*100)
	}
	t.Logf("sequential %.1fh vs batch %.1fh (%.0f%% faster)", float64(seq)/3600, float64(batch)/3600, saving*100)
}

func TestWearAccounting(t *testing.T) {
	u := newUnit(t, 1.0)
	for i := 0; i < 3600; i++ {
		u.Discharge(10, time.Second)
	}
	if got := float64(u.RawOut()); math.Abs(got-10) > 0.1 {
		t.Errorf("raw throughput = %.2f Ah, want ~10", got)
	}
	if u.WearFraction() <= 0 {
		t.Error("wear fraction not accumulating")
	}
	if c := u.EquivalentCycles(); math.Abs(c-10.0/35) > 0.01 {
		t.Errorf("equivalent cycles = %.3f", c)
	}
}

func TestDeepDischargeWearPenalty(t *testing.T) {
	shallow := newUnit(t, 1.0)
	deep := newUnit(t, 0.2)
	for i := 0; i < 600; i++ {
		shallow.Discharge(5, time.Second)
		deep.Discharge(5, time.Second)
	}
	if deep.Throughput() <= shallow.Throughput() {
		t.Errorf("deep discharge wear %v not above shallow %v", deep.Throughput(), shallow.Throughput())
	}
}

func TestRemainingLife(t *testing.T) {
	u := newUnit(t, 1.0)
	life := u.RemainingLife(10)
	wantDays := float64(u.Params().LifetimeAh) / 10
	if math.Abs(life.Hours()/24-wantDays) > 0.5 {
		t.Errorf("remaining life = %.1f days, want %.1f", life.Hours()/24, wantDays)
	}
	if u.RemainingLife(0) <= 0 {
		t.Error("zero usage should mean effectively infinite life")
	}
}

func TestTerminalVoltageUnderLoad(t *testing.T) {
	u := newUnit(t, 0.9)
	rest := u.TerminalVoltage()
	u.Discharge(20, time.Second)
	loaded := u.TerminalVoltage()
	if loaded >= rest {
		t.Errorf("voltage under 20 A load (%v) not below rest (%v)", loaded, rest)
	}
	u2 := newUnit(t, 0.5)
	u2.Charge(8, time.Second)
	if u2.TerminalVoltage() <= u2.OCV() {
		t.Error("charging voltage should exceed OCV")
	}
}

func TestSoCInvariants(t *testing.T) {
	// Property: any sequence of charge/discharge/rest keeps SoC in [0,1]
	// and both wells non-negative.
	f := func(ops []uint8) bool {
		u := MustNew(DefaultParams(), 0.5)
		for _, op := range ops {
			switch op % 3 {
			case 0:
				u.Discharge(units.Amp(float64(op%40)), time.Minute)
			case 1:
				u.Charge(units.Amp(float64(op%12)), time.Minute)
			case 2:
				u.Rest(time.Minute)
			}
			if s := u.SoC(); s < 0 || s > 1+1e-9 {
				return false
			}
			if a := u.AvailableSoC(); a < 0 || a > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSnapshot(t *testing.T) {
	u := newUnit(t, 0.7)
	u.Discharge(5, time.Second)
	s := u.Snapshot()
	if s.SoC != u.SoC() || s.Terminal != u.TerminalVoltage() {
		t.Error("snapshot disagrees with live unit")
	}
	if s.LastCurrent != 5 {
		t.Errorf("snapshot current = %v, want 5", s.LastCurrent)
	}
}

func TestSetSoC(t *testing.T) {
	u := newUnit(t, 0.1)
	u.SetSoC(0.8)
	if math.Abs(u.SoC()-0.8) > 1e-9 {
		t.Errorf("SetSoC: SoC = %v", u.SoC())
	}
	u.SetSoC(2)
	if u.SoC() > 1 {
		t.Error("SetSoC did not clamp")
	}
}

func TestBankAggregates(t *testing.T) {
	b := MustNewBank(DefaultParams(), 6, 0.5)
	if b.Size() != 6 {
		t.Fatalf("size = %d", b.Size())
	}
	if got := b.MeanSoC(); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("mean SoC = %v", got)
	}
	e := b.StoredEnergy()
	want := 6 * 0.5 * 35 * 12.0
	if math.Abs(float64(e)-want) > 1 {
		t.Errorf("stored energy = %v, want ~%v Wh", e, want)
	}
}

func TestBankDischargeSet(t *testing.T) {
	b := MustNewBank(DefaultParams(), 4, 0.9)
	got := b.DischargeSet([]int{0, 1}, 300, time.Minute)
	if got <= 0 {
		t.Fatal("no energy delivered")
	}
	if b.Unit(0).SoC() >= 0.9 || b.Unit(2).SoC() < 0.9 {
		t.Error("discharge touched the wrong units")
	}
	if b.DischargeSet(nil, 300, time.Minute) != 0 {
		t.Error("empty set should deliver nothing")
	}
}

func TestBankThroughputSpread(t *testing.T) {
	b := MustNewBank(DefaultParams(), 3, 1.0)
	for i := 0; i < 600; i++ {
		b.DischargeSet([]int{0}, 200, time.Second)
	}
	if b.ThroughputSpread() <= 0 {
		t.Error("spread should be positive after unbalanced use")
	}
	var none Bank
	if none.ThroughputSpread() != 0 {
		t.Error("empty bank spread should be 0")
	}
}

func TestBankChargeSetConsumesWithinBudget(t *testing.T) {
	b := MustNewBank(DefaultParams(), 3, 0.3)
	used := b.ChargeSet([]int{0, 1, 2}, 300, time.Second)
	if used <= 0 || used > 300+1 {
		t.Errorf("charge consumed %v from a 300 W budget", used)
	}
}

func TestDischargePanicsOnNegativeCurrent(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	newUnit(t, 0.5).Discharge(-1, time.Second)
}

func TestChargePanicsOnNegativeCurrent(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	newUnit(t, 0.5).Charge(-1, time.Second)
}

func TestCapacityFadeWithWear(t *testing.T) {
	u := newUnit(t, 1.0)
	fresh := float64(u.EffectiveCapacity())
	// Cycle the unit hard: discharge/charge for many full-capacity swings.
	for cycle := 0; cycle < 40; cycle++ {
		for i := 0; i < 3*3600; i++ {
			u.Discharge(8, time.Second)
		}
		for i := 0; i < 4*3600; i++ {
			u.Charge(10, time.Second)
		}
	}
	aged := float64(u.EffectiveCapacity())
	if aged >= fresh {
		t.Fatalf("no fade after heavy cycling: %.2f -> %.2f Ah", fresh, aged)
	}
	// Fade must be proportional to wear fraction.
	wantFade := u.Params().FadeAtEOL * u.WearFraction()
	gotFade := 1 - aged/float64(u.Params().CapacityAh)
	if math.Abs(gotFade-wantFade) > 0.01 {
		t.Errorf("fade %.3f, want %.3f from wear %.3f", gotFade, wantFade, u.WearFraction())
	}
}

func TestFadeDisabledWhenZero(t *testing.T) {
	p := DefaultParams()
	p.FadeAtEOL = 0
	u := MustNew(p, 1.0)
	for i := 0; i < 3600; i++ {
		u.Discharge(10, time.Second)
	}
	if got := float64(u.EffectiveCapacity()); got != float64(p.CapacityAh) {
		t.Errorf("capacity %.2f changed with fade disabled", got)
	}
}

func TestInjectCapacityLoss(t *testing.T) {
	u := newUnit(t, 0.9)
	healthy := newUnit(t, 0.9)
	vBefore := u.TerminalVoltage()
	u.InjectCapacityLoss(0.6)
	if !u.Failed() {
		t.Fatal("faulted unit reports healthy")
	}
	// Effective capacity shrinks by the lost fraction.
	want := 0.4 * float64(healthy.EffectiveCapacity())
	if got := float64(u.EffectiveCapacity()); math.Abs(got-want) > 0.01 {
		t.Errorf("effective capacity %.2f Ah, want %.2f", got, want)
	}
	// The stored charge collapses faster than the capacity, so SoC and
	// terminal voltage drop observably — this is what the control plane's
	// fault detector keys on.
	if u.SoC() >= 0.9*0.5 {
		t.Errorf("SoC %.3f did not collapse after 60%% capacity loss", u.SoC())
	}
	if u.TerminalVoltage() >= vBefore-0.1 {
		t.Errorf("terminal voltage %.2f barely moved from %.2f", u.TerminalVoltage(), vBefore)
	}
	if healthy.Failed() {
		t.Error("healthy unit reports failed")
	}
}

func TestInjectCapacityLossCompounds(t *testing.T) {
	u := newUnit(t, 1.0)
	u.InjectCapacityLoss(0.5)
	u.InjectCapacityLoss(0.5)
	// Two 50% losses compound to 75%, not 100%.
	want := 0.25 * float64(u.Params().CapacityAh)
	if got := float64(u.EffectiveCapacity()); math.Abs(got-want) > 0.01 {
		t.Errorf("compounded capacity %.2f Ah, want %.2f", got, want)
	}
	u.InjectCapacityLoss(0) // no-op, not a repair
	if !u.Failed() {
		t.Error("zero-fraction injection cleared the fault")
	}
	if s := u.SoC(); s < 0 || s > 1+1e-9 {
		t.Errorf("SoC %.3f out of range after fault", s)
	}
}

func TestBankChargeDischargeRoundTripProperty(t *testing.T) {
	// Property: random sequences of bank operations keep every unit's SoC
	// in [0,1], keep throughput monotone non-decreasing, and never create
	// charge out of nothing (energy out <= energy in + initial store).
	f := func(ops []uint16) bool {
		bank := MustNewBank(DefaultParams(), 4, 0.6)
		initial := float64(bank.StoredEnergy())
		var inWh, outWh float64
		prevThroughput := 0.0
		for _, op := range ops {
			idx := []int{int(op % 4)}
			power := units.Watt(float64(op%600) + 1)
			switch (op / 4) % 3 {
			case 0:
				used := bank.ChargeSet(idx, power, time.Minute)
				inWh += float64(units.Energy(used, time.Minute))
			case 1:
				outWh += float64(bank.DischargeSet(idx, power, time.Minute))
			default:
				bank.RestAll(time.Minute)
			}
			for _, u := range bank.Units() {
				if s := u.SoC(); s < 0 || s > 1+1e-9 {
					return false
				}
			}
			tp := float64(bank.TotalThroughput())
			if tp < prevThroughput {
				return false
			}
			prevThroughput = tp
		}
		final := float64(bank.StoredEnergy())
		// Conservation with losses: what came out plus what remains can
		// never exceed what went in plus the initial store (tolerance for
		// the nominal-voltage energy approximation).
		return outWh+final <= initial+inWh+initial*0.1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Command insure-endurance runs multi-day deployment campaigns: one
// battery bank and one power manager operated through a weather sequence,
// with per-day outcomes and a battery service-life projection.
//
// Usage:
//
//	insure-endurance -days 30 -workload seismic -policy insure
//	insure-endurance -days 14 -sunny 0.3 -cloudy 0.3 -peak 800
package main

import (
	"flag"
	"fmt"
	"log"

	"insure/internal/baseline"
	"insure/internal/blink"
	"insure/internal/core"
	"insure/internal/endurance"
	"insure/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("insure-endurance: ")
	days := flag.Int("days", 14, "campaign length in days")
	wl := flag.String("workload", "seismic", "workload: seismic, video")
	policy := flag.String("policy", "insure", "power manager: insure, baseline, blink")
	seed := flag.Int64("seed", 2015, "weather/trace seed")
	peak := flag.Float64("peak", 1000, "per-day solar peak (W); 0 = natural")
	sunny := flag.Float64("sunny", 0.5, "long-run sunny-day fraction")
	cloudy := flag.Float64("cloudy", 0.3, "long-run cloudy-day fraction")
	verbose := flag.Bool("v", false, "print per-day outcomes")
	flag.Parse()

	mkSink := func() sim.Sink {
		if *wl == "video" {
			return sim.NewVideoSink()
		}
		return sim.NewSeismicSink()
	}
	var mgr sim.Manager
	switch *policy {
	case "insure":
		mgr = core.New(core.DefaultConfig(), 6)
	case "baseline":
		mgr = baseline.New(baseline.DefaultConfig())
	case "blink":
		mgr = blink.New(blink.DefaultConfig())
	default:
		log.Fatalf("unknown policy %q", *policy)
	}

	sum, err := endurance.Run(endurance.Campaign{
		Days:      *days,
		Climate:   endurance.NewClimate(*sunny, *cloudy, *seed),
		Seed:      *seed,
		PeakWatts: *peak,
		NewSink:   mkSink,
		Manager:   mgr,
	})
	if err != nil {
		log.Fatal(err)
	}

	if *verbose {
		fmt.Printf("%4s %-7s %8s %9s %10s %8s\n", "day", "weather", "uptime", "GB done", "wear Ah/u", "mean SoC")
		for _, d := range sum.Days {
			fmt.Printf("%4d %-7s %7.1f%% %9.1f %10.2f %8.2f\n",
				d.Day+1, d.Weather, d.Result.UptimeFrac*100, d.Processed,
				float64(d.WearAh), d.MeanSoC)
		}
		fmt.Println()
	}
	fmt.Printf("%d-day campaign (%s, %s):\n", *days, *wl, mgr.Name())
	fmt.Printf("  total processed      %.0f GB\n", sum.TotalGB)
	fmt.Printf("  brownouts            %d\n", sum.TotalBrown)
	fmt.Printf("  battery wear         %.1f Ah/unit (wear-weighted)\n", float64(sum.FinalWearAh))
	fmt.Printf("  projected life       %.1f years at this duty\n", sum.ProjectedLifeYears)
}

package core

import (
	"fmt"

	"insure/internal/forecast"
	"insure/internal/journal"
	"insure/internal/relay"
	"insure/internal/units"
)

// managerStateVersion guards the binary layout of a serialized Manager.
// v2 appended the survivability mode machine (survival.go) so a controller
// crash mid-emergency recovers into the same ladder rung.
const managerStateVersion = 2

// AppendState serializes the manager's complete mutable state — group
// table, discharge-history table, SPM/TPM phase, charge batch, forecast
// state, and the full faultwatch (quarantine flags, screen counters, and
// the quarantine event log) — into e. The encoding is fixed-width binary
// with bit-exact floats, so encode→decode→encode is byte-identical, and
// it appends into e's reusable buffer so the journaling path stays
// allocation-free at steady state.
//
// Config and scratch buffers are not state: configuration is rebuilt by
// the caller (a config change must not be masked by disk), and scratch is
// recomputed by the next control pass.
func (m *Manager) AppendState(e *journal.Encoder) {
	e.U8(managerStateVersion)
	n := len(m.groups)
	e.Int(n)
	for _, g := range m.groups {
		e.Int(int(g))
	}
	for _, v := range m.ahTable {
		e.F64(v)
	}
	e.F64(m.unused)
	e.Dur(m.elapsed)
	e.Dur(m.lastCoarse)
	e.Bool(m.started)
	e.F64(m.duty)
	e.Int(m.targetVM)
	e.Int(len(m.activeCharge))
	for _, i := range m.activeCharge {
		e.Int(i)
	}
	for _, v := range m.chargeStall {
		e.Int(v)
	}
	for _, v := range m.commissioned {
		e.Bool(v)
	}
	e.Int(m.bestBatchVMs)

	e.Bool(m.fc != nil)
	if m.fc != nil {
		st := m.fc.State()
		e.F64(st.Ratio)
		e.Bool(st.HaveObs)
		e.F64(st.Variance)
	}

	e.Bool(m.lastModes != nil)
	if m.lastModes != nil {
		for _, mode := range m.lastModes {
			e.Int(int(mode))
		}
	}

	e.Int(m.seenBrownouts)
	e.Dur(m.holdDownUntil)
	e.Int(m.screenings)
	e.Int(m.capEvents)
	e.Int(m.boostEvents)
	e.Int(m.recoveries)
	e.Int(m.reconciliations)

	// faultwatch
	for _, v := range m.watch.quarantined {
		e.Bool(v)
	}
	for _, v := range m.watch.prevSoC {
		e.F64(v)
	}
	for _, v := range m.watch.prevCur {
		e.F64(float64(v))
	}
	for _, v := range m.watch.hasPrevCur {
		e.Bool(v)
	}
	e.F64(float64(m.watch.prevExpect))
	e.Bool(m.watch.hasExpect)
	for _, v := range m.watch.lowFor {
		e.Int(v)
	}
	for _, v := range m.watch.ghostFor {
		e.Int(v)
	}
	for _, v := range m.watch.frozenFor {
		e.Int(v)
	}
	for _, v := range m.watch.bandFor {
		e.Int(v)
	}
	e.Int(len(m.watch.events))
	for _, ev := range m.watch.events {
		e.Dur(ev.At)
		e.Int(ev.Unit)
		e.String(ev.Reason)
	}

	// survivability mode machine (v2)
	e.Bool(m.sv != nil)
	if m.sv != nil {
		e.Int(int(m.sv.mode))
		e.Dur(m.sv.modeSince)
		e.Int(m.sv.transitions)
		e.Int(m.sv.bsTarget)
		e.F64(m.sv.shedWatts)
	}
}

// RestoreState overwrites the manager's mutable state from d. The unit
// count must match the manager's configuration; telemetry attachment and
// config survive untouched.
func (m *Manager) RestoreState(d *journal.Decoder) error {
	d.ExpectVersion(managerStateVersion)
	n := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if n != len(m.groups) {
		return fmt.Errorf("core: restoring state for %d units into manager of %d", n, len(m.groups))
	}
	for i := range m.groups {
		m.groups[i] = Group(d.Int())
	}
	for i := range m.ahTable {
		m.ahTable[i] = d.F64()
	}
	m.unused = d.F64()
	m.elapsed = d.Dur()
	m.lastCoarse = d.Dur()
	m.started = d.Bool()
	m.duty = d.F64()
	m.targetVM = d.Int()
	nActive := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if nActive < 0 || nActive > n {
		return fmt.Errorf("core: restoring %d active-charge entries for %d units", nActive, n)
	}
	m.activeCharge = m.activeCharge[:0]
	for i := 0; i < nActive; i++ {
		m.activeCharge = append(m.activeCharge, d.Int())
	}
	for i := range m.chargeStall {
		m.chargeStall[i] = d.Int()
	}
	for i := range m.commissioned {
		m.commissioned[i] = d.Bool()
	}
	m.bestBatchVMs = d.Int()

	if hasFC := d.Bool(); hasFC {
		st := forecast.EstimatorState{
			Ratio:    d.F64(),
			HaveObs:  d.Bool(),
			Variance: d.F64(),
		}
		if m.fc != nil {
			m.fc.Restore(st)
		}
	}

	if hasModes := d.Bool(); hasModes {
		if m.lastModes == nil {
			m.lastModes = make([]relay.Mode, n)
		}
		for i := range m.lastModes {
			m.lastModes[i] = relay.Mode(d.Int())
		}
	} else {
		m.lastModes = nil
	}

	m.seenBrownouts = d.Int()
	m.holdDownUntil = d.Dur()
	m.screenings = d.Int()
	m.capEvents = d.Int()
	m.boostEvents = d.Int()
	m.recoveries = d.Int()
	m.reconciliations = d.Int()

	for i := range m.watch.quarantined {
		m.watch.quarantined[i] = d.Bool()
	}
	for i := range m.watch.prevSoC {
		m.watch.prevSoC[i] = d.F64()
	}
	for i := range m.watch.prevCur {
		m.watch.prevCur[i] = units.Amp(d.F64())
	}
	for i := range m.watch.hasPrevCur {
		m.watch.hasPrevCur[i] = d.Bool()
	}
	m.watch.prevExpect = units.Amp(d.F64())
	m.watch.hasExpect = d.Bool()
	for i := range m.watch.lowFor {
		m.watch.lowFor[i] = d.Int()
	}
	for i := range m.watch.ghostFor {
		m.watch.ghostFor[i] = d.Int()
	}
	for i := range m.watch.frozenFor {
		m.watch.frozenFor[i] = d.Int()
	}
	for i := range m.watch.bandFor {
		m.watch.bandFor[i] = d.Int()
	}
	nEvents := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if nEvents < 0 || nEvents > 1<<20 {
		return fmt.Errorf("core: implausible fault-event count %d", nEvents)
	}
	m.watch.events = m.watch.events[:0]
	for i := 0; i < nEvents; i++ {
		m.watch.events = append(m.watch.events, FaultEvent{
			At:     d.Dur(),
			Unit:   d.Int(),
			Reason: d.String(),
		})
	}

	if hasSv := d.Bool(); hasSv {
		mode := OpMode(d.Int())
		since := d.Dur()
		transitions := d.Int()
		bsTarget := d.Int()
		shed := d.F64()
		// If the config no longer enables survival the fields are read and
		// dropped — a config change must not be masked by disk.
		if m.sv != nil {
			m.sv.mode = mode
			m.sv.modeSince = since
			m.sv.transitions = transitions
			m.sv.bsTarget = bsTarget
			m.sv.shedWatts = shed
		}
	}
	return d.Err()
}

// State returns the manager's serialized state as a fresh byte slice —
// the convenience form for tests and the sim's kill/resume path. The
// journaling hot path uses AppendState with a reused encoder instead.
func (m *Manager) State() []byte {
	var e journal.Encoder
	m.AppendState(&e)
	return append([]byte(nil), e.Bytes()...)
}

// Restore overwrites the manager's state from a State() payload.
func (m *Manager) Restore(b []byte) error {
	return m.RestoreState(journal.NewDecoder(b))
}

package units

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestEnergy(t *testing.T) {
	cases := []struct {
		p    Watt
		d    time.Duration
		want WattHour
	}{
		{100, time.Hour, 100},
		{100, 30 * time.Minute, 50},
		{0, time.Hour, 0},
		{450, 2 * time.Hour, 900},
		{1600, 15 * time.Minute, 400},
	}
	for _, c := range cases {
		if got := Energy(c.p, c.d); !almostEqual(float64(got), float64(c.want), 1e-9) {
			t.Errorf("Energy(%v, %v) = %v, want %v", c.p, c.d, got, c.want)
		}
	}
}

func TestCharge(t *testing.T) {
	if got := Charge(10, 90*time.Minute); !almostEqual(float64(got), 15, 1e-9) {
		t.Errorf("Charge(10A, 90m) = %v, want 15Ah", got)
	}
}

func TestPowerCurrentRoundTrip(t *testing.T) {
	f := func(p float64, v float64) bool {
		p = math.Mod(math.Abs(p), 5000)
		v = 10 + math.Mod(math.Abs(v), 40)
		i := Current(Watt(p), Volt(v))
		back := Power(i, Volt(v))
		return almostEqual(float64(back), p, 1e-6*math.Max(1, p))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCurrentZeroVolt(t *testing.T) {
	if got := Current(100, 0); got != 0 {
		t.Errorf("Current at 0V = %v, want 0", got)
	}
}

func TestOver(t *testing.T) {
	if got := WattHour(500).Over(2 * time.Hour); !almostEqual(float64(got), 250, 1e-9) {
		t.Errorf("500Wh over 2h = %v, want 250W", got)
	}
	if got := WattHour(500).Over(0); got != 0 {
		t.Errorf("energy over 0 duration = %v, want 0", got)
	}
}

func TestKiloWattHour(t *testing.T) {
	e := KiloWattHour(2.5)
	if !almostEqual(float64(e), 2500, 1e-9) {
		t.Errorf("KiloWattHour(2.5) = %v", e)
	}
	if !almostEqual(e.KWh(), 2.5, 1e-12) {
		t.Errorf("round-trip KWh = %v", e.KWh())
	}
}

func TestClamp(t *testing.T) {
	cases := []struct{ x, lo, hi, want float64 }{
		{5, 0, 10, 5},
		{-1, 0, 10, 0},
		{11, 0, 10, 10},
		{0, 0, 0, 0},
	}
	for _, c := range cases {
		if got := Clamp(c.x, c.lo, c.hi); got != c.want {
			t.Errorf("Clamp(%v,%v,%v) = %v, want %v", c.x, c.lo, c.hi, got, c.want)
		}
	}
}

func TestClampProperty(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) {
			return true
		}
		got := Clamp(x, -1, 1)
		return got >= -1 && got <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLerp(t *testing.T) {
	if got := Lerp(0, 10, 0.5); got != 5 {
		t.Errorf("Lerp mid = %v", got)
	}
	if got := Lerp(0, 10, -2); got != 0 {
		t.Errorf("Lerp below = %v", got)
	}
	if got := Lerp(0, 10, 3); got != 10 {
		t.Errorf("Lerp above = %v", got)
	}
}

func TestStrings(t *testing.T) {
	if s := Watt(123.45).String(); s != "123.5W" {
		t.Errorf("Watt string = %q", s)
	}
	if s := Volt(12.801).String(); s != "12.80V" {
		t.Errorf("Volt string = %q", s)
	}
	if s := AmpHour(35).String(); s != "35.00Ah" {
		t.Errorf("AmpHour string = %q", s)
	}
}

// Package journal is the durable-state layer of the control plane: an
// append-only, checksummed, fsync-on-commit write-ahead journal plus
// periodic atomic snapshots. The power manager commits its full state
// after every control pass; after a crash — controller panic, wedged
// loop, or a brownout that takes the coordination node down mid-relay
// transition — recovery replays snapshot + journal and resumes from the
// last committed pass.
//
// On-disk layout inside the state directory:
//
//	snapshot.bin   magic | version | seq | crc32 | len | payload
//	journal.log    repeated records: len | seq | crc32 | payload
//
// Both files use little-endian fixed-width framing (see codec.go). The
// snapshot is written to a temporary file, fsynced, renamed over
// snapshot.bin, and the directory is fsynced — the snapshot is either
// the old one or the new one, never a torn mix. After a successful
// snapshot the journal is truncated; a crash between the rename and the
// truncate is benign because journal records with seq <= the snapshot's
// seq are skipped on replay.
//
// The journal tolerates a torn tail: replay stops at the first record
// whose length, sequence, or checksum does not verify, and Open
// truncates the file back to the last good record before appending. A
// kill mid-write therefore loses at most the state of the pass being
// committed — the recovery path reconciles that against the live plant
// (see core.Manager.Reconcile).
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

const (
	snapshotName = "snapshot.bin"
	snapshotTemp = "snapshot.tmp"
	journalName  = "journal.log"

	snapshotMagic = 0x494e534a // "INSJ"
	storeVersion  = 1

	recordHeader = 4 + 8 + 4 // len | seq | crc32
	maxRecord    = 16 << 20  // sanity bound on a single payload
)

// ErrCorruptSnapshot reports a snapshot file that exists but fails its
// magic, version, length, or checksum — unlike a torn journal tail this
// is not an expected crash artifact (the rename is atomic), so Load
// surfaces it instead of silently starting from zero.
var ErrCorruptSnapshot = errors.New("journal: corrupt snapshot")

// LoadResult is everything recovery needs: the newest snapshot (if any)
// and the journal records committed after it, oldest first.
type LoadResult struct {
	Snapshot    []byte // nil if no snapshot exists
	SnapshotSeq uint64
	Entries     [][]byte // journal payloads with seq > SnapshotSeq
	EntrySeqs   []uint64
	LastSeq     uint64 // highest seq seen anywhere (0 if store is empty)

	journalGood int64 // byte offset of the last valid journal record's end
}

// Load reads the store without opening it for writing. A missing
// directory or missing files yield an empty result; a torn journal tail
// is silently dropped; a corrupt snapshot is an error.
func Load(dir string) (*LoadResult, error) {
	res := &LoadResult{}

	snap, err := os.ReadFile(filepath.Join(dir, snapshotName))
	switch {
	case errors.Is(err, os.ErrNotExist):
	case err != nil:
		return nil, err
	default:
		payload, seq, perr := parseSnapshot(snap)
		if perr != nil {
			return nil, perr
		}
		res.Snapshot = payload
		res.SnapshotSeq = seq
		res.LastSeq = seq
	}

	raw, err := os.ReadFile(filepath.Join(dir, journalName))
	if errors.Is(err, os.ErrNotExist) {
		return res, nil
	}
	if err != nil {
		return nil, err
	}
	off := 0
	for {
		payload, seq, n := parseRecord(raw[off:])
		if n == 0 {
			break // torn or corrupt tail: stop at the last good record
		}
		off += n
		if res.LastSeq < seq {
			res.LastSeq = seq
		}
		if res.Snapshot != nil && seq <= res.SnapshotSeq {
			continue // superseded by the snapshot
		}
		res.Entries = append(res.Entries, payload)
		res.EntrySeqs = append(res.EntrySeqs, seq)
	}
	res.journalGood = int64(off)
	return res, nil
}

// parseRecord decodes one journal record from b. It returns the payload
// (a copy), the sequence number, and the number of bytes consumed; a
// torn, corrupt, or absent record returns n == 0.
func parseRecord(b []byte) (payload []byte, seq uint64, n int) {
	if len(b) < recordHeader {
		return nil, 0, 0
	}
	plen := binary.LittleEndian.Uint32(b[0:4])
	if plen > maxRecord || recordHeader+int(plen) > len(b) {
		return nil, 0, 0
	}
	seq = binary.LittleEndian.Uint64(b[4:12])
	want := binary.LittleEndian.Uint32(b[12:16])
	body := b[recordHeader : recordHeader+int(plen)]
	if recordCRC(seq, body) != want {
		return nil, 0, 0
	}
	return append([]byte(nil), body...), seq, recordHeader + int(plen)
}

// recordCRC checksums the sequence number together with the payload so a
// record copied to the wrong position in the file does not verify.
func recordCRC(seq uint64, payload []byte) uint32 {
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], seq)
	crc := crc32.ChecksumIEEE(hdr[:])
	return crc32.Update(crc, crc32.IEEETable, payload)
}

// parseSnapshot validates and unwraps a snapshot file.
func parseSnapshot(b []byte) (payload []byte, seq uint64, err error) {
	const header = 4 + 1 + 8 + 4 + 4 // magic | version | seq | crc | len
	if len(b) < header {
		return nil, 0, ErrCorruptSnapshot
	}
	if binary.LittleEndian.Uint32(b[0:4]) != snapshotMagic || b[4] != storeVersion {
		return nil, 0, ErrCorruptSnapshot
	}
	seq = binary.LittleEndian.Uint64(b[5:13])
	want := binary.LittleEndian.Uint32(b[13:17])
	plen := binary.LittleEndian.Uint32(b[17:21])
	if plen > maxRecord || header+int(plen) != len(b) {
		return nil, 0, ErrCorruptSnapshot
	}
	payload = b[header:]
	if recordCRC(seq, payload) != want {
		return nil, 0, ErrCorruptSnapshot
	}
	return payload, seq, nil
}

// Store is an open journal directory. It is not safe for concurrent use;
// the control loop owns it.
type Store struct {
	dir string
	f   *os.File
	seq uint64

	// Sync controls whether Append fsyncs after each record. On by
	// default — commit means durable. Benchmarks and the chaos harness
	// may disable it to trade durability for wall-clock time; the
	// framing keeps replay correct either way.
	Sync bool

	frame []byte // reusable framing buffer so Append never allocates
}

// Open creates (or reopens) the store rooted at dir. Any torn tail left
// by a previous crash is truncated away so new records append after the
// last good one.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	res, err := Load(dir)
	if err != nil {
		return nil, err
	}
	jpath := filepath.Join(dir, journalName)
	f, err := os.OpenFile(jpath, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(res.journalGood); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(res.journalGood, 0); err != nil {
		f.Close()
		return nil, err
	}
	return &Store{dir: dir, f: f, seq: res.LastSeq, Sync: true}, nil
}

// Seq returns the sequence number of the last committed record.
func (s *Store) Seq() uint64 { return s.seq }

// Append commits one state payload to the journal and (with Sync set)
// fsyncs before returning. The payload is copied into the store's
// framing buffer, so the caller may reuse its own buffer immediately.
func (s *Store) Append(payload []byte) (uint64, error) {
	if len(payload) > maxRecord {
		return 0, fmt.Errorf("journal: payload %d bytes exceeds record limit", len(payload))
	}
	s.seq++
	s.frame = s.frame[:0]
	s.frame = binary.LittleEndian.AppendUint32(s.frame, uint32(len(payload)))
	s.frame = binary.LittleEndian.AppendUint64(s.frame, s.seq)
	// CRC over the seq bytes already in the (heap-held) frame buffer, so
	// no stack array escapes into the hash call.
	crc := crc32.ChecksumIEEE(s.frame[4:12])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	s.frame = binary.LittleEndian.AppendUint32(s.frame, crc)
	s.frame = append(s.frame, payload...)
	if _, err := s.f.Write(s.frame); err != nil {
		return 0, err
	}
	if s.Sync {
		if err := s.f.Sync(); err != nil {
			return 0, err
		}
	}
	return s.seq, nil
}

// Snapshot atomically replaces the snapshot with payload and truncates
// the journal. The write-temp + rename + directory-fsync sequence means
// a crash at any point leaves either the old snapshot (journal intact,
// replay as before) or the new one (journal records now superseded by
// seq-gating).
func (s *Store) Snapshot(payload []byte) error {
	s.seq++
	tmp := filepath.Join(s.dir, snapshotTemp)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	var hdr [21]byte
	binary.LittleEndian.PutUint32(hdr[0:4], snapshotMagic)
	hdr[4] = storeVersion
	binary.LittleEndian.PutUint64(hdr[5:13], s.seq)
	binary.LittleEndian.PutUint32(hdr[13:17], recordCRC(s.seq, payload))
	binary.LittleEndian.PutUint32(hdr[17:21], uint32(len(payload)))
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	if _, err := f.Write(payload); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, snapshotName)); err != nil {
		return err
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}
	// Rotate: everything in the journal is now superseded by the
	// snapshot's seq, so reclaim the space.
	if err := s.f.Truncate(0); err != nil {
		return err
	}
	if _, err := s.f.Seek(0, 0); err != nil {
		return err
	}
	return s.f.Sync()
}

// Close fsyncs and closes the journal file.
func (s *Store) Close() error {
	if s.f == nil {
		return nil
	}
	serr := s.f.Sync()
	cerr := s.f.Close()
	s.f = nil
	if serr != nil {
		return serr
	}
	return cerr
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// TruncateAfterSeq rolls the journal in dir back so the last record has a
// sequence number at or below seq, discarding everything committed after
// it. The fleet daemon uses this on resume: its day-boundary snapshot
// names the migration-log seq at the start of the day, the tail of the
// log (the partial day the crash interrupted) is cut back to that point,
// and the day is re-run deterministically — regenerating the same records
// the dead process wrote, so the healed log is bit-identical to one from
// a process that never died.
//
// A snapshot newer than seq cannot be rolled back (snapshots are
// destructive compaction) and is an error. The store must not be open.
func TruncateAfterSeq(dir string, seq uint64) error {
	res, err := Load(dir)
	if err != nil {
		return err
	}
	if res.Snapshot != nil && res.SnapshotSeq > seq {
		return fmt.Errorf("journal: cannot truncate to seq %d: snapshot already at seq %d", seq, res.SnapshotSeq)
	}
	raw, err := os.ReadFile(filepath.Join(dir, journalName))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	off := 0
	for {
		_, rseq, n := parseRecord(raw[off:])
		if n == 0 || rseq > seq {
			break
		}
		off += n
	}
	return os.Truncate(filepath.Join(dir, journalName), int64(off))
}

// TruncateTail chops n bytes off the end of the journal file — the test
// and chaos-harness hook that manufactures a torn tail exactly the way a
// mid-write power cut does. Chopping more bytes than the file holds
// empties it.
func TruncateTail(dir string, n int64) error {
	jpath := filepath.Join(dir, journalName)
	st, err := os.Stat(jpath)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	size := st.Size() - n
	if size < 0 {
		size = 0
	}
	return os.Truncate(jpath, size)
}

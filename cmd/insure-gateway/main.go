// Command insure-gateway serves interactive queries against a live
// simulated plant with energy-aware admission control: the serving plane
// from internal/gateway fronting one InSURE-managed system. Requests are
// admitted, queued, or shed according to the plant's state of charge, the
// supply forecast, and the survivability ladder; every rejection carries a
// forecast-derived Retry-After, every admission an energy-price account.
//
// Usage:
//
//	insure-gateway -addr :8080 -weather sunny -accel 60
//	insure-gateway -addr :8080 -weather rainy -peak 250 -soc 0.48
//	insure-gateway -loadtest
//	insure-gateway -loadtest -loadtest-qps 5,15,40 -json sweep.json
//
// Live mode endpoints:
//
//	GET /query?class=critical|standard|besteffort — admit one request
//	GET /stats    — cumulative serving-plane accounting
//	GET /metrics  — Prometheus exposition (plant + gateway)
//	GET /healthz  — liveness; 503 "draining" at the Blackout rung
//
// The daemon simulates one plant-day at -accel× wall speed. When the day
// completes the plant state freezes (the gateway keeps serving against the
// final state); -loadtest is the batch alternative that replays a full
// QPS × weather sweep and exits.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"insure/internal/core"
	"insure/internal/gateway"
	"insure/internal/genset"
	"insure/internal/sim"
	"insure/internal/solar"
	"insure/internal/telemetry"
	"insure/internal/trace"
	"insure/internal/units"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("insure-gateway: ")

	addr := flag.String("addr", ":8080", "HTTP listen address")
	weather := flag.String("weather", "sunny", "sky model: sunny, cloudy, rainy")
	seed := flag.Int64("seed", 2015, "trace seed")
	peak := flag.Float64("peak", 0, "scale trace to this peak power (W); 0 = natural")
	initSoC := flag.Float64("soc", 0, "initial battery state of charge; 0 = sim default")
	batteries := flag.Int("batteries", 6, "battery units in the e-Buffer")
	servers := flag.Int("servers", 4, "server nodes in the cluster")
	survival := flag.Bool("survival", true, "arm the survivability ladder (the gateway's mode source)")
	gensetFit := flag.Bool("genset", false, "fit a diesel backup generator")
	accel := flag.Float64("accel", 60, "simulated seconds per wall second")
	baseQPS := flag.Float64("base-qps", 25, "full-capacity serving rate at ModeNormal")
	loadtest := flag.Bool("loadtest", false, "run the QPS x SoC load sweep instead of serving, print results, exit")
	ltQPS := flag.String("loadtest-qps", "5,15,40", "comma-separated offered QPS levels for -loadtest")
	ltSites := flag.Int("loadtest-sites", 2, "fleet sites for -loadtest")
	jsonOut := flag.String("json", "", "with -loadtest, also write the serving_plane JSON block to this path")
	flag.Parse()

	cond, err := parseWeather(*weather)
	if err != nil {
		log.Fatal(err)
	}

	if *loadtest {
		runLoadtest(cond, *seed, *ltQPS, *ltSites, *batteries, *servers, *baseQPS, *peak, *initSoC, *jsonOut)
		return
	}

	// Build the plant: one simulated system under the InSURE manager with
	// the survivability ladder armed (without it the gateway would never
	// leave ModeNormal and admission would be capacity-only).
	tr := trace.Synthesize(cond, *seed, time.Second)
	if *peak > 0 {
		tr = tr.ScaleToPeak(units.Watt(*peak))
	}
	scfg := sim.DefaultConfig(tr)
	scfg.BatteryCount = *batteries
	scfg.ServerCount = *servers
	if *initSoC > 0 {
		scfg.InitialSoC = *initSoC
	}
	if *gensetFit {
		scfg.Secondary = genset.New(genset.DieselParams())
	}
	sys, err := sim.New(scfg, sim.NewSeismicSink())
	if err != nil {
		log.Fatal(err)
	}
	mcfg := core.DefaultConfig()
	if *survival {
		mcfg.Survival = core.DefaultSurvivalConfig()
	}
	mgr := core.New(mcfg, *batteries)

	reg := telemetry.NewRegistry()
	sys.AttachTelemetry(reg)
	mgr.AttachTelemetry(reg)

	gcfg := gateway.DefaultConfig()
	gcfg.BaseQPS = *baseQPS
	plant := &lockedPlant{inner: gateway.SimPlant{Sys: sys, Mgr: mgr}}
	gw := gateway.New(gcfg, plant)
	gw.AttachTelemetry(reg)

	// The sim clock, readable from every HTTP goroutine.
	var clock atomic.Int64
	lo, hi := sys.Span()
	clock.Store(int64(lo))
	now := func() time.Duration { return time.Duration(clock.Load()) }

	// Tick loop: advance the plant at accel× wall speed. Lock order is
	// gateway.mu → plant.mu (Advance and Admit take the gateway lock, then
	// read the plant), so the plant lock is released before Advance.
	go func() {
		step := scfg.Step
		tod := lo
		wall := time.NewTicker(100 * time.Millisecond)
		defer wall.Stop()
		var due float64
		for range wall.C {
			due += *accel * 0.1
			for due >= step.Seconds() {
				due -= step.Seconds()
				if tod >= hi {
					continue
				}
				plant.mu.Lock()
				sys.Tick(tod, mgr)
				plant.mu.Unlock()
				tod += step
				gw.Advance(tod)
				clock.Store(int64(tod))
				reg.SetClock(tod)
				if tod >= hi {
					log.Printf("simulated day complete at %v; plant state frozen, still serving", tod)
				}
			}
		}
	}()

	srv := &gateway.Server{GW: gw, Now: now}
	mux := srv.Mux()
	mux.Handle("/metrics", reg.MetricsHandler())
	mux.Handle("/healthz", reg.HealthzHandler())

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	log.Printf("serving plane on http://%s/query (weather %s, accel %.0fx, base %.0f qps)",
		ln.Addr(), *weather, *accel, *baseQPS)
	if err := serveGateway(ctx, ln, mux, gw, now, drainGrace); err != nil {
		log.Fatal(err)
	}
	log.Print("signal received; drained and stopped")
}

// drainGrace is how long a shutting-down gateway keeps answering — new
// queries get 503 + Retry-After instead of connection errors — before the
// listener closes. In-flight requests are always allowed to finish.
const drainGrace = 2 * time.Second

// drainRetrySeconds is the Retry-After hint handed to queries that arrive
// while the gateway is draining.
const drainRetrySeconds = 30

// serveGateway runs the serving plane until ctx is cancelled (SIGINT or
// SIGTERM in main), then shuts down gracefully: admission stops immediately
// — /query answers 503 with a Retry-After for one grace window — queued
// tickets are shed as ShedDrain, in-flight requests complete, and the
// listener closes.
func serveGateway(ctx context.Context, ln net.Listener, handler http.Handler, gw *gateway.Gateway, now func() time.Duration, grace time.Duration) error {
	var draining atomic.Bool
	wrapped := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if draining.Load() && r.URL.Path == "/query" {
			w.Header().Set("Retry-After", strconv.Itoa(drainRetrySeconds))
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		handler.ServeHTTP(w, r)
	})
	srv := &http.Server{Handler: wrapped}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	draining.Store(true)
	gw.Drain(now())
	time.Sleep(grace)
	sdCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(sdCtx); err != nil {
		return err
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// lockedPlant serialises plant reads against the tick loop: the simulated
// System is not internally synchronised, and gateway admissions read it
// from HTTP goroutines while the tick loop mutates it.
type lockedPlant struct {
	mu    sync.Mutex
	inner gateway.SimPlant
}

func (p *lockedPlant) State(now time.Duration) gateway.State {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.inner.State(now)
}

func (p *lockedPlant) ForecastW(at time.Duration) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.inner.ForecastW(at)
}

func parseWeather(s string) (solar.Condition, error) {
	switch s {
	case "sunny":
		return solar.Sunny, nil
	case "cloudy":
		return solar.Cloudy, nil
	case "rainy":
		return solar.Rainy, nil
	}
	return solar.Sunny, fmt.Errorf("unknown weather %q", s)
}

// runLoadtest executes the sweep and prints the table BENCH.json records.
func runLoadtest(cond solar.Condition, seed int64, qpsSpec string, sites, batteries, servers int, baseQPS, peak, initSoC float64, jsonOut string) {
	var qps []float64
	for _, part := range strings.Split(qpsSpec, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || v <= 0 {
			log.Fatalf("-loadtest-qps %q: need positive numbers", part)
		}
		qps = append(qps, v)
	}
	cfg := gateway.DefaultLoadConfig(seed)
	cfg.Sites = sites
	cfg.QPS = qps
	cfg.Batteries = batteries
	cfg.Servers = servers
	cfg.Gateway.BaseQPS = baseQPS
	// -weather/-peak/-soc override the first regime when given explicitly;
	// the default sweep keeps both the sunny and storm regimes.
	if peak > 0 || initSoC > 0 || cond != solar.Sunny {
		cfg.Regimes = []gateway.Regime{{Name: cond.String(), Weather: cond, PeakW: peak, InitialSoC: initSoC}}
	}

	start := time.Now()
	sp, err := gateway.RunLoadTest(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serving-plane sweep: %d sites, %.0f s span, %d requests replayed in %.1fs wall\n\n",
		sp.Sites, sp.SpanSeconds, sp.RequestsTotal, time.Since(start).Seconds())
	for _, rr := range sp.Regimes {
		fmt.Printf("%s:\n", rr.Name)
		fmt.Printf("  %8s %12s %9s %9s %9s %8s %8s %7s %7s %7s  %s\n",
			"qps", "req/day", "admitted", "queued", "shed", "p50 ms", "p99 ms", "soc", "minsoc", "Wh", "modes")
		for _, p := range rr.Points {
			fmt.Printf("  %8.0f %12.0f %9d %9d %9d %8.1f %8.1f %7.2f %7.2f %7.1f  %s\n",
				p.QPS, p.PerDay, p.Admitted, p.Queued, p.Shed, p.P50Ms, p.P99Ms,
				p.MeanSoC, p.MinSoC, p.EnergyWh, strings.Join(p.ModesSeen, ","))
			if p.AdmittedDropped != 0 {
				log.Fatalf("invariant violated: %d requests admitted then dropped", p.AdmittedDropped)
			}
		}
		fmt.Println()
	}
	if jsonOut != "" {
		f, err := os.Create(jsonOut)
		if err != nil {
			log.Fatal(err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sp); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote serving_plane block to %s\n", jsonOut)
	}
}

package main

import (
	"context"
	"log"
	"sync/atomic"
	"time"

	"insure/internal/relay"
	"insure/internal/telemetry"
)

// supervisor runs the panel's real-time control loop under a watchdog. Two
// failure modes are handled in-process:
//
//   - panic: the loop goroutine recovers, reports, and the watchdog starts
//     a fresh incarnation;
//   - wedge: no heartbeat within Patience (a hook or a journal fsync has
//     stalled) — the incarnation is abandoned and superseded.
//
// A goroutine cannot be killed, so abandonment is generation-fenced: every
// incarnation re-checks the generation counter between stages (after the
// hook, before the plant tick, before the heartbeat) and exits silently
// once superseded. After each restart the plant control state is re-synced
// from the journal and the relay fabric is re-driven from the restored
// coil intent, so a half-applied tick cannot linger. The fence cannot
// preempt a goroutine wedged inside the physics tick itself — that is the
// process-restart case, which the journal also covers (see restoreInto).
type supervisor struct {
	p  *panel
	ps *panelStore // nil = run without persistence

	// Interval is the real-time tick period; Patience is how long the
	// watchdog waits for a heartbeat before declaring the loop wedged.
	Interval time.Duration
	Patience time.Duration

	// onTick, when set, runs inside the loop before each plant tick. The
	// daemon hangs the fault injector here; tests hang wedges and panics.
	onTick func(elapsed time.Duration)

	gen       atomic.Int64
	beat      atomic.Int64 // wall-clock nanos of the last completed tick
	restarts  atomic.Int64
	reapplied atomic.Int64 // relay pairs re-driven across all recoveries
	elapsed   atomic.Int64 // sim-elapsed nanos; survives restarts
	crashCh   chan int64   // generation of a panicked incarnation
}

func newSupervisor(p *panel, ps *panelStore) *supervisor {
	return &supervisor{
		p:        p,
		ps:       ps,
		Interval: time.Second,
		Patience: 5 * time.Second,
		crashCh:  make(chan int64, 4),
	}
}

// Restarts reports how many times the watchdog replaced the control loop.
func (s *supervisor) Restarts() int64 { return s.restarts.Load() }

// Reapplied reports how many relay pairs recovery re-drove in total.
func (s *supervisor) Reapplied() int64 { return s.reapplied.Load() }

// Elapsed reports the sim-elapsed clock.
func (s *supervisor) Elapsed() time.Duration { return time.Duration(s.elapsed.Load()) }

// setElapsed seeds the clock, e.g. from a boot-time journal restore.
func (s *supervisor) setElapsed(d time.Duration) { s.elapsed.Store(int64(d)) }

// registerTelemetry exposes the watchdog's counters on reg.
func (s *supervisor) registerTelemetry(reg *telemetry.Registry) {
	reg.FuncGauge("insure_plcd_loop_restarts",
		"Control-loop incarnations the watchdog has replaced after a panic or wedge.",
		func() float64 { return float64(s.Restarts()) })
	reg.FuncGauge("insure_plcd_relay_reapplied",
		"Relay pairs re-driven after a loop restart because the restored coil intent disagreed with the fabric.",
		func() float64 { return float64(s.Reapplied()) })
}

// Run drives the loop and its watchdog until ctx is cancelled.
func (s *supervisor) Run(ctx context.Context) {
	s.beat.Store(time.Now().UnixNano())
	go s.loop(ctx, s.gen.Load())

	patience := s.Patience
	if patience <= 0 {
		patience = 5 * time.Second
	}
	check := time.NewTicker(patience / 4)
	defer check.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case g := <-s.crashCh:
			if g != s.gen.Load() {
				continue // a stale incarnation's death rattle
			}
			s.restart(ctx, "panicked")
		case <-check.C:
			if time.Duration(time.Now().UnixNano()-s.beat.Load()) > patience {
				s.restart(ctx, "wedged")
			}
		}
	}
}

// restart supersedes the current incarnation, re-syncs the plant control
// state from the journal, and launches a fresh loop.
func (s *supervisor) restart(ctx context.Context, why string) {
	gen := s.gen.Add(1)
	n := s.resync()
	s.restarts.Add(1)
	s.beat.Store(time.Now().UnixNano())
	log.Printf("control loop %s: restarted (incarnation %d), state re-synced from journal, %d relay pairs re-driven", why, gen, n)
	go s.loop(ctx, gen)
}

// resync restores the newest journaled state into the live panel and
// re-drives the relay fabric from the restored coil intent, returning how
// many pairs disagreed.
func (s *supervisor) resync() int {
	if s.ps == nil {
		return 0
	}
	if _, ok, err := s.ps.restoreInto(s.p); err != nil || !ok {
		if err != nil {
			log.Printf("state re-sync failed, continuing with live state: %v", err)
		}
		return 0
	}
	before := make([]relay.Mode, s.p.n)
	for i := range before {
		before[i] = s.p.fabric.Pair(i).Mode()
	}
	s.p.controller.ScanNow()
	fixed := 0
	for i := range before {
		if s.p.fabric.Pair(i).Mode() != before[i] {
			fixed++
		}
	}
	s.reapplied.Add(int64(fixed))
	return fixed
}

// loop is one control-loop incarnation.
func (s *supervisor) loop(ctx context.Context, gen int64) {
	defer func() {
		if r := recover(); r != nil {
			log.Printf("control loop panic: %v", r)
			select {
			case s.crashCh <- gen:
			default:
			}
		}
	}()
	t := time.NewTicker(s.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		if s.gen.Load() != gen {
			return // superseded while we slept
		}
		elapsed := time.Duration(s.elapsed.Add(int64(s.Interval)))
		if s.onTick != nil {
			s.onTick(elapsed)
		}
		if s.gen.Load() != gen {
			return // the hook wedged and we were abandoned: do not touch the plant
		}
		s.p.tick(s.Interval, elapsed)
		if s.ps != nil {
			s.ps.commit(s.p, elapsed)
		}
		if s.gen.Load() != gen {
			return // don't heartbeat for a stale incarnation
		}
		s.beat.Store(time.Now().UnixNano())
	}
}

package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"insure/internal/core"
	"insure/internal/experiments"
	"insure/internal/gateway"
	"insure/internal/sim"
	"insure/internal/trace"
)

// benchCase is one micro/macro benchmark result in BENCH.json.
type benchCase struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// engineTiming compares the serial and parallel experiment engines on one
// full evaluation each. Like the campaign-scaling gate, it refuses to
// report a "speedup" measured on a single CPU — there parallelism cannot
// help and the number would only contradict the gate's skipped-single-cpu
// verdict — but it always verifies the two engines render identical
// tables, which is the equivalence that matters on any machine.
type engineTiming struct {
	Workers int `json:"workers"`
	// Status is "measured" on a multi-core machine, "skipped-single-cpu"
	// when GOMAXPROCS is 1 and the serial/parallel comparison is
	// meaningless.
	Status          string  `json:"status"`
	SerialSeconds   float64 `json:"serial_seconds"`
	ParallelSeconds float64 `json:"parallel_seconds"`
	// Speedup is only present when Status is "measured".
	Speedup float64 `json:"speedup,omitempty"`
	// TablesIdentical records that the parallel engine rendered exactly
	// the serial engine's output.
	TablesIdentical bool `json:"tables_identical"`
}

// benchReport is the BENCH.json document.
type benchReport struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// PlantYearsPerSec is the headline throughput number: the best
	// plant-years/sec achieved anywhere on the campaign-scaling matrix.
	PlantYearsPerSec float64         `json:"plant_years_per_sec"`
	Benchmarks       []benchCase     `json:"benchmarks"`
	Engine           engineTiming    `json:"experiment_engine"`
	CampaignScaling  campaignScaling `json:"campaign_scaling"`
	// ServingPlane is the gateway load sweep: p50/p99 latency vs offered
	// QPS vs the plant's energy regime (internal/gateway's harness).
	ServingPlane *gateway.ServingPlane `json:"serving_plane"`
}

// record converts a testing.BenchmarkResult, carrying through any domain
// metrics reported with b.ReportMetric.
func record(name string, r testing.BenchmarkResult) benchCase {
	c := benchCase{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
	if len(r.Extra) > 0 {
		c.Metrics = make(map[string]float64, len(r.Extra))
		for k, v := range r.Extra {
			c.Metrics[k] = v
		}
	}
	return c
}

// writeBenchJSON runs the performance suite — the simulation hot path, a
// full-day macro run with domain metrics, a serial-vs-parallel timing of
// the whole evaluation, and the campaign-scaling matrix — and writes the
// machine-readable report.
func writeBenchJSON(path string, workers, scalingCells int) error {
	rep := benchReport{
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}

	fmt.Fprintln(os.Stderr, "benchmarking simulation hot path...")
	rep.Benchmarks = append(rep.Benchmarks,
		record("system_tick", testing.Benchmark(benchSystemTick)),
		record("plc_scan", testing.Benchmark(benchPLCScan)),
		record("full_day_insure", testing.Benchmark(benchFullDay)),
	)

	fmt.Fprintln(os.Stderr, "timing serial experiment engine...")
	t0 := time.Now()
	serialTables := experiments.RunAll()
	rep.Engine.SerialSeconds = time.Since(t0).Seconds()

	fmt.Fprintln(os.Stderr, "timing parallel experiment engine...")
	t1 := time.Now()
	parallelTables, err := experiments.RunAllParallel(context.Background(), workers)
	if err != nil {
		return err
	}
	rep.Engine.ParallelSeconds = time.Since(t1).Seconds()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	rep.Engine.Workers = workers
	if runtime.GOMAXPROCS(0) < 2 {
		rep.Engine.Status = gateSkipped1CPU
	} else {
		rep.Engine.Status = "measured"
		if rep.Engine.ParallelSeconds > 0 {
			rep.Engine.Speedup = rep.Engine.SerialSeconds / rep.Engine.ParallelSeconds
		}
	}
	if err := compareTables(serialTables, parallelTables); err != nil {
		return err
	}
	rep.Engine.TablesIdentical = true

	fmt.Fprintln(os.Stderr, "measuring campaign scaling...")
	rep.CampaignScaling, err = measureScaling(scalingCells)
	if err != nil {
		return err
	}
	for _, pt := range rep.CampaignScaling.Points {
		if pt.PlantYearsPerSec > rep.PlantYearsPerSec {
			rep.PlantYearsPerSec = pt.PlantYearsPerSec
		}
	}

	fmt.Fprintln(os.Stderr, "sweeping serving-plane load harness...")
	rep.ServingPlane, err = gateway.RunLoadTest(gateway.DefaultLoadConfig(2015))
	if err != nil {
		return err
	}
	for _, rr := range rep.ServingPlane.Regimes {
		for _, pt := range rr.Points {
			if pt.AdmittedDropped != 0 {
				return fmt.Errorf("serving plane: %d requests admitted then dropped in %s @ %g qps",
					pt.AdmittedDropped, rr.Name, pt.QPS)
			}
		}
	}

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	engine := fmt.Sprintf("engine speedup %.2fx on %d workers", rep.Engine.Speedup, rep.Engine.Workers)
	if rep.Engine.Status == gateSkipped1CPU {
		engine = "engine comparison skipped-single-cpu (tables identical)"
	}
	fmt.Fprintf(os.Stderr, "wrote %s (tick %.0f ns/op, %d allocs/op; %.4f plant-years/sec; %s; gate %s)\n",
		path, rep.Benchmarks[0].NsPerOp, rep.Benchmarks[0].AllocsPerOp,
		rep.PlantYearsPerSec, engine,
		rep.CampaignScaling.Gate.Status)
	return nil
}

// compareTables asserts the parallel engine produced exactly the serial
// engine's tables, rendered byte-for-byte — the equivalence contract that
// holds regardless of core count.
func compareTables(serial, parallel []*experiments.Table) error {
	if len(serial) != len(parallel) {
		return fmt.Errorf("engine mismatch: serial produced %d tables, parallel %d",
			len(serial), len(parallel))
	}
	for i := range serial {
		var a, b bytes.Buffer
		if err := serial[i].Render(&a); err != nil {
			return err
		}
		if err := parallel[i].Render(&b); err != nil {
			return err
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			return fmt.Errorf("engine mismatch: table %d (%s) rendered differently in parallel",
				i, serial[i].ID)
		}
	}
	return nil
}

func newBenchSystem(b *testing.B) (*sim.System, sim.Manager) {
	cfg := sim.DefaultConfig(trace.FullSystemHigh())
	sys, err := sim.New(cfg, sim.NewSeismicSink())
	if err != nil {
		b.Fatal(err)
	}
	return sys, core.New(core.DefaultConfig(), cfg.BatteryCount)
}

func benchSystemTick(b *testing.B) {
	sys, mgr := newBenchSystem(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tod := 8*time.Hour + time.Duration(i%40000)*time.Second
		if tod == 8*time.Hour {
			// Day wrap: drop the previous "day's" frames. Without this the
			// recorder grows past its one-day pre-size forever, and the
			// amortized slice growth shows up as ~41 B/op at 0 allocs/op.
			sys.Recorder().Reset()
		}
		sys.Tick(tod, mgr)
	}
}

func benchPLCScan(b *testing.B) {
	sys, _ := newBenchSystem(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.PLC.ScanNow()
	}
}

func benchFullDay(b *testing.B) {
	tr := trace.FullSystemHigh()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := sim.DefaultConfig(tr)
		sys, err := sim.New(cfg, sim.NewSeismicSink())
		if err != nil {
			b.Fatal(err)
		}
		res := sys.Run(core.New(core.DefaultConfig(), cfg.BatteryCount))
		b.ReportMetric(res.UptimeFrac*100, "uptime_pct")
		b.ReportMetric(res.ProcessedGB, "gb_per_day")
		b.ReportMetric(float64(res.WearAhPerUnit), "wear_ah_per_unit")
	}
}

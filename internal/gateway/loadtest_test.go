package gateway

import (
	"reflect"
	"testing"

	"insure/internal/solar"
)

// TestLoadTestSmoke runs a one-site, one-rate sweep end to end and checks
// the BENCH.json block's internal consistency.
func TestLoadTestSmoke(t *testing.T) {
	cfg := LoadConfig{
		Seed:      3,
		Sites:     1,
		QPS:       []float64{2},
		Regimes:   []Regime{{Name: "sunny", Weather: solar.Sunny, InitialSoC: 0.55}},
		Batteries: 4,
		Servers:   2,
	}
	sp, err := RunLoadTest(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Regimes) != 1 || len(sp.Regimes[0].Points) != 1 {
		t.Fatalf("want 1 regime x 1 point, got %+v", sp)
	}
	pt := sp.Regimes[0].Points[0]
	if pt.Requests == 0 || pt.Requests != sp.RequestsTotal {
		t.Fatalf("requests %d vs total %d", pt.Requests, sp.RequestsTotal)
	}
	if got := pt.Admitted + pt.Shed; got != pt.Requests {
		t.Fatalf("admitted %d + shed %d = %d, want %d (queue must drain)",
			pt.Admitted, pt.Shed, got, pt.Requests)
	}
	if pt.AdmittedDropped != 0 {
		t.Fatalf("admitted-then-dropped = %d, want 0", pt.AdmittedDropped)
	}
	if pt.Admitted == 0 || pt.P50Ms <= 0 || pt.P99Ms < pt.P50Ms {
		t.Fatalf("latency stats malformed: admitted %d p50 %.1f p99 %.1f",
			pt.Admitted, pt.P50Ms, pt.P99Ms)
	}
	if pt.PerDay != 2*86400 {
		t.Fatalf("per-day extrapolation %.0f, want %d", pt.PerDay, 2*86400)
	}
	if pt.MinSoC <= 0 || pt.MeanSoC < pt.MinSoC {
		t.Fatalf("SoC stats malformed: mean %.2f min %.2f", pt.MeanSoC, pt.MinSoC)
	}
	if len(pt.ModesSeen) == 0 {
		t.Fatal("no ladder rungs recorded")
	}
	if pt.EnergyWh <= 0 || pt.CostUSD <= 0 {
		t.Fatalf("energy account empty: %.2f Wh $%.6f", pt.EnergyWh, pt.CostUSD)
	}
	// Determinism: the same config must reproduce the same numbers.
	sp2, err := RunLoadTest(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sp2.Regimes[0].Points[0], pt) {
		t.Fatalf("sweep not deterministic:\n%+v\n%+v", sp2.Regimes[0].Points[0], pt)
	}
}

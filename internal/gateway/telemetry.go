package gateway

import "insure/internal/telemetry"

// gwTelemetry mirrors the gateway's accounting into the live registry.
// The Stats fields stay authoritative for tests and the load harness; the
// registry copies are the concurrency-safe view a /metrics scrape reads
// while the admission path runs.
type gwTelemetry struct {
	admitted [NumClasses]*telemetry.Counter
	queued   [NumClasses]*telemetry.Counter
	shed     [NumClasses]*telemetry.Counter
	shedBy   [numShedReasons]*telemetry.Counter
	latency  [NumClasses]*telemetry.Histogram

	degraded        *telemetry.Counter
	admittedDropped *telemetry.Counter
	queueDepth      *telemetry.Gauge
}

// AttachTelemetry registers the gateway's serving-plane metrics on reg:
// per-class admitted/queued/shed counters, shed-reason counters, per-class
// latency histograms, live queue depth, the degraded-response counter, the
// energy/cost account, and the admitted-then-dropped invariant counter
// (which must scrape as zero forever). Call it once, before serving.
func (g *Gateway) AttachTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	t := &gwTelemetry{}
	for c := Class(0); c < NumClasses; c++ {
		lbl := telemetry.Label{Key: "class", Value: c.String()}
		t.admitted[c] = reg.Counter("insure_gateway_admitted_total",
			"Requests admitted (service began) by class.", lbl)
		t.queued[c] = reg.Counter("insure_gateway_queued_total",
			"Requests that entered the deadline queue by class.", lbl)
		t.shed[c] = reg.Counter("insure_gateway_shed_total",
			"Requests rejected with a retry-after hint by class.", lbl)
		t.latency[c] = reg.Histogram("insure_gateway_latency_seconds",
			"End-to-end simulated request latency (queue wait + service).",
			telemetry.DefTimeBuckets, lbl)
	}
	for why := ShedNone + 1; why < numShedReasons; why++ {
		t.shedBy[why] = reg.Counter("insure_gateway_shed_reason_total",
			"Requests shed by cause (mode, soc, capacity, deadline, retriage, drain).",
			telemetry.Label{Key: "reason", Value: why.String()})
	}
	t.degraded = reg.Counter("insure_gateway_degraded_total",
		"Responses served degraded (reduced payload) under emergency rungs.")
	t.admittedDropped = reg.Counter("insure_gateway_admitted_dropped_total",
		"Requests dropped after admission. Zero by construction; nonzero is a bug.")
	t.queueDepth = reg.Gauge("insure_gateway_queue_depth",
		"Requests currently waiting in the deadline queue, all classes.")
	reg.FuncGauge("insure_gateway_energy_wh_total",
		"Metered serving energy across all admitted requests, watt-hours.",
		func() float64 { return g.Stats().EnergyWh })
	reg.FuncGauge("insure_gateway_cost_usd_total",
		"Marginal energy cost of all admitted requests, dollars.",
		func() float64 { return g.Stats().CostUSD })
	g.mu.Lock()
	g.tel = t
	g.mu.Unlock()
}

package diskfault

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"insure/internal/journal"
)

// script runs a fixed op sequence through an FS rooted at dir and
// returns a digest of every read plus the fault stats.
func script(t *testing.T, fsys *FS, dir string) ([][]byte, Stats) {
	t.Helper()
	if err := fsys.MkdirAll(dir); err != nil {
		t.Fatal(err)
	}
	var reads [][]byte
	for i := 0; i < 8; i++ {
		name := filepath.Join(dir, "f"+string(rune('a'+i%3))+".bin")
		f, err := fsys.OpenFile(name, os.O_CREATE|os.O_TRUNC|os.O_WRONLY)
		if err != nil {
			t.Fatal(err)
		}
		_, werr := f.Write(bytes.Repeat([]byte{byte(i)}, 64))
		serr := f.Sync()
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		_ = werr
		_ = serr
		b, rerr := fsys.ReadFile(name)
		if rerr != nil {
			b = nil
		}
		reads = append(reads, append([]byte(nil), b...))
	}
	return reads, fsys.Stats()
}

func TestSameSeedSameFates(t *testing.T) {
	cfg := Config{Seed: 42, TornWrite: 0.2, WriteFail: 0.1, SyncFail: 0.15, BitRot: 0.3, ShortRead: 0.2, LoseRename: 0.2}

	dirA := t.TempDir()
	cfgA := cfg
	cfgA.Root = dirA
	readsA, statsA := script(t, New(cfgA, nil), dirA)

	dirB := t.TempDir()
	cfgB := cfg
	cfgB.Root = dirB
	readsB, statsB := script(t, New(cfgB, nil), dirB)

	if statsA != statsB {
		t.Errorf("stats differ across identical runs: %+v vs %+v", statsA, statsB)
	}
	for i := range readsA {
		if !bytes.Equal(readsA[i], readsB[i]) {
			t.Errorf("read %d differs across identical runs", i)
		}
	}
	if statsA == (Stats{}) {
		t.Error("script injected no faults; rates too low to test anything")
	}
}

func TestBitRotIsStableUntilRewrite(t *testing.T) {
	dir := t.TempDir()
	fsys := New(Config{Seed: 7, Root: dir, BitRot: 1}, nil)
	name := filepath.Join(dir, "decay.bin")
	payload := bytes.Repeat([]byte{0x55}, 512)

	f, err := fsys.OpenFile(name, os.O_CREATE|os.O_TRUNC|os.O_WRONLY)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	r1, err := fsys.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := fsys.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(r1, payload) {
		t.Fatal("BitRot=1 did not decay the file")
	}
	if !bytes.Equal(r1, r2) {
		t.Fatal("decay not stable: two reads saw different bits")
	}
	diff := 0
	for i := range r1 {
		if r1[i] != payload[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Errorf("decay touched %d bytes, want exactly 1 (single bit flip)", diff)
	}

	// Rewriting the file re-rolls the rot lottery at a new position: the
	// new generation decays independently of the old one.
	f, err = fsys.OpenFile(name, os.O_CREATE|os.O_TRUNC|os.O_WRONLY)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	r3, err := fsys.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(r1, r3) {
		t.Error("rewrite kept the old generation's decay; generation not re-keyed")
	}
}

func TestTornWritePoisonsStore(t *testing.T) {
	dir := t.TempDir()
	fsys := New(Config{Seed: 3, Root: dir, TornWrite: 1}, nil)
	s, err := journal.OpenFS(fsys, dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(bytes.Repeat([]byte{1}, 128)); err == nil {
		t.Fatal("torn write not surfaced")
	}
	if s.Failed() == nil {
		t.Fatal("store not poisoned after torn write")
	}
	if _, err := s.Append([]byte("x")); !errors.Is(err, journal.ErrPoisoned) {
		t.Fatalf("append after torn write = %v, want ErrPoisoned", err)
	}
	_ = s.Close()
}

func TestDegradedWindowFailsFsync(t *testing.T) {
	dir := t.TempDir()
	fsys := New(Config{Seed: 5, Root: dir}, nil)
	s, err := journal.OpenFS(fsys, dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append([]byte("before")); err != nil {
		t.Fatal(err)
	}
	fsys.SetDegraded(true)
	if _, err := s.Append([]byte("during")); err == nil {
		t.Fatal("fsync in degraded window did not fail")
	}
	if s.Failed() == nil {
		t.Fatal("store not poisoned by degraded-window fsync")
	}
	_ = s.Close()

	// Window over: a rebuilt store on the same dir must work again and
	// must still hold the records whose commit was acknowledged.
	fsys.SetDegraded(false)
	s2, err := journal.OpenFS(fsys, dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Append([]byte("after")); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := journal.LoadFS(fsys, dir)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range res.Entries {
		if string(e) == "before" {
			found = true
		}
	}
	if !found {
		t.Error("acknowledged record lost across poison/rebuild")
	}
}

func TestJournalSurvivesRotWithScrub(t *testing.T) {
	dir := t.TempDir()
	fsys := New(Config{Seed: 11, Root: dir, BitRot: 0.4}, nil)
	s, err := journal.OpenFS(fsys, dir)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := 0; i < 30; i++ {
		if _, err := s.Append([]byte{0xCC, byte(i)}); err != nil {
			t.Fatal(err)
		}
		want++
		if i%10 == 9 {
			if err := s.Snapshot([]byte{0xDD, byte(i)}); err != nil {
				t.Fatal(err)
			}
			want = 0 // superseded
			if _, err := journal.ScrubDir(fsys, dir); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := journal.ScrubDir(fsys, dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Unrepairable != 0 {
		t.Fatalf("scrub left %d unrepairable under mirrored rot", rep.Unrepairable)
	}
	res, err := journal.LoadFS(fsys, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != want {
		t.Errorf("entries = %d, want %d after rot+scrub", len(res.Entries), want)
	}
}

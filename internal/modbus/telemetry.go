package modbus

import "insure/internal/telemetry"

// RegisterTelemetry exposes the client's fault counters on reg. The gauges
// read the client's atomic counters directly, so a live scrape observes an
// in-flight retry storm in real time and never blocks on the connection
// mutex (which is held across backoff sleeps).
func (c *Client) RegisterTelemetry(reg *telemetry.Registry) {
	reg.FuncGauge("insure_modbus_client_retries",
		"Round trips retried after a transport failure.",
		func() float64 { return float64(c.Retries()) })
	reg.FuncGauge("insure_modbus_client_timeouts",
		"Attempts that died on an I/O deadline (the panel went quiet).",
		func() float64 { return float64(c.Timeouts()) })
	reg.FuncGauge("insure_modbus_client_reconnects",
		"Times the client redialled the panel.",
		func() float64 { return float64(c.Reconnects()) })
}

// RegisterTelemetry exposes the server's session health on reg.
func (s *Server) RegisterTelemetry(reg *telemetry.Registry) {
	reg.FuncGauge("modbus_server_sessions_reaped",
		"Sessions dropped because the peer went silent past the idle timeout.",
		func() float64 { return float64(s.SessionsReaped()) })
}

// Package baseline implements the comparison power manager of §6.4: the
// approach of state-of-the-art grid-connected green data centers (Parasol/
// GreenSwitch [37], Oasis [38]) transplanted onto a standalone in-situ
// system.
//
// The baseline shaves peak power and tracks variable renewable generation,
// but — as the paper emphasises — it can neither reconfigure its energy
// buffer nor adapt its nodes to the off-grid supply:
//
//   - the battery array is a unified buffer: all units charge together or
//     discharge together, and when the pack voltage trips the protection
//     threshold the whole buffer disconnects (Fig 5's "Batteries Switched
//     Out") until it has recharged to the reconnect level;
//   - load allocation tracks the instantaneous solar budget with a fixed
//     battery allowance; there is no discharge-current capping, no duty
//     scaling, and no wear balancing.
package baseline

import (
	"time"

	"insure/internal/relay"
	"insure/internal/sim"
	"insure/internal/units"
	"insure/internal/workload"
)

// Config tunes the baseline.
type Config struct {
	// Period is the control interval (same as InSURE's for fairness).
	Period time.Duration
	// BatteryAllowance is the fixed battery power the planner assumes is
	// always available for peak shaving.
	BatteryAllowance units.Watt
	// ReconnectSoC is the level the pack must recharge to after a
	// protection trip before it reconnects (90%, like InSURE's target).
	ReconnectSoC float64
}

// DefaultConfig matches the paper's baseline description.
func DefaultConfig() Config {
	return Config{
		Period:           30 * time.Second,
		BatteryAllowance: 600,
		ReconnectSoC:     0.45,
	}
}

// Manager is the unified-buffer baseline.
type Manager struct {
	cfg Config

	started  bool
	lockout  bool // buffer disconnected after a protection trip
	targetVM int

	seenBrownouts int
	holdDownUntil time.Duration
	lastNow       time.Duration
}

var _ sim.Manager = (*Manager)(nil)

// New returns a baseline manager.
func New(cfg Config) *Manager { return &Manager{cfg: cfg} }

// Name implements sim.Manager.
func (m *Manager) Name() string { return "baseline" }

// Period implements sim.Manager.
func (m *Manager) Period() time.Duration { return m.cfg.Period }

// InLockout reports whether the unified buffer is disconnected.
func (m *Manager) InLockout() bool { return m.lockout }

// packSoC estimates the unified pack's state of charge from the mean
// transduced voltage.
func packSoC(sys *sim.System) float64 {
	p := sys.Config().BatteryParams
	var sum float64
	n := sys.Bank.Size()
	for i := 0; i < n; i++ {
		v, cur := sys.UnitReading(i)
		ocv := float64(v) + float64(cur)*p.InternalOhm
		sum += units.Clamp((ocv-float64(p.OCVEmpty))/float64(p.OCVFull-p.OCVEmpty), 0, 1)
	}
	return sum / float64(n)
}

// minPackVolt is the weakest unit's transduced terminal voltage: the
// protection circuit trips on the weakest series element.
func minPackVolt(sys *sim.System) units.Volt {
	min := units.Volt(99)
	for i := 0; i < sys.Bank.Size(); i++ {
		v, _ := sys.UnitReading(i)
		if v < min {
			min = v
		}
	}
	return min
}

// estPower predicts cluster draw for n VMs at full duty (the baseline
// never throttles frequency).
func estPower(sys *sim.System, n int) units.Watt {
	prof := sys.Config().ServerProfile
	if n <= 0 {
		return 0
	}
	span := float64(prof.PeakPower - prof.IdlePower)
	util := sys.Sink.Spec().Util
	full := n / prof.VMSlots
	rem := n % prof.VMSlots
	perNode := float64(prof.IdlePower) + span*util
	p := float64(full) * perNode
	if rem > 0 {
		p += float64(prof.IdlePower) + span*util*float64(rem)/float64(prof.VMSlots)
	}
	return units.Watt(p)
}

// Control implements sim.Manager.
func (m *Manager) Control(sys *sim.System, now time.Duration) {
	m.started = true

	// Day rollover (multi-day campaigns re-enter at a smaller
	// time-of-day): drop stale clock anchors and adopt the fresh plant's
	// counters.
	if now < m.lastNow {
		m.holdDownUntil = 0
		m.targetVM = 0
	}
	m.lastNow = now

	// Resync after a brownout shut the cluster down mid-period, with the
	// same restart hold-down InSURE uses.
	if b := sys.Brownouts(); b < m.seenBrownouts {
		m.seenBrownouts = b
	} else if b > m.seenBrownouts {
		m.seenBrownouts = b
		m.targetVM = 0
		m.holdDownUntil = now + 10*time.Minute
	}

	// Protection trip: the whole unified buffer disconnects at the cutoff
	// voltage and stays out until recharged (§2.3, Fig 5).
	cutoff := sys.Config().BatteryParams.CutoffVolt
	if !m.lockout && minPackVolt(sys) < cutoff {
		m.lockout = true
	}
	if m.lockout && packSoC(sys) >= m.cfg.ReconnectSoC {
		m.lockout = false
	}

	// Load plan: greedy solar tracking with the fixed battery allowance
	// (§6.4: the baseline cannot adapt its nodes to the off-grid supply).
	// A protection trip takes the whole system down (§2.3: "InS has to be
	// shut down and its solar energy utilization drops to zero") and every
	// watt of solar goes to recharging the pack.
	budget := sys.SolarNow() + m.cfg.BatteryAllowance
	target := 0
	if sys.InWindow(now) && sys.Sink.HasWork(now) && now >= m.holdDownUntil && !m.lockout {
		maxVMs := sys.Config().ServerProfile.VMSlots * sys.Config().ServerCount
		for n := maxVMs; n >= 1; n-- {
			if estPower(sys, n) <= budget {
				target = n
				break
			}
		}
	}
	// Batch loads never shrink a started allocation (shared physical
	// constraint), but the baseline greedily grows whenever the
	// instantaneous budget allows — it has no notion of Table 2's
	// efficiency sweet spot, so it rides the solar curve up to full width
	// and pays for it from the buffer in the afternoon.
	if sys.Sink.Spec().Kind == workload.Batch && m.targetVM > 0 && target > 0 && target < m.targetVM {
		target = m.targetVM
	}
	if target != m.targetVM {
		m.targetVM = target
		if target == 0 {
			sys.Cluster.Shutdown()
		} else {
			sys.Cluster.SetTargetVMs(target)
		}
	}

	// Unified buffer actuation: all units share one electrical role.
	deficit := sys.Cluster.Power() > sys.SolarNow()
	for i := 0; i < sys.Bank.Size(); i++ {
		switch {
		case m.lockout:
			// Protection keeps the pack on the charge bus only.
			sys.SetUnitMode(i, relay.Charging)
		case deficit:
			sys.SetUnitMode(i, relay.Discharging)
		default:
			sys.SetUnitMode(i, relay.Charging) // batch charging of the whole pack
		}
	}
	sys.PLC.ScanNow()
}

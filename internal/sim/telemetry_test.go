package sim_test

import (
	"strings"
	"testing"
	"time"

	"insure/internal/core"
	"insure/internal/genset"
	"insure/internal/sim"
	"insure/internal/telemetry"
	"insure/internal/telemetry/promtest"
	"insure/internal/trace"
)

// TestAttachTelemetryEndToEnd runs an instrumented, managed plant through
// the morning commissioning ramp and checks the registry reflects what the
// plant actually did: the clock follows sim time, every unit publishes SoC,
// the PLC scan histogram ticks once per simulation second, and the relay
// settle histogram saw the commissioning mode transitions.
func TestAttachTelemetryEndToEnd(t *testing.T) {
	cfg := sim.DefaultConfig(trace.FullSystemHigh())
	sys, err := sim.New(cfg, sim.NewSeismicSink())
	if err != nil {
		t.Fatal(err)
	}
	mgr := core.New(core.DefaultConfig(), cfg.BatteryCount)
	reg := telemetry.NewRegistry()
	sys.AttachTelemetry(reg)
	mgr.AttachTelemetry(reg)

	start := 5 * time.Hour
	end := 10 * time.Hour
	for tod := start; tod < end; tod += cfg.Step {
		sys.Tick(tod, mgr)
	}

	snap := reg.Snapshot()
	if got := snap.SimClockSeconds; got != (end - cfg.Step).Seconds() {
		t.Errorf("sim clock = %v, want %v", got, (end - cfg.Step).Seconds())
	}
	for i := 0; i < cfg.BatteryCount; i++ {
		id := `insure_battery_soc{unit="` + string(rune('0'+i)) + `"}`
		soc, ok := snap.Gauges[id]
		if !ok {
			t.Fatalf("snapshot missing %s; gauges = %v", id, snap.Gauges)
		}
		if soc < 0 || soc > 1 {
			t.Errorf("%s = %v, outside [0, 1]", id, soc)
		}
	}
	ticks := int64((end - start) / cfg.Step)
	scan := snap.Histograms["insure_plc_scan_duration_seconds"]
	// One scan per tick plus the manager's ScanNow after each control pass
	// and the priming scan in New.
	if scan.Count <= ticks {
		t.Errorf("scan histogram count = %d, want > %d", scan.Count, ticks)
	}
	settle := snap.Histograms["insure_relay_settle_seconds"]
	if settle.Count == 0 {
		t.Error("no relay settles observed despite commissioning transitions")
	}
	if v := snap.Gauges["insure_relay_cycles"]; v <= 0 {
		t.Errorf("relay cycles gauge = %v, want > 0", v)
	}
	if screens := snap.Counters["insure_spm_screenings_total"]; screens != int64(mgr.Screenings()) {
		t.Errorf("telemetry screenings = %d, manager reports %d", screens, mgr.Screenings())
	}

	// The exposition must carry the same data.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"insure_sim_clock_seconds",
		`insure_battery_soc{unit="0"}`,
		"insure_plc_scan_duration_seconds_bucket",
		"insure_faultwatch_quarantines_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestTelemetrySurvivesBrownout drives a plant into a sustained shortfall
// and checks the brownout and deficit counters advance alongside the
// logbook's emergency record.
func TestTelemetrySurvivesBrownout(t *testing.T) {
	cfg := sim.DefaultConfig(trace.FullSystemHigh())
	cfg.HoldUp = 5 * time.Second
	sys, err := sim.New(cfg, sim.NewSeismicSink())
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	sys.AttachTelemetry(reg)

	// No manager: force the cluster on with zero solar (night) and no
	// discharging units, so the deficit goes fully unserved.
	sys.Cluster.SetTargetVMs(4)
	for tod := 0 * time.Hour; tod < time.Hour; tod += cfg.Step {
		sys.Tick(tod, nil)
		if sys.Brownouts() > 0 {
			break
		}
	}
	if sys.Brownouts() == 0 {
		t.Fatal("plant never browned out under a forced unserved deficit")
	}
	snap := reg.Snapshot()
	if got := snap.Counters["insure_brownouts_total"]; got != int64(sys.Brownouts()) {
		t.Errorf("telemetry brownouts = %d, plant reports %d", got, sys.Brownouts())
	}
	if snap.Counters["insure_power_deficit_ticks_total"] == 0 {
		t.Error("deficit ticks counter never advanced")
	}
}

// TestSurvivalSeriesExposition gates the survivability telemetry contract:
// a survival-managed, genset-fitted plant on the paper's low-generation day
// must publish every emergency series — ladder rung, transition count, shed
// depth, the full generator group, and the checkpoint/loss accounting —
// through the strict Prometheus exposition parser.
func TestSurvivalSeriesExposition(t *testing.T) {
	cfg := sim.DefaultConfig(trace.LowGeneration())
	cfg.Secondary = genset.New(genset.DieselParams())
	sys, err := sim.New(cfg, sim.NewVideoSink())
	if err != nil {
		t.Fatal(err)
	}
	mcfg := core.DefaultConfig()
	mcfg.Survival = core.DefaultSurvivalConfig()
	mgr := core.New(mcfg, cfg.BatteryCount)
	reg := telemetry.NewRegistry()
	sys.AttachTelemetry(reg)
	mgr.AttachTelemetry(reg)

	for tod := 5 * time.Hour; tod < 12*time.Hour; tod += cfg.Step {
		sys.Tick(tod, mgr)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, s := range promtest.Parse(t, strings.NewReader(sb.String())) {
		found[s.Name] = true
	}
	for _, want := range []string{
		"insure_survival_mode",
		"insure_survival_transitions_total",
		"insure_survival_shed_watts",
		"insure_genset_starts_total",
		"insure_genset_running",
		"insure_genset_output_watts",
		"insure_genset_run_hours",
		"insure_genset_fuel_dollars",
		"insure_genset_delivered_watt_hours",
		"insure_genset_wasted_watt_hours",
		"insure_vm_checkpoints_completed",
		"insure_vms_lost",
		"insure_stream_backlog_gb",
		"insure_stream_dropped_gb",
		"insure_brownouts_total",
	} {
		if !found[want] {
			t.Errorf("exposition missing series %q", want)
		}
	}
}

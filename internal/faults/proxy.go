package faults

import (
	"net"
	"sync"
	"time"
)

// FlakyProxy sits between a Modbus client and the control panel and
// misbehaves on demand: it can delay every byte in both directions (a
// congested or half-broken fieldbus) and sever all live sessions (a panel
// power-cycle). It exists to exercise the client's timeout/retry/reconnect
// path against failures the server itself cannot produce.
type FlakyProxy struct {
	backend string
	l       net.Listener

	mu          sync.Mutex
	conns       map[net.Conn]struct{}
	delay       time.Duration
	dropped     int
	partitioned bool
	closed      bool
	wg          sync.WaitGroup
}

// NewFlakyProxy listens on loopback and forwards to backend.
func NewFlakyProxy(backend string) (*FlakyProxy, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &FlakyProxy{backend: backend, l: l, conns: make(map[net.Conn]struct{})}
	go p.acceptLoop()
	return p, nil
}

// Addr is the address clients should dial instead of the backend.
func (p *FlakyProxy) Addr() string { return p.l.Addr().String() }

// SetDelay makes every forwarded chunk wait d before delivery (zero restores
// transparent forwarding).
func (p *FlakyProxy) SetDelay(d time.Duration) {
	p.mu.Lock()
	p.delay = d
	p.mu.Unlock()
}

// DropAll severs every live session while keeping the listener open, so the
// next dial succeeds.
func (p *FlakyProxy) DropAll() {
	p.mu.Lock()
	for c := range p.conns {
		c.Close()
	}
	p.dropped += len(p.conns)
	p.mu.Unlock()
}

// SetPartition simulates a fieldbus partition. While on, every live
// session is severed and new connections are closed at accept, so the
// client sees resets immediately instead of hanging on timeouts — the
// recovery path is exercised at full speed and no delayed bytes can leak
// across the partition after it heals. Turning it off restores forwarding
// for connections dialed afterwards.
func (p *FlakyProxy) SetPartition(on bool) {
	p.mu.Lock()
	p.partitioned = on
	if on {
		for c := range p.conns {
			c.Close()
		}
		p.dropped += len(p.conns)
	}
	p.mu.Unlock()
}

// Partitioned reports whether the proxy is currently partitioned.
func (p *FlakyProxy) Partitioned() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.partitioned
}

// Dropped returns how many connections DropAll has severed.
func (p *FlakyProxy) Dropped() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dropped
}

// Close stops the listener and tears down every session.
func (p *FlakyProxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	err := p.l.Close()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
	return err
}

func (p *FlakyProxy) acceptLoop() {
	for {
		conn, err := p.l.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		part := p.partitioned
		p.mu.Unlock()
		if part {
			conn.Close()
			continue
		}
		up, err := net.Dial("tcp", p.backend)
		if err != nil {
			conn.Close()
			continue
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			conn.Close()
			up.Close()
			return
		}
		p.conns[conn] = struct{}{}
		p.conns[up] = struct{}{}
		p.wg.Add(2)
		p.mu.Unlock()
		go p.pipe(conn, up)
		go p.pipe(up, conn)
	}
}

// pipe forwards src to dst chunk by chunk, applying the configured delay,
// until either side closes.
func (p *FlakyProxy) pipe(dst, src net.Conn) {
	defer func() {
		dst.Close()
		src.Close()
		p.mu.Lock()
		delete(p.conns, src)
		p.mu.Unlock()
		p.wg.Done()
	}()
	buf := make([]byte, 4096)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			p.mu.Lock()
			d := p.delay
			p.mu.Unlock()
			if d > 0 {
				time.Sleep(d)
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			return // EOF, reset, or our own Close: the session is over
		}
	}
}

// Regression bound for the instrumented-tick memory profile (see the
// "Batch engine" notes in DESIGN.md): the steady-state tick is 0 allocs/op,
// and with the recorder reset at each simulated-day wrap it is 0 bytes/op
// too. BENCH.json's historical 41 B/op came from exactly one source — the
// benchmark loop replaying the same day forever, growing the recorder past
// its one-day pre-size — so this test pins both numbers to keep either leak
// from creeping back.
package insure

import (
	"testing"
)

func TestSystemTickAllocBytesBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full benchmark")
	}
	r := testing.Benchmark(BenchmarkSystemTick)
	if allocs := r.AllocsPerOp(); allocs != 0 {
		t.Errorf("instrumented tick allocates %d times/op, want 0", allocs)
	}
	// The bound is 1 byte/op of slack, not 41: with the day-wrap reset in
	// place nothing on the tick path may grow without bound.
	if bytes := r.AllocedBytesPerOp(); bytes > 1 {
		t.Errorf("instrumented tick allocates %d bytes/op, want <= 1 (amortized growth has crept back in)", bytes)
	}
}

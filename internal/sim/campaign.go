package sim

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// CampaignRun is one independent simulation in a campaign: a named factory
// that builds a fully-wired System plus the Manager to drive it. The factory
// runs inside the worker goroutine, so every run gets its own plant, RNG,
// recorder, and logbook state — nothing is shared between runs except
// whatever immutable inputs (e.g. a replayed trace.Trace) the caller closes
// over.
type CampaignRun struct {
	Name  string
	Setup func() (*System, Manager, error)
}

// RunCampaign executes the runs concurrently on a bounded worker pool and
// returns their Results in input order. workers <= 0 means GOMAXPROCS.
//
// Each run is deterministic in isolation, so the positional result slice is
// byte-for-byte identical to running the campaign serially — the paper's
// paired-trace methodology (§5) depends on that. A run that panics is
// converted into an error carrying the run name and stack; the first error
// (in input order) is returned after the pool drains, and a cancelled ctx
// marks the not-yet-started runs failed without abandoning in-flight ones.
func RunCampaign(ctx context.Context, workers int, runs []CampaignRun) ([]Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(runs) {
		workers = len(runs)
	}
	results := make([]Result, len(runs))
	errs := make([]error, len(runs))

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	jobs := make(chan int, len(runs))
	for i := range runs {
		jobs <- i
	}
	close(jobs)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if err := ctx.Err(); err != nil {
					errs[i] = fmt.Errorf("sim: campaign run %q: %w", runs[i].Name, err)
					continue
				}
				errs[i] = runCampaignOne(&runs[i], &results[i])
				if errs[i] != nil {
					cancel()
				}
			}
		}()
	}
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// runCampaignOne executes one run, converting a panic into an error so a
// misconfigured experiment fails its campaign instead of killing the
// process.
func runCampaignOne(run *CampaignRun, res *Result) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sim: campaign run %q panicked: %v\n%s", run.Name, r, debug.Stack())
		}
	}()
	sys, mgr, err := run.Setup()
	if err != nil {
		return fmt.Errorf("sim: campaign run %q: %w", run.Name, err)
	}
	*res = sys.Run(mgr)
	return nil
}

package main

import (
	"fmt"
	"sync"
	"time"

	"insure/internal/journal"
)

// panelStateVersion guards the binary layout of a serialized panel.
const panelStateVersion = 1

// defaultPanelSnapshotEvery is the snapshot cadence in plant ticks: at the
// daemon's 1 s tick a snapshot rotates the journal once a minute.
const defaultPanelSnapshotEvery = 60

// appendState serializes everything a restarted daemon needs to resume:
// the sim-elapsed clock, the battery wells and wear counters, the relay
// fabric (positions, in-flight settles, faults), and the PLC's command
// registers. Input/discrete registers are plant-mirrored and refreshed by
// the first scan after restore; persisting them would mask live readings.
func (p *panel) appendState(e *journal.Encoder, elapsed time.Duration) {
	e.U8(panelStateVersion)
	e.Dur(elapsed)
	p.bank.AppendState(e)
	p.fabric.AppendState(e)
	p.controller.Regs.AppendState(e)
}

// restoreState decodes a state image into the EXISTING bank, fabric, and
// register file — the Modbus server and telemetry closures hold pointers
// into them, so recovery must mutate in place, never swap objects. Returns
// the elapsed clock the image was taken at.
func (p *panel) restoreState(b []byte) (time.Duration, error) {
	d := journal.NewDecoder(b)
	d.ExpectVersion(panelStateVersion)
	elapsed := d.Dur()
	if err := d.Err(); err != nil {
		return 0, fmt.Errorf("panel state header: %w", err)
	}
	if err := p.bank.RestoreState(d); err != nil {
		return 0, fmt.Errorf("panel bank: %w", err)
	}
	if err := p.fabric.RestoreState(d); err != nil {
		return 0, fmt.Errorf("panel fabric: %w", err)
	}
	if err := p.controller.Regs.RestoreState(d); err != nil {
		return 0, fmt.Errorf("panel registers: %w", err)
	}
	return elapsed, d.Err()
}

// panelStore journals the panel state once per plant tick. All store
// access is mutex-guarded: the watchdog may re-read the journal to re-sync
// the plant while an abandoned loop incarnation is still unwinding out of
// a stalled commit.
type panelStore struct {
	dir  string
	fsys journal.FS

	mu            sync.Mutex
	store         *journal.Store
	enc           journal.Encoder
	snapshotEvery int
	ticks         int
	err           error
}

// openPanelStore opens (or creates) the state directory on the real disk.
// Any torn tail left by a crash is truncated away here.
func openPanelStore(dir string) (*panelStore, error) {
	return openPanelStoreFS(journal.Disk, dir)
}

// openPanelStoreFS is openPanelStore on an explicit filesystem — the
// disk-fault storm mounts the store on an injecting FS through this.
func openPanelStoreFS(fsys journal.FS, dir string) (*panelStore, error) {
	st, err := journal.OpenFS(fsys, dir)
	if err != nil {
		return nil, err
	}
	return &panelStore{dir: dir, fsys: fsys, store: st, snapshotEvery: defaultPanelSnapshotEvery}, nil
}

// scrubTarget exposes the store directory to a journal.Scrubber, sharing
// the store mutex so sweeps serialize with commits.
func (s *panelStore) scrubTarget() journal.Target {
	return journal.Target{Name: "panel-state", Dir: s.dir, FS: s.fsys, Lock: &s.mu}
}

// restoreInto loads the newest committed state image into p. Returns the
// image's elapsed clock and whether any state was found.
func (s *panelStore) restoreInto(p *panel) (time.Duration, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	res, err := journal.LoadFS(s.fsys, s.dir)
	if err != nil {
		return 0, false, err
	}
	payload := res.Snapshot
	if len(res.Entries) > 0 {
		payload = res.Entries[len(res.Entries)-1]
	}
	if payload == nil {
		return 0, false, nil
	}
	elapsed, err := p.restoreState(payload)
	if err != nil {
		return 0, false, err
	}
	return elapsed, true, nil
}

// commit journals the panel's current state. Errors are sticky and
// surfaced through Err — durability degrades, the plant keeps running.
func (s *panelStore) commit(p *panel, elapsed time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ticks++
	s.enc.Reset()
	p.appendState(&s.enc, elapsed)
	var err error
	if s.snapshotEvery > 0 && s.ticks%s.snapshotEvery == 0 {
		err = s.store.Snapshot(s.enc.Bytes())
	} else {
		_, err = s.store.Append(s.enc.Bytes())
	}
	if err != nil && s.err == nil {
		s.err = err
	}
}

// Err returns the first commit error, or nil.
func (s *panelStore) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close closes the underlying journal.
func (s *panelStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.store.Close()
}

// Package logbook records the operational events of an InSURE deployment —
// the "various log data" the prototype's management platform collects
// automatically (§5) and that §6.2 analyses (power-control actions, server
// on/off cycles, VM operations, battery mode changes, emergencies).
//
// Events are typed, timestamped with simulation time, and can be rendered
// as text or CSV for offline analysis.
package logbook

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Class categorises an event.
type Class int

const (
	// Info is general operational narration.
	Info Class = iota
	// Power covers supply-side actions: relay switching, charge batches,
	// generator starts/stops.
	Power
	// Load covers demand-side actions: VM reallocation, duty changes,
	// server power cycles.
	Load
	// Emergency covers brownouts, protection trips, forced shutdowns.
	Emergency
)

func (c Class) String() string {
	switch c {
	case Info:
		return "info"
	case Power:
		return "power"
	case Load:
		return "load"
	case Emergency:
		return "emergency"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Event is one logged occurrence.
type Event struct {
	At      time.Duration // simulation time-of-day
	Class   Class
	Subject string // component, e.g. "battery#3", "cluster", "genset"
	Detail  string
	// Seq is the book-wide arrival sequence number, assigned at Add. It
	// breaks ties between events sharing a timestamp (a control pass logs
	// several actions at the same sim-time), making rendered output
	// deterministic across runs and correlatable with telemetry counters
	// stamped by the same sim clock.
	Seq uint64
}

// Book is an in-memory event log. It is safe for concurrent use (the PLC
// scan loop and the coordinator log from different goroutines in the
// daemon).
type Book struct {
	mu     sync.Mutex
	events []Event
	seq    uint64
	// Cap bounds memory for long runs; 0 means unbounded. When full, the
	// oldest events are dropped.
	Cap int
}

// New returns an empty logbook bounded to cap events (0 = unbounded).
func New(cap int) *Book { return &Book{Cap: cap} }

// Add records an event.
func (b *Book) Add(at time.Duration, class Class, subject, detail string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.seq++
	b.events = append(b.events, Event{At: at, Class: class, Subject: subject, Detail: detail, Seq: b.seq})
	if b.Cap > 0 && len(b.events) > b.Cap {
		drop := len(b.events) - b.Cap
		b.events = append(b.events[:0], b.events[drop:]...)
	}
}

// Addf records a formatted event.
func (b *Book) Addf(at time.Duration, class Class, subject, format string, args ...any) {
	b.Add(at, class, subject, fmt.Sprintf(format, args...))
}

// Len returns the number of retained events.
func (b *Book) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.events)
}

// Events returns a copy of the retained events sorted by timestamp, with
// the arrival sequence breaking ties. The sort is stable by construction
// (At, then Seq — a total order), so rendered output is deterministic
// across runs even when several goroutines logged at the same sim-time.
func (b *Book) Events() []Event {
	b.mu.Lock()
	out := append([]Event(nil), b.events...)
	b.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// CountByClass tallies events per class.
func (b *Book) CountByClass() map[Class]int {
	out := map[Class]int{}
	for _, e := range b.Events() {
		out[e.Class]++
	}
	return out
}

// Filter returns the events of one class.
func (b *Book) Filter(class Class) []Event {
	var out []Event
	for _, e := range b.Events() {
		if e.Class == class {
			out = append(out, e)
		}
	}
	return out
}

// Subjects returns the distinct subjects seen, sorted.
func (b *Book) Subjects() []string {
	set := map[string]bool{}
	for _, e := range b.Events() {
		set[e.Subject] = true
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// escapeLine flattens control characters so an event can never break the
// one-line-per-event invariant of the text renderer.
func escapeLine(s string) string {
	if !strings.ContainsAny(s, "\n\r") {
		return s
	}
	s = strings.ReplaceAll(s, "\r\n", `\n`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, "\r", `\n`)
}

// WriteText renders the log as human-readable lines, one event per line
// (embedded newlines in details are escaped).
func (b *Book) WriteText(w io.Writer) error {
	for _, e := range b.Events() {
		_, err := fmt.Fprintf(w, "%02d:%02d:%02d %-9s %-12s %s\n",
			int(e.At.Hours()), int(e.At.Minutes())%60, int(e.At.Seconds())%60,
			e.Class, escapeLine(e.Subject), escapeLine(e.Detail))
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV renders the log as RFC 4180 CSV with a header row. Fields
// containing commas, quotes, or newlines are quoted/escaped by the
// encoder, so hostile event messages round-trip through any CSV reader;
// the seq column preserves the deterministic tie-break order for
// downstream joins against telemetry snapshots.
func (b *Book) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"seconds", "seq", "class", "subject", "detail"}); err != nil {
		return err
	}
	for _, e := range b.Events() {
		rec := []string{
			strconv.FormatInt(int64(e.At/time.Second), 10),
			strconv.FormatUint(e.Seq, 10),
			e.Class.String(), e.Subject, e.Detail,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

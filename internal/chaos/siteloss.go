package chaos

import (
	"fmt"
	"time"

	"insure/internal/battery"
	"insure/internal/core"
	"insure/internal/faults"
	"insure/internal/fleet"
	"insure/internal/sim"
	"insure/internal/solar"
	"insure/internal/trace"
	"insure/internal/workload"
)

// The site-loss campaign is the federation layer's proving ground: N sites
// under one coordinator, with the storm campaign's weather (and its battery
// surges) parked over exactly one of them for several days while the others
// stay sunny. With migration enabled the darkened site must hand its
// deferred batch work to the surplus sites and lose zero VMs — the
// coordinator's migrate-before-shed contract. With migration disabled the
// same storm shows what a solo plant loses, giving the on/off comparison
// the acceptance bar asks for.

// SiteLossConfig shapes a federated storm-over-one-site campaign.
type SiteLossConfig struct {
	// Seed drives the per-day weather for every site; the same seed
	// reproduces the whole fleet bit-for-bit.
	Seed int64
	// Days is the storm length (the acceptance bar is >= 3).
	Days int
	// Sites is the fleet size; StormSite is the index the storm sits over.
	Sites     int
	StormSite int
	// Batteries and Servers size each plant.
	Batteries int
	Servers   int
	// Migration arms the full federation stack: survivability ladders on
	// every site plus surplus-driven migration and checkpoint shipping.
	// Off, the fleet is N pre-federation plants riding the same weather.
	Migration bool
	// JobGB is the per-arrival batch dataset size at every site.
	JobGB float64
	// FailDay, when >= 0, additionally hard-kills the storm site on that
	// day at 15h — storm damage turning into total site loss.
	FailDay int
	// LogDir, when set, makes the coordinator's migration log durable.
	LogDir string
}

// DefaultSiteLossConfig is the acceptance campaign: three sites, a
// three-day storm over site 0.
func DefaultSiteLossConfig(seed int64) SiteLossConfig {
	return SiteLossConfig{
		Seed:      seed,
		Days:      3,
		Sites:     3,
		StormSite: 0,
		Batteries: 6,
		Servers:   4,
		JobGB:     40,
		FailDay:   -1,
	}
}

// SiteLossReport is the outcome of one site-loss campaign.
type SiteLossReport struct {
	Seed      int64
	Days      int
	Sites     int
	StormSite int
	Migration bool

	// Aggregate plant outcomes across all sites and days.
	Brownouts int
	VMsLost   int
	VMsSaved  int

	// Federation accounting.
	Migrations     int
	MigratedGB     float64
	ImagesShipped  int
	ImagesRestored int
	SitesLost      int

	// StormBacklogGB is the storm site's deferred backlog left at campaign
	// end; CompletedAwayGB is the migrated volume the surplus sites
	// finished on its behalf.
	StormBacklogGB  float64
	CompletedAwayGB float64

	// TrajectoryHash folds every site's recorded frames across all days;
	// two campaigns agree only if every plant moved identically.
	TrajectoryHash uint64

	ViolationCount int
	Violations     []string
}

func (r *SiteLossReport) violate(format string, args ...any) {
	r.ViolationCount++
	if len(r.Violations) < maxViolationDetail {
		r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
	}
}

// String is the one-line summary a failing test prints with the seed.
func (r *SiteLossReport) String() string {
	return fmt.Sprintf("site-loss seed %d: %d sites, %d-day storm over site %d (migration %v): VMs lost %d / saved %d, %d migrations %.1f GB, %d images out / %d restored, storm backlog %.1f GB, %.1f GB completed away, %d sites lost, %d violations",
		r.Seed, r.Sites, r.Days, r.StormSite, r.Migration,
		r.VMsLost, r.VMsSaved, r.Migrations, r.MigratedGB,
		r.ImagesShipped, r.ImagesRestored, r.StormBacklogGB, r.CompletedAwayGB,
		r.SitesLost, r.ViolationCount)
}

// sunnyDayTrace synthesizes one clear day for a surplus site. Each site
// gets its own seed lane so no two sites ever share weather.
func sunnyDayTrace(seed int64, site, day int) *trace.Trace {
	return trace.Synthesize(solar.Sunny, seed+1000*int64(site+1)+int64(day), time.Second)
}

// RunSiteLoss executes the federated storm campaign described by cfg.
// Error returns are harness failures only; invariant breaks are reported
// in the SiteLossReport so a test can print it with its seed.
func RunSiteLoss(cfg SiteLossConfig) (*SiteLossReport, error) {
	if cfg.Days < 1 {
		return nil, fmt.Errorf("chaos: site-loss campaign needs at least one day")
	}
	if cfg.Sites < 2 {
		return nil, fmt.Errorf("chaos: site-loss campaign needs at least two sites")
	}
	if cfg.StormSite < 0 || cfg.StormSite >= cfg.Sites {
		return nil, fmt.Errorf("chaos: storm site %d outside the %d-site fleet", cfg.StormSite, cfg.Sites)
	}

	// Persistent per-site state: bank, sink, and manager live across days,
	// exactly like the storm campaign's single plant. The storm site starts
	// mid-drought at the dispatch floor; the others hold a working charge.
	banks := make([]*battery.Bank, cfg.Sites)
	sites := make([]fleet.Site, cfg.Sites)
	mgrs := make([]*core.Manager, cfg.Sites)
	for i := range sites {
		soc := 0.50
		if i == cfg.StormSite {
			soc = 0.30
		}
		bank, err := battery.NewBank(battery.DefaultParams(), cfg.Batteries, soc)
		if err != nil {
			return nil, err
		}
		banks[i] = bank
		mcfg := core.DefaultConfig()
		if cfg.Migration {
			mcfg.Survival = core.DefaultSurvivalConfig()
		}
		mgrs[i] = core.New(mcfg, cfg.Batteries)
		arrivals := []time.Duration{7 * time.Hour}
		if i == cfg.StormSite {
			arrivals = []time.Duration{7 * time.Hour, 13 * time.Hour}
		}
		sites[i] = fleet.Site{
			Sink: &sim.BatchSink{
				Queue:    workload.NewBatchQueue(workload.Seismic()),
				Arrivals: arrivals,
				JobGB:    cfg.JobGB,
			},
			Manager: mgrs[i],
		}
	}

	rep := &SiteLossReport{
		Seed: cfg.Seed, Days: cfg.Days, Sites: cfg.Sites,
		StormSite: cfg.StormSite, Migration: cfg.Migration,
	}
	const fnvPrime = 1099511628211

	// Per-site invariant cursors, reset per day where the plant resets.
	prevMode := make([]core.OpMode, cfg.Sites)
	lostSeen := make([]int, cfg.Sites)

	var curFl *sim.Fleet
	c, err := fleet.New(fleet.Config{
		Migration: cfg.Migration,
		LogDir:    cfg.LogDir,
		Prepare: func(day int, fl *sim.Fleet) {
			curFl = fl
			for i := 0; i < cfg.Sites; i++ {
				i := i
				sys := fl.System(i)
				var inj *faults.Injector
				if i == cfg.StormSite {
					inj = faults.NewInjector(stormDayFaults(day, cfg.Batteries), faults.Target{
						Bank: sys.Bank, Fabric: sys.Fabric, Probes: sys.Probes,
					})
				}
				prevMode[i] = mgrs[i].Mode()
				lostSeen[i] = 0 // fresh cluster each day
				sys.SetTickHook(func(tod time.Duration) {
					if inj != nil {
						inj.Tick(tod)
					}
					// Ladder adjacency: every transition happens inside a
					// control pass, so per-tick sampling observes each one.
					if cur := mgrs[i].Mode(); cur != prevMode[i] {
						if !core.LadderAdjacent(prevMode[i], cur) {
							rep.violate("day %d site %d: illegal ladder move %s -> %s at %v",
								day, i, prevMode[i], cur, tod)
						}
						prevMode[i] = cur
					}
					// The federated emergency contract: no VM state lost to a
					// power cut anywhere in the fleet while migration (and with
					// it the survivability ladder) is armed.
					if cfg.Migration {
						if l := sys.Cluster.VMsLost(); l > lostSeen[i] {
							rep.violate("day %d site %d: %d VMs lost uncheckpointed at %v",
								day, i, l-lostSeen[i], tod)
							lostSeen[i] = l
						}
					}
				})
			}
		},
	}, sites)
	if err != nil {
		return nil, err
	}
	defer c.Close()

	if cfg.FailDay >= 0 {
		if cfg.FailDay >= cfg.Days {
			return nil, fmt.Errorf("chaos: FailDay %d outside the %d-day campaign", cfg.FailDay, cfg.Days)
		}
		if err := c.ScheduleSiteFailure(cfg.FailDay, 15*time.Hour, cfg.StormSite); err != nil {
			return nil, err
		}
	}

	failedSiteLost := 0
	for day := 0; day < cfg.Days; day++ {
		cfgs := make([]sim.Config, cfg.Sites)
		for i := range cfgs {
			tr := stormDayTrace(cfg.Seed, day)
			if i != cfg.StormSite {
				tr = sunnyDayTrace(cfg.Seed, i, day)
			}
			scfg := sim.DefaultConfig(tr)
			scfg.BatteryCount = cfg.Batteries
			scfg.ServerCount = cfg.Servers
			scfg.RecordEvery = time.Minute
			scfg.Bank = banks[i]
			cfgs[i] = scfg
		}
		res, err := c.RunDay(cfgs)
		if err != nil {
			return nil, err
		}
		for i, r := range res {
			rep.Brownouts += r.Brownouts
			rep.VMsLost += r.VMsLost
			rep.VMsSaved += r.VMsSaved
			if i == cfg.StormSite && day == cfg.FailDay {
				// A hard-failed site crashes with its in-flight VMs by
				// definition — that is the disposability bargain, not a
				// survivability breach.
				failedSiteLost += r.VMsLost
			}
			rep.TrajectoryHash = rep.TrajectoryHash*fnvPrime ^ hashFrames(curFl.System(i).Recorder().Frames())
		}
	}

	frep := c.Report()
	rep.Migrations = frep.Totals.Migrations
	rep.MigratedGB = frep.Totals.MigratedGB
	rep.ImagesShipped = frep.Totals.ImagesShipped
	rep.ImagesRestored = frep.Totals.RestoredVMs
	rep.SitesLost = frep.Totals.SitesLost
	rep.StormBacklogGB = frep.Sites[cfg.StormSite].PendingGB
	for i, s := range frep.Sites {
		if i != cfg.StormSite {
			rep.CompletedAwayGB += s.MigratedCompletedGB
		}
	}

	if cfg.Migration {
		if lost := rep.VMsLost - failedSiteLost; lost > 0 {
			rep.violate("federated storm lost %d VMs with migration armed", lost)
		}
		if rep.MigratedGB <= 0 {
			rep.violate("storm site migrated nothing off-site")
		}
		if cfg.FailDay < 0 {
			if rep.StormBacklogGB > 0 {
				rep.violate("storm site finished the campaign holding %.1f GB deferred", rep.StormBacklogGB)
			}
			// The storm site's deferred work must actually complete — locally
			// or at the surplus sites — not just move around. MigratedGB is
			// not the yardstick here (a bundle re-shipped under deadline
			// pressure counts twice); the site's arrival total is. One
			// in-progress tail job is allowed at cut-off.
			arrivedGB := float64(cfg.Days) * 2 * cfg.JobGB
			stormLocalGB := 0.0
			if p, ok := sites[cfg.StormSite].Sink.(interface{ ProcessedGB() float64 }); ok {
				stormLocalGB = p.ProcessedGB()
			}
			if rep.CompletedAwayGB+stormLocalGB < arrivedGB-cfg.JobGB {
				rep.violate("only %.1f of %.1f arrived GB completed (%.1f away, %.1f locally)",
					rep.CompletedAwayGB+stormLocalGB, arrivedGB, rep.CompletedAwayGB, stormLocalGB)
			}
		}
	}
	return rep, nil
}

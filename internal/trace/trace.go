// Package trace records and replays solar power traces.
//
// The paper's methodology (§5) sidesteps the irreproducibility of live sky
// conditions by recording daytime solar traces (7:00–20:00) and replaying
// them across experiment pairs, so that compared configurations see exactly
// the same energy budget and variability pattern. This package provides the
// same facility: synthesise a trace once (from the solar model), persist it
// as CSV, and replay it deterministically into any number of simulations.
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"insure/internal/solar"
	"insure/internal/units"
)

// Trace is a uniformly-sampled power series.
//
// A Trace is immutable once synthesised or parsed — every method either
// reads it or returns a scaled copy — so a single replayed trace may be
// shared by any number of concurrently-running simulations (the campaign
// engine in internal/sim relies on this for the paper's paired-trace
// methodology).
type Trace struct {
	// Start is the time-of-day of the first sample.
	Start time.Duration
	// Step is the sampling interval.
	Step time.Duration
	// Samples holds the harvested power at each step.
	Samples []units.Watt
}

// Synthesize records one daytime trace from the solar model at the given
// weather condition and seed.
func Synthesize(cond solar.Condition, seed int64, step time.Duration) *Trace {
	if step <= 0 {
		step = time.Second
	}
	supply := solar.NewSupply(cond, seed)
	tr := &Trace{Start: solar.Sunrise, Step: step}
	for tod := solar.Sunrise; tod < solar.Sunset; tod += step {
		tr.Samples = append(tr.Samples, supply.Step(tod, step))
	}
	return tr
}

// Len returns the number of samples.
func (t *Trace) Len() int { return len(t.Samples) }

// Duration is the covered time span.
func (t *Trace) Duration() time.Duration {
	return time.Duration(len(t.Samples)) * t.Step
}

// End is the time-of-day one step past the last sample.
func (t *Trace) End() time.Duration { return t.Start + t.Duration() }

// Validate reports whether the trace is well-formed: a positive sampling
// step (a degenerate step would make time indexing divide by zero) and at
// least one sample.
func (t *Trace) Validate() error {
	if t.Step <= 0 {
		return fmt.Errorf("trace: non-positive step %v", t.Step)
	}
	if len(t.Samples) == 0 {
		return fmt.Errorf("trace: no samples")
	}
	return nil
}

// At returns the power at time-of-day tod (zero outside the trace window or
// on a degenerate trace with a non-positive step).
func (t *Trace) At(tod time.Duration) units.Watt {
	if tod < t.Start || len(t.Samples) == 0 || t.Step <= 0 {
		return 0
	}
	i := int((tod - t.Start) / t.Step)
	if i >= len(t.Samples) {
		return 0
	}
	return t.Samples[i]
}

// Average is the mean power over the trace window.
func (t *Trace) Average() units.Watt {
	if len(t.Samples) == 0 {
		return 0
	}
	var sum float64
	for _, p := range t.Samples {
		sum += float64(p)
	}
	return units.Watt(sum / float64(len(t.Samples)))
}

// TotalEnergy integrates the trace.
func (t *Trace) TotalEnergy() units.WattHour {
	var e units.WattHour
	for _, p := range t.Samples {
		e += units.Energy(p, t.Step)
	}
	return e
}

// Peak returns the maximum sample.
func (t *Trace) Peak() units.Watt {
	var max units.Watt
	for _, p := range t.Samples {
		if p > max {
			max = p
		}
	}
	return max
}

// Scale returns a copy with every sample multiplied by f. The paper's
// under-provisioning study (§6.4: "even if we cut the solar power budget in
// half") is a Scale(0.5).
func (t *Trace) Scale(f float64) *Trace {
	out := &Trace{Start: t.Start, Step: t.Step, Samples: make([]units.Watt, len(t.Samples))}
	for i, p := range t.Samples {
		out.Samples[i] = units.Watt(float64(p) * f)
	}
	return out
}

// ScaleToEnergy returns a copy scaled so the total energy equals target.
// Table 6's paired days ("each pair of traces has the same total solar
// energy budgets") are produced this way.
func (t *Trace) ScaleToEnergy(target units.WattHour) *Trace {
	cur := t.TotalEnergy()
	if cur == 0 {
		return t.Scale(0)
	}
	return t.Scale(float64(target) / float64(cur))
}

// ScaleToPeak returns a copy scaled so the maximum sample equals peak.
func (t *Trace) ScaleToPeak(peak units.Watt) *Trace {
	p := t.Peak()
	if p == 0 {
		return t.Scale(0)
	}
	return t.Scale(float64(peak) / float64(p))
}

// FullSystemHigh is the high-generation budget of the full-system
// evaluation (Figs 20/21: "High Solar Generation (1000W)").
func FullSystemHigh() *Trace {
	return Synthesize(solar.Sunny, 2015, time.Second).ScaleToPeak(1000)
}

// FullSystemLow is the low-generation budget (Figs 20/21: "Low Solar
// Generation (500W)" — §6.4 cuts the high budget in half).
func FullSystemLow() *Trace { return FullSystemHigh().Scale(0.5) }

// WriteCSV writes "seconds,watts" rows.
func (t *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"seconds", "watts"}); err != nil {
		return err
	}
	for i, p := range t.Samples {
		tod := t.Start + time.Duration(i)*t.Step
		rec := []string{
			strconv.FormatInt(int64(tod/time.Second), 10),
			strconv.FormatFloat(float64(p), 'f', 3, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace written by WriteCSV. Sampling must be uniform.
func ReadCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: parse csv: %w", err)
	}
	if len(rows) < 3 {
		return nil, fmt.Errorf("trace: need at least 2 samples, got %d rows", len(rows))
	}
	rows = rows[1:] // header
	t0, err := strconv.ParseInt(rows[0][0], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("trace: bad timestamp %q: %w", rows[0][0], err)
	}
	t1, err := strconv.ParseInt(rows[1][0], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("trace: bad timestamp %q: %w", rows[1][0], err)
	}
	step := time.Duration(t1-t0) * time.Second
	if step <= 0 {
		return nil, fmt.Errorf("trace: non-increasing timestamps")
	}
	tr := &Trace{Start: time.Duration(t0) * time.Second, Step: step}
	prev := t0 - int64(step/time.Second)
	for i, row := range rows {
		if len(row) != 2 {
			return nil, fmt.Errorf("trace: row %d has %d fields", i, len(row))
		}
		ts, err := strconv.ParseInt(row[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: bad timestamp %q: %w", row[0], err)
		}
		if ts != prev+int64(step/time.Second) {
			return nil, fmt.Errorf("trace: non-uniform step at row %d", i)
		}
		prev = ts
		p, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: bad power %q: %w", row[1], err)
		}
		tr.Samples = append(tr.Samples, units.Watt(p))
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// HighGeneration returns the paper's high-solar evaluation trace (Fig 15a):
// a sunny day averaging ~1114 W.
func HighGeneration() *Trace {
	t := Synthesize(solar.Sunny, 2015, time.Second)
	return t.ScaleToEnergy(units.WattHour(1114 * t.Duration().Hours()))
}

// LowGeneration returns the paper's low-solar evaluation trace (Fig 15b):
// an overcast day averaging ~427 W.
func LowGeneration() *Trace {
	t := Synthesize(solar.Rainy, 2015, time.Second)
	return t.ScaleToEnergy(units.WattHour(427 * t.Duration().Hours()))
}

// Table6Day returns a day trace with the exact energy budget of the paper's
// Table 6 logs: sunny 7.9 kWh, cloudy 5.9 kWh, rainy 3.0 kWh.
func Table6Day(cond solar.Condition, seed int64) *Trace {
	var budget units.WattHour
	switch cond {
	case solar.Sunny:
		budget = units.KiloWattHour(7.9)
	case solar.Cloudy:
		budget = units.KiloWattHour(5.9)
	default:
		budget = units.KiloWattHour(3.0)
	}
	return Synthesize(cond, seed, time.Second).ScaleToEnergy(budget)
}

// Package relay models the controllable switch network that makes the
// InSURE battery array reconfigurable (§3.1, §4).
//
// The prototype manages each battery with a pair of IDEC RR2P 24 V DC
// relays — one charging switch, one discharging switch — driven by the PLC's
// digital outputs. The relays have a 25 ms switching time and a 10-million
// cycle mechanical life, both of which we account for because switch-network
// longevity is part of the design's cost story.
package relay

import (
	"fmt"
	"time"
)

// SwitchTime is the prototype relay's operate/release time.
const SwitchTime = 25 * time.Millisecond

// MechanicalLife is the rated number of switching cycles.
const MechanicalLife = 10_000_000

// FailMode classifies a relay hardware fault. A faulted relay ignores coil
// commands in the direction the fault blocks: a welded contact cannot open,
// a stuck armature cannot close or settle.
type FailMode int

const (
	FailNone FailMode = iota
	// FailWeldClosed models contact welding: the contact is closed and no
	// coil command can open it.
	FailWeldClosed
	// FailStuckOpen models a seized armature: the contact never closes (and
	// an in-flight close never settles).
	FailStuckOpen
)

func (f FailMode) String() string {
	switch f {
	case FailWeldClosed:
		return "weld-closed"
	case FailStuckOpen:
		return "stuck-open"
	default:
		return "none"
	}
}

// Relay is a single electromechanical switch.
type Relay struct {
	name    string
	closed  bool
	cycles  int64
	aborted int64
	pending time.Duration // time remaining until an in-flight switch settles
	waited  time.Duration // sim-time elapsed since the in-flight Set
	fail    FailMode

	// OnSettle, when set, is called from Tick each time an in-flight switch
	// finishes settling, with the sim-time that elapsed between the Set and
	// the settle. The value is quantised to the caller's tick size — it is
	// the settle latency as the control plane observes it, not the 25 ms
	// electromechanical constant.
	OnSettle func(waited time.Duration)
}

// New returns an open relay with the given name.
func New(name string) *Relay { return &Relay{name: name} }

// Name returns the relay's identifier.
func (r *Relay) Name() string { return r.name }

// Closed reports whether the contact is (or will settle) closed.
func (r *Relay) Closed() bool { return r.closed }

// Settled reports whether any in-flight switching has completed.
func (r *Relay) Settled() bool { return r.pending <= 0 }

// Cycles returns the lifetime operate count.
func (r *Relay) Cycles() int64 { return r.cycles }

// Aborted returns the number of in-flight switches that were reversed before
// settling. Each abort still consumed a mechanical cycle (the armature moved
// twice through the arc gap), so aborts count toward wear.
func (r *Relay) Aborted() int64 { return r.aborted }

// SettleRemaining is the time left until an in-flight switch settles (zero
// when settled; never negative).
func (r *Relay) SettleRemaining() time.Duration { return r.pending }

// WearFraction is the consumed fraction of mechanical life.
func (r *Relay) WearFraction() float64 {
	return float64(r.cycles) / float64(MechanicalLife)
}

// Fail injects a hardware fault. FailNone clears it (a field repair).
func (r *Relay) Fail(m FailMode) {
	r.fail = m
	switch m {
	case FailWeldClosed:
		r.closed = true
		r.pending = 0
	case FailStuckOpen:
		r.closed = false
		r.pending = 0
	}
}

// Failed reports whether a hardware fault is present.
func (r *Relay) Failed() bool { return r.fail != FailNone }

// FailState returns the injected fault mode.
func (r *Relay) FailState() FailMode { return r.fail }

// Set drives the coil. A state change consumes one mechanical cycle and
// takes SwitchTime to settle; setting the current state is a no-op. A Set
// that reverses an in-flight switch aborts it: the aborted transition is
// recorded and counts toward mechanical wear. A faulted relay ignores the
// command in the blocked direction (welded contacts cannot open, a stuck
// armature cannot close).
func (r *Relay) Set(closed bool) {
	switch r.fail {
	case FailWeldClosed:
		r.closed = true
		return
	case FailStuckOpen:
		r.closed = false
		return
	}
	if r.closed == closed {
		return
	}
	if r.pending > 0 {
		// The previous transition had not settled: the contact reverses
		// mid-travel. Record the abort and charge its wear.
		r.aborted++
		r.cycles++
	}
	r.closed = closed
	r.cycles++
	r.pending = SwitchTime
	r.waited = 0
}

// Tick advances time for settle accounting, clamping at zero so repeated
// ticks cannot drift the pending balance negative.
func (r *Relay) Tick(dt time.Duration) {
	if r.pending > 0 {
		r.waited += dt
		r.pending -= dt
		if r.pending < 0 {
			r.pending = 0
		}
		if r.pending == 0 && r.OnSettle != nil {
			r.OnSettle(r.waited)
		}
	}
}

// Pair is the charge/discharge relay pair guarding one battery unit. The
// pair enforces the safety interlock: a unit must never be on the charge bus
// and the discharge bus at once (it would backfeed the PV string).
type Pair struct {
	Charge    *Relay
	Discharge *Relay
}

// NewPair returns an all-open pair for battery unit i.
func NewPair(i int) *Pair {
	return &Pair{
		Charge:    New(fmt.Sprintf("bat%d-CR", i)),
		Discharge: New(fmt.Sprintf("bat%d-DR", i)),
	}
}

// Mode is the electrical connection state of one battery unit.
type Mode int

const (
	Open        Mode = iota // both relays open: Offline/Standby
	Charging                // charge relay closed
	Discharging             // discharge relay closed
)

func (m Mode) String() string {
	switch m {
	case Open:
		return "open"
	case Charging:
		return "charging"
	case Discharging:
		return "discharging"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// SetMode drives both relays to realise the requested mode, opening before
// closing so the interlock holds even mid-transition. If the opposite
// contact is welded closed and refuses to open, the commanded side is NOT
// closed: a unit bridging the charge and discharge buses would backfeed
// the PV string, which is the one topology the interlock exists to
// prevent. The pair stays in the welded relay's mode until the fault
// watcher quarantines it.
func (p *Pair) SetMode(m Mode) {
	switch m {
	case Open:
		p.Charge.Set(false)
		p.Discharge.Set(false)
	case Charging:
		p.Discharge.Set(false)
		if p.Discharge.Closed() {
			return // welded: refuse to double-connect
		}
		p.Charge.Set(true)
	case Discharging:
		p.Charge.Set(false)
		if p.Charge.Closed() {
			return // welded: refuse to double-connect
		}
		p.Discharge.Set(true)
	}
}

// Mode reports the pair's present connection state.
func (p *Pair) Mode() Mode {
	switch {
	case p.Charge.Closed() && p.Discharge.Closed():
		// Unreachable through SetMode; report Open so a wedged fabric
		// fails safe rather than double-connected.
		return Open
	case p.Charge.Closed():
		return Charging
	case p.Discharge.Closed():
		return Discharging
	default:
		return Open
	}
}

// Failed reports whether either relay of the pair has a hardware fault.
func (p *Pair) Failed() bool { return p.Charge.Failed() || p.Discharge.Failed() }

// Tick advances both relays.
func (p *Pair) Tick(dt time.Duration) {
	p.Charge.Tick(dt)
	p.Discharge.Tick(dt)
}

// Fabric is the whole switch network: one pair per battery unit plus the
// series/parallel topology switches (P1, P2, P3 in Fig 6).
type Fabric struct {
	pairs []*Pair

	// Topology switches: P1/P3 closed + P2 open = parallel;
	// P1/P3 open + P2 closed = series.
	P1, P2, P3 *Relay
}

// NewFabric builds a fabric for n battery units, initially all open and in
// parallel topology.
func NewFabric(n int) *Fabric {
	f := &Fabric{
		pairs: make([]*Pair, n),
		P1:    New("P1"),
		P2:    New("P2"),
		P3:    New("P3"),
	}
	for i := range f.pairs {
		f.pairs[i] = NewPair(i)
	}
	f.SetParallel()
	return f
}

// Size returns the number of battery positions.
func (f *Fabric) Size() int { return len(f.pairs) }

// Pair returns the relay pair for unit i.
func (f *Fabric) Pair(i int) *Pair { return f.pairs[i] }

// SetParallel configures the bank for parallel output (same voltage, summed
// ampere-hours).
func (f *Fabric) SetParallel() {
	f.P2.Set(false)
	f.P1.Set(true)
	f.P3.Set(true)
}

// SetSeries configures the bank for series output (summed voltage).
func (f *Fabric) SetSeries() {
	f.P1.Set(false)
	f.P3.Set(false)
	f.P2.Set(true)
}

// Parallel reports whether the topology is parallel.
func (f *Fabric) Parallel() bool {
	return f.P1.Closed() && f.P3.Closed() && !f.P2.Closed()
}

// Tick advances every relay in the fabric.
func (f *Fabric) Tick(dt time.Duration) {
	for _, p := range f.pairs {
		p.Tick(dt)
	}
	f.P1.Tick(dt)
	f.P2.Tick(dt)
	f.P3.Tick(dt)
}

// UnitsIn returns the indices currently in the given mode.
func (f *Fabric) UnitsIn(m Mode) []int {
	var idx []int
	for i, p := range f.pairs {
		if p.Mode() == m {
			idx = append(idx, i)
		}
	}
	return idx
}

// AppendUnitsIn appends the indices currently in the given mode to dst and
// returns it. Passing dst[:0] with capacity Size() makes the per-tick mode
// query allocation-free, which the simulation hot path relies on.
func (f *Fabric) AppendUnitsIn(dst []int, m Mode) []int {
	for i, p := range f.pairs {
		if p.Mode() == m {
			dst = append(dst, i)
		}
	}
	return dst
}

// TotalCycles sums mechanical cycles across the whole network, a proxy for
// switch-fabric wear.
func (f *Fabric) TotalCycles() int64 {
	var n int64
	for _, p := range f.pairs {
		n += p.Charge.Cycles() + p.Discharge.Cycles()
	}
	return n + f.P1.Cycles() + f.P2.Cycles() + f.P3.Cycles()
}

// Package diskfault is the storage counterpart of internal/faults and
// internal/wan: a seeded fault-injecting filesystem that mounts beneath
// the journal layer (and everything built on it — the fleet migration
// log, checkpoint images, both daemons' state dirs) through the
// journal.FS interface.
//
// It injects the disk's whole failure repertoire: torn writes that
// persist only a prefix, ENOSPC-style write failures, failed fsyncs
// (which the store must treat as poisoning — fsyncgate semantics), bit
// rot that silently decays files at rest, short reads, and renames whose
// directory entry is lost before it was ever fsynced.
//
// # Seeding
//
// The package follows the internal/chaos seeding contract:
//
//   - Per-operation fates are stateless hashes (SplitMix64, the same
//     finalizer as wan.ChunkFate) of (seed, path, op, per-path op count).
//     No PRNG stream survives between draws, so the same seed over the
//     same operation sequence injects bit-identical faults.
//   - Bit rot is keyed by (seed, path, file generation), where the
//     generation bumps on every create-or-replace event (O_TRUNC open,
//     rename-in). A decayed file therefore reads back decayed — the same
//     flipped bit — until something rewrites it, at which point the rot
//     lottery re-rolls: exactly how at-rest decay behaves, and exactly
//     what makes scrub-and-repair observable.
//   - The degraded window (SetDegraded) has no entropy of its own: a
//     campaign switches it on and off at planned times, like
//     faults.FlakyProxy.SetPartition.
//
// Paths are hashed relative to Config.Root so two runs in different
// temp directories draw identical fates.
package diskfault

import (
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"insure/internal/journal"
)

// op salts keep each fault kind's hash lane disjoint.
const (
	opWrite = 0x57524954 // "WRIT"
	opSync  = 0x53594e43 // "SYNC"
	opRead  = 0x52454144 // "READ"
	opRen   = 0x52454e4d // "RENM"
	opRot   = 0x424f5254 // "BORT"
)

// Config shapes the fault mix. All rates are probabilities in [0,1];
// the zero value injects nothing.
type Config struct {
	// Seed pins every fate. Two FSes with the same Seed and Root over the
	// same operation sequence inject identical faults.
	Seed int64
	// Root is stripped from paths before hashing, so fates survive the
	// state dir moving (t.TempDir differs every run).
	Root string

	// TornWrite is the chance one Write persists only a prefix and fails.
	TornWrite float64
	// WriteFail is the chance one Write fails outright (ENOSPC-style),
	// persisting nothing.
	WriteFail float64
	// SyncFail is the chance one fsync fails. The journal must poison the
	// store when this fires.
	SyncFail float64
	// BitRot is the chance a file generation decays at rest: reads see
	// one bit flipped at a stable position until the file is rewritten.
	BitRot float64
	// ShortRead is the chance one ReadFile returns a prefix.
	ShortRead float64
	// LoseRename is the chance a rename's directory entry is lost: the
	// source vanishes and the target never appears, as if the dir fsync
	// never made it.
	LoseRename float64
}

// Stats counts the faults actually injected.
type Stats struct {
	TornWrites  int64
	WriteFails  int64
	SyncFails   int64
	RotFlips    int64
	ShortReads  int64
	LostRenames int64
}

// FS implements journal.FS with seeded fault injection over an inner FS.
type FS struct {
	cfg   Config
	inner journal.FS

	mu       sync.Mutex
	degraded bool
	gen      map[string]uint64 // file generation per rel path
	ops      map[opKey]uint64  // per-(path,op) draw counter
	rotPos   map[rotKey]uint64 // pinned flip bit per decayed generation
	stats    Stats
}

type opKey struct {
	rel string
	op  uint64
}

type rotKey struct {
	rel string
	gen uint64
}

// New wraps inner with fault injection. A nil inner mounts the real disk.
func New(cfg Config, inner journal.FS) *FS {
	if inner == nil {
		inner = journal.Disk
	}
	return &FS{
		cfg:    cfg,
		inner:  inner,
		gen:    make(map[string]uint64),
		ops:    make(map[opKey]uint64),
		rotPos: make(map[rotKey]uint64),
	}
}

// SetDegraded switches the planned disk-sickness window: while on, every
// fsync fails. Deterministic hook — campaigns flip it at planned times.
func (f *FS) SetDegraded(on bool) {
	f.mu.Lock()
	f.degraded = on
	f.mu.Unlock()
}

// Stats returns the injected-fault counts so far.
func (f *FS) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// rel normalizes a path into the stable hash key.
func (f *FS) rel(name string) string {
	r := name
	if f.cfg.Root != "" {
		if t := strings.TrimPrefix(name, f.cfg.Root); t != name {
			r = strings.TrimPrefix(t, string(os.PathSeparator))
		}
	}
	return filepath.ToSlash(r)
}

// mix64 is the SplitMix64 finalizer — the same stateless hash the WAN
// layer uses for chunk fates.
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func pathHash(rel string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(rel))
	return h.Sum64()
}

// draw returns the stateless hash for the next (rel, op) event, bumping
// the per-path op counter. Callers hold f.mu.
func (f *FS) draw(rel string, op uint64) uint64 {
	k := opKey{rel: rel, op: op}
	n := f.ops[k]
	f.ops[k] = n + 1
	return mix64(uint64(f.cfg.Seed) ^ mix64(pathHash(rel)^op) ^ n)
}

// frac maps a hash to [0,1).
func frac(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// --- journal.FS ---

func (f *FS) MkdirAll(dir string) error { return f.inner.MkdirAll(dir) }

func (f *FS) OpenFile(name string, flag int) (journal.File, error) {
	rel := f.rel(name)
	f.mu.Lock()
	if flag&os.O_TRUNC != 0 {
		f.gen[rel]++
	}
	f.mu.Unlock()
	inner, err := f.inner.OpenFile(name, flag)
	if err != nil {
		return nil, err
	}
	return &file{File: inner, fs: f, rel: rel}, nil
}

func (f *FS) ReadFile(name string) ([]byte, error) {
	b, err := f.inner.ReadFile(name)
	if err != nil {
		return nil, err
	}
	rel := f.rel(name)
	f.mu.Lock()
	defer f.mu.Unlock()
	// Bit rot: drawn once per (path, generation) so a decayed file stays
	// consistently decayed until rewritten. The flip position is pinned on
	// the first non-empty read of a decayed generation and reused for the
	// life of the generation, so later appends don't move the flipped bit.
	if f.cfg.BitRot > 0 && len(b) > 0 {
		h := mix64(uint64(f.cfg.Seed) ^ mix64(pathHash(rel)^opRot) ^ f.gen[rel])
		if frac(h) < f.cfg.BitRot {
			rk := rotKey{rel: rel, gen: f.gen[rel]}
			pos, pinned := f.rotPos[rk]
			if !pinned {
				pos = mix64(h) % (uint64(len(b)) * 8)
				f.rotPos[rk] = pos
				f.stats.RotFlips++
			}
			if pos < uint64(len(b))*8 {
				b = append([]byte(nil), b...)
				b[pos/8] ^= 1 << (pos % 8)
			}
		}
	}
	if f.cfg.ShortRead > 0 && len(b) > 0 {
		h := f.draw(rel, opRead)
		if frac(h) < f.cfg.ShortRead {
			f.stats.ShortReads++
			b = b[:mix64(h)%uint64(len(b))]
		}
	}
	return b, nil
}

func (f *FS) Rename(oldname, newname string) error {
	relNew := f.rel(newname)
	f.mu.Lock()
	f.gen[relNew]++
	lost := false
	if f.cfg.LoseRename > 0 {
		if frac(f.draw(relNew, opRen)) < f.cfg.LoseRename {
			lost = true
			f.stats.LostRenames++
		}
	}
	f.mu.Unlock()
	if lost {
		// The dir entry evaporates: source gone, target never appears.
		return f.inner.Remove(oldname)
	}
	return f.inner.Rename(oldname, newname)
}

func (f *FS) Remove(name string) error { return f.inner.Remove(name) }

func (f *FS) Stat(name string) (os.FileInfo, error) { return f.inner.Stat(name) }

func (f *FS) ReadDir(dir string) ([]string, error) { return f.inner.ReadDir(dir) }

func (f *FS) SyncDir(dir string) error {
	f.mu.Lock()
	fail := f.degraded
	if !fail && f.cfg.SyncFail > 0 {
		fail = frac(f.draw(f.rel(dir)+"/", opSync)) < f.cfg.SyncFail
	}
	if fail {
		f.stats.SyncFails++
	}
	f.mu.Unlock()
	if fail {
		return fmt.Errorf("diskfault: dir fsync failed (%s)", dir)
	}
	return f.inner.SyncDir(dir)
}

// file interposes on writes and fsyncs.
type file struct {
	journal.File
	fs  *FS
	rel string
}

func (w *file) Write(p []byte) (int, error) {
	fs := w.fs
	fs.mu.Lock()
	h := fs.draw(w.rel, opWrite)
	roll := frac(h)
	switch {
	case roll < fs.cfg.WriteFail:
		fs.stats.WriteFails++
		fs.mu.Unlock()
		return 0, fmt.Errorf("diskfault: write failed: no space left on device (%s)", w.rel)
	case roll < fs.cfg.WriteFail+fs.cfg.TornWrite && len(p) > 0:
		fs.stats.TornWrites++
		keep := int(mix64(h) % uint64(len(p)))
		fs.mu.Unlock()
		if keep > 0 {
			if _, err := w.File.Write(p[:keep]); err != nil {
				return 0, err
			}
		}
		return keep, fmt.Errorf("diskfault: torn write at %d/%d bytes (%s)", keep, len(p), w.rel)
	default:
		fs.mu.Unlock()
		return w.File.Write(p)
	}
}

func (w *file) Sync() error {
	fs := w.fs
	fs.mu.Lock()
	fail := fs.degraded
	if !fail && fs.cfg.SyncFail > 0 {
		fail = frac(fs.draw(w.rel, opSync)) < fs.cfg.SyncFail
	}
	if fail {
		fs.stats.SyncFails++
	}
	fs.mu.Unlock()
	if fail {
		return fmt.Errorf("diskfault: fsync failed (%s)", w.rel)
	}
	return w.File.Sync()
}

package endurance

import (
	"testing"

	"insure/internal/baseline"
	"insure/internal/core"
	"insure/internal/sim"
	"insure/internal/solar"
)

func TestClimateMix(t *testing.T) {
	c := NewClimate(0.5, 0.3, 7)
	counts := map[solar.Condition]int{}
	for i := 0; i < 3000; i++ {
		counts[c.Day()]++
	}
	if frac := float64(counts[solar.Sunny]) / 3000; frac < 0.45 || frac > 0.55 {
		t.Errorf("sunny fraction %.2f, want ~0.5", frac)
	}
	if frac := float64(counts[solar.Rainy]) / 3000; frac < 0.15 || frac > 0.25 {
		t.Errorf("rainy fraction %.2f, want ~0.2", frac)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Campaign{Days: 0}); err == nil {
		t.Error("zero-day campaign accepted")
	}
	if _, err := Run(Campaign{Days: 1}); err == nil {
		t.Error("campaign without sink/manager accepted")
	}
}

func TestWeekCampaignAccumulatesWear(t *testing.T) {
	if testing.Short() {
		t.Skip("7 full-day simulations")
	}
	sum, err := Run(Campaign{
		Days:      7,
		Seed:      11,
		PeakWatts: 1000,
		NewSink:   func() sim.Sink { return sim.NewSeismicSink() },
		Manager:   core.New(core.DefaultConfig(), 6),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Days) != 7 {
		t.Fatalf("days = %d", len(sum.Days))
	}
	// Wear must be monotone non-decreasing across days.
	prev := 0.0
	for _, d := range sum.Days {
		if float64(d.WearAh) < prev {
			t.Errorf("day %d wear %.2f below previous %.2f", d.Day, float64(d.WearAh), prev)
		}
		prev = float64(d.WearAh)
	}
	if sum.TotalGB <= 0 {
		t.Error("campaign processed nothing")
	}
	if sum.ProjectedLifeYears <= 0 {
		t.Error("no life projection")
	}
	t.Logf("7-day campaign: %.0f GB, wear %.1f Ah/unit, projected life %.1f yr, %d brownouts",
		sum.TotalGB, float64(sum.FinalWearAh), sum.ProjectedLifeYears, sum.TotalBrown)
}

func TestInSUREOutlastsBaselineOverAWeek(t *testing.T) {
	if testing.Short() {
		t.Skip("14 full-day simulations")
	}
	run := func(mgr sim.Manager) *Summary {
		sum, err := Run(Campaign{
			Days:      7,
			Seed:      23,
			PeakWatts: 1000,
			NewSink:   func() sim.Sink { return sim.NewVideoSink() },
			Manager:   mgr,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sum
	}
	opt := run(core.New(core.DefaultConfig(), 6))
	base := run(baseline.New(baseline.DefaultConfig()))
	if opt.ProjectedLifeYears <= base.ProjectedLifeYears {
		t.Errorf("InSURE projected life %.1f yr not above baseline %.1f yr",
			opt.ProjectedLifeYears, base.ProjectedLifeYears)
	}
	if opt.TotalGB <= base.TotalGB {
		t.Errorf("InSURE total %.0f GB not above baseline %.0f GB", opt.TotalGB, base.TotalGB)
	}
	// Table 1's premise: with InSURE's management the buffer approaches
	// its multi-year design life.
	if opt.ProjectedLifeYears < 2 {
		t.Errorf("InSURE projected life %.1f yr — management should approach the 4-yr design life",
			opt.ProjectedLifeYears)
	}
}

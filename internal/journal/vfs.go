package journal

import (
	"os"
	"sort"
)

// File is the slice of *os.File the journal needs. Write/Sync/Close map
// straight onto the os calls; fault-injecting wrappers (internal/diskfault)
// interpose here to tear writes and fail fsyncs.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
	Truncate(size int64) error
	Seek(offset int64, whence int) (int64, error)
}

// FS is the filesystem the store mounts. Everything the journal, the
// scrubber, and the fleet image store touch on disk goes through an FS, so
// a single seeded wrapper can inject torn writes, bit rot, short reads,
// lost renames, ENOSPC, and failed fsyncs under every consumer at once.
// Disk is the real thing; tests and chaos campaigns substitute their own.
type FS interface {
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// OpenFile opens name with the given os.O_* flags (mode 0o644).
	OpenFile(name string, flag int) (File, error)
	// ReadFile returns the full contents of name.
	ReadFile(name string) ([]byte, error)
	// Rename atomically moves old over new.
	Rename(oldname, newname string) error
	// Remove deletes name.
	Remove(name string) error
	// Stat reports metadata for name.
	Stat(name string) (os.FileInfo, error)
	// ReadDir lists the names (not paths) in dir, sorted.
	ReadDir(dir string) ([]string, error)
	// SyncDir fsyncs the directory itself, making renames durable.
	SyncDir(dir string) error
}

// Disk is the os-backed FS every production store mounts by default.
var Disk FS = diskFS{}

type diskFS struct{}

func (diskFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (diskFS) OpenFile(name string, flag int) (File, error) {
	f, err := os.OpenFile(name, flag, 0o644)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (diskFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (diskFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

func (diskFS) Remove(name string) error { return os.Remove(name) }

func (diskFS) Stat(name string) (os.FileInfo, error) { return os.Stat(name) }

func (diskFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

func (diskFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

package core

import (
	"time"

	"insure/internal/journal"
	"insure/internal/logbook"
	"insure/internal/sim"
)

// DefaultSnapshotEvery is the snapshot cadence in control passes. At the
// default 30 s period a snapshot rotates the journal every 15 simulated
// minutes, bounding both replay time and journal growth to one coarse
// interval's worth of records.
const DefaultSnapshotEvery = 30

// JournaledManager wraps a Manager so that every completed control pass
// is committed to a write-ahead journal before the next tick proceeds.
// Commits reuse one encoder buffer and the store's framing buffer, so
// the steady-state cost on the tick path is an fsync amortized over the
// control period — the alloc-regression tests hold with journaling
// attached.
type JournaledManager struct {
	*Manager
	store *journal.Store
	enc   journal.Encoder

	// SnapshotEvery is the number of control passes between snapshot
	// rotations (journal truncations).
	SnapshotEvery int

	passes int
	err    error
}

var _ sim.Manager = (*JournaledManager)(nil)

// NewJournaled wraps m so each control pass commits to store.
func NewJournaled(m *Manager, store *journal.Store) *JournaledManager {
	return &JournaledManager{Manager: m, store: store, SnapshotEvery: DefaultSnapshotEvery}
}

// Control implements sim.Manager: run the wrapped pass, then commit the
// resulting state.
func (j *JournaledManager) Control(sys *sim.System, now time.Duration) {
	j.Manager.Control(sys, now)
	j.commit()
}

// commit serializes the manager and appends (or, on the snapshot cadence,
// rotates) the store. Journal errors are sticky and surfaced through Err:
// the control loop must keep running the plant even when the state disk
// has failed — durability degrades, control does not.
func (j *JournaledManager) commit() {
	j.passes++
	j.enc.Reset()
	j.Manager.AppendState(&j.enc)
	var err error
	if j.SnapshotEvery > 0 && j.passes%j.SnapshotEvery == 0 {
		err = j.store.Snapshot(j.enc.Bytes())
	} else {
		_, err = j.store.Append(j.enc.Bytes())
	}
	if err != nil && j.err == nil {
		j.err = err
	}
}

// Err returns the first journal-commit error, or nil.
func (j *JournaledManager) Err() error { return j.err }

// Store returns the underlying journal store.
func (j *JournaledManager) Store() *journal.Store { return j.store }

// Recover rebuilds a manager from the state directory: a fresh Manager
// with the given configuration, overwritten by the newest snapshot and
// then by the last fully-committed journal record (each record is a
// complete state image, so only the newest valid one matters). It returns
// the reopened store, ready for the next commit — any torn tail from the
// crash has been truncated away by journal.Open.
//
// A directory with no usable state yields a cold-start manager and no
// recovery count; otherwise the manager's recovery counter increments.
func Recover(cfg Config, n int, dir string) (*Manager, *journal.Store, error) {
	res, err := journal.Load(dir)
	if err != nil {
		return nil, nil, err
	}
	m := New(cfg, n)
	restored := false
	if res.Snapshot != nil {
		if err := m.Restore(res.Snapshot); err != nil {
			return nil, nil, err
		}
		restored = true
	}
	if len(res.Entries) > 0 {
		if err := m.Restore(res.Entries[len(res.Entries)-1]); err != nil {
			return nil, nil, err
		}
		restored = true
	}
	store, err := journal.Open(dir)
	if err != nil {
		return nil, nil, err
	}
	if restored {
		m.recoveries++
	}
	return m, store, nil
}

// Reconcile compares the restored relay intent against the live plant and
// re-drives every pair whose electrical mode disagrees — the journal says
// closed but the plant says open (a transition that never settled before
// the crash), or the inverse after a torn-tail restore lost the final
// pass. Each re-drive is counted in the manager and, when telemetry is
// attached, in insure_recovery_reconciliations_total. Returns the number
// of pairs re-driven.
//
// Call it once after Recover, before the first Control pass, so the
// plant is back under the journal's intent before new decisions are made.
func (m *Manager) Reconcile(sys *sim.System, now time.Duration) int {
	// The plain recovery counter was incremented (and persisted) by
	// Recover; the registry counter increments here because telemetry is
	// only re-attached after the restore, and Reconcile runs exactly once
	// per recovery.
	if m.tel != nil {
		m.tel.recoveries.Inc()
	}
	if m.lastModes == nil {
		return 0
	}
	fixed := 0
	for i, want := range m.lastModes {
		got := sys.Fabric.Pair(i).Mode()
		if got == want {
			continue
		}
		sys.SetUnitMode(i, want)
		fixed++
		sys.Log.Addf(now, logbook.Power, "recovery",
			"unit %d reconciled: plant %s, journal %s — re-driven", i, got, want)
	}
	if fixed > 0 {
		sys.PLC.ScanNow()
	}
	m.reconciliations += fixed
	if m.tel != nil && fixed > 0 {
		m.tel.reconciliations.Add(int64(fixed))
	}
	return fixed
}

// Recoveries returns how many crash-restarts this control state has
// survived.
func (m *Manager) Recoveries() int { return m.recoveries }

// Reconciliations returns how many relay intents recovery re-drove.
func (m *Manager) Reconciliations() int { return m.reconciliations }

// Package fleet federates N in-situ plants behind one coordinator — the
// ROADMAP's production shape, where hundreds of solar+battery sites report
// to a control plane that moves work toward whichever site currently has
// energy surplus ("Solar Synergy"'s load-shifting idea applied to the
// paper's in-situ servers).
//
// The coordinator is built on sim.Fleet: every site stays an independent
// plant with its own battery bank, mode ladder, journal, and telemetry, and
// the coordinator drives the same interleaved tick loop Fleet.Run uses. At
// its control period it samples each site's energy state (the transduced
// SoC its own controller steers by, solar input, ladder rung, deferred-work
// depth) and — when migration is enabled — moves deferred batch jobs from
// energy-needy sites to surplus ones and ships completed VM checkpoint
// images off sites that are evacuating, so a storm-darkened site hands its
// work to a sunny one instead of sitting on it.
//
// Disposability invariants (after qserv's worker/czar split):
//
//   - Sites are disposable: losing one loses only that site's in-flight
//     resources (running VMs, locally queued jobs). Everything already
//     shipped is unaffected.
//   - Shipped checkpoints are durable: every migration and checkpoint
//     shipment is a record in an append-only journal; a checkpoint in
//     transit to a site that dies is re-routed, not lost.
//   - The coordinator is recoverable: a new coordinator pointed at the same
//     migration log replays it and resumes with the same accounting.
//
// With migration disabled the coordinator is a pure observer: the federated
// run is byte-identical to running each site's System.Run alone, which is
// the calibration bar ("Calibrating Microgrid Simulations") every coupling
// feature must clear before it ships.
package fleet

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"insure/internal/core"
	"insure/internal/cost"
	"insure/internal/journal"
	"insure/internal/sim"
	"insure/internal/wan"
	"insure/internal/workload"
)

// ErrAborted is returned by RunDay when Config.Abort stops the day
// mid-flight — the fleet daemon's clean-shutdown and kill-injection path.
// The partial day's effects are crash-consistent garbage by design: the
// daemon resumes from its day-boundary snapshot and re-runs the whole day.
var ErrAborted = errors.New("fleet: day aborted")

// Config shapes a Coordinator.
type Config struct {
	// Migration enables surplus-driven job migration and checkpoint
	// shipping. Off, the coordinator only observes, and the federated run
	// is byte-identical to N solo runs.
	Migration bool
	// Period is the coordinator's control interval (default 5 min). It
	// should be a multiple of the simulation step.
	Period time.Duration
	// SurplusSoC is the mean transduced SoC at which a site qualifies as a
	// migration destination (default 0.55).
	SurplusSoC float64
	// DeficitSoC is the mean transduced SoC below which a site starts
	// evacuating deferred work even before its ladder reacts (default 0.40).
	DeficitSoC float64
	// Tariff prices cross-site shipping; the zero value means
	// cost.DefaultMigrationTariff.
	Tariff cost.MigrationTariff
	// LogDir, when set, makes the migration log durable: every shipment is
	// journaled there, and a new Coordinator on the same directory replays
	// it (see Recovered).
	LogDir string
	// LogFS mounts the migration log on an alternative filesystem — the
	// disk-fault campaigns inject storage failures through it. Nil means
	// the real disk.
	LogFS journal.FS
	// Images, when set, persists every landed checkpoint bundle as a
	// mirrored CRC-framed pair and verifies it before the restore is
	// counted; a landing with no intact copy is re-shipped instead of
	// counted (see ImageStore).
	Images *ImageStore
	// Prepare, when set, runs once per day after the day's Systems are
	// built and before the first tick — the hook the chaos campaign uses to
	// attach fault injectors and invariant probes.
	Prepare func(day int, fl *sim.Fleet)

	// WAN, when set, routes every cross-site shipment through the degraded
	// backhaul model instead of the ideal single-shot path: transfers move
	// chunk by chunk against the link's effective bandwidth, drops and CRC
	// failures cost retransmissions (billed through the tariff), partitions
	// stall transfers mid-image and resume them from the last delivered
	// byte, and a heartbeat/lease failure detector replaces fiat knowledge
	// of site death. Nil keeps the PR 7 behaviour exactly.
	WAN *wan.Network
	// ChunkBytes is the transfer chunk size (default 250 MB — 15 chunks
	// per 5-minute pass on the default 100 Mbps backhaul).
	ChunkBytes int64
	// SuspectAfter is the number of consecutive missed heartbeats (control
	// passes) before a site is suspected and leaves the donor pool
	// (default 2). A suspected site keeps running solo — it is a complete
	// plant — and rejoins on the first heartbeat that gets through.
	SuspectAfter int
	// LeasePasses is the number of consecutive missed heartbeats before a
	// suspected site's lease expires and the coordinator declares it dead,
	// journaling the loss (default 96 — 8 h at the 5-minute period, longer
	// than any partition the chaos campaigns schedule, so a partitioned
	// site is never declared dead).
	LeasePasses int
	// RerouteAfter is the number of consecutive zero-progress passes after
	// which a transfer whose destination is suspected or unreachable
	// re-routes to a fresh donor, restarting from byte zero (default 6).
	RerouteAfter int
	// MaxBackoff caps a stalled transfer's exponential retry backoff
	// (default 30 min).
	MaxBackoff time.Duration
	// Abort, when set, is polled at every tick; returning true stops
	// RunDay immediately with ErrAborted. The fleet daemon wires SIGTERM
	// and its kill-injection test hook through this.
	Abort func(day int, tod time.Duration) bool
}

// Site is one federated plant: a persistent identity whose Sink and
// Manager live across days (banks and day traces arrive per-day through
// RunDay's configs).
type Site struct {
	Name    string
	Sink    sim.Sink
	Manager sim.Manager
}

// migratableSink is what a sink must support to participate in job
// migration (sim.BatchSink does; stream sinks don't — cameras are bolted to
// their site).
type migratableSink interface {
	PendingGB() float64
	TakeJobs() []*workload.Job
	Schedule(at time.Duration, job *workload.Job)
}

// siteState is the coordinator's per-site view.
type siteState struct {
	name string
	sink sim.Sink
	mgr  sim.Manager

	dead bool
	// evacuate is latched by the migrate-before-shed mode hook when the
	// site's ladder downgrades, and cleared when it recovers to Normal.
	evacuate bool

	// Failure-detector view (WAN mode). dead above is physical truth the
	// coordinator cannot observe across a degraded backhaul; these three
	// are what it *believes*: missedBeats counts consecutive control
	// passes without a heartbeat, suspected marks a site pulled from the
	// donor pool, declared marks an expired lease — the point where the
	// loss is journaled.
	missedBeats int
	suspected   bool
	declared    bool

	// Last control-period sample.
	soc       float64
	solarW    float64
	mode      core.OpMode
	pendingGB float64

	// savedSeen marks how many checkpointed images have already been
	// considered for shipping.
	savedSeen int

	// Deadline tracking: lastProcessed is the sink's cumulative output at
	// the previous pass, stalled counts consecutive in-window passes with
	// backlog but no progress, and deadline marks a site that will not
	// finish its backlog before its operating window closes.
	lastProcessed float64
	stalled       int
	deadline      bool
	// lastInbound is when migrated work last landed (or will land) here;
	// a freshly loaded site gets a grace period to spin up before the
	// deadline logic may judge it stalled.
	lastInbound time.Duration

	// lostPendingGB is the deferred backlog destroyed with the site when it
	// died (zero for live sites).
	lostPendingGB float64

	// Durable accounting, rebuilt from the migration log on recovery.
	jobsOut, jobsIn     int
	gbOut, gbIn         float64
	imagesOut, imagesIn int
}

// needsEvac reports whether the site should be moving work off-site.
func (st *siteState) needsEvac(deficit float64) bool {
	return st.evacuate || st.mode >= core.ModeConservative || st.soc < deficit
}

// shipment is a bundle of checkpoint images in transit between sites.
type shipment struct {
	id       uint64 // image-store key (legacy lane, high bit set)
	arriveAt time.Duration
	from, to int
	images   int
	gb       float64
}

// siteFailure is a scheduled site loss (the chaos campaign's storm damage).
type siteFailure struct {
	day  int
	at   time.Duration
	site int
	done bool
}

// Totals is the fleet-wide migration accounting. It is rebuilt from the
// migration log on recovery, so it survives the coordinator process.
type Totals struct {
	Migrations    int // job-migration shipments
	JobsMoved     int
	MigratedGB    float64
	ImagesShipped int
	CheckpointGB  float64
	RestoredVMs   int
	SitesLost     int
	EnergyWh      float64
	Cost          cost.Dollars

	// Degraded-WAN accounting (zero when Config.WAN is nil).
	RetransmitGB  float64 // bytes spent on the link beyond goodput
	Reroutes      int     // transfers restarted toward a fresh donor
	ChunkDrops    int     // chunk attempts lost in transit
	ChunkCorrupts int     // chunk attempts discarded by CRC framing

	// Guard counters: zero by construction, hard-failed by every test
	// that sees them nonzero. JobsDoubleRun counts a job landing while
	// already resident at a site (it would run in two places);
	// SplitBrain counts a job entering a second transfer while still in
	// flight. Re-migration — land, then later leave on a new transfer —
	// is legitimate and trips neither.
	JobsDoubleRun int
	SplitBrain    int
}

// transfer is one chunked WAN shipment in flight: jobs (with manifest) or
// checkpoint images. The durable part — identity, endpoints, byte offset —
// is rebuilt from the migration log on recovery; the retry state is
// re-derived by deterministically re-running the day.
type transfer struct {
	id       uint64
	from, to int
	images   int
	manifest []JobRef // nil for checkpoint transfers
	gb       float64
	total    int64 // bytes
	sent     int64 // contiguous delivered bytes

	// Live-only retry state, reset at each day boundary.
	stalled      int // consecutive zero-progress passes
	backoffUntil time.Duration
}

// Coordinator owns N federated sites and drives their interleaved day loop.
type Coordinator struct {
	cfg    Config
	tariff cost.MigrationTariff

	sites    []siteState
	inflight []shipment
	failures []*siteFailure

	// Chunked WAN transfer engine (Config.WAN set). xfers is the in-flight
	// table, rebuilt from the migration log on recovery; nextXfer assigns
	// transfer IDs; appliedSeq gates replay so a record is never applied
	// twice. landed and inXfer are the exactly-once guards: a job ID that
	// lands twice or enters a second transfer while in flight increments
	// the Totals guard counters instead of silently double-running.
	xfers     []*transfer
	nextXfer  uint64
	nextShip  uint64 // legacy shipment IDs for the image store
	appliedSeq uint64
	landed    map[uint64]bool
	inXfer    map[uint64]uint64 // job ID -> transfer ID
	heals     int               // suspected/declared sites that beat again

	// donorRank is the pass-scoped donor ordering: site indices that pass
	// every frozen donor filter, sorted by sampled SoC descending (ties to
	// the lowest index). Built once per pass from the samples — O(N log N)
	// — so each donor() call is a short ordered walk instead of a full
	// rescan; with many evacuating sites the old per-call scan made a pass
	// O(N²). Reused across passes to avoid per-pass allocation.
	donorRank []int

	// Per-site operating windows for the current day, taken from RunDay's
	// configs — the deadline the coordinator ships against.
	winStart, winEnd []time.Duration

	log       *migLog
	recovered bool

	day    int
	totals Totals

	tel *fleetTelemetry
}

// New assembles a coordinator over the given sites. When cfg.LogDir holds a
// prior migration log, its records are replayed into the coordinator's
// accounting (Recovered reports this).
func New(cfg Config, sites []Site) (*Coordinator, error) {
	if len(sites) == 0 {
		return nil, fmt.Errorf("fleet: coordinator needs at least one site")
	}
	for i := range sites {
		if sites[i].Sink == nil {
			return nil, fmt.Errorf("fleet: site %d has a nil Sink", i)
		}
		if sites[i].Manager == nil {
			return nil, fmt.Errorf("fleet: site %d has a nil Manager", i)
		}
	}
	if cfg.Period <= 0 {
		cfg.Period = 5 * time.Minute
	}
	if cfg.SurplusSoC <= 0 {
		cfg.SurplusSoC = 0.55
	}
	if cfg.DeficitSoC <= 0 {
		cfg.DeficitSoC = 0.40
	}
	tariff := cfg.Tariff
	if tariff.Link.Mbps <= 0 {
		tariff = cost.DefaultMigrationTariff()
	}
	if cfg.ChunkBytes <= 0 {
		cfg.ChunkBytes = 250e6
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = 2
	}
	if cfg.LeasePasses <= 0 {
		cfg.LeasePasses = 96
	}
	if cfg.RerouteAfter <= 0 {
		cfg.RerouteAfter = 6
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 30 * time.Minute
	}
	if cfg.WAN != nil && cfg.WAN.Sites() != len(sites) {
		return nil, fmt.Errorf("fleet: WAN models %d sites, coordinator has %d",
			cfg.WAN.Sites(), len(sites))
	}

	c := &Coordinator{
		cfg: cfg, tariff: tariff, sites: make([]siteState, len(sites)),
		landed: make(map[uint64]bool), inXfer: make(map[uint64]uint64),
	}
	for i := range sites {
		name := sites[i].Name
		if name == "" {
			name = fmt.Sprintf("site%d", i)
		}
		c.sites[i] = siteState{name: name, sink: sites[i].Sink, mgr: sites[i].Manager}
		if cfg.WAN != nil {
			// Exactly-once tracking needs fleet-unique job IDs; give each
			// site its own ID lane.
			if s, ok := sites[i].Sink.(interface{ SetIDBase(uint64) }); ok {
				s.SetIDBase(uint64(i+1) << 32)
			}
		}
	}

	if cfg.Migration {
		for i := range c.sites {
			st := &c.sites[i]
			hooked, ok := st.mgr.(interface {
				SetModeHook(func(now time.Duration, from, to core.OpMode))
			})
			if !ok {
				continue
			}
			hooked.SetModeHook(func(now time.Duration, from, to core.OpMode) {
				if to == core.ModeNormal {
					st.evacuate = false
					return
				}
				// Any downgrade onto the ladder means shedding is imminent:
				// migrate before the shed destroys progress.
				if to > from && to >= core.ModeConservative {
					st.evacuate = true
				}
			})
		}
	}

	if cfg.LogDir != "" {
		fsys := cfg.LogFS
		if fsys == nil {
			fsys = journal.Disk
		}
		log, records, seqs, err := openLog(fsys, cfg.LogDir)
		if err != nil {
			return nil, err
		}
		c.log = log
		if len(records) > 0 {
			c.recovered = true
			for i, r := range records {
				c.replay(r, seqs[i])
			}
		}
	}
	return c, nil
}

// Recovered reports whether New found and replayed a prior migration log.
func (c *Coordinator) Recovered() bool { return c.recovered }

// Totals returns the fleet-wide migration accounting so far.
func (c *Coordinator) Totals() Totals { return c.totals }

// LogSeq returns the last journal sequence number applied to the
// coordinator's accounting (0 with no migration log). The fleet daemon
// stamps this into its day-boundary snapshots so a resume can roll the
// migration log back to exactly the snapshot's moment.
func (c *Coordinator) LogSeq() uint64 { return c.appliedSeq }

// Close releases the migration log. The coordinator must not be used after.
func (c *Coordinator) Close() error {
	if c.log == nil {
		return nil
	}
	return c.log.close()
}

// ScheduleSiteFailure arranges for site to die on the given day at sim time
// at: its cluster crashes (in-flight VMs are lost), it stops ticking, and
// it leaves the migration pool. The disposability campaign uses this.
func (c *Coordinator) ScheduleSiteFailure(day int, at time.Duration, site int) error {
	if site < 0 || site >= len(c.sites) {
		return fmt.Errorf("fleet: no site %d to fail", site)
	}
	c.failures = append(c.failures, &siteFailure{day: day, at: at, site: site})
	return nil
}

// replay folds one migration-log record back into the accounting — both the
// recovery path and (via record) the live path, so the two are one code
// path and cannot drift. Physical effects (jobs landing in sinks) happen
// live in pumpTransfers, never here: replaying a healed log over a live
// coordinator must change accounting only. Replay is idempotent: seq-gated
// (a record at or below appliedSeq is skipped) and job landings deduplicate
// by ID — a duplicate trips the JobsDoubleRun guard counter instead of
// double-counting.
func (c *Coordinator) replay(r Record, seq uint64) {
	if seq != 0 {
		if seq <= c.appliedSeq {
			return
		}
		c.appliedSeq = seq
	}
	switch r.Kind {
	case RecJob:
		c.totals.Migrations++
		c.totals.JobsMoved += r.Jobs
		c.totals.MigratedGB += r.GB
		c.totals.EnergyWh += c.tariff.EnergyWh(r.GB)
		c.totals.Cost += c.tariff.Cost(r.GB)
		if r.From >= 0 && r.From < len(c.sites) {
			c.sites[r.From].jobsOut += r.Jobs
			c.sites[r.From].gbOut += r.GB
		}
		if r.To >= 0 && r.To < len(c.sites) {
			c.sites[r.To].jobsIn += r.Jobs
			c.sites[r.To].gbIn += r.GB
		}
	case RecCheckpoint:
		c.totals.ImagesShipped += r.Images
		c.totals.CheckpointGB += r.GB
		c.totals.EnergyWh += c.tariff.EnergyWh(r.GB)
		c.totals.Cost += c.tariff.Cost(r.GB)
		if r.From >= 0 && r.From < len(c.sites) {
			c.sites[r.From].imagesOut += r.Images
		}
	case RecRestore:
		c.totals.RestoredVMs += r.Images
		if r.To >= 0 && r.To < len(c.sites) {
			c.sites[r.To].imagesIn += r.Images
		}
	case RecSiteLoss:
		c.totals.SitesLost++

	case RecXferStart:
		t := &transfer{
			id: r.Xfer, from: r.From, to: r.To, images: r.Images,
			manifest: r.Manifest, gb: r.GB, total: gbToBytes(r.GB),
		}
		c.xfers = append(c.xfers, t)
		if r.Xfer > c.nextXfer {
			c.nextXfer = r.Xfer
		}
		if len(r.Manifest) > 0 {
			c.totals.Migrations++
			c.totals.JobsMoved += r.Jobs
			c.totals.MigratedGB += r.GB
			if r.From >= 0 && r.From < len(c.sites) {
				c.sites[r.From].jobsOut += r.Jobs
				c.sites[r.From].gbOut += r.GB
			}
			for _, ref := range r.Manifest {
				// A landed job may legitimately re-migrate (its new host
				// evacuates in turn): entering a transfer takes it off its
				// site. Being in two transfers at once never is.
				if c.inXfer[ref.ID] != 0 {
					c.totals.SplitBrain++
					continue
				}
				delete(c.landed, ref.ID)
				c.inXfer[ref.ID] = r.Xfer
			}
		} else {
			c.totals.ImagesShipped += r.Images
			c.totals.CheckpointGB += r.GB
			if r.From >= 0 && r.From < len(c.sites) {
				c.sites[r.From].imagesOut += r.Images
			}
		}

	case RecXferProgress:
		t := c.findXfer(r.Xfer)
		if t == nil {
			return
		}
		delta := r.Offset - t.sent
		if delta < 0 {
			delta = 0
		}
		t.sent = r.Offset
		c.totals.RetransmitGB += bytesToGB(r.Attempted - delta)
		c.totals.ChunkDrops += r.Drops
		c.totals.ChunkCorrupts += r.Corrupts
		// Every attempted byte rides the link: retransmissions are billed
		// at the same tariff as goodput.
		c.totals.EnergyWh += c.tariff.EnergyWhBytes(r.Attempted)
		c.totals.Cost += c.tariff.CostBytes(r.Attempted)

	case RecXferDone:
		t := c.findXfer(r.Xfer)
		if t == nil {
			return
		}
		if len(t.manifest) > 0 {
			for _, ref := range t.manifest {
				delete(c.inXfer, ref.ID)
				if c.landed[ref.ID] {
					c.totals.JobsDoubleRun++
					continue
				}
				c.landed[ref.ID] = true
			}
			if t.to >= 0 && t.to < len(c.sites) {
				c.sites[t.to].jobsIn += len(t.manifest)
				c.sites[t.to].gbIn += t.gb
			}
		} else {
			c.totals.RestoredVMs += t.images
			if t.to >= 0 && t.to < len(c.sites) {
				c.sites[t.to].imagesIn += t.images
			}
		}
		c.removeXfer(r.Xfer)

	case RecXferReroute:
		t := c.findXfer(r.Xfer)
		if t == nil {
			return
		}
		c.totals.Reroutes++
		// Bytes already delivered to the abandoned destination are wasted.
		c.totals.RetransmitGB += bytesToGB(r.Offset)
		t.to = r.To
		t.sent = 0

	case RecXferAbort:
		t := c.findXfer(r.Xfer)
		if t == nil {
			return
		}
		for _, ref := range t.manifest {
			delete(c.inXfer, ref.ID)
		}
		if t.from >= 0 && t.from < len(c.sites) {
			c.sites[t.from].lostPendingGB += r.GB
		}
		c.removeXfer(r.Xfer)
	}
}

// shipID assigns an image-store key to a legacy (non-WAN) shipment. The
// high bit keeps the legacy lane disjoint from WAN transfer IDs.
func (c *Coordinator) shipID() uint64 {
	c.nextShip++
	return 1<<63 | c.nextShip
}

// findXfer returns the in-flight transfer with the given ID, or nil.
func (c *Coordinator) findXfer(id uint64) *transfer {
	for _, t := range c.xfers {
		if t.id == id {
			return t
		}
	}
	return nil
}

// removeXfer drops the transfer with the given ID from the in-flight table.
func (c *Coordinator) removeXfer(id uint64) {
	for i, t := range c.xfers {
		if t.id == id {
			c.xfers = append(c.xfers[:i], c.xfers[i+1:]...)
			return
		}
	}
}

// record journals one migration event and folds it into the accounting.
func (c *Coordinator) record(r Record) error {
	var seq uint64
	if c.log != nil {
		s, err := c.log.append(r)
		if err != nil {
			return fmt.Errorf("fleet: migration log: %w", err)
		}
		seq = s
	}
	c.replay(r, seq)
	return nil
}

// gbToBytes and bytesToGB convert between the log's GB accounting and the
// chunk engine's byte offsets (decimal GB, matching cost.BytesPerGB).
func gbToBytes(gb float64) int64 { return int64(math.Round(gb * cost.BytesPerGB)) }

func bytesToGB(b int64) float64 { return float64(b) / cost.BytesPerGB }

// RunDay builds one System per site from cfgs (banks typically carry across
// days via Config.Bank), and runs the interleaved federated day. Results
// come back in site order. With Migration off this is exactly Fleet.Run.
func (c *Coordinator) RunDay(cfgs []sim.Config) ([]sim.Result, error) {
	if len(cfgs) != len(c.sites) {
		return nil, fmt.Errorf("fleet: %d day configs for %d sites", len(cfgs), len(c.sites))
	}
	specs := make([]sim.FleetSpec, len(c.sites))
	c.winStart = make([]time.Duration, len(c.sites))
	c.winEnd = make([]time.Duration, len(c.sites))
	for i := range c.sites {
		specs[i] = sim.FleetSpec{Config: cfgs[i], Sink: c.sites[i].sink, Manager: c.sites[i].mgr}
		c.winStart[i], c.winEnd[i] = cfgs[i].WindowStart, cfgs[i].WindowEnd
	}
	fl, err := sim.NewFleet(specs)
	if err != nil {
		return nil, err
	}
	for i := range c.sites {
		// Deadline cursors are per-day: time-of-day restarts at dawn.
		c.sites[i].stalled = 0
		c.sites[i].deadline = false
		c.sites[i].lastInbound = 0
		// The cluster (and its saved-image count) rebuilds fresh each day,
		// so the shipping cursor must restart too.
		c.sites[i].savedSeen = 0
		if c.day > 0 {
			if r, ok := c.sites[i].sink.(interface{ Rollover() }); ok {
				r.Rollover()
			}
		}
	}
	for _, t := range c.xfers {
		// Retry state is live-only: time-of-day restarts at dawn, and a
		// resumed coordinator re-derives it by re-running the day.
		t.stalled = 0
		t.backoffUntil = 0
	}
	if c.cfg.Prepare != nil {
		c.cfg.Prepare(c.day, fl)
	}

	lo, hi := fl.Bounds()
	step := fl.Step()
	for tod := lo; tod < hi; tod += step {
		if c.cfg.Abort != nil && c.cfg.Abort(c.day, tod) {
			return nil, ErrAborted
		}
		for _, sf := range c.failures {
			if !sf.done && sf.day == c.day && tod >= sf.at {
				sf.done = true
				if err := c.failSite(fl, sf.site, tod); err != nil {
					return nil, err
				}
			}
		}
		for i := range c.sites {
			if !c.sites[i].dead {
				fl.TickSite(i, tod)
			}
		}
		if tod%c.cfg.Period == 0 {
			if err := c.pass(fl, tod); err != nil {
				return nil, err
			}
		}
	}
	res := fl.Finish()
	c.day++
	return res, nil
}

// failSite executes a scheduled site loss.
func (c *Coordinator) failSite(fl *sim.Fleet, i int, tod time.Duration) error {
	st := &c.sites[i]
	if st.dead {
		return nil
	}
	st.dead = true
	// Only this site's in-flight resources die with it: running VMs crash,
	// its queued jobs are gone. Work and checkpoints already shipped out are
	// untouched, and shipments addressed to it will re-route.
	fl.System(i).Cluster.Crash()
	if ms, ok := st.sink.(migratableSink); ok {
		st.lostPendingGB = ms.PendingGB()
		ms.TakeJobs() // drop them: the site's storage died too
	}
	if c.cfg.WAN != nil {
		// The coordinator cannot observe a death across a degraded backhaul;
		// the failure detector journals the loss when the lease expires.
		return nil
	}
	return c.record(Record{Day: c.day, At: tod, Kind: RecSiteLoss, From: i, To: -1})
}

// sample refreshes the coordinator's view of site i from the live plant.
// Sampling is read-only: it must not perturb the simulation, or the
// migration-off run would stop being byte-identical to solo runs.
func (c *Coordinator) sample(fl *sim.Fleet, i int) {
	st := &c.sites[i]
	if st.dead {
		return
	}
	sys := fl.System(i)
	n := sys.Bank.Size()
	var soc float64
	for u := 0; u < n; u++ {
		soc += core.EstimatedSoC(sys, u)
	}
	if n > 0 {
		soc /= float64(n)
	}
	st.soc = soc
	st.solarW = float64(sys.SolarNow())
	st.mode = core.ModeNormal
	if m, ok := st.mgr.(interface{ Mode() core.OpMode }); ok {
		st.mode = m.Mode()
	}
	st.pendingGB = 0
	if ms, ok := st.sink.(migratableSink); ok {
		st.pendingGB = ms.PendingGB()
	}
}

// rebuildDonorRank rebuilds the pass-scoped donor ordering from the fresh
// samples. Every filter applied here is frozen for the remainder of the
// pass: dead and deadline flags, the evacuate latch, and the sampled soc /
// mode / pendingGB fields only change between passes (the evacuation
// loop's pendingGB reset touches only sites that fail these filters, so
// it cannot promote or demote a ranked donor mid-pass). The sort is
// stable over an index-ascending build, so equal SoCs keep lowest-index
// priority — exactly the old linear scan's strict-greater tie-break.
func (c *Coordinator) rebuildDonorRank(tod time.Duration) {
	c.donorRank = c.donorRank[:0]
	for j := range c.sites {
		st := &c.sites[j]
		if st.dead || st.deadline || st.needsEvac(c.cfg.DeficitSoC) || st.mode != core.ModeNormal {
			continue
		}
		// WAN mode: the coordinator only trusts sites it can currently
		// reach and has not marked suspect — a stale sample is no basis
		// for sending work somewhere.
		if st.suspected || st.declared || c.wanPartitioned(j, tod) {
			continue
		}
		if _, ok := st.sink.(migratableSink); !ok {
			continue
		}
		if st.soc < c.cfg.SurplusSoC {
			continue
		}
		c.donorRank = append(c.donorRank, j)
	}
	sort.SliceStable(c.donorRank, func(a, b int) bool {
		return c.sites[c.donorRank[a]].soc > c.sites[c.donorRank[b]].soc
	})
}

// donor picks the best migration destination for work leaving site from:
// the live, batch-capable, non-evacuating Normal-mode site with the highest
// sampled SoC at or above the surplus threshold — the front of donorRank.
// With requireIdle set the destination must also have an empty queue and
// nothing in flight — deadline-driven shipments may only go where they
// will actually run now, which keeps end-of-window backlog from bouncing
// between busy sites. The in-flight count is deliberately read live, not
// at rank build: scheduling migrated jobs onto a donor makes it non-idle
// for the rest of the pass. Returns -1 if none qualifies. Ties break
// toward the lowest index, keeping the choice deterministic.
func (c *Coordinator) donor(from int, requireIdle bool) int {
	for _, j := range c.donorRank {
		if j == from {
			continue
		}
		st := &c.sites[j]
		if requireIdle {
			if st.pendingGB > 0 {
				continue
			}
			if fs, ok := st.sink.(interface{ InFlight() int }); ok && fs.InFlight() > 0 {
				continue
			}
		}
		return j
	}
	return -1
}

// inboundGrace is how long a site that just received migrated work is
// exempt from the stalled-progress deadline check — time to boot VMs and
// start chewing before the coordinator may move the work again.
const inboundGrace = 30 * time.Minute

// wanPartitioned reports whether site i is cut off from the coordinator by
// the WAN model right now (always false without a WAN).
func (c *Coordinator) wanPartitioned(i int, tod time.Duration) bool {
	return c.cfg.WAN != nil && c.cfg.WAN.Partitioned(i, c.day, tod)
}

// heartbeats advances the failure detector one control pass. A heartbeat
// gets through iff the site is physically alive and not WAN-partitioned;
// the coordinator cannot tell those two conditions apart, which is the
// entire point: after SuspectAfter misses the site is suspected (pulled
// from the donor pool, still running solo), and only after LeasePasses
// misses — longer than any scheduled partition — does the lease expire
// and the loss get journaled. A heartbeat from a suspected or declared
// site heals it: replayed records deduplicate by job ID, so rejoining is
// accounting-safe by construction.
func (c *Coordinator) heartbeats(tod time.Duration) error {
	for i := range c.sites {
		st := &c.sites[i]
		if !st.dead && !c.wanPartitioned(i, tod) {
			if st.suspected || st.declared {
				c.heals++
			}
			st.missedBeats = 0
			st.suspected = false
			st.declared = false
			continue
		}
		st.missedBeats++
		if st.missedBeats >= c.cfg.SuspectAfter {
			st.suspected = true
		}
		if st.missedBeats >= c.cfg.LeasePasses && !st.declared {
			st.declared = true
			if c.cfg.Migration {
				if err := c.record(Record{Day: c.day, At: tod, Kind: RecSiteLoss,
					From: i, To: -1}); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// pass is one coordinator control period: sample every site, then (with
// migration on) deliver due checkpoint shipments, ship fresh checkpoints
// off evacuating sites, and migrate deferred jobs toward surplus. With a
// WAN model attached, heartbeats run first and samples/shipments only
// cross reachable links.
func (c *Coordinator) pass(fl *sim.Fleet, tod time.Duration) error {
	if c.cfg.WAN != nil {
		if err := c.heartbeats(tod); err != nil {
			return err
		}
	}
	for i := range c.sites {
		// A partitioned site cannot report: the coordinator keeps steering
		// by its last sample until the link heals.
		if c.wanPartitioned(i, tod) {
			continue
		}
		c.sample(fl, i)
	}
	defer c.publishTelemetry()
	if !c.cfg.Migration {
		return nil
	}

	// Deadline pressure: energy state is not the only reason to evacuate.
	// A site that is sitting on backlog without progress (its manager is
	// deferring the work), or whose recent processing rate cannot clear the
	// backlog before its operating window closes, should hand the work to a
	// site that will finish it today instead of carrying it into the night.
	for i := range c.sites {
		st := &c.sites[i]
		if st.dead {
			continue
		}
		if c.wanPartitioned(i, tod) {
			// Frozen cursors: no fresh sample, so no rate judgment either.
			continue
		}
		processed := st.lastProcessed
		if p, ok := st.sink.(interface{ ProcessedGB() float64 }); ok {
			processed = p.ProcessedGB()
		}
		rateGBh := (processed - st.lastProcessed) / c.cfg.Period.Hours()
		st.lastProcessed = processed
		st.deadline = false
		if st.pendingGB <= 0 || tod < c.winStart[i] || tod >= c.winEnd[i] ||
			tod < st.lastInbound+inboundGrace {
			st.stalled = 0
			continue
		}
		if rateGBh <= 0 {
			st.stalled++
		} else {
			st.stalled = 0
		}
		remaining := c.winEnd[i] - tod
		if st.stalled >= 3 || (rateGBh > 0 && st.pendingGB > rateGBh*remaining.Hours()) {
			st.deadline = true
		}
	}

	// Every donor filter is now settled for this pass; rank the candidates
	// once so the shipment and evacuation loops below pick donors by
	// ordered walk instead of rescanning all N sites per call.
	c.rebuildDonorRank(tod)

	if c.cfg.WAN != nil {
		return c.passWAN(fl, tod)
	}

	// Deliver checkpoint shipments whose transfer has completed. A shipment
	// addressed to a site that died in transit re-routes to a fresh donor —
	// the checkpoint is durable, only sites are disposable. With no donor
	// available it stays in flight and retries next pass.
	kept := c.inflight[:0]
	for _, sh := range c.inflight {
		if tod < sh.arriveAt {
			kept = append(kept, sh)
			continue
		}
		if c.sites[sh.to].dead {
			if to := c.donor(sh.from, false); to >= 0 {
				reroute := shipment{
					id:       c.shipID(),
					arriveAt: tod + shipDur(c.tariff.ShipHours(sh.gb)),
					from:     sh.to, to: to, images: sh.images, gb: sh.gb,
				}
				kept = append(kept, reroute)
				if err := c.record(Record{Day: c.day, At: tod, Kind: RecCheckpoint,
					From: sh.to, To: to, Images: sh.images, GB: sh.gb}); err != nil {
					return err
				}
			} else {
				kept = append(kept, sh) // hold until a donor appears
			}
			continue
		}
		if !c.landImages(sh.id, sh.to) {
			// The landing could not be verified: the checkpoint is still
			// durable at the source, so it ships again — journaled as a
			// fresh checkpoint shipment, never counted as a restore.
			c.cfg.Images.stats.Reshipped++
			kept = append(kept, shipment{
				id:       c.shipID(),
				arriveAt: tod + shipDur(c.tariff.ShipHours(sh.gb)),
				from:     sh.from, to: sh.to, images: sh.images, gb: sh.gb,
			})
			if err := c.record(Record{Day: c.day, At: tod, Kind: RecCheckpoint,
				From: sh.from, To: sh.to, Images: sh.images, GB: sh.gb}); err != nil {
				return err
			}
			continue
		}
		if err := c.record(Record{Day: c.day, At: tod, Kind: RecRestore,
			From: sh.from, To: sh.to, Images: sh.images, GB: sh.gb}); err != nil {
			return err
		}
	}
	c.inflight = kept

	for i := range c.sites {
		st := &c.sites[i]
		energyEvac := st.needsEvac(c.cfg.DeficitSoC)
		if st.dead || !(energyEvac || st.deadline) {
			continue
		}

		// Ship newly completed checkpoint images off the evacuating site.
		// The ladder (or orderly shutdown) produced them; the coordinator
		// only moves them somewhere sunny. Deadline pressure alone does not
		// ship images — the VMs there are fine, only the batch queue is late.
		if saved := fl.System(i).Cluster.VMsSaved(); energyEvac && saved > st.savedSeen {
			if to := c.donor(i, false); to >= 0 {
				n := saved - st.savedSeen
				st.savedSeen = saved
				gb := float64(n) * c.tariff.VMImageGB
				c.inflight = append(c.inflight, shipment{
					id:       c.shipID(),
					arriveAt: tod + shipDur(c.tariff.ShipHours(gb)),
					from:     i, to: to, images: n, gb: gb,
				})
				if err := c.record(Record{Day: c.day, At: tod, Kind: RecCheckpoint,
					From: i, To: to, Images: n, GB: gb}); err != nil {
					return err
				}
			}
		}

		// Migrate the deferred batch backlog toward surplus.
		ms, ok := st.sink.(migratableSink)
		if !ok || st.pendingGB <= 0 {
			continue
		}
		to := c.donor(i, !energyEvac)
		if to < 0 {
			continue
		}
		jobs := ms.TakeJobs()
		if len(jobs) == 0 {
			continue
		}
		dest := c.sites[to].sink.(migratableSink)
		var gb float64
		for _, j := range jobs {
			gb += j.Remaining
			if !j.Migrated {
				j.Migrated = true
				j.Origin = i
			}
		}
		arrive := tod + shipDur(c.tariff.ShipHours(gb))
		for _, j := range jobs {
			dest.Schedule(arrive, j)
		}
		if arrive > c.sites[to].lastInbound {
			c.sites[to].lastInbound = arrive
		}
		if err := c.record(Record{Day: c.day, At: tod, Kind: RecJob,
			From: i, To: to, Jobs: len(jobs), GB: gb}); err != nil {
			return err
		}
		st.pendingGB = 0
	}
	return nil
}

// maxChunkTriesPerPass bounds chunk attempts per transfer per control pass
// — a safety valve against a pathological drop rate spinning the pass loop.
const maxChunkTriesPerPass = 128

// attemptKey derives the per-attempt component of the chunk-fate hash from
// the simulation clock, not from mutable retry counters: a resumed
// coordinator re-running the day re-derives the exact same fates, which is
// what makes kill/resume bit-identical.
func attemptKey(day int, tod time.Duration, try int) int {
	return (day*86400+int(tod/time.Second))*128 + try
}

// donorExcluding walks the donor rank for a destination that is neither the
// source nor the excluded (failed) destination. Returns -1 if none.
func (c *Coordinator) donorExcluding(from, except int) int {
	for _, j := range c.donorRank {
		if j == from || j == except {
			continue
		}
		return j
	}
	return -1
}

// startTransfer opens a chunked transfer and journals its manifest. The
// physical hand-off happens when the last chunk lands (pumpTransfers), so a
// transfer cut short by a site death or reroute never half-delivers jobs.
func (c *Coordinator) startTransfer(tod time.Duration, from, to int, manifest []JobRef, images int, gb float64) error {
	id := c.nextXfer + 1
	return c.record(Record{
		Day: c.day, At: tod, Kind: RecXferStart,
		From: from, To: to, Jobs: len(manifest), GB: gb, Images: images,
		Xfer: id, Manifest: manifest,
	})
}

// passWAN is the migration half of a control pass under the degraded-WAN
// model: pump in-flight chunked transfers, then open new ones off
// evacuating sites. Shipments only cross links the WAN says are up, and
// destinations come from the reachability-filtered donor rank.
func (c *Coordinator) passWAN(fl *sim.Fleet, tod time.Duration) error {
	if err := c.pumpTransfers(fl, tod); err != nil {
		return err
	}

	for i := range c.sites {
		st := &c.sites[i]
		energyEvac := st.needsEvac(c.cfg.DeficitSoC)
		if st.dead || st.declared || !(energyEvac || st.deadline) {
			continue
		}
		// A partitioned site cannot ship anything: its backlog waits for
		// the link, exactly like a real cut fiber.
		if c.wanPartitioned(i, tod) {
			continue
		}

		// Ship newly completed checkpoint images off the evacuating site.
		if saved := fl.System(i).Cluster.VMsSaved(); energyEvac && saved > st.savedSeen {
			if to := c.donor(i, false); to >= 0 {
				n := saved - st.savedSeen
				st.savedSeen = saved
				gb := float64(n) * c.tariff.VMImageGB
				if err := c.startTransfer(tod, i, to, nil, n, gb); err != nil {
					return err
				}
			}
		}

		// Migrate the deferred batch backlog toward surplus. Jobs leave the
		// source queue now but only land when the transfer completes — in
		// between they exist solely in the journaled manifest.
		ms, ok := st.sink.(migratableSink)
		if !ok || st.pendingGB <= 0 {
			continue
		}
		to := c.donor(i, !energyEvac)
		if to < 0 {
			continue
		}
		jobs := ms.TakeJobs()
		if len(jobs) == 0 {
			continue
		}
		manifest := make([]JobRef, len(jobs))
		var gb float64
		for k, j := range jobs {
			gb += j.Remaining
			origin := i
			if j.Migrated {
				origin = j.Origin
			}
			manifest[k] = JobRef{
				ID: j.ID, Size: j.Size, Remaining: j.Remaining,
				Arrived: j.Arrived, Origin: origin,
			}
		}
		if err := c.startTransfer(tod, i, to, manifest, 0, gb); err != nil {
			return err
		}
		st.pendingGB = 0
	}
	return nil
}

// pumpTransfers moves every in-flight transfer forward by one control
// period's worth of link budget: chunks are attempted against the WAN's
// seeded fate hash, progress (and every attempted byte, for billing) is
// journaled, completed transfers land their jobs or images, transfers to a
// declared-dead destination re-route to a fresh donor, and transfers whose
// source died abort. Stalled transfers back off exponentially (capped at
// MaxBackoff) so a partition doesn't burn the pass loop.
func (c *Coordinator) pumpTransfers(fl *sim.Fleet, tod time.Duration) error {
	// replay mutates c.xfers (done/abort remove entries), so walk a copy.
	for _, t := range append([]*transfer(nil), c.xfers...) {
		// Source declared dead: the unsent bytes died with the site. Jobs
		// still in the manifest are lost exactly like queued jobs on the
		// dead site — disposability, not double-run.
		if c.sites[t.from].declared {
			if err := c.record(Record{Day: c.day, At: tod, Kind: RecXferAbort,
				From: t.from, To: t.to, Jobs: len(t.manifest),
				GB: t.gb, Images: t.images, Xfer: t.id}); err != nil {
				return err
			}
			continue
		}

		// Destination declared dead, or persistently unreachable: give the
		// bytes to a donor that is actually there. Delivered bytes at the
		// old destination are wasted; the transfer restarts from zero.
		if c.sites[t.to].declared ||
			(t.stalled >= c.cfg.RerouteAfter &&
				(c.sites[t.to].suspected || c.wanPartitioned(t.to, tod))) {
			if to := c.donorExcluding(t.from, t.to); to >= 0 {
				if err := c.record(Record{Day: c.day, At: tod, Kind: RecXferReroute,
					From: t.from, To: to, Jobs: len(t.manifest),
					GB: bytesToGB(t.sent), Images: t.images,
					Xfer: t.id, Offset: t.sent}); err != nil {
					return err
				}
				t.stalled = 0
				t.backoffUntil = 0
			}
			// No donor: hold and keep trying the old destination.
		}

		if tod < t.backoffUntil {
			continue
		}

		eff := c.cfg.WAN.EffectiveMbps(t.from, t.to, c.day, tod)
		destUp := !c.sites[t.to].dead
		startSent := t.sent
		sent := t.sent
		var attempted int64
		var drops, corrupts int
		if eff > 0 && destUp {
			budget := int64(eff * 1e6 / 8 * c.cfg.Period.Seconds())
			tries := 0
			for sent < t.total && tries < maxChunkTriesPerPass {
				chunk := int(sent / c.cfg.ChunkBytes)
				size := c.cfg.ChunkBytes
				if rest := t.total - sent; rest < size {
					size = rest
				}
				if budget < size {
					break
				}
				budget -= size
				attempted += size
				fate := c.cfg.WAN.ChunkFate(t.from, t.to, t.id, chunk,
					attemptKey(c.day, tod, tries))
				tries++
				switch fate {
				case wan.Delivered:
					sent += size
				case wan.Dropped:
					drops++
				case wan.Corrupted:
					corrupts++
				}
			}
		}
		if attempted > 0 {
			// replay applies the offset to t.sent; mutating it here first
			// would make the goodput delta (and RetransmitGB) compute wrong.
			if err := c.record(Record{Day: c.day, At: tod, Kind: RecXferProgress,
				From: t.from, To: t.to, Xfer: t.id, Offset: sent,
				Attempted: attempted, Drops: drops, Corrupts: corrupts}); err != nil {
				return err
			}
		}

		if sent >= t.total {
			// Image transfers must land verifiably before the restore is
			// journaled. An unverifiable landing re-ships to the same
			// destination: a reroute record resets the transfer to byte
			// zero, billing the wasted bytes, and the next completion
			// rewrites the image pair from scratch.
			if len(t.manifest) == 0 && t.images > 0 && !c.landImages(t.id, t.to) {
				c.cfg.Images.stats.Reshipped++
				if err := c.record(Record{Day: c.day, At: tod, Kind: RecXferReroute,
					From: t.from, To: t.to, GB: bytesToGB(sent), Images: t.images,
					Xfer: t.id, Offset: sent}); err != nil {
					return err
				}
				t.stalled = 0
				t.backoffUntil = 0
				continue
			}
			to, images, manifest := t.to, t.images, t.manifest
			if err := c.record(Record{Day: c.day, At: tod, Kind: RecXferDone,
				From: t.from, To: to, Jobs: len(manifest),
				GB: t.gb, Images: images, Xfer: t.id}); err != nil {
				return err
			}
			// Physical hand-off is live-only: a replayed log adjusts
			// accounting, never schedules jobs twice.
			if len(manifest) > 0 {
				dest, ok := c.sites[to].sink.(migratableSink)
				if !ok {
					return fmt.Errorf("fleet: transfer %d landed on non-batch site %d", t.id, to)
				}
				for _, ref := range manifest {
					dest.Schedule(tod, &workload.Job{
						ID: ref.ID, Size: ref.Size, Remaining: ref.Remaining,
						Arrived: ref.Arrived, Migrated: true, Origin: ref.Origin,
					})
				}
				if tod > c.sites[to].lastInbound {
					c.sites[to].lastInbound = tod
				}
			}
			continue
		}

		// Stall bookkeeping: zero progress grows an exponential backoff so
		// a cut link is probed, not hammered.
		if sent == startSent {
			t.stalled++
			shift := t.stalled - 1
			if shift > 8 {
				shift = 8
			}
			b := c.cfg.Period << shift
			if b > c.cfg.MaxBackoff {
				b = c.cfg.MaxBackoff
			}
			t.backoffUntil = tod + b
		} else {
			t.stalled = 0
			t.backoffUntil = 0
		}
	}
	return nil
}

// shipDur converts transfer hours to a duration rounded up to a whole
// second so arrival times stay on the simulation grid.
func shipDur(hours float64) time.Duration {
	d := time.Duration(hours * float64(time.Hour))
	if r := d % time.Second; r != 0 {
		d += time.Second - r
	}
	if d < time.Second {
		d = time.Second
	}
	return d
}

// SiteReport is one site's line in the fleet report.
type SiteReport struct {
	Name                string
	Dead                bool
	Reachable           bool // heartbeat got through on the last pass
	Suspected           bool // pulled from the donor pool by the detector
	SoC                 float64
	Mode                core.OpMode
	PendingGB           float64
	InFlight            int
	JobsOut, JobsIn     int
	GBOut, GBIn         float64
	ImagesOut, ImagesIn int
	MigratedCompletedGB float64
	LostPendingGB       float64
}

// Report is the coordinator's end-of-run summary.
type Report struct {
	Days      int
	Migration bool
	Recovered bool
	Heals     int // suspected/declared sites that heartbeated again
	Totals    Totals
	Sites     []SiteReport
}

// Report assembles the current fleet summary.
func (c *Coordinator) Report() *Report {
	rep := &Report{
		Days:      c.day,
		Migration: c.cfg.Migration,
		Recovered: c.recovered,
		Heals:     c.heals,
		Totals:    c.totals,
		Sites:     make([]SiteReport, len(c.sites)),
	}
	for i := range c.sites {
		st := &c.sites[i]
		sr := SiteReport{
			Name: st.name, Dead: st.dead,
			Reachable: st.missedBeats == 0, Suspected: st.suspected,
			SoC: st.soc, Mode: st.mode, PendingGB: st.pendingGB,
			JobsOut: st.jobsOut, JobsIn: st.jobsIn,
			GBOut: st.gbOut, GBIn: st.gbIn,
			ImagesOut: st.imagesOut, ImagesIn: st.imagesIn,
			LostPendingGB: st.lostPendingGB,
		}
		if ms, ok := st.sink.(interface{ InFlight() int }); ok {
			sr.InFlight = ms.InFlight()
		}
		if mc, ok := st.sink.(interface{ MigratedCompletedGB() float64 }); ok {
			sr.MigratedCompletedGB = mc.MigratedCompletedGB()
		}
		rep.Sites[i] = sr
	}
	return rep
}

// String is the one-line fleet summary.
func (r *Report) String() string {
	live := 0
	for _, s := range r.Sites {
		if !s.Dead {
			live++
		}
	}
	return fmt.Sprintf("fleet: %d sites (%d live), %d days, migration %v: %d shipments moved %d jobs / %.1f GB, %d images (%.1f GB) shipped, %d restored, %.1f Wh / $%.2f backhaul, %d sites lost",
		len(r.Sites), live, r.Days, r.Migration,
		r.Totals.Migrations, r.Totals.JobsMoved, r.Totals.MigratedGB,
		r.Totals.ImagesShipped, r.Totals.CheckpointGB, r.Totals.RestoredVMs,
		r.Totals.EnergyWh, float64(r.Totals.Cost), r.Totals.SitesLost)
}

package core

import (
	"time"

	"insure/internal/sim"
)

// This file is the manager's external energy-outlook surface: the small,
// read-only view of the plant's live energy state that consumers outside
// the control loop steer by. The fleet coordinator samples pieces of it to
// pick migration donors; the serving gateway (internal/gateway) admits
// interactive requests against it. Everything here reads the same
// transduced estimates the controller itself plans with, so an admission
// decision and a ladder decision can never disagree about what the plant
// knows.

// Outlook is a point-in-time summary of the plant's energy state.
type Outlook struct {
	// Mode is the survivability rung (ModeNormal when the ladder is off).
	Mode OpMode
	// SoC is the mean transduced state of charge over the non-quarantined
	// units — the same aggregate the ladder's thresholds test.
	SoC float64
	// SupplyW is the conservative renewable supply forecast for right now.
	SupplyW float64
	// DemandW is the cluster's present draw.
	DemandW float64
}

// MeanSoC returns the mean transduced SoC over the bank's non-quarantined
// units. This is the ladder's own aggregate (surviveEvaluate computes the
// identical mean), exported so admission control outside the control loop
// shares the controller's view of the buffer.
func (m *Manager) MeanSoC(sys *sim.System) float64 {
	var sum float64
	n := 0
	for i := range m.groups {
		if m.watch.quarantined[i] {
			continue
		}
		sum += estSoC(sys, i)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// ForecastSupplyW is the conservative renewable supply forecast at sim time
// at — the same estimator the survivability ladder plans against. Before
// the estimator has observed anything (or when forecasting is disabled) it
// falls back to the fixed 25% cloud margin on the present supply, matching
// projectDepletion's fallback.
func (m *Manager) ForecastSupplyW(sys *sim.System, at time.Duration) float64 {
	if m.fc != nil {
		return float64(m.fc.ConservativePredict(at, 1))
	}
	return 0.75 * float64(sys.SolarNow())
}

// Outlook assembles the full energy picture at now.
func (m *Manager) Outlook(sys *sim.System, now time.Duration) Outlook {
	return Outlook{
		Mode:    m.Mode(),
		SoC:     m.MeanSoC(sys),
		SupplyW: m.ForecastSupplyW(sys, now),
		DemandW: float64(sys.Cluster.Power()),
	}
}

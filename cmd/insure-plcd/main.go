// Command insure-plcd runs the battery-array control panel as a standalone
// Modbus TCP server — the same control plane the prototype exposes between
// its PLC and the coordination node (§4).
//
// The daemon simulates the battery array, relay fabric, and transducers in
// real time. Any Modbus TCP client can read per-unit voltage/current input
// registers and drive the charge/discharge coils; the register map is
// documented in insure/internal/plc. SIGINT/SIGTERM shut the panel down
// cleanly, draining live Modbus sessions.
//
// Usage:
//
//	insure-plcd -listen 127.0.0.1:1502 -units 6
//	insure-plcd -faults 'bat:2@2m:0.6,drop@5m'
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"insure/internal/battery"
	"insure/internal/faults"
	"insure/internal/modbus"
	"insure/internal/plc"
	"insure/internal/relay"
	"insure/internal/sensor"
	"insure/internal/units"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("insure-plcd: ")
	listen := flag.String("listen", "127.0.0.1:1502", "Modbus TCP listen address")
	n := flag.Int("units", 6, "battery units")
	soc := flag.Float64("soc", 0.5, "initial state of charge")
	solarW := flag.Float64("solar", 400, "charge-bus power budget (W)")
	loadW := flag.Float64("load", 300, "discharge-bus load (W)")
	faultSpec := flag.String("faults", "", "inject faults at time-since-start: comma-separated kind[:unit]@time[:magnitude] events, e.g. bat:2@2m:0.6,drop@5m (kinds: stick, drift, relay-open, relay-weld, bat, drop)")
	flag.Parse()

	faultPlan, err := faults.Parse(*faultSpec)
	if err != nil {
		log.Fatal(err)
	}

	bank, err := battery.NewBank(battery.DefaultParams(), *n, *soc)
	if err != nil {
		log.Fatal(err)
	}
	fabric := relay.NewFabric(*n)
	probes := make([]*sensor.BatteryProbe, *n)
	for i := range probes {
		probes[i] = sensor.NewBatteryProbe(i)
	}

	controller := plc.New(*n)
	controller.Sample = func(r *plc.RegisterFile) {
		for i, u := range bank.Units() {
			snap := u.Snapshot()
			probes[i].Sample(snap.Terminal, snap.LastCurrent)
			_ = r.SetInput(plc.InputVolt(i), probes[i].Volt.Raw())
			_ = r.SetInput(plc.InputCurrent(i), probes[i].Current.Raw())
		}
		_ = r.SetInput(plc.InputSolarPower, uint16(*solarW))
		_ = r.SetInput(plc.InputLoadPower, uint16(*loadW))
	}
	controller.Actuate = func(r *plc.RegisterFile) {
		for i := 0; i < *n; i++ {
			cr, err1 := r.ReadCoils(plc.CoilCharge(i), 1)
			dr, err2 := r.ReadCoils(plc.CoilDischarge(i), 1)
			if err1 != nil || err2 != nil {
				continue
			}
			pair := fabric.Pair(i)
			switch {
			case cr[0] && dr[0]:
				pair.SetMode(relay.Open) // interlock
			case cr[0]:
				pair.SetMode(relay.Charging)
			case dr[0]:
				pair.SetMode(relay.Discharging)
			default:
				pair.SetMode(relay.Open)
			}
		}
	}

	srv := modbus.NewServer(controller.Regs)
	srv.Logf = log.Printf
	addr, err := srv.Listen(*listen)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("battery control panel on modbus-tcp://%s (%d units)\n", addr, *n)
	fmt.Println("coils: 2i=charge relay, 2i+1=discharge relay; inputs: 2i=voltage code, 2i+1=current code")

	injector := faults.NewInjector(faultPlan, faults.Target{
		Bank:   bank,
		Fabric: fabric,
		Probes: probes,
		Panel:  srv,
	})
	injector.Logf = log.Printf

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Real-time plant loop: 1 s physics ticks, PLC scanning continuously.
	start := time.Now()
	ticker := time.NewTicker(time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			log.Print("signal received, draining connections")
			return
		case <-ticker.C:
		}
		injector.Tick(time.Since(start))
		charging := fabric.UnitsIn(relay.Charging)
		discharging := fabric.UnitsIn(relay.Discharging)
		bank.ChargeSet(charging, units.Watt(*solarW), time.Second)
		bank.DischargeSet(discharging, units.Watt(*loadW), time.Second)
		for _, i := range fabric.UnitsIn(relay.Open) {
			bank.Unit(i).Rest(time.Second)
		}
		fabric.Tick(time.Second)
		controller.Tick(time.Second)
	}
}

package fleet

// The checkpoint image store makes a restore a *verified* event instead of
// an accounting entry: every landed bundle is persisted as a mirrored pair
// of CRC-framed blobs (img-<xfer>.ckpt + img-<xfer>.ckmr) in the landing
// site's subdirectory, read back, and checked byte-for-byte before the
// coordinator records RecRestore / RecXferDone. The blobs use the journal's
// snapshot framing, so the one scrubber that patrols snapshot slots and
// sealed segments also patrols parked images — journal.ScrubDir treats
// *.ckpt/*.ckmr as a repairable mirror pair.
//
// A landing that cannot be verified (both copies unreadable, or the write
// itself failed) is not a restore: the checkpoint is still durable at the
// source, so the coordinator ships it again — RecXferReroute on the WAN
// path, a fresh shipment plus RecCheckpoint on the legacy path.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"

	"insure/internal/journal"
)

// ImageStats counts image-store events.
type ImageStats struct {
	Landed    int // image bundles written to disk
	Verified  int // landings that read back intact
	Repaired  int // damaged copies rebuilt from their intact sibling
	Corrupt   int // landings with no intact copy (each forces a re-ship)
	Reshipped int // shipments dispatched again after a failed verify
}

// ImageStore persists landed VM checkpoint images as mirrored blob pairs
// under per-destination-site subdirectories.
type ImageStore struct {
	fsys  journal.FS
	dir   string
	stats ImageStats
}

// NewImageStore roots an image store at dir on fsys (nil fsys means the
// real disk).
func NewImageStore(fsys journal.FS, dir string) (*ImageStore, error) {
	if fsys == nil {
		fsys = journal.Disk
	}
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, err
	}
	return &ImageStore{fsys: fsys, dir: dir}, nil
}

// Dir returns the store's root directory (the scrubber target).
func (s *ImageStore) Dir() string { return s.dir }

// FS returns the filesystem the store writes through.
func (s *ImageStore) FS() journal.FS { return s.fsys }

// Stats returns the event counts so far.
func (s *ImageStore) Stats() ImageStats { return s.stats }

// imagePayloadBytes sizes the stand-in image body. The simulation ships
// whole gigabytes as accounting; the store persists a deterministic 1 KB
// stand-in whose integrity is what the restore pipeline actually verifies.
const imagePayloadBytes = 1024

// imagePayload derives the stand-in image body from the transfer ID alone,
// so a resumed coordinator re-landing the same transfer writes identical
// bytes (SplitMix64 stream, matching the chaos layers' seeding style).
func imagePayload(xfer uint64) []byte {
	b := make([]byte, imagePayloadBytes)
	x := xfer
	for i := 0; i+8 <= len(b); i += 8 {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		binary.LittleEndian.PutUint64(b[i:], z^(z>>31))
	}
	return b
}

func (s *ImageStore) siteDir(to int) string {
	return filepath.Join(s.dir, fmt.Sprintf("site-%d", to))
}

func imageNames(xfer uint64) (primary, mirror string) {
	base := fmt.Sprintf("img-%016x", xfer)
	return base + ".ckpt", base + ".ckmr"
}

// Land writes the mirrored image pair for a completed transfer and syncs
// the directory. An error means the landing never became durable; the
// caller treats it like a failed verify and re-ships.
func (s *ImageStore) Land(xfer uint64, to int) error {
	dir := s.siteDir(to)
	if err := s.fsys.MkdirAll(dir); err != nil {
		return err
	}
	blob := journal.EncodeBlob(xfer, imagePayload(xfer))
	p, m := imageNames(xfer)
	if err := s.writeFile(dir, p, blob); err != nil {
		return err
	}
	if err := s.writeFile(dir, m, blob); err != nil {
		return err
	}
	if err := s.fsys.SyncDir(dir); err != nil {
		return err
	}
	s.stats.Landed++
	return nil
}

func (s *ImageStore) writeFile(dir, name string, b []byte) error {
	f, err := s.fsys.OpenFile(filepath.Join(dir, name), os.O_CREATE|os.O_TRUNC|os.O_WRONLY)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// Verify reads the landed pair back and confirms at least one copy decodes
// to exactly the expected payload; a damaged sibling is rebuilt from the
// intact copy. False means no intact copy exists — the restore must not be
// counted and the shipment goes again.
func (s *ImageStore) Verify(xfer uint64, to int) bool {
	dir := s.siteDir(to)
	p, m := imageNames(xfer)
	want := imagePayload(xfer)
	good := func(name string) []byte {
		b, err := s.fsys.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil
		}
		payload, seq, err := journal.DecodeBlob(b)
		if err != nil || seq != xfer || !bytes.Equal(payload, want) {
			return nil
		}
		return b
	}
	pb, mb := good(p), good(m)
	switch {
	case pb != nil && mb != nil:
		s.stats.Verified++
		return true
	case pb != nil:
		if s.writeFile(dir, m, pb) == nil {
			s.stats.Repaired++
		}
		s.stats.Verified++
		return true
	case mb != nil:
		if s.writeFile(dir, p, mb) == nil {
			s.stats.Repaired++
		}
		s.stats.Verified++
		return true
	default:
		s.stats.Corrupt++
		return false
	}
}

// landImages persists and verifies a completed image landing through the
// configured store. True when the restore may be counted; with no store
// configured every landing trivially verifies (the pre-integrity
// behaviour, and the reason existing replay logs stay byte-identical).
func (c *Coordinator) landImages(xfer uint64, to int) bool {
	st := c.cfg.Images
	if st == nil {
		return true
	}
	if err := st.Land(xfer, to); err != nil {
		st.stats.Corrupt++
		return false
	}
	return st.Verify(xfer, to)
}

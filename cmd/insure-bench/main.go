// Command insure-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	insure-bench -exp all          # every experiment (parallel by default)
//	insure-bench -exp fig17        # one experiment
//	insure-bench -list             # list experiment IDs
//	insure-bench -parallel=false   # force the serial engine
//	insure-bench -bench-json BENCH.json   # machine-readable perf suite
//	insure-bench -scaling          # plant-years/sec workers-scaling curve
//	insure-bench -scaling -gate    # same, exit 1 if speedup < 0.7·N (N ≥ 2 cores)
//	insure-bench -perf-diff BENCH.new.json   # compare against committed BENCH.json
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"insure/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("insure-bench: ")
	exp := flag.String("exp", "all", "experiment ID to run, or 'all'")
	list := flag.Bool("list", false, "list available experiment IDs")
	format := flag.String("format", "text", "output format: text, csv, markdown")
	parallel := flag.Bool("parallel", true, "run 'all' on a worker pool (output is byte-identical to serial)")
	workers := flag.Int("workers", 0, "worker pool size for -parallel; 0 = GOMAXPROCS")
	benchJSON := flag.String("bench-json", "", "run the performance suite and write machine-readable results to this path")
	scaling := flag.Bool("scaling", false, "measure the plant-years/sec workers-scaling curve and print it")
	gate := flag.Bool("gate", false, "with -scaling: exit non-zero when speedup at N workers is < 0.7*N (N >= 2 cores)")
	scalingCells := flag.Int("scaling-cells", 16, "full-day campaign cells per scaling measurement")
	perfDiff := flag.String("perf-diff", "", "compare this BENCH.json against -perf-base and report regressions > 5%")
	perfBase := flag.String("perf-base", "BENCH.json", "baseline report for -perf-diff")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	if *perfDiff != "" {
		if _, err := runPerfDiff(*perfBase, *perfDiff); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *scaling {
		if err := runScaling(*scalingCells, *gate); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *benchJSON != "" {
		if err := writeBenchJSON(*benchJSON, *workers, *scalingCells); err != nil {
			log.Fatal(err)
		}
		return
	}
	if strings.EqualFold(*exp, "all") {
		var tables []*experiments.Table
		if *parallel {
			var err error
			tables, err = experiments.RunAllParallel(context.Background(), *workers)
			if err != nil {
				log.Fatal(err)
			}
		} else {
			tables = experiments.RunAll()
		}
		for _, tbl := range tables {
			if err := tbl.RenderAs(os.Stdout, *format); err != nil {
				log.Fatal(err)
			}
		}
		return
	}
	tbl, err := experiments.Run(*exp)
	if err != nil {
		log.Fatal(err)
	}
	if err := tbl.RenderAs(os.Stdout, *format); err != nil {
		log.Fatal(err)
	}
}

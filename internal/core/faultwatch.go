package core

import (
	"fmt"
	"time"

	"insure/internal/logbook"
	"insure/internal/sim"
	"insure/internal/units"
)

// Fault detection and graceful degradation (Fig 8's Offline state as a
// quarantine): the manager watches the only signals it has — the transduced
// per-unit readings — for behaviour no healthy plant can produce, and takes
// the offending unit out of rotation permanently. The remaining bank
// re-balances automatically: every scheduling pass already works off the
// group table, so an Offline quarantined unit simply stops being a
// candidate, and assignDischargeSet drafts replacements for the lost
// capacity within one control period.
//
// Every threshold is chosen so a healthy run can never trip it (healthy-run
// bit-identity is an invariant the experiment goldens enforce):
//
//   - estSoC is voltage-based, so it legitimately swings when the unit's
//     current steps (I·R compensation is imperfect and the KiBaM surface
//     charge sags under a new load). The sudden-drop screen therefore only
//     compares like-for-like readings: a >25% SoC collapse inside one
//     period at unchanged current only happens when a unit loses plates.
//   - A commanded-discharging unit sharing a real deficit carries amps;
//     reading <0.25 A for three straight minutes while its expected share
//     exceeds 1 A means its discharge relay never closed.
//   - A commanded-open unit rests at 0 A (quantisation noise is ~5 mA);
//     sustained current through it means a contact welded shut.
//   - When the shared deficit moves by more than ten ADC codes, every
//     discharging unit's current reading must move with it; a reading that
//     stays bit-identical across ten such shifts is a dead transducer stage.
//     (Steady deficits are ignored: a healthy quantised reading can
//     legitimately hold its code while the load holds.)
//   - Terminal voltage stays within [OCVEmpty−0.8 V, OCVFull+0.8 V] under
//     every legal current (cap × internal resistance ≪ 0.8 V); readings
//     outside the band mean the voltage chain walked off calibration.
const (
	suddenSoCDrop   = 0.25
	suddenDeltaAmp  = units.Amp(0.5) // current step that invalidates the SoC comparison
	suddenDeltaFrac = 0.2            // ...relative form for units already under load
	stuckLowAmp     = units.Amp(0.25)
	stuckExpectAmp  = units.Amp(1.0)
	stuckPeriods    = 6
	ghostAmp        = units.Amp(0.5)
	ghostPeriods    = 6
	frozenPeriods   = 10
	frozenDeltaAmp  = units.Amp(0.05) // ~10 ADC codes on the current channel
	voltBandMargin  = units.Volt(0.8)
	voltBandPeriods = 2
)

// FaultEvent records one quarantine decision.
type FaultEvent struct {
	At     time.Duration
	Unit   int
	Reason string
}

// faultWatch is the per-unit detector state.
type faultWatch struct {
	quarantined []bool
	prevSoC     []float64 // -1 = no sample yet
	prevCur     []units.Amp
	hasPrevCur  []bool
	prevExpect  units.Amp // last period's expected per-unit discharge share
	hasExpect   bool
	lowFor      []int
	ghostFor    []int
	frozenFor   []int
	bandFor     []int
	events      []FaultEvent
}

func newFaultWatch(n int) faultWatch {
	w := faultWatch{
		quarantined: make([]bool, n),
		prevSoC:     make([]float64, n),
		prevCur:     make([]units.Amp, n),
		hasPrevCur:  make([]bool, n),
		lowFor:      make([]int, n),
		ghostFor:    make([]int, n),
		frozenFor:   make([]int, n),
		bandFor:     make([]int, n),
	}
	for i := range w.prevSoC {
		w.prevSoC[i] = -1
	}
	return w
}

// Quarantined returns a copy of the per-unit quarantine flags.
func (m *Manager) Quarantined() []bool {
	return append([]bool(nil), m.watch.quarantined...)
}

// QuarantinedCount is the number of units taken out of rotation.
func (m *Manager) QuarantinedCount() int {
	n := 0
	for _, q := range m.watch.quarantined {
		if q {
			n++
		}
	}
	return n
}

// FaultEvents returns the quarantine decisions made so far, in order.
func (m *Manager) FaultEvents() []FaultEvent {
	return append([]FaultEvent(nil), m.watch.events...)
}

// quarantine retires unit i permanently: Offline, de-commissioned, and
// barred from SPM screening. The next scheduling pass re-balances the
// remaining bank around the hole.
func (m *Manager) quarantine(sys *sim.System, now time.Duration, i int, reason string) {
	if m.watch.quarantined[i] {
		return
	}
	m.watch.quarantined[i] = true
	m.groups[i] = GroupOffline
	m.commissioned[i] = false
	if m.tel != nil {
		m.tel.quarantines.Inc()
	}
	m.watch.events = append(m.watch.events, FaultEvent{At: now, Unit: i, Reason: reason})
	sys.Log.Addf(now, logbook.Emergency, "faultwatch",
		"unit %d quarantined: %s", i, reason)
}

// detectFaults runs the per-period screens against the transduced readings.
func (m *Manager) detectFaults(sys *sim.System, now time.Duration) {
	p := sys.Config().BatteryParams
	nominal := p.NominalVolt

	// Expected per-unit discharge share, from what the control plane knows:
	// last tick's load and solar, split across the commanded discharge set.
	// A running secondary generator takes the base of the deficit (the
	// dispatch order in sim.Tick), so the battery share is planned net of
	// its rated output — conservatively also while it warms up, which only
	// delays detection and can never quarantine a healthy unit.
	deficit := float64(sys.LoadNow() - sys.SolarNow())
	if gen := sys.Secondary; gen != nil && gen.Running() {
		deficit -= float64(gen.Params().Rated)
	}
	nDis := m.countIn(GroupDischarging)
	var expectedPer units.Amp
	if deficit > 0 && nDis > 0 && nominal > 0 {
		expectedPer = units.Current(units.Watt(deficit/float64(nDis)), nominal)
	}

	for i, g := range m.groups {
		if m.watch.quarantined[i] {
			continue
		}
		v, cur := sys.UnitReading(i)
		soc := estSoC(sys, i)

		// Sudden capacity loss: a one-period SoC collapse at steady current.
		// A current step invalidates the comparison — the voltage-based
		// estimate sags under a new load even on a healthy unit. "Steady"
		// is relative for units already under load: a collapsing unit pulls
		// its own current off a little, and that must not mask detection.
		prevC := m.watch.prevCur[i]
		if prevC < 0 {
			prevC = -prevC
		}
		tol := suddenDeltaAmp
		if rel := units.Amp(suddenDeltaFrac * float64(prevC)); rel > tol {
			tol = rel
		}
		curSteady := m.watch.hasPrevCur[i] &&
			cur-m.watch.prevCur[i] < tol &&
			m.watch.prevCur[i]-cur < tol
		if prev := m.watch.prevSoC[i]; prev >= 0 && curSteady && prev-soc > suddenSoCDrop {
			m.quarantine(sys, now, i, fmt.Sprintf(
				"battery failure: SoC collapsed %.0f%% -> %.0f%% in one period", prev*100, soc*100))
			m.watch.prevSoC[i] = soc
			continue
		}
		m.watch.prevSoC[i] = soc

		// Voltage reading outside the physically reachable band.
		if v < p.OCVEmpty-voltBandMargin || v > p.OCVFull+voltBandMargin {
			m.watch.bandFor[i]++
			if m.watch.bandFor[i] >= voltBandPeriods {
				m.quarantine(sys, now, i, fmt.Sprintf(
					"voltage transducer implausible: %.1f V outside the OCV band", float64(v)))
				continue
			}
		} else {
			m.watch.bandFor[i] = 0
		}

		// Discharge relay stuck open: commanded to carry load, reads dead.
		if g == GroupDischarging && expectedPer > stuckExpectAmp && cur < stuckLowAmp {
			m.watch.lowFor[i]++
			if m.watch.lowFor[i] >= stuckPeriods {
				m.quarantine(sys, now, i, "discharge relay stuck open: no current under load")
				continue
			}
		} else {
			m.watch.lowFor[i] = 0
		}

		// Ghost current: commanded open, current still flows (welded contact).
		if g != GroupDischarging && g != GroupCharging {
			if cur > ghostAmp || cur < -ghostAmp {
				m.watch.ghostFor[i]++
				if m.watch.ghostFor[i] >= ghostPeriods {
					m.quarantine(sys, now, i, "relay welded closed: current through open unit")
					continue
				}
			} else {
				m.watch.ghostFor[i] = 0
			}
		} else {
			m.watch.ghostFor[i] = 0
		}

		// Frozen current transducer: the expected share moved enough to shift
		// the ADC code, yet the reading stayed bit-identical. A steady
		// deficit is no evidence either way — the counter neither advances
		// nor resets while the expected share holds still.
		expectMoved := m.watch.hasExpect &&
			(expectedPer-m.watch.prevExpect > frozenDeltaAmp ||
				m.watch.prevExpect-expectedPer > frozenDeltaAmp)
		if g == GroupDischarging && expectedPer > stuckExpectAmp && m.watch.hasPrevCur[i] {
			if expectMoved {
				if cur == m.watch.prevCur[i] {
					m.watch.frozenFor[i]++
					if m.watch.frozenFor[i] >= frozenPeriods {
						m.quarantine(sys, now, i, "current transducer stuck: reading frozen under load")
					}
				} else {
					m.watch.frozenFor[i] = 0
				}
			}
		} else {
			m.watch.frozenFor[i] = 0
		}
		m.watch.prevCur[i] = cur
		m.watch.hasPrevCur[i] = true
	}
	m.watch.prevExpect = expectedPer
	m.watch.hasExpect = true
}

package gateway

import (
	"sync"
	"testing"
	"time"

	"insure/internal/core"
)

// fakePlant is a hand-steered energy state for admission tests.
type fakePlant struct {
	mu        sync.Mutex
	mode      core.OpMode
	soc       float64
	recoverAt time.Duration // forecast reaches recovery supply at this sim time
}

func (p *fakePlant) set(mode core.OpMode, soc float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.mode, p.soc = mode, soc
}

func (p *fakePlant) State(now time.Duration) State {
	p.mu.Lock()
	defer p.mu.Unlock()
	return State{Mode: p.mode, SoC: p.soc}
}

func (p *fakePlant) ForecastW(at time.Duration) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.recoverAt > 0 && at >= p.recoverAt {
		return 1000
	}
	return 0
}

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.BaseQPS = 1
	cfg.Burst = 1
	return cfg
}

// checkBalance asserts the accounting identity: every request is admitted,
// shed, or still queued — and nothing was dropped after admission.
func checkBalance(t *testing.T, st Stats) {
	t.Helper()
	admitted, shed := 0, 0
	for c := Class(0); c < NumClasses; c++ {
		admitted += st.Admitted[c]
		shed += st.Shed[c]
	}
	if got := admitted + shed + st.QueueDepth; got != st.Requests {
		t.Fatalf("accounting leak: admitted %d + shed %d + queued %d = %d, want %d requests",
			admitted, shed, st.QueueDepth, got, st.Requests)
	}
	if st.AdmittedDropped != 0 {
		t.Fatalf("admitted-then-dropped invariant violated: %d", st.AdmittedDropped)
	}
}

func TestLadderSheddingByClass(t *testing.T) {
	cases := []struct {
		mode core.OpMode
		want [NumClasses]bool // critical, standard, besteffort
	}{
		{core.ModeNormal, [NumClasses]bool{true, true, true}},
		{core.ModeConservative, [NumClasses]bool{true, true, false}},
		{core.ModeSurvival, [NumClasses]bool{true, false, false}},
		{core.ModeBlackstart, [NumClasses]bool{true, false, false}},
		{core.ModeBlackout, [NumClasses]bool{false, false, false}},
	}
	for _, tc := range cases {
		for c := Class(0); c < NumClasses; c++ {
			if got := servedIn(tc.mode, c); got != tc.want[c] {
				t.Errorf("servedIn(%v, %v) = %v, want %v", tc.mode, c, got, tc.want[c])
			}
		}
	}
}

func TestAdmitServesImmediatelyWithTokens(t *testing.T) {
	plant := &fakePlant{mode: core.ModeNormal, soc: 0.8}
	gw := New(testConfig(), plant)
	gw.Advance(0)
	out, ticket := gw.Admit(0, Standard)
	if out.Decision != Served || ticket != nil {
		t.Fatalf("want immediate serve, got %v (ticket %v)", out.Decision, ticket)
	}
	if out.LatencyMs <= 0 || out.WaitMs != 0 {
		t.Fatalf("immediate serve latency %.1f wait %.1f", out.LatencyMs, out.WaitMs)
	}
	if out.EnergyWh <= 0 || out.CostUSD <= 0 {
		t.Fatalf("served request must be metered: %.6f Wh $%.8f", out.EnergyWh, out.CostUSD)
	}
	checkBalance(t, gw.Stats())
}

func TestDegradedResponsesInSurvival(t *testing.T) {
	plant := &fakePlant{mode: core.ModeSurvival, soc: 0.30}
	gw := New(testConfig(), plant)
	gw.Advance(0)
	out, _ := gw.Admit(0, Critical)
	if out.Decision != Served || !out.Degraded {
		t.Fatalf("survival critical: want served degraded, got %v degraded=%v", out.Decision, out.Degraded)
	}
	full, _ := New(testConfig(), &fakePlant{mode: core.ModeNormal, soc: 0.8}).Admit(0, Critical)
	if out.EnergyWh >= full.EnergyWh {
		t.Fatalf("degraded response must cost less energy: %.6f vs %.6f Wh", out.EnergyWh, full.EnergyWh)
	}
}

func TestShedByModeWithForecastRetry(t *testing.T) {
	plant := &fakePlant{mode: core.ModeSurvival, soc: 0.30, recoverAt: 90 * time.Minute}
	gw := New(testConfig(), plant)
	gw.Advance(0)
	out, _ := gw.Admit(0, Standard)
	if out.Decision != Shed || out.Reason != ShedMode {
		t.Fatalf("survival standard: want shed(mode), got %v(%v)", out.Decision, out.Reason)
	}
	// The forecast first reaches recovery supply at 90m; the hint walks in
	// 5m steps so it lands on the first step at or past it.
	if out.RetryAfter < 85*time.Minute || out.RetryAfter > 95*time.Minute {
		t.Fatalf("retry-after %v, want ~90m from forecast", out.RetryAfter)
	}
	// No recovery inside the horizon: the hint is the whole horizon.
	plant.recoverAt = 0
	out2, _ := gw.Admit(time.Second, Standard)
	if out2.RetryAfter != gw.cfg.RetryHorizon {
		t.Fatalf("unrecoverable forecast: retry %v, want horizon %v", out2.RetryAfter, gw.cfg.RetryHorizon)
	}
}

func TestBestEffortSoCGate(t *testing.T) {
	plant := &fakePlant{mode: core.ModeNormal, soc: 0.40, recoverAt: time.Hour}
	gw := New(testConfig(), plant)
	gw.Advance(0)
	out, _ := gw.Admit(0, BestEffort)
	if out.Decision != Shed || out.Reason != ShedSoC {
		t.Fatalf("besteffort at SoC 0.40: want shed(soc), got %v(%v)", out.Decision, out.Reason)
	}
	// Critical is not SoC-gated in Normal.
	out, _ = gw.Admit(0, Critical)
	if out.Decision != Served {
		t.Fatalf("critical at SoC 0.40 in Normal: want served, got %v", out.Decision)
	}
}

func TestQueueThenDispatch(t *testing.T) {
	plant := &fakePlant{mode: core.ModeNormal, soc: 0.8}
	gw := New(testConfig(), plant) // 1 QPS, burst 1
	gw.Advance(0)
	if out, _ := gw.Admit(0, Standard); out.Decision != Served {
		t.Fatalf("first request: want served, got %v", out.Decision)
	}
	out, ticket := gw.Admit(0, Standard)
	if out.Decision != Queued || ticket == nil {
		t.Fatalf("second request: want queued with ticket, got %v", out.Decision)
	}
	gw.Advance(2 * time.Second) // refills 2 tokens; dispatch serves the waiter
	select {
	case final := <-ticket.C:
		if final.Decision != Served {
			t.Fatalf("queued request: want served after refill, got %v(%v)", final.Decision, final.Reason)
		}
		if final.WaitMs != 2000 {
			t.Fatalf("queued wait %.0f ms, want 2000", final.WaitMs)
		}
	default:
		t.Fatal("ticket did not resolve after Advance")
	}
	checkBalance(t, gw.Stats())
}

func TestCapacityShedWhenQueueFull(t *testing.T) {
	cfg := testConfig()
	cfg.Classes[Standard].MaxQueue = 1
	plant := &fakePlant{mode: core.ModeNormal, soc: 0.8}
	gw := New(cfg, plant)
	gw.Advance(0)
	gw.Admit(0, Standard) // served, token gone
	gw.Admit(0, Standard) // queued (depth 1 = MaxQueue)
	out, _ := gw.Admit(0, Standard)
	if out.Decision != Shed || out.Reason != ShedCapacity {
		t.Fatalf("queue full: want shed(capacity), got %v(%v)", out.Decision, out.Reason)
	}
	if out.RetryAfter < gw.cfg.MinRetry {
		t.Fatalf("capacity shed retry %v below MinRetry %v", out.RetryAfter, gw.cfg.MinRetry)
	}
	checkBalance(t, gw.Stats())
}

func TestDeadlineExpiry(t *testing.T) {
	cfg := testConfig()
	cfg.BrakeFloorFrac = 0.01 // SoC collapse brakes capacity to 1% of base
	plant := &fakePlant{mode: core.ModeNormal, soc: 0.8}
	gw := New(cfg, plant)
	gw.Advance(0)
	gw.Admit(0, Standard) // served
	out, ticket := gw.Admit(0, Standard)
	if out.Decision != Queued {
		t.Fatalf("want queued, got %v", out.Decision)
	}
	// The buffer collapses while the request waits: at 1% of 1 QPS the
	// token never refills before the 5 s class deadline.
	plant.set(core.ModeNormal, 0.05)
	gw.Advance(6 * time.Second)
	select {
	case final := <-ticket.C:
		if final.Decision != Shed || final.Reason != ShedDeadline {
			t.Fatalf("deadline pass: want shed(deadline), got %v(%v)", final.Decision, final.Reason)
		}
	default:
		t.Fatal("deadline-blown ticket did not resolve")
	}
	checkBalance(t, gw.Stats())
}

// TestRetriageOnMidFlightDowngrade is the ISSUE's rung-transition test:
// requests queued under Normal are re-triaged when the ladder downgrades
// mid-flight — the newly unservable classes are shed with retry hints,
// critical work keeps its place, and nothing is admitted-then-dropped.
func TestRetriageOnMidFlightDowngrade(t *testing.T) {
	plant := &fakePlant{mode: core.ModeNormal, soc: 0.8, recoverAt: 2 * time.Hour}
	cfg := testConfig() // 1 QPS, burst 1
	// Keep enough Survival capacity that the queued critical can dispatch
	// before its deadline — this test is about re-triage, not starvation.
	cfg.SurvivalCapFrac = 1
	gw := New(cfg, plant)
	gw.Advance(0)
	if out, _ := gw.Admit(0, Standard); out.Decision != Served {
		t.Fatalf("seed request: want served, got %v", out.Decision)
	}
	outC, tC := gw.Admit(0, Critical)
	outS, tS := gw.Admit(0, Standard)
	outB, tB := gw.Admit(0, BestEffort)
	for i, o := range []Outcome{outC, outS, outB} {
		if o.Decision != Queued {
			t.Fatalf("request %d: want queued, got %v", i, o.Decision)
		}
	}

	// Mid-flight downgrade straight past Conservative: the plant is now in
	// Survival, where only critical traffic is served. SoC stays above the
	// brake knee so the capacity derate doesn't mask the re-triage.
	plant.set(core.ModeSurvival, 0.50)
	gw.Advance(1500 * time.Millisecond)

	finalC := <-tC.C
	if finalC.Decision != Served {
		t.Fatalf("queued critical across downgrade: want served, got %v(%v)", finalC.Decision, finalC.Reason)
	}
	if !finalC.Degraded {
		t.Fatal("critical served under Survival must be degraded")
	}
	for name, tk := range map[string]*Ticket{"standard": tS, "besteffort": tB} {
		select {
		case final := <-tk.C:
			if final.Decision != Shed || final.Reason != ShedRetriage {
				t.Fatalf("queued %s across downgrade: want shed(retriage), got %v(%v)", name, final.Decision, final.Reason)
			}
			if final.RetryAfter <= 0 {
				t.Fatalf("retriaged %s needs a retry-after hint", name)
			}
		default:
			t.Fatalf("queued %s did not resolve across downgrade", name)
		}
	}
	st := gw.Stats()
	if st.ShedReason[ShedRetriage] != 2 {
		t.Fatalf("retriage sheds = %d, want 2", st.ShedReason[ShedRetriage])
	}
	checkBalance(t, st)

	// Upgrade back to Normal: no spurious shedding, new traffic flows.
	plant.set(core.ModeNormal, 0.8)
	gw.Advance(4 * time.Second)
	if out, _ := gw.Admit(4*time.Second, BestEffort); out.Decision != Served {
		t.Fatalf("after recovery: want served, got %v(%v)", out.Decision, out.Reason)
	}
	checkBalance(t, gw.Stats())
}

func TestBlackoutServesNothing(t *testing.T) {
	plant := &fakePlant{mode: core.ModeBlackout, soc: 0.1, recoverAt: 3 * time.Hour}
	gw := New(testConfig(), plant)
	gw.Advance(0)
	for c := Class(0); c < NumClasses; c++ {
		out, _ := gw.Admit(0, c)
		if out.Decision != Shed || out.Reason != ShedMode {
			t.Fatalf("blackout %v: want shed(mode), got %v(%v)", c, out.Decision, out.Reason)
		}
	}
}

func TestDrainResolvesEveryTicket(t *testing.T) {
	plant := &fakePlant{mode: core.ModeNormal, soc: 0.8}
	gw := New(testConfig(), plant)
	gw.Advance(0)
	gw.Admit(0, Standard) // served
	var tickets []*Ticket
	for i := 0; i < 3; i++ {
		out, tk := gw.Admit(0, Standard)
		if out.Decision != Queued {
			t.Fatalf("want queued, got %v", out.Decision)
		}
		tickets = append(tickets, tk)
	}
	gw.Drain(time.Second)
	for i, tk := range tickets {
		select {
		case final := <-tk.C:
			if final.Decision != Shed || final.Reason != ShedDrain {
				t.Fatalf("ticket %d: want shed(drain), got %v(%v)", i, final.Decision, final.Reason)
			}
		default:
			t.Fatalf("ticket %d unresolved after drain", i)
		}
	}
	st := gw.Stats()
	if st.QueueDepth != 0 {
		t.Fatalf("queue depth %d after drain", st.QueueDepth)
	}
	checkBalance(t, st)
}

// TestModeChurnNeverDropsAdmitted hammers the gateway with offers while
// the ladder flaps every step, then checks the full accounting identity.
func TestModeChurnNeverDropsAdmitted(t *testing.T) {
	plant := &fakePlant{mode: core.ModeNormal, soc: 0.8, recoverAt: time.Hour}
	cfg := DefaultConfig()
	cfg.BaseQPS = 3
	cfg.Burst = 3
	gw := New(cfg, plant)
	ladder := []core.OpMode{
		core.ModeNormal, core.ModeConservative, core.ModeSurvival,
		core.ModeBlackout, core.ModeBlackstart, core.ModeNormal,
	}
	socs := []float64{0.8, 0.42, 0.31, 0.1, 0.35, 0.7}
	now := time.Duration(0)
	for step := 0; step < 600; step++ {
		i := step % len(ladder)
		plant.set(ladder[i], socs[i])
		gw.Advance(now)
		for k := 0; k < 5; k++ {
			gw.Offer(now, classMix[(step*5+k)%len(classMix)])
		}
		now += time.Second
	}
	gw.Drain(now)
	st := gw.Stats()
	if st.Requests != 3000 {
		t.Fatalf("requests %d, want 3000", st.Requests)
	}
	checkBalance(t, st)
	if st.Admitted[Critical] == 0 || st.Shed[BestEffort] == 0 {
		t.Fatalf("churn should both serve critical (%d) and shed best-effort (%d)",
			st.Admitted[Critical], st.Shed[BestEffort])
	}
}

package sim

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// This file is the campaign execution engine: a work-stealing scheduler
// over "cells" (independent units of work, typically one full-day plant
// simulation each) with deterministic positional results.
//
// Design notes (see DESIGN.md "Batch engine"):
//
//   - Cells are coarse — milliseconds to seconds each — so the scheduler
//     optimises for correct dynamic balancing, not dispatch latency. All
//     queues live under one mutex; the lock is touched twice per cell,
//     which is noise at this granularity.
//   - Each worker owns a deque: it pushes and pops its own work LIFO and
//     steals from the FRONT of other workers' deques FIFO. A campaign that
//     fans out inside one experiment (the fig20/fig21 shape, which used to
//     serialize behind a single worker under experiment-granularity
//     sharding) is therefore picked apart by idle workers automatically.
//   - The caller participates as worker 0. With workers == 1 the batch runs
//     fully inline on the caller's goroutine — no goroutines are spawned,
//     so the serial path has zero scheduling overhead.
//   - Joins are help-first: a cell that submits a nested batch (an
//     experiment whose body calls RunCampaign) executes cells itself while
//     waiting — its own first, then stolen ones — so nesting can never
//     deadlock the pool and never idles the submitting worker.
//   - Determinism: every cell writes only its own positional slot, the
//     first error in INPUT order wins, and a cancelled batch records the
//     context error for every cell that had not started. Scheduling order
//     affects wall-clock only, never results.

// poolCtxKey carries the (pool, worker) identity of the goroutine executing
// a cell, so nested RunCells calls join the enclosing pool instead of
// spawning their own.
type poolCtxKey struct{}

type poolRef struct {
	p *pool
	w int
}

// CellFunc is one unit of campaign work: cell i of a batch, given a
// batch-scoped context and the executing worker's private arena.
type CellFunc func(ctx context.Context, i int, a *Arena) error

// pool is a set of workers executing cells from per-worker deques.
type pool struct {
	mu     sync.Mutex
	cond   *sync.Cond
	deques [][]cell
	arenas []*Arena
	stop   bool
	wg     sync.WaitGroup
}

// batch is one RunCells invocation: n cells sharing a cancellable context
// and a positional error slate.
type batch struct {
	ctx       context.Context
	cancel    context.CancelFunc
	fn        CellFunc
	errs      []error
	remaining int // guarded by pool.mu
	failed    bool
}

type cell struct {
	b   *batch
	idx int
}

// RunCells executes fn(i) for i in [0, n) on a work-stealing pool and
// returns the first error in input order, or nil. workers <= 0 means
// GOMAXPROCS; the caller always participates as a worker, and workers == 1
// runs everything inline with no goroutines.
//
// If ctx already carries a pool (this call is nested inside a cell), the
// cells join the enclosing pool — the submitting worker helps execute them
// while waiting, and idle siblings steal them — and the workers argument is
// ignored.
//
// The first cell error (or panic, converted to an error with its stack)
// cancels the batch context; cells that have not started by then record the
// cancellation instead of running, while in-flight cells finish normally.
// RunCells returns only after every cell has either run or been marked
// cancelled, so no work is left dangling.
func RunCells(ctx context.Context, workers, n int, fn CellFunc) error {
	if n <= 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if pr, ok := ctx.Value(poolCtxKey{}).(poolRef); ok {
		return pr.p.runBatch(ctx, pr.w, n, fn)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	p := newPool(workers)
	defer p.shutdown()
	return p.runBatch(ctx, 0, n, fn)
}

// newPool builds a pool with the given worker count. Worker 0 is the
// caller; workers 1..n-1 get goroutines.
func newPool(workers int) *pool {
	p := &pool{
		deques: make([][]cell, workers),
		arenas: make([]*Arena, workers),
	}
	p.cond = sync.NewCond(&p.mu)
	for i := range p.arenas {
		p.arenas[i] = NewArena()
	}
	for w := 1; w < workers; w++ {
		p.wg.Add(1)
		go p.workerLoop(w)
	}
	return p
}

// shutdown stops the worker goroutines and waits for them to exit. It must
// only be called with no batch outstanding.
func (p *pool) shutdown() {
	p.mu.Lock()
	p.stop = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}

func (p *pool) workerLoop(w int) {
	defer p.wg.Done()
	p.mu.Lock()
	for {
		if c, ok := p.grab(w); ok {
			p.mu.Unlock()
			p.exec(w, c)
			p.mu.Lock()
			continue
		}
		if p.stop {
			break
		}
		p.cond.Wait()
	}
	p.mu.Unlock()
}

// grab takes the next cell for worker w: its own deque back-to-front
// (LIFO, cache-warm), else the front of another worker's deque (FIFO — the
// oldest work, which its owner is furthest from revisiting). Callers hold
// p.mu.
func (p *pool) grab(w int) (cell, bool) {
	if d := p.deques[w]; len(d) > 0 {
		c := d[len(d)-1]
		d[len(d)-1] = cell{}
		p.deques[w] = d[:len(d)-1]
		return c, true
	}
	for off := 1; off < len(p.deques); off++ {
		v := (w + off) % len(p.deques)
		if d := p.deques[v]; len(d) > 0 {
			c := d[0]
			p.deques[v] = d[1:]
			return c, true
		}
	}
	return cell{}, false
}

// exec runs one cell on worker w and retires it against its batch.
func (p *pool) exec(w int, c cell) {
	err := p.runCell(w, c.b, c.idx)
	p.mu.Lock()
	c.b.errs[c.idx] = err
	if err != nil && !c.b.failed {
		c.b.failed = true
		c.b.cancel()
	}
	c.b.remaining--
	if c.b.remaining == 0 {
		p.cond.Broadcast()
	}
	p.mu.Unlock()
}

// runCell executes cell i of b on worker w, converting a panic into an
// error carrying the stack.
func (p *pool) runCell(w int, b *batch, i int) (err error) {
	if cerr := b.ctx.Err(); cerr != nil {
		// Cancelled before starting: record the discard deterministically
		// without running the cell.
		return cerr
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sim: campaign cell %d panicked: %v\n%s", i, r, debug.Stack())
		}
	}()
	cellCtx := context.WithValue(b.ctx, poolCtxKey{}, poolRef{p: p, w: w})
	return b.fn(cellCtx, i, p.arenas[w])
}

// runBatch submits n cells from worker w and helps execute until the batch
// drains, then reports the first error in input order.
func (p *pool) runBatch(ctx context.Context, w, n int, fn CellFunc) error {
	bctx, cancel := context.WithCancel(ctx)
	defer cancel()
	b := &batch{ctx: bctx, cancel: cancel, fn: fn, errs: make([]error, n), remaining: n}

	p.mu.Lock()
	d := p.deques[w]
	for i := n - 1; i >= 0; i-- { // reversed: LIFO pop yields input order
		d = append(d, cell{b: b, idx: i})
	}
	p.deques[w] = d
	p.cond.Broadcast()

	// Help-first join: run our own cells, steal siblings' — anything to
	// keep making progress — and sleep only when every remaining cell of
	// this batch is in flight on some other worker.
	for b.remaining > 0 {
		if c, ok := p.grab(w); ok {
			p.mu.Unlock()
			p.exec(w, c)
			p.mu.Lock()
			continue
		}
		p.cond.Wait()
	}
	p.mu.Unlock()

	// Report the root cause, not its fallout: a failing cell cancels the
	// batch, and under work-stealing the cells it prevented from starting
	// can sit at LOWER indices than the failure (thieves drain the deque
	// from the opposite end to its owner). Cancellation markers therefore
	// lose to real errors; among real errors, first input index wins.
	var firstCancel error
	for _, err := range b.errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			if firstCancel == nil {
				firstCancel = err
			}
			continue
		}
		return err
	}
	return firstCancel
}

package gateway

import (
	"fmt"
	"sort"
	"time"

	"insure/internal/core"
	"insure/internal/metrics"
	"insure/internal/sim"
	"insure/internal/solar"
	"insure/internal/trace"
	"insure/internal/units"
)

// This file is the serving-plane load harness: it replays a deterministic
// interactive request stream — millions of requests per simulated day —
// against a live sim.Fleet and records how admission, queueing delay, and
// tail latency move with offered QPS and the plant's energy state. The
// sweep output lands in BENCH.json as the `serving_plane` block
// (cmd/insure-bench) so the latency/energy trade-off is pinned alongside
// the engine throughput numbers.

// SimPlant adapts one simulated plant (System + its InSURE manager) to the
// gateway's Plant interface. State and forecast both come from the
// manager's energy-outlook surface (core/outlook.go), so the gateway
// admits against exactly what the plant's own controller believes.
type SimPlant struct {
	Sys *sim.System
	Mgr *core.Manager
}

func (p SimPlant) State(now time.Duration) State {
	return State{Mode: p.Mgr.Mode(), SoC: p.Mgr.MeanSoC(p.Sys)}
}

func (p SimPlant) ForecastW(at time.Duration) float64 {
	return p.Mgr.ForecastSupplyW(p.Sys, at)
}

// Regime is one energy scenario the sweep runs under.
type Regime struct {
	// Name labels the regime in BENCH.json ("sunny", "storm", ...).
	Name string
	// Weather picks the synthesized solar day.
	Weather solar.Condition
	// PeakW rescales the trace's peak; 0 keeps the natural synthesis.
	PeakW float64
	// InitialSoC seeds the battery bank (0 = sim default 0.5).
	InitialSoC float64
}

// LoadConfig shapes one sweep.
type LoadConfig struct {
	Seed  int64
	Sites int
	// QPS are the fleet-wide offered rates swept, requests/second spread
	// round-robin across sites.
	QPS       []float64
	Regimes   []Regime
	Batteries int
	Servers   int
	// Gateway tunes each site's gateway; zero fields take serving-plane
	// defaults, except BaseQPS which defaults to 15/site here so the top
	// sweep rate saturates capacity and the latency knee is visible.
	Gateway Config
}

// DefaultLoadConfig is the sweep cmd/insure-bench records: three offered
// rates (the top one ~3.5M requests/day) under a sunny day that holds
// ModeNormal and a storm day that walks the ladder down.
func DefaultLoadConfig(seed int64) LoadConfig {
	return LoadConfig{
		Seed:  seed,
		Sites: 2,
		QPS:   []float64{5, 15, 40},
		Regimes: []Regime{
			{Name: "sunny", Weather: solar.Sunny, InitialSoC: 0.55},
			{Name: "storm", Weather: solar.Rainy, PeakW: 250, InitialSoC: 0.48},
		},
		Batteries: 6,
		Servers:   4,
	}
}

// LoadPoint is one (regime, QPS) cell of the sweep.
type LoadPoint struct {
	QPS    float64 `json:"qps"`
	PerDay float64 `json:"requests_per_day"` // offered rate extrapolated to 24h

	Requests        int `json:"requests"`
	Admitted        int `json:"admitted"`
	Queued          int `json:"queued_ever"`
	Shed            int `json:"shed"`
	Degraded        int `json:"degraded"`
	AdmittedDropped int `json:"admitted_dropped"`

	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`

	MeanSoC   float64  `json:"mean_soc"`
	MinSoC    float64  `json:"min_soc"`
	ModesSeen []string `json:"modes_seen"`

	EnergyWh float64 `json:"energy_wh"`
	CostUSD  float64 `json:"cost_usd"`
}

// RegimeResult is the sweep under one energy regime.
type RegimeResult struct {
	Name   string      `json:"name"`
	Points []LoadPoint `json:"points"`
}

// ServingPlane is the BENCH.json `serving_plane` block.
type ServingPlane struct {
	Sites         int            `json:"sites"`
	SpanSeconds   float64        `json:"span_seconds"`
	RequestsTotal int            `json:"requests_total"`
	Regimes       []RegimeResult `json:"regimes"`
}

// RunLoadTest executes the full sweep: for every regime × QPS cell it
// builds a fresh fleet, replays the deterministic request stream over the
// fleet's whole day span, and records latency percentiles, shed counts,
// SoC excursion, the set of ladder rungs visited, and the metered energy
// bill. Deterministic: same config, same numbers.
func RunLoadTest(cfg LoadConfig) (*ServingPlane, error) {
	if cfg.Sites <= 0 {
		cfg.Sites = 2
	}
	if len(cfg.QPS) == 0 {
		cfg.QPS = []float64{5, 15, 40}
	}
	if len(cfg.Regimes) == 0 {
		cfg.Regimes = DefaultLoadConfig(cfg.Seed).Regimes
	}
	if cfg.Batteries <= 0 {
		cfg.Batteries = 6
	}
	if cfg.Servers <= 0 {
		cfg.Servers = 4
	}
	if cfg.Gateway.BaseQPS <= 0 {
		cfg.Gateway.BaseQPS = 15
	}

	out := &ServingPlane{Sites: cfg.Sites}
	for _, reg := range cfg.Regimes {
		rr := RegimeResult{Name: reg.Name}
		for _, qps := range cfg.QPS {
			pt, span, err := runLoadPoint(cfg, reg, qps)
			if err != nil {
				return nil, fmt.Errorf("gateway: loadtest %s @ %g qps: %w", reg.Name, qps, err)
			}
			out.SpanSeconds = span.Seconds()
			out.RequestsTotal += pt.Requests
			rr.Points = append(rr.Points, pt)
		}
		out.Regimes = append(out.Regimes, rr)
	}
	return out, nil
}

// classMix is the rotating request mix: per 10 arrivals, 1 critical,
// 6 standard, 3 best-effort.
var classMix = [10]Class{
	Critical, Standard, Standard, BestEffort, Standard,
	Standard, BestEffort, Standard, Standard, BestEffort,
}

func runLoadPoint(cfg LoadConfig, reg Regime, qps float64) (LoadPoint, time.Duration, error) {
	specs := make([]sim.FleetSpec, cfg.Sites)
	mgrs := make([]*core.Manager, cfg.Sites)
	for i := range specs {
		tr := trace.Synthesize(reg.Weather, cfg.Seed+int64(i), time.Second)
		if reg.PeakW > 0 {
			tr = tr.ScaleToPeak(units.Watt(reg.PeakW))
		}
		sc := sim.DefaultConfig(tr)
		sc.BatteryCount = cfg.Batteries
		sc.ServerCount = cfg.Servers
		if reg.InitialSoC > 0 {
			sc.InitialSoC = reg.InitialSoC
		}
		mc := core.DefaultConfig()
		mc.Survival = core.DefaultSurvivalConfig()
		mgrs[i] = core.New(mc, cfg.Batteries)
		var sink sim.Sink
		if i%2 == 0 {
			sink = sim.NewSeismicSink()
		} else {
			sink = sim.NewVideoSink()
		}
		specs[i] = sim.FleetSpec{Config: sc, Sink: sink, Manager: mgrs[i]}
	}
	fl, err := sim.NewFleet(specs)
	if err != nil {
		return LoadPoint{}, 0, err
	}

	lat := metrics.NewSeries()
	gws := make([]*Gateway, cfg.Sites)
	for i := range gws {
		gc := cfg.Gateway
		gc.LatencySink = func(_ Class, ms float64) { lat.Add(ms) }
		gws[i] = New(gc, SimPlant{Sys: fl.System(i), Mgr: mgrs[i]})
	}

	lo, hi := fl.Bounds()
	step := fl.Step()
	soc := metrics.NewSeries()
	modes := map[string]bool{}

	// Deterministic arrivals: an accumulator integrates the offered rate;
	// each carried-over unit is one request, dealt round-robin across sites
	// with the rotating class mix. No RNG — same sweep, same stream.
	var acc float64
	site, mix := 0, 0
	for tod := lo; tod < hi; tod += step {
		fl.Tick(tod)
		for i, gw := range gws {
			gw.Advance(tod)
			st := gws[i].plant.State(tod)
			modes[st.Mode.String()] = true
			if tod%(30*time.Second) == 0 {
				soc.Add(st.SoC)
			}
		}
		acc += qps * step.Seconds()
		for acc >= 1 {
			acc--
			gws[site%cfg.Sites].Offer(tod, classMix[mix%len(classMix)])
			site++
			mix++
		}
	}
	fl.Finish()
	for _, gw := range gws {
		gw.Drain(hi)
	}

	pt := LoadPoint{
		QPS:    qps,
		PerDay: qps * 86400,
	}
	for _, gw := range gws {
		st := gw.Stats()
		pt.Requests += st.Requests
		pt.Degraded += st.Degraded
		pt.AdmittedDropped += st.AdmittedDropped
		pt.EnergyWh += st.EnergyWh
		pt.CostUSD += st.CostUSD
		for c := Class(0); c < NumClasses; c++ {
			pt.Admitted += st.Admitted[c]
			pt.Queued += st.QueuedEver[c]
			pt.Shed += st.Shed[c]
		}
	}
	if lat.Count() > 0 {
		pt.P50Ms = lat.Percentile(50)
		pt.P99Ms = lat.Percentile(99)
	}
	pt.MeanSoC = soc.Mean()
	if v, ok := soc.Min(); ok {
		pt.MinSoC = v
	}
	for m := range modes {
		pt.ModesSeen = append(pt.ModesSeen, m)
	}
	sort.Strings(pt.ModesSeen)
	return pt, hi - lo, nil
}

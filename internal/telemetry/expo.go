package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"math"
	"strconv"
	"strings"
)

// formatValue renders a sample value the way Prometheus expects: shortest
// round-trip float, with +Inf/-Inf/NaN spelled out.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): one HELP/TYPE block per metric name, samples
// sorted by label set, histograms expanded into cumulative _bucket/_sum/
// _count series. The shared sim clock is exported as
// insure_sim_clock_seconds.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	writeClock(bw, r.Clock().Seconds())
	lastName := ""
	for _, m := range r.sortedMetrics() {
		mm := m.meta()
		if mm.name != lastName {
			lastName = mm.name
			bw.WriteString("# HELP ")
			bw.WriteString(mm.name)
			bw.WriteByte(' ')
			bw.WriteString(escapeHelp(mm.help))
			bw.WriteByte('\n')
			bw.WriteString("# TYPE ")
			bw.WriteString(mm.name)
			bw.WriteByte(' ')
			bw.WriteString(mm.typ)
			bw.WriteByte('\n')
		}
		switch v := m.(type) {
		case *Counter:
			writeSample(bw, mm.id, float64(v.Value()))
		case *Gauge:
			writeSample(bw, mm.id, v.Value())
		case *FuncGauge:
			writeSample(bw, mm.id, v.Value())
		case *Histogram:
			writeHistogram(bw, v)
		}
	}
	return bw.Flush()
}

func writeClock(bw *bufio.Writer, secs float64) {
	bw.WriteString("# HELP insure_sim_clock_seconds Monotonic simulation clock shared with the logbook.\n")
	bw.WriteString("# TYPE insure_sim_clock_seconds gauge\n")
	writeSample(bw, "insure_sim_clock_seconds", secs)
}

func writeSample(bw *bufio.Writer, id string, v float64) {
	bw.WriteString(id)
	bw.WriteByte(' ')
	bw.WriteString(formatValue(v))
	bw.WriteByte('\n')
}

// writeHistogram expands one histogram into its exposition series. The
// le label is appended to (or merged into) the metric's own label set.
func writeHistogram(bw *bufio.Writer, h *Histogram) {
	mm := h.meta()
	count, cumulative := h.snapshotCounts()
	for i, ub := range h.uppers {
		writeSample(bw, histogramSeriesID(mm, "_bucket", formatValue(ub)), float64(cumulative[i]))
	}
	writeSample(bw, histogramSeriesID(mm, "_bucket", "+Inf"), float64(cumulative[len(h.uppers)]))
	writeSample(bw, histogramSeriesID(mm, "_sum", ""), h.Sum())
	writeSample(bw, histogramSeriesID(mm, "_count", ""), float64(count))
}

// histogramSeriesID builds name_suffix{labels...,le="ub"}; le is omitted
// when ub is empty (_sum and _count carry no le label).
func histogramSeriesID(mm *metricMeta, suffix, ub string) string {
	var b strings.Builder
	b.WriteString(mm.name)
	b.WriteString(suffix)
	if len(mm.labels) == 0 && ub == "" {
		return b.String()
	}
	b.WriteByte('{')
	for i, l := range mm.labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	if ub != "" {
		if len(mm.labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(ub)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// HistogramSnapshot is the JSON form of one histogram.
type HistogramSnapshot struct {
	// UpperBounds are the bucket upper bounds; Cumulative[i] counts
	// observations <= UpperBounds[i]. The final entry of Cumulative is
	// the +Inf bucket (== Count once writers quiesce).
	UpperBounds []float64 `json:"upper_bounds"`
	Cumulative  []int64   `json:"cumulative"`
	Sum         float64   `json:"sum"`
	Count       int64     `json:"count"`
}

// Snapshot is a point-in-time serialisable copy of the registry, suitable
// for embedding next to BENCH.json at the end of an experiment run.
type Snapshot struct {
	SimClockSeconds float64                      `json:"sim_clock_seconds"`
	Counters        map[string]int64             `json:"counters,omitempty"`
	Gauges          map[string]float64           `json:"gauges,omitempty"`
	Histograms      map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every instrument. Values are read atomically per
// instrument; the snapshot as a whole is taken without stopping writers.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		SimClockSeconds: r.Clock().Seconds(),
		Counters:        map[string]int64{},
		Gauges:          map[string]float64{},
		Histograms:      map[string]HistogramSnapshot{},
	}
	for _, m := range r.sortedMetrics() {
		mm := m.meta()
		switch v := m.(type) {
		case *Counter:
			s.Counters[mm.id] = v.Value()
		case *Gauge:
			s.Gauges[mm.id] = v.Value()
		case *FuncGauge:
			s.Gauges[mm.id] = v.Value()
		case *Histogram:
			count, cumulative := v.snapshotCounts()
			s.Histograms[mm.id] = HistogramSnapshot{
				UpperBounds: append([]float64(nil), v.uppers...),
				Cumulative:  cumulative,
				Sum:         v.Sum(),
				Count:       count,
			}
		}
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

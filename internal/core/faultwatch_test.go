package core

import (
	"strings"
	"testing"
	"time"

	"insure/internal/faults"
	"insure/internal/sim"
	"insure/internal/solar"
	"insure/internal/trace"
)

// wireInjector hooks a fault plan into the live plant's tick loop.
func wireInjector(t *testing.T, sys *sim.System, spec string) *faults.Injector {
	t.Helper()
	plan, err := faults.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	in := faults.NewInjector(plan, faults.Target{
		Bank:   sys.Bank,
		Fabric: sys.Fabric,
		Probes: sys.Probes,
	})
	sys.SetTickHook(func(tod time.Duration) { in.Tick(tod) })
	return in
}

func TestHealthyRunNeverQuarantines(t *testing.T) {
	// The detector thresholds are chosen so no healthy plant can trip them;
	// a false positive here would silently shrink the bank.
	for name, tr := range map[string]*trace.Trace{
		"high":   trace.FullSystemHigh(),
		"low":    trace.FullSystemLow(),
		"cloudy": trace.Synthesize(solar.Cloudy, 2015, time.Second),
		"rainy":  trace.Synthesize(solar.Rainy, 2015, time.Second),
	} {
		sys := newSystem(t, tr, sim.NewSeismicSink())
		m := New(DefaultConfig(), 6)
		sys.Run(m)
		if n := m.QuarantinedCount(); n != 0 {
			t.Errorf("%s-solar day: %d healthy units quarantined: %v",
				name, n, m.FaultEvents())
		}
	}
}

func TestBatteryFailureIsQuarantinedMidday(t *testing.T) {
	sys := newSystem(t, trace.FullSystemHigh(), sim.NewSeismicSink())
	m := New(DefaultConfig(), 6)
	wireInjector(t, sys, "bat:2@12h30m:0.6")
	res := sys.Run(m)

	ev := m.FaultEvents()
	if len(ev) != 1 {
		t.Fatalf("fault events = %v, want exactly one", ev)
	}
	if ev[0].Unit != 2 || !strings.Contains(ev[0].Reason, "battery") {
		t.Errorf("event = %+v, want a battery failure on unit 2", ev[0])
	}
	if ev[0].At < 12*time.Hour+30*time.Minute || ev[0].At > 12*time.Hour+40*time.Minute {
		t.Errorf("detected at %v, want within minutes of the 12h30m injection", ev[0].At)
	}
	if m.Groups()[2] != GroupOffline {
		t.Error("faulted unit not moved to Offline")
	}
	if !m.Quarantined()[2] {
		t.Error("unit 2 not flagged quarantined")
	}
	// Graceful degradation: the remaining five units keep the day alive.
	if res.Brownouts != 0 {
		t.Errorf("%d brownouts after losing one unit on a high-solar day", res.Brownouts)
	}
	if res.UptimeFrac < 0.9 {
		t.Errorf("uptime %.2f after one battery failure, want near-continuous", res.UptimeFrac)
	}

	// Quarantine is permanent: later screening passes (including the
	// offline-boost path) must not re-admit the unit.
	for tod := 21 * time.Hour; tod < 22*time.Hour; tod += time.Second {
		sys.Tick(tod, m)
	}
	if m.Groups()[2] != GroupOffline {
		t.Error("quarantined unit re-admitted by a later screening pass")
	}
	if got := m.FaultEvents(); len(got) != 1 {
		t.Errorf("quarantine re-fired: %v", got)
	}
}

func TestVoltageDriftIsQuarantined(t *testing.T) {
	// A drifted voltage transducer pushes the reading outside the physically
	// reachable OCV band; detection needs no particular schedule state.
	sys := newSystem(t, trace.FullSystemHigh(), sim.NewSeismicSink())
	m := New(DefaultConfig(), 6)
	wireInjector(t, sys, "drift:1@11h:1.5")
	sys.Run(m)

	ev := m.FaultEvents()
	if len(ev) != 1 {
		t.Fatalf("fault events = %v, want exactly one", ev)
	}
	if ev[0].Unit != 1 || !strings.Contains(ev[0].Reason, "voltage") {
		t.Errorf("event = %+v, want a voltage-transducer fault on unit 1", ev[0])
	}
	if ev[0].At < 11*time.Hour || ev[0].At > 11*time.Hour+5*time.Minute {
		t.Errorf("detected at %v, want within minutes of the 11h injection", ev[0].At)
	}
	if m.Groups()[1] != GroupOffline {
		t.Error("drifted unit not moved to Offline")
	}
}

func TestStuckOpenRelayIsQuarantined(t *testing.T) {
	// A discharge relay that never closes leaves its unit commanded into the
	// discharge set but carrying no current; the fabric splits the deficit
	// over the relays that actually closed, so the bus holds while the
	// detector catches the dead unit.
	sys := newSystem(t, trace.FullSystemLow(), sim.NewVideoSink())
	m := New(DefaultConfig(), 6)
	wireInjector(t, sys, "relay-open:0@8h")
	res := sys.Run(m)

	ev := m.FaultEvents()
	if len(ev) != 1 {
		t.Fatalf("fault events = %v, want exactly one", ev)
	}
	if ev[0].Unit != 0 || !strings.Contains(ev[0].Reason, "relay") {
		t.Errorf("event = %+v, want a stuck-open relay on unit 0", ev[0])
	}
	if m.Groups()[0] != GroupOffline {
		t.Error("stuck unit not moved to Offline")
	}
	if res.UptimeFrac <= 0 {
		t.Error("plant lost all availability to one stuck relay")
	}
}

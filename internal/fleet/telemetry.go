package fleet

import (
	"insure/internal/telemetry"
)

// fleetTelemetry mirrors the coordinator's accounting into a live registry.
// Fleet-wide series are plain instruments updated as events happen;
// per-site series carry a site label. Everything is published from the
// coordinator's single-threaded control pass, so scrapes (which read
// atomics) never race the run.
type fleetTelemetry struct {
	sites     *telemetry.Gauge
	sitesLive *telemetry.Gauge

	migrations    *telemetry.Counter
	jobsMoved     *telemetry.Counter
	imagesShipped *telemetry.Counter
	restored      *telemetry.Counter
	sitesLost     *telemetry.Counter

	migratedGB   *telemetry.Gauge
	checkpointGB *telemetry.Gauge
	energyWh     *telemetry.Gauge
	costUSD      *telemetry.Gauge

	// Degraded-WAN series.
	heals         *telemetry.Counter
	reroutes      *telemetry.Counter
	chunkDrops    *telemetry.Counter
	chunkCorrupts *telemetry.Counter
	jobsDoubleRun *telemetry.Counter
	splitBrain    *telemetry.Counter
	retransmitGB  *telemetry.Gauge

	// Checkpoint-image integrity series (Config.Images set).
	imagesLanded    *telemetry.Counter
	imagesVerified  *telemetry.Counter
	imagesRepaired  *telemetry.Counter
	imagesCorrupt   *telemetry.Counter
	imagesReshipped *telemetry.Counter

	siteUp        []*telemetry.Gauge
	siteSoC       []*telemetry.Gauge
	siteMode      []*telemetry.Gauge
	sitePending   []*telemetry.Gauge
	siteReachable []*telemetry.Gauge
	siteSuspected []*telemetry.Gauge
}

// AttachTelemetry publishes the coordinator's fleet- and site-level series
// into reg and seeds them from the current (possibly replayed) accounting.
func (c *Coordinator) AttachTelemetry(reg *telemetry.Registry) {
	t := &fleetTelemetry{
		sites:     reg.Gauge("insure_fleet_sites", "Sites under this coordinator."),
		sitesLive: reg.Gauge("insure_fleet_sites_live", "Sites currently alive."),

		migrations:    reg.Counter("insure_fleet_migrations_total", "Job-migration shipments dispatched."),
		jobsMoved:     reg.Counter("insure_fleet_jobs_moved_total", "Batch jobs moved between sites."),
		imagesShipped: reg.Counter("insure_fleet_checkpoint_images_shipped_total", "VM checkpoint images shipped off evacuating sites."),
		restored:      reg.Counter("insure_fleet_checkpoint_images_restored_total", "Shipped checkpoint images landed at a destination."),
		sitesLost:     reg.Counter("insure_fleet_sites_lost_total", "Sites lost with their in-flight resources."),

		migratedGB:   reg.Gauge("insure_fleet_migrated_gb", "Cumulative deferred-work volume migrated."),
		checkpointGB: reg.Gauge("insure_fleet_checkpoint_gb", "Cumulative checkpoint volume shipped."),
		energyWh:     reg.Gauge("insure_fleet_migration_energy_wh", "Cumulative backhaul transmission energy."),
		costUSD:      reg.Gauge("insure_fleet_migration_cost_usd", "Cumulative backhaul service cost."),

		heals:         reg.Counter("insure_fleet_heals_total", "Suspected or declared sites that heartbeated again."),
		reroutes:      reg.Counter("insure_fleet_reroutes_total", "Chunked transfers restarted toward a fresh donor."),
		chunkDrops:    reg.Counter("insure_fleet_chunk_drops_total", "Transfer chunks lost in transit."),
		chunkCorrupts: reg.Counter("insure_fleet_chunk_corrupt_total", "Transfer chunks discarded by CRC framing."),
		jobsDoubleRun: reg.Counter("insure_fleet_jobs_double_run_total", "Guard: job IDs that landed twice (must stay 0)."),
		splitBrain:    reg.Counter("insure_fleet_split_brain_total", "Guard: jobs entering a transfer while in flight or landed (must stay 0)."),
		retransmitGB:  reg.Gauge("insure_fleet_retransmit_gb", "Cumulative link bytes beyond goodput."),
	}
	if c.cfg.Images != nil {
		t.imagesLanded = reg.Counter("insure_fleet_images_landed_total", "Checkpoint image pairs written to the store.")
		t.imagesVerified = reg.Counter("insure_fleet_images_verified_total", "Landed images that read back intact.")
		t.imagesRepaired = reg.Counter("insure_fleet_images_repaired_total", "Damaged image copies rebuilt from their mirror.")
		t.imagesCorrupt = reg.Counter("insure_fleet_images_corrupt_total", "Landings with no intact copy (each re-ships).")
		t.imagesReshipped = reg.Counter("insure_fleet_images_reshipped_total", "Shipments dispatched again after a failed verify.")
	}
	for i := range c.sites {
		lbl := telemetry.Label{Key: "site", Value: c.sites[i].name}
		t.siteUp = append(t.siteUp, reg.Gauge("insure_fleet_site_up", "1 while the site is alive.", lbl))
		t.siteSoC = append(t.siteSoC, reg.Gauge("insure_fleet_site_soc", "Site mean transduced state of charge.", lbl))
		t.siteMode = append(t.siteMode, reg.Gauge("insure_fleet_site_mode", "Site survivability rung (0=normal).", lbl))
		t.sitePending = append(t.sitePending, reg.Gauge("insure_fleet_site_pending_gb", "Site deferred batch backlog.", lbl))
		t.siteReachable = append(t.siteReachable, reg.Gauge("insure_fleet_site_reachable", "1 while the site's heartbeat gets through.", lbl))
		t.siteSuspected = append(t.siteSuspected, reg.Gauge("insure_fleet_site_suspected", "1 while the failure detector suspects the site.", lbl))
	}
	c.tel = t
	c.publishTelemetry()
}

// publishTelemetry pushes the current accounting into the registry. Called
// at attach time and after every coordinator pass.
func (c *Coordinator) publishTelemetry() {
	t := c.tel
	if t == nil {
		return
	}
	live := 0
	for i := range c.sites {
		st := &c.sites[i]
		up := 1.0
		if st.dead {
			up = 0
		} else {
			live++
		}
		t.siteUp[i].Set(up)
		t.siteSoC[i].Set(st.soc)
		t.siteMode[i].Set(float64(st.mode))
		t.sitePending[i].Set(st.pendingGB)
		reach := 1.0
		if st.missedBeats > 0 {
			reach = 0
		}
		t.siteReachable[i].Set(reach)
		susp := 0.0
		if st.suspected {
			susp = 1
		}
		t.siteSuspected[i].Set(susp)
	}
	t.sites.Set(float64(len(c.sites)))
	t.sitesLive.Set(float64(live))

	tot := c.totals
	setCounter(t.migrations, tot.Migrations)
	setCounter(t.jobsMoved, tot.JobsMoved)
	setCounter(t.imagesShipped, tot.ImagesShipped)
	setCounter(t.restored, tot.RestoredVMs)
	setCounter(t.sitesLost, tot.SitesLost)
	t.migratedGB.Set(tot.MigratedGB)
	t.checkpointGB.Set(tot.CheckpointGB)
	t.energyWh.Set(tot.EnergyWh)
	t.costUSD.Set(float64(tot.Cost))

	setCounter(t.heals, c.heals)
	setCounter(t.reroutes, tot.Reroutes)
	setCounter(t.chunkDrops, tot.ChunkDrops)
	setCounter(t.chunkCorrupts, tot.ChunkCorrupts)
	setCounter(t.jobsDoubleRun, tot.JobsDoubleRun)
	setCounter(t.splitBrain, tot.SplitBrain)
	t.retransmitGB.Set(tot.RetransmitGB)

	if c.cfg.Images != nil && t.imagesLanded != nil {
		is := c.cfg.Images.Stats()
		setCounter(t.imagesLanded, is.Landed)
		setCounter(t.imagesVerified, is.Verified)
		setCounter(t.imagesRepaired, is.Repaired)
		setCounter(t.imagesCorrupt, is.Corrupt)
		setCounter(t.imagesReshipped, is.Reshipped)
	}
}

// setCounter advances a monotonic counter to the given absolute total.
func setCounter(c *telemetry.Counter, total int) {
	if d := int64(total) - c.Value(); d > 0 {
		c.Add(d)
	}
}

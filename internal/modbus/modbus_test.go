package modbus

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"insure/internal/plc"
	"insure/internal/telemetry"
)

func TestADURoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := ADU{Transaction: 0xBEEF, UnitID: 3, PDU: []byte{0x03, 0x00, 0x01, 0x00, 0x02}}
	if err := WriteADU(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadADU(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Transaction != in.Transaction || out.UnitID != in.UnitID || !bytes.Equal(out.PDU, in.PDU) {
		t.Errorf("round trip mismatch: %+v vs %+v", out, in)
	}
}

func TestADURejectsEmptyPDU(t *testing.T) {
	if err := WriteADU(&bytes.Buffer{}, ADU{}); err == nil {
		t.Error("empty PDU accepted")
	}
}

func TestADUBadProtocol(t *testing.T) {
	raw := []byte{0, 1, 0, 9, 0, 2, 1, 3}
	if _, err := ReadADU(bytes.NewReader(raw)); err == nil {
		t.Error("nonzero protocol id accepted")
	}
}

func TestBitPackingRoundTrip(t *testing.T) {
	f := func(bits []bool) bool {
		if len(bits) == 0 {
			return true
		}
		got, err := unpackBits(packBits(bits), len(bits))
		if err != nil {
			return false
		}
		for i := range bits {
			if got[i] != bits[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRegPackingRoundTrip(t *testing.T) {
	f := func(regs []uint16) bool {
		got, err := unpackRegs(packRegs(regs))
		if err != nil {
			return false
		}
		if len(got) != len(regs) {
			return false
		}
		for i := range regs {
			if got[i] != regs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// newPair spins up a server over loopback and returns a connected client.
func newPair(t *testing.T, regs *plc.RegisterFile) *Client {
	t.Helper()
	srv := NewServer(regs)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestClientServerCoils(t *testing.T) {
	regs := plc.NewRegisterFile(32, 8, 16, 16)
	c := newPair(t, regs)

	if err := c.WriteCoil(5, true); err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadCoils(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		want := i == 5
		if b != want {
			t.Errorf("coil %d = %v, want %v", i, b, want)
		}
	}
	// The write must have landed in the shared register file.
	direct, _ := regs.ReadCoils(5, 1)
	if !direct[0] {
		t.Error("write did not reach the register file")
	}
}

func TestClientServerRegisters(t *testing.T) {
	regs := plc.NewRegisterFile(8, 8, 32, 32)
	c := newPair(t, regs)

	if err := c.WriteRegister(2, 1234); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteRegisters(10, []uint16{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadHolding(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != uint16(i+1) {
			t.Errorf("holding[%d] = %d", 10+i, v)
		}
	}
	one, err := c.ReadHolding(2, 1)
	if err != nil || one[0] != 1234 {
		t.Errorf("single register = %v, %v", one, err)
	}
}

func TestClientServerInputAndDiscrete(t *testing.T) {
	regs := plc.NewRegisterFile(8, 8, 8, 8)
	_ = regs.SetInput(3, 2222)
	_ = regs.SetDiscrete(1, true)
	c := newPair(t, regs)

	in, err := c.ReadInput(3, 1)
	if err != nil || in[0] != 2222 {
		t.Errorf("input = %v, %v", in, err)
	}
	d, err := c.ReadDiscrete(0, 2)
	if err != nil || d[0] || !d[1] {
		t.Errorf("discrete = %v, %v", d, err)
	}
}

func TestServerExceptions(t *testing.T) {
	regs := plc.NewRegisterFile(4, 4, 4, 4)
	c := newPair(t, regs)

	_, err := c.ReadCoils(100, 4)
	var ex Exception
	if !errors.As(err, &ex) || byte(ex) != ExIllegalAddress {
		t.Errorf("OOB coil read error = %v, want illegal address", err)
	}
	if err := c.WriteRegister(99, 1); !errors.As(err, &ex) || byte(ex) != ExIllegalAddress {
		t.Errorf("OOB register write error = %v", err)
	}
	if _, err := c.ReadHolding(0, 0); err == nil {
		t.Error("zero-count read accepted")
	}
}

func TestServerIllegalFunction(t *testing.T) {
	regs := plc.NewRegisterFile(4, 4, 4, 4)
	srv := NewServer(regs)
	resp := srv.handle([]byte{0x2B, 0x00})
	if len(resp) != 2 || resp[0] != 0x2B|exceptionFlag || resp[1] != ExIllegalFunction {
		t.Errorf("illegal function response = %v", resp)
	}
	if resp := srv.handle(nil); len(resp) != 2 || resp[1] != ExIllegalFunction {
		t.Errorf("empty PDU response = %v", resp)
	}
}

func TestWriteCoilValueValidation(t *testing.T) {
	regs := plc.NewRegisterFile(4, 4, 4, 4)
	srv := NewServer(regs)
	resp := srv.handle([]byte{FuncWriteSingleCoil, 0, 0, 0x12, 0x34})
	if resp[0] != FuncWriteSingleCoil|exceptionFlag || resp[1] != ExIllegalValue {
		t.Errorf("bad coil value response = %v", resp)
	}
}

func TestConcurrentClients(t *testing.T) {
	regs := plc.NewRegisterFile(64, 8, 64, 64)
	srv := NewServer(regs)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := Dial(addr.String())
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for i := 0; i < 50; i++ {
				if err := c.WriteRegister(uint16(g), uint16(i)); err != nil {
					t.Error(err)
					return
				}
				if _, err := c.ReadHolding(0, 8); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestClientWriteRegistersValidation(t *testing.T) {
	regs := plc.NewRegisterFile(4, 4, 200, 4)
	c := newPair(t, regs)
	if err := c.WriteRegisters(0, nil); err == nil {
		t.Error("empty write accepted")
	}
	if err := c.WriteRegisters(0, make([]uint16, 150)); err == nil {
		t.Error("oversized write accepted")
	}
}

func TestExceptionStrings(t *testing.T) {
	for _, code := range []byte{ExIllegalFunction, ExIllegalAddress, ExIllegalValue, ExServerFailure, 0x7F} {
		if Exception(code).Error() == "" {
			t.Errorf("exception %#x has empty message", code)
		}
	}
}

func TestWriteMultipleCoils(t *testing.T) {
	regs := plc.NewRegisterFile(16, 0, 0, 0)
	c := newPair(t, regs)
	if err := c.WriteCoils(2, []bool{true, false, true, true}); err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadCoils(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{true, false, true, true}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("coil %d = %v, want %v", 2+i, got[i], want[i])
		}
	}
	// Out-of-range writes must not partially apply.
	if err := c.WriteCoils(14, []bool{true, true, true, true}); err == nil {
		t.Error("OOB multi-coil write accepted")
	}
	after, _ := c.ReadCoils(14, 2)
	if after[0] || after[1] {
		t.Error("partial write leaked after rejected transaction")
	}
	if err := c.WriteCoils(0, nil); err == nil {
		t.Error("empty coil write accepted")
	}
}

// logRecorder collects server diagnostics safely across goroutines.
type logRecorder struct {
	mu    sync.Mutex
	lines []string
}

func (l *logRecorder) logf(format string, args ...any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.lines = append(l.lines, fmt.Sprintf(format, args...))
}

func (l *logRecorder) all() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.lines...)
}

func TestServerTruncatedFrameLogsProtocolError(t *testing.T) {
	regs := plc.NewRegisterFile(4, 4, 4, 4)
	srv := NewServer(regs)
	rec := &logRecorder{}
	srv.Logf = rec.logf
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	// Half an MBAP header, then hang up: a frame truncated mid-read.
	if _, err := conn.Write([]byte{0x00, 0x01, 0x00}); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	waitFor(t, func() bool { return len(rec.all()) > 0 })
	srv.Close() // drains the handler before we inspect the log
	var sawProtocol bool
	for _, line := range rec.all() {
		if strings.Contains(line, "protocol") {
			sawProtocol = true
		}
	}
	if !sawProtocol {
		t.Errorf("truncated frame not logged as protocol error; log = %q", rec.all())
	}
}

func TestServerCleanCloseIsSilent(t *testing.T) {
	regs := plc.NewRegisterFile(4, 4, 4, 4)
	srv := NewServer(regs)
	rec := &logRecorder{}
	srv.Logf = rec.logf
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WriteCoil(0, true); err != nil {
		t.Fatal(err)
	}
	c.Close()   // orderly FIN: the server sees io.EOF
	srv.Close() // drains the handler
	if got := rec.all(); len(got) != 0 {
		t.Errorf("clean close produced diagnostics: %q", got)
	}
}

func TestServerOversizedReadCount(t *testing.T) {
	regs := plc.NewRegisterFile(64, 4, 64, 4)
	c := newPair(t, regs)
	var ex Exception
	if _, err := c.ReadCoils(0, MaxCoilsPerRead+1); !errors.As(err, &ex) || byte(ex) != ExIllegalValue {
		t.Errorf("oversized coil read error = %v, want illegal value", err)
	}
	if _, err := c.ReadHolding(0, MaxRegsPerRead+1); !errors.As(err, &ex) || byte(ex) != ExIllegalValue {
		t.Errorf("oversized register read error = %v, want illegal value", err)
	}
}

func TestClientRecoversFromDroppedConnection(t *testing.T) {
	regs := plc.NewRegisterFile(16, 4, 16, 4)
	srv := NewServer(regs)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.RetryBackoff = time.Millisecond
	if err := c.WriteCoil(1, true); err != nil {
		t.Fatal(err)
	}
	// The panel flaps: every live session is severed, the listener stays up.
	srv.DropConnections()
	got, err := c.ReadCoils(0, 4)
	if err != nil {
		t.Fatalf("read after drop failed despite retry: %v", err)
	}
	if !got[1] {
		t.Error("register file state lost across reconnect")
	}
	if c.Retries() == 0 {
		t.Error("retry counter did not advance")
	}
	if c.Reconnects() == 0 {
		t.Error("reconnect counter did not advance")
	}
}

func TestClientDoesNotRetryExceptions(t *testing.T) {
	regs := plc.NewRegisterFile(4, 4, 4, 4)
	c := newPair(t, regs)
	c.RetryBackoff = time.Millisecond
	var ex Exception
	if _, err := c.ReadCoils(100, 1); !errors.As(err, &ex) {
		t.Fatalf("OOB read error = %v, want exception", err)
	}
	if got := c.Retries(); got != 0 {
		t.Errorf("exception response was retried %d times", got)
	}
}

func TestClientGivesUpWhenServerGone(t *testing.T) {
	regs := plc.NewRegisterFile(4, 4, 4, 4)
	srv := NewServer(regs)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.RetryBackoff = time.Millisecond
	srv.Close() // listener and sessions gone: redial cannot succeed
	if _, err := c.ReadCoils(0, 1); err == nil {
		t.Error("read succeeded against a dead server")
	}
	if got := c.Retries(); got != int64(c.MaxRetries) {
		t.Errorf("retries = %d, want the full budget %d", got, c.MaxRetries)
	}
}

func TestServeShutsDownOnContextCancel(t *testing.T) {
	regs := plc.NewRegisterFile(4, 4, 4, 4)
	srv := NewServer(regs)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, "127.0.0.1:0") }()
	time.Sleep(10 * time.Millisecond) // let it bind
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("Serve returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Serve did not return after context cancellation")
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not met within 2 s")
}

func TestReadWriteMultipleRegisters(t *testing.T) {
	regs := plc.NewRegisterFile(0, 0, 32, 0)
	_ = regs.WriteHolding(0, []uint16{7, 8, 9})
	c := newPair(t, regs)
	// Write to 10..11 and read back 0..2 in one transaction.
	got, err := c.ReadWriteRegisters(0, 3, 10, []uint16{100, 200})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 7 || got[1] != 8 || got[2] != 9 {
		t.Errorf("read part = %v", got)
	}
	check, _ := c.ReadHolding(10, 2)
	if check[0] != 100 || check[1] != 200 {
		t.Errorf("write part = %v", check)
	}
	// Write-before-read ordering: overlapping addresses observe the write.
	got, err = c.ReadWriteRegisters(10, 1, 10, []uint16{4242})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 4242 {
		t.Errorf("overlapping read = %d, want the freshly written 4242", got[0])
	}
	if _, err := c.ReadWriteRegisters(0, 0, 0, []uint16{1}); err == nil {
		t.Error("zero-count read accepted")
	}
	if _, err := c.ReadWriteRegisters(0, 1, 0, nil); err == nil {
		t.Error("empty write accepted")
	}
}

// TestServerReapsHalfOpenSessions proves a client that connects and then
// goes silent (a half-open/partitioned peer) cannot pin a session goroutine
// forever: the server reaps it after SessionTimeout and counts the reap.
func TestServerReapsHalfOpenSessions(t *testing.T) {
	regs := plc.NewRegisterFile(8, 8, 8, 8)
	srv := NewServer(regs)
	srv.SessionTimeout = 50 * time.Millisecond
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Raw TCP connection that never sends a single byte: exactly what a
	// partitioned peer looks like to the server.
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	deadline := time.Now().Add(5 * time.Second)
	for srv.SessionsReaped() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("session never reaped")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := srv.SessionsReaped(); got != 1 {
		t.Fatalf("SessionsReaped = %d, want 1", got)
	}

	// The reaped session's connection is closed from the server side.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("expected server to close the reaped connection")
	}

	// A live client on the same server is unaffected by the reaping and
	// can keep a session open past the idle timeout by staying active.
	c, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 4; i++ {
		if err := c.WriteCoil(1, i%2 == 0); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got := srv.SessionsReaped(); got != 1 {
		t.Fatalf("active session was reaped: SessionsReaped = %d", got)
	}
}

// TestServerReapedCounterTelemetry wires the server counter into a registry
// and checks the documented instrument name is present.
func TestServerReapedCounterTelemetry(t *testing.T) {
	regs := plc.NewRegisterFile(8, 8, 8, 8)
	srv := NewServer(regs)
	reg := telemetry.NewRegistry()
	srv.RegisterTelemetry(reg)
	snap := reg.Snapshot()
	v, ok := snap.Gauges["modbus_server_sessions_reaped"]
	if !ok {
		t.Fatal("modbus_server_sessions_reaped not registered")
	}
	if v != 0 {
		t.Fatalf("fresh server reaped gauge = %v, want 0", v)
	}
}

package battery

import (
	"fmt"
	"time"

	"insure/internal/units"
)

// Bank is the distributed battery array: an indexed set of units that the
// relay fabric connects to the charge or discharge bus individually. A bank
// is a contiguous view over a BankSoA store — its own store normally, or a
// shared slice of a fleet-wide store (NewBankFleet) when many plants run in
// one process.
type Bank struct {
	soa   *BankSoA
	base  int    // first store slot owned by this bank
	units []Unit // handle per slot, contiguous
	ptrs  []*Unit
}

// newBankView wires a bank over store slots [base, base+n).
func newBankView(s *BankSoA, base, n int) *Bank {
	b := &Bank{soa: s, base: base, units: make([]Unit, n), ptrs: make([]*Unit, n)}
	for i := range b.units {
		b.units[i] = Unit{s: s, i: base + i}
		b.ptrs[i] = &b.units[i]
	}
	return b
}

// NewBank builds a bank of n identical units at the given initial SoC.
func NewBank(p Params, n int, soc float64) (*Bank, error) {
	if n <= 0 {
		return nil, fmt.Errorf("battery: bank size %d must be positive", n)
	}
	s, err := NewBankSoA(p, n, soc)
	if err != nil {
		return nil, err
	}
	return newBankView(s, 0, n), nil
}

// MustNewBank is NewBank for known-good parameters; it panics on error.
func MustNewBank(p Params, n int, soc float64) *Bank {
	b, err := NewBank(p, n, soc)
	if err != nil {
		panic(err)
	}
	return b
}

// NewBankFleet builds one bank per plant, all backed by a single shared
// store so a fleet's battery state is one contiguous block of memory. Plant
// i owns store slots [i·unitsPer, (i+1)·unitsPer). The banks are fully
// independent operationally — the shared store is a memory layout, not a
// coupling — and stepping them interleaved is bit-identical to stepping
// per-plant stores.
func NewBankFleet(p Params, plants, unitsPer int, soc float64) ([]*Bank, *BankSoA, error) {
	if plants <= 0 || unitsPer <= 0 {
		return nil, nil, fmt.Errorf("battery: fleet of %d plants × %d units must be positive", plants, unitsPer)
	}
	s, err := NewBankSoA(p, plants*unitsPer, soc)
	if err != nil {
		return nil, nil, err
	}
	banks := make([]*Bank, plants)
	for i := range banks {
		banks[i] = newBankView(s, i*unitsPer, unitsPer)
	}
	return banks, s, nil
}

// SoA returns the store backing this bank. For a fleet bank the store spans
// every plant in the fleet, not just this bank's slots.
func (b *Bank) SoA() *BankSoA { return b.soa }

// Size returns the number of units in the bank.
func (b *Bank) Size() int { return len(b.units) }

// Unit returns unit i.
func (b *Bank) Unit(i int) *Unit { return &b.units[i] }

// Units returns the bank's unit handles (shared, not copied).
func (b *Bank) Units() []*Unit { return b.ptrs }

// StoredEnergy totals the energy held across all units.
func (b *Bank) StoredEnergy() units.WattHour {
	var e units.WattHour
	for i := range b.units {
		e += b.units[i].StoredEnergy()
	}
	return e
}

// MeanSoC is the capacity-weighted average state of charge.
func (b *Bank) MeanSoC() float64 {
	var s, c float64
	for i := range b.units {
		u := &b.units[i]
		s += u.SoC() * float64(u.s.p.CapacityAh)
		c += float64(u.s.p.CapacityAh)
	}
	if c == 0 {
		return 0
	}
	return s / c
}

// TotalThroughput sums wear-weighted throughput across units.
func (b *Bank) TotalThroughput() units.AmpHour {
	var t units.AmpHour
	for i := range b.units {
		t += b.units[i].Throughput()
	}
	return t
}

// ThroughputSpread returns max−min per-unit throughput, a direct measure of
// how well SPM balances wear across the array.
func (b *Bank) ThroughputSpread() units.AmpHour {
	if len(b.units) == 0 {
		return 0
	}
	min, max := b.units[0].Throughput(), b.units[0].Throughput()
	for i := 1; i < len(b.units); i++ {
		if t := b.units[i].Throughput(); t < min {
			min = t
		} else if t > max {
			max = t
		}
	}
	return max - min
}

// RestAll advances every unit with no current flowing. When the bank owns
// its whole store this is the flat batch loop; a fleet-slice bank steps just
// its own span (same kernel, same results).
func (b *Bank) RestAll(dt time.Duration) {
	if b.base == 0 && len(b.units) == b.soa.Len() {
		b.soa.RestAll(dt)
		return
	}
	for i := range b.units {
		b.units[i].Rest(dt)
	}
}

// DischargeSet draws total power p split evenly across the given unit
// indices for dt, and returns the energy actually delivered. Units whose
// available well empties deliver less; the caller sees the shortfall.
func (b *Bank) DischargeSet(idx []int, p units.Watt, dt time.Duration) units.WattHour {
	if len(idx) == 0 || p <= 0 {
		return 0
	}
	var delivered units.WattHour
	share := p / units.Watt(len(idx))
	for _, i := range idx {
		u := &b.units[i]
		v := u.TerminalVoltage()
		if v <= 0 {
			continue
		}
		cur := units.Current(share, v)
		got := u.Discharge(cur, dt)
		delivered += units.WattHour(float64(got) * float64(v))
	}
	return delivered
}

// ChargeSet pushes budget power into the given unit indices, splitting
// evenly, and returns the power actually consumed.
func (b *Bank) ChargeSet(idx []int, budget units.Watt, dt time.Duration) units.Watt {
	if len(idx) == 0 || budget <= 0 {
		return 0
	}
	var used units.Watt
	share := budget / units.Watt(len(idx))
	for _, i := range idx {
		used += b.units[i].ChargeAtPower(share, dt)
	}
	return used
}

// Package server models the in-situ compute cluster of the InSURE
// prototype: four HP ProLiant rack servers (dual Xeon 3.2 GHz, 16 GB RAM),
// each hosting two Xen virtual machines (§4, §5).
//
// The load-side control knobs the paper uses are all here:
//
//   - server power states with the measured ~15 minute disruption per
//     on/off power cycle (VM checkpoint + restore, §2.3);
//   - DVFS duty cycles for batch jobs (§3.4);
//   - VM-count adjustment for stream jobs (§3.4);
//   - heterogeneous node profiles (legacy Xeon vs low-power Core i7,
//     Table 7).
package server

import (
	"fmt"
	"time"

	"insure/internal/units"
)

// Profile is a server model's power/performance envelope.
type Profile struct {
	Name string
	// IdlePower and PeakPower bound the node's draw (280 W / 450 W for the
	// prototype's ProLiant nodes).
	IdlePower units.Watt
	PeakPower units.Watt
	// VMSlots is how many VMs the node hosts (2 on the prototype).
	VMSlots int
	// Speed is the node's relative per-VM compute rate (Xeon ≡ 1).
	Speed float64
	// CheckpointTime is the node-level save cost on shutdown (sync disks,
	// power sequencing); RestoreTime the node-level boot cost. Each active
	// VM adds CheckpointPerVM / RestorePerVM for its state image. At full
	// occupancy the totals are the paper's ~15 min per on/off cycle.
	CheckpointTime  time.Duration
	RestoreTime     time.Duration
	CheckpointPerVM time.Duration
	RestorePerVM    time.Duration
}

// CheckpointFor is the total shutdown cost with vms active.
func (p Profile) CheckpointFor(vms int) time.Duration {
	return p.CheckpointTime + time.Duration(vms)*p.CheckpointPerVM
}

// RestoreFor is the total startup cost with vms to restore.
func (p Profile) RestoreFor(vms int) time.Duration {
	return p.RestoreTime + time.Duration(vms)*p.RestorePerVM
}

// Xeon is the prototype's legacy high-performance node.
func Xeon() Profile {
	return Profile{
		Name:            "Xeon 3.2G",
		IdlePower:       280,
		PeakPower:       450,
		VMSlots:         2,
		Speed:           1,
		CheckpointTime:  3 * time.Minute,
		RestoreTime:     4 * time.Minute,
		CheckpointPerVM: 2 * time.Minute, // 4 GB VM image over the SAS disks
		RestorePerVM:    2 * time.Minute,
	}
}

// CoreI7 is the emerging low-power node of Table 7 (Intel Core i7-2720).
func CoreI7() Profile {
	return Profile{
		Name:            "Core i7",
		IdlePower:       18,
		PeakPower:       48,
		VMSlots:         2,
		Speed:           0.9,
		CheckpointTime:  1 * time.Minute,
		RestoreTime:     1 * time.Minute,
		CheckpointPerVM: 30 * time.Second, // SSD-class storage
		RestorePerVM:    time.Minute,
	}
}

// State is a node's power state.
type State int

const (
	Off State = iota
	Restoring
	On
	Checkpointing
)

func (s State) String() string {
	switch s {
	case Off:
		return "off"
	case Restoring:
		return "restoring"
	case On:
		return "on"
	case Checkpointing:
		return "checkpointing"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Node is one physical machine.
type Node struct {
	prof  Profile
	state State
	timer time.Duration // remaining transition time

	activeVMs int
	duty      float64 // DVFS duty cycle in (0,1]
	util      float64 // workload CPU utilisation per active VM pair

	// savingVMs is how many VM images the in-flight checkpoint covers; the
	// allocator zeroes activeVMs the moment a node leaves service, so the
	// count must be latched when the checkpoint begins.
	savingVMs int

	onOffCycles int
	vmsSaved    int // VM images whose checkpoint completed
	vmsLost     int // VMs destroyed by power loss before their image was safe
	energy      units.WattHour
	busyTime    time.Duration
}

// NewNode returns a powered-off node.
func NewNode(p Profile) *Node {
	return &Node{prof: p, duty: 1, util: 0.5}
}

// Profile returns the node's hardware profile.
func (n *Node) Profile() Profile { return n.prof }

// State returns the node's power state.
func (n *Node) State() State { return n.state }

// OnOffCycles counts completed power cycles (each costs a checkpoint).
func (n *Node) OnOffCycles() int { return n.onOffCycles }

// Energy is the node's lifetime consumption.
func (n *Node) Energy() units.WattHour { return n.energy }

// SetDuty sets the DVFS duty cycle; values are clamped to [0.1, 1].
func (n *Node) SetDuty(d float64) { n.duty = units.Clamp(d, 0.1, 1) }

// Duty returns the current duty cycle.
func (n *Node) Duty() float64 { return n.duty }

// SetUtil sets the per-VM workload CPU utilisation in [0,1].
func (n *Node) SetUtil(u float64) { n.util = units.Clamp(u, 0, 1) }

// SetActiveVMs sets how many of the node's VM slots run work.
func (n *Node) SetActiveVMs(v int) {
	if v < 0 {
		v = 0
	}
	if v > n.prof.VMSlots {
		v = n.prof.VMSlots
	}
	n.activeVMs = v
}

// ActiveVMs returns the number of working VMs.
func (n *Node) ActiveVMs() int { return n.activeVMs }

// PowerOn begins the restore transition if the node is off. The duration
// covers boot plus restoring every allocated VM's state image.
func (n *Node) PowerOn() {
	if n.state == Off {
		n.state = Restoring
		n.timer = n.prof.RestoreFor(n.activeVMs)
	}
}

// PowerOff begins checkpoint + shutdown if the node is running; every
// active VM's state must be saved first.
func (n *Node) PowerOff() {
	if n.state == On || n.state == Restoring {
		n.state = Checkpointing
		n.timer = n.prof.CheckpointFor(n.activeVMs)
		n.savingVMs = n.activeVMs
	}
}

// Crash cuts the node's power instantly — the bus collapsed under it. A
// node caught On loses its VMs' in-memory state; one caught Checkpointing
// loses the images it was still saving. A node caught Restoring loses
// nothing: the checkpoint images it boots from stay intact on disk.
func (n *Node) Crash() {
	switch n.state {
	case On:
		n.vmsLost += n.activeVMs
	case Checkpointing:
		n.vmsLost += n.savingVMs
	}
	if n.state != Off {
		n.state = Off
		n.timer = 0
		n.savingVMs = 0
		n.onOffCycles++
	}
}

// VMsSaved counts VM images whose checkpoint completed over the node's life.
func (n *Node) VMsSaved() int { return n.vmsSaved }

// VMsLost counts VMs destroyed by power loss before their state was safe.
func (n *Node) VMsLost() int { return n.vmsLost }

// Running reports whether the node currently executes work.
func (n *Node) Running() bool { return n.state == On }

// Power is the node's present draw. Transitions draw idle-plus power (disk
// and network busy saving or loading VM images) but make no progress.
func (n *Node) Power() units.Watt {
	span := float64(n.prof.PeakPower - n.prof.IdlePower)
	switch n.state {
	case Off:
		return 0
	case Restoring, Checkpointing:
		return n.prof.IdlePower + units.Watt(0.3*span)
	case On:
		frac := float64(n.activeVMs) / float64(n.prof.VMSlots)
		return n.prof.IdlePower + units.Watt(span*n.util*n.duty*frac)
	}
	return 0
}

// Step advances the node by dt and returns the work done, in full-speed
// VM-hours. Progress accrues only in the On state, scaled by duty cycle and
// the node's relative speed.
func (n *Node) Step(dt time.Duration) float64 {
	n.energy += units.Energy(n.Power(), dt)
	switch n.state {
	case Restoring:
		n.timer -= dt
		if n.timer <= 0 {
			n.state = On
		}
		return 0
	case Checkpointing:
		n.timer -= dt
		if n.timer <= 0 {
			n.state = Off
			n.onOffCycles++
			n.vmsSaved += n.savingVMs
			n.savingVMs = 0
		}
		return 0
	case On:
		if n.activeVMs == 0 {
			return 0
		}
		n.busyTime += dt
		return float64(n.activeVMs) * n.duty * n.prof.Speed * dt.Hours()
	}
	return 0
}

// Cluster is the rack of nodes plus the VM allocator.
type Cluster struct {
	nodes []*Node

	targetVMs int
	vmOps     int // VM management operations (paper's "VM Ctrl. Times")
	powerOps  int // power-control actions (duty/state changes)
}

// NewCluster builds n nodes of the given profile, all off.
func NewCluster(p Profile, n int) *Cluster {
	c := &Cluster{nodes: make([]*Node, n)}
	for i := range c.nodes {
		c.nodes[i] = NewNode(p)
	}
	return c
}

// Nodes returns the underlying nodes (shared).
func (c *Cluster) Nodes() []*Node { return c.nodes }

// Size returns the node count.
func (c *Cluster) Size() int { return len(c.nodes) }

// TotalVMSlots is the cluster-wide VM capacity.
func (c *Cluster) TotalVMSlots() int {
	total := 0
	for _, n := range c.nodes {
		total += n.prof.VMSlots
	}
	return total
}

// VMOps returns the cumulative VM management operation count.
func (c *Cluster) VMOps() int { return c.vmOps }

// PowerOps returns the cumulative power-control action count.
func (c *Cluster) PowerOps() int { return c.powerOps }

// SetTargetVMs reallocates VMs across nodes, powering nodes up or down as
// needed. Nodes fill to their slot capacity before the next node powers on,
// matching the prototype's allocator.
func (c *Cluster) SetTargetVMs(v int) {
	if v < 0 {
		v = 0
	}
	if max := c.TotalVMSlots(); v > max {
		v = max
	}
	if v == c.targetVMs {
		return
	}
	c.targetVMs = v
	c.vmOps++
	remaining := v
	for _, n := range c.nodes {
		take := n.prof.VMSlots
		if take > remaining {
			take = remaining
		}
		remaining -= take
		if take > 0 {
			n.SetActiveVMs(take)
			if n.state == Off {
				n.PowerOn()
				c.powerOps++
			}
		} else {
			// Checkpoint the VMs the node currently holds before the
			// allocation drops to zero — their state must be saved.
			if n.state == On || n.state == Restoring {
				n.PowerOff()
				c.powerOps++
			}
			n.SetActiveVMs(0)
		}
	}
}

// TargetVMs returns the allocator's current target.
func (c *Cluster) TargetVMs() int { return c.targetVMs }

// RunningVMs counts VMs on nodes that are actually in the On state.
func (c *Cluster) RunningVMs() int {
	total := 0
	for _, n := range c.nodes {
		if n.Running() {
			total += n.ActiveVMs()
		}
	}
	return total
}

// SetDuty applies a DVFS duty cycle across all nodes.
func (c *Cluster) SetDuty(d float64) {
	for _, n := range c.nodes {
		n.SetDuty(d)
	}
	c.powerOps++
}

// SetUtil applies the workload's CPU utilisation to all nodes.
func (c *Cluster) SetUtil(u float64) {
	for _, n := range c.nodes {
		n.SetUtil(u)
	}
}

// Shutdown checkpoints every running node (the TPM low-SoC emergency path).
func (c *Cluster) Shutdown() {
	for _, n := range c.nodes {
		if n.state == On || n.state == Restoring {
			n.PowerOff()
			c.powerOps++
		}
	}
	c.targetVMs = 0
	for _, n := range c.nodes {
		n.SetActiveVMs(0)
	}
}

// Crash cuts power to every node at once — a bus collapse, not a control
// action. VMs whose state was not yet checkpointed are lost.
func (c *Cluster) Crash() {
	for _, n := range c.nodes {
		n.Crash()
	}
	c.targetVMs = 0
	for _, n := range c.nodes {
		n.SetActiveVMs(0)
	}
}

// VMsSaved sums completed VM checkpoints across nodes.
func (c *Cluster) VMsSaved() int {
	total := 0
	for _, n := range c.nodes {
		total += n.VMsSaved()
	}
	return total
}

// VMsLost sums VMs destroyed by power loss across nodes.
func (c *Cluster) VMsLost() int {
	total := 0
	for _, n := range c.nodes {
		total += n.VMsLost()
	}
	return total
}

// Power is the cluster's present total draw.
func (c *Cluster) Power() units.Watt {
	var p units.Watt
	for _, n := range c.nodes {
		p += n.Power()
	}
	return p
}

// Energy is the cluster's lifetime consumption.
func (c *Cluster) Energy() units.WattHour {
	var e units.WattHour
	for _, n := range c.nodes {
		e += n.Energy()
	}
	return e
}

// OnOffCycles sums power cycles across nodes.
func (c *Cluster) OnOffCycles() int {
	total := 0
	for _, n := range c.nodes {
		total += n.OnOffCycles()
	}
	return total
}

// Step advances all nodes and returns total work done in full-speed
// VM-hours.
func (c *Cluster) Step(dt time.Duration) float64 {
	var work float64
	for _, n := range c.nodes {
		work += n.Step(dt)
	}
	return work
}

// AnyRunning reports whether at least one node is serving.
func (c *Cluster) AnyRunning() bool {
	for _, n := range c.nodes {
		if n.Running() {
			return true
		}
	}
	return false
}

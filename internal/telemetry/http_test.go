package telemetry

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"insure/internal/telemetry/promtest"
)

// TestMetricsEndpoint serves a populated registry over HTTP and runs the
// scrape through the strict format parser — the /metrics acceptance test.
func TestMetricsEndpoint(t *testing.T) {
	r := NewRegistry()
	r.SetClock(12 * time.Hour)
	for i := 0; i < 3; i++ {
		r.Gauge("insure_battery_soc", "Per-unit state of charge.",
			Label{"unit", fmt.Sprint(i)}).Set(0.5 + float64(i)*0.1)
	}
	r.Counter("insure_brownouts_total", "Brownouts.").Inc()
	h := r.Histogram("insure_plc_scan_seconds", "Scan durations.", DefTimeBuckets)
	for i := 0; i < 10; i++ {
		h.Observe(float64(i) * 1e-3)
	}
	addr, stop, err := r.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	samples := promtest.Scrape(t, "http://"+addr.String()+"/metrics")
	found := map[string]float64{}
	for _, s := range samples {
		found[s.Name+promtest.LabelSig(s.Labels)] = s.Value
	}
	if found["insure_sim_clock_seconds"] != (12 * time.Hour).Seconds() {
		t.Errorf("sim clock = %v", found["insure_sim_clock_seconds"])
	}
	if found["insure_battery_soc{unit=2}"] != 0.7 {
		t.Errorf("soc gauge missing or wrong: %v", found)
	}
	if found["insure_brownouts_total"] != 1 {
		t.Errorf("brownout counter = %v", found["insure_brownouts_total"])
	}
	if found["insure_plc_scan_seconds_count"] != 10 {
		t.Errorf("scan histogram count = %v", found["insure_plc_scan_seconds_count"])
	}
}

func TestHealthzEndpoint(t *testing.T) {
	r := NewRegistry()
	degraded := false
	r.AddHealthCheck("faultwatch", func() error {
		if degraded {
			return errors.New("2 units quarantined")
		}
		return nil
	})
	addr, stop, err := r.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	url := "http://" + addr.String() + "/healthz"

	get := func() (int, map[string]any) {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}

	code, body := get()
	if code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthy: code=%d body=%v", code, body)
	}
	degraded = true
	code, body = get()
	if code != http.StatusServiceUnavailable || body["status"] != "degraded" {
		t.Fatalf("degraded: code=%d body=%v", code, body)
	}
	checks := body["checks"].(map[string]any)
	if !strings.Contains(checks["faultwatch"].(string), "quarantined") {
		t.Errorf("checks = %v", checks)
	}
}

// TestHealthzReportsOpMode pins the operating-mode surface: the report
// names the published survivability rung, and a draining mode (Blackout)
// answers 503 even when every individual health check passes — the signal
// a load balancer needs to pull the site before its requests start
// failing.
func TestHealthzReportsOpMode(t *testing.T) {
	r := NewRegistry()
	r.AddHealthCheck("always-ok", func() error { return nil })
	addr, stop, err := r.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	url := "http://" + addr.String() + "/healthz"

	get := func() (int, map[string]any) {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}

	// No published mode: the field is omitted, status untouched.
	code, body := get()
	if code != http.StatusOK {
		t.Fatalf("no mode: code=%d", code)
	}
	if _, present := body["mode"]; present {
		t.Fatalf("mode must be omitted before SetOpMode: %v", body)
	}

	// Degraded-but-serving rungs report their name and stay 200.
	for _, mode := range []string{"normal", "conservative", "survival"} {
		r.SetOpMode(mode, false)
		code, body = get()
		if code != http.StatusOK || body["status"] != "ok" || body["mode"] != mode {
			t.Fatalf("%s: code=%d body=%v, want 200 ok", mode, code, body)
		}
	}

	// Blackout drains: 503 with the rung name, despite the passing check.
	r.SetOpMode("blackout", true)
	code, body = get()
	if code != http.StatusServiceUnavailable || body["status"] != "draining" || body["mode"] != "blackout" {
		t.Fatalf("blackout: code=%d body=%v, want 503 draining", code, body)
	}
	if body["checks"].(map[string]any)["always-ok"] != "ok" {
		t.Fatalf("draining must not rewrite check results: %v", body)
	}

	// Recovery: blackstart then normal serve again.
	r.SetOpMode("blackstart", false)
	if code, body = get(); code != http.StatusOK || body["mode"] != "blackstart" {
		t.Fatalf("blackstart: code=%d body=%v", code, body)
	}
}

// TestHealthzDrainingWinsOverDegraded: a draining plant with failing
// checks reports "draining" (the stronger signal), never "degraded".
func TestHealthzDrainingWinsOverDegraded(t *testing.T) {
	r := NewRegistry()
	r.AddHealthCheck("faultwatch", func() error { return errors.New("1 unit quarantined") })
	r.SetOpMode("blackout", true)
	addr, stop, err := r.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	resp, err := http.Get("http://" + addr.String() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable || body["status"] != "draining" {
		t.Fatalf("code=%d body=%v, want 503 draining", resp.StatusCode, body)
	}
}

func TestDebugMuxServesPprof(t *testing.T) {
	addr, stop, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	resp, err := http.Get("http://" + addr.String() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index: %s", resp.Status)
	}
}

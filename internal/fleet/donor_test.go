package fleet

import (
	"math/rand"
	"testing"
	"time"

	"insure/internal/core"
	"insure/internal/workload"
)

// stubSink is a minimal migratable sink for donor-selection tests.
type stubSink struct {
	pending  float64
	inFlight int
}

func (s *stubSink) Spec() workload.Spec                                  { return workload.Spec{} }
func (s *stubSink) Tick(_, _ time.Duration, _ float64, _ int) float64    { return 0 }
func (s *stubSink) HasWork(time.Duration) bool                           { return false }
func (s *stubSink) ProcessedGB() float64                                 { return 0 }
func (s *stubSink) DelayMinutes() float64                                { return 0 }
func (s *stubSink) PendingGB() float64                                   { return s.pending }
func (s *stubSink) TakeJobs() []*workload.Job                            { return nil }
func (s *stubSink) Schedule(time.Duration, *workload.Job)                {}

// streamStub is a sink that is NOT migratable — the camera-site case.
type streamStub struct{}

func (streamStub) Spec() workload.Spec                               { return workload.Spec{} }
func (streamStub) Tick(_, _ time.Duration, _ float64, _ int) float64 { return 0 }
func (streamStub) HasWork(time.Duration) bool                        { return false }
func (streamStub) ProcessedGB() float64                              { return 0 }
func (streamStub) DelayMinutes() float64                             { return 0 }

// oldDonorScan is the pre-rank linear scan, kept verbatim as the oracle:
// the ranked donor walk must return the identical site for every (from,
// requireIdle) query on every reachable coordinator state.
func (c *Coordinator) oldDonorScan(from int, requireIdle bool) int {
	best, bestSoC := -1, 0.0
	for j := range c.sites {
		st := &c.sites[j]
		if j == from || st.dead || st.deadline || st.needsEvac(c.cfg.DeficitSoC) || st.mode != core.ModeNormal {
			continue
		}
		if _, ok := st.sink.(migratableSink); !ok {
			continue
		}
		if requireIdle {
			if st.pendingGB > 0 {
				continue
			}
			if fs, ok := st.sink.(interface{ InFlight() int }); ok && fs.InFlight() > 0 {
				continue
			}
		}
		if st.soc >= c.cfg.SurplusSoC && st.soc > bestSoC {
			best, bestSoC = j, st.soc
		}
	}
	return best
}

// TestDonorRankMatchesLinearScan cross-checks the ranked donor walk
// against the old O(N) scan over thousands of randomized fleet states,
// deliberately including SoC ties, every filter combination, non-batch
// sinks, and live in-flight counts that change between donor calls within
// one "pass".
func TestDonorRankMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	modes := []core.OpMode{
		core.ModeNormal, core.ModeNormal, core.ModeNormal, // bias toward donors
		core.ModeConservative, core.ModeSurvival, core.ModeBlackout,
	}
	// Coarse SoC grid so exact ties occur often.
	socs := []float64{0.30, 0.45, 0.55, 0.60, 0.60, 0.70, 0.70, 0.90}

	for trial := 0; trial < 2000; trial++ {
		n := 2 + rng.Intn(12)
		c := &Coordinator{
			cfg:   Config{SurplusSoC: 0.55, DeficitSoC: 0.40},
			sites: make([]siteState, n),
		}
		for i := range c.sites {
			st := &c.sites[i]
			if rng.Intn(5) == 0 {
				st.sink = streamStub{}
			} else {
				st.sink = &stubSink{
					pending:  float64(rng.Intn(2)) * rng.Float64() * 10,
					inFlight: rng.Intn(3),
				}
			}
			st.dead = rng.Intn(8) == 0
			st.deadline = rng.Intn(6) == 0
			st.evacuate = rng.Intn(6) == 0
			st.mode = modes[rng.Intn(len(modes))]
			st.soc = socs[rng.Intn(len(socs))]
		}
		c.rebuildDonorRank(0)
		// Several queries against the same rank, as a real pass issues, with
		// in-flight churn between them (the one donor input that mutates
		// mid-pass and therefore must be read live).
		for q := 0; q < 2*n; q++ {
			from := rng.Intn(n)
			requireIdle := rng.Intn(2) == 0
			want := c.oldDonorScan(from, requireIdle)
			got := c.donor(from, requireIdle)
			if got != want {
				t.Fatalf("trial %d query %d: donor(%d, %v) = %d, want %d (sites %+v)",
					trial, q, from, requireIdle, got, want, c.sites)
			}
			if ss, ok := c.sites[rng.Intn(n)].sink.(*stubSink); ok && rng.Intn(3) == 0 {
				ss.inFlight = rng.Intn(3)
			}
		}
	}
}

// TestDonorRankTieBreaksToLowestIndex pins the tie-break rule explicitly:
// equal surplus SoC resolves to the lowest site index, matching the old
// scan's strict-greater comparison.
func TestDonorRankTieBreaksToLowestIndex(t *testing.T) {
	c := &Coordinator{
		cfg: Config{SurplusSoC: 0.55, DeficitSoC: 0.40},
		sites: []siteState{
			{sink: &stubSink{}, mode: core.ModeNormal, soc: 0.70},
			{sink: &stubSink{}, mode: core.ModeNormal, soc: 0.80},
			{sink: &stubSink{}, mode: core.ModeNormal, soc: 0.80},
		},
	}
	c.rebuildDonorRank(0)
	if got := c.donor(0, false); got != 1 {
		t.Fatalf("tie at 0.80 must pick site 1, got %d", got)
	}
	// Excluding the winner falls through to the equal-SoC site, not the
	// lower one.
	if got := c.donor(1, false); got != 2 {
		t.Fatalf("with site 1 excluded, want site 2, got %d", got)
	}
}

// Package workload models the in-situ data processing applications the
// paper evaluates (§2.1, §5, Table 5):
//
//   - seismic data analysis — an intermittent batch job (114 GB arriving
//     twice a day from a 225 km² oil-field survey), run with Madagascar on
//     the prototype;
//   - video surveillance analysis — a continuous data stream (24 cameras,
//     1280×720 @ 5 fps, 0.21 GB/min), run with Hadoop pattern recognition;
//   - six micro benchmarks (x264, vips, sort, graph, dedup, terasort) from
//     PARSEC/HiBench/CloudSuite used for the power-management studies
//     (Figs 17–19).
//
// Each workload is calibrated against the paper's measurements: Table 2
// (seismic VM-scaling), Table 3 (video VM-scaling and delay) and Table 7
// (per-architecture execution profiles).
package workload

import (
	"fmt"
	"math"
	"time"

	"insure/internal/units"
)

// Kind classifies a workload's control policy (§2.3: batch jobs and stream
// jobs need different knobs).
type Kind int

const (
	// Batch jobs are throttled with DVFS duty cycles; changing VM count
	// mid-job is expensive or impossible.
	Batch Kind = iota
	// Stream jobs are throttled by adjusting the VM count between the
	// short time windows of the stream.
	Stream
	// Micro kernels run iteratively for power-management studies.
	Micro
)

func (k Kind) String() string {
	switch k {
	case Batch:
		return "batch"
	case Stream:
		return "stream"
	case Micro:
		return "micro"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Spec is a workload's calibrated power/performance model.
type Spec struct {
	Name string
	Kind Kind
	// Util is the per-VM CPU utilisation the workload drives (sets server
	// power draw via the server package's power envelope).
	Util float64
	// BaseRate is GB processed per full-speed VM-hour by a single VM.
	BaseRate float64
	// Alpha is the parallel-scaling exponent: n VMs deliver
	// BaseRate·n^Alpha GB/h. Alpha < 1 models coordination overhead.
	Alpha float64
}

// Rate is the aggregate processing rate (GB/h) with n VMs at the given
// DVFS duty cycle.
func (s Spec) Rate(nVMs int, duty float64) float64 {
	if nVMs <= 0 {
		return 0
	}
	return s.BaseRate * math.Pow(float64(nVMs), s.Alpha) * units.Clamp(duty, 0, 1)
}

// Efficiency converts raw VM-hours of work into GB, accounting for the
// sublinear scaling at the current VM count.
func (s Spec) Efficiency(nVMs int) float64 {
	if nVMs <= 0 {
		return 0
	}
	return s.BaseRate * math.Pow(float64(nVMs), s.Alpha-1)
}

// Seismic is the oil-exploration batch workload. Calibration (Table 2):
// 4 VMs process 16.5 GB/h; 8 VMs 24.6 GB/h raw (14.0 GB/h at the measured
// 57% availability). Per-node power ≈ 350 W → Util 0.41.
func Seismic() Spec {
	return Spec{Name: "seismic", Kind: Batch, Util: 0.41, BaseRate: 7.43, Alpha: 0.576}
}

// SeismicJobGB is the survey data volume per acquisition (114 GB, twice a
// day).
const SeismicJobGB = 114.0

// Video is the surveillance stream workload. Calibration (Table 3): 8 VMs
// exactly keep up with the 24-camera 0.21 GB/min stream; fewer VMs fall
// behind with the measured delays. Per-node power ≈ 353 W → Util 0.43.
func Video() Spec {
	// 0.21 GB/min at 8 VMs → 12.6 GB/h aggregate; Alpha 0.85 reproduces
	// Table 3's sublinear decline (6 VMs ≈ 78%, 2 VMs ≈ 31% of full rate).
	return Spec{Name: "video", Kind: Stream, Util: 0.43, BaseRate: 12.6 / math.Pow(8, 0.85), Alpha: 0.85}
}

// VideoArrivalGBPerMin is the stream's aggregate arrival rate.
const VideoArrivalGBPerMin = 0.21

// Micro-benchmark kernels (Fig 17–19 set). Rates are relative: they only
// matter through the improvement ratios InSURE-vs-baseline, so they are set
// to plausible per-kernel magnitudes with distinct utilisation levels.
func X264() Spec {
	return Spec{Name: "x264", Kind: Micro, Util: 0.41, BaseRate: 4.4, Alpha: 0.9}
}
func Vips() Spec {
	return Spec{Name: "vips", Kind: Micro, Util: 0.52, BaseRate: 6.0, Alpha: 0.88}
}
func Sort() Spec {
	return Spec{Name: "sort", Kind: Micro, Util: 0.38, BaseRate: 9.5, Alpha: 0.8}
}
func Graph() Spec {
	return Spec{Name: "graph", Kind: Micro, Util: 0.6, BaseRate: 2.2, Alpha: 0.75}
}
func Dedup() Spec {
	return Spec{Name: "dedup", Kind: Micro, Util: 0.47, BaseRate: 27.0, Alpha: 0.85}
}
func Terasort() Spec {
	return Spec{Name: "terasort", Kind: Micro, Util: 0.45, BaseRate: 8.0, Alpha: 0.78}
}

// MicroSuite returns the six kernels of Figs 17–19 in paper order.
func MicroSuite() []Spec {
	return []Spec{X264(), Vips(), Sort(), Graph(), Dedup(), Terasort()}
}

// Job is one batch work item.
type Job struct {
	// ID identifies the job across its whole life, including cross-site
	// migration — the fleet coordinator's exactly-once guarantee
	// deduplicates by it. IDs are assigned by the queue that created the
	// job; give each site's queue a disjoint base (SetIDBase) so IDs stay
	// unique fleet-wide.
	ID        uint64
	Size      float64 // GB
	Remaining float64 // GB
	Arrived   time.Duration
	Done      time.Duration // zero until completion

	// Migrated marks a job shipped in from another plant by the fleet
	// coordinator; Origin is the donor's site index (meaningless when
	// Migrated is false). Work already done before migration travels with
	// the job: Remaining is preserved across the transfer, because the
	// in-progress state rides the shipped VM checkpoint.
	Migrated bool
	Origin   int
}

// BatchQueue feeds intermittent batch jobs (seismic surveys) to the
// cluster one at a time and records completion latency.
type BatchQueue struct {
	Spec Spec

	pending   []*Job
	completed []*Job
	processed float64 // GB

	idBase uint64
	idSeq  uint64
}

// NewBatchQueue returns an empty queue for the given spec.
func NewBatchQueue(s Spec) *BatchQueue { return &BatchQueue{Spec: s} }

// SetIDBase namespaces this queue's job IDs. A federated deployment gives
// every site a disjoint base (the fleet coordinator uses (site+1)<<32) so
// a job keeps a fleet-unique identity wherever it migrates.
func (q *BatchQueue) SetIDBase(base uint64) { q.idBase = base }

// Add enqueues a job of size GB arriving at time now.
func (q *BatchQueue) Add(now time.Duration, sizeGB float64) {
	q.idSeq++
	q.pending = append(q.pending, &Job{ID: q.idBase + q.idSeq, Size: sizeGB, Remaining: sizeGB, Arrived: now})
}

// Tick consumes workVMh VM-hours of cluster work at the given VM count,
// advancing the head-of-line job (batch jobs run one at a time on the
// prototype). It returns GB processed this tick.
func (q *BatchQueue) Tick(now time.Duration, workVMh float64, nVMs int) float64 {
	if len(q.pending) == 0 || workVMh <= 0 {
		return 0
	}
	gb := workVMh * q.Spec.Efficiency(nVMs)
	var used float64
	for gb > 0 && len(q.pending) > 0 {
		job := q.pending[0]
		take := math.Min(gb, job.Remaining)
		job.Remaining -= take
		gb -= take
		used += take
		if job.Remaining <= 1e-9 {
			job.Done = now
			q.completed = append(q.completed, job)
			q.pending = q.pending[1:]
		}
	}
	q.processed += used
	return used
}

// TakePending removes and returns every queued job — including a
// partially-processed head job, whose in-flight state is assumed to travel
// as a shipped VM checkpoint — leaving the queue empty. The fleet
// coordinator uses it to evacuate a darkened site's deferred work.
func (q *BatchQueue) TakePending() []*Job {
	out := q.pending
	q.pending = nil
	return out
}

// Inject enqueues an already-built job (a migrated arrival from another
// site). The job keeps its Remaining so work done before the transfer is
// not repeated.
func (q *BatchQueue) Inject(j *Job) {
	q.pending = append(q.pending, j)
}

// MigratedCompletedGB is the total size of completed jobs that arrived via
// migration — the "deferred work finished at a surplus site" metric of the
// fleet campaign.
func (q *BatchQueue) MigratedCompletedGB() float64 {
	var gb float64
	for _, j := range q.completed {
		if j.Migrated {
			gb += j.Size
		}
	}
	return gb
}

// PendingGB is the unprocessed backlog.
func (q *BatchQueue) PendingGB() float64 {
	var gb float64
	for _, j := range q.pending {
		gb += j.Remaining
	}
	return gb
}

// HasWork reports whether any job is waiting.
func (q *BatchQueue) HasWork() bool { return len(q.pending) > 0 }

// ProcessedGB is the cumulative data processed.
func (q *BatchQueue) ProcessedGB() float64 { return q.processed }

// Completed returns finished jobs.
func (q *BatchQueue) Completed() []*Job { return q.completed }

// Pending returns jobs still waiting or in progress.
func (q *BatchQueue) Pending() []*Job { return q.pending }

// MeanLatency is the average arrival-to-completion latency of finished
// jobs.
func (q *BatchQueue) MeanLatency() time.Duration {
	if len(q.completed) == 0 {
		return 0
	}
	var total time.Duration
	for _, j := range q.completed {
		total += j.Done - j.Arrived
	}
	return total / time.Duration(len(q.completed))
}

// StreamQueue models the continuous video stream: data arrives at a fixed
// rate and is processed as cluster capacity allows; the backlog divided by
// the arrival rate is the service delay the paper reports in Table 3.
type StreamQueue struct {
	Spec Spec
	// ArrivalGBPerMin is the aggregate camera data rate.
	ArrivalGBPerMin float64

	backlog   float64 // GB waiting
	arrived   float64
	processed float64
	dropped   float64
	// MaxBacklogGB bounds on-site buffering; beyond it data is dropped
	// (lost frames), which the paper's availability metric penalises.
	MaxBacklogGB float64

	delaySum     float64 // GB-weighted delay integral (gb·minutes)
	maxDelayMin  float64
	delaySamples int
	delayTotal   float64
}

// NewStreamQueue returns a stream fed at the paper's 24-camera rate.
func NewStreamQueue(s Spec) *StreamQueue {
	return &StreamQueue{Spec: s, ArrivalGBPerMin: VideoArrivalGBPerMin, MaxBacklogGB: 500}
}

// Tick advances the stream by dt with workVMh of cluster work at nVMs.
// It returns GB processed.
func (s *StreamQueue) Tick(dt time.Duration, workVMh float64, nVMs int) float64 {
	in := s.ArrivalGBPerMin * dt.Minutes()
	s.arrived += in
	s.backlog += in
	gb := workVMh * s.Spec.Efficiency(nVMs)
	if gb > s.backlog {
		gb = s.backlog
	}
	s.backlog -= gb
	s.processed += gb
	if s.backlog > s.MaxBacklogGB {
		s.dropped += s.backlog - s.MaxBacklogGB
		s.backlog = s.MaxBacklogGB
	}

	// Current delay estimate: how long a newly-arrived GB waits.
	delayMin := 0.0
	if s.ArrivalGBPerMin > 0 {
		delayMin = s.backlog / s.ArrivalGBPerMin
	}
	if delayMin > s.maxDelayMin {
		s.maxDelayMin = delayMin
	}
	s.delayTotal += delayMin
	s.delaySamples++
	return gb
}

// Backlog is the waiting data in GB.
func (s *StreamQueue) Backlog() float64 { return s.backlog }

// ProcessedGB is the cumulative data analysed.
func (s *StreamQueue) ProcessedGB() float64 { return s.processed }

// ArrivedGB is the cumulative data produced by the cameras.
func (s *StreamQueue) ArrivedGB() float64 { return s.arrived }

// DroppedGB is data lost to buffer overflow.
func (s *StreamQueue) DroppedGB() float64 { return s.dropped }

// MeanDelayMinutes is the time-averaged service delay.
func (s *StreamQueue) MeanDelayMinutes() float64 {
	if s.delaySamples == 0 {
		return 0
	}
	return s.delayTotal / float64(s.delaySamples)
}

// MaxDelayMinutes is the worst observed service delay.
func (s *StreamQueue) MaxDelayMinutes() float64 { return s.maxDelayMin }

// IterativeSource is an endless supply of micro-benchmark iterations: the
// evaluation (§5) runs each kernel iteratively, so there is always work.
type IterativeSource struct {
	Spec      Spec
	processed float64
}

// NewIterativeSource wraps a micro kernel.
func NewIterativeSource(s Spec) *IterativeSource { return &IterativeSource{Spec: s} }

// Tick converts cluster work into processed GB.
func (it *IterativeSource) Tick(workVMh float64, nVMs int) float64 {
	gb := workVMh * it.Spec.Efficiency(nVMs)
	it.processed += gb
	return gb
}

// ProcessedGB is the cumulative data processed.
func (it *IterativeSource) ProcessedGB() float64 { return it.processed }

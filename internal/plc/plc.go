// Package plc models the programmable logic controller at the heart of the
// InSURE battery control plane (§4): a Siemens S7-200 CPU224 with analog
// input extension modules.
//
// The PLC exposes the standard fieldbus data model — coils, discrete
// inputs, holding registers, and input registers — and runs a scan cycle:
// sample inputs, execute the control program, drive outputs. The energy
// manager talks to this register file (locally or over Modbus TCP, see
// insure/internal/modbus) exactly as the prototype's coordination node does.
package plc

import (
	"errors"
	"sync"
	"time"
)

// Register-map layout for the InSURE battery controller. All addresses are
// zero-based.
const (
	// Coils: two per battery unit (charge relay, discharge relay), then the
	// topology switches.
	CoilChargeBase    = 0  // coil 2i   = unit i charge relay
	CoilDischargeBase = 1  // coil 2i+1 = unit i discharge relay
	CoilP1            = 96 // topology: parallel high side
	CoilP2            = 97 // topology: series link
	CoilP3            = 98 // topology: parallel low side

	// Input registers: two per unit (voltage code, current code), then
	// system-level readings.
	InputVoltBase    = 0 // reg 2i   = unit i voltage ADC code
	InputCurrentBase = 1 // reg 2i+1 = unit i current ADC code
	InputSolarPower  = 96
	InputLoadPower   = 97

	// Holding registers: controller setpoints written by the coordinator.
	HoldDischargeCapA10 = 0 // discharge current cap, tenths of an amp
	HoldTargetSoCPct    = 1 // charge-to SoC target, percent
	HoldControlPeriodS  = 2 // control period, seconds
)

// CoilCharge returns the coil address of unit i's charge relay.
func CoilCharge(i int) uint16 { return uint16(2*i + CoilChargeBase) }

// CoilDischarge returns the coil address of unit i's discharge relay.
func CoilDischarge(i int) uint16 { return uint16(2*i + CoilDischargeBase) }

// InputVolt returns the input-register address of unit i's voltage code.
func InputVolt(i int) uint16 { return uint16(2*i + InputVoltBase) }

// InputCurrent returns the input-register address of unit i's current code.
func InputCurrent(i int) uint16 { return uint16(2*i + InputCurrentBase) }

// ErrAddress is returned for out-of-range register accesses, matching the
// Modbus "illegal data address" exception semantics.
var ErrAddress = errors.New("plc: illegal data address")

// RegisterFile is the PLC's process image: the four standard register
// banks. It is safe for concurrent access — the scan cycle and the fieldbus
// server touch it from different goroutines.
type RegisterFile struct {
	mu       sync.RWMutex
	coils    []bool
	discrete []bool
	holding  []uint16
	input    []uint16
}

// NewRegisterFile allocates banks of the given sizes.
func NewRegisterFile(coils, discrete, holding, input int) *RegisterFile {
	return &RegisterFile{
		coils:    make([]bool, coils),
		discrete: make([]bool, discrete),
		holding:  make([]uint16, holding),
		input:    make([]uint16, input),
	}
}

// Coil returns a single coil state without allocating. The scan cycle's
// actuation pass uses it so a steady-state scan stays allocation-free.
func (r *RegisterFile) Coil(addr uint16) (bool, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if int(addr) >= len(r.coils) {
		return false, ErrAddress
	}
	return r.coils[addr], nil
}

// ReadCoils returns count coil states starting at addr.
func (r *RegisterFile) ReadCoils(addr, count uint16) ([]bool, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if int(addr)+int(count) > len(r.coils) {
		return nil, ErrAddress
	}
	out := make([]bool, count)
	copy(out, r.coils[addr:int(addr)+int(count)])
	return out, nil
}

// WriteCoil sets a single coil.
func (r *RegisterFile) WriteCoil(addr uint16, v bool) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if int(addr) >= len(r.coils) {
		return ErrAddress
	}
	r.coils[addr] = v
	return nil
}

// ReadDiscrete returns count discrete-input states starting at addr.
func (r *RegisterFile) ReadDiscrete(addr, count uint16) ([]bool, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if int(addr)+int(count) > len(r.discrete) {
		return nil, ErrAddress
	}
	out := make([]bool, count)
	copy(out, r.discrete[addr:int(addr)+int(count)])
	return out, nil
}

// SetDiscrete sets a discrete input (driven by the scan cycle, not clients).
func (r *RegisterFile) SetDiscrete(addr uint16, v bool) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if int(addr) >= len(r.discrete) {
		return ErrAddress
	}
	r.discrete[addr] = v
	return nil
}

// ReadHolding returns count holding registers starting at addr.
func (r *RegisterFile) ReadHolding(addr, count uint16) ([]uint16, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if int(addr)+int(count) > len(r.holding) {
		return nil, ErrAddress
	}
	out := make([]uint16, count)
	copy(out, r.holding[addr:int(addr)+int(count)])
	return out, nil
}

// WriteHolding sets count holding registers starting at addr.
func (r *RegisterFile) WriteHolding(addr uint16, vals []uint16) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if int(addr)+len(vals) > len(r.holding) {
		return ErrAddress
	}
	copy(r.holding[addr:], vals)
	return nil
}

// ReadInput returns count input registers starting at addr.
func (r *RegisterFile) ReadInput(addr, count uint16) ([]uint16, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if int(addr)+int(count) > len(r.input) {
		return nil, ErrAddress
	}
	out := make([]uint16, count)
	copy(out, r.input[addr:int(addr)+int(count)])
	return out, nil
}

// SetInput stores an input-register code (driven by the analog modules).
func (r *RegisterFile) SetInput(addr uint16, v uint16) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if int(addr) >= len(r.input) {
		return ErrAddress
	}
	r.input[addr] = v
	return nil
}

// PLC is the controller: a register file plus the I/O bindings executed on
// each scan. Sample reads the plant into input registers; Actuate pushes
// coil states out to the relay fabric.
type PLC struct {
	Regs *RegisterFile

	// ScanInterval is the controller's cycle time. The S7-200 scans in
	// single-digit milliseconds; we default to 10 ms.
	ScanInterval time.Duration

	// Sample reads plant sensors into the register file.
	Sample func(*RegisterFile)
	// Actuate drives plant actuators from the register file.
	Actuate func(*RegisterFile)

	// OnScan, when set, is called after every completed scan cycle with the
	// wall-clock duration the cycle took. The duration is only measured when
	// the hook is installed, so an uninstrumented controller pays nothing.
	OnScan func(elapsed time.Duration)

	scans    int64
	lastScan time.Duration
	accum    time.Duration
}

// New builds a PLC sized for n battery units.
func New(n int) *PLC {
	return &PLC{
		Regs:         NewRegisterFile(2*n+8+96, 2*n, 16, 2*n+8+96),
		ScanInterval: 10 * time.Millisecond,
	}
}

// Scans returns the number of completed scan cycles.
func (p *PLC) Scans() int64 { return p.scans }

// Tick advances simulated time and runs as many scan cycles as fit.
// Simulation ticks (1 s) are much longer than scan cycles (10 ms); running
// one sample/actuate pass per elapsed interval keeps the register file as
// fresh as the real controller would.
func (p *PLC) Tick(dt time.Duration) {
	p.accum += dt
	for p.accum >= p.ScanInterval {
		p.accum -= p.ScanInterval
		p.scan()
		// One full refresh per simulation tick is enough fidelity; real
		// intra-tick rescans would observe an unchanged plant.
		if p.accum < p.ScanInterval {
			break
		}
		p.accum = p.accum % p.ScanInterval
	}
}

// ScanNow forces an immediate scan cycle regardless of elapsed time.
func (p *PLC) ScanNow() { p.scan() }

func (p *PLC) scan() {
	var start time.Time
	if p.OnScan != nil {
		start = time.Now()
	}
	if p.Sample != nil {
		p.Sample(p.Regs)
	}
	if p.Actuate != nil {
		p.Actuate(p.Regs)
	}
	p.scans++
	if p.OnScan != nil {
		p.OnScan(time.Since(start))
	}
}

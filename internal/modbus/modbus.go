// Package modbus implements the subset of Modbus TCP used by the InSURE
// control plane (§4): the prototype's coordination node talks to the
// battery-array control panel over Modbus TCP, "a widely used communication
// protocol for industrial electronic devices due to robustness and
// simplicity".
//
// The implementation is written from scratch on the standard library's net
// package: MBAP framing, the five function codes the controller needs, and
// standard exception responses.
package modbus

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Function codes.
const (
	FuncReadCoils                  = 0x01
	FuncReadDiscrete               = 0x02
	FuncReadHolding                = 0x03
	FuncReadInput                  = 0x04
	FuncWriteSingleCoil            = 0x05
	FuncWriteSingleReg             = 0x06
	FuncWriteMultipleCoils         = 0x0F
	FuncWriteMultipleRegs          = 0x10
	FuncReadWriteMultipleRegs      = 0x17
	exceptionFlag             byte = 0x80
)

// Exception codes.
const (
	ExIllegalFunction = 0x01
	ExIllegalAddress  = 0x02
	ExIllegalValue    = 0x03
	ExServerFailure   = 0x04
)

// Protocol limits from the Modbus specification.
const (
	MaxCoilsPerRead  = 2000
	MaxCoilsPerWrite = 1968
	MaxRegsPerRead   = 125
	MaxRegsPerWrite  = 123
	maxPDU           = 253
)

// Exception is a Modbus exception response.
type Exception byte

func (e Exception) Error() string {
	switch byte(e) {
	case ExIllegalFunction:
		return "modbus: illegal function"
	case ExIllegalAddress:
		return "modbus: illegal data address"
	case ExIllegalValue:
		return "modbus: illegal data value"
	case ExServerFailure:
		return "modbus: server device failure"
	default:
		return fmt.Sprintf("modbus: exception 0x%02x", byte(e))
	}
}

// ADU is a Modbus TCP application data unit: MBAP header plus PDU.
type ADU struct {
	Transaction uint16
	UnitID      byte
	PDU         []byte // function code followed by data
}

var errShortFrame = errors.New("modbus: short frame")

// WriteADU encodes and writes one ADU to w.
func WriteADU(w io.Writer, a ADU) error {
	if len(a.PDU) == 0 || len(a.PDU) > maxPDU {
		return fmt.Errorf("modbus: pdu length %d out of range", len(a.PDU))
	}
	buf := make([]byte, 7+len(a.PDU))
	binary.BigEndian.PutUint16(buf[0:], a.Transaction)
	binary.BigEndian.PutUint16(buf[2:], 0) // protocol id
	binary.BigEndian.PutUint16(buf[4:], uint16(1+len(a.PDU)))
	buf[6] = a.UnitID
	copy(buf[7:], a.PDU)
	_, err := w.Write(buf)
	return err
}

// ReadADU reads one ADU from r.
func ReadADU(r io.Reader) (ADU, error) {
	var hdr [7]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return ADU{}, err
	}
	if proto := binary.BigEndian.Uint16(hdr[2:]); proto != 0 {
		return ADU{}, fmt.Errorf("modbus: unexpected protocol id %d", proto)
	}
	length := binary.BigEndian.Uint16(hdr[4:])
	if length < 2 || length > maxPDU+1 {
		return ADU{}, fmt.Errorf("modbus: bad frame length %d", length)
	}
	pdu := make([]byte, length-1)
	if _, err := io.ReadFull(r, pdu); err != nil {
		return ADU{}, err
	}
	return ADU{
		Transaction: binary.BigEndian.Uint16(hdr[0:]),
		UnitID:      hdr[6],
		PDU:         pdu,
	}, nil
}

// packBits packs bools little-endian-within-byte per the specification.
func packBits(bits []bool) []byte {
	out := make([]byte, (len(bits)+7)/8)
	for i, b := range bits {
		if b {
			out[i/8] |= 1 << uint(i%8)
		}
	}
	return out
}

// unpackBits expands packed coil bytes into count bools.
func unpackBits(data []byte, count int) ([]bool, error) {
	if len(data)*8 < count {
		return nil, errShortFrame
	}
	out := make([]bool, count)
	for i := range out {
		out[i] = data[i/8]&(1<<uint(i%8)) != 0
	}
	return out, nil
}

// packRegs encodes registers big-endian.
func packRegs(regs []uint16) []byte {
	out := make([]byte, 2*len(regs))
	for i, v := range regs {
		binary.BigEndian.PutUint16(out[2*i:], v)
	}
	return out
}

// unpackRegs decodes big-endian registers.
func unpackRegs(data []byte) ([]uint16, error) {
	if len(data)%2 != 0 {
		return nil, errShortFrame
	}
	out := make([]uint16, len(data)/2)
	for i := range out {
		out[i] = binary.BigEndian.Uint16(data[2*i:])
	}
	return out, nil
}

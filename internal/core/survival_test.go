package core

import (
	"testing"
	"time"

	"insure/internal/sim"
	"insure/internal/telemetry"
	"insure/internal/trace"
)

func TestLadderAdjacency(t *testing.T) {
	allowed := [][2]OpMode{
		{ModeNormal, ModeConservative},
		{ModeConservative, ModeNormal},
		{ModeConservative, ModeSurvival},
		{ModeSurvival, ModeConservative},
		{ModeSurvival, ModeBlackout},
		{ModeBlackout, ModeBlackstart},
		{ModeBlackstart, ModeNormal},
		{ModeBlackstart, ModeBlackout}, // storm-returns abort edge
	}
	for _, e := range allowed {
		if !LadderAdjacent(e[0], e[1]) {
			t.Errorf("LadderAdjacent(%s, %s) = false, want true", e[0], e[1])
		}
	}
	forbidden := [][2]OpMode{
		{ModeNormal, ModeSurvival},   // no rung skipping down
		{ModeNormal, ModeBlackout},   // no crash-to-dark
		{ModeBlackout, ModeNormal},   // recovery goes through blackstart
		{ModeSurvival, ModeNormal},   // upgrades also move one rung
		{ModeBlackout, ModeSurvival}, // the ladder is a cycle, not elastic
		{ModeNormal, ModeNormal},
	}
	for _, e := range forbidden {
		if LadderAdjacent(e[0], e[1]) {
			t.Errorf("LadderAdjacent(%s, %s) = true, want false", e[0], e[1])
		}
	}
}

func TestSurvivalConfigNormalized(t *testing.T) {
	got := SurvivalConfig{Enabled: true}.normalized()
	want := DefaultSurvivalConfig()
	if got != want {
		t.Errorf("normalized zero config = %+v, want defaults %+v", got, want)
	}
	// Explicit values survive normalization.
	c := SurvivalConfig{Enabled: true, SurvivalSoC: 0.5, Horizon: time.Hour}
	n := c.normalized()
	if n.SurvivalSoC != 0.5 || n.Horizon != time.Hour {
		t.Errorf("normalized clobbered explicit fields: %+v", n)
	}
	if n.ConservativeSoC != want.ConservativeSoC {
		t.Errorf("normalized left zero ConservativeSoC: %+v", n)
	}
}

func survivalManagerConfig() Config {
	cfg := DefaultConfig()
	cfg.Survival = DefaultSurvivalConfig()
	return cfg
}

// TestSurvivalStormDayOrderlyDegradation drives the paper's 427 W overcast
// day with the survivability ladder attached and checks the core safety
// properties on the single-day scale (the chaos storm campaign extends
// them to multi-day storms): no VM is ever lost uncheckpointed, the plant
// never crash-brownouts, and every ladder move is between adjacent rungs.
func TestSurvivalStormDayOrderlyDegradation(t *testing.T) {
	cfg := sim.DefaultConfig(trace.LowGeneration())
	cfg.RecordEvery = time.Minute
	// Drained mid-drought posture: with a half-charged bank the ladder now
	// plans its way through this day without ever leaving Normal, so the
	// engagement assertions below need the buffer starting at its floor.
	cfg.InitialSoC = 0.30
	sys, err := sim.New(cfg, sim.NewVideoSink())
	if err != nil {
		t.Fatal(err)
	}
	m := New(survivalManagerConfig(), cfg.BatteryCount)
	reg := telemetry.NewRegistry()
	m.AttachTelemetry(reg)

	prev := m.Mode()
	start, end := sys.Span()
	for tod := start; tod < end; tod += time.Second {
		sys.Tick(tod, m)
		if cur := m.Mode(); cur != prev {
			if !LadderAdjacent(prev, cur) {
				t.Fatalf("illegal ladder move %s -> %s at %v", prev, cur, tod)
			}
			prev = cur
		}
	}
	res := sys.Finish(m)

	if res.Brownouts != 0 {
		t.Errorf("survival-managed day crash-browned out %d times", res.Brownouts)
	}
	if res.VMsLost != 0 {
		t.Errorf("lost %d uncheckpointed VMs under survival management", res.VMsLost)
	}
	if res.UptimeFrac <= 0 {
		t.Error("plant never served at all")
	}
	// The overcast day is lean enough that the ladder must have left Normal
	// at least once (and telemetry must agree with the manager).
	if m.ModeTransitions() == 0 {
		t.Error("427 W day produced zero ladder transitions")
	}
	snap := reg.Snapshot()
	if got := snap.Counters["insure_survival_transitions_total"]; got != int64(m.ModeTransitions()) {
		t.Errorf("telemetry transitions = %d, manager says %d", got, m.ModeTransitions())
	}
	if got := snap.Gauges["insure_survival_mode"]; got != float64(m.Mode()) {
		t.Errorf("telemetry mode = %v, manager says %v", got, m.Mode())
	}
}

// TestSurvivalStateRoundTripContinuation extends the crash-recovery
// property test to the v2 state: with the mode machine and its forecast
// estimator attached, State→Restore→State is byte-identical and a restored
// clone tracks the original bit-for-bit through the rest of the day.
func TestSurvivalStateRoundTripContinuation(t *testing.T) {
	mk := func() (*sim.System, *Manager) {
		cfg := sim.DefaultConfig(trace.LowGeneration())
		cfg.RecordEvery = time.Minute
		sys, err := sim.New(cfg, sim.NewVideoSink())
		if err != nil {
			t.Fatal(err)
		}
		return sys, New(survivalManagerConfig(), cfg.BatteryCount)
	}
	sysA, mA := mk()
	sysB, mB := mk()
	start, _ := sysA.Span()
	step := time.Second
	mid := start + 5*time.Hour // deep enough that the ladder has moved

	tickRange(sysA, mA, start, mid, step)
	tickRange(sysB, mB, start, mid, step)

	mC := New(survivalManagerConfig(), 6)
	if err := mC.Restore(mA.State()); err != nil {
		t.Fatal(err)
	}
	if string(mC.State()) != string(mA.State()) {
		t.Fatal("State→Restore→State not byte-identical with survival state")
	}
	if mC.Mode() != mA.Mode() {
		t.Fatalf("restored mode %s, original %s", mC.Mode(), mA.Mode())
	}

	for h := 0; h < 4; h++ {
		from := mid + time.Duration(h)*time.Hour
		to := from + time.Hour
		tickRange(sysA, mA, from, to, step)
		tickRange(sysB, mC, from, to, step)
		if string(mA.State()) != string(mC.State()) {
			t.Fatalf("restored survival manager diverged %v into the continuation", to-mid)
		}
	}
	if sysA.Brownouts() != sysB.Brownouts() {
		t.Errorf("brownouts diverged: %d vs %d", sysA.Brownouts(), sysB.Brownouts())
	}
	if mA.Mode() != mC.Mode() {
		t.Errorf("end-of-day modes diverged: %s vs %s", mA.Mode(), mC.Mode())
	}
}

// TestSurvivalRestoreIntoDisabledManagerDrops: the v2 payload of a
// survival-enabled manager restores cleanly into a manager configured
// without the layer — the fields are consumed and discarded, because a
// config change must never be resurrected from disk.
func TestSurvivalRestoreIntoDisabledManagerDrops(t *testing.T) {
	withSv := New(survivalManagerConfig(), 6)
	withSv.sv.mode = ModeSurvival
	withSv.sv.transitions = 3

	plain := New(DefaultConfig(), 6)
	if err := plain.Restore(withSv.State()); err != nil {
		t.Fatalf("v2 payload with survival state failed to restore into disabled manager: %v", err)
	}
	if plain.SurvivalEnabled() {
		t.Error("restore resurrected a disabled survival layer")
	}
	if plain.Mode() != ModeNormal {
		t.Errorf("disabled manager reports mode %s", plain.Mode())
	}
}

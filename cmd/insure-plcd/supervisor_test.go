package main

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"insure/internal/journal"
	"insure/internal/plc"
	"insure/internal/relay"
)

func testPanel(t *testing.T, n int) *panel {
	t.Helper()
	p, err := newPanel(n, 0.5, 400, 300)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestPanelStateRoundTrip proves the daemon's full state image — clock,
// batteries, fabric, command registers — restores byte-identically into a
// freshly-wired panel.
func TestPanelStateRoundTrip(t *testing.T) {
	p := testPanel(t, 4)
	if err := p.controller.Regs.WriteCoil(plc.CoilCharge(1), true); err != nil {
		t.Fatal(err)
	}
	if err := p.controller.Regs.WriteCoil(plc.CoilDischarge(2), true); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		p.tick(time.Second, time.Duration(i+1)*time.Second)
	}

	var e journal.Encoder
	p.appendState(&e, 30*time.Second)

	q := testPanel(t, 4)
	elapsed, err := q.restoreState(e.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if elapsed != 30*time.Second {
		t.Fatalf("elapsed = %v, want 30s", elapsed)
	}
	var e2 journal.Encoder
	q.appendState(&e2, elapsed)
	if string(e.Bytes()) != string(e2.Bytes()) {
		t.Fatal("restored panel state is not byte-identical")
	}
	if q.fabric.Pair(1).Mode() != relay.Charging || q.fabric.Pair(2).Mode() != relay.Discharging {
		t.Fatalf("fabric modes lost: %v %v", q.fabric.Pair(1).Mode(), q.fabric.Pair(2).Mode())
	}
	// And the restored panel keeps ticking in lockstep with the original.
	p.tick(time.Second, 31*time.Second)
	q.tick(time.Second, 31*time.Second)
	e.Reset()
	e2.Reset()
	p.appendState(&e, 31*time.Second)
	q.appendState(&e2, 31*time.Second)
	if string(e.Bytes()) != string(e2.Bytes()) {
		t.Fatal("restored panel diverged on the next tick")
	}
}

// TestSupervisorRecoversFromPanic: a hook that panics kills the loop
// incarnation; the watchdog must start a fresh one that keeps ticking.
func TestSupervisorRecoversFromPanic(t *testing.T) {
	p := testPanel(t, 2)
	ps, err := openPanelStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()

	sup := newSupervisor(p, ps)
	sup.Interval = time.Millisecond
	sup.Patience = 200 * time.Millisecond
	var fired atomic.Bool
	sup.onTick = func(elapsed time.Duration) {
		if elapsed >= 5*time.Millisecond && fired.CompareAndSwap(false, true) {
			panic("injected control-loop fault")
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go sup.Run(ctx)

	waitFor(t, 5*time.Second, func() bool { return sup.Restarts() >= 1 })
	after := sup.Elapsed()
	waitFor(t, 5*time.Second, func() bool { return sup.Elapsed() > after+10*time.Millisecond })
	if err := ps.Err(); err != nil {
		t.Fatalf("journal degraded across panic recovery: %v", err)
	}
}

// TestSupervisorRecoversWedgedLoop: a hook that never returns starves the
// heartbeat; the watchdog must abandon the incarnation and start another.
// The wedged goroutine is released at cleanup and must exit through the
// generation fence without touching the plant.
func TestSupervisorRecoversWedgedLoop(t *testing.T) {
	p := testPanel(t, 2)
	ps, err := openPanelStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()

	sup := newSupervisor(p, ps)
	sup.Interval = time.Millisecond
	sup.Patience = 50 * time.Millisecond
	release := make(chan struct{})
	defer close(release)
	var wedged atomic.Bool
	sup.onTick = func(elapsed time.Duration) {
		if elapsed >= 5*time.Millisecond && wedged.CompareAndSwap(false, true) {
			<-release // simulate a hook stuck on dead I/O
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go sup.Run(ctx)

	waitFor(t, 5*time.Second, func() bool { return sup.Restarts() >= 1 })
	after := sup.Elapsed()
	waitFor(t, 5*time.Second, func() bool { return sup.Elapsed() > after+10*time.Millisecond })
}

// TestSupervisorResyncReappliesRelays: if a dying incarnation left the
// fabric disagreeing with the journaled coil intent, resync re-drives it
// and counts the repair.
func TestSupervisorResyncReappliesRelays(t *testing.T) {
	p := testPanel(t, 3)
	ps, err := openPanelStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()

	// The crash scenario: the coordination node wrote the charge coil over
	// Modbus, but the loop died before the PLC scan actuated it — the
	// committed image holds the intent (coil set) with the fabric still
	// open. Restore alone cannot fix that; the post-restore scan must.
	if err := p.controller.Regs.WriteCoil(plc.CoilCharge(0), true); err != nil {
		t.Fatal(err)
	}
	ps.commit(p, 10*time.Second)

	sup := newSupervisor(p, ps)
	fixed := sup.resync()
	if fixed != 1 {
		t.Fatalf("resync re-drove %d pairs, want 1", fixed)
	}
	if sup.Reapplied() != 1 {
		t.Fatalf("Reapplied = %d, want 1", sup.Reapplied())
	}
	if p.fabric.Pair(0).Mode() != relay.Charging {
		t.Fatalf("fabric mode after resync = %v, want charging", p.fabric.Pair(0).Mode())
	}
}

// waitFor polls cond until it holds or the deadline expires.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

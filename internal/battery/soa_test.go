package battery

import (
	"testing"
	"time"

	"insure/internal/units"
)

// These tests pin the structure-of-arrays contract: a bank stepped through
// the batch kernels, or a bank living inside a shared fleet store, must be
// BIT-identical — not merely close — to independent per-unit banks stepped
// in the same order. The campaign determinism oracle rests on this.

// churn drives a bank through a deterministic mixed workload: staggered
// discharges, charges, and rests with per-unit current variation.
func churn(b *Bank, steps int) {
	for s := 0; s < steps; s++ {
		for i := 0; i < b.Size(); i++ {
			u := b.Unit(i)
			switch (s + i) % 4 {
			case 0:
				u.Discharge(units.Amp(2+float64(i)*0.75), 30*time.Second)
			case 1:
				u.Charge(units.Amp(4+float64(s%3)), 30*time.Second)
			case 2:
				u.Rest(30 * time.Second)
			case 3:
				u.Discharge(units.Amp(6), 15*time.Second)
				u.Rest(15 * time.Second)
			}
		}
	}
}

func statesEqual(t *testing.T, got, want []UnitState, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d unit states, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: unit %d state diverged:\n got  %+v\n want %+v", label, i, got[i], want[i])
		}
	}
}

func TestBankRestAllBatchMatchesPerUnit(t *testing.T) {
	p := DefaultParams()
	batch := MustNewBank(p, 5, 0.8)
	loop := MustNewBank(p, 5, 0.8)

	// Put both banks in an identical non-equilibrium state so Rest has
	// real inter-well diffusion to integrate.
	churn(batch, 7)
	churn(loop, 7)

	for s := 0; s < 200; s++ {
		batch.RestAll(time.Second) // whole-store batch kernel
		for i := 0; i < loop.Size(); i++ {
			loop.Unit(i).Rest(time.Second) // per-unit path
		}
	}
	statesEqual(t, batch.State(), loop.State(), "RestAll batch vs per-unit")
}

func TestBankFleetMatchesIndependentBanks(t *testing.T) {
	const plants, unitsPer = 3, 4
	p := DefaultParams()

	fleet, soa, err := NewBankFleet(p, plants, unitsPer, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if soa.Len() != plants*unitsPer {
		t.Fatalf("fleet store has %d slots, want %d", soa.Len(), plants*unitsPer)
	}
	solo := make([]*Bank, plants)
	for i := range solo {
		solo[i] = MustNewBank(p, unitsPer, 0.9)
	}

	// Interleave plant stepping (plant-by-plant within each step), with a
	// different workload phase per plant, exactly as a fleet tick would.
	for s := 0; s < 50; s++ {
		for pl := 0; pl < plants; pl++ {
			churnStep(fleet[pl], s+pl)
			churnStep(solo[pl], s+pl)
		}
	}
	for pl := 0; pl < plants; pl++ {
		statesEqual(t, fleet[pl].State(), solo[pl].State(), "fleet plant vs solo bank")
	}
}

// churnStep is one step of churn's schedule, so fleet and solo banks can be
// advanced in lockstep.
func churnStep(b *Bank, s int) {
	for i := 0; i < b.Size(); i++ {
		u := b.Unit(i)
		switch (s + i) % 4 {
		case 0:
			u.Discharge(units.Amp(2+float64(i)*0.75), 30*time.Second)
		case 1:
			u.Charge(units.Amp(4+float64(s%3)), 30*time.Second)
		case 2:
			u.Rest(30 * time.Second)
		case 3:
			u.Discharge(units.Amp(6), 15*time.Second)
			u.Rest(15 * time.Second)
		}
	}
}

func TestFleetBankRestAllUsesOwnSpanOnly(t *testing.T) {
	p := DefaultParams()
	fleet, _, err := NewBankFleet(p, 2, 3, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	churn(fleet[0], 5)
	churn(fleet[1], 5)
	before := fleet[1].State()
	fleet[0].RestAll(time.Minute)
	statesEqual(t, fleet[1].State(), before, "neighbour plant untouched by RestAll")
}

func TestSoARestAllAllocFree(t *testing.T) {
	b := MustNewBank(DefaultParams(), 8, 0.7)
	churn(b, 3)
	if n := testing.AllocsPerRun(1000, func() {
		b.RestAll(time.Second)
	}); n != 0 {
		t.Fatalf("Bank.RestAll allocates %.1f times per call, want 0", n)
	}
}

package wan

import (
	"testing"
	"time"
)

func TestChunkFateIsPureAndSeeded(t *testing.T) {
	n, err := New(Config{Seed: 42, Sites: 3, DropRate: 0.3, CorruptRate: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	// Purity: the same coordinates always give the same fate, in any
	// query order — this is what kill/resume leans on.
	var first []Fate
	for chunk := 0; chunk < 64; chunk++ {
		first = append(first, n.ChunkFate(0, 1, 7, chunk, 0))
	}
	for chunk := 63; chunk >= 0; chunk-- {
		if got := n.ChunkFate(0, 1, 7, chunk, 0); got != first[chunk] {
			t.Fatalf("chunk %d fate changed on re-query: %v then %v", chunk, first[chunk], got)
		}
	}
	// A different seed decorrelates the fate sequence.
	n2, err := New(Config{Seed: 43, Sites: 3, DropRate: 0.3, CorruptRate: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for chunk := 0; chunk < 64; chunk++ {
		if n2.ChunkFate(0, 1, 7, chunk, 0) == first[chunk] {
			same++
		}
	}
	if same == 64 {
		t.Fatal("seed change did not move any chunk fate")
	}
}

func TestChunkFateRatesConverge(t *testing.T) {
	n, err := New(Config{Seed: 1, Sites: 2, DropRate: 0.30, CorruptRate: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	const trials = 20000
	var dropped, corrupted int
	for i := 0; i < trials; i++ {
		switch n.ChunkFate(0, 1, uint64(i), i%17, i%3) {
		case Dropped:
			dropped++
		case Corrupted:
			corrupted++
		}
	}
	dropFrac := float64(dropped) / trials
	corruptFrac := float64(corrupted) / trials
	if dropFrac < 0.27 || dropFrac > 0.33 {
		t.Fatalf("drop rate %v far from configured 0.30", dropFrac)
	}
	if corruptFrac < 0.035 || corruptFrac > 0.065 {
		t.Fatalf("corrupt rate %v far from configured 0.05", corruptFrac)
	}
}

func TestPartitionWindows(t *testing.T) {
	n, err := New(Config{
		Seed: 1, Sites: 3, Mbps: 100,
		Outages:   []Outage{{Site: 1, Day: 0, From: 6 * time.Hour, To: 12 * time.Hour}},
		Collapses: []Outage{{Site: 2, Day: 1, From: 2 * time.Hour, To: 4 * time.Hour}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if n.Partitioned(1, 0, 5*time.Hour) {
		t.Fatal("partitioned before window opens")
	}
	if !n.Partitioned(1, 0, 6*time.Hour) {
		t.Fatal("not partitioned at window start")
	}
	if n.Partitioned(1, 0, 12*time.Hour) {
		t.Fatal("still partitioned at half-open window end")
	}
	if n.Partitioned(1, 1, 8*time.Hour) {
		t.Fatal("window leaked into the next day")
	}
	// Reachability needs both endpoints up; bandwidth is zero across a
	// partition and collapsed inside a collapse window.
	if n.Reachable(0, 1, 0, 8*time.Hour) || n.Reachable(1, 2, 0, 8*time.Hour) {
		t.Fatal("partitioned site reachable")
	}
	if !n.Reachable(0, 2, 0, 8*time.Hour) {
		t.Fatal("two healthy sites unreachable")
	}
	if got := n.EffectiveMbps(0, 1, 0, 8*time.Hour); got != 0 {
		t.Fatalf("bandwidth across partition = %v, want 0", got)
	}
	if got := n.EffectiveMbps(0, 2, 1, 3*time.Hour); got != 10 {
		t.Fatalf("collapsed bandwidth = %v, want 10 (0.1 of nominal)", got)
	}
	if got := n.EffectiveMbps(0, 1, 1, 3*time.Hour); got != 100 {
		t.Fatalf("healthy bandwidth = %v, want nominal 100", got)
	}
}

func TestPlanOutagesDeterministicAndBounded(t *testing.T) {
	const seed = 99
	a := PlanOutages(seed, 3, 4, 2, 1*time.Hour, 23*time.Hour, 30*time.Minute, 6*time.Hour)
	b := PlanOutages(seed, 3, 4, 2, 1*time.Hour, 23*time.Hour, 30*time.Minute, 6*time.Hour)
	if len(a) != len(b) {
		t.Fatalf("same seed gave %d vs %d windows", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("window %d differs across identical plans: %v vs %v", i, a[i], b[i])
		}
	}
	if len(a) != 6 {
		t.Fatalf("planned %d windows, want 3 days x 2", len(a))
	}
	for _, o := range a {
		if o.Site < 0 || o.Site >= 4 {
			t.Fatalf("window %v outside fleet", o)
		}
		if o.From < 1*time.Hour || o.To > 23*time.Hour || o.To <= o.From {
			t.Fatalf("window %v outside bounds", o)
		}
		if o.To-o.From > 6*time.Hour {
			t.Fatalf("window %v longer than max", o)
		}
	}
	if c := PlanOutages(seed+1, 3, 4, 2, 1*time.Hour, 23*time.Hour, 30*time.Minute, 6*time.Hour); len(c) == len(a) {
		varies := false
		for i := range c {
			if c[i] != a[i] {
				varies = true
				break
			}
		}
		if !varies {
			t.Fatal("seed change did not move the plan")
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Sites: 0}); err == nil {
		t.Fatal("accepted zero sites")
	}
	if _, err := New(Config{Sites: 2, DropRate: 1.0}); err == nil {
		t.Fatal("accepted drop rate 1.0")
	}
	if _, err := New(Config{Sites: 2, DropRate: 0.6, CorruptRate: 0.5}); err == nil {
		t.Fatal("accepted drop+corrupt >= 1")
	}
	if _, err := New(Config{Sites: 2, Outages: []Outage{{Site: 5, Day: 0, From: 0, To: time.Hour}}}); err == nil {
		t.Fatal("accepted outage for out-of-range site")
	}
	if _, err := New(Config{Sites: 2, Outages: []Outage{{Site: 0, Day: 0, From: time.Hour, To: time.Hour}}}); err == nil {
		t.Fatal("accepted empty window")
	}
}

package sensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTransducerRoundTrip(t *testing.T) {
	vt := VoltageTransducer("v")
	for _, in := range []float64{0, 12.8, 25.6, 50} {
		out := vt.Physical(vt.Analog(in))
		if math.Abs(out-in) > 1e-9 {
			t.Errorf("round trip %v -> %v", in, out)
		}
	}
}

func TestTransducerSaturation(t *testing.T) {
	vt := VoltageTransducer("v")
	if got := vt.Physical(vt.Analog(80)); got != 50 {
		t.Errorf("over-range reading %v, want saturated 50", got)
	}
	ct := CurrentTransducer("i")
	if got := ct.Physical(ct.Analog(-25)); got != -10 {
		t.Errorf("under-range current %v, want -10", got)
	}
}

func TestCurrentTransducerBipolar(t *testing.T) {
	ct := CurrentTransducer("i")
	if got := ct.Analog(0); math.Abs(got) > 1e-9 {
		t.Errorf("zero current analog = %v, want 0", got)
	}
	if ct.Analog(10) != 4 || ct.Analog(-10) != -4 {
		t.Error("full-scale analog outputs wrong")
	}
}

func TestADCQuantisation(t *testing.T) {
	a := NewADC(-5, 5)
	if a.Levels() != 4096 {
		t.Fatalf("levels = %d, want 4096 (12-bit)", a.Levels())
	}
	if a.Convert(-5) != 0 {
		t.Error("low rail should map to code 0")
	}
	if int(a.Convert(5)) != a.Levels()-1 {
		t.Error("high rail should map to max code")
	}
	// Quantisation error bounded by half an LSB across the range.
	lsb := 10.0 / 4095
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		v := math.Mod(math.Abs(x), 10) - 5
		back := a.Voltage(a.Convert(v))
		return math.Abs(back-v) <= lsb/2+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChannelEndToEnd(t *testing.T) {
	c := NewVoltageChannel("bat0-V")
	c.Sample(12.85)
	got := c.Value()
	if math.Abs(got-12.85) > 0.02 {
		t.Errorf("channel read %v, want ~12.85 within quantisation", got)
	}
}

func TestChannelSetRaw(t *testing.T) {
	tx := NewVoltageChannel("a")
	tx.Sample(13.5)
	rx := NewVoltageChannel("b")
	rx.SetRaw(tx.Raw())
	if rx.Value() != tx.Value() {
		t.Error("register transfer changed the reading")
	}
}

func TestBatteryProbe(t *testing.T) {
	p := NewBatteryProbe(2)
	p.Sample(12.6, -7.5) // charging at 7.5 A
	v, i := p.Readings()
	if math.Abs(float64(v)-12.6) > 0.02 {
		t.Errorf("voltage reading %v", v)
	}
	if math.Abs(float64(i)+7.5) > 0.01 {
		t.Errorf("current reading %v, want ~-7.5", i)
	}
}

func TestChannelStickFreezesReading(t *testing.T) {
	c := NewCurrentChannel("bat0-I")
	c.Sample(4.0)
	frozen := c.Raw()
	c.InjectStick()
	if !c.Faulted() {
		t.Fatal("stuck channel reports healthy")
	}
	c.Sample(8.0)
	c.Sample(-2.0)
	if c.Raw() != frozen {
		t.Errorf("stuck channel moved: code %d -> %d", frozen, c.Raw())
	}
	c.ClearFaults()
	c.Sample(8.0)
	if c.Raw() == frozen {
		t.Error("repaired channel still frozen")
	}
}

func TestChannelDriftOffsetsReading(t *testing.T) {
	c := NewVoltageChannel("bat0-V")
	c.Sample(12.8)
	clean := c.Value()
	c.InjectDrift(0.5) // +0.5 V on the ±5 V signal = +2.5 V on the 0–50 V input
	c.Sample(12.8)
	if got := c.Value() - clean; math.Abs(got-2.5) > 0.05 {
		t.Errorf("0.5 V analog drift shifted reading by %.2f V, want ~2.5", got)
	}
	c.InjectDrift(0.5) // drift accumulates
	c.Sample(12.8)
	if got := c.Value() - clean; math.Abs(got-5) > 0.05 {
		t.Errorf("accumulated drift shifted reading by %.2f V, want ~5", got)
	}
	c.ClearFaults()
	c.Sample(12.8)
	if c.Value() != clean {
		t.Error("ClearFaults did not restore calibration")
	}
}

func TestProbeCurrentSaturates(t *testing.T) {
	p := NewBatteryProbe(0)
	p.Sample(12.0, 35) // far above the ±10 A transducer range
	_, i := p.Readings()
	if float64(i) > 10.001 {
		t.Errorf("current reading %v should saturate at 10 A", i)
	}
}

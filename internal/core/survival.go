package core

import (
	"fmt"
	"math"
	"time"

	"insure/internal/logbook"
	"insure/internal/sim"
	"insure/internal/units"
	"insure/internal/workload"
)

// This file is the energy-emergency survivability layer: a hysteresis-
// guarded operating-mode ladder the manager walks as the energy outlook
// degrades, so the plant sheds load, checkpoints, and goes dark *on its own
// terms* instead of crashing when the bus collapses (§2.3's disruption).
//
//	Normal → Conservative → Survival → Blackout → Blackstart → Normal
//
// Each downgrade sheds load through the knobs the paper already uses —
// VM-count reduction for stream jobs, DVFS duty cuts for batch — and the
// Survival→Blackout edge is the orderly pre-brownout shutdown: it fires
// while the buffer still holds enough energy for every node's checkpoint to
// complete before the projected power-loss instant. When shedding cannot
// bridge the forecast gap, the secondary generator (Fig 6/7 "S") is
// dispatched as a last resort, start-delay-aware. After total depletion the
// Blackout→Blackstart edge waits for the batteries to recover to a restart
// SoC and then cold-boots the cluster in stages sized to the instantaneous
// budget, restoring the checkpointed VMs.

// OpMode is a rung on the survivability ladder.
type OpMode int

const (
	// ModeNormal is unconstrained operation under the ordinary SPM/TPM
	// policy.
	ModeNormal OpMode = iota
	// ModeConservative sheds marginal load early: stream VM counts are
	// capped below full and batch duty is capped, trading throughput for
	// buffer endurance.
	ModeConservative
	// ModeSurvival keeps only minimal service (one node) alive and arms the
	// orderly-shutdown trigger.
	ModeSurvival
	// ModeBlackout is the dark plant: every VM checkpointed, every node
	// off, waiting for the buffer to recover.
	ModeBlackout
	// ModeBlackstart is the staged cold boot back from a blackout.
	ModeBlackstart
)

func (o OpMode) String() string {
	switch o {
	case ModeNormal:
		return "normal"
	case ModeConservative:
		return "conservative"
	case ModeSurvival:
		return "survival"
	case ModeBlackout:
		return "blackout"
	case ModeBlackstart:
		return "blackstart"
	default:
		return fmt.Sprintf("OpMode(%d)", int(o))
	}
}

// LadderAdjacent reports whether a→b is a legal single step along the mode
// ladder. Upgrades and downgrades both move one rung; the only extra edge
// is Blackstart→Blackout, the abort path when a storm returns mid-boot.
// The chaos storm campaign asserts every observed transition against this.
func LadderAdjacent(a, b OpMode) bool {
	switch a {
	case ModeNormal:
		return b == ModeConservative
	case ModeConservative:
		return b == ModeNormal || b == ModeSurvival
	case ModeSurvival:
		return b == ModeConservative || b == ModeBlackout
	case ModeBlackout:
		return b == ModeBlackstart
	case ModeBlackstart:
		return b == ModeNormal || b == ModeBlackout
	}
	return false
}

// SurvivalConfig tunes the survivability ladder.
type SurvivalConfig struct {
	// Enabled switches the whole layer on; zero-valued thresholds below are
	// replaced by the defaults.
	Enabled bool

	// ConservativeSoC and SurvivalSoC are the downgrade thresholds on the
	// bank's mean usable SoC; Hysteresis is added on top for the matching
	// upgrade, so the ladder never flaps on sensor noise.
	ConservativeSoC float64
	SurvivalSoC     float64
	Hysteresis      float64

	// RestartSoC gates Blackout→Blackstart: the batteries must recover this
	// far before the cluster cold-boots, so the boot itself (restore power
	// with no revenue work) cannot re-deplete the bank.
	RestartSoC float64

	// Horizon is the forecast window the ladder plans against.
	Horizon time.Duration
	// MinHold is the dwell before any upgrade; downgrades act immediately
	// (safety never waits out a timer).
	MinHold time.Duration

	// ConservativeVMFrac caps stream VM counts and ConservativeDutyCap caps
	// batch duty while in Conservative.
	ConservativeVMFrac  float64
	ConservativeDutyCap float64

	// ShutdownSafety scales the checkpoint window: the orderly shutdown
	// fires when the projected time-to-depletion falls below
	// ShutdownSafety × CheckpointFor(full occupancy).
	ShutdownSafety float64

	// GensetLead is margin added to the generator's StartDelay when
	// deciding how late a dispatch may wait and still arrive in time.
	GensetLead time.Duration
}

// DefaultSurvivalConfig returns the tuning the storm campaign validates.
func DefaultSurvivalConfig() SurvivalConfig {
	return SurvivalConfig{
		Enabled:             true,
		ConservativeSoC:     0.45,
		SurvivalSoC:         0.32,
		Hysteresis:          0.08,
		RestartSoC:          0.40,
		Horizon:             2 * time.Hour,
		MinHold:             10 * time.Minute,
		ConservativeVMFrac:  0.75,
		ConservativeDutyCap: 0.8,
		ShutdownSafety:      1.5,
		GensetLead:          2 * time.Minute,
	}
}

// normalized fills zero fields with the defaults so a caller can set just
// Enabled and get sane behaviour.
func (c SurvivalConfig) normalized() SurvivalConfig {
	d := DefaultSurvivalConfig()
	if c.ConservativeSoC <= 0 {
		c.ConservativeSoC = d.ConservativeSoC
	}
	if c.SurvivalSoC <= 0 {
		c.SurvivalSoC = d.SurvivalSoC
	}
	if c.Hysteresis <= 0 {
		c.Hysteresis = d.Hysteresis
	}
	if c.RestartSoC <= 0 {
		c.RestartSoC = d.RestartSoC
	}
	if c.Horizon <= 0 {
		c.Horizon = d.Horizon
	}
	if c.MinHold <= 0 {
		c.MinHold = d.MinHold
	}
	if c.ConservativeVMFrac <= 0 {
		c.ConservativeVMFrac = d.ConservativeVMFrac
	}
	if c.ConservativeDutyCap <= 0 {
		c.ConservativeDutyCap = d.ConservativeDutyCap
	}
	if c.ShutdownSafety <= 0 {
		c.ShutdownSafety = d.ShutdownSafety
	}
	if c.GensetLead <= 0 {
		c.GensetLead = d.GensetLead
	}
	return c
}

// survival is the mode machine's mutable state (journaled; see state.go).
type survival struct {
	cfg SurvivalConfig

	mode        OpMode
	modeSince   time.Duration
	transitions int

	// shedWatts is the load the current posture withholds versus what the
	// raw power budget would support (telemetry).
	shedWatts float64

	// bsTarget is the blackstart sequencer's current staged VM target.
	bsTarget int
}

// Mode returns the survivability rung the manager currently operates in
// (ModeNormal when the layer is disabled).
func (m *Manager) Mode() OpMode {
	if m.sv == nil {
		return ModeNormal
	}
	return m.sv.mode
}

// ModeTransitions counts ladder transitions over the manager's life.
func (m *Manager) ModeTransitions() int {
	if m.sv == nil {
		return 0
	}
	return m.sv.transitions
}

// SurvivalEnabled reports whether the survivability layer is active.
func (m *Manager) SurvivalEnabled() bool { return m.sv != nil }

// SetModeHook registers fn to run after every ladder transition with the
// transition time and the rungs moved between. The fleet coordinator uses
// it as the migrate-before-shed trigger: a downgrade means this plant is
// about to shed work that could instead move to a site with surplus.
// Passing nil removes the hook. The hook is an observer only — it runs
// inside the control pass and must not mutate the manager or the plant.
func (m *Manager) SetModeHook(fn func(now time.Duration, from, to OpMode)) {
	m.modeHook = fn
}

// setMode performs one ladder transition, with telemetry and a logbook
// entry. Transitions are always adjacent (LadderAdjacent); callers only
// ever move one rung per control pass.
func (m *Manager) setMode(sys *sim.System, now time.Duration, to OpMode, why string) {
	sv := m.sv
	if to == sv.mode {
		return
	}
	from := sv.mode
	sv.mode = to
	sv.modeSince = now
	sv.transitions++
	if m.tel != nil {
		m.tel.mode.Set(float64(to))
		m.tel.modeTransitions.Inc()
		// Blackout is the one rung where the right load-balancer answer is
		// "stop sending anything": /healthz flips to 503/draining there.
		m.tel.reg.SetOpMode(to.String(), to == ModeBlackout)
	}
	class := logbook.Power
	if to == ModeSurvival || to == ModeBlackout {
		class = logbook.Emergency
	}
	sys.Log.Addf(now, class, "survival", "mode %s -> %s: %s", from, to, why)
	if m.modeHook != nil {
		m.modeHook(now, from, to)
	}
}

// checkpointWindow is the worst-case orderly-shutdown duration: every node
// checkpoints in parallel, so the window is one fully-occupied node's save.
func checkpointWindow(sys *sim.System) time.Duration {
	prof := sys.Config().ServerProfile
	return prof.CheckpointFor(prof.VMSlots)
}

// forecastWh integrates the conservative supply forecast over the horizon.
func (m *Manager) forecastWh(sys *sim.System, now time.Duration, horizon time.Duration) float64 {
	const step = 5 * time.Minute
	var total float64
	if m.fc != nil {
		for t := now; t < now+horizon; t += step {
			total += float64(m.fc.ConservativePredict(t, 1)) * step.Hours()
		}
		return total
	}
	// No estimator: flat-line the dimmed present supply.
	return 0.75 * float64(sys.SolarNow()) * horizon.Hours()
}

// projectDepletion estimates how long the usable buffer lasts while holding
// demandW against the forecast supply. Recharge surpluses are not credited
// (conservative), and anything beyond the horizon reads as the horizon.
func (m *Manager) projectDepletion(sys *sim.System, now time.Duration, demandW, usableWh float64) time.Duration {
	horizon := m.sv.cfg.Horizon
	if demandW <= 0 {
		return horizon
	}
	const step = 5 * time.Minute
	remaining := usableWh
	for t := now; t < now+horizon; t += step {
		var supply float64
		if m.fc != nil {
			supply = float64(m.fc.ConservativePredict(t, 1))
		} else {
			supply = 0.75 * float64(sys.SolarNow())
		}
		if net := demandW - supply; net > 0 {
			remaining -= net * step.Hours()
			if remaining <= 0 {
				return t - now
			}
		}
	}
	return horizon
}

// budgetFitVMs is the VM count the present power budget supports, with the
// same dispatch margins planLoad uses plus blackstart headroom.
func (m *Manager) budgetFitVMs(sys *sim.System) int {
	reserve := m.dischargeablePower(sys)
	if sys.Sink.Spec().Kind != workload.Batch {
		reserve = units.Watt(0.7 * float64(reserve))
	}
	budget := sys.SolarNow() + reserve
	if gen := sys.Secondary; gen != nil && gen.Available() {
		budget += units.Watt(0.9 * float64(gen.Params().Rated))
	}
	budget = units.Watt(0.85 * float64(budget))
	maxVMs := sys.Config().ServerProfile.VMSlots * sys.Config().ServerCount
	for n := maxVMs; n >= 1; n-- {
		if estNodePower(sys, n, m.duty) <= budget {
			return n
		}
	}
	return 0
}

// ckptSupportNodes is how many nodes the plant could checkpoint in
// parallel right now. A checkpointing node draws IdlePower + 30% of the
// span for minutes, so the bound is set by deliverable power, not stored
// energy: dimmed solar, a sustained C/2 draw from every unit still holding
// usable charge (the physical well limit, not the SPM's gentler per-unit
// dispatch cap), and the genset when one is fitted and fueled. The 0.85
// margin keeps an in-flight checkpoint funded when the count ticks down a
// step mid-save (evening solar decay, a unit sagging below the floor).
func (m *Manager) ckptSupportNodes(sys *sim.System, now time.Duration) int {
	prof := sys.Config().ServerProfile
	ckptW := float64(prof.IdlePower) + 0.3*float64(prof.PeakPower-prof.IdlePower)
	if ckptW <= 0 {
		return sys.Config().ServerCount
	}
	p := sys.Config().BatteryParams
	perUnit := 0.5 * float64(p.CapacityAh) * float64(p.NominalVolt)
	supply := float64(m.dimmedSupply(sys, now))
	for i := range m.groups {
		if m.watch.quarantined[i] || m.groups[i] == GroupOffline {
			continue
		}
		if estSoC(sys, i) > m.cfg.MinSoC+0.05 {
			supply += perUnit
		}
	}
	if gen := sys.Secondary; gen != nil && gen.Available() {
		supply += 0.9 * float64(gen.Params().Rated)
	}
	return int(0.85 * supply / ckptW)
}

// vmCap is the survival posture's ceiling on the VM target.
func (sv *survival) vmCap(maxVMs, slots int) int {
	switch sv.mode {
	case ModeConservative:
		c := int(math.Ceil(sv.cfg.ConservativeVMFrac * float64(maxVMs)))
		if c < 1 {
			c = 1
		}
		return c
	case ModeSurvival:
		// Minimal service: one node's worth of VMs.
		return slots
	case ModeBlackout:
		return 0
	case ModeBlackstart:
		return sv.bsTarget
	}
	return maxVMs
}

// dutyCap is the survival posture's ceiling on the batch DVFS duty cycle.
func (sv *survival) dutyCap(minDuty float64) float64 {
	switch sv.mode {
	case ModeConservative:
		return sv.cfg.ConservativeDutyCap
	case ModeSurvival:
		return minDuty
	}
	return 1
}

// blocksService reports whether the posture forbids any cluster service.
func (sv *survival) blocksService() bool { return sv.mode == ModeBlackout }

// surviveEvaluate is the per-period ladder walk: classify the energy
// outlook, move at most one rung, and run the last-resort generator
// dispatch. It runs before planLoad so the posture caps apply to this
// pass's load plan.
func (m *Manager) surviveEvaluate(sys *sim.System, now time.Duration) {
	sv := m.sv
	p := sys.Config().BatteryParams
	unitWh := float64(p.CapacityAh) * float64(p.NominalVolt)

	var socSum, usableWh float64
	n := 0
	for i := range m.groups {
		if m.watch.quarantined[i] {
			continue
		}
		soc := estSoC(sys, i)
		socSum += soc
		if soc > m.cfg.MinSoC {
			usableWh += (soc - m.cfg.MinSoC) * unitWh
		}
		n++
	}
	socMean := 0.0
	if n > 0 {
		socMean = socSum / float64(n)
	}

	demandW := float64(sys.Cluster.Power())
	supplyWh := m.forecastWh(sys, now, sv.cfg.Horizon)
	demandWh := demandW * sv.cfg.Horizon.Hours()
	// gapWh > 0 means the horizon cannot be bridged at the current posture
	// even by draining the whole usable buffer.
	gapWh := demandWh - supplyWh - usableWh
	tdep := m.projectDepletion(sys, now, demandW, usableWh)
	dwell := now - sv.modeSince

	ckptBudget := time.Duration(sv.cfg.ShutdownSafety * float64(checkpointWindow(sys)))

	switch sv.mode {
	case ModeNormal:
		if socMean < sv.cfg.ConservativeSoC || gapWh > 0 {
			m.setMode(sys, now, ModeConservative,
				fmt.Sprintf("SoC %.2f, horizon gap %.0f Wh", socMean, gapWh))
		}

	case ModeConservative:
		switch {
		case socMean < sv.cfg.SurvivalSoC || (gapWh > 0 && tdep < sv.cfg.Horizon/2):
			m.setMode(sys, now, ModeSurvival,
				fmt.Sprintf("SoC %.2f, depletion in %v", socMean, tdep))
		case socMean >= sv.cfg.ConservativeSoC+sv.cfg.Hysteresis && gapWh <= 0 && dwell >= sv.cfg.MinHold:
			m.setMode(sys, now, ModeNormal, fmt.Sprintf("SoC %.2f, outlook clear", socMean))
		}

	case ModeSurvival:
		switch {
		case sys.Cluster.AnyRunning() && (tdep <= ckptBudget || m.ckptSupportNodes(sys, now) == 0):
			// The orderly pre-brownout shutdown: fire while the buffer still
			// covers every node's checkpoint, so no VM state is ever lost to
			// the bus collapsing mid-save. Deliverable-power collapse (a
			// unit dying or quarantining out from under the load) counts as
			// depletion-now even when the energy projection looks survivable.
			sys.Cluster.Shutdown()
			m.targetVM = 0
			m.setMode(sys, now, ModeBlackout,
				fmt.Sprintf("depletion in %v inside the %v checkpoint window", tdep, ckptBudget))
		case !sys.Cluster.AnyRunning() && socMean < m.cfg.EmergencySoC:
			m.setMode(sys, now, ModeBlackout, fmt.Sprintf("buffer depleted at SoC %.2f", socMean))
		case socMean >= math.Max(sv.cfg.SurvivalSoC+sv.cfg.Hysteresis, sv.cfg.ConservativeSoC) &&
			gapWh <= 0 && dwell >= sv.cfg.MinHold:
			// Leaving the emergency rung re-arms battery-funded serving, so
			// the upgrade waits for the Conservative threshold itself — a
			// recovery that only just clears the survival band would be
			// drained straight back down by the load it re-enables.
			m.setMode(sys, now, ModeConservative, fmt.Sprintf("SoC recovered to %.2f", socMean))
		}

	case ModeBlackout:
		if socMean >= sv.cfg.RestartSoC && demandW == 0 && dwell >= sv.cfg.MinHold {
			// Re-commission every unit holding usable charge: blackstart
			// runs on what the plant has, not on the 90% charge target.
			for i := range m.groups {
				if m.watch.quarantined[i] || m.groups[i] == GroupOffline {
					continue
				}
				if estSoC(sys, i) >= m.cfg.MinSoC+0.1 {
					m.commissioned[i] = true
					if m.groups[i] == GroupCharging {
						m.groups[i] = GroupStandby
					}
				}
			}
			sv.bsTarget = 0
			m.setMode(sys, now, ModeBlackstart, fmt.Sprintf("bank recovered to SoC %.2f", socMean))
		}

	case ModeBlackstart:
		switch {
		case socMean < sv.cfg.SurvivalSoC || (sys.Cluster.AnyRunning() && tdep <= ckptBudget):
			// The storm came back mid-boot: abort back into blackout with an
			// orderly checkpoint, never a crash.
			sys.Cluster.Shutdown()
			m.targetVM = 0
			m.setMode(sys, now, ModeBlackout, fmt.Sprintf("blackstart aborted at SoC %.2f", socMean))
		default:
			fit := m.budgetFitVMs(sys)
			slots := sys.Config().ServerProfile.VMSlots
			switch {
			case sv.bsTarget == 0:
				if fit > 0 {
					sv.bsTarget = minInt(fit, slots)
				}
			case sys.Cluster.RunningVMs() >= sv.bsTarget:
				// The stage's VMs restored; grow by one node's worth, or
				// declare the boot complete once the budget is saturated.
				if sv.bsTarget >= fit {
					m.setMode(sys, now, ModeNormal,
						fmt.Sprintf("blackstart complete at %d VMs", sv.bsTarget))
				} else {
					sv.bsTarget = minInt(sv.bsTarget+slots, fit)
				}
			}
		}
	}

	m.surviveGenset(sys, now, demandW, gapWh, tdep)
}

// surviveGenset is the last-resort dispatch of the secondary feed: started
// only when shedding has not closed the forecast gap and depletion is near
// enough that waiting longer would let the start delay overrun it; stopped
// the moment there is nothing left for it to carry.
func (m *Manager) surviveGenset(sys *sim.System, now time.Duration, demandW, gapWh float64, tdep time.Duration) {
	gen := sys.Secondary
	if gen == nil {
		return
	}
	sv := m.sv
	minLoad := gen.Params().MinLoadFrac * float64(gen.Params().Rated)
	lead := gen.Params().StartDelay + sv.cfg.GensetLead

	// The bus is quiet once the cluster draws nothing — checkpoints in
	// flight keep drawing until their images are safe, and the generator
	// must carry them through window close or the Blackout edge rather
	// than abandon them to a collapsed buffer.
	quiet := sys.Cluster.Power() == 0
	// minService is one fully-occupied node: the smallest serving posture
	// worth burning fuel for.
	minService := float64(estNodePower(sys, sys.Config().ServerProfile.VMSlots, 1))

	switch {
	case sv.mode == ModeNormal || ((sv.mode == ModeBlackout || !sys.InWindow(now) || !sys.Sink.HasWork(now)) && quiet):
		// Normal: renewables carry the plant. Blackout/idle: there is no
		// load bus to feed — the generator cannot charge the battery
		// directly.
		if gen.Running() {
			gen.Stop()
			sys.Log.Addf(now, logbook.Power, "genset", "stop: %s", sv.mode)
		}
	case gen.Running() && sv.mode <= ModeConservative && quiet &&
		float64(m.dimmedSupply(sys, now)) >= 1.3*minService:
		// The bridge is no longer needed: the rung recovered and dimmed
		// renewables alone fund minimal service with margin. The 1.3 factor
		// keeps the stop/start pair from chattering on the solar boundary.
		gen.Stop()
		sys.Log.Addf(now, logbook.Power, "genset", "stop: renewables recovered (%s)", sv.mode)
	case !gen.Running():
		// Dispatch window: the gap is real, depletion is close enough that
		// output must start ramping now to arrive in time, and the deficit
		// is worth the min-load floor it will burn.
		critical := tdep <= lead+sv.cfg.Horizon/4
		var nextSupply float64
		if m.fc != nil {
			nextSupply = float64(m.fc.ConservativePredict(now+lead, 1))
		} else {
			nextSupply = 0.75 * float64(sys.SolarNow())
		}
		deficitW := demandW - nextSupply
		// bridge: the Survival rung has gone dark with work still in the
		// window because renewables cannot fund even one node — the
		// last-resort feed carries minimal service (Fig 7 "S") instead of
		// letting the day's work drop.
		bridge := sv.mode == ModeSurvival && sys.InWindow(now) && sys.Sink.HasWork(now) &&
			quiet && nextSupply < minService
		if (gapWh > 0 && critical && deficitW > 0.25*minLoad) || bridge {
			gen.Start()
			sys.Log.Addf(now, logbook.Emergency, "genset",
				"start (%s): depletion in %v, start delay %v, gap %.0f Wh",
				gen.Params().Kind, tdep, gen.Params().StartDelay, gapWh)
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

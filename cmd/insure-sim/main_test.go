package main

import (
	"strings"
	"testing"
)

func setOf(names ...string) map[string]bool {
	m := map[string]bool{}
	for _, n := range names {
		m[n] = true
	}
	return m
}

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name    string
		set     map[string]bool
		wantErr []string // substrings the error must contain; nil = valid
	}{
		// The Makefile and README invocations must stay legal.
		{"plain single day", setOf("weather", "workload", "policy"), nil},
		{"compare run", setOf("weather", "workload", "compare"), nil},
		{"survival single day", setOf("weather", "workload", "survival", "genset"), nil},
		{"journaled kill", setOf("state-dir", "kill-at", "torn-kill"), nil},
		{"storm campaign", setOf("storm-days", "survival", "genset"), nil},
		{"fleet campaign", setOf("fleet", "storm-days", "storm-site", "migrate"), nil},
		{"fleet with log", setOf("fleet", "storm-days", "storm-site", "migrate", "fleet-log"), nil},
		{"shared sizing flags", setOf("fleet", "storm-days", "batteries", "servers", "seed"), nil},

		// -fleet silently ignored these before; now both flags are named.
		{"fleet with kill-at", setOf("fleet", "kill-at"), []string{"-fleet", "-kill-at"}},
		{"fleet with torn-kill", setOf("fleet", "torn-kill"), []string{"-fleet", "-torn-kill"}},
		{"fleet with compare", setOf("fleet", "compare"), []string{"-fleet", "-compare"}},
		{"fleet with weather", setOf("fleet", "weather"), []string{"-fleet", "-weather"}},
		{"fleet with survival", setOf("fleet", "survival"), []string{"-fleet", "-survival"}},
		{"fleet with faults", setOf("fleet", "faults"), []string{"-fleet", "-faults"}},

		// Fleet-only flags without -fleet.
		{"storm-site without fleet", setOf("storm-site"), []string{"-storm-site", "-fleet"}},
		{"migrate without fleet", setOf("migrate"), []string{"-migrate", "-fleet"}},
		{"fleet-log without fleet", setOf("fleet-log"), []string{"-fleet-log", "-fleet"}},

		// The storm campaign honors -survival/-genset but not these.
		{"storm with compare", setOf("storm-days", "compare"), []string{"-storm-days", "-compare"}},
		{"storm with weather", setOf("storm-days", "weather"), []string{"-storm-days", "-weather"}},
		{"storm with state-dir", setOf("storm-days", "state-dir"), []string{"-storm-days", "-state-dir"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateFlags(tc.set)
			if tc.wantErr == nil {
				if err != nil {
					t.Fatalf("want valid, got error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("want error naming %v, got nil", tc.wantErr)
			}
			for _, sub := range tc.wantErr {
				if !strings.Contains(err.Error(), sub) {
					t.Fatalf("error %q must name %q", err, sub)
				}
			}
		})
	}
}

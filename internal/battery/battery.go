// Package battery models the lead-acid energy buffer units used by InSURE.
//
// The paper's power management exploits three electrochemical properties of
// lead-acid batteries (§2.2, Fig 4):
//
//  1. Rate-capacity effect: high discharge current causes a super-fast
//     apparent capacity (and terminal voltage) drop.
//  2. Recovery effect: the apparent capacity lost at high current is largely
//     recovered during periods of low demand.
//  3. Charge acceptance: a near-empty battery accepts charge at a much
//     higher rate than one close to full, and a battery held at charging
//     voltage draws a parasitic gassing current regardless of how much
//     useful charge it absorbs — so concentrating a limited power budget on
//     fewer units charges the fleet faster than batch charging.
//
// Properties 1 and 2 are reproduced with the Kinetic Battery Model (KiBaM,
// Manwell & McGowan): the battery's charge lives in an available well and a
// bound well connected by a diffusion-rate valve. Property 3 is reproduced
// with an SoC-dependent acceptance limit plus a per-connected-unit gassing
// overhead.
//
// Storage layout: unit state lives in a structure-of-arrays BankSoA store —
// parallel slices of wells, currents, and wear counters — and Unit is a
// (store, index) handle into it. A bank's units are therefore contiguous in
// memory and a fleet of banks can share one store (NewBankFleet), which is
// what lets a batch tick over many plants walk flat arrays instead of
// chasing per-unit heap objects. The Unit/Bank API is unchanged; the scalar
// math is expression-for-expression the same as the former per-object
// layout, so stepping through handles is bit-identical to the old path.
package battery

import (
	"errors"
	"fmt"
	"math"
	"time"

	"insure/internal/units"
)

// Params configures a single battery unit. The defaults (see DefaultParams)
// model the UPG UB1280 12 V 35 Ah units of the paper's prototype.
type Params struct {
	// CapacityAh is the nominal capacity at the rated discharge current.
	CapacityAh units.AmpHour
	// NominalVolt is the nameplate voltage (12 V for the prototype units).
	NominalVolt units.Volt

	// CapacityRatio (KiBaM c) is the fraction of capacity in the available
	// well. Smaller values exaggerate the rate-capacity effect.
	CapacityRatio float64
	// RateConst (KiBaM k, 1/s) governs how quickly bound charge diffuses
	// into the available well — i.e. how fast the battery recovers.
	RateConst float64

	// InternalOhm is the series resistance used for the terminal-voltage
	// model (V = OCV − I·R on discharge, OCV + I·R on charge).
	InternalOhm float64
	// OCVEmpty and OCVFull anchor the linear open-circuit-voltage curve.
	OCVEmpty units.Volt
	OCVFull  units.Volt

	// MaxChargeA is the bulk-phase charge acceptance limit (~0.25 C).
	MaxChargeA units.Amp
	// FloatA is the residual acceptance at 100% SoC.
	FloatA units.Amp
	// TaperKnee is the SoC above which acceptance tapers from MaxChargeA
	// toward FloatA.
	TaperKnee float64
	// GassingA is the parasitic current drawn whenever the unit is held at
	// charging voltage, independent of useful charge absorbed. This is the
	// per-unit overhead that makes batch charging slow (Fig 4a).
	GassingA units.Amp
	// CoulombicEff is the fraction of accepted charge actually stored.
	CoulombicEff float64

	// LifetimeAh is the total discharge throughput the unit sustains before
	// end of life (§2.2: aggregated Ah through the buffer is roughly
	// constant over its life).
	LifetimeAh units.AmpHour
	// DeepSoC marks the depth below which discharge wear is accelerated by
	// DeepWearFactor.
	DeepSoC        float64
	DeepWearFactor float64

	// CutoffVolt is the protection threshold: below it the unit must be
	// switched out (the paper's Offline mode trigger).
	CutoffVolt units.Volt

	// FadeAtEOL is the capacity fraction lost when the unit reaches its
	// lifetime throughput (lead-acid end-of-life is conventionally 80% of
	// nameplate, i.e. 0.2). Capacity fades linearly with wear, which is
	// what makes multi-day endurance campaigns age realistically.
	FadeAtEOL float64
}

// DefaultParams returns parameters calibrated to the prototype's UPG UB1280
// 12 V / 35 Ah valve-regulated lead-acid units.
func DefaultParams() Params {
	return Params{
		CapacityAh:     35,
		NominalVolt:    12,
		CapacityRatio:  0.55,
		RateConst:      4.5e-4,
		InternalOhm:    0.04,
		OCVEmpty:       11.6,
		OCVFull:        12.9,
		MaxChargeA:     8.75, // 0.25 C
		FloatA:         0.35,
		TaperKnee:      0.80,
		GassingA:       2.2,
		CoulombicEff:   0.92,
		LifetimeAh:     25000, // ≈715 full-capacity-equivalent cycles (≈4 yr at the prototype's duty)
		DeepSoC:        0.25,
		DeepWearFactor: 2.0,
		CutoffVolt:     11.8,
		FadeAtEOL:      0.2,
	}
}

// Validate reports whether the parameters are physically meaningful.
func (p Params) Validate() error {
	switch {
	case p.CapacityAh <= 0:
		return errors.New("battery: capacity must be positive")
	case p.CapacityRatio <= 0 || p.CapacityRatio >= 1:
		return errors.New("battery: capacity ratio must be in (0,1)")
	case p.RateConst <= 0:
		return errors.New("battery: rate constant must be positive")
	case p.OCVFull <= p.OCVEmpty:
		return errors.New("battery: OCVFull must exceed OCVEmpty")
	case p.MaxChargeA <= p.FloatA:
		return errors.New("battery: MaxChargeA must exceed FloatA")
	case p.TaperKnee <= 0 || p.TaperKnee >= 1:
		return errors.New("battery: taper knee must be in (0,1)")
	case p.CoulombicEff <= 0 || p.CoulombicEff > 1:
		return errors.New("battery: coulombic efficiency must be in (0,1]")
	case p.LifetimeAh <= 0:
		return errors.New("battery: lifetime throughput must be positive")
	}
	return nil
}

// BankSoA is the structure-of-arrays store behind Unit and Bank: one parallel
// slice per state variable, so the units of a bank — or of a whole fleet of
// banks sharing the store — sit contiguously in memory and a batch step walks
// flat arrays. All units in a store share one Params (the prototype's banks
// are homogeneous); per-unit state that faults can skew (capacity loss) stays
// per-index.
type BankSoA struct {
	p Params

	// KiBaM wells, in amp-hours.
	avail []float64 // y1: immediately extractable charge
	bound []float64 // y2: chemically bound charge

	lastI []units.Amp // signed: + discharge, − charge (for terminal voltage)

	throughput []units.AmpHour // lifetime discharge Ah (wear-weighted)
	rawOut     []units.AmpHour // unweighted Ah delivered over life
	rawIn      []units.AmpHour // unweighted Ah absorbed over life
	cycles     []float64       // full-capacity-equivalent cycles

	// faultLoss is the capacity fraction destroyed by an injected hardware
	// fault (shorted cells); zero on a healthy unit.
	faultLoss []float64
}

// NewBankSoA allocates a store of n units at the given initial state of
// charge.
func NewBankSoA(p Params, n int, soc float64) (*BankSoA, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("battery: store size %d must be positive", n)
	}
	if soc < 0 || soc > 1 {
		return nil, fmt.Errorf("battery: initial SoC %v out of [0,1]", soc)
	}
	cap := float64(p.CapacityAh)
	s := &BankSoA{
		p:          p,
		avail:      make([]float64, n),
		bound:      make([]float64, n),
		lastI:      make([]units.Amp, n),
		throughput: make([]units.AmpHour, n),
		rawOut:     make([]units.AmpHour, n),
		rawIn:      make([]units.AmpHour, n),
		cycles:     make([]float64, n),
		faultLoss:  make([]float64, n),
	}
	for i := 0; i < n; i++ {
		s.avail[i] = soc * cap * p.CapacityRatio
		s.bound[i] = soc * cap * (1 - p.CapacityRatio)
	}
	return s, nil
}

// Len returns the number of unit slots in the store.
func (s *BankSoA) Len() int { return len(s.avail) }

// Params returns the store's shared unit configuration.
func (s *BankSoA) Params() Params { return s.p }

// Unit is one battery cabinet: a handle onto one index of a BankSoA store.
// Copies of a Unit alias the same state, so handles can be passed by value
// or pointer interchangeably.
type Unit struct {
	s *BankSoA
	i int
}

// New returns a standalone Unit at the given initial state of charge,
// backed by its own single-slot store.
func New(p Params, soc float64) (*Unit, error) {
	s, err := NewBankSoA(p, 1, soc)
	if err != nil {
		return nil, err
	}
	return &Unit{s: s, i: 0}, nil
}

// MustNew is New for known-good parameters; it panics on error.
func MustNew(p Params, soc float64) *Unit {
	u, err := New(p, soc)
	if err != nil {
		panic(err)
	}
	return u
}

// Params returns the unit's configuration.
func (u *Unit) Params() Params { return u.s.p }

// capAh is the present usable capacity: nameplate reduced by linear aging
// fade as wear accumulates toward the lifetime throughput, and by any
// injected capacity-loss fault.
func (u *Unit) capAh() float64 {
	fade := u.s.p.FadeAtEOL * math.Min(u.WearFraction(), 1.5)
	return float64(u.s.p.CapacityAh) * (1 - fade) * (1 - u.s.faultLoss[u.i])
}

// InjectCapacityLoss destroys frac of the unit's capacity mid-operation —
// the signature of shorted cells in a VRLA block. The stored charge falls
// disproportionately (charge in the shorted cells is gone AND the remaining
// cells see it as a lower state of charge), so the terminal voltage collapses
// observably: the wells scale by (1−frac)², the capacity by (1−frac).
func (u *Unit) InjectCapacityLoss(frac float64) {
	frac = units.Clamp(frac, 0, 0.99)
	if frac == 0 {
		return
	}
	s, i := u.s, u.i
	s.faultLoss[i] = 1 - (1-s.faultLoss[i])*(1-frac)
	keep := (1 - frac) * (1 - frac)
	s.avail[i] *= keep
	s.bound[i] *= keep
}

// Failed reports whether a capacity-loss fault has been injected.
func (u *Unit) Failed() bool { return u.s.faultLoss[u.i] > 0 }

// EffectiveCapacity is the present usable capacity after aging fade.
func (u *Unit) EffectiveCapacity() units.AmpHour { return units.AmpHour(u.capAh()) }

// SoC is the total state of charge in [0,1] counting both wells, against
// the present (faded) capacity.
func (u *Unit) SoC() float64 {
	return units.Clamp((u.s.avail[u.i]+u.s.bound[u.i])/u.capAh(), 0, 1)
}

// AvailableSoC is the normalised level of the available well only. Under
// sustained high current it drops well below SoC — that gap is the
// rate-capacity effect, and its closing at rest is the recovery effect.
func (u *Unit) AvailableSoC() float64 {
	denom := u.capAh() * u.s.p.CapacityRatio
	return units.Clamp(u.s.avail[u.i]/denom, 0, 1)
}

// StoredEnergy approximates the energy content at nominal voltage.
func (u *Unit) StoredEnergy() units.WattHour {
	return units.WattHour((u.s.avail[u.i] + u.s.bound[u.i]) * float64(u.s.p.NominalVolt))
}

// OCV is the rest (open-circuit) voltage implied by the available well.
func (u *Unit) OCV() units.Volt {
	return units.Volt(units.Lerp(float64(u.s.p.OCVEmpty), float64(u.s.p.OCVFull), u.AvailableSoC()))
}

// TerminalVoltage is what a transducer reads: OCV sagged or lifted by the
// most recent current through the internal resistance.
func (u *Unit) TerminalVoltage() units.Volt {
	return units.Volt(float64(u.OCV()) - float64(u.s.lastI[u.i])*u.s.p.InternalOhm)
}

// BelowCutoff reports whether the protection threshold has been crossed.
func (u *Unit) BelowCutoff() bool { return u.TerminalVoltage() < u.s.p.CutoffVolt }

// Empty reports whether the available well is exhausted (the battery cannot
// source current even though bound charge may remain).
func (u *Unit) Empty() bool { return u.s.avail[u.i] <= 1e-9 }

// diffuse moves charge between the wells at index i for dt seconds (KiBaM
// valve). This is the shared kernel of the per-unit and batch paths, so the
// two are bit-identical by construction.
func (s *BankSoA) diffuse(i int, dtSec float64, capAh float64) {
	c := s.p.CapacityRatio
	h1 := s.avail[i] / c
	h2 := s.bound[i] / (1 - c)
	// Closed-form relaxation of the head difference avoids Euler
	// instability at large dt: Δh decays with rate k(1/c + 1/(1−c)).
	kk := s.p.RateConst * (1/c + 1/(1-c))
	delta := (h2 - h1) * (1 - math.Exp(-kk*dtSec))
	// Convert head change back to charge moved (both wells see the same
	// transferred charge q; h1 rises by q/c, h2 falls by q/(1−c)).
	q := delta / (1/c + 1/(1-c))
	s.avail[i] += q
	s.bound[i] -= q
	if s.avail[i] < 0 {
		s.avail[i] = 0
	}
	if s.bound[i] < 0 {
		s.bound[i] = 0
	}
	if s.avail[i] > capAh*c {
		s.avail[i] = capAh * c
	}
	if s.bound[i] > capAh*(1-c) {
		s.bound[i] = capAh * (1 - c)
	}
}

// capAhAt is capAh for slot i (the Unit method with the handle unwrapped).
func (s *BankSoA) capAhAt(i int) float64 {
	fade := s.p.FadeAtEOL * math.Min(float64(s.throughput[i])/float64(s.p.LifetimeAh), 1.5)
	return float64(s.p.CapacityAh) * (1 - fade) * (1 - s.faultLoss[i])
}

// Rest advances the unit with no current flowing; only recovery diffusion
// happens. The relay for this unit is open.
func (u *Unit) Rest(dt time.Duration) {
	u.s.lastI[u.i] = 0
	u.s.diffuse(u.i, dt.Seconds(), u.capAh())
}

// RestAll batch-steps every unit in the store with no current flowing — the
// fleet tick's resting-lane loop. Equivalent (bit-for-bit) to calling Rest
// on each unit in index order.
func (s *BankSoA) RestAll(dt time.Duration) {
	dtSec := dt.Seconds()
	for i := range s.avail {
		s.lastI[i] = 0
		s.diffuse(i, dtSec, s.capAhAt(i))
	}
}

// Discharge draws current i for dt and returns the charge actually
// delivered. Delivery stops early if the available well empties; callers
// observe the shortfall as a voltage collapse.
func (u *Unit) Discharge(i units.Amp, dt time.Duration) units.AmpHour {
	if i < 0 {
		panic("battery: negative discharge current")
	}
	s, k := u.s, u.i
	dtSec := dt.Seconds()
	want := float64(i) * dtSec / 3600 // Ah requested
	got := want
	if got > s.avail[k] {
		got = s.avail[k]
	}
	s.avail[k] -= got
	s.diffuse(k, dtSec, u.capAh())
	s.lastI[k] = i
	if got < want {
		// Partially delivered: the terminal voltage should reflect a
		// collapsed available well under load.
		s.lastI[k] = units.Amp(got * 3600 / math.Max(dtSec, 1e-9))
	}

	wear := got
	if u.SoC() < s.p.DeepSoC {
		wear *= s.p.DeepWearFactor
	}
	s.throughput[k] += units.AmpHour(wear)
	s.rawOut[k] += units.AmpHour(got)
	s.cycles[k] += got / float64(s.p.CapacityAh)
	return units.AmpHour(got)
}

// Acceptance is the maximum useful charging current at state of charge s.
func (p Params) Acceptance(s float64) units.Amp {
	if s <= p.TaperKnee {
		return p.MaxChargeA
	}
	t := (s - p.TaperKnee) / (1 - p.TaperKnee)
	return units.Amp(units.Lerp(float64(p.MaxChargeA), float64(p.FloatA), t))
}

// PeakChargePower is P_PC from the paper's SPM (Fig 10): the charging power
// one unit absorbs at full acceptance, including the gassing overhead. The
// optimal batch size is budget / PeakChargePower.
func (p Params) PeakChargePower() units.Watt {
	v := float64(p.OCVFull) + float64(p.MaxChargeA)*p.InternalOhm
	return units.Watt((float64(p.MaxChargeA) + float64(p.GassingA)) * v)
}

// Charge pushes up to current i into the unit for dt and returns the current
// actually drawn from the supply (useful charge + gassing overhead). The
// stored charge is limited by acceptance and coulombic efficiency.
func (u *Unit) Charge(i units.Amp, dt time.Duration) units.Amp {
	if i < 0 {
		panic("battery: negative charge current")
	}
	s, k := u.s, u.i
	dtSec := dt.Seconds()
	// Gassing overhead is drawn first whenever the unit sits on the charge
	// bus; only the remainder does useful work.
	gas := math.Min(float64(i), float64(s.p.GassingA))
	useful := math.Min(float64(i)-gas, float64(s.p.Acceptance(u.SoC())))
	if useful < 0 {
		useful = 0
	}
	stored := useful * s.p.CoulombicEff * dtSec / 3600 // Ah

	c := s.p.CapacityRatio
	capAh := u.capAh()
	// Charge enters the available well, then diffuses toward the bound well.
	room := capAh*c - s.avail[k]
	if stored > room {
		// Spill directly into the bound well when the available well tops
		// out (absorption phase).
		s.bound[k] += stored - room
		stored = room
	}
	s.avail[k] += stored
	if s.bound[k] > capAh*(1-c) {
		s.bound[k] = capAh * (1 - c)
	}
	s.diffuse(k, dtSec, capAh)

	drawn := units.Amp(gas + useful)
	s.lastI[k] = -drawn
	s.rawIn[k] += units.AmpHour(useful * dtSec / 3600)
	return drawn
}

// ChargeAtPower charges from a power budget at the unit's present charging
// voltage, returning the power actually consumed.
func (u *Unit) ChargeAtPower(p units.Watt, dt time.Duration) units.Watt {
	if p <= 0 {
		u.Rest(dt)
		return 0
	}
	v := u.chargeBusVoltage()
	i := units.Current(p, v)
	drawn := u.Charge(i, dt)
	return units.Power(drawn, v)
}

// chargeBusVoltage approximates the regulated charging voltage for the unit.
func (u *Unit) chargeBusVoltage() units.Volt {
	return units.Volt(float64(u.OCV()) + float64(u.s.p.MaxChargeA)*u.s.p.InternalOhm)
}

// Throughput returns the wear-weighted lifetime discharge throughput (the
// AhT[i] statistic driving the paper's SPM screening, Fig 9).
func (u *Unit) Throughput() units.AmpHour { return u.s.throughput[u.i] }

// RawOut returns total unweighted charge delivered over the unit's life.
func (u *Unit) RawOut() units.AmpHour { return u.s.rawOut[u.i] }

// RawIn returns total unweighted charge absorbed over the unit's life.
func (u *Unit) RawIn() units.AmpHour { return u.s.rawIn[u.i] }

// EquivalentCycles returns full-capacity-equivalent discharge cycles.
func (u *Unit) EquivalentCycles() float64 { return u.s.cycles[u.i] }

// WearFraction is the consumed fraction of the unit's lifetime throughput.
func (u *Unit) WearFraction() float64 {
	return float64(u.s.throughput[u.i]) / float64(u.s.p.LifetimeAh)
}

// RemainingLife estimates remaining service time given an average daily
// discharge throughput.
func (u *Unit) RemainingLife(dailyAh units.AmpHour) time.Duration {
	if dailyAh <= 0 {
		return time.Duration(math.MaxInt64)
	}
	days := (float64(u.s.p.LifetimeAh) - float64(u.s.throughput[u.i])) / float64(dailyAh)
	if days < 0 {
		days = 0
	}
	return time.Duration(days * 24 * float64(time.Hour))
}

// SetSoC forces the state of charge, distributing charge across both wells
// at equilibrium. Intended for test setup and experiment initialisation.
func (u *Unit) SetSoC(soc float64) {
	soc = units.Clamp(soc, 0, 1)
	capAh := u.capAh()
	u.s.avail[u.i] = soc * capAh * u.s.p.CapacityRatio
	u.s.bound[u.i] = soc * capAh * (1 - u.s.p.CapacityRatio)
	u.s.lastI[u.i] = 0
}

// Snapshot is an immutable view of the unit for recorders and sensors.
type Snapshot struct {
	SoC          float64
	AvailableSoC float64
	Terminal     units.Volt
	LastCurrent  units.Amp
	Throughput   units.AmpHour
	StoredEnergy units.WattHour
}

// Snapshot captures the observable state of the unit.
func (u *Unit) Snapshot() Snapshot {
	return Snapshot{
		SoC:          u.SoC(),
		AvailableSoC: u.AvailableSoC(),
		Terminal:     u.TerminalVoltage(),
		LastCurrent:  u.s.lastI[u.i],
		Throughput:   u.s.throughput[u.i],
		StoredEnergy: u.StoredEnergy(),
	}
}

// Off-grid capacity planning: before deploying an in-situ cluster, a team
// needs to know (a) whether local processing beats shipping data out, and
// (b) how the energy buffer should be sized for the site's weather.
//
// Part 1 uses the paper's cost models (Figs 23–25) through the experiment
// runners. Part 2 sweeps buffer sizes on a cloudy site with the simulator.
package main

import (
	"fmt"
	"log"
	"os"

	"insure"
)

func main() {
	fmt.Println("Part 1: does in-situ processing pay off at this site?")
	fmt.Println()
	for _, id := range []string{"fig24", "fig25"} {
		if err := insure.Experiment(id, os.Stdout); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("Part 2: sizing the energy buffer for a cloudy site (video workload)")
	fmt.Println()
	fmt.Printf("%9s %8s %9s %11s %10s\n", "batteries", "uptime", "GB done", "delay (min)", "wear Ah/u")
	for _, n := range []int{2, 4, 6, 8} {
		report, err := insure.Run(insure.Config{
			Day:       insure.Day{Weather: insure.Cloudy},
			Workload:  insure.SurveillanceWorkload(),
			Policy:    insure.PolicyInSURE,
			Batteries: n,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%9d %7.1f%% %9.1f %11.1f %10.2f\n",
			n, report.UptimeFrac*100, report.ProcessedGB, report.DelayMinutes, report.WearAhPerUnit)
	}
	fmt.Println()
	fmt.Println("More units add ride-through capacity and spread wear; past the point where")
	fmt.Println("the buffer covers the site's supply variability, extra units mostly idle.")
}

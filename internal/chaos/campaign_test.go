package chaos

import (
	"testing"
	"time"
)

// TestPlanDeterministicAndSpaced locks the plan generator: same seed, same
// plan; events far enough apart that every recovery commits fresh state
// before the next hit; destructive damage capped.
func TestPlanDeterministicAndSpaced(t *testing.T) {
	cfg := DefaultConfig(7)
	cfg.Events = 120
	cfg.Remote = true
	a, err := Plan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Plan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != cfg.Events || len(b) != cfg.Events {
		t.Fatalf("plan sizes %d/%d, want %d", len(a), len(b), cfg.Events)
	}
	hardware := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs across same-seed plans: %v vs %v", i, a[i], b[i])
		}
		if i > 0 {
			if gap := a[i].At - a[i-1].At; gap < time.Minute {
				t.Fatalf("events %d and %d only %v apart", i-1, i, gap)
			}
		}
		if a[i].Kind == HardwareFault {
			hardware++
		}
	}
	if hardware > maxHardwareFaults {
		t.Fatalf("%d hardware faults, cap is %d", hardware, maxHardwareFaults)
	}

	cfg2 := cfg
	cfg2.Seed = 8
	c, err := Plan(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical plans")
	}

	cfg.Events = 10000
	if _, err := Plan(cfg); err == nil {
		t.Fatal("overdense plan accepted")
	}
}

// TestCampaignSmoke is the quick in-process campaign `make smoke-chaos`
// runs: kills and plant faults (no fieldbus), every invariant checked.
func TestCampaignSmoke(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.Events = 40
	cfg.StateDir = t.TempDir()
	rep, err := Run(cfg)
	if err != nil {
		t.Fatalf("seed %d: %v", cfg.Seed, err)
	}
	t.Log(rep)
	assertClean(t, rep)
}

// TestCampaignFieldbusAndReplay is the full acceptance campaign: 200+
// seeded events over the Modbus control path with partitions through the
// FlakyProxy — and then the entire campaign again from the same seed,
// which must reproduce the chaos trajectory bit-for-bit.
func TestCampaignFieldbusAndReplay(t *testing.T) {
	cfg := DefaultConfig(42)
	cfg.Events = 200
	cfg.Remote = true
	cfg.StateDir = t.TempDir()
	rep, err := Run(cfg)
	if err != nil {
		t.Fatalf("seed %d: %v", cfg.Seed, err)
	}
	t.Log(rep)
	assertClean(t, rep)
	if rep.Partitions == 0 {
		t.Errorf("seed %d: campaign drew no partitions; pick a seed that exercises the fieldbus", cfg.Seed)
	}
	if rep.Events < 200 {
		t.Errorf("seed %d: only %d events", cfg.Seed, rep.Events)
	}

	cfg.StateDir = t.TempDir()
	rep2, err := Run(cfg)
	if err != nil {
		t.Fatalf("seed %d rerun: %v", cfg.Seed, err)
	}
	if rep2.TrajectoryHash != rep.TrajectoryHash {
		t.Errorf("seed %d: rerun diverged: trajectory %x vs %x", cfg.Seed, rep2.TrajectoryHash, rep.TrajectoryHash)
	}
	if rep2.RefTrajectory != rep.RefTrajectory {
		t.Errorf("seed %d: reference rerun diverged: %x vs %x", cfg.Seed, rep2.RefTrajectory, rep.RefTrajectory)
	}
	if rep2.Recoveries != rep.Recoveries || rep2.Reconciliations != rep.Reconciliations {
		t.Errorf("seed %d: rerun recovery path diverged: %d/%d recoveries, %d/%d reconciliations",
			cfg.Seed, rep2.Recoveries, rep.Recoveries, rep2.Reconciliations, rep.Reconciliations)
	}
}

// assertClean checks the campaign outcome against the harness's promises.
func assertClean(t *testing.T, rep *Report) {
	t.Helper()
	if rep.ViolationCount > 0 {
		t.Errorf("%v\nfirst violations: %v", rep, rep.Violations)
	}
	kills := rep.Kills + rep.TornKills
	if rep.Recoveries != kills {
		t.Errorf("seed %d: %d recoveries for %d kills", rep.Seed, rep.Recoveries, kills)
	}
	if rep.TornKills > 0 && rep.Reconciliations == 0 {
		t.Errorf("seed %d: %d torn kills but no reconciliations", rep.Seed, rep.TornKills)
	}
	if !rep.Converged {
		t.Errorf("seed %d: chaos day did not converge: %v", rep.Seed, rep)
	}
}

package server

import (
	"math"
	"testing"
	"time"

	"insure/internal/units"
)

func TestNodeLifecycle(t *testing.T) {
	n := NewNode(Xeon())
	if n.State() != Off || n.Power() != 0 {
		t.Fatal("new node should be off and dark")
	}
	n.PowerOn()
	if n.State() != Restoring {
		t.Fatalf("state after PowerOn = %v", n.State())
	}
	// Restore takes 8 minutes; no progress during it.
	for i := 0; i < 8; i++ {
		if work := n.Step(time.Minute); work != 0 {
			t.Fatal("work done while restoring")
		}
	}
	if n.State() != On {
		t.Fatalf("state after restore = %v", n.State())
	}
	n.PowerOff()
	if n.State() != Checkpointing {
		t.Fatalf("state after PowerOff = %v", n.State())
	}
	for i := 0; i < 7; i++ {
		n.Step(time.Minute)
	}
	if n.State() != Off {
		t.Fatalf("state after checkpoint = %v", n.State())
	}
	if n.OnOffCycles() != 1 {
		t.Errorf("cycles = %d, want 1", n.OnOffCycles())
	}
}

func TestOnOffDisruptionIsAbout15Minutes(t *testing.T) {
	// §2.3: "about 15 minutes for each server On/Off power cycle" — at
	// full occupancy (2 VMs' state to save and restore).
	p := Xeon()
	total := p.CheckpointFor(p.VMSlots) + p.RestoreFor(p.VMSlots)
	if total < 12*time.Minute || total > 18*time.Minute {
		t.Errorf("cycle disruption = %v, want ~15 min", total)
	}
	// A node with less VM state cycles faster.
	if p.CheckpointFor(1) >= p.CheckpointFor(2) {
		t.Error("checkpoint time should scale with VM state")
	}
}

func TestNodePowerEnvelope(t *testing.T) {
	n := NewNode(Xeon())
	n.PowerOn()
	for i := 0; i < 10; i++ {
		n.Step(time.Minute)
	}
	n.SetActiveVMs(2)
	n.SetUtil(1)
	n.SetDuty(1)
	if got := n.Power(); got != 450 {
		t.Errorf("full-tilt power = %v, want 450 W", got)
	}
	n.SetUtil(0)
	if got := n.Power(); got != 280 {
		t.Errorf("idle-util power = %v, want 280 W", got)
	}
}

func TestSeismicPowerCalibration(t *testing.T) {
	// Table 2: the 8-VM seismic configuration averages ~1397 W over four
	// nodes (~350 W/node) and the 4-VM configuration ~696 W over two.
	const seismicUtil = 0.41
	n := NewNode(Xeon())
	n.PowerOn()
	for i := 0; i < 10; i++ {
		n.Step(time.Minute)
	}
	n.SetActiveVMs(2)
	n.SetUtil(seismicUtil)
	got := float64(n.Power())
	if math.Abs(got-349) > 10 {
		t.Errorf("per-node seismic power = %.0f W, want ~349", got)
	}
}

func TestDutyCycleScalesPowerAndWork(t *testing.T) {
	n := NewNode(Xeon())
	n.PowerOn()
	for i := 0; i < 10; i++ {
		n.Step(time.Minute)
	}
	n.SetActiveVMs(2)
	n.SetUtil(0.8)
	n.SetDuty(1)
	pFull, wFull := n.Power(), n.Step(time.Hour)
	n.SetDuty(0.5)
	pHalf, wHalf := n.Power(), n.Step(time.Hour)
	if pHalf >= pFull {
		t.Errorf("half duty power %v not below full %v", pHalf, pFull)
	}
	if math.Abs(wHalf-wFull/2) > 1e-9 {
		t.Errorf("half duty work = %v, want %v", wHalf, wFull/2)
	}
	if pHalf <= n.Profile().IdlePower {
		t.Error("duty scaling must not go below idle power")
	}
}

func TestDutyClamp(t *testing.T) {
	n := NewNode(Xeon())
	n.SetDuty(5)
	if n.Duty() != 1 {
		t.Errorf("duty = %v, want clamp to 1", n.Duty())
	}
	n.SetDuty(0)
	if n.Duty() != 0.1 {
		t.Errorf("duty = %v, want clamp to 0.1", n.Duty())
	}
}

func TestClusterAllocatorPacksNodes(t *testing.T) {
	c := NewCluster(Xeon(), 4)
	c.SetTargetVMs(3)
	// 3 VMs need two nodes (2 slots each): first full, second half.
	if c.Nodes()[0].ActiveVMs() != 2 || c.Nodes()[1].ActiveVMs() != 1 {
		t.Errorf("allocation = %d,%d", c.Nodes()[0].ActiveVMs(), c.Nodes()[1].ActiveVMs())
	}
	if c.Nodes()[2].State() != Off || c.Nodes()[3].State() != Off {
		t.Error("spare nodes should stay off")
	}
	if c.Nodes()[0].State() != Restoring {
		t.Error("allocated node should be powering on")
	}
}

func TestClusterTargetClamp(t *testing.T) {
	c := NewCluster(Xeon(), 2)
	c.SetTargetVMs(99)
	if c.TargetVMs() != 4 {
		t.Errorf("target = %d, want clamp to 4 slots", c.TargetVMs())
	}
	c.SetTargetVMs(-3)
	if c.TargetVMs() != 0 {
		t.Errorf("target = %d, want 0", c.TargetVMs())
	}
}

func TestClusterScaleDownPowersOff(t *testing.T) {
	c := NewCluster(Xeon(), 4)
	c.SetTargetVMs(8)
	settle(c, 10*time.Minute)
	if got := c.RunningVMs(); got != 8 {
		t.Fatalf("running VMs = %d, want 8", got)
	}
	c.SetTargetVMs(4)
	if c.Nodes()[2].State() != Checkpointing || c.Nodes()[3].State() != Checkpointing {
		t.Error("surplus nodes should checkpoint on scale-down")
	}
	settle(c, 10*time.Minute)
	if got := c.OnOffCycles(); got != 2 {
		t.Errorf("on/off cycles = %d, want 2", got)
	}
}

func settle(c *Cluster, d time.Duration) {
	for elapsed := time.Duration(0); elapsed < d; elapsed += time.Minute {
		c.Step(time.Minute)
	}
}

func TestClusterWorkAccounting(t *testing.T) {
	c := NewCluster(Xeon(), 4)
	c.SetUtil(0.5)
	c.SetTargetVMs(8)
	settle(c, 10*time.Minute)
	work := c.Step(time.Hour)
	if math.Abs(work-8) > 1e-9 {
		t.Errorf("work = %v VM-hours, want 8", work)
	}
}

func TestClusterShutdown(t *testing.T) {
	c := NewCluster(Xeon(), 4)
	c.SetTargetVMs(6)
	settle(c, 10*time.Minute)
	c.Shutdown()
	settle(c, 10*time.Minute)
	if c.AnyRunning() {
		t.Error("nodes still running after shutdown")
	}
	if c.RunningVMs() != 0 {
		t.Error("VMs still allocated after shutdown")
	}
}

func TestClusterEnergyAccumulates(t *testing.T) {
	c := NewCluster(Xeon(), 2)
	c.SetTargetVMs(4)
	settle(c, time.Hour)
	e := c.Energy()
	if e <= 0 {
		t.Fatal("no energy consumed")
	}
	// Two nodes for an hour: bounded by 2×450 Wh.
	if e > units.WattHour(2*450) {
		t.Errorf("energy %v exceeds physical bound", e)
	}
}

func TestOpsCounters(t *testing.T) {
	c := NewCluster(Xeon(), 4)
	c.SetTargetVMs(8)
	c.SetTargetVMs(8) // no-op must not count
	c.SetTargetVMs(4)
	if got := c.VMOps(); got != 2 {
		t.Errorf("VM ops = %d, want 2", got)
	}
	if c.PowerOps() == 0 {
		t.Error("power ops not counted")
	}
}

func TestCoreI7EfficiencyAdvantage(t *testing.T) {
	// Table 7: the low-power node processes far more data per kWh.
	xeon, i7 := NewNode(Xeon()), NewNode(CoreI7())
	for _, n := range []*Node{xeon, i7} {
		n.PowerOn()
		for i := 0; i < 10; i++ {
			n.Step(time.Minute)
		}
		n.SetActiveVMs(2)
		n.SetUtil(0.8)
	}
	xw, iw := 0.0, 0.0
	for i := 0; i < 60; i++ {
		xw += xeon.Step(time.Minute)
		iw += i7.Step(time.Minute)
	}
	xeonPerKWh := xw / xeon.Energy().KWh()
	i7PerKWh := iw / i7.Energy().KWh()
	if ratio := i7PerKWh / xeonPerKWh; ratio < 4 {
		t.Errorf("i7 work/kWh advantage = %.1fx, want >= 4x (paper: 5–15x)", ratio)
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{Off: "off", Restoring: "restoring", On: "on", Checkpointing: "checkpointing"} {
		if s.String() != want {
			t.Errorf("state %d = %q", s, s.String())
		}
	}
}

func TestPowerOffDuringRestore(t *testing.T) {
	n := NewNode(Xeon())
	n.SetActiveVMs(2)
	n.PowerOn()
	n.Step(time.Minute) // mid-restore
	n.PowerOff()
	if n.State() != Checkpointing {
		t.Fatalf("state = %v, want checkpointing", n.State())
	}
	for i := 0; i < 10; i++ {
		n.Step(time.Minute)
	}
	if n.State() != Off {
		t.Errorf("state = %v after checkpoint, want off", n.State())
	}
}

func TestStepWhileOffDoesNothing(t *testing.T) {
	n := NewNode(Xeon())
	if w := n.Step(time.Hour); w != 0 {
		t.Errorf("off node did work %v", w)
	}
	if n.Energy() != 0 {
		t.Errorf("off node consumed %v", n.Energy())
	}
}

func TestSetUtilClamps(t *testing.T) {
	n := NewNode(Xeon())
	n.SetUtil(2)
	n.PowerOn()
	for i := 0; i < 10; i++ {
		n.Step(time.Minute)
	}
	n.SetActiveVMs(2)
	if p := n.Power(); p > n.Profile().PeakPower {
		t.Errorf("clamped util still exceeds peak: %v", p)
	}
	n.SetUtil(-1)
	if p := n.Power(); p != n.Profile().IdlePower {
		t.Errorf("negative util power = %v, want idle", p)
	}
}

func TestSetActiveVMsClamps(t *testing.T) {
	n := NewNode(Xeon())
	n.SetActiveVMs(99)
	if n.ActiveVMs() != 2 {
		t.Errorf("active VMs = %d, want slot clamp 2", n.ActiveVMs())
	}
	n.SetActiveVMs(-1)
	if n.ActiveVMs() != 0 {
		t.Errorf("active VMs = %d, want 0", n.ActiveVMs())
	}
}

func TestCoreI7ProfileShape(t *testing.T) {
	p := CoreI7()
	if p.IdlePower >= p.PeakPower {
		t.Error("idle above peak")
	}
	if p.IdlePower >= Xeon().IdlePower {
		t.Error("i7 idle should be far below Xeon idle")
	}
	if cyc := p.CheckpointFor(2) + p.RestoreFor(2); cyc >= Xeon().CheckpointFor(2)+Xeon().RestoreFor(2) {
		t.Error("i7 power cycles should be cheaper than Xeon's")
	}
}

func TestClusterTotalSlots(t *testing.T) {
	c := NewCluster(Xeon(), 3)
	if c.TotalVMSlots() != 6 {
		t.Errorf("slots = %d", c.TotalVMSlots())
	}
	if c.Size() != 3 {
		t.Errorf("size = %d", c.Size())
	}
}

// TestCheckpointRestoreEdgeCases pins the Profile timing model at its
// corners: zero VMs costs the bare node-level sequencing, and full
// occupancy reproduces the paper's ~15-minute on/off disruption exactly.
func TestCheckpointRestoreEdgeCases(t *testing.T) {
	cases := []struct {
		name               string
		prof               Profile
		vms                int
		wantSave, wantBoot time.Duration
	}{
		{"xeon empty", Xeon(), 0, 3 * time.Minute, 4 * time.Minute},
		{"xeon one VM", Xeon(), 1, 5 * time.Minute, 6 * time.Minute},
		{"xeon full", Xeon(), 2, 7 * time.Minute, 8 * time.Minute},
		{"i7 empty", CoreI7(), 0, time.Minute, time.Minute},
		{"i7 full", CoreI7(), 2, 2 * time.Minute, 3 * time.Minute},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := c.prof.CheckpointFor(c.vms); got != c.wantSave {
				t.Errorf("CheckpointFor(%d) = %v, want %v", c.vms, got, c.wantSave)
			}
			if got := c.prof.RestoreFor(c.vms); got != c.wantBoot {
				t.Errorf("RestoreFor(%d) = %v, want %v", c.vms, got, c.wantBoot)
			}
		})
	}
	// Full occupancy is the paper's ~15 min cycle, to the minute.
	p := Xeon()
	if total := p.CheckpointFor(p.VMSlots) + p.RestoreFor(p.VMSlots); total != 15*time.Minute {
		t.Errorf("full-occupancy cycle = %v, want exactly 15m", total)
	}
}

// TestCrashLosesUncheckpointedState pins the crash-vs-checkpoint contrast
// the survivability layer is built on.
func TestCrashLosesUncheckpointedState(t *testing.T) {
	// A node caught On loses all its running VMs.
	n := NewNode(Xeon())
	n.SetActiveVMs(2)
	n.PowerOn()
	n.Step(n.Profile().RestoreFor(2))
	if !n.Running() {
		t.Fatal("node should be on")
	}
	n.Crash()
	if n.State() != Off || n.Power() != 0 {
		t.Fatalf("crashed node state %v, power %v", n.State(), n.Power())
	}
	if n.VMsLost() != 2 || n.VMsSaved() != 0 {
		t.Errorf("lost %d saved %d, want 2/0", n.VMsLost(), n.VMsSaved())
	}

	// A node caught mid-checkpoint loses the images it was still saving.
	n = NewNode(Xeon())
	n.SetActiveVMs(2)
	n.PowerOn()
	n.Step(n.Profile().RestoreFor(2))
	n.PowerOff()
	n.SetActiveVMs(0) // the allocator zeroes the count; the latch must hold
	n.Step(time.Minute)
	n.Crash()
	if n.VMsLost() != 2 {
		t.Errorf("mid-checkpoint crash lost %d VMs, want 2", n.VMsLost())
	}

	// A completed checkpoint is safe: crashing afterwards loses nothing.
	n = NewNode(Xeon())
	n.SetActiveVMs(1)
	n.PowerOn()
	n.Step(n.Profile().RestoreFor(1))
	n.PowerOff()
	n.Step(n.Profile().CheckpointFor(1))
	if n.VMsSaved() != 1 {
		t.Fatalf("saved %d VMs after completed checkpoint, want 1", n.VMsSaved())
	}
	n.Crash()
	if n.VMsLost() != 0 {
		t.Errorf("crash of an off node lost %d VMs", n.VMsLost())
	}

	// A node caught Restoring loses nothing: its images are still on disk.
	n = NewNode(Xeon())
	n.SetActiveVMs(2)
	n.PowerOn()
	n.Step(time.Minute)
	n.Crash()
	if n.VMsLost() != 0 {
		t.Errorf("crash during restore lost %d VMs; images persist", n.VMsLost())
	}
}

func TestClusterCrashVersusShutdown(t *testing.T) {
	boot := func() *Cluster {
		c := NewCluster(Xeon(), 2)
		c.SetTargetVMs(4)
		for i := 0; i < 10; i++ {
			c.Step(time.Minute)
		}
		return c
	}

	c := boot()
	if c.RunningVMs() != 4 {
		t.Fatalf("running VMs = %d, want 4", c.RunningVMs())
	}
	c.Crash()
	if c.VMsLost() != 4 || c.VMsSaved() != 0 {
		t.Errorf("crash lost %d saved %d, want 4/0", c.VMsLost(), c.VMsSaved())
	}
	if c.Power() != 0 || c.TargetVMs() != 0 {
		t.Error("crashed cluster should be dark with no target")
	}

	// The orderly path saves everything instead.
	c = boot()
	c.Shutdown()
	for i := 0; i < 10; i++ {
		c.Step(time.Minute)
	}
	if c.VMsSaved() != 4 || c.VMsLost() != 0 {
		t.Errorf("shutdown saved %d lost %d, want 4/0", c.VMsSaved(), c.VMsLost())
	}
}

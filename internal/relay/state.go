package relay

import (
	"fmt"
	"time"

	"insure/internal/journal"
)

// relayStateVersion guards the binary layout of a serialized Relay.
const relayStateVersion = 1

// RelayState is the complete mutable state of one relay: contact
// position, wear counters, in-flight settle accounting, and any injected
// hardware fault. Names and the OnSettle hook are wiring, not state.
type RelayState struct {
	Closed  bool
	Cycles  int64
	Aborted int64
	Pending time.Duration
	Waited  time.Duration
	Fail    FailMode
}

// State captures the relay's mutable state.
func (r *Relay) State() RelayState {
	s, i := r.s, r.i
	return RelayState{
		Closed:  s.closed[i],
		Cycles:  s.cycles[i],
		Aborted: s.aborted[i],
		Pending: s.pending[i],
		Waited:  s.waited[i],
		Fail:    s.fail[i],
	}
}

// Restore overwrites the relay's mutable state.
func (r *Relay) Restore(st RelayState) {
	s, i := r.s, r.i
	s.closed[i] = st.Closed
	s.cycles[i] = st.Cycles
	s.aborted[i] = st.Aborted
	s.pending[i] = st.Pending
	s.waited[i] = st.Waited
	s.fail[i] = st.Fail
}

// AppendTo serializes the state into e.
func (st RelayState) AppendTo(e *journal.Encoder) {
	e.U8(relayStateVersion)
	e.Bool(st.Closed)
	e.I64(st.Cycles)
	e.I64(st.Aborted)
	e.Dur(st.Pending)
	e.Dur(st.Waited)
	e.Int(int(st.Fail))
}

// ReadRelayState decodes one RelayState written by AppendTo.
func ReadRelayState(d *journal.Decoder) RelayState {
	d.ExpectVersion(relayStateVersion)
	return RelayState{
		Closed:  d.Bool(),
		Cycles:  d.I64(),
		Aborted: d.I64(),
		Pending: d.Dur(),
		Waited:  d.Dur(),
		Fail:    FailMode(d.Int()),
	}
}

// PairState is the state of one charge/discharge relay pair.
type PairState struct {
	Charge    RelayState
	Discharge RelayState
}

// State captures both relays of the pair.
func (p *Pair) State() PairState {
	return PairState{Charge: p.Charge.State(), Discharge: p.Discharge.State()}
}

// Restore overwrites both relays of the pair.
func (p *Pair) Restore(st PairState) {
	p.Charge.Restore(st.Charge)
	p.Discharge.Restore(st.Discharge)
}

// FabricState is the full switch-network state: every unit pair plus the
// three series/parallel topology relays.
type FabricState struct {
	Pairs      []PairState
	P1, P2, P3 RelayState
}

// State captures the whole fabric.
func (f *Fabric) State() FabricState {
	st := FabricState{
		Pairs: make([]PairState, len(f.pairs)),
		P1:    f.P1.State(),
		P2:    f.P2.State(),
		P3:    f.P3.State(),
	}
	for i, p := range f.pairs {
		st.Pairs[i] = p.State()
	}
	return st
}

// Restore overwrites the whole fabric. The size must match.
func (f *Fabric) Restore(st FabricState) error {
	if len(st.Pairs) != len(f.pairs) {
		return fmt.Errorf("relay: restoring %d pairs into fabric of %d", len(st.Pairs), len(f.pairs))
	}
	for i, p := range f.pairs {
		p.Restore(st.Pairs[i])
	}
	f.P1.Restore(st.P1)
	f.P2.Restore(st.P2)
	f.P3.Restore(st.P3)
	return nil
}

// AppendState serializes the whole fabric into e.
func (f *Fabric) AppendState(e *journal.Encoder) {
	e.Int(len(f.pairs))
	for _, p := range f.pairs {
		p.Charge.State().AppendTo(e)
		p.Discharge.State().AppendTo(e)
	}
	f.P1.State().AppendTo(e)
	f.P2.State().AppendTo(e)
	f.P3.State().AppendTo(e)
}

// RestoreState decodes a fabric serialized by AppendState into f.
func (f *Fabric) RestoreState(d *journal.Decoder) error {
	n := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if n != len(f.pairs) {
		return fmt.Errorf("relay: restoring %d pairs into fabric of %d", n, len(f.pairs))
	}
	for _, p := range f.pairs {
		p.Charge.Restore(ReadRelayState(d))
		p.Discharge.Restore(ReadRelayState(d))
	}
	f.P1.Restore(ReadRelayState(d))
	f.P2.Restore(ReadRelayState(d))
	f.P3.Restore(ReadRelayState(d))
	return d.Err()
}

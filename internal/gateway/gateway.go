// Package gateway is the energy-aware serving plane: an admission
// controller and deadline-aware request queue for interactive traffic,
// driven by the plant's live energy state — state of charge, the
// conservative supply forecast, and the PR 5 survivability ladder
// (internal/core). The paper's workload model is batch-dominated; this is
// the request path the ROADMAP's "millions of users" story needs, applying
// the same load-side knobs (§3.4 duty cycling, VM scaling) at per-request
// granularity:
//
//   - Normal serves every class at full capacity.
//   - Conservative sheds the best-effort class and derates capacity.
//   - Survival serves only critical requests, with degraded responses.
//   - Blackout serves nothing (and /healthz reports draining).
//
// Every admitted request is metered through cost.ServingTariff — the
// energy price of a request, in the same dollars as the paper's TCO
// models — and every rejection carries an explicit retry-after hint
// derived from the supply forecast, so clients back off until the sun is
// actually expected back.
//
// Admission contract: a request is *admitted* only at the moment service
// begins. Queued requests hold no admission promise; on a ladder downgrade
// the queue is re-triaged and newly unservable classes are shed with
// retry-after hints. A request that has been admitted is never dropped —
// the AdmittedDropped counter exists to prove that invariant stays zero.
package gateway

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"insure/internal/core"
	"insure/internal/cost"
)

// Class is a request priority class.
type Class uint8

const (
	// Critical is must-serve traffic (health probes, alarms, operator
	// queries). Served on every rung that has any capacity at all.
	Critical Class = iota
	// Standard is ordinary interactive traffic. Shed in Survival.
	Standard
	// BestEffort is deferrable traffic (prefetch, analytics, previews).
	// First to shed: gone in Conservative, and gated on SoC even in Normal.
	BestEffort
	// NumClasses bounds per-class arrays.
	NumClasses
)

func (c Class) String() string {
	switch c {
	case Critical:
		return "critical"
	case Standard:
		return "standard"
	case BestEffort:
		return "besteffort"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// ParseClass parses a class name (as used in the HTTP query parameter).
func ParseClass(s string) (Class, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "critical", "crit":
		return Critical, nil
	case "standard", "std", "":
		return Standard, nil
	case "besteffort", "best-effort", "be":
		return BestEffort, nil
	}
	return Standard, fmt.Errorf("gateway: unknown request class %q", s)
}

// Decision is the admission controller's verdict on one request.
type Decision uint8

const (
	// Served: the request was admitted and service completed (the only
	// decision that consumes plant energy).
	Served Decision = iota
	// Queued: the request is waiting for capacity. Not yet admitted — its
	// final outcome (Served or Shed) arrives via the Ticket.
	Queued
	// Shed: the request was rejected with a retry-after hint.
	Shed
)

func (d Decision) String() string {
	switch d {
	case Served:
		return "served"
	case Queued:
		return "queued"
	case Shed:
		return "shed"
	default:
		return fmt.Sprintf("Decision(%d)", int(d))
	}
}

// ShedReason says why a request was rejected.
type ShedReason uint8

const (
	ShedNone ShedReason = iota
	// ShedMode: the current ladder rung does not serve this class.
	ShedMode
	// ShedSoC: the buffer is below the class's admission floor.
	ShedSoC
	// ShedCapacity: the plant is serving this class, but the queue is full
	// or the projected wait exceeds the class deadline.
	ShedCapacity
	// ShedDeadline: the request was queued but its deadline passed before
	// capacity arrived.
	ShedDeadline
	// ShedRetriage: the request was queued, then a ladder downgrade made
	// its class unservable; the queue re-triage rejected it.
	ShedRetriage
	// ShedDrain: the gateway was drained (shutdown) with the request still
	// queued.
	ShedDrain
	numShedReasons
)

func (r ShedReason) String() string {
	switch r {
	case ShedNone:
		return "none"
	case ShedMode:
		return "mode"
	case ShedSoC:
		return "soc"
	case ShedCapacity:
		return "capacity"
	case ShedDeadline:
		return "deadline"
	case ShedRetriage:
		return "retriage"
	case ShedDrain:
		return "drain"
	default:
		return fmt.Sprintf("ShedReason(%d)", int(r))
	}
}

// Outcome is the final verdict delivered for one request.
type Outcome struct {
	Decision Decision
	Class    Class
	Reason   ShedReason // Shed only

	// Degraded marks a response served under an emergency rung (Survival /
	// Blackstart): smaller payload, lower energy.
	Degraded bool

	// WaitMs is the simulated queueing delay; LatencyMs adds the class's
	// service time. Both are simulation time, not wall time.
	WaitMs    float64
	LatencyMs float64

	// RetryAfter is the forecast-derived back-off hint (Shed only).
	RetryAfter time.Duration

	// EnergyWh and CostUSD are the request's metered energy account
	// (Served only).
	EnergyWh float64
	CostUSD  float64

	// Mode and SoC snapshot the energy state the decision was taken under.
	Mode core.OpMode
	SoC  float64
}

// Ticket is the handle for a queued request: exactly one Outcome (Served
// or Shed) is delivered on C.
type Ticket struct {
	C <-chan Outcome
}

// State is the live energy picture the gateway admits against.
type State struct {
	Mode core.OpMode
	SoC  float64
}

// Plant supplies the gateway's energy state and forecast. Implementations
// must be safe for concurrent use with the simulation when the gateway is
// driven from multiple goroutines (the live daemon serialises plant ticks
// and gateway calls behind one mutex; see cmd/insure-gateway).
type Plant interface {
	// State reports the energy state at sim time now.
	State(now time.Duration) State
	// ForecastW is the conservative renewable supply forecast at sim time
	// at, in watts — the curve retry-after hints walk.
	ForecastW(at time.Duration) float64
}

// ClassPolicy tunes one request class.
type ClassPolicy struct {
	// Deadline is the maximum queueing delay before service must begin;
	// requests that cannot start by then are shed, never silently late.
	Deadline time.Duration
	// ServiceTime is the simulated service duration.
	ServiceTime time.Duration
	// RespKB sizes the response for energy pricing; DegradedKB is the
	// reduced payload served under emergency rungs.
	RespKB     float64
	DegradedKB float64
	// MaxQueue bounds the class's queue depth.
	MaxQueue int
	// MinSoC gates admission on the buffer even when the rung would serve
	// the class (0 disables). This is the direct SoC knob; the ladder is
	// the indirect one.
	MinSoC float64
}

// Config shapes a Gateway.
type Config struct {
	// BaseQPS is the full-cluster serving capacity at ModeNormal.
	BaseQPS float64
	// Burst is the token-bucket depth in requests (default: one second of
	// BaseQPS).
	Burst float64

	// ConservativeCapFrac and SurvivalCapFrac derate capacity on the
	// degraded rungs (Blackout is always zero; Blackstart uses the
	// Survival fraction while the cluster reboots).
	ConservativeCapFrac float64
	SurvivalCapFrac     float64

	// BrakeHighSoC/BrakeLowSoC/BrakeFloorFrac derate capacity linearly as
	// the buffer drains: full capacity at or above BrakeHighSoC, falling
	// to BrakeFloorFrac of it at BrakeLowSoC. This couples admission to
	// SoC directly, ahead of (and independent of) the ladder.
	BrakeHighSoC   float64
	BrakeLowSoC    float64
	BrakeFloorFrac float64

	// RecoveryW is the forecast supply at which shed traffic should come
	// back; retry-after hints are the time until the forecast first
	// reaches it. RetryStep is the forecast walk's resolution.
	RecoveryW    float64
	RetryStep    time.Duration
	RetryHorizon time.Duration
	MinRetry     time.Duration

	// Classes holds the per-class policies.
	Classes [NumClasses]ClassPolicy

	// Tariff prices each served request's energy; the zero value means
	// cost.DefaultServingTariff.
	Tariff cost.ServingTariff

	// LatencySink, when set, receives every served request's latency in
	// simulated milliseconds (the load harness installs a percentile
	// recorder here). Called with the gateway lock held; keep it fast.
	LatencySink func(class Class, latencyMs float64)
}

// DefaultConfig returns the serving-plane tuning the load harness sweeps.
func DefaultConfig() Config {
	return Config{
		BaseQPS:             25,
		Burst:               25,
		ConservativeCapFrac: 0.6,
		SurvivalCapFrac:     0.12,
		BrakeHighSoC:        0.45,
		BrakeLowSoC:         0.30,
		BrakeFloorFrac:      0.30,
		RecoveryW:           150,
		RetryStep:           5 * time.Minute,
		RetryHorizon:        6 * time.Hour,
		MinRetry:            30 * time.Second,
		Classes: [NumClasses]ClassPolicy{
			Critical:   {Deadline: 2 * time.Second, ServiceTime: 20 * time.Millisecond, RespKB: 2, DegradedKB: 0.5, MaxQueue: 64},
			Standard:   {Deadline: 5 * time.Second, ServiceTime: 60 * time.Millisecond, RespKB: 16, DegradedKB: 2, MaxQueue: 128},
			BestEffort: {Deadline: 15 * time.Second, ServiceTime: 120 * time.Millisecond, RespKB: 64, DegradedKB: 8, MaxQueue: 256, MinSoC: 0.50},
		},
	}
}

// normalized fills zero fields with defaults.
func (c Config) normalized() Config {
	d := DefaultConfig()
	if c.BaseQPS <= 0 {
		c.BaseQPS = d.BaseQPS
	}
	if c.Burst <= 0 {
		c.Burst = c.BaseQPS
	}
	if c.ConservativeCapFrac <= 0 {
		c.ConservativeCapFrac = d.ConservativeCapFrac
	}
	if c.SurvivalCapFrac <= 0 {
		c.SurvivalCapFrac = d.SurvivalCapFrac
	}
	if c.BrakeHighSoC <= 0 {
		c.BrakeHighSoC = d.BrakeHighSoC
	}
	if c.BrakeLowSoC <= 0 {
		c.BrakeLowSoC = d.BrakeLowSoC
	}
	if c.BrakeFloorFrac <= 0 {
		c.BrakeFloorFrac = d.BrakeFloorFrac
	}
	if c.RecoveryW <= 0 {
		c.RecoveryW = d.RecoveryW
	}
	if c.RetryStep <= 0 {
		c.RetryStep = d.RetryStep
	}
	if c.RetryHorizon <= 0 {
		c.RetryHorizon = d.RetryHorizon
	}
	if c.MinRetry <= 0 {
		c.MinRetry = d.MinRetry
	}
	for i := range c.Classes {
		if c.Classes[i].Deadline <= 0 {
			c.Classes[i] = d.Classes[i]
		}
	}
	if c.Tariff.BaseWh <= 0 {
		c.Tariff = cost.DefaultServingTariff()
	}
	return c
}

// servedIn reports whether the rung serves the class — the shedding ladder
// of the package comment.
func servedIn(mode core.OpMode, c Class) bool {
	switch mode {
	case core.ModeNormal:
		return true
	case core.ModeConservative:
		return c != BestEffort
	case core.ModeSurvival, core.ModeBlackstart:
		return c == Critical
	default: // ModeBlackout
		return false
	}
}

// degradedIn reports whether responses on the rung are degraded.
func degradedIn(mode core.OpMode) bool {
	return mode == core.ModeSurvival || mode == core.ModeBlackstart
}

// pending is one queued request.
type pending struct {
	class    Class
	arrived  time.Duration
	deadline time.Duration
	ch       chan Outcome // nil for Offer-path requests
	resolved bool
}

// fifo is a head-indexed queue of pending requests.
type fifo struct {
	q    []*pending
	head int
}

func (f *fifo) len() int       { return len(f.q) - f.head }
func (f *fifo) front() *pending {
	return f.q[f.head]
}
func (f *fifo) push(p *pending) { f.q = append(f.q, p) }
func (f *fifo) pop() *pending {
	p := f.q[f.head]
	f.q[f.head] = nil
	f.head++
	if f.head > 64 && f.head*2 >= len(f.q) {
		n := copy(f.q, f.q[f.head:])
		f.q = f.q[:n]
		f.head = 0
	}
	return p
}

// Stats is the gateway's cumulative accounting.
type Stats struct {
	Requests int // every Admit/Offer call
	Admitted [NumClasses]int
	Degraded int
	// QueuedEver counts requests that waited in the queue at some point
	// (admitted or not); QueueDepth is the instantaneous depth.
	QueuedEver [NumClasses]int
	QueueDepth int
	Shed       [NumClasses]int
	ShedReason [numShedReasons]int
	// AdmittedDropped counts requests dropped after admission. It is zero
	// by construction; tests and the load harness assert it stays so.
	AdmittedDropped int
	// Energy account (cost.ServingTariff): total metered energy and its
	// marginal dollar cost across every served request.
	EnergyWh float64
	CostUSD  float64
}

// Gateway is the serving plane for one plant. All methods are safe for
// concurrent use.
type Gateway struct {
	mu    sync.Mutex
	cfg   Config
	plant Plant

	now      time.Duration
	lastMode core.OpMode
	started  bool
	tokens   float64

	queues [NumClasses]fifo
	stats  Stats

	tel *gwTelemetry
}

// New builds a gateway over the plant's live energy state. The token
// bucket starts full, so a fresh gateway serves a burst immediately.
func New(cfg Config, plant Plant) *Gateway {
	cfg = cfg.normalized()
	return &Gateway{cfg: cfg, plant: plant, tokens: cfg.Burst}
}

// Stats returns a snapshot of the cumulative accounting.
func (g *Gateway) Stats() Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.stats
}

// Now returns the gateway's sim clock (the last Advance time).
func (g *Gateway) Now() time.Duration {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.now
}

// capacityQPS is the serving rate the energy state funds right now:
// BaseQPS derated by the rung and braked linearly on SoC.
func (g *Gateway) capacityQPS(st State) float64 {
	var frac float64
	switch st.Mode {
	case core.ModeNormal:
		frac = 1
	case core.ModeConservative:
		frac = g.cfg.ConservativeCapFrac
	case core.ModeSurvival, core.ModeBlackstart:
		frac = g.cfg.SurvivalCapFrac
	default: // ModeBlackout
		return 0
	}
	return g.cfg.BaseQPS * frac * g.socFactor(st.SoC)
}

// socFactor is the linear SoC brake: 1 at or above BrakeHighSoC, falling
// to BrakeFloorFrac at BrakeLowSoC.
func (g *Gateway) socFactor(soc float64) float64 {
	hi, lo := g.cfg.BrakeHighSoC, g.cfg.BrakeLowSoC
	if soc >= hi || hi <= lo {
		return 1
	}
	if soc <= lo {
		return g.cfg.BrakeFloorFrac
	}
	t := (soc - lo) / (hi - lo)
	return g.cfg.BrakeFloorFrac + t*(1-g.cfg.BrakeFloorFrac)
}

// retryAfter derives the back-off hint from the supply forecast: the time
// until the conservative forecast first reaches RecoveryW, clamped to
// [MinRetry, RetryHorizon]. When the forecast never recovers inside the
// horizon the hint is the full horizon — "come back tomorrow".
func (g *Gateway) retryAfter(now time.Duration) time.Duration {
	for t := now + g.cfg.RetryStep; t <= now+g.cfg.RetryHorizon; t += g.cfg.RetryStep {
		if g.plant.ForecastW(t) >= g.cfg.RecoveryW {
			d := t - now
			if d < g.cfg.MinRetry {
				d = g.cfg.MinRetry
			}
			return d
		}
	}
	return g.cfg.RetryHorizon
}

// drainEstimate is the capacity-shed back-off: roughly how long the queue
// ahead of a new arrival needs to drain at the current rate.
func (g *Gateway) drainEstimate(ahead int, rate float64) time.Duration {
	if rate <= 0 {
		return g.cfg.RetryHorizon
	}
	d := time.Duration(float64(ahead+1) / rate * float64(time.Second))
	if d < g.cfg.MinRetry {
		d = g.cfg.MinRetry
	}
	return d
}

// Advance moves the gateway's clock to sim time now: refills the token
// bucket at the energy-derated rate, re-triages the queue if the ladder
// moved, expires deadline-blown waiters, and dispatches queued requests
// into the freed capacity. The plant driver calls it once per tick, after
// the plant itself has stepped.
func (g *Gateway) Advance(now time.Duration) {
	g.mu.Lock()
	defer g.mu.Unlock()
	st := g.plant.State(now)
	if !g.started {
		g.started = true
		g.now = now
		g.lastMode = st.Mode
	}
	if dt := now - g.now; dt > 0 {
		g.tokens += g.capacityQPS(st) * dt.Seconds()
		if g.tokens > g.cfg.Burst {
			g.tokens = g.cfg.Burst
		}
	}
	g.now = now
	if st.Mode != g.lastMode {
		g.retriage(now, st)
		g.lastMode = st.Mode
	}
	g.expire(now, st)
	g.dispatch(now, st)
}

// retriage re-examines the whole queue after a ladder transition: requests
// whose class the new rung no longer serves are shed immediately with
// forecast retry-after hints. Queued requests were never admitted, so this
// sheds promises-not-yet-made — the AdmittedDropped invariant stays zero.
func (g *Gateway) retriage(now time.Duration, st State) {
	retry := time.Duration(0)
	for c := Class(0); c < NumClasses; c++ {
		if servedIn(st.Mode, c) {
			continue
		}
		q := &g.queues[c]
		for q.len() > 0 {
			p := q.pop()
			if retry == 0 {
				retry = g.retryAfter(now)
			}
			g.shedPending(p, now, st, ShedRetriage, retry)
		}
	}
}

// expire sheds queued requests whose deadline passed before capacity
// arrived. Per-class queues are FIFO with uniform deadlines, so only the
// front can be expired.
func (g *Gateway) expire(now time.Duration, st State) {
	for c := Class(0); c < NumClasses; c++ {
		q := &g.queues[c]
		for q.len() > 0 && q.front().deadline < now {
			p := q.pop()
			g.shedPending(p, now, st, ShedDeadline, g.drainEstimate(g.aheadOf(p.class), g.capacityQPS(st)))
		}
	}
}

// dispatch serves queued requests in class-priority order while tokens
// last. The moment a request is popped for service it is admitted.
func (g *Gateway) dispatch(now time.Duration, st State) {
	for c := Class(0); c < NumClasses; c++ {
		if !servedIn(st.Mode, c) {
			continue
		}
		q := &g.queues[c]
		for q.len() > 0 && g.tokens >= 1 {
			p := q.pop()
			g.tokens--
			g.serve(p, now, st, now-p.arrived)
		}
	}
}

// aheadOf counts the queued requests that would be served before a new
// arrival of the given class (all classes at equal or higher priority).
func (g *Gateway) aheadOf(c Class) int {
	n := 0
	for i := Class(0); i <= c; i++ {
		n += g.queues[i].len()
	}
	return n
}

// Admit runs the admission decision for one request of the given class at
// sim time now. The returned Outcome is final for Served and Shed; for
// Queued the Ticket delivers exactly one final Outcome later (from an
// Advance call). Offer is the ticketless variant for bulk replay.
func (g *Gateway) Admit(now time.Duration, class Class) (Outcome, *Ticket) {
	g.mu.Lock()
	defer g.mu.Unlock()
	out, p := g.admit(now, class, true)
	if p == nil {
		return out, nil
	}
	return out, &Ticket{C: p.ch}
}

// Offer is Admit without a ticket: queued requests resolve internally
// (stats, telemetry, latency sink) with no per-request channel. The load
// harness replays millions of requests through this path.
func (g *Gateway) Offer(now time.Duration, class Class) Outcome {
	g.mu.Lock()
	defer g.mu.Unlock()
	out, _ := g.admit(now, class, false)
	return out
}

func (g *Gateway) admit(now time.Duration, class Class, ticketed bool) (Outcome, *pending) {
	if now < g.now {
		// Clock discipline: arrivals never move time backwards; a racing
		// admit between ticks stamps at the gateway clock.
		now = g.now
	}
	g.stats.Requests++
	st := g.plant.State(now)
	pol := g.cfg.Classes[class]

	if !servedIn(st.Mode, class) {
		return g.shedNow(class, now, st, ShedMode, g.retryAfter(now)), nil
	}
	if pol.MinSoC > 0 && st.SoC < pol.MinSoC {
		return g.shedNow(class, now, st, ShedSoC, g.retryAfter(now)), nil
	}

	rate := g.capacityQPS(st)
	// Serve immediately when a token is free and nobody of equal-or-higher
	// priority is already waiting (FIFO fairness within the class).
	if g.tokens >= 1 && g.aheadOf(class) == 0 {
		g.tokens--
		p := &pending{class: class, arrived: now}
		out := g.serve(p, now, st, 0)
		return out, nil
	}

	// Deadline-aware queueing: refuse up front what cannot possibly start
	// in time, instead of queueing it to die — the queue never holds work
	// the plant has already decided not to do.
	ahead := g.aheadOf(class)
	projWait := time.Duration(float64(ahead+1) / max(rate, 1e-9) * float64(time.Second))
	if rate <= 0 || g.queues[class].len() >= pol.MaxQueue || projWait > pol.Deadline {
		return g.shedNow(class, now, st, ShedCapacity, g.drainEstimate(ahead, rate)), nil
	}

	p := &pending{class: class, arrived: now, deadline: now + pol.Deadline}
	if ticketed {
		p.ch = make(chan Outcome, 1)
	}
	g.queues[class].push(p)
	g.stats.QueuedEver[class]++
	g.stats.QueueDepth++
	if g.tel != nil {
		g.tel.queued[class].Inc()
		g.tel.queueDepth.Set(float64(g.stats.QueueDepth))
	}
	return Outcome{Decision: Queued, Class: class, Mode: st.Mode, SoC: st.SoC}, p
}

// serve admits p and completes its service: accounting, energy metering,
// latency recording, and ticket delivery. waitDur is the queueing delay.
func (g *Gateway) serve(p *pending, now time.Duration, st State, waitDur time.Duration) Outcome {
	if p.resolved {
		// A request must resolve exactly once; a second resolution would be
		// an admitted-then-dropped (or double-served) bug.
		g.stats.AdmittedDropped++
		if g.tel != nil {
			g.tel.admittedDropped.Inc()
		}
		return Outcome{}
	}
	p.resolved = true
	pol := g.cfg.Classes[p.class]
	degraded := degradedIn(st.Mode)
	kb := pol.RespKB
	if degraded {
		kb = pol.DegradedKB
	}
	wh := g.cfg.Tariff.RequestWh(kb)
	usd := float64(g.cfg.Tariff.RequestCost(kb))
	latency := waitDur + pol.ServiceTime

	g.stats.Admitted[p.class]++
	if degraded {
		g.stats.Degraded++
	}
	g.stats.EnergyWh += wh
	g.stats.CostUSD += usd
	if waitDur > 0 || p.deadline != 0 {
		// This request came off the queue.
		g.stats.QueueDepth--
	}
	out := Outcome{
		Decision:  Served,
		Class:     p.class,
		Degraded:  degraded,
		WaitMs:    float64(waitDur) / float64(time.Millisecond),
		LatencyMs: float64(latency) / float64(time.Millisecond),
		EnergyWh:  wh,
		CostUSD:   usd,
		Mode:      st.Mode,
		SoC:       st.SoC,
	}
	if g.tel != nil {
		g.tel.admitted[p.class].Inc()
		if degraded {
			g.tel.degraded.Inc()
		}
		g.tel.latency[p.class].Observe(float64(latency) / float64(time.Second))
		g.tel.queueDepth.Set(float64(g.stats.QueueDepth))
	}
	if g.cfg.LatencySink != nil {
		g.cfg.LatencySink(p.class, out.LatencyMs)
	}
	if p.ch != nil {
		p.ch <- out
	}
	return out
}

// shedNow rejects a request at admission time.
func (g *Gateway) shedNow(class Class, now time.Duration, st State, why ShedReason, retry time.Duration) Outcome {
	g.stats.Shed[class]++
	g.stats.ShedReason[why]++
	if g.tel != nil {
		g.tel.shed[class].Inc()
		g.tel.shedBy[why].Inc()
	}
	return Outcome{
		Decision:   Shed,
		Class:      class,
		Reason:     why,
		RetryAfter: retry,
		Mode:       st.Mode,
		SoC:        st.SoC,
	}
}

// shedPending rejects a request that was queued (re-triage, deadline,
// drain). It was never admitted.
func (g *Gateway) shedPending(p *pending, now time.Duration, st State, why ShedReason, retry time.Duration) {
	if p.resolved {
		g.stats.AdmittedDropped++
		if g.tel != nil {
			g.tel.admittedDropped.Inc()
		}
		return
	}
	p.resolved = true
	g.stats.QueueDepth--
	g.stats.Shed[p.class]++
	g.stats.ShedReason[why]++
	if g.tel != nil {
		g.tel.shed[p.class].Inc()
		g.tel.shedBy[why].Inc()
		g.tel.queueDepth.Set(float64(g.stats.QueueDepth))
	}
	if p.ch != nil {
		p.ch <- Outcome{
			Decision:   Shed,
			Class:      p.class,
			Reason:     why,
			RetryAfter: retry,
			Mode:       st.Mode,
			SoC:        st.SoC,
		}
	}
}

// Drain sheds every queued request (gateway shutdown, or end of a replay).
// Queued requests were never admitted, so draining preserves the
// AdmittedDropped invariant.
func (g *Gateway) Drain(now time.Duration) {
	g.mu.Lock()
	defer g.mu.Unlock()
	st := g.plant.State(now)
	for c := Class(0); c < NumClasses; c++ {
		q := &g.queues[c]
		for q.len() > 0 {
			g.shedPending(q.pop(), now, st, ShedDrain, g.retryAfter(now))
		}
	}
}

func max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

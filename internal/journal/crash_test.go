package journal

// Property test for snapshot crash-atomicity: Snapshot is killed at every
// byte offset of its write sequence — and at every rename, and with every
// suffix of its renames undone as a lost directory fsync would — and boot
// must always recover either the old snapshot (with the journal records
// after it intact) or the new one, never a corrupt mix and never an
// error.

import (
	"errors"
	"fmt"
	"os"
	"testing"
)

// crashFS wraps Disk with a byte budget. Once the budget is spent the
// "process" is dead: writes persist only a prefix, and every later write,
// sync, rename, and remove fails. Renames are recorded so a test can roll
// back a suffix of them, simulating a crash before the directory fsync
// made them durable.
type crashFS struct {
	FS
	remaining int64
	unlimited bool
	failAtRename int // 1-based; 0 disables
	dead      bool
	renames   [][2]string
}

var errCrashed = errors.New("crashfs: process died")

func (c *crashFS) spend(n int) bool {
	if c.unlimited {
		return true
	}
	if c.remaining >= int64(n) {
		c.remaining -= int64(n)
		return true
	}
	c.dead = true
	return false
}

type crashFile struct {
	File
	fs *crashFS
}

func (c *crashFS) OpenFile(name string, flag int) (File, error) {
	if c.dead {
		return nil, errCrashed
	}
	f, err := c.FS.OpenFile(name, flag)
	if err != nil {
		return nil, err
	}
	return &crashFile{File: f, fs: c}, nil
}

func (f *crashFile) Write(p []byte) (int, error) {
	if f.fs.dead {
		return 0, errCrashed
	}
	if f.fs.spend(len(p)) {
		return f.File.Write(p)
	}
	// Torn write: persist what the budget allowed, then die.
	keep := f.fs.remaining
	f.fs.remaining = 0
	if keep > 0 {
		if _, err := f.File.Write(p[:keep]); err != nil {
			return 0, err
		}
	}
	return int(keep), errCrashed
}

func (f *crashFile) Sync() error {
	if f.fs.dead {
		return errCrashed
	}
	return f.File.Sync()
}

func (c *crashFS) Rename(oldname, newname string) error {
	if c.dead {
		return errCrashed
	}
	c.renames = append(c.renames, [2]string{oldname, newname})
	if c.failAtRename > 0 && len(c.renames) == c.failAtRename {
		c.dead = true
		return errCrashed
	}
	if err := c.FS.Rename(oldname, newname); err != nil {
		return err
	}
	return nil
}

func (c *crashFS) Remove(name string) error {
	if c.dead {
		return errCrashed
	}
	return c.FS.Remove(name)
}

func (c *crashFS) SyncDir(dir string) error {
	if c.dead {
		return errCrashed
	}
	return c.FS.SyncDir(dir)
}

// rollbackRenames undoes the last k performed renames, newest first — the
// on-disk picture when the directory entries after some point never made
// it to the platter.
func (c *crashFS) rollbackRenames(k int) error {
	done := c.renames
	if c.failAtRename > 0 && len(done) >= c.failAtRename {
		done = done[:c.failAtRename-1] // the failing rename never happened
	}
	for i := 0; i < k && len(done) > 0; i++ {
		r := done[len(done)-1]
		done = done[:len(done)-1]
		if err := os.Rename(r[1], r[0]); err != nil {
			return err
		}
	}
	return nil
}

// seedStore builds the pre-crash state: an old snapshot generation plus a
// committed journal record after it.
func seedStore(t *testing.T, dir string) {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append([]byte("r1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot([]byte("old-snapshot")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append([]byte("r2")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// checkRecovered asserts the fundamental invariant after any kill: boot
// succeeds and lands on the old or the new snapshot, never on garbage,
// and the old generation still replays the record committed after it.
func checkRecovered(t *testing.T, dir, label string) {
	t.Helper()
	res, err := Load(dir)
	if err != nil {
		t.Fatalf("%s: recovery failed: %v", label, err)
	}
	switch string(res.Snapshot) {
	case "new-snapshot":
		// New generation landed; everything before it is superseded.
	case "old-snapshot":
		// Old generation: the post-snapshot record must have survived.
		found := false
		for _, e := range res.Entries {
			if string(e) == "r2" {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s: recovered old generation but lost committed record r2 (entries=%q)", label, res.Entries)
		}
	default:
		t.Fatalf("%s: recovered snapshot = %q, want old or new", label, res.Snapshot)
	}

	// And the survivor must reopen and accept appends.
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("%s: reopen failed: %v", label, err)
	}
	if _, err := s.Append([]byte("post-recovery")); err != nil {
		t.Fatalf("%s: append after recovery failed: %v", label, err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("%s: close after recovery failed: %v", label, err)
	}
}

// snapshotAttempt runs the doomed Snapshot through fsys and returns the
// fs for post-mortem inspection.
func snapshotAttempt(t *testing.T, dir string, fsys *crashFS) {
	t.Helper()
	s, err := OpenFS(fsys, dir)
	if err != nil {
		// Opening through a dead-on-arrival fs cannot happen here: the
		// budget is spent inside Snapshot only.
		t.Fatal(err)
	}
	_ = s.Snapshot([]byte("new-snapshot")) // expected to fail mid-way
	_ = s.Close()
}

func TestSnapshotKilledAtEveryByteOffset(t *testing.T) {
	// Measure the full write sequence once.
	probeDir := t.TempDir()
	seedStore(t, probeDir)
	probe := &crashFS{FS: Disk, unlimited: true}
	snapshotAttempt(t, probeDir, probe)
	total := int64(0)
	{
		clean := &countingFS{FS: Disk}
		dir := t.TempDir()
		seedStore(t, dir)
		snapshotAttempt(t, dir, &crashFS{FS: clean, unlimited: true})
		total = clean.written
	}
	if total == 0 {
		t.Fatal("snapshot wrote zero bytes; probe broken")
	}

	for b := int64(0); b <= total; b++ {
		dir := t.TempDir()
		seedStore(t, dir)
		fsys := &crashFS{FS: Disk, remaining: b}
		snapshotAttempt(t, dir, fsys)
		checkRecovered(t, dir, fmt.Sprintf("torn@%d/%d", b, total))
	}
}

func TestSnapshotKilledAtEveryRename(t *testing.T) {
	// Count renames in a clean run.
	probe := &crashFS{FS: Disk, unlimited: true}
	dir0 := t.TempDir()
	seedStore(t, dir0)
	snapshotAttempt(t, dir0, probe)
	renames := len(probe.renames)
	if renames == 0 {
		t.Fatal("snapshot performed no renames; probe broken")
	}

	for n := 1; n <= renames; n++ {
		dir := t.TempDir()
		seedStore(t, dir)
		fsys := &crashFS{FS: Disk, unlimited: true, failAtRename: n}
		snapshotAttempt(t, dir, fsys)
		checkRecovered(t, dir, fmt.Sprintf("lost-rename@%d/%d", n, renames))
	}
}

func TestSnapshotSurvivesLostDirFsync(t *testing.T) {
	probe := &crashFS{FS: Disk, unlimited: true}
	dir0 := t.TempDir()
	seedStore(t, dir0)
	snapshotAttempt(t, dir0, probe)
	renames := len(probe.renames)

	// Undo every suffix of the rename sequence: the crash happened after
	// the renames were issued but before the directory fsync made the
	// last k of them durable.
	for k := 1; k <= renames; k++ {
		dir := t.TempDir()
		seedStore(t, dir)
		fsys := &crashFS{FS: Disk, unlimited: true}
		snapshotAttempt(t, dir, fsys)
		if err := fsys.rollbackRenames(k); err != nil {
			t.Fatalf("rollback %d: %v", k, err)
		}
		checkRecovered(t, dir, fmt.Sprintf("lost-dirsync@%d/%d", k, renames))
	}
}

// countingFS tallies bytes written through it.
type countingFS struct {
	FS
	written int64
}

type countingFile struct {
	File
	fs *countingFS
}

func (c *countingFS) OpenFile(name string, flag int) (File, error) {
	f, err := c.FS.OpenFile(name, flag)
	if err != nil {
		return nil, err
	}
	return &countingFile{File: f, fs: c}, nil
}

func (f *countingFile) Write(p []byte) (int, error) {
	n, err := f.File.Write(p)
	f.fs.written += int64(n)
	return n, err
}

package chaos

import (
	"testing"

	"insure/internal/diskfault"
)

// TestBitrotStormSelfHealing is the self-healing storage acceptance
// campaign: a three-day storm of torn writes, failed fsyncs, sick-disk
// windows, lost renames, and at-rest decay under both the control-plane
// state journal and the fleet's migration log and checkpoint images.
// Recovery must never resume from silently corrupted state, rollback must
// stay inside one snapshot window, every corruption of mirrored state
// must be repaired, and the guard counters must stay zero.
func TestBitrotStormSelfHealing(t *testing.T) {
	rep, err := RunBitrotStorm(DefaultBitrotStormConfig(701))
	if err != nil {
		t.Fatal(err)
	}
	if rep.ViolationCount > 0 {
		t.Fatalf("%s\nviolations:\n%s", rep, joinViolations(rep.Violations))
	}
	if rep.Restarts == 0 || rep.Commits == 0 {
		t.Fatalf("storm exercised nothing: %s", rep)
	}
	if rep.ScrubDetected == 0 || rep.ScrubRepaired == 0 {
		t.Fatalf("storm decay never met the scrubber: %s", rep)
	}
	if rep.MaxRollback > rep.Ticks {
		t.Fatalf("nonsensical rollback: %s", rep)
	}
}

// TestBitrotStormRerunIsBitIdentical reruns the acceptance storm with the
// same seed: the storm hash — which folds every recovery outcome, scrub
// repair, fault count, and fleet trajectory — must match exactly, proving
// the whole fault-injection and repair path is a deterministic function
// of the seed.
func TestBitrotStormRerunIsBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("rerun storm skipped in -short")
	}
	cfg := DefaultBitrotStormConfig(702)
	a, err := RunBitrotStorm(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunBitrotStorm(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.StormHash != b.StormHash {
		t.Errorf("same-seed storms diverged: %#x != %#x", a.StormHash, b.StormHash)
	}
	if a.String() != b.String() {
		t.Errorf("same-seed storm accounting diverged:\n 1st: %s\n 2nd: %s", a, b)
	}
}

// TestBitrotStormCleanDiskIsQuiet pins the harness itself: with every
// fault rate zeroed the same schedule of kills must run with no scrub
// detections, no rollback beyond the torn-kill slack, and no violations.
func TestBitrotStormCleanDiskIsQuiet(t *testing.T) {
	cfg := DefaultBitrotStormConfig(703)
	cfg.Days = 1
	cfg.StateFaults = diskfault.Config{}
	cfg.FleetFaults = diskfault.Config{}
	rep, err := RunBitrotStorm(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The clean run trips the "storm injected nothing" sentinels — that is
	// the point of them — and a one-day run never reaches the trough-day
	// surge that produces checkpoint images. Nothing else may fire.
	for _, v := range rep.Violations {
		switch v {
		case "storm injected no write or fsync faults on the state lane",
			"storm decayed nothing at rest on the state lane",
			"storm decayed nothing at rest on the fleet lane",
			"storm evacuation landed no checkpoint images":
		default:
			t.Errorf("clean disk produced a real violation: %s", v)
		}
	}
	if rep.ScrubDetected != 0 || rep.ScrubRepaired != 0 {
		t.Errorf("clean disk produced scrub repairs: %s", rep)
	}
	// Sick windows still open on a clean disk (the degraded switch is not
	// a rate), so rollback may reach the window length — one snapshot
	// window — but never past the violation bound.
	if rep.MaxRollback > cfg.SnapshotEvery+bitrotTornSlack {
		t.Errorf("clean disk rollback %d exceeds one snapshot window", rep.MaxRollback)
	}
}

package chaos

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"time"

	"insure/internal/diskfault"
	"insure/internal/faults"
	"insure/internal/fleet"
	"insure/internal/journal"
	"insure/internal/sim"
	"insure/internal/wan"
)

// The bit-rot storm campaign is the self-healing storage layer's proving
// ground: several simulated days with a seeded fault-injecting filesystem
// (internal/diskfault) mounted under everything that persists — the
// control-plane state journal on one lane, the fleet migration log and
// checkpoint-image store on another. Writes tear, fsyncs fail (singly and
// in planned sick-disk windows), renames lose their directory entries,
// files decay at rest, and the controller process is killed clean and
// killed torn on a planned schedule throughout.
//
// The invariants are the storage layer's whole contract: no recovery ever
// resumes from silently corrupted state (every recovered image must be an
// image the harness actually committed), rollback after any crash or sick
// window is bounded by one snapshot window, the scrubber repairs every
// decayed mirror copy it meets (zero unrepairable), the fleet's live
// accounting reconciles exactly with a fresh replay through the same
// decaying filesystem, the exactly-once guard counters stay zero, and the
// whole storm — fault fates, repairs, re-ships, and all — is bit-identical
// when re-run with the same seed.

// Seed lanes keep the storm's PRNG streams disjoint (seeding contract):
// the kill/sick-window planner, the control-plane disk, and the fleet
// disk each offset the campaign seed by its own constant.
const (
	bitrotPlanLane  = 31
	bitrotStateLane = 37
	bitrotFleetLane = 41
)

// bitrotTornSlack is the extra rollback ticks a torn kill may cost beyond
// the snapshot window: tornTailBytes can chop one whole record and tear
// the one before it.
const bitrotTornSlack = 2

// bitrotStateVersion guards the layout of the harness's journaled state.
const bitrotStateVersion = 1

// BitrotStormConfig shapes a bit-rot storm campaign.
type BitrotStormConfig struct {
	// Seed pins every fault fate, kill time, and sick window; the same
	// seed reproduces the storm bit-for-bit.
	Seed int64
	// Days is the storm length (the acceptance bar is >= 3).
	Days int

	// Control-plane lane: a daemon-style state journal ticking
	// TicksPerDay times a day, snapshotting every SnapshotEvery ticks,
	// killed KillsPerDay times a day (half of them torn), with one
	// planned sick-disk window a day during which every fsync fails.
	TicksPerDay   int
	SnapshotEvery int
	KillsPerDay   int

	// StateFaults is the control-plane disk's fault mix (Seed and Root
	// are set by the harness).
	StateFaults diskfault.Config

	// Fleet lane: a Sites-site federation under the usual storm weather,
	// evacuating checkpoints over a lossy WAN onto a decaying disk.
	Sites     int
	StormSite int
	Batteries int
	Servers   int
	JobGB     float64
	// DropRate/CorruptRate shape the WAN; FleetFaults the fleet disk.
	DropRate    float64
	CorruptRate float64
	FleetFaults diskfault.Config

	// StateDir/FleetDir override the private temp directories.
	StateDir string
	FleetDir string
}

// DefaultBitrotStormConfig is the acceptance storm: three days, four
// kills a day over the state journal plus a sick-disk window, torn and
// failed writes, at-rest decay on both lanes, and a three-site fleet
// shipping checkpoints across a 15%-drop WAN onto the decaying disk.
func DefaultBitrotStormConfig(seed int64) BitrotStormConfig {
	return BitrotStormConfig{
		Seed:          seed,
		Days:          3,
		TicksPerDay:   1440,
		SnapshotEvery: 60,
		KillsPerDay:   4,
		StateFaults: diskfault.Config{
			TornWrite:  0.002,
			WriteFail:  0.002,
			SyncFail:   0.001,
			BitRot:     0.03,
			LoseRename: 0.03,
		},
		Sites:     3,
		StormSite: 0,
		Batteries: 6,
		Servers:   4,
		JobGB:     40,
		DropRate:  0.15, CorruptRate: 0.03,
		// The fleet lane's file population is small (one migration-log
		// pair plus a handful of image pairs), so the at-rest decay rate
		// runs hot to make every storm meet it; the mirror of each pair
		// re-rolls independently, so double faults stay rare — and when
		// one hits an image pair, re-shipping is exactly the contract.
		FleetFaults: diskfault.Config{
			BitRot:    0.25,
			ShortRead: 0.01,
		},
	}
}

// BitrotStormReport is the outcome of one bit-rot storm campaign.
type BitrotStormReport struct {
	Seed int64
	Days int

	// Control-plane lane.
	Ticks       int // plant ticks driven
	Commits     int // journal commits acknowledged durable
	Restarts    int // every daemon restart: planned kills + fault crashes
	TornKills   int
	SickWindows int
	MaxRollback int // worst ticks of acknowledged-state rollback seen
	StateFaults diskfault.Stats

	// Scrub totals across both lanes.
	ScrubChecked      int
	ScrubDetected     int
	ScrubRepaired     int
	ScrubUnrepairable int

	// Fleet lane.
	JobsMoved       int
	MigratedGB      float64
	ImagesLanded    int
	ImagesVerified  int
	ImagesRepaired  int
	ImagesCorrupt   int
	ImagesReshipped int
	FleetFaults     diskfault.Stats

	// Guard counters, zero by construction.
	JobsDoubleRun int
	SplitBrain    int

	// StormHash folds every recovery, repair, fault count, and fleet
	// trajectory; two same-seed storms must agree on it exactly.
	StormHash uint64

	ViolationCount int
	Violations     []string
}

func (r *BitrotStormReport) violate(format string, args ...any) {
	r.ViolationCount++
	if len(r.Violations) < maxViolationDetail {
		r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
	}
}

// String is the one-line summary a failing test prints with the seed.
func (r *BitrotStormReport) String() string {
	return fmt.Sprintf("bitrot-storm seed %d: %d days, %d ticks, %d commits, %d restarts (%d torn, %d sick windows), max rollback %d, scrub %d checked / %d detected / %d repaired / %d unrepairable, fleet %d jobs / %.1f GB, images %d landed / %d repaired / %d corrupt / %d reshipped, double-run %d, split-brain %d, %d violations",
		r.Seed, r.Days, r.Ticks, r.Commits, r.Restarts, r.TornKills, r.SickWindows,
		r.MaxRollback, r.ScrubChecked, r.ScrubDetected, r.ScrubRepaired, r.ScrubUnrepairable,
		r.JobsMoved, r.MigratedGB, r.ImagesLanded, r.ImagesRepaired, r.ImagesCorrupt,
		r.ImagesReshipped, r.JobsDoubleRun, r.SplitBrain, r.ViolationCount)
}

// fold mixes a string into the storm hash, FNV-1a style.
func fold(h uint64, s string) uint64 {
	const prime = 1099511628211
	if h == 0 {
		h = 14695981039346656037
	}
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// bitrotEvent is one planned adversity on the control-plane lane.
type bitrotEvent struct {
	tick int
	kind Kind // KillClean or KillTorn
}

// bitrotDayPlan is one day's schedule: kills plus one sick-disk window.
type bitrotDayPlan struct {
	kills     []bitrotEvent
	sickStart int // tick the window opens
	sickEnd   int // tick the window closes (exclusive)
}

// planBitrotDays draws the full storm schedule up front with a fixed
// number of draws per event (two per kill, two per window), per the
// seeding contract.
func planBitrotDays(cfg BitrotStormConfig) []bitrotDayPlan {
	rng := rand.New(rand.NewSource(cfg.Seed + bitrotPlanLane))
	days := make([]bitrotDayPlan, cfg.Days)
	for d := range days {
		p := &days[d]
		for k := 0; k < cfg.KillsPerDay; k++ {
			tick := rng.Intn(cfg.TicksPerDay)
			kind := KillClean
			if rng.Float64() < 0.5 {
				kind = KillTorn
			}
			p.kills = append(p.kills, bitrotEvent{tick: tick, kind: kind})
		}
		sort.Slice(p.kills, func(i, j int) bool { return p.kills[i].tick < p.kills[j].tick })
		// One sick window a day, at most one snapshot window long so the
		// healthcheck-driven restart at its end stays inside the rollback
		// bound.
		p.sickStart = rng.Intn(cfg.TicksPerDay - cfg.SnapshotEvery)
		p.sickEnd = p.sickStart + cfg.SnapshotEvery/4 + rng.Intn(3*cfg.SnapshotEvery/4)
	}
	return days
}

// bitrotState is the deterministic per-tick state the harness journals:
// commit t carries (t, H(t)) where H is a seeded hash chain. Any recovered
// image claiming tick t must carry exactly H(t) — anything else is silent
// corruption that slipped past the CRCs and mirrors.
type bitrotState struct {
	hashes []uint64
	enc    journal.Encoder
}

func newBitrotState(seed int64, ticks int) *bitrotState {
	s := &bitrotState{hashes: make([]uint64, ticks)}
	h := uint64(seed) * 0x9e3779b97f4a7c15
	for t := range s.hashes {
		h = fold(h, fmt.Sprintf("tick %d", t))
		s.hashes[t] = h
	}
	return s
}

func (s *bitrotState) payload(t int) []byte {
	s.enc.Reset()
	s.enc.U8(bitrotStateVersion)
	s.enc.U64(uint64(t))
	s.enc.U64(s.hashes[t])
	return s.enc.Bytes()
}

func (s *bitrotState) decode(b []byte) (int, uint64, error) {
	d := journal.NewDecoder(b)
	d.ExpectVersion(bitrotStateVersion)
	t := d.U64()
	h := d.U64()
	if err := d.Err(); err != nil {
		return 0, 0, err
	}
	return int(t), h, nil
}

// RunBitrotStorm executes the bit-rot storm campaign described by cfg.
// Error returns are harness failures only; invariant breaks are reported
// in the BitrotStormReport so a test can print it with its seed.
func RunBitrotStorm(cfg BitrotStormConfig) (*BitrotStormReport, error) {
	if cfg.Days < 1 {
		return nil, fmt.Errorf("chaos: bitrot storm needs at least one day")
	}
	if cfg.TicksPerDay < 2*cfg.SnapshotEvery || cfg.SnapshotEvery < 8 {
		return nil, fmt.Errorf("chaos: bitrot storm needs TicksPerDay >= 2*SnapshotEvery and SnapshotEvery >= 8")
	}
	rep := &BitrotStormReport{Seed: cfg.Seed, Days: cfg.Days}

	if err := runBitrotStatePlane(cfg, rep); err != nil {
		return nil, err
	}
	if err := runBitrotFleetPlane(cfg, rep); err != nil {
		return nil, err
	}

	if rep.ScrubUnrepairable != 0 {
		rep.violate("%d corruptions of mirrored state were unrepairable", rep.ScrubUnrepairable)
	}
	if rep.JobsDoubleRun != 0 {
		rep.violate("%d job IDs landed twice", rep.JobsDoubleRun)
	}
	if rep.SplitBrain != 0 {
		rep.violate("%d jobs entered a transfer while in flight or landed", rep.SplitBrain)
	}
	return rep, nil
}

// runBitrotStatePlane drives the control-plane lane: a daemon-style state
// journal ticking through the storm on a failing disk, killed and
// recovered on the planned schedule.
func runBitrotStatePlane(cfg BitrotStormConfig, rep *BitrotStormReport) error {
	dir := cfg.StateDir
	if dir == "" {
		d, err := os.MkdirTemp("", "insure-bitrot-state-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(d)
		dir = d
	}
	fcfg := cfg.StateFaults
	fcfg.Seed = cfg.Seed + bitrotStateLane
	fcfg.Root = dir
	fsys := diskfault.New(fcfg, nil)

	totalTicks := cfg.Days * cfg.TicksPerDay
	state := newBitrotState(cfg.Seed, totalTicks)
	plan := planBitrotDays(cfg)

	st, err := journal.OpenFS(fsys, dir)
	if err != nil {
		return err
	}
	lastAcked := -1 // newest tick whose commit was acknowledged durable

	// restart models a daemon bounce at tick now: close whatever is left
	// of the store, recover from disk, and check the recovered image is
	// authentic and recent. The plant itself keeps moving — recovery
	// re-drives it from live readings, the journal only has to prove it
	// never lies.
	restart := func(now int, kind string) error {
		_ = st.Close() // a poisoned store reports its poison; the crash eats it
		res, err := journal.LoadFS(fsys, dir)
		if err != nil {
			rep.violate("recovery at tick %d (%s) failed outright: %v", now, kind, err)
			rep.StormHash = fold(rep.StormHash, fmt.Sprintf("recover-fail %d %s", now, kind))
			// Harness cannot continue without a store; this is terminal.
			return fmt.Errorf("chaos: bitrot state plane unrecoverable at tick %d: %v", now, err)
		}
		payload := res.Snapshot
		if len(res.Entries) > 0 {
			payload = res.Entries[len(res.Entries)-1]
		}
		recovered := -1
		if payload != nil {
			t, h, err := state.decode(payload)
			if err != nil || t < 0 || t >= totalTicks || state.hashes[t] != h {
				rep.violate("silent divergence at tick %d (%s): recovered image t=%d decode err=%v", now, kind, t, err)
			} else {
				recovered = t
			}
		}
		rollback := now - recovered
		if rollback > rep.MaxRollback {
			rep.MaxRollback = rollback
		}
		if rollback > cfg.SnapshotEvery+bitrotTornSlack {
			rep.violate("rollback of %d ticks at tick %d (%s) exceeds the %d-tick snapshot window", rollback, now, kind, cfg.SnapshotEvery)
		}
		rep.Restarts++
		rep.StormHash = fold(rep.StormHash, fmt.Sprintf("restart %d %s -> %d mid=%d fb=%v", now, kind, recovered, res.Midstream, res.SnapshotFallback))
		// A real daemon crash-loops until the disk lets it back in: Open
		// normalizes the pair, which can itself draw a stray fault.
		for attempt := 0; ; attempt++ {
			st, err = journal.OpenFS(fsys, dir)
			if err == nil || attempt == 2 {
				return err
			}
		}
	}

	scrub := func(label string) error {
		srep, err := journal.ScrubDir(fsys, dir)
		if err != nil {
			return err
		}
		rep.ScrubChecked += srep.Checked
		rep.ScrubDetected += srep.Detected
		rep.ScrubRepaired += srep.Repaired
		rep.ScrubUnrepairable += srep.Unrepairable
		// Fold counts only: the report's Dir is a per-run temp path.
		rep.StormHash = fold(rep.StormHash, fmt.Sprintf("scrub %s %d %d %d %d %d",
			label, srep.Checked, srep.Detected, srep.Repaired, srep.Unrepairable, srep.Midstream))
		return nil
	}

	sick := false // inside a planned sick-disk window
	down := false // store closed by a kill inside the window; reopens at its end
	for day := 0; day < cfg.Days; day++ {
		p := plan[day]
		nextKill := 0
		for tod := 0; tod < cfg.TicksPerDay; tod++ {
			now := day*cfg.TicksPerDay + tod
			rep.Ticks++

			// Sick-disk window: every fsync fails while it is open; at
			// close the operator replaces the disk and bounces the daemon.
			if !sick && tod >= p.sickStart && tod < p.sickEnd {
				sick = true
				rep.SickWindows++
				fsys.SetDegraded(true)
			}
			if sick && tod >= p.sickEnd {
				sick = false
				fsys.SetDegraded(false)
				down = false
				if err := restart(now, "sick-window-end"); err != nil {
					return err
				}
			}

			// Planned kills. A kill while the disk is sick leaves the
			// daemon down — reopening needs fsyncs the window denies —
			// until the window-end bounce recovers it.
			for nextKill < len(p.kills) && p.kills[nextKill].tick <= tod {
				e := p.kills[nextKill]
				nextKill++
				kind := "kill-clean"
				if e.kind == KillTorn {
					kind = "kill-torn"
					rep.TornKills++
					_ = st.Close()
					// The tear is the crash itself, not a disk fault: chop
					// the pair through the raw disk like the crash campaign.
					if err := journal.TruncateTail(dir, tornTailBytes); err != nil {
						return err
					}
				}
				if sick {
					_ = st.Close()
					down = true
					continue
				}
				if err := restart(now, kind); err != nil {
					return err
				}
			}

			// One plant tick, one commit. Inside a sick window commits
			// fail and the daemon limps on unacknowledged, exactly like
			// the real daemon's sticky store error.
			if down {
				continue
			}
			var cerr error
			if cfg.SnapshotEvery > 0 && now%cfg.SnapshotEvery == 0 {
				cerr = st.Snapshot(state.payload(now))
			} else {
				_, cerr = st.Append(state.payload(now))
			}
			switch {
			case cerr == nil:
				lastAcked = now
				rep.Commits++
			case sick:
				// Expected: poisoned until the window closes.
			default:
				// A stray torn write, ENOSPC, or failed fsync poisoned the
				// store mid-day: the daemon crashes and recovers now.
				if err := restart(now, "fault-crash"); err != nil {
					return err
				}
			}

			// Background scrub cadence: mid-window sweeps catch at-rest
			// decay while the decayed generation is still current, before
			// the next snapshot rotation replaces it. A sick disk denies
			// the fsyncs a repair needs, so sweeps pause with the daemon.
			if !sick && !down && now%cfg.SnapshotEvery == cfg.SnapshotEvery/2 {
				if err := scrub(fmt.Sprintf("t%d", now)); err != nil {
					return err
				}
			}
		}
		// A window that runs into the day boundary heals here.
		if sick {
			sick = false
			fsys.SetDegraded(false)
			down = false
			if err := restart((day+1)*cfg.TicksPerDay, "sick-day-end"); err != nil {
				return err
			}
		}
		if err := scrub(fmt.Sprintf("day %d", day)); err != nil {
			return err
		}
	}

	// Storm over: final bounce proves the surviving state is authentic
	// and the journal never drifted beyond one window from the plant.
	if err := restart(totalTicks, "final"); err != nil {
		return err
	}
	if err := st.Close(); err != nil && st.Failed() == nil {
		return err
	}
	if err := scrub("final"); err != nil {
		return err
	}

	rep.StateFaults = fsys.Stats()
	rep.StormHash = fold(rep.StormHash, fmt.Sprintf("state-faults %+v acked %d", rep.StateFaults, lastAcked))
	if rep.StateFaults.TornWrites+rep.StateFaults.WriteFails+rep.StateFaults.SyncFails == 0 {
		rep.violate("storm injected no write or fsync faults on the state lane")
	}
	if rep.StateFaults.RotFlips == 0 {
		rep.violate("storm decayed nothing at rest on the state lane")
	}
	return nil
}

// runBitrotFleetPlane drives the fleet lane: the storm-site evacuation
// fixture from the WAN campaign, with the migration log and the
// checkpoint-image store both mounted on a decaying filesystem.
func runBitrotFleetPlane(cfg BitrotStormConfig, rep *BitrotStormReport) error {
	dir := cfg.FleetDir
	if dir == "" {
		d, err := os.MkdirTemp("", "insure-bitrot-fleet-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(d)
		dir = d
	}
	logDir := filepath.Join(dir, "miglog")
	imgDir := filepath.Join(dir, "images")
	fcfg := cfg.FleetFaults
	fcfg.Seed = cfg.Seed + bitrotFleetLane
	fcfg.Root = dir
	fsys := diskfault.New(fcfg, nil)

	wcfg := WANStormConfig{
		Seed: cfg.Seed, Days: cfg.Days,
		Sites: cfg.Sites, StormSite: cfg.StormSite,
		Batteries: cfg.Batteries, Servers: cfg.Servers,
		JobGB: cfg.JobGB, Migration: true,
	}
	net, err := wan.New(wan.Config{
		Seed: cfg.Seed, Sites: cfg.Sites,
		DropRate: cfg.DropRate, CorruptRate: cfg.CorruptRate,
	})
	if err != nil {
		return err
	}
	banks, sites, _, err := wanStormSites(wcfg)
	if err != nil {
		return err
	}
	images, err := fleet.NewImageStore(fsys, imgDir)
	if err != nil {
		return err
	}

	curFl := fleetFrames{cfg: wcfg}
	c, err := fleet.New(fleet.Config{
		Migration: true,
		WAN:       net,
		LogDir:    logDir,
		LogFS:     fsys,
		Images:    images,
		Prepare:   curFl.prepare,
	}, sites)
	if err != nil {
		return err
	}
	defer c.Close()

	const fnvPrime = 1099511628211
	var traj uint64
	for day := 0; day < cfg.Days; day++ {
		cfgs := make([]sim.Config, cfg.Sites)
		for i := range cfgs {
			cfgs[i] = wanStormDayConfig(wcfg, banks[i], i, day)
		}
		if _, err := c.RunDay(cfgs); err != nil {
			return err
		}
		for i := 0; i < cfg.Sites; i++ {
			traj = traj*fnvPrime ^ hashFrames(curFl.fl.System(i).Recorder().Frames())
		}
		// Day-boundary scrub: one recursive sweep repairs decayed mirror
		// copies across the log pair, the sealed segments, and every
		// landed checkpoint-image pair.
		for _, d := range []string{logDir, imgDir} {
			srep, err := journal.ScrubDir(fsys, d)
			if err != nil {
				return err
			}
			rep.ScrubChecked += srep.Checked
			rep.ScrubDetected += srep.Detected
			rep.ScrubRepaired += srep.Repaired
			rep.ScrubUnrepairable += srep.Unrepairable
			rep.StormHash = fold(rep.StormHash, fmt.Sprintf("fleet-scrub %d %s %d %d %d %d %d",
				day, filepath.Base(d), srep.Checked, srep.Detected, srep.Repaired, srep.Unrepairable, srep.Midstream))
		}
	}

	tot := c.Report().Totals
	rep.JobsMoved = tot.JobsMoved
	rep.MigratedGB = tot.MigratedGB
	rep.JobsDoubleRun = tot.JobsDoubleRun
	rep.SplitBrain = tot.SplitBrain
	ist := images.Stats()
	rep.ImagesLanded = ist.Landed
	rep.ImagesVerified = ist.Verified
	rep.ImagesRepaired = ist.Repaired
	rep.ImagesCorrupt = ist.Corrupt
	rep.ImagesReshipped = ist.Reshipped
	rep.FleetFaults = fsys.Stats()

	if rep.ImagesLanded == 0 {
		rep.violate("storm evacuation landed no checkpoint images")
	}
	if rep.ImagesCorrupt != rep.ImagesReshipped {
		rep.violate("%d corrupt landings but %d re-ships: a damaged image was counted restored", rep.ImagesCorrupt, rep.ImagesReshipped)
	}
	if rep.FleetFaults.RotFlips == 0 {
		rep.violate("storm decayed nothing at rest on the fleet lane")
	}

	// Reconcile through the rot: a fresh coordinator replaying the log
	// over the SAME decaying filesystem must agree with the live one
	// exactly — the mirrored pairs mask every flipped bit.
	if err := c.Close(); err != nil {
		return err
	}
	_, auditSites, _, err := wanStormSites(wcfg)
	if err != nil {
		return err
	}
	audit, err := fleet.New(fleet.Config{
		Migration: true, WAN: net, LogDir: logDir, LogFS: fsys,
	}, auditSites)
	if err != nil {
		return err
	}
	defer audit.Close()
	if got := audit.Totals(); !reflect.DeepEqual(got, tot) {
		rep.violate("log replay over the decayed disk does not reconcile with live totals:\n replay: %+v\n   live: %+v", got, tot)
	}

	rep.StormHash = fold(rep.StormHash, fmt.Sprintf("fleet traj %#x tot %+v img %+v faults %+v", traj, tot, ist, rep.FleetFaults))
	return nil
}

// fleetFrames is the per-day fixture hook: it captures the live fleet so
// the harness can fold trajectory hashes after RunDay returns, and arms
// the storm site's surge faults — the trough-day battery damage is what
// drives the ladder down far enough to checkpoint VMs and ship their
// images across the decaying store.
type fleetFrames struct {
	cfg WANStormConfig
	fl  *sim.Fleet
}

func (f *fleetFrames) prepare(day int, fl *sim.Fleet) {
	f.fl = fl
	sys := fl.System(f.cfg.StormSite)
	inj := faults.NewInjector(stormDayFaults(day, f.cfg.Batteries), faults.Target{
		Bank: sys.Bank, Fabric: sys.Fabric, Probes: sys.Probes,
	})
	sys.SetTickHook(func(tod time.Duration) { inj.Tick(tod) })
}

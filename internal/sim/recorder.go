package sim

import (
	"time"

	"insure/internal/relay"
	"insure/internal/units"
)

// Frame is one down-sampled observation of the plant, enough to re-render
// the paper's trace figures (Figs 5, 14, 16).
type Frame struct {
	At        time.Duration
	Solar     units.Watt
	Load      units.Watt
	StoredWh  units.WattHour
	Volts     []units.Volt
	SoCs      []float64
	Modes     []relay.Mode
	RunningVM int
}

// Recorder accumulates frames over a run. Per-unit samples live in flat
// backing arrays that each Frame sub-slices, so a capture whose capacity was
// pre-sized (see NewRecorderSized) performs no allocation — the recorder is
// part of the zero-alloc tick invariant.
type Recorder struct {
	frames []Frame
	volts  []units.Volt
	socs   []float64
	modes  []relay.Mode
}

// NewRecorder returns an empty recorder that grows on demand.
func NewRecorder() *Recorder { return &Recorder{} }

// NewRecorderSized returns a recorder pre-sized for the expected number of
// frames over a run of a plant with nUnits battery units. Captures within
// the estimate are allocation-free; beyond it the recorder grows as usual.
func NewRecorderSized(frames, nUnits int) *Recorder {
	if frames < 0 {
		frames = 0
	}
	if nUnits < 0 {
		nUnits = 0
	}
	return &Recorder{
		frames: make([]Frame, 0, frames),
		volts:  make([]units.Volt, 0, frames*nUnits),
		socs:   make([]float64, 0, frames*nUnits),
		modes:  make([]relay.Mode, 0, frames*nUnits),
	}
}

// Frames returns the captured series.
func (r *Recorder) Frames() []Frame { return r.frames }

// Reset truncates the recorder to empty while keeping its backing arrays,
// so the next run's captures reuse the memory instead of growing it again.
// Frames handed out before the reset alias storage that will be
// overwritten — only reset a recorder whose output is no longer referenced.
func (r *Recorder) Reset() {
	r.frames = r.frames[:0]
	r.volts = r.volts[:0]
	r.socs = r.socs[:0]
	r.modes = r.modes[:0]
}

func (r *Recorder) capture(tod time.Duration, s *System) {
	n := s.Bank.Size()
	f := Frame{
		At:        tod,
		Solar:     s.solarNow,
		Load:      s.loadNow,
		StoredWh:  s.Bank.StoredEnergy(),
		RunningVM: s.Cluster.RunningVMs(),
	}
	vb, sb, mb := len(r.volts), len(r.socs), len(r.modes)
	for i := 0; i < n; i++ {
		u := s.Bank.Unit(i)
		r.volts = append(r.volts, u.TerminalVoltage())
		r.socs = append(r.socs, u.SoC())
		r.modes = append(r.modes, s.Fabric.Pair(i).Mode())
	}
	// Full-capacity sub-slices: a later append that grows the backing array
	// copies it elsewhere, leaving these views intact and immutable.
	f.Volts = r.volts[vb : vb+n : vb+n]
	f.SoCs = r.socs[sb : sb+n : sb+n]
	f.Modes = r.modes[mb : mb+n : mb+n]
	r.frames = append(r.frames, f)
}

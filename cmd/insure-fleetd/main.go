// Command insure-fleetd runs the fleet coordinator as a long-lived daemon:
// a federation of in-situ plants joined by a degraded WAN, with partitions,
// chunk loss, and site failures drawn deterministically from -seed.
//
// The daemon is durable. With -state-dir it journals the migration log under
// <dir>/miglog and snapshots every site's batteries, control state, and work
// queues at each day boundary. A killed daemon — SIGKILL, power cut, panic —
// resumes at next boot: the migration log is rolled back to the snapshot's
// sequence, the partial day is re-run, and because every chunk fate is a pure
// function of the seed and the sim clock, the resumed incarnation re-writes
// the byte-identical log the undisturbed run would have produced.
//
// An in-process watchdog wraps the day loop: a panic is caught, the world is
// torn down and rebuilt from the state dir through the same resume path a
// reboot would take, and the campaign continues.
//
// The daemon also serves an observability plane on -metrics-addr:
// GET /metrics is Prometheus text exposition (per-site SoC, migration and
// retransmit totals, reroutes, heals, the exactly-once guard counters), and
// GET /healthz reports ok/degraded with one check per WAN link — a
// partitioned or lost site degrades health until its heartbeat returns.
//
// Usage:
//
//	insure-fleetd -sites 3 -days 3 -state-dir /var/lib/insure-fleetd
//	insure-fleetd -sites 3 -drop 0.3 -partitions 1 -migration=false
//	curl http://127.0.0.1:9630/healthz
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"insure/internal/fleet"
)

// daemonOpts is everything main parses; tests drive runDaemon with the same
// struct to prove kill/resume bit-identity in-process.
type daemonOpts struct {
	worldConfig
	MetricsAddr string
	KillAt      string // "day:tod" test hook, e.g. "1:15h"
	MaxRestarts int    // watchdog rebuilds after a panic, needs StateDir

	killFn func(day int, tod time.Duration) bool // test override for KillAt
}

// errPanicked marks a day loop that died under the watchdog.
var errPanicked = errors.New("insure-fleetd: day loop panicked")

// parseKillAt turns "day:tod" into an abort predicate, nil when unset.
func parseKillAt(spec string) (func(day int, tod time.Duration) bool, error) {
	if spec == "" {
		return nil, nil
	}
	dayStr, todStr, ok := strings.Cut(spec, ":")
	if !ok {
		return nil, fmt.Errorf("insure-fleetd: -kill-at wants day:tod, got %q", spec)
	}
	day, err := strconv.Atoi(dayStr)
	if err != nil {
		return nil, fmt.Errorf("insure-fleetd: bad -kill-at day: %w", err)
	}
	tod, err := time.ParseDuration(todStr)
	if err != nil {
		return nil, fmt.Errorf("insure-fleetd: bad -kill-at time: %w", err)
	}
	return func(d int, t time.Duration) bool {
		return d == day && t >= tod
	}, nil
}

// runAttempt drives one incarnation of the world under a panic guard.
func runAttempt(ctx context.Context, w *world, killAt func(int, time.Duration) bool) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: %v", errPanicked, r)
		}
	}()
	return w.run(ctx, killAt)
}

// runDaemon builds the world (resuming from StateDir when a snapshot exists),
// serves telemetry, and runs the campaign to completion under the watchdog.
// It returns the final report on success; on an abort the state dir holds
// everything the next incarnation needs.
func runDaemon(ctx context.Context, out io.Writer, opts daemonOpts) (*fleet.Report, error) {
	killAt, err := parseKillAt(opts.KillAt)
	if err != nil {
		return nil, err
	}
	if opts.killFn != nil {
		killAt = opts.killFn
	}
	for attempt := 0; ; attempt++ {
		w, err := newWorld(opts.worldConfig)
		if err != nil {
			return nil, err
		}
		if w.resumed {
			fmt.Fprintf(out, "resumed fleet state from %s (day %d, miglog seq %d)\n",
				opts.StateDir, w.day, w.coord.LogSeq())
		}

		stopMetrics := func() error { return nil }
		if opts.MetricsAddr != "" {
			reg := w.attachTelemetry()
			maddr, stop, err := reg.Serve(opts.MetricsAddr)
			if err != nil {
				w.close()
				return nil, err
			}
			stopMetrics = stop
			fmt.Fprintf(out, "telemetry on http://%s/metrics and /healthz (%d link checks)\n",
				maddr, opts.Sites)
		}

		runErr := runAttempt(ctx, w, killAt)
		stopMetrics()
		if runErr == nil {
			rep := w.coord.Report()
			if cerr := w.close(); cerr != nil {
				return nil, cerr
			}
			return rep, nil
		}
		w.close()
		if errors.Is(runErr, errPanicked) && opts.StateDir != "" && attempt < opts.MaxRestarts {
			fmt.Fprintf(out, "watchdog: %v; rebuilding from %s\n", runErr, opts.StateDir)
			continue
		}
		return nil, runErr
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("insure-fleetd: ")
	var opts daemonOpts
	flag.Int64Var(&opts.Seed, "seed", 1, "campaign seed; weather, partitions, and chunk fates all derive from it")
	flag.IntVar(&opts.Sites, "sites", 3, "federated sites (site 0 is storm-parked)")
	flag.IntVar(&opts.Days, "days", 3, "campaign length in simulated days")
	flag.IntVar(&opts.Batteries, "batteries", 6, "battery units per site")
	flag.IntVar(&opts.Servers, "servers", 4, "servers per site")
	flag.Float64Var(&opts.JobGB, "job-gb", 40, "checkpoint image size per batch job (GB)")
	flag.BoolVar(&opts.Migration, "migration", true, "arm survival-mode job migration (false = observer fleet)")
	flag.Float64Var(&opts.Drop, "drop", 0.30, "WAN chunk drop probability")
	flag.Float64Var(&opts.Corrupt, "corrupt", 0.05, "WAN chunk corruption probability")
	flag.IntVar(&opts.PartitionsPerDay, "partitions", 1, "scheduled WAN partitions per day (0 disables)")
	flag.StringVar(&opts.StateDir, "state-dir", "", "journal fleet state to this directory; a restarted daemon resumes the campaign bit-identically")
	flag.StringVar(&opts.MetricsAddr, "metrics-addr", "127.0.0.1:9630", "HTTP listen address for /metrics and /healthz (empty disables)")
	flag.StringVar(&opts.KillAt, "kill-at", "", "abort at day:tod (e.g. 1:15h); test hook for resume drills")
	flag.IntVar(&opts.MaxRestarts, "max-restarts", 3, "watchdog rebuilds after a panic before giving up (needs -state-dir)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rep, err := runDaemon(ctx, os.Stdout, opts)
	switch {
	case errors.Is(err, errKilled):
		fmt.Println("killed by -kill-at; state dir holds the last day boundary")
		return
	case errors.Is(err, context.Canceled):
		log.Print("signal received; state dir holds the last day boundary")
		return
	case err != nil:
		log.Fatal(err)
	}
	fmt.Println(rep)
}

package workload

import (
	"time"

	"insure/internal/units"
)

// ExecProfile is one (workload, server architecture) execution measurement,
// the raw material of Table 7. Times and powers are produced by running the
// kernel's calibrated model on the given node profile.
type ExecProfile struct {
	Workload string
	Server   string
	InputGB  float64
	ExecTime time.Duration
	AvgPower units.Watt
}

// DataPerKWh is the headline Table 7 metric: GB processed per kWh of node
// energy.
func (e ExecProfile) DataPerKWh() float64 {
	kwh := units.Energy(e.AvgPower, e.ExecTime).KWh()
	if kwh == 0 {
		return 0
	}
	return e.InputGB / kwh
}

// table7Input captures each kernel's calibrated single-run behaviour: input
// size, Xeon execution time, and the kernel's relative speed on the Core i7
// (dedup's fine-grained chunking loves the newer core; the JVM-heavy bayes
// run is slower on the laptop part — both measured effects from Table 7).
type table7Input struct {
	name      string
	inputGB   float64
	xeonTime  time.Duration
	i7Speedup float64 // i7 time = xeonTime / i7Speedup
	xeonUtil  float64
	i7Util    float64
}

var table7Inputs = []table7Input{
	{name: "dedup", inputGB: 2.6, xeonTime: 97 * time.Second, i7Speedup: 2.02, xeonUtil: 0.47, i7Util: 0.93},
	{name: "x264", inputGB: 0.0056, xeonTime: 4600 * time.Millisecond, i7Speedup: 0.98, xeonUtil: 0.41, i7Util: 0.80},
	{name: "bayes", inputGB: 4.8, xeonTime: 439 * time.Second, i7Speedup: 0.663, xeonUtil: 0.45, i7Util: 0.80},
}

// nodePower evaluates the server power envelope without importing the
// server package (workload must stay independent of it): idle + span·util.
func nodePower(idle, peak units.Watt, util float64) units.Watt {
	return idle + units.Watt(float64(peak-idle)*util)
}

// Table7Profiles generates the legacy-vs-low-power comparison rows of
// Table 7 from the calibrated kernel models and node power envelopes
// (Xeon: 280–450 W; Core i7: 18–48 W).
func Table7Profiles() []ExecProfile {
	var out []ExecProfile
	for _, in := range table7Inputs {
		out = append(out,
			ExecProfile{
				Workload: in.name,
				Server:   "Xeon 3.2G",
				InputGB:  in.inputGB,
				ExecTime: in.xeonTime,
				AvgPower: nodePower(280, 450, in.xeonUtil),
			},
			ExecProfile{
				Workload: in.name,
				Server:   "Core i7",
				InputGB:  in.inputGB,
				ExecTime: time.Duration(float64(in.xeonTime) / in.i7Speedup),
				AvgPower: nodePower(18, 48, in.i7Util),
			},
		)
	}
	return out
}

package experiments

import (
	"context"

	"fmt"

	"insure/internal/cost"
)

func init() {
	register("fig1a", Fig1a)
	register("fig1b", Fig1b)
	register("fig3a", Fig3a)
	register("fig3b", Fig3b)
	register("table1", Table1)
	register("fig22", Fig22)
	register("fig23", Fig23)
	register("fig24", Fig24)
	register("fig25", Fig25)
}

// Fig1a regenerates the bulk-transfer time chart.
func Fig1a(ctx context.Context) *Table {
	t := &Table{
		ID:     "fig1a",
		Title:  "Data transfer time per TB by link class",
		Header: []string{"link", "hours/TB"},
	}
	for _, l := range cost.TypicalLinks() {
		t.Rows = append(t.Rows, []string{l.Name, f1(l.HoursPerTB())})
	}
	return t
}

// Fig1b regenerates the AWS egress cost chart.
func Fig1b(ctx context.Context) *Table {
	t := &Table{
		ID:     "fig1b",
		Title:  "Average $/TB for data transfer out of AWS",
		Header: []string{"volume (TB)", "avg $/TB"},
	}
	for _, tb := range []float64{10, 50, 150, 250, 500} {
		t.Rows = append(t.Rows, []string{f0(tb), f0(float64(cost.AWSEgressPerTB(tb)))})
	}
	return t
}

// Fig3a regenerates the IT-related TCO comparison.
func Fig3a(ctx context.Context) *Table {
	a := cost.Default()
	t := &Table{
		ID:     "fig3a",
		Title:  "IT-related TCO ($1000s) by strategy and years",
		Header: []string{"strategy", "1 yr", "2 yr", "3 yr", "4 yr", "5 yr"},
	}
	for _, o := range cost.ITOptions() {
		row := []string{o.String()}
		for y := 1.0; y <= 5; y++ {
			row = append(row, f0(a.ITTCO(o, y).K()))
		}
		t.Rows = append(t.Rows, row)
	}
	sa := a.ITTCO(cost.SatelliteOnly, 5)
	inSA := a.ITTCO(cost.InSituPlusSatellite, 5)
	cell := a.ITTCO(cost.CellularOnly, 5)
	inCell := a.ITTCO(cost.InSituPlusCellular, 5)
	t.Notes = append(t.Notes,
		fmt.Sprintf("5-yr saving vs satellite: %.0f%% (paper: >55%% OpEx)", (1-float64(inSA)/float64(sa))*100),
		fmt.Sprintf("5-yr saving vs cellular: %.0f%% (paper: ~95%%)", (1-float64(inCell)/float64(cell))*100),
	)
	return t
}

// Fig3b regenerates the energy-related TCO comparison.
func Fig3b(ctx context.Context) *Table {
	a := cost.Default()
	t := &Table{
		ID:     "fig3b",
		Title:  "Energy-related TCO ($1000s) by generator and years",
		Header: []string{"generator", "1 yr", "3 yr", "5 yr", "7 yr", "9 yr", "11 yr"},
	}
	for _, g := range cost.Generators() {
		row := []string{g.String()}
		for _, y := range []float64{1, 3, 5, 7, 9, 11} {
			row = append(row, f1(a.EnergyTCO(g, y).K()))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Table1 echoes the energy cost parameters used throughout (inputs).
func Table1(ctx context.Context) *Table {
	a := cost.Default()
	return &Table{
		ID:     "table1",
		Title:  "Energy cost evaluation parameters",
		Header: []string{"onsite generator", "energy-related CapEx", "energy-related OpEx"},
		Rows: [][]string{
			{"Diesel Generator", fmt.Sprintf("$%.0f per kW, lifetime %.0f yr", float64(a.DieselPerKW), a.DieselLifeYears),
				fmt.Sprintf("$%.2f/kWh", float64(a.DieselPerKWh))},
			{"Fuel Cells", fmt.Sprintf("$%.0f/W, stack life %.0f yr, system life %.0f yr", float64(a.FuelCellPerW), a.FCStackLifeYears, a.FCSystemLifeYears),
				fmt.Sprintf("$%.2f/kWh", float64(a.FuelCellPerKWh))},
			{"Solar + Battery", fmt.Sprintf("battery life %.0f yr, $%.0f/Ah; solar panel $%.0f/W", a.BatteryLifeYears, float64(a.BatteryPerAh), float64(a.SolarPerW)),
				"N/A"},
		},
	}
}

// Fig22 regenerates the annual depreciation breakdown.
func Fig22(ctx context.Context) *Table {
	a := cost.Default()
	t := &Table{
		ID:     "fig22",
		Title:  "Annual depreciation cost breakdown ($)",
		Header: []string{"system", "total", "components"},
	}
	for _, g := range cost.Generators() {
		parts := a.Depreciation(g)
		var detail string
		for i, p := range parts {
			if i > 0 {
				detail += ", "
			}
			detail += fmt.Sprintf("%s $%.0f", p.Name, float64(p.Annual))
		}
		t.Rows = append(t.Rows, []string{g.String(), f0(float64(cost.TotalAnnual(parts))), detail})
	}
	insure := cost.TotalAnnual(a.Depreciation(cost.SolarBattery))
	dg := cost.TotalAnnual(a.Depreciation(cost.Diesel))
	fc := cost.TotalAnnual(a.Depreciation(cost.FuelCell))
	t.Notes = append(t.Notes,
		fmt.Sprintf("diesel premium %.0f%% (paper ~20%%), fuel-cell premium %.0f%% (paper ~24%%)",
			(float64(dg)/float64(insure)-1)*100, (float64(fc)/float64(insure)-1)*100))
	return t
}

// Fig23 regenerates the scale-out vs cloud amortised cost chart.
func Fig23(ctx context.Context) *Table {
	a := cost.Default()
	t := &Table{
		ID:     "fig23",
		Title:  "Amortised annual cost ($): scaling out vs relying on cloud",
		Header: []string{"sunshine fraction", "scale out servers", "relying on cloud"},
	}
	cloud := a.CloudRelianceCost()
	for _, s := range []float64{1.0, 0.8, 0.6, 0.4} {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f%%", s*100),
			f0(float64(a.ScaleOutCost(s))),
			f0(float64(cloud)),
		})
	}
	return t
}

// Fig24 regenerates the TCO-vs-data-rate curves with the crossover.
func Fig24(ctx context.Context) *Table {
	a := cost.Default()
	t := &Table{
		ID:     "fig24",
		Title:  "5-yr TCO ($) by data rate: cloud vs in-situ at sunshine fractions",
		Header: []string{"GB/day", "cloud", "insitu-100%", "insitu-80%", "insitu-60%", "insitu-40%"},
	}
	for _, rate := range []float64{0.5, 5, 50, 500} {
		row := []string{fmt.Sprintf("%g", rate), f0(float64(a.CloudTCO(rate)))}
		for _, s := range []float64{1.0, 0.8, 0.6, 0.4} {
			row = append(row, f0(float64(a.InSituTCO(rate, s))))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("crossover at 100%% sunshine: %.2f GB/day (paper: ~0.9)", a.Crossover(1.0)),
		fmt.Sprintf("saving at 500 GB/day: %.0f%% (paper: up to 96%%)",
			(1-float64(a.InSituTCO(500, 1))/float64(a.CloudTCO(500)))*100),
	)
	return t
}

// Fig25 regenerates the application-scenario cost savings.
func Fig25(ctx context.Context) *Table {
	a := cost.Default()
	t := &Table{
		ID:     "fig25",
		Title:  "Application-specific cost savings",
		Header: []string{"scenario", "GB/day", "days", "saving"},
	}
	for _, s := range cost.Scenarios() {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%s: %s", s.Key, s.Name),
			f0(s.GBPerDay), f0(s.Days),
			fmt.Sprintf("%.0f%%", a.ScenarioSaving(s)*100),
		})
	}
	t.Notes = append(t.Notes, "paper ranges: A 47-55%, B 15%, C 77-93%, D 94-95%, E 94-97%")
	return t
}

package fleet_test

import (
	"reflect"
	"testing"
	"time"

	"insure/internal/baseline"
	"insure/internal/core"
	"insure/internal/fleet"
	"insure/internal/sim"
	"insure/internal/solar"
	"insure/internal/telemetry"
	"insure/internal/trace"
	"insure/internal/workload"
)

// soloSites builds n deterministic sites with per-site variation (trace and
// manager alternate) over a trimmed window, plus the matching day configs —
// the byte-identity fixture.
func soloSites(n int) ([]fleet.Site, []sim.Config) {
	traces := []*trace.Trace{trace.FullSystemHigh(), trace.FullSystemLow()}
	sites := make([]fleet.Site, n)
	cfgs := make([]sim.Config, n)
	for i := range sites {
		cfg := sim.DefaultConfig(traces[i%len(traces)])
		cfg.WindowStart = 9 * time.Hour
		cfg.WindowEnd = 11 * time.Hour
		var mgr sim.Manager
		if i%2 == 0 {
			mgr = core.New(core.DefaultConfig(), cfg.BatteryCount)
		} else {
			mgr = baseline.New(baseline.DefaultConfig())
		}
		sites[i] = fleet.Site{Sink: sim.NewSeismicSink(), Manager: mgr}
		cfgs[i] = cfg
	}
	return sites, cfgs
}

// TestCoordinatorDisabledMatchesSoloRuns is the federation calibration bar:
// with migration off, the coordinator's interleaved day must be
// byte-identical to running every site's System.Run alone.
func TestCoordinatorDisabledMatchesSoloRuns(t *testing.T) {
	const n = 3

	sites, cfgs := soloSites(n)
	want := make([]sim.Result, n)
	for i := range sites {
		sys, err := sim.New(cfgs[i], sites[i].Sink)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = sys.Run(sites[i].Manager)
	}

	sites, cfgs = soloSites(n)
	c, err := fleet.New(fleet.Config{Migration: false}, sites)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.RunDay(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("site %d: federated result differs from solo run\n got: %+v\nwant: %+v", i, got[i], want[i])
		}
	}
	if tot := c.Totals(); !reflect.DeepEqual(tot, fleet.Totals{}) {
		t.Errorf("observer coordinator accumulated migration totals: %+v", tot)
	}
}

// migrationScenario is a 2..3-site day with a storm-darkened batch site and
// sunny surplus donors: site 0 is dark, low on charge, and holding deferred
// seismic work; the others are sunny and idle.
func migrationScenario(n int, survival bool) ([]fleet.Site, []sim.Config) {
	sites := make([]fleet.Site, n)
	cfgs := make([]sim.Config, n)
	for i := range sites {
		var cfg sim.Config
		sink := &sim.BatchSink{Queue: workload.NewBatchQueue(workload.Seismic()), JobGB: 20}
		mcfg := core.DefaultConfig()
		if i == 0 {
			cfg = sim.DefaultConfig(trace.Synthesize(solar.Rainy, 7, time.Second))
			cfg.InitialSoC = 0.30
			sink.Arrivals = []time.Duration{7 * time.Hour}
			if survival {
				mcfg.Survival = core.DefaultSurvivalConfig()
			}
		} else {
			cfg = sim.DefaultConfig(trace.Synthesize(solar.Sunny, 7+int64(i), time.Second))
			cfg.InitialSoC = 0.70
		}
		sites[i] = fleet.Site{Sink: sink, Manager: core.New(mcfg, cfg.BatteryCount)}
		cfgs[i] = cfg
	}
	return sites, cfgs
}

// TestCoordinatorMigratesTowardSurplus checks the tentpole behaviour: the
// dark site's deferred work moves to the sunny site and completes there,
// and a rerun with the same seeds is identical.
func TestCoordinatorMigratesTowardSurplus(t *testing.T) {
	run := func() (*fleet.Report, []sim.Result) {
		sites, cfgs := migrationScenario(2, true)
		c, err := fleet.New(fleet.Config{Migration: true}, sites)
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.RunDay(cfgs)
		if err != nil {
			t.Fatal(err)
		}
		return c.Report(), res
	}

	rep, _ := run()
	if rep.Totals.MigratedGB <= 0 {
		t.Fatalf("no work migrated off the dark site: %s", rep)
	}
	if rep.Sites[1].JobsIn == 0 {
		t.Errorf("sunny site received no jobs: %s", rep)
	}
	if rep.Sites[0].PendingGB != 0 {
		t.Errorf("dark site still holds %.1f GB deferred", rep.Sites[0].PendingGB)
	}
	if rep.Sites[1].MigratedCompletedGB <= 0 {
		t.Errorf("sunny site completed none of the migrated work: %s", rep)
	}
	if rep.Totals.EnergyWh <= 0 || rep.Totals.Cost <= 0 {
		t.Errorf("migration shipped %.1f GB with no energy/cost accounting: %+v",
			rep.Totals.MigratedGB, rep.Totals)
	}

	rep2, _ := run()
	if !reflect.DeepEqual(rep, rep2) {
		t.Errorf("same-seed federated runs diverged:\n 1st: %s\n 2nd: %s", rep, rep2)
	}
}

// TestCoordinatorLogRecoveryReplays kills the coordinator after a migrated
// day and rebuilds it from the migration log alone: the replayed accounting
// must match what the dead coordinator knew.
func TestCoordinatorLogRecoveryReplays(t *testing.T) {
	dir := t.TempDir()

	sites, cfgs := migrationScenario(2, true)
	c, err := fleet.New(fleet.Config{Migration: true, LogDir: dir}, sites)
	if err != nil {
		t.Fatal(err)
	}
	if c.Recovered() {
		t.Fatal("fresh coordinator claims recovery")
	}
	if _, err := c.RunDay(cfgs); err != nil {
		t.Fatal(err)
	}
	want := c.Totals()
	wantRep := c.Report()
	if want.Migrations == 0 {
		t.Fatalf("scenario migrated nothing: %s", wantRep)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// A replacement coordinator process: fresh sites, same log.
	sites2, _ := migrationScenario(2, true)
	c2, err := fleet.New(fleet.Config{Migration: true, LogDir: dir}, sites2)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if !c2.Recovered() {
		t.Fatal("replacement coordinator did not replay the migration log")
	}
	if got := c2.Totals(); !reflect.DeepEqual(got, want) {
		t.Errorf("replayed totals differ:\n got: %+v\nwant: %+v", got, want)
	}
	rep2 := c2.Report()
	for i := range wantRep.Sites {
		if rep2.Sites[i].JobsOut != wantRep.Sites[i].JobsOut ||
			rep2.Sites[i].JobsIn != wantRep.Sites[i].JobsIn ||
			rep2.Sites[i].ImagesOut != wantRep.Sites[i].ImagesOut {
			t.Errorf("site %d durable accounting not replayed: got %+v want %+v",
				i, rep2.Sites[i], wantRep.Sites[i])
		}
	}

	records, err := fleet.ReplayLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) == 0 {
		t.Fatal("migration log is empty after a migrated day")
	}
}

// TestCoordinatorSiteLossIsDisposable fails the preferred donor mid-day:
// the fleet keeps running, work re-routes to the remaining donor, only the
// dead site's in-flight resources are lost, and the loss is journaled.
func TestCoordinatorSiteLossIsDisposable(t *testing.T) {
	dir := t.TempDir()
	sites, cfgs := migrationScenario(3, true)
	c, err := fleet.New(fleet.Config{Migration: true, LogDir: dir}, sites)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.ScheduleSiteFailure(0 /* day */, 10*time.Hour, 1); err != nil {
		t.Fatal(err)
	}
	res, err := c.RunDay(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	rep := c.Report()
	if !rep.Sites[1].Dead {
		t.Fatalf("scheduled failure did not kill site 1: %s", rep)
	}
	if rep.Totals.SitesLost != 1 {
		t.Errorf("SitesLost = %d, want 1", rep.Totals.SitesLost)
	}
	if rep.Sites[2].Dead || res[2].EndVolt <= 0 {
		t.Errorf("surviving site 2 was disturbed by site 1's death: %+v", res[2])
	}
	if rep.Totals.MigratedGB <= 0 {
		t.Errorf("no migration happened around the failure: %s", rep)
	}

	sawLoss := false
	records, err := fleet.ReplayLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range records {
		if r.Kind == fleet.RecSiteLoss && r.From == 1 {
			sawLoss = true
		}
	}
	if !sawLoss {
		t.Error("site loss was not journaled")
	}
}

// TestCoordinatorTelemetry attaches a registry and checks the fleet series
// reflect the migrated day.
func TestCoordinatorTelemetry(t *testing.T) {
	sites, cfgs := migrationScenario(2, true)
	c, err := fleet.New(fleet.Config{Migration: true}, sites)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	c.AttachTelemetry(reg)
	if _, err := c.RunDay(cfgs); err != nil {
		t.Fatal(err)
	}
	tot := c.Totals()
	if tot.Migrations == 0 {
		t.Fatal("scenario migrated nothing")
	}
	snap := reg.Gauge("insure_fleet_migrated_gb", "").Value()
	if snap != tot.MigratedGB {
		t.Errorf("insure_fleet_migrated_gb = %v, want %v", snap, tot.MigratedGB)
	}
	if got := reg.Counter("insure_fleet_migrations_total", "").Value(); got != int64(tot.Migrations) {
		t.Errorf("insure_fleet_migrations_total = %d, want %d", got, tot.Migrations)
	}
	if got := reg.Gauge("insure_fleet_sites_live", "").Value(); got != 2 {
		t.Errorf("insure_fleet_sites_live = %v, want 2", got)
	}
}

// TestCoordinatorRejectsBadSites covers the constructor validation.
func TestCoordinatorRejectsBadSites(t *testing.T) {
	if _, err := fleet.New(fleet.Config{}, nil); err == nil {
		t.Error("want error for empty site list")
	}
	sites, _ := soloSites(2)
	sites[1].Sink = nil
	if _, err := fleet.New(fleet.Config{}, sites); err == nil {
		t.Error("want error for nil Sink")
	}
	sites, _ = soloSites(2)
	sites[0].Manager = nil
	if _, err := fleet.New(fleet.Config{}, sites); err == nil {
		t.Error("want error for nil Manager")
	}
}

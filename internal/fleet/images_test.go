package fleet

import (
	"os"
	"path/filepath"
	"testing"

	"insure/internal/journal"
)

func imagePaths(t *testing.T, st *ImageStore, xfer uint64, to int) (string, string) {
	t.Helper()
	p, m := imageNames(xfer)
	return filepath.Join(st.siteDir(to), p), filepath.Join(st.siteDir(to), m)
}

func damage(t *testing.T, path string) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xFF
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestImageLandAndVerify(t *testing.T) {
	st, err := NewImageStore(nil, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Land(7, 1); err != nil {
		t.Fatal(err)
	}
	if !st.Verify(7, 1) {
		t.Fatal("freshly landed image failed verify")
	}

	// One damaged copy: verify still passes and rebuilds the mirror.
	_, m := imagePaths(t, st, 7, 1)
	damage(t, m)
	if !st.Verify(7, 1) {
		t.Fatal("verify failed with an intact primary")
	}
	p, _ := imagePaths(t, st, 7, 1)
	pb, _ := os.ReadFile(p)
	mb, _ := os.ReadFile(m)
	if string(pb) != string(mb) {
		t.Error("mirror not rebuilt from primary")
	}

	// Both copies damaged: the landing is gone; verify must say so.
	damage(t, p)
	damage(t, m)
	if st.Verify(7, 1) {
		t.Fatal("verify passed with no intact copy")
	}
	s := st.Stats()
	if s.Landed != 1 || s.Verified != 2 || s.Repaired != 1 || s.Corrupt != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestImageStoreScrubbable(t *testing.T) {
	dir := t.TempDir()
	st, err := NewImageStore(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	for x := uint64(1); x <= 3; x++ {
		if err := st.Land(x, int(x%2)); err != nil {
			t.Fatal(err)
		}
	}
	_, m := imagePaths(t, st, 2, 0)
	damage(t, m)

	// One scrub target on the store root sweeps every site subdirectory.
	rep, err := journal.ScrubDir(journal.Disk, dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Detected != 1 || rep.Repaired != 1 || rep.Unrepairable != 0 {
		t.Fatalf("report = %+v, want the damaged mirror repaired", rep)
	}
	if !st.Verify(2, 0) {
		t.Fatal("image broken after scrub repair")
	}
}

func TestImagePayloadDeterministic(t *testing.T) {
	a, b := imagePayload(99), imagePayload(99)
	if string(a) != string(b) {
		t.Fatal("imagePayload not deterministic")
	}
	if string(imagePayload(98)) == string(a) {
		t.Fatal("distinct transfers share a payload")
	}
}

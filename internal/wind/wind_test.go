package wind

import (
	"math"
	"testing"
	"time"
)

func TestRegimeOrdering(t *testing.T) {
	if !(Calm.meanSpeed() < Moderate.meanSpeed() && Moderate.meanSpeed() < Windy.meanSpeed()) {
		t.Error("regime mean speeds not ordered")
	}
	for _, r := range []Regime{Calm, Moderate, Windy} {
		if r.String() == "" {
			t.Errorf("regime %d unnamed", r)
		}
	}
	if Regime(9).String() == "" {
		t.Error("unknown regime should format")
	}
}

func TestFieldMeanReversion(t *testing.T) {
	f := NewField(Moderate, 42)
	var sum float64
	const n = 24 * 3600
	for i := 0; i < n; i++ {
		sum += f.Step(time.Second)
	}
	mean := sum / n
	if math.Abs(mean-6.0) > 1.0 {
		t.Errorf("day-long mean speed %.2f m/s, want ~6", mean)
	}
}

func TestFieldNeverNegative(t *testing.T) {
	f := NewField(Calm, 7)
	for i := 0; i < 100000; i++ {
		if v := f.Step(time.Second); v < 0 {
			t.Fatalf("negative wind speed %v at step %d", v, i)
		}
	}
}

func TestFieldDeterminism(t *testing.T) {
	a, b := NewField(Windy, 5), NewField(Windy, 5)
	for i := 0; i < 1000; i++ {
		if a.Step(time.Second) != b.Step(time.Second) {
			t.Fatal("equal seeds diverged")
		}
	}
}

func TestPowerCurve(t *testing.T) {
	tb := DefaultTurbine()
	if tb.Output(1) != 0 {
		t.Error("output below cut-in")
	}
	if tb.Output(25) != 0 {
		t.Error("output above cut-out (storm shutdown)")
	}
	if got := tb.Output(11); got != tb.Rated {
		t.Errorf("rated-speed output = %v, want %v", got, tb.Rated)
	}
	if got := tb.Output(15); got != tb.Rated {
		t.Errorf("above-rated output = %v, want flat %v", got, tb.Rated)
	}
	mid := tb.Output(7)
	if mid <= 0 || mid >= tb.Rated {
		t.Errorf("mid-curve output %v outside (0, rated)", mid)
	}
	// Cubic growth: 9 m/s yields much more than 2× the 6 m/s output.
	if low, high := tb.Output(6), tb.Output(9); float64(high) < 2*float64(low) {
		t.Errorf("power curve not superlinear: %v at 6 m/s vs %v at 9 m/s", low, high)
	}
}

func TestPowerCurveMonotone(t *testing.T) {
	tb := DefaultTurbine()
	prev := -1.0
	for v := tb.CutIn; v < tb.CutOut; v += 0.25 {
		p := float64(tb.Output(v))
		if p < prev {
			t.Fatalf("power curve decreasing at %v m/s", v)
		}
		prev = p
	}
}

func TestSupplyRoundTheClock(t *testing.T) {
	s := NewSupply(Windy, 3)
	var night, day float64
	for tod := 0 * time.Hour; tod < 24*time.Hour; tod += time.Minute {
		p := float64(s.Step(tod, time.Minute))
		if tod < 6*time.Hour {
			night += p
		} else if tod > 10*time.Hour && tod < 16*time.Hour {
			day += p
		}
	}
	if night <= 0 {
		t.Error("wind supply produced nothing at night — it should not be diurnal")
	}
	if s.Harvested() <= 0 {
		t.Error("no energy accounted")
	}
}

func TestWindyBeatsCalm(t *testing.T) {
	calm, windy := NewSupply(Calm, 11), NewSupply(Windy, 11)
	for tod := 0 * time.Hour; tod < 24*time.Hour; tod += time.Minute {
		calm.Step(tod, time.Minute)
		windy.Step(tod, time.Minute)
	}
	if windy.Harvested() <= calm.Harvested() {
		t.Errorf("windy site (%v) did not out-produce calm site (%v)",
			windy.Harvested(), calm.Harvested())
	}
}

package telemetry

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
)

// MetricsHandler serves the Prometheus text exposition.
func (r *Registry) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// healthReport is the /healthz response body.
type healthReport struct {
	Status          string            `json:"status"` // "ok", "degraded", or "draining"
	Mode            string            `json:"mode,omitempty"` // operating mode (survivability rung), when published
	SimClockSeconds float64           `json:"sim_clock_seconds"`
	Checks          map[string]string `json:"checks,omitempty"` // name -> "ok" or error text
}

// HealthzHandler serves the liveness report: 200 when every installed
// health check passes, 503 with the failing checks' errors otherwise.
// A process that published a draining operating mode (SetOpMode — the
// plant's Blackout rung) answers 503 with the rung name even when every
// individual check still passes, so load balancers drain the site before
// its requests start failing.
func (r *Registry) HealthzHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		rep := healthReport{
			Status:          "ok",
			SimClockSeconds: r.Clock().Seconds(),
			Checks:          map[string]string{},
		}
		code := http.StatusOK
		mode, draining := r.OpMode()
		rep.Mode = mode
		if draining {
			rep.Status = "draining"
			code = http.StatusServiceUnavailable
		}
		for _, hc := range r.healthChecks() {
			if err := hc.Check(); err != nil {
				rep.Checks[hc.Name] = err.Error()
				if rep.Status == "ok" {
					rep.Status = "degraded"
				}
				code = http.StatusServiceUnavailable
			} else {
				rep.Checks[hc.Name] = "ok"
			}
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(rep)
	})
}

// Mux returns an http.ServeMux with /metrics and /healthz installed.
func (r *Registry) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.MetricsHandler())
	mux.Handle("/healthz", r.HealthzHandler())
	return mux
}

// Serve binds addr and serves /metrics and /healthz in a background
// goroutine. It returns the bound address (useful with ":0") and a stop
// function that closes the listener.
func (r *Registry) Serve(addr string) (net.Addr, func() error, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: r.Mux()}
	go func() { _ = srv.Serve(l) }()
	return l.Addr(), srv.Close, nil
}

// DebugMux returns a mux exposing the net/http/pprof profiling surface —
// intended for a separate, operator-only -debug-addr listener.
func DebugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeDebug binds addr with the pprof surface in a background goroutine,
// returning the bound address and a stop function.
func ServeDebug(addr string) (net.Addr, func() error, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: DebugMux()}
	go func() { _ = srv.Serve(l) }()
	return l.Addr(), srv.Close, nil
}

package sim_test

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"insure/internal/baseline"
	"insure/internal/core"
	"insure/internal/sim"
	"insure/internal/trace"
)

// pairCampaign builds a 4-run campaign: both managers on both full-system
// traces, the same shape the Fig 20/21 runners use.
func pairCampaign() []sim.CampaignRun {
	var runs []sim.CampaignRun
	for _, tc := range []struct {
		name string
		tr   *trace.Trace
	}{
		{"high", trace.FullSystemHigh()},
		{"low", trace.FullSystemLow()},
	} {
		tr := tc.tr
		runs = append(runs,
			sim.CampaignRun{Name: tc.name + "/insure", Setup: func(a *sim.Arena) (*sim.System, sim.Manager, error) {
				cfg := sim.DefaultConfig(tr)
				sys, err := sim.New(cfg, sim.NewSeismicSink())
				if err != nil {
					return nil, nil, err
				}
				return sys, core.New(core.DefaultConfig(), cfg.BatteryCount), nil
			}},
			sim.CampaignRun{Name: tc.name + "/baseline", Setup: func(a *sim.Arena) (*sim.System, sim.Manager, error) {
				cfg := sim.DefaultConfig(tr)
				sys, err := sim.New(cfg, sim.NewSeismicSink())
				if err != nil {
					return nil, nil, err
				}
				return sys, baseline.New(baseline.DefaultConfig()), nil
			}},
		)
	}
	return runs
}

// TestRunCampaignMatchesSerial pins the engine's core guarantee: concurrent
// execution returns, position for position, exactly the Results a serial
// loop over the same runs produces.
func TestRunCampaignMatchesSerial(t *testing.T) {
	runs := pairCampaign()
	want := make([]sim.Result, len(runs))
	for i, r := range runs {
		sys, mgr, err := r.Setup(nil)
		if err != nil {
			t.Fatalf("setup %s: %v", r.Name, err)
		}
		want[i] = sys.Run(mgr)
	}

	got, err := sim.RunCampaign(context.Background(), 4, pairCampaign())
	if err != nil {
		t.Fatalf("RunCampaign: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("run %d (%s): parallel result differs from serial\n got: %+v\nwant: %+v",
				i, runs[i].Name, got[i], want[i])
		}
	}
}

func TestRunCampaignSetupError(t *testing.T) {
	sentinel := errors.New("boom")
	runs := []sim.CampaignRun{{
		Name:  "broken",
		Setup: func(a *sim.Arena) (*sim.System, sim.Manager, error) { return nil, nil, sentinel },
	}}
	_, err := sim.RunCampaign(context.Background(), 1, runs)
	if !errors.Is(err, sentinel) {
		t.Fatalf("want wrapped sentinel error, got %v", err)
	}
	if !strings.Contains(err.Error(), "broken") {
		t.Fatalf("error should carry the run name, got %v", err)
	}
}

func TestRunCampaignPanicBecomesError(t *testing.T) {
	runs := []sim.CampaignRun{{
		Name:  "panicky",
		Setup: func(a *sim.Arena) (*sim.System, sim.Manager, error) { panic("kaboom") },
	}}
	_, err := sim.RunCampaign(context.Background(), 1, runs)
	if err == nil {
		t.Fatal("want error from panicking run")
	}
	for _, want := range []string{"panicky", "kaboom"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q should contain %q", err, want)
		}
	}
}

func TestRunCampaignCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := sim.RunCampaign(ctx, 1, pairCampaign())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}
